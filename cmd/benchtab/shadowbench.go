package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
)

// ShadowBenchOut is the BENCH_shadow.json schema: the adaptive
// ownership tier (exclusive regions answered with one region-level
// comparison) measured A/B against the span baseline over private,
// block-owned and contended access mixes, plus the memory-bounded
// page-sweep showing the byte cap holding where the unbounded shadow
// grows 4x past it.
type ShadowBenchOut struct {
	BenchEnv

	// PrivateSpeedup is the headline number the ownership tier exists
	// for: baseline drain time over fast-path drain time on the
	// single-owner private mix.
	PrivateSpeedup float64 `json:"private_speedup"`
	DigestsEqual   bool    `json:"digests_equal"`

	Points  []bench.ShadowPoint      `json:"points"`
	Bounded bench.ShadowBoundedPoint `json:"bounded"`
}

// runShadowBench runs the adaptive-shadow A/B experiment, writes the
// artifact, and (when minSpeedup > 0) enforces the perf and equivalence
// gate on the private mix.
func runShadowBench(outPath string, minSpeedup float64) error {
	r, err := bench.ShadowBench(bench.ShadowOptions{})
	if err != nil {
		return err
	}
	env := benchEnv()
	env.Ownership = true
	env.ShadowCapBytes = r.Bounded.CapBytes
	out := ShadowBenchOut{
		BenchEnv:       env,
		PrivateSpeedup: r.PrivateSpeedup,
		DigestsEqual:   r.DigestsEqual,
		Points:         r.Points,
		Bounded:        r.Bounded,
	}
	fmt.Println("adaptive-shadow A/B: span baseline vs exclusive-ownership fast path")
	fmt.Printf("%-12s %9s %14s %14s %8s %10s %11s\n",
		"mix", "records", "base rec/s", "own rec/s", "speedup", "owned frac", "inflations")
	for _, p := range r.Points {
		fmt.Printf("%-12s %9d %14.0f %14.0f %7.2fx %9.1f%% %11d\n",
			p.Mix, p.Records, p.BaseRecordsPerSec, p.OwnRecordsPerSec,
			p.Speedup, p.OwnedFastFrac*100, p.Inflations)
	}
	b := r.Bounded
	fmt.Printf("bounded sweep: unbounded peak %.1f MiB, cap %.1f MiB, bounded peak %.1f MiB, evictions %d (live %d), cap_held=%v\n",
		float64(b.UnboundedPeakBytes)/(1<<20), float64(b.CapBytes)/(1<<20),
		float64(b.BoundedPeakBytes)/(1<<20), b.Evictions, b.LiveEvictions, b.CapHeld)
	data, _ := json.MarshalIndent(out, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: private speedup %.2fx, digests_equal=%v\n",
		outPath, out.PrivateSpeedup, out.DigestsEqual)
	if !out.DigestsEqual {
		return fmt.Errorf("adaptive shadow disagrees with baseline: canonical digests differ")
	}
	if !b.CapHeld {
		return fmt.Errorf("bounded sweep exceeded its byte cap: peak %d > cap %d", b.BoundedPeakBytes, b.CapBytes)
	}
	if minSpeedup > 0 && out.PrivateSpeedup < minSpeedup {
		return fmt.Errorf("private-mix speedup %.3fx below required %.3fx", out.PrivateSpeedup, minSpeedup)
	}
	return nil
}
