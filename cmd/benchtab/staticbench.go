package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// StaticBenchRow is one benchmark's pruning outcome in BENCH_static.json.
type StaticBenchRow struct {
	Name          string  `json:"name"`
	FracUnopt     float64 `json:"frac_unopt"`  // instrumented fraction, no pruning
	FracIntra     float64 `json:"frac_intra"`  // with intra-block pruning
	FracStatic    float64 `json:"frac_static"` // with the inter-block static pruner
	StaticPruned  int     `json:"static_pruned"`
	ThreadPrivate int     `json:"thread_private"`
	// Detection throughput in simulated warp instructions per second,
	// with and without the static pruner.
	WipsIntra  float64 `json:"wips_intra"`
	WipsStatic float64 `json:"wips_static"`
	RacesEqual bool    `json:"races_equal"` // identical race reports (soundness)
	Improved   bool    `json:"improved"`    // frac_static < frac_intra
}

// StaticBench is the BENCH_static.json schema.
type StaticBench struct {
	BenchEnv
	Rows     []StaticBenchRow `json:"rows"`
	Improved int              `json:"improved"`
	Total    int              `json:"total"`
}

// raceSignature renders a report's races in their stable sort order.
func raceSignature(res *detector.Result) string {
	out := ""
	for _, r := range res.Report.Races {
		out += fmt.Sprintf("%s x%d\n", r.String(), r.Count)
	}
	return out
}

// staticRun opens one pruning variant of a benchmark and runs detection.
func staticRun(b *bench.Benchmark, cfg detector.Config) (*detector.Session, *detector.Result, error) {
	s, err := detector.OpenPTX(b.PTX(), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	var args []uint64
	for _, sz := range b.Buffers() {
		a, err := s.Dev.Alloc(sz)
		if err != nil {
			return nil, nil, err
		}
		args = append(args, a)
	}
	res, err := s.Detect("main", gpusim.LaunchConfig{Grid: b.Grid, Block: b.Block, Args: args})
	if err != nil {
		return nil, nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return s, res, nil
}

// runStaticBench measures the static pruner across the benchmark corpus —
// instrumented fractions, detection throughput, and report equivalence —
// and writes the artifact.
func runStaticBench(outPath string) error {
	out := StaticBench{BenchEnv: benchEnv(), Rows: []StaticBenchRow{}}
	for _, b := range bench.All() {
		_, base, err := staticRun(b, detector.Config{})
		if err != nil {
			return err
		}
		s, pruned, err := staticRun(b, detector.Config{StaticPrune: true})
		if err != nil {
			return err
		}
		var t statsTotals
		for _, st := range s.Stats {
			t.static += st.Static
			t.unopt += st.InstrumentedNo
			t.intra += st.Instrumented
			t.afterStatic += st.InstrumentedStatic
			t.pruned += st.StaticPruned
			t.private += st.ThreadPrivate
		}
		row := StaticBenchRow{
			Name:          b.Name,
			FracUnopt:     t.frac(t.unopt),
			FracIntra:     t.frac(t.intra),
			FracStatic:    t.frac(t.afterStatic),
			StaticPruned:  t.pruned,
			ThreadPrivate: t.private,
			RacesEqual:    raceSignature(base) == raceSignature(pruned),
		}
		if d := base.Duration.Seconds(); d > 0 {
			row.WipsIntra = float64(base.SimStats.WarpInstrs) / d
		}
		if d := pruned.Duration.Seconds(); d > 0 {
			row.WipsStatic = float64(pruned.SimStats.WarpInstrs) / d
		}
		row.Improved = row.FracStatic < row.FracIntra
		if row.Improved {
			out.Improved++
		}
		out.Total++
		out.Rows = append(out.Rows, row)
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("static bench: instrumented fraction improved on %d/%d benchmarks → %s\n",
		out.Improved, out.Total, outPath)
	for _, r := range out.Rows {
		eq := "reports identical"
		if !r.RacesEqual {
			eq = "REPORTS DIFFER"
		}
		fmt.Printf("  %-34s unopt %.1f%% intra %.1f%% static %.1f%% (private %d) — %s\n",
			r.Name, 100*r.FracUnopt, 100*r.FracIntra, 100*r.FracStatic, r.ThreadPrivate, eq)
	}
	return nil
}

type statsTotals struct {
	static, unopt, intra, afterStatic, pruned, private int
}

func (t statsTotals) frac(n int) float64 {
	if t.static == 0 {
		return 0
	}
	return float64(n) / float64(t.static)
}
