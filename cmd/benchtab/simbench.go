package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
)

// SimBench is the BENCH_sim.json schema: the warp-vectorized interpreter
// (one dispatch per warp-instruction, static-uniformity scalarization,
// pooled launch state) measured A/B against the legacy lane-major
// interpreter over the 26-benchmark suite.
type SimBench struct {
	BenchEnv
	Benchmarks int `json:"benchmarks"`

	WarpInstrs uint64 `json:"warp_instrs"`
	Records    uint64 `json:"records"`

	LaneWarpInstrsPerSec float64 `json:"lane_major_warp_instrs_per_sec"`
	WarpWarpInstrsPerSec float64 `json:"warp_major_warp_instrs_per_sec"`
	LaneRecordsPerSec    float64 `json:"lane_major_records_per_sec"`
	WarpRecordsPerSec    float64 `json:"warp_major_records_per_sec"`
	LaneNSPerWarpInstr   float64 `json:"lane_major_ns_per_warp_instr"`
	WarpNSPerWarpInstr   float64 `json:"warp_major_ns_per_warp_instr"`
	LaneAllocsPerLaunch  float64 `json:"lane_major_allocs_per_launch"`
	WarpAllocsPerLaunch  float64 `json:"warp_major_allocs_per_launch"`

	Speedup      float64 `json:"speedup"`
	AllocRatio   float64 `json:"alloc_ratio"`
	DigestsEqual bool    `json:"digests_equal"`

	Points []SimBenchPoint `json:"points"`
}

// SimBenchPoint is one benchmark's measurement.
type SimBenchPoint struct {
	Name         string  `json:"name"`
	WarpInstrs   uint64  `json:"warp_instrs"`
	Records      uint64  `json:"records"`
	LaneUS       float64 `json:"lane_major_us"`
	WarpUS       float64 `json:"warp_major_us"`
	Speedup      float64 `json:"speedup"`
	DigestsEqual bool    `json:"digests_equal"`
}

// runSimBench runs the interpreter A/B experiment, writes the artifact,
// and (when minSpeedup > 0) enforces the perf and equivalence gate.
func runSimBench(outPath string, minSpeedup float64) error {
	r, err := bench.Sim(bench.SimOptions{})
	if err != nil {
		return err
	}
	out := SimBench{
		BenchEnv:             benchEnv(),
		Benchmarks:           len(r.Points),
		WarpInstrs:           r.WarpInstrs,
		Records:              r.Records,
		LaneWarpInstrsPerSec: r.LaneWarpInstrsPerSec,
		WarpWarpInstrsPerSec: r.WarpWarpInstrsPerSec,
		LaneRecordsPerSec:    r.LaneRecordsPerSec,
		WarpRecordsPerSec:    r.WarpRecordsPerSec,
		LaneNSPerWarpInstr:   r.LaneNSPerWarpInstr,
		WarpNSPerWarpInstr:   r.WarpNSPerWarpInstr,
		LaneAllocsPerLaunch:  r.LaneAllocsPerLaunch,
		WarpAllocsPerLaunch:  r.WarpAllocsPerLaunch,
		Speedup:              r.Speedup,
		AllocRatio:           r.AllocRatio,
		DigestsEqual:         r.DigestsEqual,
	}
	for _, p := range r.Points {
		out.Points = append(out.Points, SimBenchPoint{
			Name:         p.Name,
			WarpInstrs:   p.WarpInstrs,
			Records:      p.Records,
			LaneUS:       p.LaneNS / 1000,
			WarpUS:       p.WarpNS / 1000,
			Speedup:      p.Speedup,
			DigestsEqual: p.DigestsEqual,
		})
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d benchmarks, speedup %.2fx (%.0f -> %.0f warp-instrs/sec), allocs/launch %.1f -> %.1f, digests_equal=%v\n",
		outPath, out.Benchmarks, out.Speedup,
		out.LaneWarpInstrsPerSec, out.WarpWarpInstrsPerSec,
		out.LaneAllocsPerLaunch, out.WarpAllocsPerLaunch, out.DigestsEqual)
	if !out.DigestsEqual {
		return fmt.Errorf("interpreter paths disagree: canonical digests differ")
	}
	if minSpeedup > 0 && out.Speedup < minSpeedup {
		return fmt.Errorf("suite speedup %.3fx below required %.3fx", out.Speedup, minSpeedup)
	}
	return nil
}
