package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"barracuda/internal/server"
	"barracuda/internal/wire"
)

// The protocol benchmark (-proto) A/Bs the two job surfaces of the same
// daemon — JSON submit + long-poll vs the binary streaming protocol —
// on the three axes the stream was built for:
//
//   - bytes on the wire (counted at the socket, both directions),
//   - time-to-first-race (submission start until the client can see a
//     race: the first race frame on the stream, the terminal poll
//     response on JSON),
//   - jobs/sec.
//
// Each axis is measured cold (every job a distinct module, full upload)
// and warm (repeat module: the stream declares the content hash and
// skips the transfer; JSON re-sends the source every time) across
// report sizes, on synthetic kernels with S racy stores up front and a
// long race-free tail so detection keeps running after the first race
// is known — exactly the window where push beats poll.

// ProtoPhase is one (surface, temperature) measurement.
type ProtoPhase struct {
	JobsPerSec  float64 `json:"jobs_per_sec"`
	TTFRMS      float64 `json:"ttfr_ms"`
	BytesPerJob float64 `json:"bytes_per_job"`
}

// ProtoSize is the A/B at one report size.
type ProtoSize struct {
	RacyStores  int `json:"racy_stores"`
	Races       int `json:"races"` // static races actually reported
	ModuleBytes int `json:"module_bytes"`

	JSONCold   ProtoPhase `json:"json_cold"`
	JSONWarm   ProtoPhase `json:"json_warm"`
	StreamCold ProtoPhase `json:"stream_cold"`
	StreamWarm ProtoPhase `json:"stream_warm"`

	// Headline ratios (>1 means the stream wins).
	TTFRSpeedupCold  float64 `json:"ttfr_speedup_cold"`
	TTFRSpeedupWarm  float64 `json:"ttfr_speedup_warm"`
	BytesFactorCold  float64 `json:"bytes_factor_cold"`
	BytesFactorWarm  float64 `json:"bytes_factor_warm"`
	DigestsIdentical bool    `json:"digests_identical"`
}

// ProtoBench is the BENCH_proto.json schema.
type ProtoBench struct {
	BenchEnv
	Workers   int         `json:"workers"`
	Jobs      int         `json:"jobs_per_phase"`
	TailIters int         `json:"tail_iters"`
	Sizes     []ProtoSize `json:"sizes"`
}

// protoKernel builds a kernel with racyStores conflicting writes at
// distinct PCs/addresses followed by a race-free per-thread store loop.
// The tail keeps the simulator and detector busy long after the racy
// prefix has been processed — the window where a pushed race frame
// beats waiting for the terminal report.
func protoKernel(racyStores, tailIters int) (src string, bufBytes int) {
	const tailBase = 4096
	var b strings.Builder
	b.WriteString(".visible .entry k(.param .u64 out)\n{\n")
	b.WriteString("\t.reg .u32 %r<8>;\n\t.reg .u64 %rd<8>;\n\t.reg .pred %p<2>;\n")
	b.WriteString("\tld.param.u64 %rd1, [out];\n")
	b.WriteString("\tmov.u32 %r1, %tid.x;\n")
	// Conflicting stores: every thread writes the same cell with its
	// own tid, so the same-value filter cannot mask the race.
	for i := 0; i < racyStores; i++ {
		fmt.Fprintf(&b, "\tst.global.u32 [%%rd1+%d], %%r1;\n", 4*i)
	}
	// Race-free tail: each thread hammers its own cell.
	b.WriteString("\tmov.u32 %r2, %ctaid.x;\n")
	b.WriteString("\tmov.u32 %r3, %ntid.x;\n")
	b.WriteString("\tmul.lo.u32 %r4, %r2, %r3;\n")
	b.WriteString("\tadd.u32 %r4, %r4, %r1;\n")
	b.WriteString("\tmul.wide.u32 %rd2, %r4, 4;\n")
	b.WriteString("\tadd.u64 %rd3, %rd1, %rd2;\n")
	b.WriteString("\tmov.u32 %r5, 0;\n")
	b.WriteString("TAIL:\n")
	fmt.Fprintf(&b, "\tst.global.u32 [%%rd3+%d], %%r4;\n", tailBase)
	b.WriteString("\tadd.u32 %r5, %r5, 1;\n")
	fmt.Fprintf(&b, "\tsetp.lt.u32 %%p1, %%r5, %d;\n", tailIters)
	b.WriteString("\t@%p1 bra TAIL;\n")
	b.WriteString("\tret;\n}\n")
	return b.String(), tailBase + protoThreads*4 + 4096
}

const (
	protoGrid    = 4
	protoBlock   = 64
	protoThreads = protoGrid * protoBlock
)

// countConn counts every byte crossing the socket in either direction.
type countConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	m, err := c.Conn.Read(p)
	c.n.Add(int64(m))
	return m, err
}

func (c countConn) Write(p []byte) (int, error) {
	m, err := c.Conn.Write(p)
	c.n.Add(int64(m))
	return m, err
}

// runProtoBench measures both protocols against an in-process daemon on
// a loopback socket and writes the artifact. minSpeedup > 0 gates the
// run: the stream must beat JSON on bytes AND time-to-first-race by at
// least that factor at every report size, warm and cold.
func runProtoBench(jobs, workers int, minSpeedup float64, outPath string) error {
	srv := server.New(server.SchedulerOptions{
		Workers:  workers,
		QueueCap: 4 * jobs,
		// Cold phases must miss: every module distinct, caches larger
		// than one phase so eviction noise never mixes into the timing.
		CacheEntries: 4 * jobs,
		SrcEntries:   4 * jobs,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	addr := ln.Addr().String()

	res := ProtoBench{
		BenchEnv:  benchEnv(),
		Workers:   workers,
		Jobs:      jobs,
		TailIters: protoTailIters,
	}
	for _, racy := range []int{1, 8, 32} {
		sz, err := protoSize(addr, jobs, racy)
		if err != nil {
			return fmt.Errorf("report size %d: %w", racy, err)
		}
		res.Sizes = append(res.Sizes, *sz)
		fmt.Printf("proto %2d racy stores (%d races, %d B module): ttfr %6.2fms json / %6.2fms stream (%.2fx warm), bytes/job %7.0f json / %7.0f stream (%.1fx warm)\n",
			racy, sz.Races, sz.ModuleBytes,
			sz.JSONWarm.TTFRMS, sz.StreamWarm.TTFRMS, sz.TTFRSpeedupWarm,
			sz.JSONWarm.BytesPerJob, sz.StreamWarm.BytesPerJob, sz.BytesFactorWarm)
		if !sz.DigestsIdentical {
			return fmt.Errorf("report size %d: streamed and polled reports diverge", racy)
		}
		if minSpeedup > 0 {
			for _, g := range []struct {
				name string
				v    float64
			}{
				{"ttfr cold", sz.TTFRSpeedupCold},
				{"ttfr warm", sz.TTFRSpeedupWarm},
				{"bytes cold", sz.BytesFactorCold},
				{"bytes warm", sz.BytesFactorWarm},
			} {
				if g.v < minSpeedup {
					return fmt.Errorf("report size %d: %s factor %.2f below gate %.2f", racy, g.name, g.v, minSpeedup)
				}
			}
		}
	}

	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("proto bench → %s\n", outPath)
	return nil
}

const protoTailIters = 3000

// protoSize runs all four phases at one report size.
func protoSize(addr string, jobs, racy int) (*ProtoSize, error) {
	src, bufBytes := protoKernel(racy, protoTailIters)
	sz := &ProtoSize{RacyStores: racy, ModuleBytes: len(src)}

	// Cold variants are namespaced per surface so neither protocol's
	// cold phase inherits session-cache warmth from the other's.
	mkVariant := func(tag string) func(int) string {
		return func(i int) string {
			return fmt.Sprintf("// variant %s.%d.%d\n%s", tag, racy, i, src)
		}
	}

	// JSON phases.
	var jsonDigest string
	for _, warm := range []bool{false, true} {
		phase, dig, err := jsonPhase(addr, jobs, warm, src, mkVariant("json"), bufBytes)
		if err != nil {
			return nil, fmt.Errorf("json warm=%v: %w", warm, err)
		}
		if warm {
			sz.JSONWarm = *phase
			jsonDigest = dig
		} else {
			sz.JSONCold = *phase
		}
	}
	// Stream phases.
	var streamDigest string
	for _, warm := range []bool{false, true} {
		phase, dig, races, err := streamPhase(addr, jobs, warm, src, mkVariant("stream"), bufBytes)
		if err != nil {
			return nil, fmt.Errorf("stream warm=%v: %w", warm, err)
		}
		if warm {
			sz.StreamWarm = *phase
			streamDigest = dig
			sz.Races = races
		} else {
			sz.StreamCold = *phase
		}
	}

	sz.DigestsIdentical = jsonDigest != "" && jsonDigest == streamDigest
	if sz.StreamCold.TTFRMS > 0 {
		sz.TTFRSpeedupCold = sz.JSONCold.TTFRMS / sz.StreamCold.TTFRMS
	}
	if sz.StreamWarm.TTFRMS > 0 {
		sz.TTFRSpeedupWarm = sz.JSONWarm.TTFRMS / sz.StreamWarm.TTFRMS
	}
	if sz.StreamCold.BytesPerJob > 0 {
		sz.BytesFactorCold = sz.JSONCold.BytesPerJob / sz.StreamCold.BytesPerJob
	}
	if sz.StreamWarm.BytesPerJob > 0 {
		sz.BytesFactorWarm = sz.JSONWarm.BytesPerJob / sz.StreamWarm.BytesPerJob
	}
	return sz, nil
}

// jsonPhase drives `jobs` sequential submit+poll rounds, counting
// socket bytes, and returns the canonical digest of the last report.
func jsonPhase(addr string, jobs int, warm bool, src string, variant func(int) string, bufBytes int) (*ProtoPhase, string, error) {
	var bytesOnWire atomic.Int64
	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, a string) (net.Conn, error) {
				c, err := net.Dial(network, a)
				if err != nil {
					return nil, err
				}
				return countConn{Conn: c, n: &bytesOnWire}, nil
			},
		},
	}
	defer client.CloseIdleConnections()
	base := "http://" + addr

	oneJob := func(modSrc string) (time.Duration, *server.JobInfo, error) {
		start := time.Now()
		body, _ := json.Marshal(server.JobRequest{
			PTX: modSrc, Kernel: "k", Grid: protoGrid, Block: protoBlock,
			Buffers: []int{bufBytes},
		})
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		var info server.JobInfo
		if err := decodeProto(resp, &info); err != nil {
			return 0, nil, fmt.Errorf("submit: %w", err)
		}
		for attempt := 0; ; {
			resp, err := client.Get(fmt.Sprintf("%s/jobs/%s?wait_ms=2000", base, info.ID))
			if err != nil {
				return 0, nil, err
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
				resp.Body.Close()
				time.Sleep(50 * time.Millisecond << attempt)
				attempt++
				continue
			}
			if err := decodeProto(resp, &info); err != nil {
				return 0, nil, fmt.Errorf("poll: %w", err)
			}
			switch info.Status {
			case server.StatusDone:
				// First moment the client can see any race.
				return time.Since(start), &info, nil
			case server.StatusFailed, server.StatusTimeout:
				return 0, nil, fmt.Errorf("job %s: %s", info.Status, info.Error)
			}
		}
	}

	if warm { // prime the module cache outside the measured window
		if _, _, err := oneJob(src); err != nil {
			return nil, "", err
		}
		bytesOnWire.Store(0)
	}
	var ttfr time.Duration
	var last *server.JobInfo
	start := time.Now()
	for i := 0; i < jobs; i++ {
		modSrc := src
		if !warm {
			modSrc = variant(i)
		}
		d, info, err := oneJob(modSrc)
		if err != nil {
			return nil, "", err
		}
		ttfr += d
		last = info
	}
	total := time.Since(start)

	var dig string
	if last != nil && last.Result != nil {
		if rep, err := last.Result.CoreReport(); err == nil {
			dig = rep.CanonicalDigest()
		}
	}
	return &ProtoPhase{
		JobsPerSec:  float64(jobs) / total.Seconds(),
		TTFRMS:      float64(ttfr.Microseconds()) / 1000 / float64(jobs),
		BytesPerJob: float64(bytesOnWire.Load()) / float64(jobs),
	}, dig, nil
}

// streamPhase drives `jobs` sequential launches over one counted stream
// connection and returns the digest of the last summary plus its static
// race count.
func streamPhase(addr string, jobs int, warm bool, src string, variant func(int) string, bufBytes int) (*ProtoPhase, string, int, error) {
	var bytesOnWire atomic.Int64
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, "", 0, err
	}
	c, err := wire.Handshake(countConn{Conn: raw, n: &bytesOnWire}, addr, "benchtab")
	if err != nil {
		raw.Close()
		return nil, "", 0, err
	}
	defer c.Close()

	oneJob := func(seq uint64, modSrc string) (ttfr time.Duration, sum wire.Summary, err error) {
		start := time.Now()
		if _, _, err = c.UploadModule([]byte(modSrc)); err != nil {
			return 0, sum, err
		}
		if err = c.Launch(wire.LaunchSpec{
			Seq: seq, Kernel: "k", Grid: protoGrid, Block: protoBlock,
			Buffers: []int{bufBytes},
		}); err != nil {
			return 0, sum, err
		}
		for {
			ev, nerr := c.Next()
			if nerr != nil {
				return 0, sum, nerr
			}
			switch ev.Type {
			case wire.FReject:
				return 0, sum, fmt.Errorf("rejected (%s): %s", ev.Reject.Code, ev.Reject.Msg)
			case wire.FRace:
				if ttfr == 0 {
					ttfr = time.Since(start)
				}
			case wire.FSummary:
				if ev.Summary.Status != server.StatusDone {
					return 0, sum, fmt.Errorf("job %s: %s", ev.Summary.Status, ev.Summary.Error)
				}
				if ttfr == 0 { // no race streamed (shouldn't happen here)
					ttfr = time.Since(start)
				}
				return ttfr, ev.Summary, nil
			}
		}
	}

	if warm { // prime module + session caches outside the measured window
		if _, _, err := oneJob(1<<32, src); err != nil {
			return nil, "", 0, err
		}
		bytesOnWire.Store(0)
	}
	var ttfrSum time.Duration
	var last wire.Summary
	start := time.Now()
	for i := 0; i < jobs; i++ {
		modSrc := src
		if !warm {
			modSrc = variant(i)
		}
		ttfr, sum, err := oneJob(uint64(i+1), modSrc)
		if err != nil {
			return nil, "", 0, err
		}
		ttfrSum += ttfr
		last = sum
	}
	total := time.Since(start)
	c.Bye()

	return &ProtoPhase{
		JobsPerSec:  float64(jobs) / total.Seconds(),
		TTFRMS:      float64(ttfrSum.Microseconds()) / 1000 / float64(jobs),
		BytesPerJob: float64(bytesOnWire.Load()) / float64(jobs),
	}, last.Report().CanonicalDigest(), len(last.Races), nil
}

func decodeProto(resp *http.Response, into *server.JobInfo) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorJSON
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s (%s)", e.Error, e.Code)
		}
		return fmt.Errorf("server: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
