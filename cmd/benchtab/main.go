// Command benchtab regenerates the evaluation artifacts: Table 1
// (benchmark characteristics and races found), Figure 9 (fraction of
// static instructions instrumented before/after pruning), Figure 10
// (detection overhead over native execution), and the PTVC format
// distribution of Figure 7.
//
// With -server it instead benchmarks the barracudad detection service
// end-to-end over loopback HTTP — jobs/sec with a cold vs warm module
// cache — and writes a machine-readable artifact (default
// BENCH_server.json) so successive PRs have a perf trajectory.
//
// With -scaling it measures detection throughput against the number of
// event queues (1, 2, 4, 8): each benchmark's record stream is captured
// once and replayed through the multi-queue transport, asserting at
// every width that the canonical race report matches the 1-queue run,
// and writes BENCH_scaling.json.
//
// With -sim it A/B-benchmarks the warp-vectorized interpreter (warp-major
// dispatch, static-uniformity scalarization, pooled launch state) against
// the legacy lane-major interpreter over the suite, verifying that both
// paths produce canonically identical reports, and writes BENCH_sim.json.
//
// With -detect it A/B-benchmarks the coalesced-span shadow fast path (one
// region-locked span operation per uniform warp access) against the
// per-cell baseline over synthetic coalesced, strided and divergent
// access mixes, verifying canonical-digest equality on every run, and
// writes BENCH_detect.json.
//
// With -shadow it A/B-benchmarks the adaptive ownership tier (exclusive
// regions answered with one region-level clock comparison instead of
// per-epoch checks) against the span baseline over private, block-owned
// and contended mixes, and drains a page sweep under a shadow byte cap
// a quarter of its unbounded footprint, verifying the cap holds. Writes
// BENCH_shadow.json.
//
// With -fleet it runs the deterministic cluster simulator at N ∈
// {1,2,4,8} workers under identical zipf traffic, comparing cache-affine
// ring routing against the seeded-random baseline (warm hit rate and
// jobs/sec on the virtual clock), and writes BENCH_fleet.json. The run
// fails if ring routing does not beat random on hit rate at N=4, if any
// job is lost, or if replaying a scenario changes its schedule digest.
//
// With -filter it A/B-benchmarks producer-side epoch filtering (the
// per-warp interval filter cache plus the static log-once tier) against
// the unfiltered capture path over loop-heavy, barrier-dense and
// adversarial no-repeat mixes — full live detections, digest-gated —
// and writes BENCH_filter.json.
//
// With -repair it benchmarks verified repair synthesis through the
// scheduler's /v1/repair path — repairs/sec with every request a
// distinct module (full synthesis plus dynamic verification) vs the
// same request replayed from the per-entry memo — gated on the warm
// speedup factor, and writes BENCH_repair.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"barracuda/internal/bench"
	"barracuda/internal/detector"
	"barracuda/internal/ptvc"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		fig9     = flag.Bool("fig9", false, "regenerate Figure 9")
		fig10    = flag.Bool("fig10", false, "regenerate Figure 10")
		pformats = flag.Bool("ptvc", false, "PTVC format distribution per benchmark (Figure 7)")
		all      = flag.Bool("all", false, "everything")
		serverB  = flag.Bool("server", false, "benchmark the detection service (cold vs warm cache) instead")
		staticB  = flag.Bool("static", false, "benchmark the static instrumentation pruner instead")
		scalingB = flag.Bool("scaling", false, "benchmark detection throughput vs queue count instead")
		simB     = flag.Bool("sim", false, "benchmark the warp-vectorized interpreter against the lane-major baseline instead")
		detectB  = flag.Bool("detect", false, "benchmark the coalesced-span shadow fast path against the per-cell baseline instead")
		shadowB  = flag.Bool("shadow", false, "benchmark the adaptive ownership tier and the memory-bounded shadow instead")
		fleetB   = flag.Bool("fleet", false, "benchmark fleet warm routing against random placement in the cluster simulator instead")
		protoB   = flag.Bool("proto", false, "benchmark the binary streaming protocol against JSON submit+poll (bytes on wire, time-to-first-race) instead")
		repairB  = flag.Bool("repair", false, "benchmark verified repair synthesis (cold vs memoized warm) instead")
		filterB  = flag.Bool("filter", false, "benchmark producer-side epoch filtering against the unfiltered capture path instead")
		minSpeed = flag.Float64("min-speedup", 0, "with -sim, -detect, -shadow, -repair or -filter: fail unless the speedup reaches this factor")
		minGain  = flag.Float64("min-hit-gain", 0, "with -fleet: fail unless ring/random hit-rate gain at N=4 reaches this factor")
		jobs     = flag.Int("jobs", 32, "jobs per phase for -server and -repair")
		workers  = flag.Int("workers", 4, "detection workers for -server")
		out      = flag.String("o", "", "output artifact path (default BENCH_server.json / BENCH_static.json / BENCH_scaling.json)")
	)
	flag.Parse()
	if *serverB {
		// Throughput benchmarks use every core the host grants.
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_server.json"
		}
		if err := runServerBench(*jobs, *workers, path); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *scalingB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_scaling.json"
		}
		if err := runScalingBench(path); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *simB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_sim.json"
		}
		if err := runSimBench(path, *minSpeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *detectB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_detect.json"
		}
		if err := runDetectBench(path, *minSpeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *shadowB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_shadow.json"
		}
		if err := runShadowBench(path, *minSpeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *protoB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_proto.json"
		}
		if err := runProtoBench(*jobs, *workers, *minSpeed, path); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetB {
		path := *out
		if path == "" {
			path = "BENCH_fleet.json"
		}
		if err := runFleetBench(path, *minGain); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *filterB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_filter.json"
		}
		if err := runFilterBench(path, *minSpeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *repairB {
		runtime.GOMAXPROCS(runtime.NumCPU())
		path := *out
		if path == "" {
			path = "BENCH_repair.json"
		}
		if err := runRepairBench(*jobs, *minSpeed, path); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if *staticB {
		path := *out
		if path == "" {
			path = "BENCH_static.json"
		}
		if err := runStaticBench(path); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if !*table1 && !*fig9 && !*fig10 && !*pformats {
		*all = true
	}
	if *all {
		*table1, *fig9, *fig10, *pformats = true, true, true, true
	}
	if err := run(*table1, *fig9, *fig10, *pformats); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(table1, fig9, fig10, pformats bool) error {
	if table1 {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: benchmarks (ours / paper in parentheses)")
		fmt.Printf("%-34s %16s %18s %14s %s\n", "benchmark", "static insns", "total threads", "mem MB", "races found")
		for _, r := range rows {
			races := "-"
			if r.RacesFound > 0 {
				races = fmt.Sprintf("%d %s", r.RacesFound, r.RaceSpace)
			}
			paperRaces := r.PaperRaces
			if paperRaces == "" {
				paperRaces = "-"
			}
			fmt.Printf("%-34s %6d (%6d) %8d (%8d) %6.1f (%5d) %s (%s)\n",
				r.Name, r.StaticInstrs, r.PaperStatic, r.Threads, r.PaperThreads,
				r.MemMB, r.PaperMemMB, races, paperRaces)
		}
		fmt.Println()
	}
	if fig9 {
		rows, err := bench.Fig9()
		if err != nil {
			return err
		}
		fmt.Println("Figure 9: percentage of static PTX instructions instrumented")
		fmt.Printf("%-34s %14s %12s %12s\n", "benchmark", "unoptimized", "optimized", "static")
		for _, r := range rows {
			fmt.Printf("%-34s %13.1f%% %11.1f%% %11.1f%%\n",
				r.Name, 100*r.Unoptimized, 100*r.Optimized, 100*r.Static)
		}
		fmt.Println()
	}
	if fig10 {
		rows, err := bench.Fig10()
		if err != nil {
			return err
		}
		fmt.Println("Figure 10: detection overhead normalized to native execution")
		fmt.Printf("%-34s %12s %12s %10s\n", "benchmark", "native", "detected", "overhead")
		for _, r := range rows {
			fmt.Printf("%-34s %12v %12v %9.1fx\n", r.Name,
				r.Native.Round(0), r.Detected.Round(0), r.Overhead)
		}
		fmt.Println()
	}
	if pformats {
		fmt.Println("Figure 7: PTVC format usage, sampled at every memory record")
		fmt.Printf("%-34s %11s %10s %16s %10s\n", "benchmark", "CONVERGED", "DIVERGED", "NESTEDDIVERGED", "SPARSEVC")
		for _, b := range bench.All() {
			res, err := bench.Detect(b, detector.Config{})
			if err != nil {
				return err
			}
			var total uint64
			for _, n := range res.FormatHist {
				total += n
			}
			pct := func(f ptvc.Format) float64 {
				if total == 0 {
					return 0
				}
				return 100 * float64(res.FormatHist[f]) / float64(total)
			}
			fmt.Printf("%-34s %10.1f%% %9.1f%% %15.1f%% %9.1f%%\n", b.Name,
				pct(ptvc.Converged), pct(ptvc.Diverged), pct(ptvc.NestedDiverged), pct(ptvc.SparseVC))
		}
		fmt.Println()
	}
	return nil
}
