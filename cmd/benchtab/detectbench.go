package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
)

// DetectBench is the BENCH_detect.json schema: the coalesced-span shadow
// fast path (one region-locked span operation per uniform warp access)
// measured A/B against the per-cell baseline over synthetic coalesced,
// strided and divergent access mixes.
type DetectBench struct {
	BenchEnv

	// CoalescedSpeedup is the headline number the fast path exists for:
	// per-cell drain time over span drain time on the fully-coalesced mix.
	CoalescedSpeedup float64 `json:"coalesced_speedup"`
	DigestsEqual     bool    `json:"digests_equal"`

	Points []DetectBenchPoint `json:"points"`
}

// DetectBenchPoint is one access mix's measurement.
type DetectBenchPoint struct {
	Mix          string `json:"mix"`
	Records      int    `json:"records"`
	LaneAccesses uint64 `json:"lane_accesses"`

	CellRecordsPerSec float64 `json:"per_cell_records_per_sec"`
	SpanRecordsPerSec float64 `json:"span_records_per_sec"`
	CellNSPerAccess   float64 `json:"per_cell_ns_per_warp_access"`
	SpanNSPerAccess   float64 `json:"span_ns_per_warp_access"`

	Speedup      float64 `json:"speedup"`
	DigestsEqual bool    `json:"digests_equal"`
}

// runDetectBench runs the shadow-path A/B experiment, writes the
// artifact, and (when minSpeedup > 0) enforces the perf and equivalence
// gate on the coalesced mix.
func runDetectBench(outPath string, minSpeedup float64) error {
	r, err := bench.DetectBench(bench.DetectOptions{})
	if err != nil {
		return err
	}
	out := DetectBench{
		BenchEnv:         benchEnv(),
		CoalescedSpeedup: r.CoalescedSpeedup,
		DigestsEqual:     r.DigestsEqual,
	}
	fmt.Println("shadow-path A/B: per-cell baseline vs coalesced-span fast path")
	fmt.Printf("%-10s %9s %14s %14s %12s %12s %8s\n",
		"mix", "records", "cell rec/s", "span rec/s", "cell ns/acc", "span ns/acc", "speedup")
	for _, p := range r.Points {
		out.Points = append(out.Points, DetectBenchPoint{
			Mix:               p.Mix,
			Records:           p.Records,
			LaneAccesses:      p.LaneAccesses,
			CellRecordsPerSec: p.CellRecordsPerSec,
			SpanRecordsPerSec: p.SpanRecordsPerSec,
			CellNSPerAccess:   p.CellNSPerAccess,
			SpanNSPerAccess:   p.SpanNSPerAccess,
			Speedup:           p.Speedup,
			DigestsEqual:      p.DigestsEqual,
		})
		fmt.Printf("%-10s %9d %14.0f %14.0f %12.1f %12.1f %7.2fx\n",
			p.Mix, p.Records, p.CellRecordsPerSec, p.SpanRecordsPerSec,
			p.CellNSPerAccess, p.SpanNSPerAccess, p.Speedup)
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: coalesced speedup %.2fx, digests_equal=%v\n",
		outPath, out.CoalescedSpeedup, out.DigestsEqual)
	if !out.DigestsEqual {
		return fmt.Errorf("shadow paths disagree: canonical digests differ")
	}
	if minSpeedup > 0 && out.CoalescedSpeedup < minSpeedup {
		return fmt.Errorf("coalesced speedup %.3fx below required %.3fx", out.CoalescedSpeedup, minSpeedup)
	}
	return nil
}
