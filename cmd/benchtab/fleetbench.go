package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/fleet/sim"
)

// FleetBench is the BENCH_fleet.json schema: one simulated zipf
// scenario per fleet size, each run under both cache-affine ring
// routing and the seeded-random baseline. The virtual clock makes every
// number here a property of the scheduling policy alone — no host
// timing noise — so the artifact is byte-stable for a given seed.
type FleetBench struct {
	BenchEnv
	Seed    int64             `json:"seed"`
	Jobs    int               `json:"jobs"`
	Keys    int               `json:"keys"`
	Cache   int               `json:"cache_slots"`
	Traffic string            `json:"traffic"`
	Points  []FleetBenchPoint `json:"points"`
}

// FleetBenchPoint is one fleet size's ring-vs-random comparison.
type FleetBenchPoint struct {
	Nodes          int     `json:"nodes"`
	RingJobsPerSec float64 `json:"ring_jobs_per_sec"`
	RandJobsPerSec float64 `json:"random_jobs_per_sec"`
	RingHitRate    float64 `json:"ring_hit_rate"`
	RandHitRate    float64 `json:"random_hit_rate"`
	HitGain        float64 `json:"hit_gain"` // ring / random hit rate
	RingPrimary    float64 `json:"ring_primary_frac"`
	Lost           int     `json:"lost"`
	ReportsEqual   bool    `json:"reports_equal"` // ring vs random report digest
	ScheduleDigest string  `json:"schedule_digest"`
}

// runFleetBench sweeps fleet sizes under identical zipf traffic and
// fails if warm ring routing does not earn its keep over random
// placement at N=4, or if any run loses jobs or diverges.
func runFleetBench(outPath string, minHitGain float64) error {
	res := FleetBench{
		BenchEnv: benchEnv(),
		Seed:     1, Jobs: 20000, Keys: 256, Cache: 24, Traffic: sim.TrafficZipf,
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		base := sim.Config{
			Seed: res.Seed, Nodes: nodes, Capacity: 2, Jobs: res.Jobs,
			Traffic: res.Traffic, Keys: res.Keys, CacheSlots: res.Cache,
			// Moderate, per-fleet-scaled load: affinity should dominate,
			// not queue-overflow spill.
			ArrivalRate: 100 * float64(nodes),
		}
		ring, err := sim.Run(base)
		if err != nil {
			return err
		}
		// Determinism gate: the same scenario must replay byte-identically.
		again, err := sim.Run(base)
		if err != nil {
			return err
		}
		if again.ScheduleDigest != ring.ScheduleDigest {
			return fmt.Errorf("fleet bench: nondeterministic schedule at nodes=%d", nodes)
		}
		rndCfg := base
		rndCfg.RandomRouting = true
		random, err := sim.Run(rndCfg)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, FleetBenchPoint{
			Nodes:          nodes,
			RingJobsPerSec: ring.JobsPerSec,
			RandJobsPerSec: random.JobsPerSec,
			RingHitRate:    ring.HitRate,
			RandHitRate:    random.HitRate,
			HitGain:        safeDiv(ring.HitRate, random.HitRate),
			RingPrimary:    ring.PrimaryFrac,
			Lost:           ring.Lost + random.Lost,
			ReportsEqual:   ring.ReportDigest == random.ReportDigest,
			ScheduleDigest: ring.ScheduleDigest,
		})
	}

	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet bench (%d jobs, %s traffic over %d keys, %d cache slots, seed %d):\n",
		res.Jobs, res.Traffic, res.Keys, res.Cache, res.Seed)
	for _, p := range res.Points {
		eq := "reports match"
		if !p.ReportsEqual {
			eq = "REPORTS DIVERGED"
		}
		fmt.Printf("  nodes=%d  ring %5.1f%% warm vs random %5.1f%% (gain %.2fx)  %6.0f vs %6.0f jobs/s  %s\n",
			p.Nodes, 100*p.RingHitRate, 100*p.RandHitRate, p.HitGain,
			p.RingJobsPerSec, p.RandJobsPerSec, eq)
	}
	fmt.Printf("→ %s\n", outPath)

	for _, p := range res.Points {
		if p.Lost != 0 {
			return fmt.Errorf("fleet bench: %d jobs lost at nodes=%d", p.Lost, p.Nodes)
		}
		if !p.ReportsEqual {
			return fmt.Errorf("fleet bench: report digest differs between routings at nodes=%d", p.Nodes)
		}
		if p.Nodes >= 4 && p.RingHitRate <= p.RandHitRate {
			return fmt.Errorf("fleet bench: ring hit rate %.3f not above random %.3f at nodes=%d",
				p.RingHitRate, p.RandHitRate, p.Nodes)
		}
		if minHitGain > 0 && p.Nodes == 4 && p.HitGain < minHitGain {
			return fmt.Errorf("fleet bench: hit gain %.3fx below the -min-hit-gain floor %.2fx at nodes=4",
				p.HitGain, minHitGain)
		}
	}
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
