package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
)

// ScalingBench is the BENCH_scaling.json schema. NumCPU is recorded
// because the consumer-side speedup is bounded by the cores actually
// available: on a single-core host every width shares one CPU and the
// interesting signal is that throughput does not *degrade* and that
// races_equal holds everywhere.
type ScalingBench struct {
	BenchEnv
	Benchmarks int                 `json:"benchmarks"`
	Points     []ScalingBenchPoint `json:"points"`
}

// ScalingBenchPoint is one queue width's aggregate measurement.
type ScalingBenchPoint struct {
	Queues        int     `json:"queues"`
	Records       int     `json:"records"`
	DurationMS    float64 `json:"duration_ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Speedup       float64 `json:"speedup"`
	Efficiency    float64 `json:"parallel_efficiency"`
	RacesEqual    bool    `json:"races_equal"`
}

// runScalingBench measures suite throughput at each queue width and
// writes the artifact.
func runScalingBench(outPath string) error {
	points, err := bench.Scaling(bench.ScalingOptions{})
	if err != nil {
		return err
	}
	res := ScalingBench{
		BenchEnv:   benchEnv(),
		Benchmarks: len(bench.All()),
	}
	for _, p := range points {
		res.Points = append(res.Points, ScalingBenchPoint{
			Queues:        p.Queues,
			Records:       p.Records,
			DurationMS:    float64(p.Duration.Microseconds()) / 1000,
			RecordsPerSec: p.RecordsPerSec,
			Speedup:       p.Speedup,
			Efficiency:    p.Efficiency,
			RacesEqual:    p.RacesEqual,
		})
	}
	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("scaling bench (%d benchmarks, %d CPUs):\n", res.Benchmarks, res.NumCPU)
	for _, p := range res.Points {
		eq := "reports match 1-queue"
		if !p.RacesEqual {
			eq = "REPORTS DIVERGED"
		}
		fmt.Printf("  queues=%d  %11.0f records/s  speedup %.2fx  efficiency %.2f  %s\n",
			p.Queues, p.RecordsPerSec, p.Speedup, p.Efficiency, eq)
	}
	fmt.Printf("→ %s\n", outPath)
	for _, p := range res.Points {
		if !p.RacesEqual {
			return fmt.Errorf("determinism contract violated at queues=%d", p.Queues)
		}
	}
	return nil
}
