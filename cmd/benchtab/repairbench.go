package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"barracuda/internal/server"
)

// repairKernel is the workload for the repair benchmark: the canonical
// lost-update counter, whose repair loop runs a baseline launch, patch
// verification launches, and a composition launch — the full cost the
// module-cache memo removes on a warm repeat.
const repairKernel = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`

// RepairBench is the BENCH_repair.json schema.
type RepairBench struct {
	BenchEnv
	Repairs           int     `json:"repairs_per_phase"`
	ColdRepairsPerSec float64 `json:"cold_repairs_per_sec"` // distinct modules: full synthesis + verification
	WarmRepairsPerSec float64 `json:"warm_repairs_per_sec"` // same request: memo lookup on the cache entry
	WarmSpeedup       float64 `json:"warm_speedup"`
	PatchRunsPerCold  int     `json:"patch_runs_per_cold"` // dynamic launches one cold repair performs
	VerifiedPerCold   int     `json:"verified_per_cold"`
	MinSpeedup        float64 `json:"min_speedup"` // gate: warm must reach this factor over cold
}

// runRepairBench drives the verified-repair loop through the scheduler's
// /v1/repair path, cold (every request a distinct module) vs warm (the
// same request replayed from the per-entry memo), and writes the
// artifact. The run fails when a repair does not verify or the warm
// speedup misses the gate.
func runRepairBench(repairs int, minSpeedup float64, outPath string) error {
	srv := server.New(server.SchedulerOptions{
		Workers: runtime.GOMAXPROCS(0),
		// Cold must never hit: keep every distinct module resident so
		// eviction noise cannot leak into the warm phase either.
		CacheEntries: repairs + 1,
	})
	defer srv.Close()
	sched := srv.Scheduler()

	repairOne := func(src string) (*server.RepairResponse, error) {
		res, err := sched.Repair(server.RepairRequest{PTX: src})
		if err != nil {
			return nil, err
		}
		rep := res.Report
		if rep.Verified == 0 || rep.FinalRaces != 0 {
			return nil, fmt.Errorf("repair did not verify: verified=%d final=%d", rep.Verified, rep.FinalRaces)
		}
		return res, nil
	}

	// Cold: every repair is a distinct module — parse, instrument,
	// baseline, patch verification, composition, from scratch.
	start := time.Now()
	patchRuns, verified := 0, 0
	for i := 0; i < repairs; i++ {
		res, err := repairOne(fmt.Sprintf("// cold variant %d\n%s", i, repairKernel))
		if err != nil {
			return fmt.Errorf("cold repair %d: %w", i, err)
		}
		if res.CacheHit {
			return fmt.Errorf("cold repair %d hit the cache", i)
		}
		patchRuns, verified = res.Report.PatchRuns, res.Report.Verified
	}
	cold := time.Since(start)

	// Warm: prime once, then every repeat is a pure memo lookup.
	if _, err := repairOne(repairKernel); err != nil {
		return fmt.Errorf("warm prime: %w", err)
	}
	start = time.Now()
	for i := 0; i < repairs; i++ {
		res, err := repairOne(repairKernel)
		if err != nil {
			return fmt.Errorf("warm repair %d: %w", i, err)
		}
		if !res.CacheHit {
			return fmt.Errorf("warm repair %d missed the memo", i)
		}
	}
	warm := time.Since(start)

	res := RepairBench{
		BenchEnv:          benchEnv(),
		Repairs:           repairs,
		ColdRepairsPerSec: float64(repairs) / cold.Seconds(),
		WarmRepairsPerSec: float64(repairs) / warm.Seconds(),
		PatchRunsPerCold:  patchRuns,
		VerifiedPerCold:   verified,
		MinSpeedup:        minSpeedup,
	}
	if res.ColdRepairsPerSec > 0 {
		res.WarmSpeedup = res.WarmRepairsPerSec / res.ColdRepairsPerSec
	}
	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("repair bench: cold %.1f repairs/s (%d launches each), warm %.1f repairs/s (%.2fx) → %s\n",
		res.ColdRepairsPerSec, res.PatchRunsPerCold, res.WarmRepairsPerSec, res.WarmSpeedup, outPath)
	if minSpeedup > 0 && res.WarmSpeedup < minSpeedup {
		return fmt.Errorf("warm speedup %.2fx below the %.2fx gate", res.WarmSpeedup, minSpeedup)
	}
	return nil
}
