package main

import "runtime"

// BenchEnv is the host and detector-knob context embedded (flattened)
// in every BENCH_*.json artifact, so perf trajectories across PRs
// compare like with like: the same experiment on a different core count
// or with different adaptive-shadow knobs is a different measurement.
type BenchEnv struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Detector knobs in effect for the artifact's headline runs. Zero
	// values are the defaults (ownership tier off, shadow unbounded,
	// producer filter off).
	Ownership      bool  `json:"ownership"`
	ShadowCapBytes int64 `json:"shadow_cap_bytes"`
	ProducerFilter bool  `json:"producer_filter"`
}

// benchEnv snapshots the host environment with default knob settings.
func benchEnv() BenchEnv {
	return BenchEnv{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}
