package main

import (
	"encoding/json"
	"fmt"
	"os"

	"barracuda/internal/bench"
)

// FilterBenchOut is the BENCH_filter.json schema: producer-side epoch
// filtering measured A/B against the unfiltered capture path over
// loop-heavy, barrier-dense and adversarial no-repeat mixes, each a
// full live detection whose canonical report must match the baseline.
type FilterBenchOut struct {
	BenchEnv

	// LoopSpeedup is the headline number the producer filter exists
	// for: unfiltered detection time over filtered time on the
	// loop-heavy mix.
	LoopSpeedup float64 `json:"loop_speedup"`
	// AdversarialOverhead is the honest cost bound: the relative
	// slowdown on a mix where every probe misses.
	AdversarialOverhead float64 `json:"adversarial_overhead"`
	DigestsEqual        bool    `json:"digests_equal"`

	Points []bench.FilterPoint `json:"points"`
}

// runFilterBench runs the producer-filter A/B experiment, writes the
// artifact, and (when minSpeedup > 0) enforces the perf and
// equivalence gate on the loop-heavy mix.
func runFilterBench(outPath string, minSpeedup float64) error {
	r, err := bench.FilterBench(bench.FilterOptions{})
	if err != nil {
		return err
	}
	env := benchEnv()
	env.ProducerFilter = true
	out := FilterBenchOut{
		BenchEnv:            env,
		LoopSpeedup:         r.LoopSpeedup,
		AdversarialOverhead: r.AdversarialOverhead,
		DigestsEqual:        r.DigestsEqual,
		Points:              r.Points,
	}
	fmt.Println("producer-filter A/B: unfiltered capture vs epoch-filtered capture (full live detection)")
	fmt.Printf("%-14s %9s %10s %10s %8s %11s %10s %10s\n",
		"mix", "records", "base ms", "filt ms", "speedup", "suppressed", "dyn hits", "elides")
	for _, p := range r.Points {
		fmt.Printf("%-14s %9d %10.1f %10.1f %7.2fx %10.1f%% %10d %10d\n",
			p.Mix, p.Records, p.BaseNS/1e6, p.FiltNS/1e6,
			p.Speedup, p.SuppressedFrac*100, p.Hits, p.StaticElides)
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: loop speedup %.2fx, adversarial overhead %.1f%%, digests_equal=%v\n",
		outPath, out.LoopSpeedup, out.AdversarialOverhead*100, out.DigestsEqual)
	if !out.DigestsEqual {
		return fmt.Errorf("producer filter disagrees with baseline: canonical digests or record counts differ")
	}
	if minSpeedup > 0 && out.LoopSpeedup < minSpeedup {
		return fmt.Errorf("loop-heavy speedup %.3fx below required %.3fx", out.LoopSpeedup, minSpeedup)
	}
	return nil
}
