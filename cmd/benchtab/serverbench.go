package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"barracuda/internal/fleet"
	"barracuda/internal/server"
)

// benchKernel is the workload submitted to the service: small enough
// that per-job cost is dominated by the pipeline front half (parse +
// instrument + load), which is exactly what the module cache removes.
const benchKernel = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

// ServerBench is the BENCH_server.json schema.
type ServerBench struct {
	BenchEnv
	Workers        int     `json:"workers"`
	Jobs           int     `json:"jobs_per_phase"`
	ColdJobsPerSec float64 `json:"cold_jobs_per_sec"` // every job a distinct module (all cache misses)
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"` // every job the same module (all cache hits)
	WarmSpeedup    float64 `json:"warm_speedup"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	DetectMeanMS   float64 `json:"detect_mean_ms"`
}

// runServerBench starts barracudad in-process on a loopback port,
// drives it over real HTTP, and writes the throughput artifact.
func runServerBench(jobs, workers int, outPath string) error {
	srv := server.New(server.SchedulerOptions{
		Workers:  workers,
		QueueCap: 2 * jobs,
		// Cold phase must never hit: cap the cache below the distinct-
		// module count so the warm/cold contrast stays honest even if
		// jobs is small.
		CacheEntries: jobs + 1,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	submit := func(src string) (string, error) {
		body, _ := json.Marshal(server.JobRequest{
			PTX: src, Kernel: "k", Grid: 4, Block: 64, Buffers: []int{4},
		})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			var e server.ErrorJSON
			json.NewDecoder(resp.Body).Decode(&e)
			return "", fmt.Errorf("submit: %d %s", resp.StatusCode, e.Error)
		}
		var info server.JobInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return info.ID, nil
	}
	wait := func(id string) error {
		for attempt := 0; ; {
			resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait_ms=2000", base, id))
			if err != nil {
				return err
			}
			// Honor server backpressure instead of hot-spinning on it.
			if fleet.RetryableStatus(resp.StatusCode) {
				d := fleet.RetryDelay(resp, attempt)
				attempt++
				resp.Body.Close()
				time.Sleep(d)
				continue
			}
			attempt = 0
			var info server.JobInfo
			json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			switch info.Status {
			case server.StatusDone:
				return nil
			case server.StatusFailed, server.StatusTimeout:
				return fmt.Errorf("job %s: %s (%s)", id, info.Status, info.Error)
			}
		}
	}

	// runPhase submits the whole batch concurrently and waits it out.
	runPhase := func(srcFor func(i int) string) (time.Duration, error) {
		start := time.Now()
		ids := make([]string, jobs)
		errs := make([]error, jobs)
		var wg sync.WaitGroup
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id, err := submit(srcFor(i))
				if err != nil {
					errs[i] = err
					return
				}
				ids[i] = id
				errs[i] = wait(id)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Cold: every job is a distinct module → parse+instrument+load each.
	cold, err := runPhase(func(i int) string {
		return fmt.Sprintf("// cold variant %d\n%s", i, benchKernel)
	})
	if err != nil {
		return fmt.Errorf("cold phase: %w", err)
	}
	// Warm: prime one module, then the whole batch hits the cache.
	if id, err := submit(benchKernel); err != nil {
		return fmt.Errorf("warm prime: %w", err)
	} else if err := wait(id); err != nil {
		return fmt.Errorf("warm prime: %w", err)
	}
	warm, err := runPhase(func(i int) string { return benchKernel })
	if err != nil {
		return fmt.Errorf("warm phase: %w", err)
	}

	var metrics server.MetricsJSON
	if resp, err := http.Get(base + "/metrics"); err == nil {
		json.NewDecoder(resp.Body).Decode(&metrics)
		resp.Body.Close()
	}

	res := ServerBench{
		BenchEnv:       benchEnv(),
		Workers:        workers,
		Jobs:           jobs,
		ColdJobsPerSec: float64(jobs) / cold.Seconds(),
		WarmJobsPerSec: float64(jobs) / warm.Seconds(),
		CacheHitRatio:  metrics.Cache.HitRatio,
		DetectMeanMS:   metrics.DetectLatency.MeanMS,
	}
	if res.ColdJobsPerSec > 0 {
		res.WarmSpeedup = res.WarmJobsPerSec / res.ColdJobsPerSec
	}
	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("server bench: cold %.1f jobs/s, warm %.1f jobs/s (%.2fx), hit ratio %.2f → %s\n",
		res.ColdJobsPerSec, res.WarmJobsPerSec, res.WarmSpeedup, res.CacheHitRatio, outPath)
	return nil
}
