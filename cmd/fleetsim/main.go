// Command fleetsim runs the deterministic in-process cluster simulator
// against the real fleet coordinator: N fake barracudad workers, seeded
// synthetic traffic (uniform, zipf-skewed cache keys, or a mixed
// interactive/batch stream), and scripted faults — node crashes, slow
// nodes, heartbeat loss. The same seed and spec reproduce the exact
// same schedule digest, so routing, failover and preemption changes are
// reviewable as digest diffs.
//
// Usage:
//
//	fleetsim -nodes 4 -jobs 50000 -traffic zipf -seed 42
//	fleetsim -nodes 8 -jobs 100000 -traffic mixed -crash 2@0.3 -hbloss 0.05
//	fleetsim -nodes 4 -jobs 20000 -random          # A/B: random routing
//
// By default the scenario is run twice and the run fails unless both
// passes produce identical schedule digests and zero lost jobs — the
// CI smoke contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"barracuda/internal/fleet/sim"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "simulated worker nodes")
		capacity  = flag.Int("capacity", 2, "job slots per node")
		jobs      = flag.Int("jobs", 50000, "jobs to submit")
		seed      = flag.Int64("seed", 1, "PRNG seed (traffic, jitter, faults)")
		traffic   = flag.String("traffic", "zipf", "traffic shape: uniform | zipf | mixed")
		keys      = flag.Int("keys", 64, "distinct module cache keys")
		cache     = flag.Int("cache", 16, "per-node session-cache slots (LRU)")
		inter     = flag.Float64("interactive", 0.2, "interactive fraction (mixed traffic)")
		rate      = flag.Float64("rate", 0, "arrivals per virtual second (0 = 70% of fleet capacity)")
		hbloss    = flag.Float64("hbloss", 0, "per-heartbeat drop probability")
		crash     = flag.String("crash", "", "kill k nodes at a fraction of the traffic horizon, e.g. 2@0.3")
		slow      = flag.String("slow", "", "slow nodes, e.g. 1:4,3:2 (node index:service multiplier)")
		zipfs     = flag.Float64("zipfs", 1.2, "zipf skew exponent (>1)")
		random    = flag.Bool("random", false, "random routing instead of cache-affine ring (A/B baseline)")
		nospill   = flag.Bool("nospill", false, "disable batch spill-to-idle (max affinity, more queueing)")
		repeat    = flag.Int("repeat", 2, "runs of the same scenario; digests must match")
		allowLost = flag.Bool("allow-lost", false, "do not fail the run on lost jobs")
		jsonOut   = flag.Bool("json", false, "emit the full Result as JSON")
	)
	flag.Parse()

	cfg := sim.Config{
		Seed: *seed, Nodes: *nodes, Capacity: *capacity, Jobs: *jobs,
		Traffic: *traffic, Keys: *keys, CacheSlots: *cache, ZipfS: *zipfs,
		InteractiveFrac: *inter, ArrivalRate: *rate,
		HeartbeatLossP: *hbloss, RandomRouting: *random, NoSpill: *nospill,
	}
	var err error
	if cfg.Crashes, err = parseCrash(*crash, *nodes, *jobs, *rate, *capacity); err != nil {
		fatal(err)
	}
	if cfg.SlowFactor, err = parseSlow(*slow); err != nil {
		fatal(err)
	}

	var first sim.Result
	for i := 0; i < max(1, *repeat); i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.ScheduleDigest != first.ScheduleDigest {
			fatal(fmt.Errorf("nondeterministic schedule: run 1 digest %s, run %d digest %s",
				first.ScheduleDigest, i+1, res.ScheduleDigest))
		}
		if res.ReportDigest != first.ReportDigest {
			fatal(fmt.Errorf("nondeterministic reports: run 1 digest %s, run %d digest %s",
				first.ReportDigest, i+1, res.ReportDigest))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(first)
	} else {
		fmt.Printf("fleetsim: %d nodes × %d slots, %d jobs, %s traffic, routing=%s\n",
			first.Nodes, *capacity, first.Jobs, first.Traffic, first.Routing)
		fmt.Printf("  completed %d / lost %d, retries %d, requeued %d, queue-jumps %d, spills %d\n",
			first.Completed, first.Lost, first.Retries, first.Requeued, first.QueueJumps, first.Spills)
		fmt.Printf("  warm hit rate %.1f%%, primary-routing %.1f%%, %.0f jobs/virtual-sec (makespan %.0f ms)\n",
			100*first.HitRate, 100*first.PrimaryFrac, first.JobsPerSec, first.MakespanMS)
		fmt.Printf("  wait p99: interactive %.2f ms (max %.2f), batch %.2f ms\n",
			first.InteractiveP99WaitMS, first.InteractiveMaxWaitMS, first.BatchP99WaitMS)
		fmt.Printf("  schedule digest %s, report digest %s (wall %.0f ms)\n",
			first.ScheduleDigest, first.ReportDigest, first.WallMS)
	}

	if first.ExcludedViolations > 0 {
		fatal(fmt.Errorf("%d assignments routed to an excluded node", first.ExcludedViolations))
	}
	if first.Lost > 0 && !*allowLost {
		fatal(fmt.Errorf("%d jobs lost", first.Lost))
	}
}

// parseCrash turns "k@frac" into k scripted crashes of nodes 0..k-1 at
// frac of the expected traffic horizon (jobs / arrival rate).
func parseCrash(spec string, nodes, jobs int, rate float64, capacity int) ([]sim.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.SplitN(spec, "@", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -crash %q (want k@frac)", spec)
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil || k < 1 {
		return nil, fmt.Errorf("bad -crash count %q", parts[0])
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || frac <= 0 {
		return nil, fmt.Errorf("bad -crash fraction %q", parts[1])
	}
	if k >= nodes {
		return nil, fmt.Errorf("-crash %d would kill all %d nodes", k, nodes)
	}
	if rate <= 0 {
		// Mirror sim.Config's default: 70% of fleet batch capacity at
		// the default 8 ms batch service time.
		rate = 0.7 * (1000.0 / 8) * float64(capacity) * float64(nodes)
	}
	horizonMS := float64(jobs) / rate * 1000
	out := make([]sim.Crash, k)
	for i := range out {
		out[i] = sim.Crash{Node: i, AtMS: frac * horizonMS}
	}
	return out, nil
}

func parseSlow(spec string) (map[int]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[int]float64)
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -slow entry %q (want index:factor)", kv)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad -slow index %q", parts[0])
		}
		f, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -slow factor %q", parts[1])
		}
		out[idx] = f
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
