// Command barracudad runs the BARRACUDA race detector as a long-running
// HTTP service: submit PTX (or a named built-in benchmark) as a job,
// poll for the race report, and let the content-addressed module cache
// amortize parse+instrument+load across repeated submissions.
//
// Usage:
//
//	barracudad -addr :8321 -workers 4 -queue 64 -cache 32
//
//	curl -s localhost:8321/healthz
//	curl -s -X POST localhost:8321/jobs -d '{"ptx":"...","kernel":"k","grid":1,"block":32,"buffers":[4]}'
//	curl -s 'localhost:8321/jobs/job-1?wait_ms=5000'
//	curl -s localhost:8321/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/* on the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"barracuda/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8321", "HTTP listen address")
		workers = flag.Int("workers", 2, "concurrent detection workers")
		queue   = flag.Int("queue", 64, "job queue capacity (beyond it, submissions get 429)")
		cache   = flag.Int("cache", 32, "warm module-session cache entries (LRU)")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-job wall-clock budget")
		budget  = flag.Uint64("budget", 1<<24, "default per-job warp-instruction budget")
		maxBuf  = flag.Int64("maxbuf", 1<<30, "per-job total buffer byte cap (-1 = unlimited)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	if *pprof != "" {
		// Profiling stays off the job-serving listener so a capture can
		// never be triggered (or slowed) by detection traffic; the
		// DefaultServeMux carries the /debug/pprof/* handlers registered
		// by the net/http/pprof import.
		go func() {
			log.Printf("barracudad: pprof on http://%s/debug/pprof/", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("barracudad: pprof listener: %v", err)
			}
		}()
	}

	srv := server.New(server.SchedulerOptions{
		Workers:          *workers,
		QueueCap:         *queue,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		DefaultMaxInstrs: *budget,
		MaxBufferBytes:   *maxBuf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("barracudad: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "barracudad:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("barracudad: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Close()
	}
}
