// Command barracudad runs the BARRACUDA race detector as a long-running
// HTTP service: submit PTX (or a named built-in benchmark) as a job,
// poll for the race report, and let the content-addressed module cache
// amortize parse+instrument+load across repeated submissions.
//
// Usage:
//
//	barracudad -addr :8321 -workers 4 -queue 64 -cache 32
//
//	curl -s localhost:8321/healthz
//	curl -s -X POST localhost:8321/jobs -d '{"ptx":"...","kernel":"k","grid":1,"block":32,"buffers":[4]}'
//	curl -s 'localhost:8321/jobs/job-1?wait_ms=5000'
//	curl -s localhost:8321/metrics
//
// Per-job detector knobs ride in the request's "config" object and are
// hashed into the module cache key, including the adaptive-shadow pair:
// "ownership" (exclusive-ownership fast path) and "shadow_cap_bytes"
// (LRU-bounded resident shadow; jobs whose cap discarded live state
// come back with "precision_degraded": true and per-job shadow stats in
// the result's "shadow" object). Aggregated shadow pressure is exposed
// on /metrics and in fleet heartbeats.
//
// Besides the JSON job API, the daemon serves the binary streaming
// protocol on GET /v1/stream (HTTP upgrade; see internal/wire): chunked
// module upload into a content-addressed source cache (-src-cache),
// pipelined launches, and race frames pushed as the detector finds
// them. Streaming clients present an API key in the handshake;
// -tenant-rate / -tenant-burst size the per-key token bucket, and
// per-tenant traffic counters appear under "tenants" on /v1/metrics.
// Use `barracuda -server URL -stream` as a ready-made client.
//
// Fleet modes:
//
//	barracudad -coordinator -addr :8320
//	barracudad -addr :8321 -join http://coord:8320 -advertise http://worker1:8321
//
// A coordinator owns no detection workers of its own; it routes jobs to
// joined workers by module cache key so repeat submissions land on the
// node whose session cache is already warm. Workers join with -join and
// otherwise behave exactly like a standalone daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/* on the -pprof listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"barracuda/internal/fleet"
	"barracuda/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8321", "HTTP listen address")
		workers = flag.Int("workers", 2, "concurrent detection workers")
		queue   = flag.Int("queue", 64, "job queue capacity (beyond it, submissions get 429)")
		cache   = flag.Int("cache", 32, "warm module-session cache entries (LRU)")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-job wall-clock budget")
		budget  = flag.Uint64("budget", 1<<24, "default per-job warp-instruction budget")
		maxBuf  = flag.Int64("maxbuf", 1<<30, "per-job total buffer byte cap (-1 = unlimited)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		srcCache    = flag.Int("src-cache", 64, "content-addressed PTX source cache entries for the streaming protocol (LRU)")
		tenantRate  = flag.Float64("tenant-rate", 100, "per-tenant admitted launches per second on /v1/stream (negative disables rate limiting)")
		tenantBurst = flag.Float64("tenant-burst", 200, "per-tenant token-bucket burst on /v1/stream")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator instead of a worker (no local detection)")
		join        = flag.String("join", "", "coordinator base URL to register with (worker mode), e.g. http://coord:8320")
		nodeID      = flag.String("node-id", "", "stable fleet node identity (default: derived from -advertise)")
		advertise   = flag.String("advertise", "", "base URL the coordinator should reach this worker at (default: http://<addr>)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "fleet heartbeat interval")
	)
	flag.Parse()

	if *pprof != "" {
		// Profiling stays off the job-serving listener so a capture can
		// never be triggered (or slowed) by detection traffic; the
		// DefaultServeMux carries the /debug/pprof/* handlers registered
		// by the net/http/pprof import.
		go func() {
			log.Printf("barracudad: pprof on http://%s/debug/pprof/", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("barracudad: pprof listener: %v", err)
			}
		}()
	}

	if *coordinator {
		if *join != "" {
			fmt.Fprintln(os.Stderr, "barracudad: -coordinator and -join are mutually exclusive")
			os.Exit(2)
		}
		runCoordinator(*addr, *heartbeat)
		return
	}

	srv := server.New(server.SchedulerOptions{
		Workers:          *workers,
		QueueCap:         *queue,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		DefaultMaxInstrs: *budget,
		MaxBufferBytes:   *maxBuf,
		SrcEntries:       *srcCache,
		Tenants:          server.TenantOptions{RatePerSec: *tenantRate, Burst: *tenantBurst},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("barracudad: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cache)

	var link *fleet.WorkerLink
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseFromAddr(*addr)
		}
		id := *nodeID
		if id == "" {
			id = fleet.DefaultNodeID(adv)
		}
		link = fleet.StartWorkerLink(strings.TrimRight(*join, "/"), id, adv, srv.Scheduler(), *heartbeat, nil)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "barracudad:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("barracudad: %v, shutting down", s)
		if link != nil {
			// Drain before closing the job surface: the coordinator stops
			// routing new work here, and jobs it already forwarded finish
			// and report back instead of being requeued on another node.
			link.Drain(30 * time.Second)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Close()
	}
}

func runCoordinator(addr string, heartbeat time.Duration) {
	coord := fleet.NewHTTPCoordinator(fleet.Options{
		SuspectAfter: 5 * heartbeat / 2,
		DeadAfter:    5 * heartbeat,
	})
	httpSrv := &http.Server{Addr: addr, Handler: coord.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("barracudad: coordinator listening on %s (suspect %.1fs, dead %.1fs)",
		addr, (5 * heartbeat / 2).Seconds(), (5 * heartbeat).Seconds())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "barracudad:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("barracudad: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		coord.Close()
	}
}

// advertiseFromAddr guesses a reachable base URL from the listen
// address: ":8321" has no host, so default to localhost for the
// single-machine case; operators spanning machines pass -advertise.
func advertiseFromAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}
