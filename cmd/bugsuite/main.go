// Command bugsuite runs the 66-program concurrency bug suite (§6.1)
// under both the BARRACUDA detector and the racecheck-like baseline and
// prints the comparison table.
package main

import (
	"flag"
	"fmt"
	"os"

	"barracuda/internal/bugsuite"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "per-test verdicts")
		only    = flag.String("only", "", "run a single named test")
	)
	flag.Parse()
	if err := run(*verbose, *only); err != nil {
		fmt.Fprintln(os.Stderr, "bugsuite:", err)
		os.Exit(1)
	}
}

func run(verbose bool, only string) error {
	tests := bugsuite.Tests()
	if only != "" {
		var filtered []*bugsuite.Test
		for _, t := range tests {
			if t.Name == only {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no test named %q", only)
		}
		tests = filtered
	}
	bar, err := bugsuite.RunSuite(tests, bugsuite.RunBarracuda)
	if err != nil {
		return err
	}
	rc, err := bugsuite.RunSuite(tests, bugsuite.RunRacecheck)
	if err != nil {
		return err
	}
	if verbose || only != "" {
		fmt.Printf("%-36s %-18s %-18s %-18s\n", "test", "expected", "barracuda", "racecheck")
		for _, t := range tests {
			bv, rv := bar.Verdicts[t.Name], rc.Verdicts[t.Name]
			mark := func(ok bool) string {
				if ok {
					return ""
				}
				return " (wrong)"
			}
			fmt.Printf("%-36s %-18s %-18s %-18s\n", t.Name, t.Expect,
				bv.String()+mark(t.Expect.Correct(bv)),
				rv.String()+mark(t.Expect.Correct(rv)))
		}
		fmt.Println()
	}
	fmt.Printf("BARRACUDA reports correctly on %d of %d tests\n", bar.Correct, bar.Total)
	fmt.Printf("racecheck reports correctly on %d of %d tests\n", rc.Correct, rc.Total)
	return nil
}
