// Command litmus reproduces the memory fence litmus tests of Figure 4:
// the message-passing test under all four fence combinations, on a weak
// (Kepler-like) and a strong (Maxwell-like) architecture profile.
package main

import (
	"flag"
	"fmt"

	"barracuda/internal/memmodel"
)

func main() {
	var (
		runs = flag.Int("runs", 1000000, "randomized executions per combination")
		seed = flag.Int64("seed", 1, "scheduler seed")
	)
	flag.Parse()

	fmt.Println("mp litmus test (Figure 4):")
	fmt.Println("  init: x = y = 0                       final: r1=1 /\\ r2=0")
	fmt.Println("  T1: st.global.cg [x],1                T2: ld.global.cg r1,[y]")
	fmt.Println("      fence1                                fence2")
	fmt.Println("      st.global.cg [y],1                    ld.global.cg r2,[x]")
	fmt.Println()
	fmt.Printf("observations per %d runs\n", *runs)
	fmt.Printf("%-14s %-14s %12s %14s\n", "fence1", "fence2", "K520", "GTX Titan X")
	for _, row := range memmodel.Figure4(*runs, *seed) {
		fmt.Printf("%-14s %-14s %12d %14d\n", row.Fence1, row.Fence2, row.Kepler, row.Maxwell)
	}
}
