package main

// Remote submission. -server points the CLI at a barracudad daemon (or
// a fleet coordinator, which speaks the same job API):
//
//	barracuda -server http://host:8321 -ptx kernel.ptx -kernel k
//	barracuda -server http://host:8321 -stream -ptx kernel.ptx
//
// Plain -server submits over the JSON API and polls, honoring the
// server's Retry-After backpressure hints. Adding -stream upgrades to
// the binary streaming protocol (internal/wire): the module uploads
// once into the server's content-addressed cache (repeat runs skip the
// transfer) and races print the moment the detector finds them, ahead
// of the terminal summary.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"barracuda/internal/fleet"
	"barracuda/internal/server"
	"barracuda/internal/wire"
)

// remoteRun dispatches a job to a remote daemon in either protocol.
func remoteRun(o runOpts, baseURL, apiKey string, stream bool) error {
	if o.profile {
		return fmt.Errorf("-profile runs locally only")
	}
	if o.fatbinPath != "" {
		return fmt.Errorf("-fatbin runs locally only (servers accept PTX or -bench)")
	}
	req := server.JobRequest{
		Bench:     o.benchName,
		Kernel:    o.kernel,
		Grid:      o.grid,
		Block:     o.block,
		MaxInstrs: o.budget,
		WarpSize:  o.warpsize,
		Config: server.ConfigJSON{
			Queues:         o.queues,
			Granularity:    o.gran,
			FullVC:         o.fullvc,
			StaticPrune:    o.staticPrune,
			Ownership:      o.ownership,
			ShadowCapBytes: o.shadowCap,
			ProducerFilter: o.producerFilter,
		},
	}
	if o.ptxPath != "" {
		src, err := os.ReadFile(o.ptxPath)
		if err != nil {
			return err
		}
		req.PTX = string(src)
	}
	if req.PTX == "" && req.Bench == "" {
		return fmt.Errorf("one of -ptx or -bench is required")
	}
	if o.bufs != "" {
		for _, part := range strings.Split(o.bufs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -bufs entry %q", part)
			}
			req.Buffers = append(req.Buffers, n)
		}
	}
	if stream {
		if req.Bench != "" {
			return fmt.Errorf("-stream carries PTX modules only; drop -stream for -bench jobs")
		}
		return streamRun(req, baseURL, apiKey, o.verbose)
	}
	return pollRun(req, baseURL, apiKey, o.verbose)
}

// pollRun is the JSON client: submit, then long-poll. Both calls honor
// Retry-After on 429/503 with the fleet helper's bounded fallback.
func pollRun(req server.JobRequest, baseURL, apiKey string, verbose bool) error {
	client := &http.Client{Timeout: 30 * time.Second}
	body, _ := json.Marshal(req)

	var info server.JobInfo
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequest("POST", baseURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if apiKey != "" {
			hreq.Header.Set("Authorization", "Bearer "+apiKey)
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		if fleet.RetryableStatus(resp.StatusCode) {
			d := fleet.RetryDelay(resp, attempt)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "barracuda: server busy (%s), retrying in %v\n", resp.Status, d)
			time.Sleep(d)
			continue
		}
		if err := decodeJobResponse(resp, &info); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		break
	}

	for attempt := 0; ; {
		resp, err := client.Get(baseURL + "/jobs/" + info.ID + "?wait_ms=2000")
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if fleet.RetryableStatus(resp.StatusCode) {
			d := fleet.RetryDelay(resp, attempt)
			attempt++
			resp.Body.Close()
			time.Sleep(d)
			continue
		}
		attempt = 0
		if err := decodeJobResponse(resp, &info); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		switch info.Status {
		case server.StatusDone:
			return printRemoteResult(info, verbose)
		case server.StatusFailed, server.StatusTimeout:
			return fmt.Errorf("job %s: %s", info.Status, info.Error)
		}
	}
}

func decodeJobResponse(resp *http.Response, into *server.JobInfo) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorJSON
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s (%s)", e.Error, e.Code)
		}
		return fmt.Errorf("server: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func printRemoteResult(info server.JobInfo, verbose bool) error {
	res := info.Result
	if res == nil {
		return fmt.Errorf("job done without result")
	}
	fmt.Printf("kernel %s: %d warp instructions, %d records, %.3fms detect (%.3fms total, cache_hit=%v)\n",
		res.Kernel, res.WarpInstrs, res.RecordsSeen, res.DetectMS, info.TotalMS, info.CacheHit)
	for _, d := range res.Divergences {
		fmt.Printf("BARRIER DIVERGENCE: block %d warp %d at line %d (mask %s)\n",
			d.Block, d.Warp, d.Line, d.Mask)
	}
	if len(res.Races) == 0 {
		fmt.Println("no races detected")
	}
	for _, r := range res.Races {
		fmt.Println(r.Summary)
		if verbose {
			fmt.Printf("  %d dynamic occurrence(s)\n", r.Count)
		}
	}
	if res.SameValueFiltered > 0 {
		fmt.Printf("%d same-value intra-warp write(s) filtered\n", res.SameValueFiltered)
	}
	if res.PrecisionDegraded {
		fmt.Println("PRECISION DEGRADED: the shadow byte cap discarded live state; races may have been missed")
	}
	if len(res.Races) > 0 || len(res.Divergences) > 0 {
		os.Exit(2)
	}
	return nil
}

// streamRun is the wire-protocol client: upload (or hash-skip), launch,
// and print each race frame as it arrives.
func streamRun(req server.JobRequest, baseURL, apiKey string, verbose bool) error {
	c, err := wire.Dial(baseURL, apiKey, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	start := time.Now()
	_, warm, err := c.UploadModule([]byte(req.PTX))
	if err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	if verbose && warm {
		fmt.Fprintln(os.Stderr, "barracuda: module already cached server-side, upload skipped")
	}
	spec := wire.LaunchSpec{
		Seq:       1,
		Kernel:    req.Kernel,
		Grid:      req.Grid,
		Block:     req.Block,
		WarpSize:  req.WarpSize,
		MaxInstrs: req.MaxInstrs,
		Buffers:   req.Buffers,
		Config: wire.ConfigSpec{
			Queues:         req.Config.Queues,
			Granularity:    req.Config.Granularity,
			FullVC:         req.Config.FullVC,
			StaticPrune:    req.Config.StaticPrune,
			Ownership:      req.Config.Ownership,
			ShadowCapBytes: req.Config.ShadowCapBytes,
			ProducerFilter: req.Config.ProducerFilter,
		},
	}
	if err := c.Launch(spec); err != nil {
		return fmt.Errorf("launch: %w", err)
	}
	seen := 0
	for {
		ev, err := c.Next()
		if err != nil {
			return err
		}
		switch ev.Type {
		case wire.FReject:
			if ev.Reject.RetryAfterMS > 0 {
				return fmt.Errorf("rejected (%s): %s; retry after %dms",
					ev.Reject.Code, ev.Reject.Msg, ev.Reject.RetryAfterMS)
			}
			return fmt.Errorf("rejected (%s): %s", ev.Reject.Code, ev.Reject.Msg)
		case wire.FRace:
			seen++
			fmt.Printf("%s\t[+%.3fms]\n", ev.Race.Race.String(),
				float64(time.Since(start).Microseconds())/1000)
		case wire.FSummary:
			c.Bye()
			return printStreamSummary(ev.Summary, seen, verbose)
		}
	}
}

func printStreamSummary(sum wire.Summary, streamed int, verbose bool) error {
	if sum.Status != server.StatusDone {
		return fmt.Errorf("job %s: %s", sum.Status, sum.Error)
	}
	fmt.Printf("kernel %s: %d warp instructions, %d records, %.3fms detect (cache_hit=%v)\n",
		sum.Kernel, sum.WarpInstrs, sum.RecordsSeen, float64(sum.DetectUS)/1000, sum.CacheHit)
	for _, d := range sum.Divergences {
		fmt.Printf("BARRIER DIVERGENCE: block %d warp %d at line %d (mask %#x)\n",
			d.Block, d.Warp, d.PC, d.Mask)
	}
	if len(sum.Races) == 0 {
		fmt.Println("no races detected")
	} else if verbose {
		fmt.Printf("%d race(s); %d streamed incrementally\n", len(sum.Races), streamed)
	}
	if sum.SameValueFiltered > 0 {
		fmt.Printf("%d same-value intra-warp write(s) filtered\n", sum.SameValueFiltered)
	}
	if sum.PrecisionDegraded {
		fmt.Println("PRECISION DEGRADED: the shadow byte cap discarded live state; races may have been missed")
	}
	if len(sum.Races) > 0 || len(sum.Divergences) > 0 {
		os.Exit(2)
	}
	return nil
}
