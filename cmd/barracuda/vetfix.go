package main

import (
	"fmt"
	"os"

	"barracuda/internal/detector"
	"barracuda/internal/ptx"
)

// vetFixOptions carries the -fix launch knobs from the vet flag set.
type vetFixOptions struct {
	grid, block   int
	bufBytes      int
	maxCandidates int
}

// fileRepair is the machine-readable -fix result for one kernel,
// emitted under "repairs" in vet -json output.
type fileRepair struct {
	File string `json:"file"`
	*detector.RepairReport
}

// runVetFix runs the verified repair loop on every kernel of a module.
// It returns the per-kernel reports; launch or baseline failures are
// reported as errors (the caller maps them to exit status 2).
func runVetFix(path string, m *ptx.Module, opt vetFixOptions) ([]fileRepair, error) {
	var out []fileRepair
	for _, k := range m.Kernels {
		buffers := make([]int, len(k.Params))
		for i := range buffers {
			buffers[i] = opt.bufBytes
		}
		rr, err := detector.Repair(m, k.Name, detector.Config{}, detector.RepairOptions{
			Grid:          opt.grid,
			Block:         opt.block,
			Buffers:       buffers,
			MaxCandidates: opt.maxCandidates,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: kernel %s: %w", path, k.Name, err)
		}
		out = append(out, fileRepair{File: path, RepairReport: rr})
	}
	return out, nil
}

// printVetFix renders one kernel's repair report for humans: each
// candidate with its patch attempts and verdicts, verified diffs in
// full, and a one-line greppable summary.
func printVetFix(r fileRepair) {
	rr := r.RepairReport
	proposals := 0
	for _, c := range rr.Candidates {
		proposals += len(c.Patches)
	}
	for _, c := range rr.Candidates {
		dyn := "static-only"
		if c.Dynamic {
			dyn = "dynamic"
		}
		fmt.Printf("%s: kernel %s: candidate [%s] %s\n", r.File, rr.Kernel, dyn, c.Description)
		if len(c.Patches) == 0 {
			fmt.Printf("  no patch template applies: repair declined\n")
		}
		for _, p := range c.Patches {
			status := "rejected"
			if p.Verdict.Verified {
				status = "VERIFIED"
			}
			fmt.Printf("  patch %s: %s\n    %s: %s\n", p.Kind, p.Note, status, p.Verdict.Reason)
			if p.Verdict.Verified && p.Diff != "" {
				fmt.Println(indent(p.Diff, "    "))
			}
		}
	}
	fmt.Printf("%s: kernel %s: baseline_races=%d candidates=%d proposals=%d verified=%d unrepaired=%d final_races=%d\n",
		r.File, rr.Kernel, rr.BaselineRaces, len(rr.Candidates), proposals,
		rr.Verified, rr.Unrepaired, rr.FinalRaces)
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	// Drop the trailing prefix a final newline leaves behind.
	if len(out) >= len(prefix) && out[len(out)-len(prefix):] == prefix {
		out = out[:len(out)-len(prefix)]
	}
	return out
}

// writePatchedModule writes each kernel's fully patched module next to
// the input when -write is set. Reports are per kernel, so a
// multi-kernel module gets one file per repaired kernel (each is the
// whole module with that kernel's verified patches applied).
func writePatchedModule(path string, repairs []fileRepair) error {
	for _, r := range repairs {
		if r.PatchedPTX == "" {
			continue
		}
		out := path + "." + r.Kernel + ".fixed.ptx"
		if err := os.WriteFile(out, []byte(r.PatchedPTX), 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: wrote verified fix to %s\n", path, out)
	}
	return nil
}
