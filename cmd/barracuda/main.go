// Command barracuda runs a PTX kernel (from a .ptx file, a fat binary, or
// a named built-in benchmark) under the BARRACUDA race detector and
// prints the race report.
//
// Usage:
//
//	barracuda -ptx kernel.ptx -kernel k -grid 4 -block 64 -bufs 1024,64
//	barracuda -fatbin app.fatbin -kernel k -grid 2 -block 32 -bufs 256
//	barracuda -bench hashtable
//	barracuda -bench dxtc -ownership -shadow-cap 67108864
//	barracuda vet [-json] [-strict] [-stats] file.ptx...
//	barracuda -server http://host:8321 -ptx kernel.ptx          # remote (JSON poll)
//	barracuda -server http://host:8321 -stream -ptx kernel.ptx  # remote (streaming)
//
// -ownership enables the adaptive exclusive-ownership shadow tier;
// -shadow-cap bounds resident shadow memory (LRU eviction, honest
// degraded-precision reporting). Both preserve byte-identical race
// reports while no live state is evicted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"barracuda/internal/bench"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/profile"
	"barracuda/internal/ptvc"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(vetMain(os.Args[2:]))
	}
	var (
		ptxPath   = flag.String("ptx", "", "PTX source file to analyze")
		fatbinArg = flag.String("fatbin", "", "fat binary file to analyze")
		benchName = flag.String("bench", "", "run a named built-in benchmark instead")
		kernel    = flag.String("kernel", "", "kernel name (default: the module's first kernel)")
		grid      = flag.Int("grid", 1, "grid size in blocks (1-D)")
		block     = flag.Int("block", 32, "block size in threads (1-D)")
		bufs      = flag.String("bufs", "", "comma-separated byte sizes of zeroed global buffers passed as u64 args")
		queues    = flag.Int("queues", 1, "number of logging queues / detector threads")
		gran      = flag.Int("granularity", 1, "shadow-memory bytes per cell")
		fullvc    = flag.Bool("fullvc", false, "use the uncompressed vector-clock baseline")
		budget    = flag.Uint64("budget", 1<<24, "dynamic warp-instruction budget (0 = unlimited)")
		warpsize  = flag.Int("warpsize", 0, "simulated warp width (0 = the architecture's 32); smaller widths expose latent warp-size bugs")
		profileF  = flag.Bool("profile", false, "run the memory-access profiler instead of the race detector")
		staticp   = flag.Bool("staticprune", false, "enable the inter-block static instrumentation pruner")
		ownership = flag.Bool("ownership", false, "enable the exclusive-ownership shadow fast path (requires span mode)")
		prodFilt  = flag.Bool("producer-filter", false, "suppress redundant access records at the simulator (producer-side epoch filtering; reports stay byte-identical)")
		shadowCap = flag.Int64("shadow-cap", 0, "bound resident shadow memory to this many bytes via LRU eviction (0 = unbounded; evicting live state is reported as degraded precision)")
		verbose   = flag.Bool("v", false, "print per-race dynamic counts and PTVC format stats")
		serverURL = flag.String("server", "", "submit to a barracudad daemon or fleet coordinator at this base URL instead of running locally")
		streamF   = flag.Bool("stream", false, "with -server: use the binary streaming protocol (races print as they are found)")
		apiKey    = flag.String("api-key", "", "with -server: tenant key for rate limiting and accounting")
	)
	flag.Parse()
	o := runOpts{
		ptxPath: *ptxPath, fatbinPath: *fatbinArg, benchName: *benchName,
		kernel: *kernel, grid: *grid, block: *block, bufs: *bufs,
		queues: *queues, gran: *gran, fullvc: *fullvc, budget: *budget,
		warpsize: *warpsize, profile: *profileF, staticPrune: *staticp,
		ownership: *ownership, shadowCap: *shadowCap, verbose: *verbose,
		producerFilter: *prodFilt,
	}
	var err error
	if *serverURL != "" {
		err = remoteRun(o, *serverURL, *apiKey, *streamF)
	} else if *streamF {
		err = fmt.Errorf("-stream requires -server")
	} else {
		err = run(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "barracuda:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	ptxPath, fatbinPath, benchName, kernel, bufs string
	grid, block, queues, gran, warpsize          int
	fullvc, profile, staticPrune, verbose        bool
	ownership, producerFilter                    bool
	shadowCap                                    int64
	budget                                       uint64
}

func run(o runOpts) error {
	cfg := detector.Config{
		Queues: o.queues, Granularity: o.gran, FullVC: o.fullvc, StaticPrune: o.staticPrune,
		Ownership: o.ownership, ShadowCapBytes: o.shadowCap,
		ProducerFilter: o.producerFilter,
	}

	var (
		s   *detector.Session
		err error
	)
	switch {
	case o.benchName != "":
		b := bench.ByName(o.benchName)
		if b == nil {
			var names []string
			for _, bb := range bench.All() {
				names = append(names, bb.Name)
			}
			return fmt.Errorf("unknown benchmark %q; available: %s", o.benchName, strings.Join(names, ", "))
		}
		res, err := bench.Detect(b, cfg)
		if err != nil {
			return err
		}
		return printResult(b.Name+"/main", res, o.verbose)
	case o.ptxPath != "":
		src, rerr := os.ReadFile(o.ptxPath)
		if rerr != nil {
			return rerr
		}
		s, err = detector.OpenPTX(string(src), cfg)
		if err != nil {
			return err
		}
	case o.fatbinPath != "":
		bin, rerr := os.ReadFile(o.fatbinPath)
		if rerr != nil {
			return rerr
		}
		s, err = detector.OpenFatBinary(bin, cfg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -ptx, -fatbin or -bench is required")
	}

	kernel := o.kernel
	if kernel == "" {
		ks := s.Native.KernelNames()
		if len(ks) == 0 {
			return fmt.Errorf("module has no kernels")
		}
		kernel = ks[0]
	}
	var args []uint64
	if o.bufs != "" {
		for _, part := range strings.Split(o.bufs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -bufs entry %q", part)
			}
			a, err := s.Dev.Alloc(n)
			if err != nil {
				return err
			}
			args = append(args, a)
		}
	}
	launch := gpusim.LaunchConfig{
		Grid:          gpusim.D1(o.grid),
		Block:         gpusim.D1(o.block),
		Args:          args,
		MaxWarpInstrs: o.budget,
		WarpSize:      o.warpsize,
	}
	if o.profile {
		p := profile.New()
		launch.Sink = p
		launch.EmitBranchEvents = true
		if _, err := s.Instr.Launch(kernel, launch); err != nil {
			return err
		}
		fmt.Print(p.Report().String())
		return nil
	}
	res, err := s.Detect(kernel, launch)
	if err != nil {
		return err
	}
	return printResult(kernel, res, o.verbose)
}

func printResult(kernel string, res *detector.Result, verbose bool) error {
	rep := res.Report
	fmt.Printf("kernel %s: %d warp instructions, %d records, %v\n",
		kernel, res.SimStats.WarpInstrs, res.SimStats.Records, res.Duration.Round(0))
	for _, d := range rep.Divergences {
		fmt.Printf("BARRIER DIVERGENCE: block %d warp %d at line %d (mask %#x)\n",
			d.Block, d.Warp, d.PC, d.Mask)
	}
	if rep.RaceCount() == 0 {
		fmt.Println("no races detected")
	}
	for _, r := range rep.Races {
		fmt.Println(r.String())
		if verbose {
			fmt.Printf("  %d dynamic occurrence(s)\n", r.Count)
		}
	}
	if rep.SameValueGag > 0 {
		fmt.Printf("%d same-value intra-warp write(s) filtered\n", rep.SameValueGag)
	}
	if rep.PrecisionDegraded {
		fmt.Printf("PRECISION DEGRADED: the shadow byte cap discarded live state (%d live eviction(s)); races may have been missed\n",
			rep.Shadow.LiveEvictions)
	}
	if verbose {
		for _, f := range []ptvc.Format{ptvc.Converged, ptvc.Diverged, ptvc.NestedDiverged, ptvc.SparseVC} {
			if n := res.Formats[f]; n > 0 {
				fmt.Printf("PTVC %s: %d group(s)\n", f, n)
			}
		}
	}
	if rep.RaceCount() > 0 || len(rep.Divergences) > 0 {
		os.Exit(2)
	}
	return nil
}
