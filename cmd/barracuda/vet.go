package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"barracuda/internal/instrument"
	"barracuda/internal/ptx"
	"barracuda/internal/staticanalysis"
)

// vetMain implements the `barracuda vet` subcommand: parse each PTX file,
// run the static lint passes, and print the diagnostics with their source
// positions. Exit status: 0 when every file is clean, 1 when any
// diagnostic of error severity was reported (any severity under -strict),
// 2 when a file could not be read or parsed.
func vetMain(argv []string) int {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics (and -fix repair reports) as JSON")
		strict  = fs.Bool("strict", false, "treat warnings as errors for the exit status")
		stats   = fs.Bool("stats", false, "also print per-kernel instrumentation-pruning statistics")
		fix     = fs.Bool("fix", false, "synthesize patches for race candidates and verify each by dynamic re-detection")
		write   = fs.Bool("write", false, "with -fix: write each verified fix to <file>.<kernel>.fixed.ptx")
		grid    = fs.Int("grid", 2, "with -fix: verification launch grid (blocks)")
		block   = fs.Int("block", 64, "with -fix: verification launch block (threads)")
		bufB    = fs.Int("bufbytes", 4096, "with -fix: bytes per zeroed global buffer (one per kernel param)")
		maxCand = fs.Int("max-candidates", 8, "with -fix: race candidates to evaluate per kernel")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: barracuda vet [-json] [-strict] [-stats] [-fix [-write] [-grid N] [-block N] [-bufbytes N] [-max-candidates N]] file.ptx...")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	type fileDiag struct {
		File     string `json:"file"`
		Kernel   string `json:"kernel"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	var all []fileDiag
	var allRepairs []fileRepair
	exit := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "barracuda vet: %v\n", err)
			return 2
		}
		m, err := ptx.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "barracuda vet: %s: %v\n", path, err)
			return 2
		}
		diags, err := staticanalysis.LintModule(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "barracuda vet: %s: %v\n", path, err)
			return 2
		}
		for _, d := range diags {
			all = append(all, fileDiag{
				File: path, Kernel: d.Kernel, Line: d.Line, Col: d.Col,
				Code: d.Code, Severity: d.Severity.String(), Message: d.Message,
			})
			if d.Severity >= staticanalysis.SevError || *strict {
				exit = 1
			}
		}
		if *stats {
			printVetStats(path, m)
		}
		if *fix {
			repairs, err := runVetFix(path, m, vetFixOptions{
				grid: *grid, block: *block, bufBytes: *bufB, maxCandidates: *maxCand,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "barracuda vet: fix: %v\n", err)
				return 2
			}
			allRepairs = append(allRepairs, repairs...)
			if *write {
				if err := writePatchedModule(path, repairs); err != nil {
					fmt.Fprintf(os.Stderr, "barracuda vet: fix: %v\n", err)
					return 2
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiag{}
		}
		// Plain vet keeps the documented flat-array schema; -fix wraps
		// diagnostics and repair reports in one object.
		if *fix {
			if allRepairs == nil {
				allRepairs = []fileRepair{}
			}
			enc.Encode(map[string]any{"diagnostics": all, "repairs": allRepairs})
		} else {
			enc.Encode(all)
		}
		return exit
	}
	for _, d := range all {
		fmt.Printf("%s:%d:%d: %s: [%s] %s (kernel %s)\n",
			d.File, d.Line, d.Col, d.Severity, d.Code, d.Message, d.Kernel)
	}
	for _, r := range allRepairs {
		printVetFix(r)
	}
	return exit
}

// printVetStats reports how much of each kernel's instruction stream the
// instrumentation tiers would log (the Figure 9 static census).
func printVetStats(path string, m *ptx.Module) {
	res, err := instrument.Instrument(m, instrument.Options{StaticPrune: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "barracuda vet: %s: stats: %v\n", path, err)
		return
	}
	names := make([]string, 0, len(res.Stats))
	for name := range res.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := res.Stats[name]
		fmt.Printf("%s: kernel %s: %d instrs, instrumented %d (%.1f%%), static %d (%.1f%%), private %d\n",
			path, name, s.Static,
			s.Instrumented, 100*s.FracInstrumented(),
			s.InstrumentedStatic, 100*s.FracInstrumentedStatic(),
			s.ThreadPrivate)
	}
}
