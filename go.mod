module barracuda

go 1.22
