// litmusdemo runs the Figure 4 memory-fence litmus test through the
// public API: message passing between two thread blocks under every
// combination of membar.cta / membar.gl, on weak (Kepler-like) and
// strong (Maxwell-like) architecture profiles.
//
// The takeaway is the paper's: membar.cta is insufficient to implement
// synchronization between thread blocks, which is why BARRACUDA's
// release/acquire rules are fence-scope aware.
package main

import (
	"fmt"

	"barracuda"
)

func main() {
	const runs = 200000
	name := func(global bool) string {
		if global {
			return "membar.gl"
		}
		return "membar.cta"
	}
	fmt.Println("mp litmus: T1{st x; fence1; st y}  T2{r1=ld y; fence2; r2=ld x}")
	fmt.Printf("forbidden outcome r1=1,r2=0 — observations per %d runs\n\n", runs)
	fmt.Printf("%-12s %-12s %10s %12s\n", "fence1", "fence2", "Kepler", "Maxwell")
	seed := int64(1)
	for _, f1 := range []bool{false, true} {
		for _, f2 := range []bool{false, true} {
			weak := barracuda.LitmusMP(f1, f2, true, runs, seed)
			strong := barracuda.LitmusMP(f1, f2, false, runs, seed+1)
			fmt.Printf("%-12s %-12s %10d %12d\n", name(f1), name(f2), weak, strong)
			seed += 2
		}
	}
	fmt.Println("\nmembar.cta in both threads admits the non-SC outcome on the")
	fmt.Println("weak profile; a membar.gl in either thread restores SC behaviour.")
}
