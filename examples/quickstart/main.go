// Quickstart: detect a data race in a small CUDA kernel in ~30 lines.
//
// The kernel makes every thread of a warp write its thread id to the
// same global word — an intra-warp race whose winner is undefined on
// real hardware.
package main

import (
	"fmt"
	"log"

	"barracuda"
)

const kernel = `
.visible .entry racy(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

func main() {
	s, err := barracuda.Open(kernel, barracuda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	out := s.MustAlloc(4)
	res, err := s.Detect("racy", barracuda.D1(1), barracuda.D1(32), out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d race(s) detected:\n", res.Report.RaceCount())
	for _, r := range res.Report.Races {
		fmt.Println(" ", r)
	}
	v, _ := s.ReadU32(out)
	fmt.Printf("out[0] = %d (architecture-defined on a real GPU)\n", v)
}
