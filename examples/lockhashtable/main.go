// lockhashtable reproduces the hashtable bug study of §6.3: a hash table
// in global memory whose buckets are guarded by fine-grained spinlocks.
//
// The buggy kernel has the two defects BARRACUDA found in the GPU-TM
// benchmark: (1) the atomicCAS that takes the bucket lock has no memory
// fence, so it does not act as an acquire, and (2) the lock is freed by a
// plain, unfenced store. The fixed kernel adds membar.gl on both sides
// and releases with atom.exch. Both versions are functionally "correct"
// under the simulator's sequentially-consistent execution — only the
// race detector tells them apart, which is exactly why the bug survived
// in the original benchmark.
package main

import (
	"fmt"
	"log"

	"barracuda"
)

const module = `
// One thread per block inserts its value into bucket (tid mod 8).
// table[b] holds a running sum standing in for a bucket's chain.
.visible .entry insert_buggy(.param .u64 locks, .param .u64 table)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [locks];
	ld.param.u64 %rd2, [table];
	mov.u32 %r1, %ctaid.x;
	and.b32 %r2, %r1, 7;
	shl.b32 %r3, %r2, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	add.u64 %rd5, %rd2, %rd3;
SPIN:
	atom.global.cas.b32 %r4, [%rd4], 0, 1;     // no fence: not an acquire
	setp.ne.u32 %p1, %r4, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r5, [%rd5];
	add.u32 %r5, %r5, %r1;
	st.global.u32 [%rd5], %r5;
	st.global.u32 [%rd4], 0;                   // plain unfenced unlock
	ret;
}

.visible .entry insert_fixed(.param .u64 locks, .param .u64 table)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [locks];
	ld.param.u64 %rd2, [table];
	mov.u32 %r1, %ctaid.x;
	and.b32 %r2, %r1, 7;
	shl.b32 %r3, %r2, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	add.u64 %rd5, %rd2, %rd3;
SPIN:
	atom.global.cas.b32 %r4, [%rd4], 0, 1;
	membar.gl;                                 // acquire
	setp.ne.u32 %p1, %r4, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r5, [%rd5];
	add.u32 %r5, %r5, %r1;
	st.global.u32 [%rd5], %r5;
	membar.gl;                                 // release
	atom.global.exch.b32 %r6, [%rd4], 0;
	ret;
}`

func run(s *barracuda.Session, kernel string) error {
	locks := s.MustAlloc(4 * 8)
	table := s.MustAlloc(4 * 8)
	res, err := s.DetectLaunch(kernel, barracuda.Launch{
		Grid: barracuda.D1(32), Block: barracuda.D1(1),
		Args: []uint64{locks, table}, MaxInstrs: 1 << 22,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d race(s)\n", kernel, res.Report.RaceCount())
	for _, r := range res.Report.Races {
		fmt.Println("  ", r)
	}
	// The table contents are identical either way under SC simulation.
	sum := uint32(0)
	for b := 0; b < 8; b++ {
		v, _ := s.ReadU32(table + uint64(4*b))
		sum += v
	}
	fmt.Printf("   table sum = %d (expected %d)\n\n", sum, 31*32/2)
	return nil
}

func main() {
	s, err := barracuda.Open(module, barracuda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := run(s, "insert_buggy"); err != nil {
		log.Fatal(err)
	}
	// Fresh session so shadow state does not carry over.
	s2, err := barracuda.Open(module, barracuda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := run(s2, "insert_fixed"); err != nil {
		log.Fatal(err)
	}
}
