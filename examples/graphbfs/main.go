// graphbfs reproduces the SHOC bfs bug study of §6.3: a level-synchronous
// breadth-first search whose frontier expansion updates the distance
// array and a global "changed" flag with plain stores from many blocks
// at once. The CUDA documentation only defines concurrent same-location
// writes within one warp, so both update sites are races — exactly the
// ones BARRACUDA reported in SHOC — even though the algorithm happens to
// converge to correct distances.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"barracuda"
)

const kernel = `
.visible .entry bfs_step(.param .u64 rowptr, .param .u64 cols,
                         .param .u64 dist, .param .u64 changed,
                         .param .u32 level, .param .u32 nverts)
{
	.reg .u32 %r<16>;
	.reg .u64 %rd<16>;
	.reg .pred %p<4>;
	ld.param.u64 %rd1, [rowptr];
	ld.param.u64 %rd2, [cols];
	ld.param.u64 %rd3, [dist];
	ld.param.u64 %rd4, [changed];
	ld.param.u32 %r10, [level];
	ld.param.u32 %r11, [nverts];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	setp.ge.u32 %p1, %r4, %r11;
	@%p1 ret;
	// Only frontier vertices (dist == level) expand.
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.global.u32 %r6, [%rd6];
	setp.ne.u32 %p2, %r6, %r10;
	@%p2 ret;
	// Neighbour range from CSR row pointers.
	add.u64 %rd7, %rd1, %rd5;
	ld.global.u32 %r7, [%rd7];
	ld.global.u32 %r8, [%rd7+4];
LOOP:
	setp.ge.u32 %p3, %r7, %r8;
	@%p3 ret;
	shl.b32 %r9, %r7, 2;
	cvt.u64.u32 %rd8, %r9;
	add.u64 %rd9, %rd2, %rd8;
	ld.global.u32 %r12, [%rd9];
	shl.b32 %r13, %r12, 2;
	cvt.u64.u32 %rd10, %r13;
	add.u64 %rd11, %rd3, %rd10;
	ld.global.u32 %r14, [%rd11];
	setp.ne.u32 %p3, %r14, 0xffffffff;
	@%p3 bra NEXT;
	add.u32 %r15, %r10, 1;
	st.global.u32 [%rd11], %r15;    // unsynchronized distance update
	st.global.u32 [%rd4], 1;        // unsynchronized changed flag
NEXT:
	add.u32 %r7, %r7, 1;
	bra.uni LOOP;
}`

// buildGraph makes a ring of n vertices with chords (i -> i+7).
func buildGraph(n int) (rowptr, cols []uint32) {
	rowptr = make([]uint32, n+1)
	for v := 0; v < n; v++ {
		rowptr[v] = uint32(len(cols))
		cols = append(cols, uint32((v+1)%n), uint32((v+n-1)%n), uint32((v+7)%n))
	}
	rowptr[n] = uint32(len(cols))
	return
}

func toBytes(xs []uint32) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func main() {
	const n = 256
	s, err := barracuda.Open(kernel, barracuda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rowptr, cols := buildGraph(n)
	rp := s.MustAlloc(4 * len(rowptr))
	cl := s.MustAlloc(4 * len(cols))
	dist := s.MustAlloc(4 * n)
	changed := s.MustAlloc(4)
	check(s.WriteBytes(rp, toBytes(rowptr)))
	check(s.WriteBytes(cl, toBytes(cols)))
	for v := 1; v < n; v++ {
		check(s.WriteU32(dist+uint64(4*v), 0xffffffff))
	}
	check(s.WriteU32(dist, 0)) // source vertex

	totalRaces := 0
	for level := uint32(0); ; level++ {
		check(s.WriteU32(changed, 0))
		res, err := s.Detect("bfs_step", barracuda.D1(n/64), barracuda.D1(64),
			rp, cl, dist, changed, uint64(level), uint64(n))
		if err != nil {
			log.Fatal(err)
		}
		totalRaces += res.Report.RaceCount()
		ch, _ := s.ReadU32(changed)
		fmt.Printf("level %2d: %d race site(s) this step\n", level, res.Report.RaceCount())
		if level == 0 {
			for _, r := range res.Report.Races {
				fmt.Println("  ", r)
			}
		}
		if ch == 0 {
			break
		}
	}
	// The algorithm still converges to correct distances under the SC
	// simulator — the bug is latent, like in SHOC.
	d100, _ := s.ReadU32(dist + 4*100)
	fmt.Printf("\nBFS converged; dist[100] = %d; races were reported at %s\n",
		d100, map[bool]string{true: "the distance and flag stores", false: "(none)"}[totalRaces > 0])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
