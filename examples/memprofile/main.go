// memprofile demonstrates that BARRACUDA's binary instrumentation
// framework supports analyses beyond race detection (§1): it profiles a
// kernel's memory behaviour — per-site access counts, warp coalescing
// quality, divergence and footprint — from the same record stream the
// race detector consumes.
//
// The kernel reads an array twice: once with unit stride (coalesced) and
// once with a 32-element stride (every lane in its own 128-byte segment,
// the classic uncoalesced pattern the profiler is meant to catch).
package main

import (
	"fmt"
	"log"

	"barracuda"
)

const kernel = `
.visible .entry sweep(.param .u64 in, .param .u64 out, .param .u32 n)
{
	.reg .u32 %r<16>;
	.reg .u64 %rd<16>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [in];
	ld.param.u64 %rd2, [out];
	ld.param.u32 %r10, [n];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;

	// Coalesced: in[gtid]
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd3, %r5;
	add.u64 %rd4, %rd1, %rd3;
	ld.global.u32 %r6, [%rd4];

	// Strided: in[(gtid * 32) mod n]
	mul.lo.u32 %r7, %r4, 32;
	rem.u32 %r7, %r7, %r10;
	shl.b32 %r8, %r7, 2;
	cvt.u64.u32 %rd5, %r8;
	add.u64 %rd6, %rd1, %rd5;
	ld.global.u32 %r9, [%rd6];

	add.u32 %r11, %r6, %r9;
	add.u64 %rd7, %rd2, %rd3;
	st.global.u32 [%rd7], %r11;
	ret;
}`

func main() {
	const n = 4096
	s, err := barracuda.Open(kernel, barracuda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	in := s.MustAlloc(4 * n)
	out := s.MustAlloc(4 * n)
	rep, err := s.Profile("sweep", barracuda.Launch{
		Grid: barracuda.D1(n / 64), Block: barracuda.D1(64),
		Args: []uint64{in, out, n},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	fmt.Println("\nThe unit-stride load and store are 100% coalesced; the")
	fmt.Println("32-element-stride load is 0% coalesced — each warp touches 32")
	fmt.Println("separate 128-byte segments, a 32x memory-traffic amplification.")
}
