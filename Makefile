# BARRACUDA-in-Go build/verify/bench targets (stdlib Go only).

GO ?= go

.PHONY: all build vet test race bench bench-sim bench-scaling bench-detect bench-shadow bench-fleet bench-repair bench-proto bench-filter fleet-sim stress-multiqueue stress-stream stress-filter serve ci fmt-check vet-smoke vet-fix-smoke stress-ownership

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt must be a no-op across the tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The PTX lint pass over the example corpus: clean kernels must produce
# zero diagnostics, the seeded barrier-divergence bug must be flagged.
vet-smoke: build
	$(GO) run ./cmd/barracuda vet examples/vet/clean_saxpy.ptx examples/vet/clean_blockreduce.ptx
	@if $(GO) run ./cmd/barracuda vet examples/vet/divergent_barrier.ptx > vet-smoke.out 2>/dev/null; then \
		echo "seeded barrier-divergence bug was not flagged"; rm -f vet-smoke.out; exit 1; fi
	@grep -q barrier-divergence vet-smoke.out || { echo "wrong diagnostic:"; cat vet-smoke.out; rm -f vet-smoke.out; exit 1; }
	@rm -f vet-smoke.out

# Verified repair synthesis over the example corpus: every fixable
# kernel must end race-free with at least one verified patch, and the
# synthesizer must propose nothing for the two unrepairable kernels.
FIXABLE := $(wildcard examples/vet/fixable_*.ptx)
UNFIXABLE := $(wildcard examples/vet/unfixable_*.ptx)
vet-fix-smoke: build
	@$(GO) run ./cmd/barracuda vet -fix $(FIXABLE) > vet-fix.out 2>&1 || true
	@for f in $(FIXABLE); do \
		line="$$(grep "^$$f: kernel .*baseline_races=" vet-fix.out)"; \
		case "$$line" in \
		*" verified=0 "*|*"baseline_races=0 "*) \
			echo "$$f: repair failed: $$line"; cat vet-fix.out; rm -f vet-fix.out; exit 1;; \
		*"final_races=0") ;; \
		*) echo "$$f: patched module still races: $$line"; cat vet-fix.out; rm -f vet-fix.out; exit 1;; \
		esac; \
	done
	@rm -f vet-fix.out
	@$(GO) run ./cmd/barracuda vet -fix $(UNFIXABLE) > vet-fix.out 2>&1 || true
	@for f in $(UNFIXABLE); do \
		line="$$(grep "^$$f: kernel .*baseline_races=" vet-fix.out)"; \
		case "$$line" in \
		*" proposals=0 verified=0 "*) ;; \
		*) echo "$$f: expected an honest decline: $$line"; cat vet-fix.out; rm -f vet-fix.out; exit 1;; \
		esac; \
	done
	@rm -f vet-fix.out
	@echo "vet-fix-smoke: $(words $(FIXABLE)) fixable repaired, $(words $(UNFIXABLE)) unrepairable declined"

# Verified-repair throughput artifact (BENCH_repair.json): repairs/sec
# cold (full synthesis + dynamic verification per distinct module) vs
# warm (memoized on the module-cache entry), gated on a 2x warm speedup.
bench-repair:
	$(GO) run ./cmd/benchtab -repair -jobs 16 -min-speedup 2.0 -o BENCH_repair.json

# Tier-1 verification: the full suite, plus the same suite under the Go
# race detector (the transport and server are concurrency-heavy).
test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro/macro benchmarks plus the detection-service throughput artifact
# (BENCH_server.json: jobs/sec with cold vs warm module cache) and the
# static-pruner artifact (BENCH_static.json: instrumented fractions and
# detection throughput, pruned vs unpruned).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
	$(GO) run ./cmd/benchtab -server -jobs 32 -workers 4 -o BENCH_server.json
	$(GO) run ./cmd/benchtab -static -o BENCH_static.json

# Detection throughput vs queue count (capture/replay, widths 1/2/4/8),
# asserting the determinism contract at every width.
bench-scaling:
	$(GO) run ./cmd/benchtab -scaling -o BENCH_scaling.json

# Warp-vectorized interpreter A/B: gpusim microbenchmarks (warp stepping
# and log emission, both dispatch paths, with allocation counts), then
# the suite-wide artifact (BENCH_sim.json) gated on report equality and
# the 1.5x suite speedup floor.
bench-sim:
	$(GO) test -bench='BenchmarkWarpStep|BenchmarkLogEmission' -benchmem -run=^$$ ./internal/gpusim/
	$(GO) run ./cmd/benchtab -sim -min-speedup 1.5 -o BENCH_sim.json

# Coalesced-span shadow fast path A/B: core microbenchmarks (ns per warp
# access and allocations, span vs per-cell, including the read-inflation
# worst case), then the mix-level artifact (BENCH_detect.json) gated on
# canonical-digest equality and the 2x coalesced speedup floor.
bench-detect:
	$(GO) test -bench=BenchmarkWarpAccess -benchmem -run=^$$ ./internal/core/
	$(GO) run ./cmd/benchtab -detect -min-speedup 2.0 -o BENCH_detect.json

# Adaptive-shadow A/B: the exclusive-ownership tier vs the span baseline
# over private/block-owned/contended mixes, plus the bounded page sweep
# (BENCH_shadow.json), gated on canonical-digest equality, the cap
# holding, and the 1.3x private-mix speedup floor.
bench-shadow:
	$(GO) run ./cmd/benchtab -shadow -min-speedup 1.3 -o BENCH_shadow.json

# The adaptive-shadow correctness stress: ownership and bounded-shadow
# equivalence over the 66-program bug suite under the Go race detector
# (concurrent claim/inflate traffic at 4 queues).
stress-ownership:
	GOMAXPROCS=4 $(GO) test -race -run 'TestOwnershipEquivalence|TestBoundedShadowEquivalence' ./internal/bugsuite/

# Fleet warm-routing A/B in the deterministic cluster simulator:
# BENCH_fleet.json (warm hit rate + jobs/sec, ring vs random, at
# N ∈ {1,2,4,8}), gated on the N=4 hit-rate gain over random placement.
bench-fleet:
	$(GO) run ./cmd/benchtab -fleet -min-hit-gain 1.05 -o BENCH_fleet.json

# The cluster-simulator determinism smoke, under the Go race detector:
# each scenario runs twice at a fixed seed and fails unless both passes
# produce identical schedule and report digests with zero lost jobs —
# including a crash + heartbeat-loss scenario that exercises failover.
fleet-sim:
	$(GO) run -race ./cmd/fleetsim -nodes 4 -jobs 20000 -seed 42 -repeat 2
	$(GO) run -race ./cmd/fleetsim -nodes 8 -jobs 20000 -seed 42 -traffic mixed -crash 2@0.3 -hbloss 0.05 -repeat 2

# Producer-side epoch filtering A/B: loop-heavy, barrier-dense and
# adversarial no-repeat mixes, full live detections with the filter off
# vs on (BENCH_filter.json) — gated on canonical-digest and record-count
# equality on every run and a 1.5x floor on the loop-heavy speedup.
bench-filter:
	$(GO) run ./cmd/benchtab -filter -min-speedup 1.5 -o BENCH_filter.json

# The producer-filter correctness stress: filtered-vs-unfiltered report
# equivalence over the 66-program bug suite (sequential and randomized
# schedules), the benchmark suite, and the record-batch codec fuzz
# corpus, under the Go race detector where schedules are concurrent.
stress-filter:
	GOMAXPROCS=4 $(GO) test -race -run 'TestProducerFilter' ./internal/bugsuite/ ./internal/detector/ ./internal/server/
	$(GO) test -run 'TestFilterBenchmarkEquivalence' ./internal/bench/
	$(GO) test -run 'FuzzRecords|TestRecordSeedsRoundTrip' ./internal/wire/

# Streaming-protocol A/B: JSON submit+poll vs the binary wire protocol
# on bytes-on-wire, time-to-first-race and jobs/sec, cold and warm, at
# three report sizes (BENCH_proto.json) — gated on stream-vs-JSON
# report digest identity and a 1.3x floor on every headline factor.
bench-proto:
	$(GO) run ./cmd/benchtab -proto -jobs 16 -workers 2 -min-speedup 1.3 -o BENCH_proto.json

# The streaming-protocol correctness stress: frame-decoder fuzz corpus
# regression, then stream-vs-JSON report equivalence over the
# 66-program bug suite under the Go race detector.
stress-stream:
	$(GO) test -run 'FuzzFrames|TestDecodeMalformedPayloads|TestRaceStreamRoundTrip|TestSummaryRoundTrip|TestRecordBatchRoundTrip' ./internal/wire/
	$(GO) test -race -run TestStreamJSONEquivalence ./internal/server/

# The multi-queue determinism stress: the 66-program bug suite at 4
# queues vs 1 queue, repeated, with real parallelism and under the Go
# race detector.
stress-multiqueue:
	GOMAXPROCS=4 $(GO) test -count=5 -run TestMultiQueueReportEquivalence ./internal/bugsuite/
	GOMAXPROCS=4 $(GO) test -race -count=2 -run TestMultiQueueReportEquivalence ./internal/bugsuite/

serve:
	$(GO) run ./cmd/barracudad -addr :8321

ci: build vet fmt-check test race vet-smoke vet-fix-smoke stress-multiqueue stress-stream stress-filter fleet-sim
