# BARRACUDA-in-Go build/verify/bench targets (stdlib Go only).

GO ?= go

.PHONY: all build vet test race bench serve ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verification: the full suite, plus the same suite under the Go
# race detector (the transport and server are concurrency-heavy).
test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro/macro benchmarks plus the detection-service throughput artifact
# (BENCH_server.json: jobs/sec with cold vs warm module cache).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
	$(GO) run ./cmd/benchtab -server -jobs 32 -workers 4 -o BENCH_server.json

serve:
	$(GO) run ./cmd/barracudad -addr :8321

ci: build vet test race
