// Benchmarks regenerating the paper's evaluation artifacts:
//
//	BenchmarkTable1              — full Table 1 sweep (detection on all 26 benchmarks)
//	BenchmarkFig9Instrumentation — static instrumentation of all 26 benchmarks
//	BenchmarkNative/*            — Figure 10 baseline: native simulation
//	BenchmarkDetect/*            — Figure 10: instrumented run + detection
//	BenchmarkBugSuite            — the 66-program §6.1 suite under BARRACUDA
//	BenchmarkLitmusMP            — the Figure 4 mp litmus engine
//
// and the ablations DESIGN.md calls out:
//
//	BenchmarkPTVCCompression vs BenchmarkFullVCDetector — compressed vs
//	    uncompressed per-thread vector clocks
//	BenchmarkQueueScaling        — 1..8 logging queues
//	BenchmarkQueueThroughput     — raw lock-free queue ops
//	BenchmarkGranularity         — 1-byte vs 4-byte shadow cells
package barracuda

import (
	"fmt"
	"testing"

	"barracuda/internal/bench"
	"barracuda/internal/bugsuite"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/instrument"
	"barracuda/internal/logging"
	"barracuda/internal/memmodel"
	"barracuda/internal/ptx"
)

// fig10Set is the subset of benchmarks exercised per-iteration in the
// timed benchmarks (a spread of small, medium and racy kernels); the
// full 26-benchmark sweep lives in BenchmarkTable1 and cmd/benchtab.
var fig10Set = []string{"nn", "hashtable", "bfs_shoc", "pathfinder", "hotspot", "dwt2d"}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 26 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig9Instrumentation(b *testing.B) {
	mods := make([]*ptx.Module, 0, 26)
	for _, bm := range bench.All() {
		m, err := ptx.Parse(bm.PTX())
		if err != nil {
			b.Fatal(err)
		}
		mods = append(mods, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mods {
			if _, err := instrument.Instrument(m, instrument.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkNative(b *testing.B) {
	for _, name := range fig10Set {
		bm := bench.ByName(name)
		b.Run(name, func(b *testing.B) {
			s, err := detector.OpenPTX(bm.PTX(), detector.Config{})
			if err != nil {
				b.Fatal(err)
			}
			var args []uint64
			for _, sz := range bm.Buffers() {
				args = append(args, s.Dev.MustAlloc(sz))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.RunNative("main", launchFor(bm, args)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDetect(b *testing.B) {
	for _, name := range fig10Set {
		bm := bench.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Detect(bm, detector.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBugSuite(b *testing.B) {
	tests := bugsuite.Tests()
	for i := 0; i < b.N; i++ {
		res, err := bugsuite.RunSuite(tests, bugsuite.RunBarracuda)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct != 66 {
			b.Fatalf("correct = %d", res.Correct)
		}
	}
}

func BenchmarkLitmusMP(b *testing.B) {
	t := memmodel.MP(memmodel.Cta, memmodel.Cta)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Estimate(memmodel.Kepler, 1000, int64(i))
	}
}

// --- Ablations ---------------------------------------------------------

// ptvcAblationBench is a mid-size benchmark with divergence, barriers and
// fences, where the PTVC representation matters.
const ptvcAblationBench = "threadfencereduction"

func BenchmarkPTVCCompression(b *testing.B) {
	bm := bench.ByName(ptvcAblationBench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Detect(bm, detector.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullVCDetector(b *testing.B) {
	bm := bench.ByName(ptvcAblationBench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Detect(bm, detector.Config{FullVC: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueScaling(b *testing.B) {
	bm := bench.ByName("hotspot")
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queues-%d", queues), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Detect(bm, detector.Config{Queues: queues}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQueueThroughput(b *testing.B) {
	q := logging.NewQueue(4096)
	done := make(chan struct{})
	go func() {
		var r logging.Record
		for {
			q.Dequeue(&r)
			if r.Op == 0 && r.PC == ^uint32(0) {
				close(done)
				return
			}
		}
	}()
	var rec logging.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.PC = uint32(i)
		q.Enqueue(&rec)
	}
	b.StopTimer()
	rec.PC = ^uint32(0)
	q.Enqueue(&rec)
	<-done
}

func BenchmarkGranularity(b *testing.B) {
	bm := bench.ByName("hotspot")
	for _, g := range []int{1, 4} {
		b.Run(fmt.Sprintf("bytes-%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Detect(bm, detector.Config{Granularity: g}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func launchFor(bm *bench.Benchmark, args []uint64) gpusim.LaunchConfig {
	return gpusim.LaunchConfig{Grid: bm.Grid, Block: bm.Block, Args: args}
}
