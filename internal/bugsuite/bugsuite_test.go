package bugsuite

import "testing"

func TestSuiteHas66Programs(t *testing.T) {
	tests := Tests()
	if len(tests) != 66 {
		t.Fatalf("suite has %d programs, want 66", len(tests))
	}
	seen := map[string]bool{}
	for _, tc := range tests {
		if tc.Name == "" || tc.PTX == "" || tc.Kernel == "" {
			t.Errorf("incomplete test %+v", tc.Name)
		}
		if seen[tc.Name] {
			t.Errorf("duplicate test name %q", tc.Name)
		}
		seen[tc.Name] = true
	}
}

func TestBarracudaVerdicts(t *testing.T) {
	// BARRACUDA reports correctly on all 66 programs (§6.1).
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			v, err := RunBarracuda(tc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !tc.Expect.Correct(v) {
				t.Errorf("verdict = %v, want %v (%s)", v, tc.Expect, tc.Desc)
			}
		})
	}
}

func TestBarracudaScore(t *testing.T) {
	res, err := RunSuite(Tests(), RunBarracuda)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 66 {
		var wrong []string
		for _, tc := range Tests() {
			if !tc.Expect.Correct(res.Verdicts[tc.Name]) {
				wrong = append(wrong, tc.Name+"="+res.Verdicts[tc.Name].String())
			}
		}
		t.Fatalf("BARRACUDA correct on %d/66; wrong: %v", res.Correct, wrong)
	}
}

func TestRacecheckScore(t *testing.T) {
	res, err := RunSuite(Tests(), RunRacecheck)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("racecheck correct on %d/66", res.Correct)
	// The paper reports 19/66 for Nvidia's racecheck; the model's
	// documented limitations land it at the same count.
	if res.Correct != 19 {
		var rows []string
		for _, tc := range Tests() {
			mark := "WRONG"
			if tc.Expect.Correct(res.Verdicts[tc.Name]) {
				mark = "ok"
			}
			rows = append(rows, tc.Name+" expect="+tc.Expect.String()+" got="+res.Verdicts[tc.Name].String()+" "+mark)
		}
		t.Fatalf("racecheck correct on %d/66, want 19:\n%s", res.Correct, joinLines(rows))
	}
}

func TestRacecheckHangsOnSpinTests(t *testing.T) {
	res, err := RunSuite(Tests(), RunRacecheck)
	if err != nil {
		t.Fatal(err)
	}
	hangs := 0
	for _, v := range res.Verdicts {
		if v == VHang {
			hangs++
		}
	}
	if hangs == 0 {
		t.Error("racecheck never hung; the serialization limitation is not modeled")
	}
}

func joinLines(rows []string) string {
	out := ""
	for _, r := range rows {
		out += r + "\n"
	}
	return out
}
