// Package bugsuite is the CUDA concurrency bug suite of §6.1: 66 small
// kernels that exhibit subtle data races — or subtle race-freedom —
// through global and shared memory, within and across warps and blocks,
// using barriers, atomics and memory fences to build locks, flags and
// whole-grid barriers. Each test records the verdict a correct detector
// must produce; the suite is used to validate BARRACUDA (66/66 in the
// paper) against the racecheck baseline (19/66).
package bugsuite

import (
	"errors"
	"fmt"

	"barracuda/internal/baseline/racecheck"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// Expect is the ground-truth verdict of a test.
type Expect int

// Ground-truth classes.
const (
	RaceFree Expect = iota
	Racy
	BarrierDiv // barrier divergence error
)

func (e Expect) String() string {
	switch e {
	case RaceFree:
		return "race-free"
	case Racy:
		return "racy"
	case BarrierDiv:
		return "barrier-divergence"
	}
	return "?"
}

// Test is one suite program.
type Test struct {
	Name     string
	Category string
	Desc     string
	PTX      string
	Kernel   string
	Grid     gpusim.Dim3
	Block    gpusim.Dim3
	// Bufs lists the sizes of the global buffers allocated (zeroed) and
	// passed as the kernel's u64 parameters, in order. ExtraArgs are
	// appended after the buffers.
	Bufs      []int
	ExtraArgs []uint64
	Expect    Expect
}

// Verdict is a tool's outcome on one test.
type Verdict int

// Tool outcomes.
const (
	VClean Verdict = iota
	VRacy
	VDiverged
	VHang
	VError
)

func (v Verdict) String() string {
	switch v {
	case VClean:
		return "clean"
	case VRacy:
		return "racy"
	case VDiverged:
		return "barrier-divergence"
	case VHang:
		return "HANG"
	case VError:
		return "error"
	}
	return "?"
}

// Correct reports whether a verdict matches the expected class.
func (e Expect) Correct(v Verdict) bool {
	switch e {
	case RaceFree:
		return v == VClean
	case Racy:
		return v == VRacy
	case BarrierDiv:
		return v == VDiverged
	}
	return false
}

// budget bounds every suite kernel; spin loops that cannot make progress
// (a hang on real hardware) exceed it.
const budget = 1 << 19

// launch prepares the launch configuration and arguments for a test.
func (t *Test) launch(dev *gpusim.Device) (gpusim.LaunchConfig, error) {
	args := make([]uint64, 0, len(t.Bufs)+len(t.ExtraArgs))
	for _, sz := range t.Bufs {
		a, err := dev.Alloc(sz)
		if err != nil {
			return gpusim.LaunchConfig{}, err
		}
		args = append(args, a)
	}
	args = append(args, t.ExtraArgs...)
	return gpusim.LaunchConfig{
		Grid:          t.Grid,
		Block:         t.Block,
		Args:          args,
		MaxWarpInstrs: budget,
	}, nil
}

// RunBarracuda runs one test under the BARRACUDA detector.
func RunBarracuda(t *Test) (Verdict, error) {
	return RunBarracudaWith(t, detector.Config{})
}

// RunBarracudaWith runs one test under the detector with an explicit
// pipeline configuration (multi-queue, full-VC, coarser shadow, ...).
func RunBarracudaWith(t *Test, cfg detector.Config) (Verdict, error) {
	s, err := detector.OpenPTX(t.PTX, cfg)
	if err != nil {
		return VError, fmt.Errorf("%s: %w", t.Name, err)
	}
	launch, err := t.launch(s.Dev)
	if err != nil {
		return VError, err
	}
	res, err := s.Detect(t.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return VHang, nil
		}
		return VError, fmt.Errorf("%s: %w", t.Name, err)
	}
	switch {
	case len(res.Report.Divergences) > 0:
		return VDiverged, nil
	case res.Report.HasRaces():
		return VRacy, nil
	default:
		return VClean, nil
	}
}

// rcSink feeds records into the racecheck baseline.
type rcSink struct {
	det *racecheck.Detector
}

func (s *rcSink) Emit(r *logging.Record) {
	// Pass barrier releases and accesses; racecheck ignores the rest.
	switch r.Op {
	case trace.OpIf, trace.OpElse, trace.OpFi, trace.OpBar:
		return
	}
	s.det.Handle(r)
}

// RunRacecheck runs one test under the racecheck-like baseline. The tool
// serializes thread blocks (one block at a time), which is what makes it
// hang on cross-block spin synchronization.
func RunRacecheck(t *Test) (Verdict, error) {
	m, err := ptx.Parse(t.PTX)
	if err != nil {
		return VError, err
	}
	s, err := detector.Open(m, detector.Config{})
	if err != nil {
		return VError, err
	}
	launch, err := t.launch(s.Dev)
	if err != nil {
		return VError, err
	}
	rc := racecheck.New(t.Block.Count(), gpusim.WarpSize)
	launch.Sink = &rcSink{det: rc}
	launch.EmitBranchEvents = true
	launch.MaxResidentBlocks = 1 // the tool serializes blocks
	if _, err := s.Instr.Launch(t.Kernel, launch); err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return VHang, nil
		}
		return VError, fmt.Errorf("%s: %w", t.Name, err)
	}
	if rc.HasHazards() {
		return VRacy, nil
	}
	return VClean, nil
}

// Result is the outcome of the full suite for one tool.
type Result struct {
	Total    int
	Correct  int
	Verdicts map[string]Verdict
}

// RunSuite evaluates all tests under a runner.
func RunSuite(tests []*Test, run func(*Test) (Verdict, error)) (*Result, error) {
	res := &Result{Verdicts: make(map[string]Verdict)}
	for _, t := range tests {
		v, err := run(t)
		if err != nil {
			return nil, err
		}
		res.Verdicts[t.Name] = v
		res.Total++
		if t.Expect.Correct(v) {
			res.Correct++
		}
	}
	return res, nil
}
