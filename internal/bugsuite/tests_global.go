package bugsuite

import "barracuda/internal/gpusim"

// globalTests cover global memory: inter-block races invisible to
// shared-memory-only tools, fence-scoped message passing, locks built
// from atomics and fences, and the §6.3 bug patterns.
func globalTests() []*Test {
	// Message-passing skeleton shared by several tests; FENCE1/FENCE2
	// are spliced in.
	mp := func(fence1, fence2, writerBlock string) string {
		return `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, ` + writerBlock + `;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
` + fence1 + `
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
` + fence2 + `
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`
	}
	oneThreadBlocks := func(n int) (gpusim.Dim3, gpusim.Dim3) {
		return gpusim.D1(n), gpusim.D1(1)
	}
	g2, b1 := oneThreadBlocks(2)

	return []*Test{
		{
			Name:     "gl-waw-interblock-racy",
			Category: "global",
			Desc:     "thread 0 of each block writes the same global word",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(2),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	mov.u32 %r2, %ctaid.x;
	st.global.u32 [%rd1], %r2;
	ret;
}`,
		},
		{
			Name:     "gl-raw-interblock-racy",
			Category: "global",
			Desc:     "block 0 writes a global word block 1 reads, no synchronization",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 7;
	ret;
READER:
	ld.global.u32 %r2, [%rd1];
	st.global.u32 [%rd2], %r2;
	ret;
}`,
		},
		{
			Name:     "gl-war-interblock-racy",
			Category: "global",
			Desc:     "block 0 reads a global word block 1 overwrites",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra WRITER;
	ld.global.u32 %r2, [%rd1];
	st.global.u32 [%rd2], %r2;
	ret;
WRITER:
	st.global.u32 [%rd1], 9;
	ret;
}`,
		},
		{
			Name:     "gl-waw-interwarp-racy",
			Category: "global",
			Desc:     "two warps of one block write the same global word",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %laneid;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	mov.u32 %r2, %tid.x;
	st.global.u32 [%rd1], %r2;
	ret;
}`,
		},
		{
			Name:     "gl-intrawarp-waw-racy",
			Category: "global",
			Desc:     "all lanes of a warp write different values to one global word",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`,
		},
		{
			Name:     "gl-samevalue-overwrite-racy",
			Category: "global",
			Desc:     "a thread overwrites a global word with its existing value while another block reads it — value-based tools (LDetector) cannot see this write",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(2),
			Block:    gpusim.D1(1),
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	ld.global.u32 %r2, [%rd1];
	st.global.u32 [%rd1], %r2;
	ret;
READER:
	ld.global.u32 %r3, [%rd1];
	st.global.u32 [%rd2], %r3;
	ret;
}`,
		},
		{
			Name:     "gl-mp-nofence-racy",
			Category: "global",
			Desc:     "cross-block message passing with no fences at all",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX:      mp("", "", "0"),
		},
		{
			Name:     "gl-mp-cta-racy",
			Category: "global",
			Desc:     "cross-block message passing with membar.cta on both sides (Figure 4: insufficient between blocks)",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX:      mp("\tmembar.cta;", "\tmembar.cta;", "0"),
		},
		{
			Name:     "gl-mp-gl-free",
			Category: "global",
			Desc:     "cross-block message passing with membar.gl on both sides",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX:      mp("\tmembar.gl;", "\tmembar.gl;", "0"),
		},
		{
			Name:     "gl-mp-gl-waiterfirst-free",
			Category: "global",
			Desc:     "gl-fenced message passing where block 0 is the waiter (serializing tools hang here)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX:      mp("\tmembar.gl;", "\tmembar.gl;", "1"),
		},
		{
			Name:     "gl-lock-nofence-racy",
			Category: "global",
			Desc:     "the §6.3 hashtable bug: atomicCAS lock with no fences does not synchronize",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`,
		},
		{
			Name:     "gl-lock-plain-unlock-racy",
			Category: "global",
			Desc:     "the second §6.3 hashtable bug: the lock is freed by a plain unfenced store",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.gl;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	st.global.u32 [%rd1], 0;
	ret;
}`,
		},
		{
			Name:     "gl-lock-gl-free",
			Category: "global",
			Desc:     "a correct global spinlock: cas+membar.gl acquire, membar.gl+exch release",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.gl;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	membar.gl;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`,
		},
		{
			Name:     "gl-lock-cta-across-blocks-racy",
			Category: "global",
			Desc:     "a lock whose fences are only block-scoped cannot synchronize across blocks",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.cta;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	membar.cta;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`,
		},
		{
			Name:     "gl-tid-private-free",
			Category: "global",
			Desc:     "every thread owns a disjoint global slot",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 256},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	ld.global.u32 %r6, [%rd3];
	ret;
}`,
		},
		{
			Name:     "gl-atomic-counter-free",
			Category: "global",
			Desc:     "a global atomic counter incremented from every thread of every block",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	ret;
}`,
		},
		{
			Name:     "gl-atomic-vs-write-racy",
			Category: "global",
			Desc:     "a global word updated atomically by one block and plainly by another",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [ctr];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra PLAIN;
	atom.global.add.u32 %r2, [%rd1], 1;
	ret;
PLAIN:
	st.global.u32 [%rd1], 100;
	ret;
}`,
		},
		{
			Name:     "gl-bfs-frontier-racy",
			Category: "global",
			Desc:     "the §6.3 SHOC bfs pattern: distance updates and a done-flag written plainly from multiple blocks",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(2),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 16, 4},
			PTX: `.visible .entry k(.param .u64 dist, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [dist];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 15;
	shl.b32 %r3, %r2, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], 1;
	st.global.u32 [%rd2], 1;
	ret;
}`,
		},
		{
			Name:     "gl-reduce-nosync-racy",
			Category: "global",
			Desc:     "per-block partials reduced by block 0 without any grid synchronization",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4 * 4, 4},
			PTX: `.visible .entry k(.param .u64 partials, .param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [partials];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd3, %r2;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	ld.global.u32 %r3, [%rd1];
	ld.global.u32 %r4, [%rd1+4];
	ld.global.u32 %r5, [%rd1+8];
	ld.global.u32 %r6, [%rd1+12];
	add.u32 %r7, %r3, %r4;
	add.u32 %r8, %r5, %r6;
	add.u32 %r9, %r7, %r8;
	st.global.u32 [%rd2], %r9;
	ret;
}`,
		},
		{
			Name:     "gl-gridbarrier-fenced-free",
			Category: "global",
			Desc:     "threadFenceReduction: partials published with gl fences around an atomic arrival counter; the last block reduces",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4 * 4, 4, 4},
			PTX: `.visible .entry k(.param .u64 partials, .param .u64 count, .param .u64 out)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<12>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [partials];
	ld.param.u64 %rd2, [count];
	ld.param.u64 %rd3, [out];
	mov.u32 %r1, %ctaid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd4, %r2;
	add.u64 %rd5, %rd1, %rd4;
	st.global.u32 [%rd5], %r1;
	membar.gl;
	atom.global.add.u32 %r3, [%rd2], 1;
	membar.gl;
	setp.ne.u32 %p1, %r3, 3;
	@%p1 ret;
	ld.global.u32 %r4, [%rd1];
	ld.global.u32 %r5, [%rd1+4];
	ld.global.u32 %r6, [%rd1+8];
	ld.global.u32 %r7, [%rd1+12];
	add.u32 %r8, %r4, %r5;
	add.u32 %r9, %r6, %r7;
	add.u32 %r10, %r8, %r9;
	st.global.u32 [%rd3], %r10;
	ret;
}`,
		},
		{
			Name:     "gl-gridbarrier-nofence-racy",
			Category: "global",
			Desc:     "the same arrival-counter pattern without fences: the bare atomic does not synchronize",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(4),
			Block:    b1,
			Bufs:     []int{4 * 4, 4, 4},
			PTX: `.visible .entry k(.param .u64 partials, .param .u64 count, .param .u64 out)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<12>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [partials];
	ld.param.u64 %rd2, [count];
	ld.param.u64 %rd3, [out];
	mov.u32 %r1, %ctaid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd4, %r2;
	add.u64 %rd5, %rd1, %rd4;
	st.global.u32 [%rd5], %r1;
	atom.global.add.u32 %r3, [%rd2], 1;
	setp.ne.u32 %p1, %r3, 3;
	@%p1 ret;
	ld.global.u32 %r4, [%rd1];
	ld.global.u32 %r5, [%rd1+4];
	ld.global.u32 %r6, [%rd1+8];
	ld.global.u32 %r7, [%rd1+12];
	add.u32 %r8, %r4, %r5;
	add.u32 %r9, %r6, %r7;
	add.u32 %r10, %r8, %r9;
	st.global.u32 [%rd3], %r10;
	ret;
}`,
		},
	}
}
