package bugsuite

import "barracuda/internal/gpusim"

// branchTests exercise the paper's new bug class — branch ordering races —
// together with divergence-free controls and barrier divergence errors.
func branchTests() []*Test {
	return []*Test{
		{
			Name:     "br-order-gl-racy",
			Category: "branch",
			Desc:     "the two sides of a divergent branch write the same global word; the SIMT serialization order is architecture-defined",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra THEN;
	st.global.u32 [%rd1], 1;
	bra.uni FI;
THEN:
	st.global.u32 [%rd1], 2;
FI:
	ret;
}`,
		},
		{
			Name:     "br-nested-gl-racy",
			Category: "branch",
			Desc:     "nested divergence: the inner branch's paths conflict",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra OUTER;
	setp.lt.u32 %p2, %r1, 24;
	@%p2 bra INNER;
	st.global.u32 [%rd1], 1;
	bra.uni IFI;
INNER:
	st.global.u32 [%rd1], 2;
IFI:
OUTER:
	ret;
}`,
		},
		{
			Name:     "br-reconverge-sh-free",
			Category: "branch",
			Desc:     "divergent paths write disjoint shared slots; cross-path reads happen only after reconvergence",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra THEN;
	st.shared.u32 [%rd4], 100;
	bra.uni FI;
THEN:
	st.shared.u32 [%rd4], 200;
FI:
	add.u32 %r3, %r1, 16;
	and.b32 %r4, %r3, 31;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r6;
	ret;
}`,
		},
		{
			Name:     "br-uniform-sh-free",
			Category: "branch",
			Desc:     "a uniformly-false branch never diverges; the following lockstep exchange is ordered",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ntid.x;
	setp.gt.u32 %p1, %r2, 1000;
	@%p1 bra NEVER;
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd2, %r3;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	xor.b32 %r4, %r1, 1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r6;
NEVER:
	ret;
}`,
		},
		{
			Name:     "br-samevalue-paths-gl-racy",
			Category: "branch",
			Desc:     "both paths write the SAME value: the same-value exemption applies only within one instruction, not across paths",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra THEN;
	st.global.u32 [%rd1], 5;
	bra.uni FI;
THEN:
	st.global.u32 [%rd1], 5;
FI:
	ret;
}`,
		},
		{
			Name:     "br-path-vs-otherwarp-gl-racy",
			Category: "branch",
			Desc:     "a divergent path of warp 0 writes what warp 1 reads concurrently",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4, 4 * 64},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 32;
	@%p1 bra WARP0;
	ld.global.u32 %r2, [%rd1];
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd2, %rd3;
	st.global.u32 [%rd4], %r2;
	ret;
WARP0:
	setp.ne.u32 %p1, %r1, 3;
	@%p1 ret;
	st.global.u32 [%rd1], 77;
	ret;
}`,
		},
		{
			Name:     "bardiv-branch",
			Category: "barrier-divergence",
			Desc:     "bar.sync executed inside a divergent branch",
			Expect:   BarrierDiv,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.ge.u32 %p1, %r1, 16;
	@%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}`,
		},
		{
			Name:     "bardiv-earlyexit",
			Category: "barrier-divergence",
			Desc:     "half the threads return before the barrier",
			Expect:   BarrierDiv,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.ge.u32 %p1, %r1, 16;
	@%p1 ret;
	bar.sync 0;
	ret;
}`,
		},
		{
			Name:     "bar-partialwarp-free",
			Category: "barrier-divergence",
			Desc:     "a partially-populated last warp at a barrier is NOT divergence; post-barrier lockstep exchange stays ordered",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(48),
			Bufs:     []int{4 * 48},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[192];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	bar.sync 0;
	st.shared.u32 [%rd4], %r1;
	xor.b32 %r3, %r1, 1;
	shl.b32 %r4, %r3, 2;
	cvt.u64.u32 %rd5, %r4;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r5, [%rd6];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r5;
	ret;
}`,
		},
	}
}
