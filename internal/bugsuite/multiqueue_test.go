package bugsuite

import (
	"errors"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// digestFor runs one test under the detector at the given queue width
// and returns the canonical report digest (the queue-count-invariant
// projection of the report — see core.Report.CanonicalDigest).
func digestFor(t *Test, cfg detector.Config) (string, error) {
	s, err := detector.OpenPTX(t.PTX, cfg)
	if err != nil {
		return "", err
	}
	launch, err := t.launch(s.Dev)
	if err != nil {
		return "", err
	}
	res, err := s.Detect(t.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return "HANG\n", nil
		}
		return "", err
	}
	return res.Report.CanonicalDigest(), nil
}

// TestMultiQueueReportEquivalence is the determinism contract of the
// parallel detection pipeline: across the full bug suite, running with
// four queues (four concurrent detector workers) must produce reports
// canonically identical to the single-queue run — same static races,
// same dynamic counts, same divergences, same record totals. Per-queue
// FIFO order preserves each block's program order, and Seq-ordered sync
// records preserve cross-queue happens-before edges; this test is what
// the server's content-addressed cache and the Fig. 9 comparisons rely
// on. Run under -race (make race / CI) this also stress-tests the
// lock-free transport, the striped shadow page table and the per-worker
// stat shards.
func TestMultiQueueReportEquivalence(t *testing.T) {
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			base, err := digestFor(tc, detector.Config{Queues: 1})
			if err != nil {
				t.Fatalf("single-queue run: %v", err)
			}
			multi, err := digestFor(tc, detector.Config{Queues: 4})
			if err != nil {
				t.Fatalf("multi-queue run: %v", err)
			}
			if base != multi {
				t.Errorf("report changed at Queues=4:\n--- queues=1 ---\n%s--- queues=4 ---\n%s", base, multi)
			}
		})
	}
}
