package bugsuite

import (
	"errors"
	"fmt"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// adaptiveRun executes one suite test with the adaptive-shadow knobs
// set: the exclusive-ownership fast path and/or a shadow byte cap.
func adaptiveRun(tc *Test, ws, queues int, ownership bool, capBytes int64) (warpvecResult, error) {
	s, err := detector.OpenPTX(tc.PTX, detector.Config{
		Queues:         queues,
		Ownership:      ownership,
		ShadowCapBytes: capBytes,
	})
	if err != nil {
		return warpvecResult{}, err
	}
	launch, err := tc.launch(s.Dev)
	if err != nil {
		return warpvecResult{}, err
	}
	launch.WarpSize = ws
	res, err := s.Detect(tc.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return warpvecResult{digest: "HANG\n"}, nil
		}
		return warpvecResult{digest: "ERROR: " + err.Error() + "\n"}, nil
	}
	var races string
	for _, rc := range res.Report.Races {
		races += fmt.Sprintf("%+v\n", rc)
	}
	if res.Report.PrecisionDegraded {
		races += "PRECISION DEGRADED\n"
	}
	return warpvecResult{
		digest: res.Report.CanonicalDigest(),
		races:  races,
		stats:  res.SimStats,
	}, nil
}

// adaptiveCompare asserts an adaptive-shadow configuration reproduces
// the span baseline at one (warp size, queue count) point: identical
// canonical digests always, byte-identical race lists at one queue, and
// no PrecisionDegraded report (the cap, when set, is generous enough
// that compaction alone keeps residency below it).
func adaptiveCompare(t *testing.T, tc *Test, ws, queues int, ownership bool, capBytes int64) {
	t.Helper()
	base, err := adaptiveRun(tc, ws, queues, false, 0)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	adapt, err := adaptiveRun(tc, ws, queues, ownership, capBytes)
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	if base.digest != adapt.digest {
		t.Errorf("canonical digest diverged (ws=%d queues=%d ownership=%t cap=%d):\n--- baseline ---\n%s--- adaptive ---\n%s",
			ws, queues, ownership, capBytes, base.digest, adapt.digest)
	}
	if queues == 1 && base.races != adapt.races {
		t.Errorf("race set diverged (ws=%d queues=%d ownership=%t cap=%d):\n--- baseline ---\n%s--- adaptive ---\n%s",
			ws, queues, ownership, capBytes, base.races, adapt.races)
	}
	if base.stats != adapt.stats {
		t.Errorf("launch stats diverged (ws=%d queues=%d ownership=%t cap=%d):\nbaseline: %+v\nadaptive: %+v",
			ws, queues, ownership, capBytes, base.stats, adapt.stats)
	}
}

// TestOwnershipEquivalence is the correctness contract of the
// exclusive-ownership fast path: across the full bug suite, claiming
// regions for a single warp (and skipping the per-epoch checks on
// same-owner traffic) must reproduce the span baseline exactly —
// identical canonical digests, race sets and stats. Warp size 5 forces
// partial masks and mid-warp divergence, where the ownership tier must
// bail to the slow path without corrupting its facts; four queues put
// concurrent claim/inflate traffic on shared regions.
func TestOwnershipEquivalence(t *testing.T) {
	queueCounts := []int{1, 4}
	if testing.Short() {
		queueCounts = []int{1}
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, q := range queueCounts {
				adaptiveCompare(t, tc, 0, q, true, 0)
				adaptiveCompare(t, tc, 5, q, true, 0)
			}
		})
	}
}

// TestBoundedShadowEquivalence runs the suite with barrier compaction
// armed (a byte cap well above any suite test's residency): compaction
// may discard converged shared slabs, but reports must stay identical
// and precision must never be marked degraded. The combined
// configuration — ownership + cap — is the shipping default candidate,
// so it is checked too.
func TestBoundedShadowEquivalence(t *testing.T) {
	const cap = 64 << 20 // far above any suite test's shadow footprint
	queueCounts := []int{1, 4}
	if testing.Short() {
		queueCounts = []int{1}
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, q := range queueCounts {
				adaptiveCompare(t, tc, 0, q, false, cap)
				adaptiveCompare(t, tc, 0, q, true, cap)
			}
		})
	}
}
