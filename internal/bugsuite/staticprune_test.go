package bugsuite

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// reportString renders everything user-visible about a detection run so
// the equivalence test below can demand byte identity.
func reportString(t *Test, cfg detector.Config) (string, error) {
	s, err := detector.OpenPTX(t.PTX, cfg)
	if err != nil {
		return "", err
	}
	launch, err := t.launch(s.Dev)
	if err != nil {
		return "", err
	}
	res, err := s.Detect(t.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return "HANG\n", nil
		}
		return "", err
	}
	var b strings.Builder
	for _, r := range res.Report.Races {
		fmt.Fprintf(&b, "%s x%d\n", r.String(), r.Count)
	}
	for _, d := range res.Report.Divergences {
		fmt.Fprintf(&b, "divergence block=%d warp=%d pc=%d mask=%#x\n", d.Block, d.Warp, d.PC, d.Mask)
	}
	return b.String(), nil
}

// TestStaticPruneReportEquivalence is the pruner's soundness contract:
// across the full bug suite, enabling the inter-block static pruner must
// leave every race report byte-identical — same races, same attributed
// PCs, same dynamic counts, same divergences. Pruning may only remove
// logging the detector provably does not need.
func TestStaticPruneReportEquivalence(t *testing.T) {
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			base, err := reportString(tc, detector.Config{})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			pruned, err := reportString(tc, detector.Config{StaticPrune: true})
			if err != nil {
				t.Fatalf("static-prune run: %v", err)
			}
			if base != pruned {
				t.Errorf("report changed under StaticPrune:\n--- baseline ---\n%s--- pruned ---\n%s", base, pruned)
			}
		})
	}
}

// TestStaticPruneSuiteVerdicts: the pruned detector still scores 66/66.
func TestStaticPruneSuiteVerdicts(t *testing.T) {
	res, err := RunSuite(Tests(), func(tc *Test) (Verdict, error) {
		return RunBarracudaWith(tc, detector.Config{StaticPrune: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != res.Total {
		for name, v := range res.Verdicts {
			t.Logf("%s: %v", name, v)
		}
		t.Fatalf("suite score with StaticPrune = %d/%d", res.Correct, res.Total)
	}
}
