package bugsuite

import (
	"testing"

	"barracuda/internal/detector"
)

// TestMultiQueueSuiteConsistency re-runs the whole 66-program suite with
// four logging queues and four concurrent detector threads. The verdicts
// must match the deterministic single-queue configuration on every test.
func TestMultiQueueSuiteConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep in -short mode")
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			v, err := RunBarracudaWith(tc, detector.Config{Queues: 4, QueueCap: 256})
			if err != nil {
				t.Fatal(err)
			}
			if !tc.Expect.Correct(v) {
				t.Errorf("multi-queue verdict = %v, want %v", v, tc.Expect)
			}
		})
	}
}

// TestFullVCSuiteConsistency runs the suite under the uncompressed
// vector-clock baseline: same 66/66.
func TestFullVCSuiteConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep in -short mode")
	}
	res, err := RunSuite(Tests(), func(tc *Test) (Verdict, error) {
		return RunBarracudaWith(tc, detector.Config{FullVC: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 66 {
		var wrong []string
		for _, tc := range Tests() {
			if !tc.Expect.Correct(res.Verdicts[tc.Name]) {
				wrong = append(wrong, tc.Name+"="+res.Verdicts[tc.Name].String())
			}
		}
		t.Fatalf("full-VC detector correct on %d/66; wrong: %v", res.Correct, wrong)
	}
}

// TestGranularity4SuiteConsistency runs the suite with 4-byte shadow
// cells; every suite kernel accesses memory at word granularity, so the
// verdicts must be unchanged.
func TestGranularity4SuiteConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep in -short mode")
	}
	res, err := RunSuite(Tests(), func(tc *Test) (Verdict, error) {
		return RunBarracudaWith(tc, detector.Config{Granularity: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 66 {
		var wrong []string
		for _, tc := range Tests() {
			if !tc.Expect.Correct(res.Verdicts[tc.Name]) {
				wrong = append(wrong, tc.Name+"="+res.Verdicts[tc.Name].String())
			}
		}
		t.Fatalf("granularity-4 detector correct on %d/66; wrong: %v", res.Correct, wrong)
	}
}
