package bugsuite

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// filterResult captures everything the producer-side filter must leave
// untouched, plus the accounting needed to check the OpFlush
// reconciliation arithmetic.
type filterResult struct {
	digest  string
	races   string
	seen    uint64 // detector-side RecordsSeen (post-reconciliation)
	gag     uint64 // same-value suppressed race count
	formats string // PTVC format census, canonically ordered
	sim     gpusim.Stats
	err     bool
}

func filterRun(tc *Test, ws, queues int, filter bool, seed int64) (filterResult, error) {
	s, err := detector.OpenPTX(tc.PTX, detector.Config{
		Queues:         queues,
		ProducerFilter: filter,
	})
	if err != nil {
		return filterResult{}, err
	}
	launch, err := tc.launch(s.Dev)
	if err != nil {
		return filterResult{}, err
	}
	launch.WarpSize = ws
	if seed >= 0 {
		launch.RandomSched = true
		launch.Seed = seed
	}
	res, err := s.Detect(tc.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return filterResult{digest: "HANG\n", err: true}, nil
		}
		return filterResult{digest: "ERROR: " + err.Error() + "\n", err: true}, nil
	}
	var races string
	for _, rc := range res.Report.Races {
		races += fmt.Sprintf("%+v\n", rc)
	}
	if res.Report.PrecisionDegraded {
		races += "PRECISION DEGRADED\n"
	}
	var fms []string
	for f, n := range res.FormatHist {
		fms = append(fms, fmt.Sprintf("%v=%d", f, n))
	}
	sort.Strings(fms)
	return filterResult{
		digest:  res.Report.CanonicalDigest(),
		races:   races,
		seen:    res.Report.RecordsSeen,
		gag:     res.Report.SameValueGag,
		formats: fmt.Sprint(fms),
		sim:     res.SimStats,
	}, nil
}

// filterCompare asserts the filtered run reproduces the unfiltered
// baseline at one (warp size, queue count) point. Beyond digest and race
// identity, the detector-side counters must match exactly: RecordsSeen
// (the OpFlush records must account for every suppressed record in the
// right warp/group), the per-format histogram (flushes must land before
// any format change), and the same-value gag count (suppressed writes
// must not shift the gag window). On the producer side, simulation work
// is unchanged and the record ledger must balance:
// filtered emissions == baseline emissions - suppressed + flush records.
func filterCompare(t *testing.T, tc *Test, ws, queues int, seed int64) {
	t.Helper()
	base, err := filterRun(tc, ws, queues, false, seed)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	filt, err := filterRun(tc, ws, queues, true, seed)
	if err != nil {
		t.Fatalf("filtered run: %v", err)
	}
	ctx := fmt.Sprintf("ws=%d queues=%d seed=%d", ws, queues, seed)
	if base.digest != filt.digest {
		t.Errorf("canonical digest diverged (%s):\n--- baseline ---\n%s--- filtered ---\n%s",
			ctx, base.digest, filt.digest)
	}
	if queues == 1 && base.races != filt.races {
		t.Errorf("race set diverged (%s):\n--- baseline ---\n%s--- filtered ---\n%s",
			ctx, base.races, filt.races)
	}
	if base.err || filt.err {
		return // HANG/ERROR digests compared above; no stats to check
	}
	if base.seen != filt.seen {
		t.Errorf("RecordsSeen diverged (%s): baseline %d, filtered %d (flush reconciliation broken)",
			ctx, base.seen, filt.seen)
	}
	if base.gag != filt.gag {
		t.Errorf("SameValueGag diverged (%s): baseline %d, filtered %d", ctx, base.gag, filt.gag)
	}
	if base.formats != filt.formats {
		t.Errorf("format histogram diverged (%s):\nbaseline: %s\nfiltered: %s",
			ctx, base.formats, filt.formats)
	}
	// The simulation itself must be untouched: the filter only decides
	// whether to emit, never what to execute.
	if base.sim.WarpInstrs != filt.sim.WarpInstrs || base.sim.ThreadInstrs != filt.sim.ThreadInstrs ||
		base.sim.Barriers != filt.sim.Barriers || base.sim.Divergences != filt.sim.Divergences {
		t.Errorf("simulation stats diverged (%s):\nbaseline: %+v\nfiltered: %+v",
			ctx, base.sim, filt.sim)
	}
	f := filt.sim.Filter
	if want := base.sim.Records - f.Suppressed() + f.Flushes; filt.sim.Records != want {
		t.Errorf("record ledger unbalanced (%s): filtered emitted %d, want baseline %d - suppressed %d + flushes %d = %d",
			ctx, filt.sim.Records, base.sim.Records, f.Suppressed(), f.Flushes, want)
	}
	if (gpusim.FilterStats{}) != base.sim.Filter {
		t.Errorf("baseline run counted filter activity (%s): %+v", ctx, base.sim.Filter)
	}
}

// TestProducerFilterEquivalence is the correctness contract of
// producer-side epoch filtering: across the full bug suite, suppressing
// same-interval duplicate records at the simulator must reproduce the
// unfiltered baseline exactly — identical canonical digests, race sets,
// detector counters, and a balanced record ledger. Warp size 5 forces
// partial masks and mid-warp divergence (divergence events must bump the
// generation); four queues shuffle delivery order across workers, where
// the engine-global interference epochs are the only thing standing
// between suppression and a missed reader registration.
func TestProducerFilterEquivalence(t *testing.T) {
	queueCounts := []int{1, 4}
	if testing.Short() {
		queueCounts = []int{1}
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, q := range queueCounts {
				filterCompare(t, tc, 0, q, -1)
				filterCompare(t, tc, 5, q, -1)
			}
		})
	}
}

// TestProducerFilterRandomScheduleEquivalence replays the suite under
// randomized warp scheduling with fixed seeds: a given seed is
// deterministic, so the filtered run must still reproduce the unfiltered
// run at that seed byte-for-byte. Random interleavings move the
// engine-global interference epochs around relative to each warp's loop,
// exercising suppression windows the deterministic scheduler never
// produces.
func TestProducerFilterRandomScheduleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short")
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				filterCompare(t, tc, 0, 1, seed)
				filterCompare(t, tc, 5, 1, seed)
			}
		})
	}
}
