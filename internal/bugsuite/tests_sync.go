package bugsuite

import "barracuda/internal/gpusim"

// syncTests cover fence scopes, asymmetric synchronization mistakes,
// lock-discipline bugs, and the warp-synchronous reduction idioms of
// threadFenceReduction.
func syncTests() []*Test {
	g2, b1 := gpusim.D1(2), gpusim.D1(1)
	return []*Test{
		{
			Name:     "gl-mp-sys-waiterfirst-free",
			Category: "sync",
			Desc:     "message passing with membar.sys (treated as global scope); the waiter is block 0",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 1;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	membar.sys;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	membar.sys;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			Name:     "gl-rel-only-racy",
			Category: "sync",
			Desc:     "the writer releases but the reader never acquires (no fence after its flag load)",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	membar.gl;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			Name:     "gl-acq-only-racy",
			Category: "sync",
			Desc:     "the reader acquires but the writer never releases (no fence before its flag store)",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	membar.gl;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			Name:     "gl-lock-wrong-loc-racy",
			Category: "sync",
			Desc:     "block 0 locks lockA, block 1 locks lockB, both update the same counter",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4, 4},
			PTX: `.visible .entry k(.param .u64 lockA, .param .u64 lockB, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lockA];
	ld.param.u64 %rd2, [lockB];
	ld.param.u64 %rd3, [ctr];
	mov.u32 %r1, %ctaid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra USEA;
	mov.u64 %rd4, %rd2;
	bra.uni GO;
USEA:
	mov.u64 %rd4, %rd1;
GO:
SPIN:
	atom.global.cas.b32 %r2, [%rd4], 0, 1;
	membar.gl;
	setp.ne.u32 %p1, %r2, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r3, [%rd3];
	add.u32 %r3, %r3, 1;
	st.global.u32 [%rd3], %r3;
	membar.gl;
	atom.global.exch.b32 %r4, [%rd4], 0;
	ret;
}`,
		},
		{
			Name:     "sh-two-locks-free",
			Category: "sync",
			Desc:     "two shared locks protect two shared counters; warp leaders use the matching lock",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(128),
			Bufs:     []int{4 * 4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 lkA[4];
	.shared .align 4 .b8 lkB[4];
	.shared .align 4 .b8 ctrA[4];
	.shared .align 4 .b8 ctrB[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %laneid;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	mov.u32 %r2, %warpid;
	setp.lt.u32 %p1, %r2, 2;
	@%p1 bra GROUPA;
	mov.u64 %rd2, lkB;
	mov.u64 %rd3, ctrB;
	bra.uni GO;
GROUPA:
	mov.u64 %rd2, lkA;
	mov.u64 %rd3, ctrA;
GO:
SPIN:
	atom.shared.cas.b32 %r3, [%rd2], 0, 1;
	membar.cta;
	setp.ne.u32 %p1, %r3, 0;
	@%p1 bra SPIN;
	ld.shared.u32 %r4, [%rd3];
	add.u32 %r4, %r4, 1;
	st.shared.u32 [%rd3], %r4;
	membar.cta;
	atom.shared.exch.b32 %r5, [%rd2], 0;
	ret;
}`,
		},
		{
			Name:     "gl-handoff-reverse-free",
			Category: "sync",
			Desc:     "a flag chain in reverse block order (block 2 -> 1 -> 0); serializing tools starve on it",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(3),
			Block:    b1,
			Bufs:     []int{4, 4 * 4},
			PTX: `.visible .entry k(.param .u64 data, .param .u64 flags)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flags];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 2;
	@%p1 bra STAGE;
	st.global.u32 [%rd1], 1;
	membar.gl;
	st.global.u32 [%rd2+8], 1;
	ret;
STAGE:
	add.u32 %r2, %r1, 1;
	shl.b32 %r3, %r2, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd2, %rd3;
WAIT:
	ld.global.u32 %r4, [%rd4];
	membar.gl;
	setp.eq.u32 %p1, %r4, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r5, [%rd1];
	add.u32 %r5, %r5, 1;
	st.global.u32 [%rd1], %r5;
	shl.b32 %r6, %r1, 2;
	cvt.u64.u32 %rd5, %r6;
	add.u64 %rd6, %rd2, %rd5;
	membar.gl;
	st.global.u32 [%rd6], 1;
	ret;
}`,
		},
		{
			Name:     "gl-red-vs-read-racy",
			Category: "sync",
			Desc:     "a red (no-result atomic) update concurrent with a plain read",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 ctr, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [ctr];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	red.global.add.u32 [%rd1], 1;
	ret;
READER:
	ld.global.u32 %r2, [%rd1];
	st.global.u32 [%rd2], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-atomic-mix-free",
			Category: "sync",
			Desc:     "different atomic operators hammer one shared word; atomics never race with atomics",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<4>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 3;
	mov.u64 %rd2, sm;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra A0;
	setp.eq.u32 %p2, %r2, 1;
	@%p2 bra A1;
	setp.eq.u32 %p3, %r2, 2;
	@%p3 bra A2;
	atom.shared.xor.b32 %r3, [%rd2], %r1;
	ret;
A0:
	atom.shared.add.u32 %r4, [%rd2], 1;
	ret;
A1:
	atom.shared.min.u32 %r5, [%rd2], %r1;
	ret;
A2:
	atom.shared.max.u32 %r6, [%rd2], %r1;
	ret;
}`,
		},
		{
			Name:     "gl-samevalue-interwarp-racy",
			Category: "sync",
			Desc:     "two warps write the same value to one global word: the same-value exemption is warp-local only (§6.3 bfs flag)",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [flag];
	mov.u32 %r1, %laneid;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	st.global.u32 [%rd1], 1;
	ret;
}`,
		},
		{
			Name:     "gl-partial-overlap-racy",
			Category: "sync",
			Desc:     "4-byte stores at offsets 0 and 2 overlap in their middle bytes",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{8},
			PTX: `.visible .entry k(.param .u64 buf)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [buf];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra HIGH;
	st.global.u32 [%rd1], 0x11111111;
	ret;
HIGH:
	st.global.u32 [%rd1+2], 0x22222222;
	ret;
}`,
		},
		{
			Name:     "sh-broadcast-free",
			Category: "sync",
			Desc:     "lane 0 writes a shared word; the whole warp reads it in the next lockstep instruction",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READ;
	st.shared.u32 [%rd2], 99;
READ:
	ld.shared.u32 %r2, [%rd2];
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r2;
	ret;
}`,
		},
		{
			Name:     "gl-atomic-then-plainread-racy",
			Category: "sync",
			Desc:     "an atomic counter in one block read plainly by another with no synchronization",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     g2,
			Block:    b1,
			Bufs:     []int{4, 4},
			PTX: `.visible .entry k(.param .u64 ctr, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [ctr];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	atom.global.add.u32 %r2, [%rd1], 1;
	ret;
READER:
	ld.global.u32 %r3, [%rd1];
	st.global.u32 [%rd2], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-warp-tree-reduce-free",
			Category: "sync",
			Desc:     "the classic warp-synchronous tree reduction (threadFenceReduction's warpReduce): lockstep reconvergence keeps every step ordered",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<12>;
	.reg .pred %p<6>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	setp.ge.u32 %p1, %r1, 16;
	@%p1 bra S8;
	ld.shared.u32 %r3, [%rd4+64];
	ld.shared.u32 %r4, [%rd4];
	add.u32 %r4, %r4, %r3;
	st.shared.u32 [%rd4], %r4;
S8:
	setp.ge.u32 %p2, %r1, 8;
	@%p2 bra S4;
	ld.shared.u32 %r5, [%rd4+32];
	ld.shared.u32 %r6, [%rd4];
	add.u32 %r6, %r6, %r5;
	st.shared.u32 [%rd4], %r6;
S4:
	setp.ge.u32 %p3, %r1, 4;
	@%p3 bra S2;
	ld.shared.u32 %r7, [%rd4+16];
	ld.shared.u32 %r8, [%rd4];
	add.u32 %r8, %r8, %r7;
	st.shared.u32 [%rd4], %r8;
S2:
	setp.ge.u32 %p4, %r1, 2;
	@%p4 bra S1;
	ld.shared.u32 %r9, [%rd4+8];
	ld.shared.u32 %r10, [%rd4];
	add.u32 %r10, %r10, %r9;
	st.shared.u32 [%rd4], %r10;
S1:
	setp.ne.u32 %p5, %r1, 0;
	@%p5 ret;
	ld.shared.u32 %r11, [%rd4+4];
	ld.shared.u32 %r10, [%rd4];
	add.u32 %r11, %r11, %r10;
	st.global.u32 [%rd1], %r11;
	ret;
}`,
		},
		{
			Name:     "bardiv-loop",
			Category: "barrier-divergence",
			Desc:     "a barrier inside a loop with a thread-dependent trip count",
			Expect:   BarrierDiv,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 1;
	add.u32 %r2, %r2, 1;
	mov.u32 %r3, 0;
LOOP:
	bar.sync 0;
	add.u32 %r3, %r3, 1;
	setp.lt.u32 %p1, %r3, %r2;
	@%p1 bra LOOP;
	ret;
}`,
		},
		{
			Name:     "sh-stencil-halo-free",
			Category: "sync",
			Desc:     "a warp-synchronous 3-point stencil: writes, then guarded neighbour reads in lockstep",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<12>;
	.reg .pred %p<4>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	mov.u32 %r3, 0;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra NOLEFT;
	ld.shared.u32 %r3, [%rd4+-4];
NOLEFT:
	mov.u32 %r4, 0;
	setp.eq.u32 %p2, %r1, 31;
	@%p2 bra NORIGHT;
	ld.shared.u32 %r4, [%rd4+4];
NORIGHT:
	ld.shared.u32 %r5, [%rd4];
	add.u32 %r6, %r3, %r4;
	add.u32 %r6, %r6, %r5;
	add.u64 %rd5, %rd1, %rd2;
	st.global.u32 [%rd5], %r6;
	ret;
}`,
		},
	}
}

// Tests returns the full 66-program suite.
func Tests() []*Test {
	var out []*Test
	out = append(out, sharedTests()...)
	out = append(out, globalTests()...)
	out = append(out, branchTests()...)
	out = append(out, syncTests()...)
	return out
}
