package bugsuite

import (
	"errors"
	"fmt"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// warpvecResult captures everything the warp-vectorized interpreter must
// reproduce bit-for-bit against the legacy lane-major baseline: the
// canonical report digest, the ordered race set, and the launch stats.
type warpvecResult struct {
	digest string
	races  string
	stats  gpusim.Stats
}

// warpvecRun executes one suite test under the detector with an explicit
// interpreter path (laneMajor) and warp size (0 = architecture default).
func warpvecRun(tc *Test, ws int, laneMajor bool) (warpvecResult, error) {
	s, err := detector.OpenPTX(tc.PTX, detector.Config{})
	if err != nil {
		return warpvecResult{}, err
	}
	launch, err := tc.launch(s.Dev)
	if err != nil {
		return warpvecResult{}, err
	}
	launch.WarpSize = ws
	launch.LaneMajor = laneMajor
	res, err := s.Detect(tc.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return warpvecResult{digest: "HANG\n"}, nil
		}
		// Launch errors (e.g. the barrier-divergence park deadlock some
		// programs hit at odd warp sizes) are outcomes too: both paths
		// must fail identically, message and all.
		return warpvecResult{digest: "ERROR: " + err.Error() + "\n"}, nil
	}
	var races string
	for _, rc := range res.Report.Races {
		races += fmt.Sprintf("%+v\n", rc)
	}
	return warpvecResult{
		digest: res.Report.CanonicalDigest(),
		races:  races,
		stats:  res.SimStats,
	}, nil
}

// warpvecCompare asserts both interpreter paths agree on one test/warp-size.
func warpvecCompare(t *testing.T, tc *Test, ws int) {
	t.Helper()
	lane, err := warpvecRun(tc, ws, true)
	if err != nil {
		t.Fatalf("lane-major run: %v", err)
	}
	warp, err := warpvecRun(tc, ws, false)
	if err != nil {
		t.Fatalf("warp-major run: %v", err)
	}
	if lane.digest != warp.digest {
		t.Errorf("canonical digest diverged (ws=%d):\n--- lane-major ---\n%s--- warp-major ---\n%s",
			ws, lane.digest, warp.digest)
	}
	if lane.races != warp.races {
		t.Errorf("race set diverged (ws=%d):\n--- lane-major ---\n%s--- warp-major ---\n%s",
			ws, lane.races, warp.races)
	}
	if lane.stats != warp.stats {
		t.Errorf("launch stats diverged (ws=%d):\nlane-major: %+v\nwarp-major: %+v",
			ws, lane.stats, warp.stats)
	}
}

// TestWarpVectorizedEquivalence is the correctness contract of the
// warp-vectorized interpreter (warp-major dispatch + static-uniformity
// scalarization + pooled launch state): across the full bug suite, the
// fast path must reproduce the lane-major baseline exactly — identical
// canonical report digests, identical ordered race sets, and identical
// Stats counters (warp/thread instructions, records, barriers,
// divergences). Run at the default 32-lane warp and at warp size 5,
// which forces partial last warps and odd masks through every broadcast
// and bit-iteration path.
func TestWarpVectorizedEquivalence(t *testing.T) {
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			warpvecCompare(t, tc, 0)
			warpvecCompare(t, tc, 5)
		})
	}
}

// TestWarpVectorizedEquivalenceAllWarpSizes sweeps every legal warp size
// on one racy and one barrier-heavy program, covering full masks, partial
// last warps, and single-digit warps where scalarization broadcasts to
// almost nobody.
func TestWarpVectorizedEquivalenceAllWarpSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("warp-size sweep is slow")
	}
	want := map[string]bool{"gl-waw-interwarp-racy": true, "sh-barrier-waw-free": true}
	var picked []*Test
	for _, tc := range Tests() {
		if want[tc.Name] {
			picked = append(picked, tc)
		}
	}
	if len(picked) == 0 {
		t.Fatal("sweep test programs not found in suite")
	}
	for _, tc := range picked {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for ws := 2; ws <= 32; ws++ {
				warpvecCompare(t, tc, ws)
			}
		})
	}
}
