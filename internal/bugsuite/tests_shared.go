package bugsuite

import "barracuda/internal/gpusim"

// sharedTests are the shared-memory programs of the suite: intra-block
// races and their barrier-, lockstep-, atomic- and fence-synchronized
// race-free variants.
func sharedTests() []*Test {
	return []*Test{
		{
			Name:     "sh-waw-interwarp-racy",
			Category: "shared",
			Desc:     "lane 0 of each warp writes the same shared word, no barrier",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[64];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %laneid;
	setp.ne.u32 %p1, %r2, 0;
	@%p1 ret;
	mov.u64 %rd2, sm;
	st.shared.u32 [%rd2], %r1;
	ld.shared.u32 %r3, [%rd2];
	st.global.u32 [%rd1], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-raw-interwarp-racy",
			Category: "shared",
			Desc:     "warp 0 writes shared, warp 1 reads it without a barrier",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.lt.u32 %p1, %r1, 32;
	@%p1 bra WRITER;
	ld.shared.u32 %r2, [%rd2];
	st.global.u32 [%rd1], %r2;
	ret;
WRITER:
	st.shared.u32 [%rd2], %r1;
	ret;
}`,
		},
		{
			Name:     "sh-war-interwarp-racy",
			Category: "shared",
			Desc:     "warp 0 reads shared, warp 1 overwrites it without a barrier",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.lt.u32 %p1, %r1, 32;
	@%p1 bra READER;
	st.shared.u32 [%rd2], %r1;
	ret;
READER:
	ld.shared.u32 %r2, [%rd2];
	st.global.u32 [%rd1], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-barrier-waw-free",
			Category: "shared",
			Desc:     "conflicting shared writes separated by __syncthreads",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SKIP1;
	st.shared.u32 [%rd2], 1;
SKIP1:
	bar.sync 0;
	setp.ne.u32 %p1, %r1, 33;
	@%p1 bra SKIP2;
	st.shared.u32 [%rd2], 2;
SKIP2:
	bar.sync 0;
	ld.shared.u32 %r2, [%rd2];
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-barrier-raw-free",
			Category: "shared",
			Desc:     "thread 0 writes shared, barrier, all threads read",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra WAIT;
	st.shared.u32 [%rd2], 42;
WAIT:
	bar.sync 0;
	ld.shared.u32 %r2, [%rd2];
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-reverse-barrier-free",
			Category: "shared",
			Desc:     "classic staged reversal through shared memory with a barrier",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	bar.sync 0;
	mov.u32 %r3, 63;
	sub.u32 %r4, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	cvt.u64.u32 %rd7, %r2;
	add.u64 %rd8, %rd1, %rd7;
	st.global.u32 [%rd8], %r6;
	ret;
}`,
		},
		{
			Name:     "sh-reverse-nobar-racy",
			Category: "shared",
			Desc:     "the same reversal with the barrier omitted",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	mov.u32 %r3, 63;
	sub.u32 %r4, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	cvt.u64.u32 %rd7, %r2;
	add.u64 %rd8, %rd1, %rd7;
	st.global.u32 [%rd8], %r6;
	ret;
}`,
		},
		{
			Name:     "sh-tid-private-free",
			Category: "shared",
			Desc:     "every thread uses its own shared slot",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 sm[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	ld.shared.u32 %r3, [%rd4];
	add.u64 %rd5, %rd1, %rd2;
	st.global.u32 [%rd5], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-read-read-free",
			Category: "shared",
			Desc:     "thread 0 initializes, barrier, then everyone only reads",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra B;
	st.shared.u32 [%rd2], 99;
B:
	bar.sync 0;
	ld.shared.u32 %r2, [%rd2];
	ld.shared.u32 %r3, [%rd2];
	add.u32 %r4, %r2, %r3;
	shl.b32 %r5, %r1, 2;
	cvt.u64.u32 %rd3, %r5;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	ret;
}`,
		},
		{
			Name:     "sh-two-phase-free",
			Category: "shared",
			Desc:     "two barrier-separated phases with role swap",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	bar.sync 0;
	xor.b32 %r3, %r1, 1;
	shl.b32 %r4, %r3, 2;
	cvt.u64.u32 %rd5, %r4;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r5, [%rd6];
	bar.sync 0;
	add.u32 %r6, %r5, 1;
	st.shared.u32 [%rd4], %r6;
	bar.sync 0;
	ld.shared.u32 %r7, [%rd4];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r7;
	ret;
}`,
		},
		{
			Name:     "sh-warp-lockstep-free",
			Category: "shared",
			Desc:     "warp-synchronous neighbour exchange without a barrier (lockstep orders it; racecheck false-positives)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	xor.b32 %r3, %r1, 1;
	shl.b32 %r4, %r3, 2;
	cvt.u64.u32 %rd5, %r4;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r5, [%rd6];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r5;
	ret;
}`,
		},
		{
			Name:     "sh-warp-scan-free",
			Category: "shared",
			Desc:     "warp-synchronous inclusive scan step pattern (lockstep keeps it ordered)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4 * 32},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<12>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	setp.lt.u32 %p1, %r1, 1;
	@%p1 bra DONE;
	sub.u32 %r3, %r1, 1;
	shl.b32 %r4, %r3, 2;
	cvt.u64.u32 %rd5, %r4;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r5, [%rd6];
	ld.shared.u32 %r6, [%rd4];
	add.u32 %r7, %r5, %r6;
	st.shared.u32 [%rd4], %r7;
DONE:
	ld.shared.u32 %r8, [%rd4];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r8;
	ret;
}`,
		},
		{
			Name:     "sh-intrawarp-waw-racy",
			Category: "shared",
			Desc:     "all lanes of one warp write different values to one shared word in one instruction",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	st.shared.u32 [%rd2], %r1;
	ld.shared.u32 %r2, [%rd2];
	st.global.u32 [%rd1], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-intrawarp-samevalue-free",
			Category: "shared",
			Desc:     "all lanes write the SAME value to one shared word (well-defined per the CUDA docs)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(32),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u64 %rd2, sm;
	st.shared.u32 [%rd2], 7;
	ld.shared.u32 %r2, [%rd2];
	st.global.u32 [%rd1], %r2;
	ret;
}`,
		},
		{
			Name:     "sh-atomic-counter-free",
			Category: "shared",
			Desc:     "all threads atomically increment one shared counter (atomics never race with atomics)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u64 %rd2, sm;
	atom.shared.add.u32 %r1, [%rd2], 1;
	mov.u32 %r2, %tid.x;
	shl.b32 %r3, %r2, 2;
	cvt.u64.u32 %rd3, %r3;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r1;
	ret;
}`,
		},
		{
			Name:     "sh-atomic-bar-read-free",
			Category: "shared",
			Desc:     "atomic increments, then a barrier, then plain reads",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4 * 64},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	atom.shared.add.u32 %r2, [%rd2], 1;
	bar.sync 0;
	ld.shared.u32 %r3, [%rd2];
	shl.b32 %r4, %r1, 2;
	cvt.u64.u32 %rd3, %r4;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-atomic-vs-write-racy",
			Category: "shared",
			Desc:     "one warp atomically updates a word another warp plainly writes (PTX gives no atomicity against normal stores)",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 sm[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, sm;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra OTHER;
	atom.shared.add.u32 %r2, [%rd2], 1;
	ret;
OTHER:
	setp.ne.u32 %p1, %r1, 33;
	@%p1 ret;
	st.shared.u32 [%rd2], 5;
	st.global.u32 [%rd1], 1;
	ret;
}`,
		},
		{
			Name:     "sh-flag-cta-free",
			Category: "shared",
			Desc:     "shared-memory message passing with membar.cta inside one block (release/acquire inferred)",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 data[4];
	.shared .align 4 .b8 flag[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, data;
	mov.u64 %rd3, flag;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.shared.u32 [%rd2], 42;
	membar.cta;
	st.shared.u32 [%rd3], 1;
	ret;
READER:
	setp.ne.u32 %p1, %r1, 33;
	@%p1 ret;
WAIT:
	ld.shared.u32 %r2, [%rd3];
	membar.cta;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.shared.u32 %r3, [%rd2];
	st.global.u32 [%rd1], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-flag-nofence-racy",
			Category: "shared",
			Desc:     "the same shared-memory message passing without fences: no synchronization is inferred",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 data[4];
	.shared .align 4 .b8 flag[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, data;
	mov.u64 %rd3, flag;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.shared.u32 [%rd2], 42;
	st.shared.u32 [%rd3], 1;
	ret;
READER:
	setp.ne.u32 %p1, %r1, 33;
	@%p1 ret;
WAIT:
	ld.shared.u32 %r2, [%rd3];
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.shared.u32 %r3, [%rd2];
	st.global.u32 [%rd1], %r3;
	ret;
}`,
		},
		{
			Name:     "sh-lock-cta-free",
			Category: "shared",
			Desc:     "shared-memory spinlock (cas+fence / fence+exch) guarding a shared counter, one contender per warp",
			Expect:   RaceFree,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 lk[4];
	.shared .align 4 .b8 ctr[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %laneid;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	mov.u64 %rd2, lk;
	mov.u64 %rd3, ctr;
SPIN:
	atom.shared.cas.b32 %r2, [%rd2], 0, 1;
	membar.cta;
	setp.ne.u32 %p1, %r2, 0;
	@%p1 bra SPIN;
	ld.shared.u32 %r3, [%rd3];
	add.u32 %r3, %r3, 1;
	st.shared.u32 [%rd3], %r3;
	st.global.u32 [%rd1], %r3;
	membar.cta;
	atom.shared.exch.b32 %r4, [%rd2], 0;
	ret;
}`,
		},
		{
			Name:     "sh-lock-nofence-racy",
			Category: "shared",
			Desc:     "the same shared-memory lock without fences: the CAS/EXCH do not synchronize",
			Expect:   Racy,
			Kernel:   "k",
			Grid:     gpusim.D1(1),
			Block:    gpusim.D1(64),
			Bufs:     []int{4},
			PTX: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 lk[4];
	.shared .align 4 .b8 ctr[4];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %laneid;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	mov.u64 %rd2, lk;
	mov.u64 %rd3, ctr;
SPIN:
	atom.shared.cas.b32 %r2, [%rd2], 0, 1;
	setp.ne.u32 %p1, %r2, 0;
	@%p1 bra SPIN;
	ld.shared.u32 %r3, [%rd3];
	add.u32 %r3, %r3, 1;
	st.shared.u32 [%rd3], %r3;
	atom.shared.exch.b32 %r4, [%rd2], 0;
	st.global.u32 [%rd1], %r3;
	ret;
}`,
		},
	}
}
