package bugsuite

import (
	"errors"
	"fmt"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// spanRun executes one suite test with the coalesced-span fast path
// either enabled (perCell=false, the default) or disabled (perCell=true,
// the per-cell baseline), at a given warp size and queue count.
func spanRun(tc *Test, ws, queues int, perCell bool) (warpvecResult, error) {
	s, err := detector.OpenPTX(tc.PTX, detector.Config{Queues: queues, PerCellShadow: perCell})
	if err != nil {
		return warpvecResult{}, err
	}
	launch, err := tc.launch(s.Dev)
	if err != nil {
		return warpvecResult{}, err
	}
	launch.WarpSize = ws
	res, err := s.Detect(tc.Kernel, launch)
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return warpvecResult{digest: "HANG\n"}, nil
		}
		return warpvecResult{digest: "ERROR: " + err.Error() + "\n"}, nil
	}
	var races string
	for _, rc := range res.Report.Races {
		races += fmt.Sprintf("%+v\n", rc)
	}
	return warpvecResult{
		digest: res.Report.CanonicalDigest(),
		races:  races,
		stats:  res.SimStats,
	}, nil
}

// spanCompare asserts the span fast path and the per-cell baseline agree
// on one test at one (warp size, queue count) point. At one queue the
// whole report is deterministic, so the formatted race list must match
// byte for byte; at several queues only the canonical-digest projection
// is queue-schedule-invariant (see core.Report.CanonicalDigest), so the
// digest and the producer-side stats carry the contract.
func spanCompare(t *testing.T, tc *Test, ws, queues int) {
	t.Helper()
	perCell, err := spanRun(tc, ws, queues, true)
	if err != nil {
		t.Fatalf("per-cell run: %v", err)
	}
	span, err := spanRun(tc, ws, queues, false)
	if err != nil {
		t.Fatalf("span run: %v", err)
	}
	if perCell.digest != span.digest {
		t.Errorf("canonical digest diverged (ws=%d queues=%d):\n--- per-cell ---\n%s--- span ---\n%s",
			ws, queues, perCell.digest, span.digest)
	}
	if queues == 1 && perCell.races != span.races {
		t.Errorf("race set diverged (ws=%d queues=%d):\n--- per-cell ---\n%s--- span ---\n%s",
			ws, queues, perCell.races, span.races)
	}
	if perCell.stats != span.stats {
		t.Errorf("launch stats diverged (ws=%d queues=%d):\nper-cell: %+v\nspan: %+v",
			ws, queues, perCell.stats, span.stats)
	}
}

// TestCoalescedSpanEquivalence is the correctness contract of the
// coalesced-span detection fast path: across the full bug suite, spans
// (uniform-span summaries + demotion) must reproduce the per-cell
// baseline exactly — identical canonical digests, race sets and stats.
// Run at the default 32-lane warp and at warp size 5 (partial masks and
// mid-warp divergence defeat coalescing classification, exercising the
// demotion and fallback paths), at one queue and at four (concurrent
// span/per-cell traffic on the same regions).
func TestCoalescedSpanEquivalence(t *testing.T) {
	queueCounts := []int{1, 4}
	if testing.Short() {
		queueCounts = []int{1}
	}
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, q := range queueCounts {
				spanCompare(t, tc, 0, q)
				spanCompare(t, tc, 5, q)
			}
		})
	}
}
