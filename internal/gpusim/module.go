package gpusim

import (
	"fmt"
	"strings"
	"sync/atomic"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// Module is a loaded, executable PTX module: kernels compiled to internal
// form with register maps, control-flow graphs and resolved symbols.
type Module struct {
	Dev     *Device
	Src     *ptx.Module
	globals map[string]uint64 // module-level .global symbol -> address
	kernels map[string]*loadedKernel
}

// loadedKernel is a kernel prepared for execution.
type loadedKernel struct {
	name   string
	cfg    *kernel.CFG
	params map[string]int // param name -> index
	// Register allocation: every general register name maps to a dense
	// index into the per-thread register file; predicate registers map
	// into the per-thread predicate file.
	regIdx  map[string]int
	predIdx map[string]int
	nRegs   int
	nPreds  int
	// Shared-memory layout: symbol -> offset, plus total static size.
	sharedOff   map[string]uint64
	sharedBytes int64
	// Per-thread local-memory layout.
	localOff   map[string]uint64
	localBytes int64

	code  []cInstr // lazily compiled executable form
	nOnce int      // statically marked log-once sites (producer filter)

	// arena pools launch state across launches of this kernel (see
	// arena.go). A launch takes ownership with an atomic swap and stores
	// the arena back when done.
	arena atomic.Pointer[launchArena]
}

// LoadModule prepares a parsed PTX module for execution on the device,
// allocating module-level globals and building per-kernel CFGs.
func (d *Device) LoadModule(m *ptx.Module) (*Module, error) {
	mod := &Module{
		Dev:     d,
		Src:     m,
		globals: make(map[string]uint64),
		kernels: make(map[string]*loadedKernel),
	}
	for _, g := range m.Globals {
		addr, err := d.Alloc(int(g.Size))
		if err != nil {
			return nil, fmt.Errorf("gpusim: allocating global %s: %w", g.Name, err)
		}
		mod.globals[g.Name] = addr
	}
	for _, k := range m.Kernels {
		lk, err := prepareKernel(k)
		if err != nil {
			return nil, err
		}
		mod.kernels[k.Name] = lk
	}
	return mod, nil
}

// GlobalAddr returns the device address of a module-level .global symbol.
func (mod *Module) GlobalAddr(name string) (uint64, bool) {
	a, ok := mod.globals[name]
	return a, ok
}

// KernelNames lists the kernels in the module.
func (mod *Module) KernelNames() []string {
	var out []string
	for _, k := range mod.Src.Kernels {
		out = append(out, k.Name)
	}
	return out
}

// CFG returns the control-flow graph of a loaded kernel, or nil.
func (mod *Module) CFG(name string) *kernel.CFG {
	lk := mod.kernels[name]
	if lk == nil {
		return nil
	}
	return lk.cfg
}

func prepareKernel(k *ptx.Kernel) (*loadedKernel, error) {
	cfg, err := kernel.Build(k)
	if err != nil {
		return nil, fmt.Errorf("gpusim: kernel %s: %w", k.Name, err)
	}
	lk := &loadedKernel{
		name:      k.Name,
		cfg:       cfg,
		params:    make(map[string]int),
		regIdx:    make(map[string]int),
		predIdx:   make(map[string]int),
		sharedOff: make(map[string]uint64),
		localOff:  make(map[string]uint64),
	}
	for i, p := range k.Params {
		lk.params[p.Name] = i
	}
	// Register files from declarations...
	for _, rd := range k.Regs {
		for i := 0; i < rd.Count; i++ {
			name := fmt.Sprintf("%s%d", rd.Prefix, i)
			if rd.Type == ptx.Pred {
				lk.addPred(name)
			} else {
				lk.addReg(name)
			}
		}
	}
	// ...plus any registers that appear only in operands.
	for _, in := range cfg.Instrs {
		if in.Guard != nil {
			lk.addPred(in.Guard.Reg)
		}
		ops := in.Args
		if in.HasDst {
			ops = append([]ptx.Operand{in.Dst}, ops...)
		}
		for _, o := range ops {
			switch o.Kind {
			case ptx.OpndReg:
				if isPredName(o.Reg) {
					lk.addPred(o.Reg)
				} else {
					lk.addReg(o.Reg)
				}
			case ptx.OpndMem:
				if o.BaseReg != "" {
					lk.addReg(o.BaseReg)
				}
			}
		}
	}
	// Shared-memory layout.
	var off int64
	for _, s := range k.Shared {
		a := int64(s.Align)
		if a > 1 {
			off = (off + a - 1) / a * a
		}
		lk.sharedOff[s.Name] = uint64(off)
		off += s.Size
	}
	lk.sharedBytes = off
	// Per-thread local-memory layout.
	var loff int64
	for _, s := range k.Local {
		a := int64(s.Align)
		if a > 1 {
			loff = (loff + a - 1) / a * a
		}
		lk.localOff[s.Name] = uint64(loff)
		loff += s.Size
	}
	lk.localBytes = loff
	return lk, nil
}

// isPredName reports whether a register name is conventionally a predicate
// (%p prefix). Registers declared .pred are always predicates regardless of
// name; this heuristic only applies to undeclared registers.
func isPredName(name string) bool {
	return strings.HasPrefix(name, "%p") && !strings.HasPrefix(name, "%pd")
}

func (lk *loadedKernel) addReg(name string) {
	if _, ok := lk.regIdx[name]; ok {
		return
	}
	if _, ok := lk.predIdx[name]; ok {
		return
	}
	lk.regIdx[name] = lk.nRegs
	lk.nRegs++
}

func (lk *loadedKernel) addPred(name string) {
	if _, ok := lk.predIdx[name]; ok {
		return
	}
	if _, ok := lk.regIdx[name]; ok {
		return
	}
	lk.predIdx[name] = lk.nPreds
	lk.nPreds++
}
