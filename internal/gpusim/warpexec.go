package gpusim

import (
	"fmt"
	"math"
	"math/bits"

	"barracuda/internal/ptx"
)

// Warp-major execution: every compiled instruction carries a warpHandler
// selected once in Module.compile. The hot loop in stepWarp then performs a
// single indirect call per warp-instruction instead of re-running the
// opcode switch and operand resolution once per lane. Handlers bake the
// per-instruction invariants (opcode, type width, signedness, operand
// shapes, constants) into closures at compile time and iterate only the
// active lanes of the exec mask.
//
// Equivalence contract: every handler must produce bit-identical register,
// predicate and memory effects — and identical error text — to the
// lane-major reference path (execLane/execArith), which is kept intact and
// selectable via LaunchConfig.LaneMajor for A/B measurement. The
// equivalence suite in the bug-suite and litmus tests enforces this over
// report digests, race sets and Stats counters.

// warpHandler executes one compiled instruction for all active lanes.
type warpHandler func(e *engine, w *warpState, ci *cInstr, exec uint32) error

// execLaneLoop is the generic fallback: per-lane reference execution with
// bit-iteration over the active mask. Used for rare or complex shapes
// (vector memory ops, atomics, unusual operand patterns).
func execLaneLoop(e *engine, w *warpState, ci *cInstr, exec uint32) error {
	for m := exec; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		if err := e.execLane(w, ci, lane); err != nil {
			return fmt.Errorf("lane %d: %v", lane, err)
		}
	}
	return nil
}

// execUniform executes a statically warp-uniform instruction once (on the
// first active lane, via the reference interpreter) and broadcasts the
// destination to the remaining active lanes. Soundness comes from the
// staticanalysis warp-uniformity facts: every input holds the same value
// in every lane, and the ops admitted by scalarizableOp are deterministic,
// so running one lane computes what all lanes would.
func (e *engine) execUniform(w *warpState, ci *cInstr, exec uint32) error {
	first := bits.TrailingZeros32(exec)
	if err := e.execLane(w, ci, first); err != nil {
		return fmt.Errorf("lane %d: %v", first, err)
	}
	rest := exec &^ (1 << uint(first))
	if rest == 0 {
		return nil
	}
	if ci.dst.isPred {
		v := e.pred(w, first, ci.dst.reg)
		for m := rest; m != 0; m &= m - 1 {
			e.setPred(w, bits.TrailingZeros32(m), ci.dst.reg, v)
		}
	} else {
		v := e.reg(w, first, ci.dst.reg)
		for m := rest; m != 0; m &= m - 1 {
			e.setRegRaw(w, bits.TrailingZeros32(m), ci.dst.reg, v)
		}
	}
	return nil
}

// scalarizableOp reports whether an opcode may be executed once per warp
// when its inputs are warp-uniform: deterministic, side-effect-free on
// memory (or a load from a single warp-shared location), with a single
// destination. Stores, atomics and lane-private local memory are excluded.
// _log is included only so execLog can compute the (uniform) address once;
// stepWarp routes it before the execUniform dispatch.
func scalarizableOp(ci *cInstr) bool {
	switch ci.op {
	case ptx.OpMov, ptx.OpCvta, ptx.OpCvt, ptx.OpNot, ptx.OpNeg,
		ptx.OpAdd, ptx.OpSub, ptx.OpMul, ptx.OpMad, ptx.OpDiv, ptx.OpRem,
		ptx.OpMin, ptx.OpMax, ptx.OpAnd, ptx.OpOr, ptx.OpXor,
		ptx.OpShl, ptx.OpShr, ptx.OpSetp, ptx.OpSelp:
		return ci.hasDst
	case ptx.OpLd:
		return ci.hasDst && ci.in.Vec <= 1 && ci.in.Space != ptx.SpaceLocal
	case ptx.OpLog:
		return true
	}
	return false
}

// fetchFn reads one operand for a lane; base is lane*nRegs, precomputed by
// the caller.
type fetchFn func(e *engine, w *warpState, lane, base int) uint64

// fetcher compiles an operand into either a constant (isConst=true) or a
// fetch function, mirroring engine.val exactly.
func fetcher(o cOperand) (fn fetchFn, c uint64, isConst bool) {
	switch o.kind {
	case ptx.OpndImm:
		return nil, o.imm, true
	case ptx.OpndFImm:
		return nil, math.Float64bits(o.f), true
	case ptx.OpndSym:
		return nil, o.symAddr, true
	case ptx.OpndReg:
		if o.isPred {
			p := o.reg
			return func(e *engine, w *warpState, lane, base int) uint64 {
				if w.preds[lane*e.lk.nPreds+p] {
					return 1
				}
				return 0
			}, 0, false
		}
		r := o.reg
		return func(e *engine, w *warpState, lane, base int) uint64 {
			return w.regs[base+r]
		}, 0, false
	case ptx.OpndSreg:
		s := o.sreg
		return func(e *engine, w *warpState, lane, base int) uint64 {
			return e.sregVal(w, lane, s)
		}, 0, false
	}
	return func(e *engine, w *warpState, lane, base int) uint64 { return 0 }, 0, false
}

// selectHandler picks the warp-major handler for a compiled instruction.
// Shapes the specialized makers cannot prove well-formed at compile time
// fall back to the per-lane reference loop, preserving runtime behavior
// (including panics/errors) exactly.
func selectHandler(ci *cInstr) warpHandler {
	t := ci.in.Type
	switch ci.op {
	case ptx.OpMov, ptx.OpCvta:
		if len(ci.args) < 1 {
			return execLaneLoop
		}
		return makeMov(ci)
	case ptx.OpLd:
		if len(ci.args) < 1 {
			return execLaneLoop
		}
		return makeLd(ci)
	case ptx.OpSt:
		if len(ci.args) < 2 || ci.in.Vec > 1 {
			return execLaneLoop
		}
		return makeSt(ci)
	case ptx.OpSetp:
		if len(ci.args) < 2 {
			return execLaneLoop
		}
		return makeSetp(ci)
	case ptx.OpSelp:
		if len(ci.args) < 3 {
			return execLaneLoop
		}
		return makeSelp(ci)
	case ptx.OpCvt:
		if len(ci.args) < 1 {
			return execLaneLoop
		}
		return makeCvt(ci)
	case ptx.OpNot:
		if len(ci.args) < 1 || t.Float() {
			return execLaneLoop
		}
		size := ci.size
		return makeIntUn(ci, func(v uint64) uint64 { return truncTo(^v, size) })
	case ptx.OpNeg:
		if len(ci.args) < 1 || t.Float() {
			return execLaneLoop
		}
		size := ci.size
		return makeIntUn(ci, func(v uint64) uint64 { return truncTo(-v, size) })
	case ptx.OpMad:
		if len(ci.args) < 3 {
			return execLaneLoop
		}
		if t.Float() {
			return makeFloatArith(ci)
		}
		return makeIntTri(ci, intMadOp(ci))
	case ptx.OpAdd, ptx.OpSub, ptx.OpMul, ptx.OpDiv, ptx.OpRem, ptx.OpMin, ptx.OpMax,
		ptx.OpAnd, ptx.OpOr, ptx.OpXor, ptx.OpShl, ptx.OpShr:
		if len(ci.args) < 2 {
			return execLaneLoop
		}
		if t.Float() {
			return makeFloatArith(ci)
		}
		if sf := intBinOp(ci); sf != nil {
			return makeIntBin(ci, sf)
		}
		return execLaneLoop
	}
	return execLaneLoop
}

// makeMov handles mov/cvta: constant broadcast, register copy, or the
// generic per-lane form for sreg/predicate sources.
func makeMov(ci *cInstr) warpHandler {
	t := ci.in.Type
	d := ci.dst.reg
	a := ci.args[0]
	if v, ok := constMovBits(a, t); ok {
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				regs[bits.TrailingZeros32(m)*nR+d] = v
			}
			return nil
		}
	}
	if !t.Float() && a.kind == ptx.OpndReg && !a.isPred {
		s := a.reg
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nR
				regs[base+d] = regs[base+s]
			}
			return nil
		}
	}
	if t.Float() {
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				e.setRegRaw(w, lane, d, fbits(e.fval(w, lane, &ci.args[0], t), t))
			}
			return nil
		}
	}
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setRegRaw(w, lane, d, e.val(w, lane, &ci.args[0]))
		}
		return nil
	}
}

// constMovBits evaluates a constant mov source to the exact bits the
// reference path would store.
func constMovBits(a cOperand, t ptx.Type) (uint64, bool) {
	switch a.kind {
	case ptx.OpndImm, ptx.OpndFImm:
		if t.Float() {
			return fbits(a.f, t), true
		}
		if a.kind == ptx.OpndFImm {
			return math.Float64bits(a.f), true
		}
		return a.imm, true
	case ptx.OpndSym:
		if t.Float() {
			return fbits(bitsToF(a.symAddr, t), t), true
		}
		return a.symAddr, true
	}
	return 0, false
}

// makeLd handles scalar loads with the space decision hoisted to compile
// time. Vector loads fall back to the reference loop.
func makeLd(ci *cInstr) warpHandler {
	in := ci.in
	if in.Vec > 1 {
		return execLaneLoop
	}
	d := ci.dst.reg
	if in.Space == ptx.SpaceParam {
		a := ci.args[0]
		if a.symK != symParam {
			return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
				return fmt.Errorf("lane %d: ld.param with non-parameter operand",
					bits.TrailingZeros32(exec))
			}
		}
		idx := a.symAddr
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			v := e.cfg.Args[idx]
			nR := e.lk.nRegs
			for m := exec; m != 0; m &= m - 1 {
				w.regs[bits.TrailingZeros32(m)*nR+d] = v
			}
			return nil
		}
	}
	size := ci.size
	signed := in.Type.Signed()
	space := in.Space
	a0 := ci.args[0]
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			var addr uint64
			if a0.baseReg >= 0 {
				addr = w.regs[base+a0.baseReg] + uint64(a0.off)
			} else {
				addr = a0.symAddr + uint64(a0.off)
			}
			v, err := e.loadSpace(w, lane, space, addr, size)
			if err != nil {
				return fmt.Errorf("lane %d: %v", lane, err)
			}
			if signed {
				v = uint64(signExt(v, size))
			}
			w.regs[base+d] = v
		}
		return nil
	}
}

// makeSt handles scalar stores; the value operand's constant forms
// (including the float-immediate re-encoding quirk) are folded at compile
// time.
func makeSt(ci *cInstr) warpHandler {
	in := ci.in
	t := in.Type
	size := ci.size
	space := in.Space
	a0 := ci.args[0]
	v1 := ci.args[1]
	var cval uint64
	isConst := false
	if t.Float() && v1.kind == ptx.OpndFImm {
		cval, isConst = truncTo(fbits(v1.f, t), size), true
	} else if _, c, k := fetcher(v1); k {
		cval, isConst = truncTo(c, size), true
	}
	fv, _, _ := fetcher(v1)
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			var addr uint64
			if a0.baseReg >= 0 {
				addr = w.regs[base+a0.baseReg] + uint64(a0.off)
			} else {
				addr = a0.symAddr + uint64(a0.off)
			}
			v := cval
			if !isConst {
				v = truncTo(fv(e, w, lane, base), size)
			}
			if err := e.storeSpace(w, lane, space, addr, size, v); err != nil {
				return fmt.Errorf("lane %d: %v", lane, err)
			}
		}
		return nil
	}
}

func makeSetp(ci *cInstr) warpHandler {
	in := ci.in
	t := in.Type
	d := ci.dst.reg
	if t.Float() {
		cmp := in.Cmp
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nP := e.lk.nPreds
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				w.preds[lane*nP+d] = cmpFloat(cmp,
					e.fval(w, lane, &ci.args[0], t), e.fval(w, lane, &ci.args[1], t))
			}
			return nil
		}
	}
	cf := intCmpFunc(in.Cmp, t, ci.size)
	f0, c0, k0 := fetcher(ci.args[0])
	f1, c1, k1 := fetcher(ci.args[1])
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR, nP := e.lk.nRegs, e.lk.nPreds
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			a, b := c0, c1
			if !k0 {
				a = f0(e, w, lane, base)
			}
			if !k1 {
				b = f1(e, w, lane, base)
			}
			w.preds[lane*nP+d] = cf(a, b)
		}
		return nil
	}
}

// intCmpFunc bakes the comparison op, signedness and width into a closure
// with cmpInt's exact semantics (inputs truncated, then sign-extended).
func intCmpFunc(op ptx.CmpOp, t ptx.Type, size int) func(a, b uint64) bool {
	if t.Signed() {
		cmp := func(x, y int64) bool { return false }
		switch op {
		case ptx.CmpEQ:
			cmp = func(x, y int64) bool { return x == y }
		case ptx.CmpNE:
			cmp = func(x, y int64) bool { return x != y }
		case ptx.CmpLT:
			cmp = func(x, y int64) bool { return x < y }
		case ptx.CmpLE:
			cmp = func(x, y int64) bool { return x <= y }
		case ptx.CmpGT:
			cmp = func(x, y int64) bool { return x > y }
		case ptx.CmpGE:
			cmp = func(x, y int64) bool { return x >= y }
		}
		return func(a, b uint64) bool {
			return cmp(signExt(truncTo(a, size), size), signExt(truncTo(b, size), size))
		}
	}
	cmp := func(x, y uint64) bool { return false }
	switch op {
	case ptx.CmpEQ:
		cmp = func(x, y uint64) bool { return x == y }
	case ptx.CmpNE:
		cmp = func(x, y uint64) bool { return x != y }
	case ptx.CmpLT:
		cmp = func(x, y uint64) bool { return x < y }
	case ptx.CmpLE:
		cmp = func(x, y uint64) bool { return x <= y }
	case ptx.CmpGT:
		cmp = func(x, y uint64) bool { return x > y }
	case ptx.CmpGE:
		cmp = func(x, y uint64) bool { return x >= y }
	}
	return func(a, b uint64) bool { return cmp(truncTo(a, size), truncTo(b, size)) }
}

func makeSelp(ci *cInstr) warpHandler {
	size := ci.size
	d := ci.dst.reg
	cond := ci.args[2]
	f0, c0, k0 := fetcher(ci.args[0])
	f1, c1, k1 := fetcher(ci.args[1])
	pick := func(e *engine, w *warpState, lane, base int, take bool) uint64 {
		if take {
			if k0 {
				return c0
			}
			return f0(e, w, lane, base)
		}
		if k1 {
			return c1
		}
		return f1(e, w, lane, base)
	}
	if cond.isPred {
		p := cond.reg
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR, nP := e.lk.nRegs, e.lk.nPreds
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				base := lane * nR
				w.regs[base+d] = truncTo(pick(e, w, lane, base, w.preds[lane*nP+p]), size)
			}
			return nil
		}
	}
	fc, cc, kc := fetcher(cond)
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			cv := cc
			if !kc {
				cv = fc(e, w, lane, base)
			}
			w.regs[base+d] = truncTo(pick(e, w, lane, base, cv != 0), size)
		}
		return nil
	}
}

func makeCvt(ci *cInstr) warpHandler {
	cf := cvtFunc(ci.in.Type, ci.in.Src)
	d := ci.dst.reg
	f0, c0, k0 := fetcher(ci.args[0])
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			v := c0
			if !k0 {
				v = f0(e, w, lane, base)
			}
			w.regs[base+d] = cf(v)
		}
		return nil
	}
}

// cvtFunc bakes convert's four-way type dispatch into a closure.
func cvtFunc(dt, st ptx.Type) func(v uint64) uint64 {
	dsz, ssz := dt.Size(), st.Size()
	switch {
	case dt.Float() && st.Float():
		return func(v uint64) uint64 { return fbits(bitsToF(v, st), dt) }
	case dt.Float():
		if st.Signed() {
			return func(v uint64) uint64 { return fbits(float64(signExt(v, ssz)), dt) }
		}
		return func(v uint64) uint64 { return fbits(float64(truncTo(v, ssz)), dt) }
	case st.Float():
		return func(v uint64) uint64 { return truncTo(uint64(int64(bitsToF(v, st))), dsz) }
	default:
		if st.Signed() {
			return func(v uint64) uint64 { return truncTo(uint64(signExt(v, ssz)), dsz) }
		}
		return func(v uint64) uint64 { return truncTo(truncTo(v, ssz), dsz) }
	}
}

func makeIntUn(ci *cInstr, sf func(v uint64) uint64) warpHandler {
	d := ci.dst.reg
	a := ci.args[0]
	if a.kind == ptx.OpndReg && !a.isPred {
		s := a.reg
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nR
				regs[base+d] = sf(regs[base+s])
			}
			return nil
		}
	}
	f0, c0, k0 := fetcher(a)
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			v := c0
			if !k0 {
				v = f0(e, w, lane, base)
			}
			w.regs[base+d] = sf(v)
		}
		return nil
	}
}

// makeIntBin specializes the common operand shapes of a two-input integer
// op around a compiled scalar function that takes raw register bits and
// returns the exact bits to store.
func makeIntBin(ci *cInstr, sf func(a, b uint64) uint64) warpHandler {
	d := ci.dst.reg
	a0, a1 := ci.args[0], ci.args[1]
	r0ok := a0.kind == ptx.OpndReg && !a0.isPred
	r1ok := a1.kind == ptx.OpndReg && !a1.isPred
	switch {
	case r0ok && r1ok:
		r0, r1 := a0.reg, a1.reg
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nR
				regs[base+d] = sf(regs[base+r0], regs[base+r1])
			}
			return nil
		}
	case r0ok && a1.kind == ptx.OpndImm:
		r0, c1 := a0.reg, a1.imm
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nR
				regs[base+d] = sf(regs[base+r0], c1)
			}
			return nil
		}
	default:
		f0, c0, k0 := fetcher(a0)
		f1, c1, k1 := fetcher(a1)
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			for m := exec; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				base := lane * nR
				a, b := c0, c1
				if !k0 {
					a = f0(e, w, lane, base)
				}
				if !k1 {
					b = f1(e, w, lane, base)
				}
				w.regs[base+d] = sf(a, b)
			}
			return nil
		}
	}
}

func makeIntTri(ci *cInstr, sf func(a, b, c uint64) uint64) warpHandler {
	d := ci.dst.reg
	a0, a1, a2 := ci.args[0], ci.args[1], ci.args[2]
	if a0.kind == ptx.OpndReg && !a0.isPred &&
		a1.kind == ptx.OpndReg && !a1.isPred &&
		a2.kind == ptx.OpndReg && !a2.isPred {
		r0, r1, r2 := a0.reg, a1.reg, a2.reg
		return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
			nR := e.lk.nRegs
			regs := w.regs
			for m := exec; m != 0; m &= m - 1 {
				base := bits.TrailingZeros32(m) * nR
				regs[base+d] = sf(regs[base+r0], regs[base+r1], regs[base+r2])
			}
			return nil
		}
	}
	f0, c0, k0 := fetcher(a0)
	f1, c1, k1 := fetcher(a1)
	f2, c2, k2 := fetcher(a2)
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		nR := e.lk.nRegs
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := lane * nR
			a, b, c := c0, c1, c2
			if !k0 {
				a = f0(e, w, lane, base)
			}
			if !k1 {
				b = f1(e, w, lane, base)
			}
			if !k2 {
				c = f2(e, w, lane, base)
			}
			w.regs[base+d] = sf(a, b, c)
		}
		return nil
	}
}

// intBinOp compiles a two-input integer op into a scalar function with
// execArith's exact semantics: both inputs truncated to the operand width
// first, the result truncated to the store width. Returns nil for shapes
// the reference path would reject (caller falls back).
func intBinOp(ci *cInstr) func(a, b uint64) uint64 {
	in := ci.in
	size := ci.size
	signed := in.Type.Signed()
	switch ci.op {
	case ptx.OpAdd:
		return func(a, b uint64) uint64 { return truncTo(truncTo(a, size)+truncTo(b, size), size) }
	case ptx.OpSub:
		return func(a, b uint64) uint64 { return truncTo(truncTo(a, size)-truncTo(b, size), size) }
	case ptx.OpAnd:
		return func(a, b uint64) uint64 { return truncTo(a&b, size) }
	case ptx.OpOr:
		return func(a, b uint64) uint64 { return truncTo(a|b, size) }
	case ptx.OpXor:
		return func(a, b uint64) uint64 { return truncTo(a^b, size) }
	case ptx.OpShl:
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if b >= uint64(8*size) {
				return 0
			}
			return truncTo(a<<b, size)
		}
	case ptx.OpShr:
		if signed {
			return func(a, b uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				sh := b
				if sh >= uint64(8*size) {
					sh = uint64(8*size) - 1
				}
				return truncTo(uint64(signExt(a, size)>>sh), size)
			}
		}
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if b >= uint64(8*size) {
				return 0
			}
			return truncTo(a>>b, size)
		}
	case ptx.OpMin:
		if signed {
			return func(a, b uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				if signExt(a, size) < signExt(b, size) {
					return a
				}
				return b
			}
		}
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if a < b {
				return a
			}
			return b
		}
	case ptx.OpMax:
		if signed {
			return func(a, b uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				if signExt(a, size) > signExt(b, size) {
					return a
				}
				return b
			}
		}
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if a > b {
				return a
			}
			return b
		}
	case ptx.OpMul:
		switch {
		case in.Wide:
			if signed {
				return func(a, b uint64) uint64 {
					a, b = truncTo(a, size), truncTo(b, size)
					return truncTo(uint64(signExt(a, size)*signExt(b, size)), 2*size)
				}
			}
			return func(a, b uint64) uint64 {
				return truncTo(truncTo(a, size)*truncTo(b, size), 2*size)
			}
		case in.Hi:
			if size == 4 {
				if signed {
					return func(a, b uint64) uint64 {
						a, b = truncTo(a, size), truncTo(b, size)
						return truncTo(uint64(signExt(a, size)*signExt(b, size))>>32, size)
					}
				}
				return func(a, b uint64) uint64 {
					a, b = truncTo(a, size), truncTo(b, size)
					return truncTo((a*b)>>32, size)
				}
			}
			return func(a, b uint64) uint64 {
				hi, _ := bits.Mul64(truncTo(a, size), truncTo(b, size))
				return truncTo(hi, size)
			}
		default:
			return func(a, b uint64) uint64 {
				return truncTo(truncTo(a, size)*truncTo(b, size), size)
			}
		}
	case ptx.OpDiv:
		if signed {
			return func(a, b uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				if b == 0 {
					return 0
				}
				return truncTo(uint64(signExt(a, size)/signExt(b, size)), size)
			}
		}
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if b == 0 {
				return 0
			}
			return truncTo(a/b, size)
		}
	case ptx.OpRem:
		if signed {
			return func(a, b uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				if b == 0 {
					return 0
				}
				return truncTo(uint64(signExt(a, size)%signExt(b, size)), size)
			}
		}
		return func(a, b uint64) uint64 {
			a, b = truncTo(a, size), truncTo(b, size)
			if b == 0 {
				return 0
			}
			return truncTo(a%b, size)
		}
	}
	return nil
}

// intMadOp compiles mad: inputs arrive raw; the wide form adds the raw
// third operand (matching execArith exactly), the narrow form truncates it.
func intMadOp(ci *cInstr) func(a, b, c uint64) uint64 {
	in := ci.in
	size := ci.size
	signed := in.Type.Signed()
	if in.Wide {
		if signed {
			return func(a, b, c uint64) uint64 {
				a, b = truncTo(a, size), truncTo(b, size)
				return truncTo(uint64(signExt(a, size)*signExt(b, size))+c, 2*size)
			}
		}
		return func(a, b, c uint64) uint64 {
			return truncTo(truncTo(a, size)*truncTo(b, size)+c, 2*size)
		}
	}
	return func(a, b, c uint64) uint64 {
		return truncTo(truncTo(a, size)*truncTo(b, size)+truncTo(c, size), size)
	}
}

// makeFloatArith covers the float add/sub/mul/div/min/max/mad core; other
// float ops fall back to the reference loop (which reports them as
// unsupported, matching lane-major behavior).
func makeFloatArith(ci *cInstr) warpHandler {
	t := ci.in.Type
	d := ci.dst.reg
	var ff func(a, b, c float64) float64
	switch ci.op {
	case ptx.OpAdd:
		ff = func(a, b, c float64) float64 { return a + b }
	case ptx.OpSub:
		ff = func(a, b, c float64) float64 { return a - b }
	case ptx.OpMul:
		ff = func(a, b, c float64) float64 { return a * b }
	case ptx.OpDiv:
		ff = func(a, b, c float64) float64 { return a / b }
	case ptx.OpMin:
		ff = func(a, b, c float64) float64 { return math.Min(a, b) }
	case ptx.OpMax:
		ff = func(a, b, c float64) float64 { return math.Max(a, b) }
	case ptx.OpMad:
		ff = func(a, b, c float64) float64 { return a*b + c }
	default:
		return execLaneLoop
	}
	isMad := ci.op == ptx.OpMad
	return func(e *engine, w *warpState, ci *cInstr, exec uint32) error {
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := e.fval(w, lane, &ci.args[0], t)
			b := e.fval(w, lane, &ci.args[1], t)
			var c float64
			if isMad {
				c = e.fval(w, lane, &ci.args[2], t)
			}
			e.setRegRaw(w, lane, d, fbits(ff(a, b, c), t))
		}
		return nil
	}
}
