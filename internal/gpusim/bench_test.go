package gpusim

import (
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptx"
)

// discardSink drops records; used so benchmarks measure the interpreter and
// log-emission path, not a consumer.
type discardSink struct{ n uint64 }

func (s *discardSink) Emit(r *logging.Record) { s.n++ }

func benchModule(b *testing.B, src string) (*Device, *Module) {
	b.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	d := NewDevice(0)
	mod, err := d.LoadModule(m)
	if err != nil {
		b.Fatalf("load: %v", err)
	}
	return d, mod
}

// stepSrc is a compute loop: a uniform trip count with tid-varying
// arithmetic in the body, so it exercises both the scalarized (counter,
// compare, branch) and vectorized (body) warp paths.
const stepSrc = `.visible .entry k(.param .u64 out, .param .u32 n)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	ld.param.u32 %r1, [n];
	mov.u32 %r2, %tid.x;
	mov.u32 %r3, 0;
	mov.u32 %r4, 0;
L:
	add.u32 %r5, %r3, %r2;
	mul.lo.u32 %r6, %r5, 2654435761;
	xor.b32 %r4, %r4, %r6;
	add.u32 %r3, %r3, 1;
	setp.lt.u32 %p1, %r3, %r1;
	@%p1 bra L;
	cvt.u64.u32 %rd2, %r2;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	ret;
}`

// logSrc hammers the `_log.*` emission path: one strided store plus its
// log record per loop iteration.
const logSrc = `.visible .entry k(.param .u64 out, .param .u32 n)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	ld.param.u32 %r1, [n];
	mov.u32 %r2, %tid.x;
	cvt.u64.u32 %rd2, %r2;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	mov.u32 %r3, 0;
L:
	_log.wr.global.sz4 [%rd4];
	st.global.u32 [%rd4], %r3;
	add.u32 %r3, %r3, 1;
	setp.lt.u32 %p1, %r3, %r1;
	@%p1 bra L;
	ret;
}`

func benchLaunch(b *testing.B, src string, cfg LaunchConfig) {
	b.Helper()
	d, mod := benchModule(b, src)
	out := d.MustAlloc(4 * 1024)
	cfg.Grid, cfg.Block = D1(8), D1(128)
	cfg.Args = []uint64{out, 64}
	// Warm launch: compile the kernel and populate the arena so the loop
	// measures steady-state per-launch cost.
	if _, err := mod.Launch("k", cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var warpInstrs uint64
	for i := 0; i < b.N; i++ {
		st, err := mod.Launch("k", cfg)
		if err != nil {
			b.Fatal(err)
		}
		warpInstrs += st.WarpInstrs
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(warpInstrs)/float64(b.N), "warp-instrs/op")
	}
}

// BenchmarkWarpStep measures pure interpreter stepping (no sink attached)
// on the warp-major fast path and the legacy lane-major baseline.
func BenchmarkWarpStep(b *testing.B) {
	b.Run("warp-major", func(b *testing.B) {
		benchLaunch(b, stepSrc, LaunchConfig{})
	})
	b.Run("lane-major", func(b *testing.B) {
		benchLaunch(b, stepSrc, LaunchConfig{LaneMajor: true})
	})
}

// BenchmarkLogEmission measures record emission through a discarding sink,
// including the If/Else/Fi divergence events the detector consumes.
func BenchmarkLogEmission(b *testing.B) {
	b.Run("warp-major", func(b *testing.B) {
		benchLaunch(b, logSrc, LaunchConfig{Sink: &discardSink{}, EmitBranchEvents: true})
	})
	b.Run("lane-major", func(b *testing.B) {
		benchLaunch(b, logSrc, LaunchConfig{Sink: &discardSink{}, EmitBranchEvents: true, LaneMajor: true})
	})
}
