package gpusim

import (
	"testing"

	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

const localKernel = `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.local .align 4 .b8 scratch[16];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u64 %rd2, scratch;
	st.local.u32 [%rd2], %r1;
	st.local.u32 [%rd2+4], 7;
	ld.local.u32 %r2, [%rd2];
	ld.local.u32 %r3, [%rd2+4];
	add.u32 %r4, %r2, %r3;
	shl.b32 %r5, %r1, 2;
	cvt.u64.u32 %rd3, %r5;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	ret;
}`

func TestLocalMemoryThreadPrivate(t *testing.T) {
	d, mod := loadKernel(t, localKernel)
	out := d.MustAlloc(4 * 64)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(64), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	// Every thread sees only its OWN local memory: out[tid] = tid + 7.
	for i := 0; i < 64; i++ {
		v, _ := d.ReadU32(out + uint64(4*i))
		if v != uint32(i)+7 {
			t.Fatalf("out[%d] = %d, want %d (local memory leaked across lanes?)", i, v, i+7)
		}
	}
}

func TestLocalMemoryOOB(t *testing.T) {
	_, mod := loadKernel(t, `
.visible .entry k()
{
	.reg .u64 %rd<4>;
	.local .align 4 .b8 scratch[8];
	mov.u64 %rd1, scratch;
	st.local.u32 [%rd1+8], 1;
	ret;
}`)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1)}); err == nil {
		t.Error("local OOB store succeeded")
	}
}

func TestLocalAccessesNotClassified(t *testing.T) {
	// Local memory is thread-private: the acquire/release inference and
	// the instrumenter must ignore it entirely.
	m, err := ptx.Parse(localKernel)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range m.Kernels[0].Instrs() {
		if in.Space == ptx.SpaceLocal && in.MemoryAccess() {
			t.Errorf("local access classified as instrumentable: %+v", in)
		}
	}
}

func TestLocalMemoryNotLogged(t *testing.T) {
	d, mod := loadKernel(t, localKernel)
	out := d.MustAlloc(4 * 64)
	sink := &collector{}
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	for _, r := range sink.recs {
		if r.Op != trace.OpEnd && r.Space == 2 { // logging.SpaceLocal
			t.Errorf("local access was logged: %+v", r)
		}
	}
}

func TestSmallWarpSizeExecution(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %laneid;
	mov.u32 %r3, %warpid;
	mov.u32 %r4, WARP_SZ;
	shl.b32 %r5, %r1, 2;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	mad.lo.u32 %r6, %r3, 1000, %r2;
	mad.lo.u32 %r6, %r4, 100000, %r6;
	st.global.u32 [%rd3], %r6;
	ret;
}`)
	out := d.MustAlloc(4 * 32)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}, WarpSize: 8}); err != nil {
		t.Fatal(err)
	}
	// With 8-lane warps, thread 19 is warp 2 lane 3; WARP_SZ reads 8.
	v, _ := d.ReadU32(out + 4*19)
	if v != 8*100000+2*1000+3 {
		t.Errorf("thread 19 saw %d, want warp 2 lane 3 ws 8", v)
	}
}

func TestWarpSizeBarrierAndAtomics(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	bar.sync 0;
	atom.global.add.u32 %r2, [%rd1], 1;
	ret;
}`)
	for _, ws := range []int{2, 4, 16, 32} {
		ctr := d.MustAlloc(4)
		if _, err := mod.Launch("k", LaunchConfig{Grid: D1(2), Block: D1(48), Args: []uint64{ctr}, WarpSize: ws}); err != nil {
			t.Fatalf("ws=%d: %v", ws, err)
		}
		v, _ := d.ReadU32(ctr)
		if v != 2*48*2 {
			t.Errorf("ws=%d: counter = %d, want 192", ws, v)
		}
	}
}
