package gpusim

import (
	"fmt"
	"math/bits"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

// Producer-side epoch filtering.
//
// The detector's FastTrack cost is dominated by event volume, and in loop
// bodies the overwhelming majority of records are same-interval repeats of
// records the warp already emitted. This file suppresses such repeats at
// the producer — before the record is enqueued, shipped, or shadow-probed
// — under conditions that make the suppression provably invisible to the
// detector's canonical report:
//
//   - Only plain global-space read/write records are candidates. Shared
//     races are digested exactly (both PCs and dynamic counts), so shared
//     records always flow through; local accesses are never logged.
//   - A record is suppressed only if the same warp emitted a record with
//     identical (PC, op, size, mask, address shape) in the current
//     *generation*: a per-warp counter bumped by every event that can
//     change the warp's vector clock or group structure (sync accesses,
//     barriers and barrier releases, atomics, divergence events, launch
//     boundaries). Within one generation no other agent can acquire
//     knowledge of this warp's clock line, so the clock values the
//     suppressed duplicate would have installed are indistinguishable
//     from the retained original's.
//   - Reads additionally require that *no* global write/atomic/sync
//     record was emitted by anyone since the original (engine-wide
//     fWriteEpoch): otherwise an intervening write could have cleared or
//     replaced the warp's reader entry and the duplicate would have
//     re-registered it, changing which races a later writer reports.
//   - Writes additionally require that no global record of any kind was
//     emitted since the original (fAccessEpoch), and that the record's
//     lanes provably touch pairwise-disjoint shadow cells (coalesced
//     full-stride with cell-aligned granularity, or a single lane), so
//     the same-value gag counters cannot drift. Atomics are never
//     suppressed.
//
// Under these gates a suppressed record sees exactly the cell state its
// original saw, reports only races whose dedup keys were already
// reported, and installs only clock values that are invisible within the
// generation — so race reports, CanonicalDigest, and the same-value
// counters are byte-identical to the unfiltered run. The only observable
// difference would be the per-warp record/format counters; those are
// reconciled by emitting a trace.OpFlush record (Seq = suppressed count)
// before any event that changes the warp's clock or format, and at warp
// exit.
//
// A static tier sits in front of the dynamic cache: instrumentation marks
// global read sites whose address is a launch-structural affine constant
// per lane and that sit in a barrier/fence/atomic-free natural loop
// (ptx.Instr.LogOnce). On a generation/epoch/mask hit at such a site the
// record is never even built — no per-lane address or value computation —
// with a one-lane defensive address check backing the static proof.

// filterSlots is the per-warp dynamic cache size. Direct-mapped; loop
// bodies have few distinct sites, so small is plenty, and correctness
// never depends on retention (a miss just emits).
const filterSlots = 64

// fslot is one dynamic filter-cache entry.
type fslot struct {
	gen  uint64 // warp generation at install
	ep   uint64 // interference epoch at install (see probe)
	base uint64 // coalesced base / broadcast address
	pc   uint32
	mask uint32
	sig  uint32 // size | write-bit | broadcast-bit
}

// onceSlot is the dedicated cache entry for a static log-once site.
type onceSlot struct {
	gen  uint64
	wep  uint64 // fWriteEpoch at install
	base uint64 // first active lane's address (defensive check)
	mask uint32
}

const (
	fsigWrite = 1 << 8
	fsigBcast = 1 << 9
)

// filterFlush reconciles the warp's pending suppressed count with the
// detector via an OpFlush record. Uses its own scratch record so callers
// may already be holding e.rec half-built.
func (e *engine) filterFlush(w *warpState) {
	if w.fpend == 0 {
		return
	}
	e.frec = logging.Record{
		Warp:  uint32(w.gwid),
		Block: uint32(w.blk.idx),
		Op:    trace.OpFlush,
		Seq:   w.fpend,
	}
	w.fpend = 0
	e.cfg.Sink.Emit(&e.frec)
	e.stats.Records++
	e.stats.Filter.Flushes++
}

// filterBump flushes the pending count and starts a new generation,
// invalidating every cache slot of the warp in O(1).
func (e *engine) filterBump(w *warpState) {
	e.filterFlush(w)
	w.fgen++
}

// filterProbe checks the dynamic cache for an equivalent record emitted by
// this warp in the current generation with no invalidating interference,
// reporting whether rec may be suppressed. On a miss the slot is
// (re)installed for the record about to be emitted.
func (e *engine) filterProbe(w *warpState, rec *logging.Record, base uint64, bcast bool) bool {
	e.stats.Filter.Probes++
	if w.fslots == nil {
		w.fslots = make([]fslot, filterSlots)
	}
	sig := uint32(rec.Size)
	// Reads survive until any global write appears; writes only until any
	// global access appears. The slot stores the epoch value the world
	// will have right after this record is emitted, so an immediate
	// repeat matches.
	ep := e.fWriteEpoch
	if rec.Op == trace.OpWrite {
		sig |= fsigWrite
		ep = e.fAccessEpoch + 1
	}
	if bcast {
		sig |= fsigBcast
	}
	idx := (rec.PC ^ uint32(base>>4) ^ uint32(base>>36)) & (filterSlots - 1)
	s := &w.fslots[idx]
	if s.gen == w.fgen && s.ep == ep && s.pc == rec.PC &&
		s.mask == rec.Mask && s.base == base && s.sig == sig {
		w.fpend++
		e.stats.Filter.Hits++
		return true
	}
	*s = fslot{gen: w.fgen, ep: ep, base: base, pc: rec.PC, mask: rec.Mask, sig: sig}
	return false
}

// execLogFiltered is the ProducerFilter variant of execLog. The fill logic
// mirrors execLog exactly; the additions are the static log-once elision
// before the record is built, the dynamic cache probe before Emit, and the
// generation/epoch bookkeeping around sync edges.
func (e *engine) execLogFiltered(w *warpState, ci *cInstr, exec uint32) error {
	if ci.logOnce >= 0 && w.fonce != nil {
		s := &w.fonce[ci.logOnce]
		if s.gen == w.fgen && s.wep == e.fWriteEpoch && s.mask == exec &&
			s.base == e.laneAddr(w, bits.TrailingZeros32(exec), &ci.args[0]) {
			// Statically proven repeat: the affine analysis guarantees
			// every lane's address is unchanged (the one-lane compare
			// backs the proof), and the epoch gates guarantee the cell
			// state is unchanged. Skip building the record entirely.
			w.fpend++
			e.stats.Filter.StaticElides++
			return nil
		}
	}
	rec := &e.rec
	*rec = *ci.logTmpl
	rec.Warp = uint32(w.gwid)
	rec.Block = uint32(w.blk.idx)
	rec.Mask = exec
	if ci.logBar {
		e.filterBump(w) // the coming block-wide join changes the clock
		e.cfg.Sink.Emit(rec)
		e.stats.Records++
		return nil
	}
	if !ci.logAddrOK {
		return fmt.Errorf("_log.%v without address operand", ci.in.LogK)
	}
	if ci.logSync {
		e.filterBump(w) // acquire/release changes the warp's clock
		e.syncSeq++
		rec.Seq = e.syncSeq
	}
	a0 := &ci.args[0]
	var bcast bool
	var bcastAddr uint64
	if ci.uniform {
		first := bits.TrailingZeros32(exec)
		addr := e.laneAddr(w, first, a0)
		var v uint64
		if ci.logVal {
			v = e.val(w, first, &ci.args[1])
		}
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			rec.Addrs[lane] = addr
			if ci.logVal {
				rec.Vals[lane] = v
			}
		}
		if exec&(exec-1) == 0 && !ci.logSync && rec.Size != 0 {
			rec.Flags = logging.FlagCoalesced
			rec.Base = addr
		} else {
			bcast, bcastAddr = true, addr
		}
	} else {
		coal := true
		first := true
		var base, next uint64
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := e.laneAddr(w, lane, a0)
			rec.Addrs[lane] = a
			if ci.logVal {
				rec.Vals[lane] = e.val(w, lane, &ci.args[1])
			}
			switch {
			case first:
				base, next, first = a, a+uint64(rec.Size), false
			case a == next:
				next += uint64(rec.Size)
			default:
				coal = false
			}
		}
		if coal && !ci.logSync && rec.Size != 0 {
			rec.Flags = logging.FlagCoalesced
			rec.Base = base
		}
	}
	if rec.Op == trace.OpAtom {
		// Atomics mutate cells, clear reader sets, and (per the interval
		// contract) count as sync edges: never suppressed, always bump.
		e.filterBump(w)
	}
	if rec.Space == logging.SpaceGlobal && !ci.logSync {
		suppressible := false
		var base uint64
		switch rec.Op {
		case trace.OpRead:
			switch {
			case rec.Flags&logging.FlagCoalesced != 0:
				suppressible, base = true, rec.Base
			case bcast:
				suppressible, base = true, bcastAddr
			}
		case trace.OpWrite:
			if rec.Flags&logging.FlagCoalesced != 0 {
				single := exec&(exec-1) == 0
				sz := uint64(rec.Size)
				// Multi-lane writes must provably keep lanes on disjoint
				// shadow cells or intra-record same-value accounting could
				// drift: stride == size with the granularity dividing both
				// the element size and the base address.
				if single || (e.fGran <= sz && sz%e.fGran == 0 && rec.Base%e.fGran == 0) {
					suppressible, base = true, rec.Base
				}
			}
		}
		if suppressible && e.filterProbe(w, rec, base, bcast) {
			return nil
		}
	}
	e.cfg.Sink.Emit(rec)
	e.stats.Records++
	if rec.Space == logging.SpaceGlobal {
		// Interference epochs count *emitted* global records: anything
		// that may mutate global shadow cells invalidates read slots, and
		// any global record at all invalidates write slots.
		if rec.Op != trace.OpRead {
			e.fWriteEpoch++
		}
		e.fAccessEpoch++
	}
	if ci.logOnce >= 0 {
		if w.fonce == nil {
			w.fonce = make([]onceSlot, e.lk.nOnce)
		}
		w.fonce[ci.logOnce] = onceSlot{
			gen:  w.fgen,
			wep:  e.fWriteEpoch,
			base: rec.Addrs[bits.TrailingZeros32(exec)],
			mask: exec,
		}
	}
	return nil
}
