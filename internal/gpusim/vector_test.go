package gpusim

import (
	"strings"
	"testing"

	"barracuda/internal/instrument"
	"barracuda/internal/ptx"
)

const vecKernel = `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, 11;
	mov.u32 %r2, 22;
	mov.u32 %r3, 33;
	mov.u32 %r4, 44;
	st.global.v4.u32 [%rd1], {%r1, %r2, %r3, %r4};
	ld.global.v2.u32 {%r5, %r6}, [%rd1+8];
	add.u32 %r7, %r5, %r6;
	st.global.u32 [%rd1+16], %r7;
	ret;
}`

func TestVectorLoadStore(t *testing.T) {
	d, mod := loadKernel(t, vecKernel)
	out := d.MustAlloc(4 * 8)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	want := []uint32{11, 22, 33, 44, 77}
	for i, wv := range want {
		v, _ := d.ReadU32(out + uint64(4*i))
		if v != wv {
			t.Errorf("out[%d] = %d, want %d", i, v, wv)
		}
	}
}

func TestVectorRoundTripAndInstrument(t *testing.T) {
	m, err := ptx.Parse(vecKernel)
	if err != nil {
		t.Fatal(err)
	}
	text := ptx.Print(m)
	if !strings.Contains(text, "st.global.v4.u32 [%rd1], {%r1, %r2, %r3, %r4};") {
		t.Fatalf("vector store printed wrong:\n%s", text)
	}
	if !strings.Contains(text, "ld.global.v2.u32 {%r5, %r6}, [%rd1+8];") {
		t.Fatalf("vector load printed wrong:\n%s", text)
	}
	if _, err := ptx.Parse(text); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// Instrumentation covers the full vector footprint.
	res, err := instrument.Instrument(m, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	itext := ptx.Print(res.Module)
	if !strings.Contains(itext, "_log.wr.global.sz16 [%rd1], %r1;") {
		t.Fatalf("v4 store log wrong:\n%s", itext)
	}
	if !strings.Contains(itext, "_log.rd.global.sz8 [%rd1+8];") {
		t.Fatalf("v2 load log wrong:\n%s", itext)
	}
}

func TestVolatileLoadStore(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	st.volatile.global.u32 [%rd1], 9;
	ld.volatile.global.u32 %r1, [%rd1];
	st.global.u32 [%rd1+4], %r1;
	ret;
}`)
	out := d.MustAlloc(8)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(out + 4)
	if v != 9 {
		t.Errorf("volatile round trip = %d", v)
	}
}

func TestVolatilePrintRoundTrip(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [p];
	ld.volatile.global.u32 %r1, [%rd1];
	ret;
}`
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := ptx.Print(m)
	if !strings.Contains(text, "ld.volatile.global.u32 %r1, [%rd1];") {
		t.Fatalf("volatile not preserved:\n%s", text)
	}
	if _, err := ptx.Parse(text); err != nil {
		t.Fatal(err)
	}
}

// TestVectorRaceDetectionFootprint: a v4 store overlaps a scalar store to
// the third component — the detector must see the full 16-byte footprint.
func TestVectorAccessBytes(t *testing.T) {
	m, err := ptx.Parse(vecKernel)
	if err != nil {
		t.Fatal(err)
	}
	var v4 *ptx.Instr
	for _, in := range m.Kernels[0].Instrs() {
		if in.Op == ptx.OpSt && in.Vec == 4 {
			v4 = in
		}
	}
	if v4 == nil {
		t.Fatal("v4 store not found")
	}
	if v4.AccessBytes() != 16 {
		t.Errorf("AccessBytes = %d, want 16", v4.AccessBytes())
	}
}
