// Package gpusim is a SIMT execution simulator for the PTX subset in
// package ptx: it provides the "GPU" on which BARRACUDA's dynamic analysis
// runs. It models the CUDA thread hierarchy (grid → thread blocks → warps
// of 32 lockstep threads), branch divergence via a reconvergence (SIMT)
// stack driven by immediate post-dominators, the global/shared/local memory
// spaces, warp-serialized atomics, block barriers, and the `_log.*`
// instrumentation pseudo-instructions, which emit warp-level records into
// the logging queues exactly as the paper's GPU-side logging framework
// does (§4.2).
//
// Execution is sequentially consistent (the relaxed-memory behaviour that
// motivates fence scoping is modeled separately in package memmodel) and
// runs on a single goroutine so simulated racy programs never become Go
// data races; host-side detector threads run concurrently, consuming the
// queues.
package gpusim

import (
	"encoding/binary"
	"fmt"

	"barracuda/internal/logging"
)

// WarpSize is the default number of threads per warp. The paper notes
// that warp size is architecture-dependent and that portable code should
// not bake it in; LaunchConfig.WarpSize overrides it (2..32) to simulate
// smaller or larger warps and expose latent warp-size-dependent bugs —
// the future-work extension of §3.1.
const WarpSize = 32

// GlobalBase is the first address handed out for global-memory
// allocations; address 0 stays invalid so null dereferences fault.
const GlobalBase = 0x10000

// Dim3 is a 1-, 2- or 3-D extent; zero components are treated as 1.
type Dim3 struct {
	X, Y, Z int
}

// norm returns the dimension with zero components replaced by 1.
func (d Dim3) norm() Dim3 {
	if d.X == 0 {
		d.X = 1
	}
	if d.Y == 0 {
		d.Y = 1
	}
	if d.Z == 0 {
		d.Z = 1
	}
	return d
}

// Count returns the total number of elements in the extent.
func (d Dim3) Count() int {
	d = d.norm()
	return d.X * d.Y * d.Z
}

// D1 is shorthand for a 1-D extent.
func D1(x int) Dim3 { return Dim3{X: x} }

// Sink receives the warp-level records emitted by instrumented kernels.
// The record is only valid for the duration of the call; implementations
// must copy it (logging.Queue.Enqueue does).
type Sink interface {
	Emit(r *logging.Record)
}

// Device models one GPU: a flat global memory plus loaded modules.
type Device struct {
	mem      []byte
	next     uint64
	memLimit uint64
}

// NewDevice creates a device with the given global memory capacity in
// bytes (default 256 MiB when 0).
func NewDevice(memBytes int) *Device {
	if memBytes <= 0 {
		memBytes = 256 << 20
	}
	return &Device{
		mem:      make([]byte, 0, 1<<20),
		next:     GlobalBase,
		memLimit: GlobalBase + uint64(memBytes),
	}
}

// Alloc reserves n bytes of global memory and returns the base address.
// Allocations are 256-byte aligned, mirroring cudaMalloc.
func (d *Device) Alloc(n int) (uint64, error) {
	if n < 0 {
		return 0, fmt.Errorf("gpusim: negative allocation %d", n)
	}
	base := (d.next + 255) &^ 255
	end := base + uint64(n)
	if end > d.memLimit {
		return 0, fmt.Errorf("gpusim: out of device memory (%d bytes requested)", n)
	}
	d.next = end
	d.ensure(end)
	return base, nil
}

// MustAlloc is Alloc that panics on failure; for tests and examples.
func (d *Device) MustAlloc(n int) uint64 {
	a, err := d.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// AllocBytes returns the total bytes allocated so far.
func (d *Device) AllocBytes() int64 { return int64(d.next - GlobalBase) }

// ensure grows the backing store to cover addresses below end.
func (d *Device) ensure(end uint64) {
	need := int(end - GlobalBase)
	if need <= len(d.mem) {
		return
	}
	grown := make([]byte, need)
	copy(grown, d.mem)
	d.mem = grown
}

func (d *Device) checkRange(addr uint64, n int) error {
	if addr < GlobalBase || addr+uint64(n) > GlobalBase+uint64(len(d.mem)) {
		return fmt.Errorf("gpusim: global access [%#x,+%d) out of bounds", addr, n)
	}
	return nil
}

// load reads n bytes little-endian from global memory.
func (d *Device) load(addr uint64, n int) (uint64, error) {
	if err := d.checkRange(addr, n); err != nil {
		return 0, err
	}
	off := addr - GlobalBase
	return loadLE(d.mem[off:], n), nil
}

// store writes n bytes little-endian to global memory.
func (d *Device) store(addr uint64, n int, v uint64) error {
	if err := d.checkRange(addr, n); err != nil {
		return err
	}
	off := addr - GlobalBase
	storeLE(d.mem[off:], n, v)
	return nil
}

// WriteU32 stores a 32-bit value at a global address (host-side API).
func (d *Device) WriteU32(addr uint64, v uint32) error { return d.store(addr, 4, uint64(v)) }

// ReadU32 loads a 32-bit value from a global address (host-side API).
func (d *Device) ReadU32(addr uint64) (uint32, error) {
	v, err := d.load(addr, 4)
	return uint32(v), err
}

// WriteU64 stores a 64-bit value at a global address.
func (d *Device) WriteU64(addr uint64, v uint64) error { return d.store(addr, 8, v) }

// ReadU64 loads a 64-bit value from a global address.
func (d *Device) ReadU64(addr uint64) (uint64, error) { return d.load(addr, 8) }

// Memset fills [addr, addr+n) with b.
func (d *Device) Memset(addr uint64, b byte, n int) error {
	if err := d.checkRange(addr, n); err != nil {
		return err
	}
	off := int(addr - GlobalBase)
	for i := 0; i < n; i++ {
		d.mem[off+i] = b
	}
	return nil
}

// WriteBytes copies host bytes into global memory.
func (d *Device) WriteBytes(addr uint64, b []byte) error {
	if err := d.checkRange(addr, len(b)); err != nil {
		return err
	}
	copy(d.mem[addr-GlobalBase:], b)
	return nil
}

// ReadBytes copies n bytes of global memory to the host.
func (d *Device) ReadBytes(addr uint64, n int) ([]byte, error) {
	if err := d.checkRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.mem[addr-GlobalBase:])
	return out, nil
}

func loadLE(b []byte, n int) uint64 {
	switch n {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeLE(b []byte, n int, v uint64) {
	switch n {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}
