package gpusim

import (
	"errors"
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// collector is a Sink that retains all records.
type collector struct {
	recs []logging.Record
}

func (c *collector) Emit(r *logging.Record) { c.recs = append(c.recs, *r) }

func loadKernel(t *testing.T, src string) (*Device, *Module) {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d := NewDevice(0)
	mod, err := d.LoadModule(m)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return d, mod
}

func TestStoreTIDs(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	cvt.u64.u32 %rd2, %r4;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	ret;
}`)
	const n = 200
	out := d.MustAlloc(4 * n)
	_, err := mod.Launch("k", LaunchConfig{Grid: D1(4), Block: D1(50), Args: []uint64{out}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := d.ReadU32(out + uint64(4*i))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestBranchDivergence(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	cvt.u64.u32 %rd2, %r1;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra SMALL;
	st.global.u32 [%rd4], 200;
	bra.uni JOIN;
SMALL:
	st.global.u32 [%rd4], 100;
JOIN:
	ld.global.u32 %r2, [%rd4];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd4], %r2;
	ret;
}`)
	out := d.MustAlloc(4 * 32)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		v, _ := d.ReadU32(out + uint64(4*i))
		want := uint32(201)
		if i < 16 {
			want = 101
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestLoopSum(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	ld.param.u32 %r5, [n];
	mov.u32 %r1, 0;
	mov.u32 %r2, 0;
LOOP:
	add.u32 %r2, %r2, %r1;
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, %r5;
	@%p1 bra LOOP;
	st.global.u32 [%rd1], %r2;
	ret;
}`)
	out := d.MustAlloc(4)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out, 10}}); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(out)
	if v != 45 { // 0+1+...+9
		t.Errorf("sum = %d, want 45", v)
	}
}

func TestBarrierSharedReverse(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 buf[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, buf;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	bar.sync 0;
	mov.u32 %r3, 63;
	sub.u32 %r4, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	cvt.u64.u32 %rd7, %r2;
	add.u64 %rd8, %rd1, %rd7;
	st.global.u32 [%rd8], %r6;
	ret;
}`)
	out := d.MustAlloc(4 * 64)
	stats, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(64), Args: []uint64{out}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		v, _ := d.ReadU32(out + uint64(4*i))
		if v != uint32(63-i) {
			t.Errorf("out[%d] = %d, want %d", i, v, 63-i)
		}
	}
	if stats.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", stats.Barriers)
	}
}

func TestAtomicAddCounter(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	ret;
}`)
	ctr := d.MustAlloc(4)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(8), Block: D1(96), Args: []uint64{ctr}}); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 8*96 {
		t.Errorf("counter = %d, want %d", v, 8*96)
	}
}

func TestAtomicCasExchSpinlock(t *testing.T) {
	// Sequentially consistent simulator: a spinlock-protected increment
	// must produce an exact count across blocks. One thread per block:
	// an *intra-warp* spinlock starves on the SIMT stack (see
	// TestIntraWarpSpinlockStarves), exactly as on pre-Volta hardware.
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	membar.gl;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	membar.gl;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`)
	lock := d.MustAlloc(4)
	ctr := d.MustAlloc(4)
	cfg := LaunchConfig{Grid: D1(16), Block: D1(1), Args: []uint64{lock, ctr}, MaxWarpInstrs: 1 << 20}
	if _, err := mod.Launch("k", cfg); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 16 {
		t.Errorf("counter = %d, want 16", v)
	}
}

func TestIntraWarpSpinlockStarves(t *testing.T) {
	// All 32 lanes of one warp compete for a lock: the winning lane is
	// parked on the reconvergence entry while the losers spin, so the
	// warp starves — faithful to the SIMT-stack behaviour of pre-Volta
	// GPUs. The step budget turns the hang into ErrStepBudget.
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`)
	lock := d.MustAlloc(4)
	ctr := d.MustAlloc(4)
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{lock, ctr}, MaxWarpInstrs: 100000}
	_, err := mod.Launch("k", cfg)
	if err == nil {
		t.Fatal("intra-warp spinlock completed; expected SIMT starvation")
	}
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("error = %v, want ErrStepBudget", err)
	}
}

func TestPartialWarpMask(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	ret;
}`)
	ctr := d.MustAlloc(4)
	// 20 threads: one partial warp.
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(20), Args: []uint64{ctr}}); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 20 {
		t.Errorf("counter = %d, want 20", v)
	}
}

func TestGuardedEarlyReturn(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr, .param .u32 n)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [ctr];
	ld.param.u32 %r2, [n];
	mov.u32 %r1, %tid.x;
	setp.ge.u32 %p1, %r1, %r2;
	@%p1 ret;
	atom.global.add.u32 %r3, [%rd1], 1;
	ret;
}`)
	ctr := d.MustAlloc(4)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(64), Args: []uint64{ctr, 37}}); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 37 {
		t.Errorf("counter = %d, want 37", v)
	}
}

func TestSignedArithmetic(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, -8;
	mov.u32 %r2, 3;
	div.s32 %r3, %r1, %r2;
	st.global.u32 [%rd1], %r3;
	rem.s32 %r4, %r1, %r2;
	st.global.u32 [%rd1+4], %r4;
	shr.s32 %r5, %r1, 1;
	st.global.u32 [%rd1+8], %r5;
	min.s32 %r6, %r1, %r2;
	st.global.u32 [%rd1+12], %r6;
	max.u32 %r7, %r1, %r2;
	st.global.u32 [%rd1+16], %r7;
	ret;
}`)
	out := d.MustAlloc(20)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	check := func(off int, want int32) {
		v, _ := d.ReadU32(out + uint64(off))
		if int32(v) != want {
			t.Errorf("out[+%d] = %d, want %d", off, int32(v), want)
		}
	}
	check(0, -2)  // -8 / 3 truncates toward zero
	check(4, -2)  // -8 % 3
	check(8, -4)  // arithmetic shift
	check(12, -8) // signed min
	// -8 as u32 is huge, so unsigned max picks it.
	if v, _ := d.ReadU32(out + 16); v != 0xfffffff8 {
		t.Errorf("unsigned max = %#x, want 0xfffffff8", v)
	}
}

func TestMulWideAndHi(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, 0x10000;
	mul.wide.u32 %rd2, %r1, %r1;
	st.global.u64 [%rd1], %rd2;
	mul.hi.u32 %r2, %r1, %r1;
	st.global.u32 [%rd1+8], %r2;
	mul.lo.u32 %r3, %r1, %r1;
	st.global.u32 [%rd1+12], %r3;
	ret;
}`)
	out := d.MustAlloc(16)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadU64(out); v != 1<<32 {
		t.Errorf("mul.wide = %#x, want 1<<32", v)
	}
	if v, _ := d.ReadU32(out + 8); v != 1 {
		t.Errorf("mul.hi = %d, want 1", v)
	}
	if v, _ := d.ReadU32(out + 12); v != 0 {
		t.Errorf("mul.lo = %d, want 0", v)
	}
}

func TestSelpAndFloat(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .f32 %f<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.f32 %f1, 1.5;
	mov.f32 %f2, 2.5;
	add.f32 %f3, %f1, %f2;
	st.global.f32 [%rd1], %f3;
	setp.lt.f32 %p1, %f1, %f2;
	selp.u32 %r1, 11, 22, %p1;
	st.global.u32 [%rd1+4], %r1;
	mul.f32 %f4, %f1, %f2;
	st.global.f32 [%rd1+8], %f4;
	ret;
}`)
	out := d.MustAlloc(12)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadU32(out); v != 0x40800000 { // 4.0f
		t.Errorf("f32 add = %#x, want 4.0f bits", v)
	}
	if v, _ := d.ReadU32(out + 4); v != 11 {
		t.Errorf("selp = %d, want 11", v)
	}
	if v, _ := d.ReadU32(out + 8); v != 0x40700000 { // 3.75f
		t.Errorf("f32 mul = %#x, want 3.75f bits", v)
	}
}

func TestModuleGlobalSymbol(t *testing.T) {
	d, mod := loadKernel(t, `
.global .align 4 .b8 gvar[64];
.visible .entry k()
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	mov.u64 %rd1, gvar;
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], 7;
	ret;
}`)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(16), Args: nil}); err != nil {
		t.Fatal(err)
	}
	addr, ok := mod.GlobalAddr("gvar")
	if !ok {
		t.Fatal("gvar not allocated")
	}
	for i := 0; i < 16; i++ {
		v, _ := d.ReadU32(addr + uint64(4*i))
		if v != 7 {
			t.Errorf("gvar[%d] = %d, want 7", i, v)
		}
	}
}

func TestManyBlocksWaves(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	ret;
}`)
	ctr := d.MustAlloc(4)
	cfg := LaunchConfig{Grid: D1(100), Block: D1(64), Args: []uint64{ctr}, MaxResidentBlocks: 4}
	if _, err := mod.Launch("k", cfg); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 6400 {
		t.Errorf("counter = %d, want 6400", v)
	}
}

func TestRandomSchedulingStillCorrect(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	bar.sync 0;
	atom.global.add.u32 %r2, [%rd1], 1;
	ret;
}`)
	ctr := d.MustAlloc(4)
	cfg := LaunchConfig{Grid: D1(5), Block: D1(64), Args: []uint64{ctr}, RandomSched: true, Seed: 42}
	if _, err := mod.Launch("k", cfg); err != nil {
		t.Fatal(err)
	}
	v, _ := d.ReadU32(ctr)
	if v != 640 {
		t.Errorf("counter = %d, want 640", v)
	}
}

func TestLogRecordEmission(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	cvt.u64.u32 %rd2, %r1;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	_log.wr.global.sz4 [%rd4];
	st.global.u32 [%rd4], %r1;
	ret;
}`)
	out := d.MustAlloc(4 * 64)
	sink := &collector{}
	stats, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(64), Args: []uint64{out}, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 2 { // one per warp
		t.Fatalf("records = %d, want 2", len(sink.recs))
	}
	if stats.Records != 2 {
		t.Errorf("stats.Records = %d", stats.Records)
	}
	r := sink.recs[0]
	if r.Op != trace.OpWrite || r.Space != logging.SpaceGlobal || r.Size != 4 {
		t.Errorf("record header = %+v", r)
	}
	if r.Mask != ^uint32(0) {
		t.Errorf("mask = %#x, want full", r.Mask)
	}
	for lane := 0; lane < 32; lane++ {
		want := out + uint64(4*lane)
		if r.Addrs[lane] != want {
			t.Errorf("lane %d addr = %#x, want %#x", lane, r.Addrs[lane], want)
		}
	}
	if sink.recs[1].Addrs[0] != out+4*32 {
		t.Errorf("warp 1 lane 0 addr = %#x", sink.recs[1].Addrs[0])
	}
}

func TestBranchEventEmission(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 8;
	@%p1 bra A;
	st.global.u32 [%rd1], 1;
	bra.uni J;
A:
	st.global.u32 [%rd1+4], 2;
J:
	ret;
}`)
	out := d.MustAlloc(8)
	sink := &collector{}
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}, Sink: sink, EmitBranchEvents: true}
	stats, err := mod.Launch("k", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Divergences != 1 {
		t.Errorf("divergences = %d, want 1", stats.Divergences)
	}
	var kinds []trace.OpKind
	var masks []uint32
	for _, r := range sink.recs {
		kinds = append(kinds, r.Op)
		masks = append(masks, r.Mask)
	}
	want := []trace.OpKind{trace.OpIf, trace.OpElse, trace.OpFi}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	// Fall-through path (tid >= 8) executes first.
	if masks[0] != 0xffffff00 {
		t.Errorf("if mask = %#x, want 0xffffff00", masks[0])
	}
	if masks[1] != 0x000000ff {
		t.Errorf("else mask = %#x, want 0x000000ff", masks[1])
	}
	if masks[2] != 0xffffffff {
		t.Errorf("fi mask = %#x, want full", masks[2])
	}
}

func TestNestedDivergenceEvents(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<8>;
	.reg .pred %p<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra OUT;
	setp.lt.u32 %p2, %r1, 24;
	@%p2 bra IN;
	st.global.u32 [%rd1], 1;
IN:
	st.global.u32 [%rd1+4], 2;
OUT:
	ret;
}`)
	out := d.MustAlloc(8)
	sink := &collector{}
	cfg := LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}, Sink: sink, EmitBranchEvents: true}
	stats, err := mod.Launch("k", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Divergences != 2 {
		t.Errorf("divergences = %d, want 2", stats.Divergences)
	}
	// Outer if, inner if/else/fi nested inside the first path, then the
	// outer else and fi.
	var kinds []trace.OpKind
	for _, r := range sink.recs {
		kinds = append(kinds, r.Op)
	}
	want := []trace.OpKind{trace.OpIf, trace.OpIf, trace.OpElse, trace.OpFi, trace.OpElse, trace.OpFi}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
}

func TestOOBGlobalAccessError(t *testing.T) {
	_, mod := loadKernel(t, `
.visible .entry k()
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	mov.u64 %rd1, 64;
	st.global.u32 [%rd1], 1;
	ret;
}`)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1)}); err == nil {
		t.Error("store below GlobalBase succeeded")
	}
}

func TestOOBSharedAccessError(t *testing.T) {
	_, mod := loadKernel(t, `
.visible .entry k()
{
	.reg .u64 %rd<4>;
	.shared .align 4 .b8 buf[16];
	mov.u64 %rd1, buf;
	st.shared.u32 [%rd1+16], 1;
	ret;
}`)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1)}); err == nil {
		t.Error("shared OOB store succeeded")
	}
}

func TestLaunchValidation(t *testing.T) {
	_, mod := loadKernel(t, `
.visible .entry k(.param .u64 p) { ret; }`)
	if _, err := mod.Launch("nope", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{0}}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1)}); err == nil {
		t.Error("wrong arg count accepted")
	}
}

func TestDeviceMemoryAPI(t *testing.T) {
	d := NewDevice(1 << 20)
	a := d.MustAlloc(64)
	if a%256 != 0 {
		t.Errorf("allocation not 256-aligned: %#x", a)
	}
	if err := d.WriteU64(a, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadU64(a)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("ReadU64 = %#x, %v", v, err)
	}
	if err := d.Memset(a, 0xab, 8); err != nil {
		t.Fatal(err)
	}
	b, _ := d.ReadBytes(a, 8)
	for _, x := range b {
		if x != 0xab {
			t.Errorf("memset byte = %#x", x)
		}
	}
	if _, err := d.ReadU32(0); err == nil {
		t.Error("null read succeeded")
	}
	if _, err := d.Alloc(2 << 20); err == nil {
		t.Error("over-capacity alloc succeeded")
	}
}

func TestStatsCounts(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, 1;
	st.global.u32 [%rd1], %r1;
	ret;
}`)
	out := d.MustAlloc(4)
	stats, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(32), Args: []uint64{out}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarpInstrs != 4 {
		t.Errorf("WarpInstrs = %d, want 4", stats.WarpInstrs)
	}
	if stats.ThreadInstrs != 4*32 {
		t.Errorf("ThreadInstrs = %d, want 128", stats.ThreadInstrs)
	}
}

func Test2DGridAndBlock(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [ctr];
	mov.u32 %r1, %tid.y;
	mov.u32 %r2, %ctaid.y;
	add.u32 %r3, %r1, %r2;
	atom.global.add.u32 %r4, [%rd1], %r3;
	ret;
}`)
	ctr := d.MustAlloc(4)
	cfg := LaunchConfig{Grid: Dim3{X: 2, Y: 3}, Block: Dim3{X: 4, Y: 2}, Args: []uint64{ctr}}
	if _, err := mod.Launch("k", cfg); err != nil {
		t.Fatal(err)
	}
	// Sum over all threads of (tid.y + ctaid.y):
	// tid.y: each block has 4 threads with y=0, 4 with y=1 -> sum 4 per block, 6 blocks -> 24.
	// ctaid.y: blocks have y = 0,0,1,1,2,2; each contributes y * 8 threads -> (0+0+1+1+2+2)*8 = 48.
	v, _ := d.ReadU32(ctr)
	if v != 72 {
		t.Errorf("sum = %d, want 72", v)
	}
}
