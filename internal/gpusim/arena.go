package gpusim

// launchArena pools per-launch simulator state — blockState (shared memory,
// warp states, register/predicate files, lane-private local memory, SIMT
// stacks) plus the scheduler's scratch slices — so a warm kernel launch on
// a reused Module/Session allocates (almost) nothing. Retired blocks go
// onto the free list as waves complete and are re-zeroed on reuse, which
// keeps warm launches bit-identical to cold ones.
//
// Ownership: the arena hangs off the loadedKernel behind an atomic pointer.
// A launch takes sole ownership by swapping the pointer to nil and stores
// it back when it finishes. Launches on one Module are expected to be
// sequential (the detector Session contract; the server's module cache
// serializes jobs per entry) — but if a caller violates that, the loser of
// the swap simply sees nil and allocates fresh state instead of corrupting
// a shared arena.
//
// The LaneMajor A/B baseline path does not use the arena, so allocs/launch
// comparisons in BENCH_sim.json measure the pooled fast path against the
// original allocation behavior.
type launchArena struct {
	// Geometry key: a pooled block is only reusable when the launch shape
	// that produced it matches.
	ws, wpb, bsz  int
	nRegs, nPreds int
	sharedBytes   int64
	localBytes    int64

	free     []*blockState // retired blocks ready for reuse
	resident []*blockState // scheduler scratch, reused across launches
	order    []*warpState  // scheduler scratch, reused across launches
}

// acquireArena takes ownership of the kernel's arena, replacing it when the
// launch geometry changed. Returns nil in lane-major mode.
func (e *engine) acquireArena() *launchArena {
	if e.laneMajor {
		return nil
	}
	ar := e.lk.arena.Swap(nil)
	if ar == nil ||
		ar.ws != e.ws || ar.wpb != e.wpb || ar.bsz != e.bsz ||
		ar.nRegs != e.lk.nRegs || ar.nPreds != e.lk.nPreds ||
		ar.sharedBytes != e.lk.sharedBytes || ar.localBytes != e.lk.localBytes {
		ar = &launchArena{
			ws: e.ws, wpb: e.wpb, bsz: e.bsz,
			nRegs: e.lk.nRegs, nPreds: e.lk.nPreds,
			sharedBytes: e.lk.sharedBytes, localBytes: e.lk.localBytes,
		}
	}
	return ar
}

// releaseArena hands the arena back to the kernel for the next launch.
func (e *engine) releaseArena(ar *launchArena) {
	if ar == nil {
		return
	}
	ar.resident = ar.resident[:0]
	ar.order = ar.order[:0]
	e.lk.arena.Store(ar)
}

// takeBlock pops a pooled block and resets it for a new block index, or
// reports none available.
func (ar *launchArena) takeBlock(e *engine, idx int) (*blockState, bool) {
	n := len(ar.free)
	if n == 0 {
		return nil, false
	}
	blk := ar.free[n-1]
	ar.free = ar.free[:n-1]
	e.resetBlock(blk, idx)
	return blk, true
}

// resetBlock re-zeroes a pooled block's memory and warp state so a reused
// block is indistinguishable from a freshly allocated one.
func (e *engine) resetBlock(blk *blockState, idx int) {
	blk.idx = idx
	clear(blk.shared)
	blk.liveWarp = e.wpb
	for wi, w := range blk.warps {
		w.gwid = idx*e.wpb + wi
		w.baseTID = idx*e.bsz + wi*e.ws
		w.exited = 0
		w.waiting = false
		w.done = false
		w.stack = w.stack[:1]
		w.stack[0] = stackEntry{pc: 0, rpc: -1, mask: w.fullMask, role: roleTop}
		clear(w.regs)
		clear(w.preds)
		clear(w.local)
		// Invalidate the producer-filter caches in O(1): fgen is monotone
		// over the warpState's lifetime, so stale slots simply never match
		// again and the slot storage itself is reused across launches.
		w.fgen++
		w.fpend = 0
	}
}
