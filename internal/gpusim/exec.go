package gpusim

import (
	"fmt"
	"math/rand"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	Grid  Dim3     // grid dimensions in thread blocks
	Block Dim3     // block dimensions in threads
	Args  []uint64 // one value per kernel parameter

	// Sink receives records from `_log.*` pseudo-instructions and (when
	// EmitBranchEvents is set) the If/Else/Fi divergence events from the
	// SIMT stack. Nil runs the kernel natively with no logging.
	Sink             Sink
	EmitBranchEvents bool

	// MaxResidentBlocks bounds how many thread blocks execute
	// concurrently (a wave), like SM occupancy limits on a real GPU.
	// 0 means the default of 48.
	MaxResidentBlocks int

	// RandomSched randomizes the warp scheduling order each pass using
	// Seed; otherwise scheduling is deterministic round-robin.
	RandomSched bool
	Seed        int64

	// MaxWarpInstrs aborts the launch with ErrStepBudget once this many
	// dynamic warp instructions have executed (0 = no limit). Kernels
	// that starve on the SIMT stack — e.g. an intra-warp spinlock, a
	// real deadlock on pre-Volta GPUs — otherwise spin forever.
	MaxWarpInstrs uint64

	// WarpSize overrides the architecture's warp width (default 32,
	// range 2..32). Running a kernel at a smaller warp size exposes
	// latent bugs in code that assumes 32-thread lockstep.
	WarpSize int

	// LaneMajor selects the legacy lane-major interpreter (per-lane opcode
	// dispatch, no launch-state pooling) instead of the warp-major fast
	// path. Kept as the A/B baseline for BENCH_sim.json; both paths are
	// report- and stats-equivalent.
	LaneMajor bool

	// ProducerFilter enables the producer-side epoch filter: each warp
	// keeps a small direct-mapped cache of recently emitted global-space
	// access records and suppresses a record when an equivalent one was
	// already emitted by the same warp in the current synchronization
	// interval with no intervening global interference (see filter.go for
	// the exact validity conditions). Suppressed counts are reconciled via
	// trace.OpFlush records so detector statistics and canonical digests
	// are byte-identical to an unfiltered run. Only active on the
	// warp-major path with a Sink and EmitBranchEvents set; ignored
	// otherwise.
	ProducerFilter bool

	// FilterGranularity is the detector's shadow granularity in bytes,
	// used by the filter's write-suppression gate (lanes of a suppressed
	// multi-lane write must provably touch disjoint shadow cells so
	// same-value counters cannot drift). 0 means 1.
	FilterGranularity int
}

// ErrStepBudget is returned (wrapped) when a launch exceeds
// LaunchConfig.MaxWarpInstrs.
var ErrStepBudget = fmt.Errorf("gpusim: warp instruction budget exceeded")

// Stats summarises one launch.
type Stats struct {
	WarpInstrs   uint64      // dynamic warp-level instructions executed
	ThreadInstrs uint64      // dynamic per-lane instructions executed
	Records      uint64      // records emitted to the sink
	Barriers     uint64      // block barrier episodes completed
	Divergences  uint64      // dynamic divergent branches
	Filter       FilterStats // producer-side filter activity (zero when off)
}

// FilterStats counts producer-side filter activity. All fields are zero
// unless LaunchConfig.ProducerFilter was active for the launch.
type FilterStats struct {
	Probes       uint64 // dynamic filter-cache probes
	Hits         uint64 // records suppressed by the dynamic cache
	StaticElides uint64 // records elided at statically marked log-once sites
	Flushes      uint64 // OpFlush reconciliation records emitted
}

// Suppressed returns the total number of access records the filter kept
// off the queue.
func (f FilterStats) Suppressed() uint64 { return f.Hits + f.StaticElides }

// stackRole distinguishes SIMT stack entries for If/Else/Fi event emission.
type stackRole uint8

const (
	roleTop    stackRole = iota // base entry or reconvergence continuation
	roleFirst                   // first-executing divergent path
	roleSecond                  // second-executing divergent path
)

type stackEntry struct {
	pc   int
	rpc  int // reconvergence pc (-1 for the base entry)
	mask uint32
	role stackRole
}

type warpState struct {
	blk      *blockState
	widx     int    // warp index within the block
	gwid     int    // global warp id
	baseTID  int    // global TID of lane 0
	fullMask uint32 // lanes populated at launch (partial last warp)
	exited   uint32
	stack    []stackEntry
	regs     []uint64 // lane-major: regs[lane*nRegs+r]
	preds    []bool
	local    []byte // lane-private local memory, localBytes per lane
	waiting  bool   // parked at a barrier
	done     bool

	// Producer-side filter state (see filter.go). fgen is monotone over
	// the warpState's lifetime — including arena reuse across launches —
	// so stale cache slots are invalidated by a single increment.
	fgen   uint64
	fpend  uint64     // suppressed records not yet reconciled via OpFlush
	fslots []fslot    // dynamic direct-mapped cache (lazy)
	fonce  []onceSlot // per static log-once site (lazy)
}

type blockState struct {
	idx      int // linear block id
	shared   []byte
	warps    []*warpState
	liveWarp int // warps not done
}

type engine struct {
	mod       *Module
	lk        *loadedKernel
	code      []cInstr
	dev       *Device
	cfg       LaunchConfig
	grid      Dim3
	block     Dim3
	bsz       int // threads per block
	wpb       int // warps per block
	ws        int // warp width (lanes per warp)
	rng       *rand.Rand
	laneMajor bool // run the legacy per-lane dispatch path (A/B baseline)
	stats     Stats
	rec       logging.Record // scratch record
	syncSeq   uint64         // global ordering for synchronization records

	// Producer-side filter (see filter.go).
	filtOn       bool
	fGran        uint64         // shadow granularity for the write gate
	fWriteEpoch  uint64         // emitted global write/atomic/sync records
	fAccessEpoch uint64         // emitted global memory records of any kind
	frec         logging.Record // scratch for OpFlush (must not alias rec)
}

// Launch runs a kernel to completion and returns execution statistics.
func (mod *Module) Launch(name string, cfg LaunchConfig) (Stats, error) {
	lk := mod.kernels[name]
	if lk == nil {
		return Stats{}, fmt.Errorf("gpusim: unknown kernel %q", name)
	}
	if len(cfg.Args) != len(lk.cfg.Kernel.Params) {
		return Stats{}, fmt.Errorf("gpusim: kernel %s wants %d args, got %d",
			name, len(lk.cfg.Kernel.Params), len(cfg.Args))
	}
	code, err := mod.compile(lk)
	if err != nil {
		return Stats{}, err
	}
	e := &engine{
		mod:   mod,
		lk:    lk,
		code:  code,
		dev:   mod.Dev,
		cfg:   cfg,
		grid:  cfg.Grid.norm(),
		block: cfg.Block.norm(),
	}
	e.bsz = e.block.Count()
	if e.bsz == 0 || e.grid.Count() == 0 {
		return Stats{}, fmt.Errorf("gpusim: empty launch configuration")
	}
	e.ws = cfg.WarpSize
	if e.ws == 0 {
		e.ws = WarpSize
	}
	if e.ws < 2 || e.ws > 32 {
		return Stats{}, fmt.Errorf("gpusim: warp size %d out of range [2,32]", e.ws)
	}
	e.wpb = (e.bsz + e.ws - 1) / e.ws
	e.laneMajor = cfg.LaneMajor
	e.filtOn = cfg.ProducerFilter && !e.laneMajor &&
		cfg.Sink != nil && cfg.EmitBranchEvents
	e.fGran = uint64(cfg.FilterGranularity)
	if e.fGran == 0 {
		e.fGran = 1
	}
	if cfg.RandomSched {
		e.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if err := e.run(); err != nil {
		return e.stats, fmt.Errorf("gpusim: kernel %s: %w", name, err)
	}
	return e.stats, nil
}

func (e *engine) newBlock(ar *launchArena, idx int) *blockState {
	if ar != nil {
		if blk, ok := ar.takeBlock(e, idx); ok {
			return blk
		}
	}
	blk := &blockState{
		idx:    idx,
		shared: make([]byte, e.lk.sharedBytes),
		warps:  make([]*warpState, e.wpb),
	}
	for wi := 0; wi < e.wpb; wi++ {
		lanes := e.bsz - wi*e.ws
		if lanes > e.ws {
			lanes = e.ws
		}
		var mask uint32
		if lanes == 32 {
			mask = ^uint32(0)
		} else {
			mask = (1 << uint(lanes)) - 1
		}
		w := &warpState{
			blk:      blk,
			widx:     wi,
			gwid:     idx*e.wpb + wi,
			baseTID:  idx*e.bsz + wi*e.ws,
			fullMask: mask,
			stack:    []stackEntry{{pc: 0, rpc: -1, mask: mask, role: roleTop}},
			regs:     make([]uint64, e.ws*e.lk.nRegs),
			preds:    make([]bool, e.ws*max(e.lk.nPreds, 1)),
		}
		if e.lk.localBytes > 0 {
			w.local = make([]byte, e.ws*int(e.lk.localBytes))
		}
		blk.warps[wi] = w
	}
	blk.liveWarp = e.wpb
	return blk
}

func (e *engine) run() error {
	nBlocks := e.grid.Count()
	maxRes := e.cfg.MaxResidentBlocks
	if maxRes <= 0 {
		maxRes = 48
	}
	if maxRes > nBlocks {
		maxRes = nBlocks
	}
	ar := e.acquireArena()
	var resident []*blockState
	var order []*warpState
	if ar != nil {
		resident, order = ar.resident[:0], ar.order[:0]
	} else {
		resident = make([]*blockState, 0, maxRes)
		order = make([]*warpState, 0, maxRes*e.wpb)
	}
	defer func() {
		if ar != nil {
			// Keep the (possibly grown) scratch slices for the next launch.
			ar.resident, ar.order = resident[:0], order[:0]
			e.releaseArena(ar)
		}
	}()
	nextBlock := 0
	for len(resident) < maxRes {
		resident = append(resident, e.newBlock(ar, nextBlock))
		nextBlock++
	}
	for len(resident) > 0 {
		// Gather runnable warps for this pass.
		order = order[:0]
		for _, blk := range resident {
			for _, w := range blk.warps {
				if !w.done && !w.waiting {
					order = append(order, w)
				}
			}
		}
		if len(order) == 0 {
			// Everyone is waiting or done but barriers did not release:
			// should be impossible (release is checked on every park).
			return fmt.Errorf("scheduler deadlock: all warps parked")
		}
		if e.rng != nil {
			e.rng.Shuffle(len(order), func(i, j int) {
				order[i], order[j] = order[j], order[i]
			})
		}
		for _, w := range order {
			if w.done || w.waiting {
				continue // barrier may have parked it mid-pass
			}
			if err := e.stepWarp(w); err != nil {
				return err
			}
			if e.cfg.MaxWarpInstrs > 0 && e.stats.WarpInstrs > e.cfg.MaxWarpInstrs {
				return fmt.Errorf("%w after %d instructions", ErrStepBudget, e.stats.WarpInstrs)
			}
		}
		// Retire finished blocks into the arena and bring in the next wave.
		keep := resident[:0]
		for _, blk := range resident {
			if blk.liveWarp > 0 {
				keep = append(keep, blk)
				continue
			}
			if ar != nil {
				ar.free = append(ar.free, blk)
			}
			if nextBlock < nBlocks {
				keep = append(keep, e.newBlock(ar, nextBlock))
				nextBlock++
			}
		}
		resident = keep
	}
	return nil
}

// effMask returns the top entry's mask with exited lanes removed.
func (w *warpState) effMask() uint32 {
	return w.stack[len(w.stack)-1].mask &^ w.exited
}

// popEntry pops the top SIMT stack entry, emitting Else/Fi divergence
// events as paths complete.
func (e *engine) popEntry(w *warpState) {
	top := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	if len(w.stack) == 0 {
		if e.filtOn {
			e.filterFlush(w) // reconcile suppressed counts at warp exit
		}
		w.done = true
		w.blk.liveWarp--
		return
	}
	switch top.role {
	case roleFirst:
		// The second path begins: logically concurrent with the first.
		e.emitBranch(w, trace.OpElse, w.effMask())
	case roleSecond:
		// Both paths complete; lockstep resumes at the reconvergence
		// entry.
		e.emitBranch(w, trace.OpFi, w.effMask())
	}
}

func (e *engine) emitBranch(w *warpState, kind trace.OpKind, mask uint32) {
	if e.cfg.Sink == nil || !e.cfg.EmitBranchEvents {
		return
	}
	if e.filtOn {
		// Divergence events split/merge the warp's PTVC groups: flush the
		// pending suppressed count under the old format and invalidate the
		// caches before the event reaches the detector.
		e.filterBump(w)
	}
	e.rec = logging.Record{
		Warp:  uint32(w.gwid),
		Block: uint32(w.blk.idx),
		Op:    kind,
		Mask:  mask,
	}
	e.cfg.Sink.Emit(&e.rec)
	e.stats.Records++
}

// parkAtBarrier marks w as waiting and releases the block's barrier when
// every live warp has arrived. On release it emits a synthesized
// barrier-release record carrying the arrived-warp mask, which the
// detector uses to apply the block-wide BAR join.
func (e *engine) parkAtBarrier(w *warpState) {
	w.waiting = true
	for _, o := range w.blk.warps {
		if !o.done && !o.waiting {
			return
		}
	}
	var arrived uint32
	for _, o := range w.blk.warps {
		if o.waiting {
			arrived |= 1 << uint(o.widx)
		}
		o.waiting = false
	}
	e.stats.Barriers++
	if e.cfg.Sink != nil && e.cfg.EmitBranchEvents {
		if e.filtOn {
			// The release joins every warp's clock block-wide: flush all
			// pending counts (same block queue, so FIFO delivers them ahead
			// of the release) and start a fresh generation for each warp.
			for _, o := range w.blk.warps {
				e.filterBump(o)
			}
		}
		e.rec = logging.Record{
			Block: uint32(w.blk.idx),
			Op:    trace.OpBarRel,
			Mask:  arrived,
		}
		e.cfg.Sink.Emit(&e.rec)
		e.stats.Records++
	}
}

// execError decorates an error with source position.
func (e *engine) execError(pc int, format string, args ...any) error {
	line := 0
	if pc < len(e.lk.cfg.Instrs) {
		line = e.lk.cfg.Instrs[pc].Line
	}
	return fmt.Errorf("pc %d (line %d): %s", pc, line, fmt.Sprintf(format, args...))
}
