package gpusim

import (
	"math"
	"testing"
)

// run1 executes a single-thread kernel that writes results into out.
func run1(t *testing.T, body string, outWords int) []uint32 {
	t.Helper()
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<16>;
	.reg .u64 %rd<16>;
	.reg .f32 %f<8>;
	.reg .f64 %fd<8>;
	.reg .pred %p<4>;
	ld.param.u64 %rd1, [out];
`+body+`
	ret;
}`)
	out := d.MustAlloc(4 * outWords)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint32, outWords)
	for i := range vals {
		vals[i], _ = d.ReadU32(out + uint64(4*i))
	}
	return vals
}

func TestCvtFloatToInt(t *testing.T) {
	v := run1(t, `
	mov.f32 %f1, 3.75;
	cvt.u32.f32 %r1, %f1;
	st.global.u32 [%rd1], %r1;
	mov.f32 %f2, -2.5;
	cvt.s32.f32 %r2, %f2;
	st.global.u32 [%rd1+4], %r2;`, 2)
	if v[0] != 3 {
		t.Errorf("cvt.u32.f32(3.75) = %d, want 3", v[0])
	}
	if int32(v[1]) != -2 {
		t.Errorf("cvt.s32.f32(-2.5) = %d, want -2", int32(v[1]))
	}
}

func TestCvtIntToFloat(t *testing.T) {
	v := run1(t, `
	mov.u32 %r1, 5;
	cvt.f32.u32 %f1, %r1;
	st.global.f32 [%rd1], %f1;
	mov.u32 %r2, -3;
	cvt.f32.s32 %f2, %r2;
	st.global.f32 [%rd1+4], %f2;`, 2)
	if math.Float32frombits(v[0]) != 5.0 {
		t.Errorf("cvt.f32.u32(5) = %v", math.Float32frombits(v[0]))
	}
	if math.Float32frombits(v[1]) != -3.0 {
		t.Errorf("cvt.f32.s32(-3) = %v", math.Float32frombits(v[1]))
	}
}

func TestF64Arithmetic(t *testing.T) {
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u64 %rd<4>;
	.reg .f64 %fd<4>;
	ld.param.u64 %rd1, [out];
	mov.f64 %fd1, 1.25;
	mov.f64 %fd2, 2.5;
	mul.f64 %fd3, %fd1, %fd2;
	st.global.f64 [%rd1], %fd3;
	div.f64 %fd3, %fd2, %fd1;
	st.global.f64 [%rd1+8], %fd3;
	ret;
}`)
	out := d.MustAlloc(16)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	v1, _ := d.ReadU64(out)
	if math.Float64frombits(v1) != 3.125 {
		t.Errorf("f64 mul = %v", math.Float64frombits(v1))
	}
	v2, _ := d.ReadU64(out + 8)
	if math.Float64frombits(v2) != 2.0 {
		t.Errorf("f64 div = %v", math.Float64frombits(v2))
	}
}

func TestAtomIncDec(t *testing.T) {
	// atom.inc wraps to 0 past the bound; atom.dec wraps to the bound
	// below 0 — the CUDA ring-buffer semantics.
	v := run1(t, `
	st.global.u32 [%rd1], 2;
	atom.global.inc.u32 %r1, [%rd1], 2;
	atom.global.inc.u32 %r2, [%rd1], 2;
	st.global.u32 [%rd1+4], %r1;
	st.global.u32 [%rd1+8], %r2;
	st.global.u32 [%rd1+12], 0;
	atom.global.dec.u32 %r3, [%rd1+12], 5;
	ld.global.u32 %r4, [%rd1+12];
	st.global.u32 [%rd1+12], %r4;`, 4)
	if v[1] != 2 { // old value was 2 (== bound) -> wraps to 0
		t.Errorf("first inc returned %d, want 2", v[1])
	}
	if v[2] != 0 { // wrapped
		t.Errorf("second inc returned %d, want 0", v[2])
	}
	if v[3] != 5 { // dec of 0 wraps to bound
		t.Errorf("dec(0, bound 5) left %d, want 5", v[3])
	}
}

func TestNotNegSelp(t *testing.T) {
	v := run1(t, `
	mov.u32 %r1, 0x0f0f0f0f;
	not.b32 %r2, %r1;
	st.global.u32 [%rd1], %r2;
	mov.u32 %r3, 5;
	neg.s32 %r4, %r3;
	st.global.u32 [%rd1+4], %r4;
	setp.eq.u32 %p1, %r3, 6;
	selp.u32 %r5, 111, 222, %p1;
	st.global.u32 [%rd1+8], %r5;`, 3)
	if v[0] != 0xf0f0f0f0 {
		t.Errorf("not = %#x", v[0])
	}
	if int32(v[1]) != -5 {
		t.Errorf("neg = %d", int32(v[1]))
	}
	if v[2] != 222 {
		t.Errorf("selp = %d", v[2])
	}
}

func TestRemAndDivByZero(t *testing.T) {
	v := run1(t, `
	mov.u32 %r1, 17;
	mov.u32 %r2, 5;
	rem.u32 %r3, %r1, %r2;
	st.global.u32 [%rd1], %r3;
	mov.u32 %r4, 0;
	div.u32 %r5, %r1, %r4;
	st.global.u32 [%rd1+4], %r5;
	rem.u32 %r6, %r1, %r4;
	st.global.u32 [%rd1+8], %r6;`, 3)
	if v[0] != 2 {
		t.Errorf("rem = %d", v[0])
	}
	// Division by zero is unspecified in PTX; we define it as 0 rather
	// than faulting.
	if v[1] != 0 || v[2] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", v[1], v[2])
	}
}

func TestSubByteLoadsStores(t *testing.T) {
	v := run1(t, `
	st.global.u32 [%rd1], 0;
	mov.u32 %r1, 0x1ff;
	st.global.u8 [%rd1], %r1;
	ld.global.u8 %r2, [%rd1];
	st.global.u32 [%rd1+4], %r2;
	mov.u32 %r3, -1;
	st.global.u32 [%rd1+8], 0;
	st.global.u16 [%rd1+8], %r3;
	ld.global.s16 %r4, [%rd1+8];
	st.global.u32 [%rd1+12], %r4;`, 4)
	if v[1] != 0xff {
		t.Errorf("u8 store/load = %#x, want 0xff (truncated)", v[1])
	}
	if int32(v[3]) != -1 {
		t.Errorf("s16 load = %d, want -1 (sign-extended)", int32(v[3]))
	}
}

func TestFloatCompareAndMinMax(t *testing.T) {
	v := run1(t, `
	mov.f32 %f1, 1.5;
	mov.f32 %f2, -2.5;
	min.f32 %f3, %f1, %f2;
	st.global.f32 [%rd1], %f3;
	max.f32 %f4, %f1, %f2;
	st.global.f32 [%rd1+4], %f4;
	setp.gt.f32 %p1, %f1, %f2;
	selp.u32 %r1, 1, 0, %p1;
	st.global.u32 [%rd1+8], %r1;`, 3)
	if math.Float32frombits(v[0]) != -2.5 {
		t.Errorf("min.f32 = %v", math.Float32frombits(v[0]))
	}
	if math.Float32frombits(v[1]) != 1.5 {
		t.Errorf("max.f32 = %v", math.Float32frombits(v[1]))
	}
	if v[2] != 1 {
		t.Errorf("setp.gt.f32 = %d", v[2])
	}
}

func TestBraUniUnderDivergence(t *testing.T) {
	// bra.uni on a divergent path: uniform within the active mask.
	d, mod := loadKernel(t, `
.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 8;
	@%p1 bra A;
	mov.u32 %r2, 1;
	bra.uni J;
A:
	mov.u32 %r2, 2;
	bra.uni J;
J:
	shl.b32 %r3, %r1, 2;
	cvt.u64.u32 %rd2, %r3;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r2;
	ret;
}`)
	out := d.MustAlloc(4 * 16)
	if _, err := mod.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(16), Args: []uint64{out}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		v, _ := d.ReadU32(out + uint64(4*i))
		want := uint32(1)
		if i < 8 {
			want = 2
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}
