package gpusim

import (
	"fmt"
	"math"
	"math/bits"

	"barracuda/internal/logging"
	"barracuda/internal/ptx"
	"barracuda/internal/staticanalysis"
	"barracuda/internal/trace"
)

// symKind classifies a resolved symbol reference.
type symKind uint8

const (
	symNone   symKind = iota
	symGlobal         // module-level .global variable: symAddr is a device address
	symShared         // kernel .shared variable: symAddr is a shared-memory offset
	symParam          // kernel parameter: symAddr is the parameter index
	symLocal          // kernel .local variable: symAddr is a per-thread offset
)

// cOperand is a compiled operand with registers resolved to dense indices
// and symbols resolved to addresses.
type cOperand struct {
	kind    ptx.OperandKind
	reg     int // register-file index (general or predicate)
	isPred  bool
	imm     uint64
	f       float64
	sreg    ptx.Sreg
	baseReg int // memory base register index, -1 when symbol-based
	off     int64
	symK    symKind
	symAddr uint64
}

// cInstr is a compiled instruction.
type cInstr struct {
	op       ptx.Op
	in       *ptx.Instr
	guard    int // predicate index, -1 when unguarded
	guardNeg bool
	hasDst   bool
	dst      cOperand
	args     []cOperand
	size     int // operand size in bytes from the instruction type
	target   int // branch target pc
	rpc      int // precomputed reconvergence pc for conditional branches

	// Warp-major execution (selected once at compile time).
	fn      warpHandler // per-opcode warp-level handler
	uniform bool        // all inputs warp-uniform: execute once, broadcast

	// _log record template, precomputed so execLog only fills the
	// launch-dependent fields (warp, block, mask, addresses, values).
	logTmpl   *logging.Record
	logSkip   bool // If/Else/Fi marker: runtime no-op
	logBar    bool // barrier record (no address payload)
	logSync   bool // acquire/release record: stamp the global Seq
	logVal    bool // carries a stored-value operand (write records)
	logAddrOK bool // has a well-formed address operand
	logOnce   int  // static log-once site index, -1 when unmarked
}

// compile lowers a loaded kernel's instructions into executable form,
// resolving registers, labels and symbols. The result is cached.
func (mod *Module) compile(lk *loadedKernel) ([]cInstr, error) {
	if lk.code != nil {
		return lk.code, nil
	}
	ins := lk.cfg.Instrs
	code := make([]cInstr, len(ins))
	for i, in := range ins {
		ci := cInstr{op: in.Op, in: in, guard: -1, size: in.Type.Size(), target: -1, rpc: -1}
		if in.Guard != nil {
			gi, ok := lk.predIdx[in.Guard.Reg]
			if !ok {
				return nil, fmt.Errorf("gpusim: %s line %d: undeclared predicate %s", lk.name, in.Line, in.Guard.Reg)
			}
			ci.guard = gi
			ci.guardNeg = in.Guard.Neg
		}
		if in.HasDst {
			d, err := mod.compileOperand(lk, in, in.Dst)
			if err != nil {
				return nil, err
			}
			ci.dst = d
			ci.hasDst = true
		}
		ci.args = make([]cOperand, len(in.Args))
		for j, a := range in.Args {
			ca, err := mod.compileOperand(lk, in, a)
			if err != nil {
				return nil, err
			}
			ci.args[j] = ca
		}
		if in.Op == ptx.OpBra {
			if len(in.Args) != 1 || in.Args[0].Kind != ptx.OpndLabel {
				return nil, fmt.Errorf("gpusim: %s line %d: malformed bra", lk.name, in.Line)
			}
			t, ok := lk.cfg.LabelAt[in.Args[0].Sym]
			if !ok {
				return nil, fmt.Errorf("gpusim: %s line %d: undefined label %s", lk.name, in.Line, in.Args[0].Sym)
			}
			ci.target = t
			ci.rpc = lk.cfg.ReconvergencePC(i)
		}
		code[i] = ci
	}
	// Warp-major lowering: pick the per-opcode handler, thread the static
	// warp-uniformity facts in for scalarization, and precompute _log
	// record templates. All cached with the compiled code.
	uni := staticanalysis.ComputeUniformity(lk.cfg)
	nOnce := 0
	for i := range code {
		ci := &code[i]
		ci.fn = selectHandler(ci)
		if scalarizableOp(ci) {
			ci.uniform = uni.InputsUniform(i)
		}
		if ci.op == ptx.OpLog {
			prepLog(ci)
			if ci.in.LogOnce && !ci.logSkip && !ci.logBar && !ci.logSync {
				ci.logOnce = nOnce
				nOnce++
			}
		}
	}
	lk.nOnce = nOnce
	lk.code = code
	return code, nil
}

// prepLog precomputes the launch-invariant part of a _log record.
func prepLog(ci *cInstr) {
	ci.logOnce = -1
	k := trace.FromLogKind(ci.in.LogK)
	switch k {
	case trace.OpIf, trace.OpElse, trace.OpFi:
		ci.logSkip = true
		return
	}
	rec := &logging.Record{Op: k, PC: uint32(ci.in.Line)}
	if k == trace.OpBar {
		ci.logBar = true
		ci.logTmpl = rec
		return
	}
	rec.Size = uint8(ci.in.AccSz)
	switch ci.in.Space {
	case ptx.SpaceShared:
		rec.Space = logging.SpaceShared
	case ptx.SpaceLocal:
		rec.Space = logging.SpaceLocal
	default:
		rec.Space = logging.SpaceGlobal
	}
	ci.logSync = k.IsSync()
	ci.logVal = len(ci.args) > 1
	ci.logAddrOK = len(ci.args) > 0 && ci.args[0].kind == ptx.OpndMem
	ci.logTmpl = rec
}

func (mod *Module) compileOperand(lk *loadedKernel, in *ptx.Instr, o ptx.Operand) (cOperand, error) {
	c := cOperand{kind: o.Kind, reg: -1, baseReg: -1}
	switch o.Kind {
	case ptx.OpndReg:
		if pi, ok := lk.predIdx[o.Reg]; ok {
			c.reg = pi
			c.isPred = true
		} else if ri, ok := lk.regIdx[o.Reg]; ok {
			c.reg = ri
		} else {
			return c, fmt.Errorf("gpusim: %s line %d: undeclared register %s", lk.name, in.Line, o.Reg)
		}
	case ptx.OpndImm:
		c.imm = uint64(o.Imm)
		c.f = float64(o.Imm)
	case ptx.OpndFImm:
		c.f = o.F
	case ptx.OpndSreg:
		c.sreg = o.Sreg
	case ptx.OpndMem:
		c.off = o.Off
		if o.BaseReg != "" {
			ri, ok := lk.regIdx[o.BaseReg]
			if !ok {
				return c, fmt.Errorf("gpusim: %s line %d: undeclared register %s", lk.name, in.Line, o.BaseReg)
			}
			c.baseReg = ri
		} else {
			k, addr, err := mod.resolveSym(lk, o.BaseSym)
			if err != nil {
				return c, fmt.Errorf("gpusim: %s line %d: %w", lk.name, in.Line, err)
			}
			c.symK, c.symAddr = k, addr
		}
	case ptx.OpndSym:
		k, addr, err := mod.resolveSym(lk, o.Sym)
		if err != nil {
			return c, fmt.Errorf("gpusim: %s line %d: %w", lk.name, in.Line, err)
		}
		c.symK, c.symAddr = k, addr
	case ptx.OpndLabel:
		// handled by the bra special case
	}
	return c, nil
}

func (mod *Module) resolveSym(lk *loadedKernel, name string) (symKind, uint64, error) {
	if off, ok := lk.sharedOff[name]; ok {
		return symShared, off, nil
	}
	if off, ok := lk.localOff[name]; ok {
		return symLocal, off, nil
	}
	if addr, ok := mod.globals[name]; ok {
		return symGlobal, addr, nil
	}
	if pi, ok := lk.params[name]; ok {
		return symParam, uint64(pi), nil
	}
	return symNone, 0, fmt.Errorf("undefined symbol %q", name)
}

// reg returns lane's value of general register r.
func (e *engine) reg(w *warpState, lane, r int) uint64 {
	return w.regs[lane*e.lk.nRegs+r]
}

func (e *engine) setRegRaw(w *warpState, lane, r int, v uint64) {
	w.regs[lane*e.lk.nRegs+r] = v
}

func (e *engine) pred(w *warpState, lane, p int) bool {
	return w.preds[lane*e.lk.nPreds+p]
}

func (e *engine) setPred(w *warpState, lane, p int, v bool) {
	w.preds[lane*e.lk.nPreds+p] = v
}

// val evaluates a scalar operand for one lane.
func (e *engine) val(w *warpState, lane int, o *cOperand) uint64 {
	switch o.kind {
	case ptx.OpndReg:
		if o.isPred {
			if e.pred(w, lane, o.reg) {
				return 1
			}
			return 0
		}
		return e.reg(w, lane, o.reg)
	case ptx.OpndImm:
		return o.imm
	case ptx.OpndFImm:
		return math.Float64bits(o.f)
	case ptx.OpndSreg:
		return e.sregVal(w, lane, o.sreg)
	case ptx.OpndSym:
		return o.symAddr // address of a global / offset of a shared var
	}
	return 0
}

// fval evaluates an operand as a floating-point value of the given type.
func (e *engine) fval(w *warpState, lane int, o *cOperand, t ptx.Type) float64 {
	switch o.kind {
	case ptx.OpndFImm, ptx.OpndImm:
		return o.f
	default:
		bits64 := e.val(w, lane, o)
		if t == ptx.F32 {
			return float64(math.Float32frombits(uint32(bits64)))
		}
		return math.Float64frombits(bits64)
	}
}

func fbits(f float64, t ptx.Type) uint64 {
	if t == ptx.F32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

// sregVal computes a special register value for a lane.
func (e *engine) sregVal(w *warpState, lane int, s ptx.Sreg) uint64 {
	lin := w.widx*e.ws + lane // thread linear index within block
	b := e.block
	g := e.grid
	blk := w.blk.idx
	switch s {
	case ptx.SregTidX:
		return uint64(lin % b.X)
	case ptx.SregTidY:
		return uint64((lin / b.X) % b.Y)
	case ptx.SregTidZ:
		return uint64(lin / (b.X * b.Y))
	case ptx.SregNtidX:
		return uint64(b.X)
	case ptx.SregNtidY:
		return uint64(b.Y)
	case ptx.SregNtidZ:
		return uint64(b.Z)
	case ptx.SregCtaidX:
		return uint64(blk % g.X)
	case ptx.SregCtaidY:
		return uint64((blk / g.X) % g.Y)
	case ptx.SregCtaidZ:
		return uint64(blk / (g.X * g.Y))
	case ptx.SregNctaidX:
		return uint64(g.X)
	case ptx.SregNctaidY:
		return uint64(g.Y)
	case ptx.SregNctaidZ:
		return uint64(g.Z)
	case ptx.SregLaneid:
		return uint64(lane)
	case ptx.SregWarpid:
		return uint64(w.widx)
	case ptx.SregWarpSize:
		return uint64(e.ws)
	}
	return 0
}

// laneAddr computes the effective address of a memory operand for a lane.
func (e *engine) laneAddr(w *warpState, lane int, o *cOperand) uint64 {
	if o.baseReg >= 0 {
		return e.reg(w, lane, o.baseReg) + uint64(o.off)
	}
	return o.symAddr + uint64(o.off)
}

func truncTo(v uint64, size int) uint64 {
	if size >= 8 || size <= 0 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

func signExt(v uint64, size int) int64 {
	switch size {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// stepWarp executes one warp-level instruction.
func (e *engine) stepWarp(w *warpState) error {
	// Resolve a runnable top entry, popping completed paths.
	for {
		if w.done {
			return nil
		}
		top := &w.stack[len(w.stack)-1]
		if top.pc >= len(e.code) || top.pc == top.rpc || top.mask&^w.exited == 0 {
			e.popEntry(w)
			continue
		}
		break
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.pc
	ci := &e.code[pc]
	eff := top.mask &^ w.exited

	// Apply a guard to non-branch instructions per lane.
	exec := eff
	if ci.guard >= 0 && ci.op != ptx.OpBra {
		exec = 0
		for m := eff; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if e.pred(w, lane, ci.guard) != ci.guardNeg {
				exec |= 1 << uint(lane)
			}
		}
	}
	e.stats.WarpInstrs++
	e.stats.ThreadInstrs += uint64(bits.OnesCount32(exec))

	switch ci.op {
	case ptx.OpBra:
		return e.execBranch(w, top, ci, eff)
	case ptx.OpRet, ptx.OpExit:
		w.exited |= exec
		top.pc++
		return nil
	case ptx.OpBar:
		top.pc++
		e.parkAtBarrier(w)
		return nil
	case ptx.OpMembar:
		top.pc++
		return nil
	case ptx.OpLog:
		var err error
		if e.laneMajor {
			err = e.execLogLaneMajor(w, ci, exec)
		} else {
			err = e.execLog(w, ci, exec)
		}
		if err != nil {
			return e.execError(pc, "%v", err)
		}
		top.pc++
		return nil
	}

	if e.laneMajor {
		// A/B reference path: per-lane dispatch, exactly the pre-warp-major
		// interpreter shape.
		for lane := 0; lane < e.ws; lane++ {
			if exec&(1<<uint(lane)) == 0 {
				continue
			}
			if err := e.execLane(w, ci, lane); err != nil {
				return e.execError(pc, "lane %d: %v", lane, err)
			}
		}
		top.pc++
		return nil
	}
	if exec != 0 {
		if ci.uniform {
			if err := e.execUniform(w, ci, exec); err != nil {
				return e.execError(pc, "%v", err)
			}
		} else if err := ci.fn(e, w, ci, exec); err != nil {
			return e.execError(pc, "%v", err)
		}
	}
	top.pc++
	return nil
}

// execBranch handles (possibly guarded, possibly divergent) branches.
func (e *engine) execBranch(w *warpState, top *stackEntry, ci *cInstr, eff uint32) error {
	if ci.guard < 0 {
		top.pc = ci.target
		return nil
	}
	var taken uint32
	for lane := 0; lane < e.ws; lane++ {
		if eff&(1<<uint(lane)) == 0 {
			continue
		}
		if e.pred(w, lane, ci.guard) != ci.guardNeg {
			taken |= 1 << uint(lane)
		}
	}
	notTaken := eff &^ taken
	switch {
	case taken == 0:
		top.pc++
	case notTaken == 0:
		top.pc = ci.target
	default:
		// Divergence: the current entry becomes the reconvergence
		// continuation; the fall-through path executes first, then the
		// taken path (the order is architecturally arbitrary, §3.3.1).
		e.stats.Divergences++
		rpc := ci.rpc
		fallPC := top.pc + 1
		top.pc = rpc
		w.stack = append(w.stack,
			stackEntry{pc: ci.target, rpc: rpc, mask: taken, role: roleSecond},
			stackEntry{pc: fallPC, rpc: rpc, mask: notTaken, role: roleFirst},
		)
		e.emitBranch(w, trace.OpIf, notTaken)
	}
	return nil
}

// execLog emits a warp-level record for a `_log.*` pseudo-instruction using
// the record template precomputed at compile time; only the warp, block,
// mask, addresses and values are filled at runtime. When the site's address
// inputs are warp-uniform the address is computed once and broadcast.
// If/Else/Fi markers are no-ops at runtime: the semantic divergence events
// are emitted by the SIMT stack machinery, which knows the actual masks.
func (e *engine) execLog(w *warpState, ci *cInstr, exec uint32) error {
	if ci.logSkip || e.cfg.Sink == nil || exec == 0 {
		return nil
	}
	if e.filtOn {
		// The filtered path is a separate function so that with the filter
		// off this emission path stays byte-for-byte the A/B baseline.
		return e.execLogFiltered(w, ci, exec)
	}
	rec := &e.rec
	*rec = *ci.logTmpl
	rec.Warp = uint32(w.gwid)
	rec.Block = uint32(w.blk.idx)
	rec.Mask = exec
	if ci.logBar {
		e.cfg.Sink.Emit(rec)
		e.stats.Records++
		return nil
	}
	if !ci.logAddrOK {
		return fmt.Errorf("_log.%v without address operand", ci.in.LogK)
	}
	if ci.logSync {
		e.syncSeq++
		rec.Seq = e.syncSeq
	}
	a0 := &ci.args[0]
	if ci.uniform {
		first := bits.TrailingZeros32(exec)
		addr := e.laneAddr(w, first, a0)
		var v uint64
		if ci.logVal {
			v = e.val(w, first, &ci.args[1])
		}
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			rec.Addrs[lane] = addr
			if ci.logVal {
				rec.Vals[lane] = v
			}
		}
		// A broadcast address is stride-0, coalesced only in the
		// degenerate single-lane case.
		if exec&(exec-1) == 0 && !ci.logSync && rec.Size != 0 {
			rec.Flags = logging.FlagCoalesced
			rec.Base = addr
		}
	} else {
		// Classify while filling: a contiguous ascending run over the
		// active lanes with stride == Size gets the compact coalesced
		// encoding, so the transport can skip the address array.
		coal := true
		first := true
		var base, next uint64
		for m := exec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a := e.laneAddr(w, lane, a0)
			rec.Addrs[lane] = a
			if ci.logVal {
				rec.Vals[lane] = e.val(w, lane, &ci.args[1])
			}
			switch {
			case first:
				base, next, first = a, a+uint64(rec.Size), false
			case a == next:
				next += uint64(rec.Size)
			default:
				coal = false
			}
		}
		if coal && !ci.logSync && rec.Size != 0 {
			rec.Flags = logging.FlagCoalesced
			rec.Base = base
		}
	}
	e.cfg.Sink.Emit(rec)
	e.stats.Records++
	return nil
}

// execLogLaneMajor is the pre-template _log emission path, kept verbatim as
// the LaneMajor A/B baseline.
func (e *engine) execLogLaneMajor(w *warpState, ci *cInstr, exec uint32) error {
	if e.cfg.Sink == nil || exec == 0 {
		return nil
	}
	k := trace.FromLogKind(ci.in.LogK)
	switch k {
	case trace.OpIf, trace.OpElse, trace.OpFi:
		return nil
	case trace.OpBar:
		e.rec = logging.Record{
			Warp:  uint32(w.gwid),
			Block: uint32(w.blk.idx),
			Op:    trace.OpBar,
			Mask:  exec,
			PC:    uint32(ci.in.Line),
		}
		e.cfg.Sink.Emit(&e.rec)
		e.stats.Records++
		return nil
	}
	if len(ci.args) == 0 || ci.args[0].kind != ptx.OpndMem {
		return fmt.Errorf("_log.%v without address operand", ci.in.LogK)
	}
	e.rec = logging.Record{
		Warp:  uint32(w.gwid),
		Block: uint32(w.blk.idx),
		Op:    k,
		Size:  uint8(ci.in.AccSz),
		Mask:  exec,
		PC:    uint32(ci.in.Line),
	}
	if k.IsSync() {
		e.syncSeq++
		e.rec.Seq = e.syncSeq
	}
	switch ci.in.Space {
	case ptx.SpaceShared:
		e.rec.Space = logging.SpaceShared
	case ptx.SpaceLocal:
		e.rec.Space = logging.SpaceLocal
	default:
		e.rec.Space = logging.SpaceGlobal
	}
	// The optional second operand is the value being stored (write
	// records), used by the same-value intra-warp race filter.
	hasVal := len(ci.args) > 1
	for lane := 0; lane < e.ws; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		e.rec.Addrs[lane] = e.laneAddr(w, lane, &ci.args[0])
		if hasVal {
			e.rec.Vals[lane] = e.val(w, lane, &ci.args[1])
		}
	}
	e.cfg.Sink.Emit(&e.rec)
	e.stats.Records++
	return nil
}

// loadSpace reads size bytes from the instruction's memory space for a
// given lane (local memory is lane-private).
func (e *engine) loadSpace(w *warpState, lane int, space ptx.Space, addr uint64, size int) (uint64, error) {
	switch space {
	case ptx.SpaceShared:
		if addr+uint64(size) > uint64(len(w.blk.shared)) {
			return 0, fmt.Errorf("shared access [%#x,+%d) out of bounds (%d bytes)", addr, size, len(w.blk.shared))
		}
		return loadLE(w.blk.shared[addr:], size), nil
	case ptx.SpaceLocal:
		buf, err := e.localBuf(w, lane, addr, size)
		if err != nil {
			return 0, err
		}
		return loadLE(buf, size), nil
	case ptx.SpaceGlobal, ptx.SpaceNone:
		return e.dev.load(addr, size)
	}
	return 0, fmt.Errorf("unsupported memory space %v", space)
}

func (e *engine) storeSpace(w *warpState, lane int, space ptx.Space, addr uint64, size int, v uint64) error {
	switch space {
	case ptx.SpaceShared:
		if addr+uint64(size) > uint64(len(w.blk.shared)) {
			return fmt.Errorf("shared access [%#x,+%d) out of bounds (%d bytes)", addr, size, len(w.blk.shared))
		}
		storeLE(w.blk.shared[addr:], size, v)
		return nil
	case ptx.SpaceLocal:
		buf, err := e.localBuf(w, lane, addr, size)
		if err != nil {
			return err
		}
		storeLE(buf, size, v)
		return nil
	case ptx.SpaceGlobal, ptx.SpaceNone:
		return e.dev.store(addr, size, v)
	}
	return fmt.Errorf("unsupported memory space %v", space)
}

// localBuf returns the lane-private slice backing a local-memory access.
func (e *engine) localBuf(w *warpState, lane int, addr uint64, size int) ([]byte, error) {
	stride := uint64(e.lk.localBytes)
	if addr+uint64(size) > stride {
		return nil, fmt.Errorf("local access [%#x,+%d) out of bounds (%d bytes)", addr, size, stride)
	}
	base := uint64(lane) * stride
	return w.local[base+addr:], nil
}

// execLane executes one scalar instruction for one lane.
func (e *engine) execLane(w *warpState, ci *cInstr, lane int) error {
	in := ci.in
	t := in.Type
	size := ci.size
	switch ci.op {
	case ptx.OpMov, ptx.OpCvta:
		if t.Float() {
			e.setRegRaw(w, lane, ci.dst.reg, fbits(e.fval(w, lane, &ci.args[0], t), t))
		} else {
			e.setRegRaw(w, lane, ci.dst.reg, e.val(w, lane, &ci.args[0]))
		}

	case ptx.OpLd:
		if in.Space == ptx.SpaceParam {
			a := &ci.args[0]
			if a.symK != symParam {
				return fmt.Errorf("ld.param with non-parameter operand")
			}
			e.setRegRaw(w, lane, ci.dst.reg, e.cfg.Args[a.symAddr])
			return nil
		}
		if in.Vec > 1 {
			// ld.vN {d0..dN-1}, [addr]: dst plus Vec-1 leading args are
			// destinations; the address operand follows them.
			if len(ci.args) < in.Vec {
				return fmt.Errorf("vector load needs %d operands", in.Vec)
			}
			addr := e.laneAddr(w, lane, &ci.args[in.Vec-1])
			for i := 0; i < in.Vec; i++ {
				v, err := e.loadSpace(w, lane, in.Space, addr+uint64(i*size), size)
				if err != nil {
					return err
				}
				if t.Signed() {
					v = uint64(signExt(v, size))
				}
				dst := ci.dst.reg
				if i > 0 {
					dst = ci.args[i-1].reg
				}
				e.setRegRaw(w, lane, dst, v)
			}
			return nil
		}
		addr := e.laneAddr(w, lane, &ci.args[0])
		v, err := e.loadSpace(w, lane, in.Space, addr, size)
		if err != nil {
			return err
		}
		if t.Signed() {
			v = uint64(signExt(v, size))
		}
		e.setRegRaw(w, lane, ci.dst.reg, v)

	case ptx.OpSt:
		if in.Vec > 1 {
			// st.vN [addr], {v0..vN-1}
			if len(ci.args) < in.Vec+1 {
				return fmt.Errorf("vector store needs %d operands", in.Vec+1)
			}
			addr := e.laneAddr(w, lane, &ci.args[0])
			for i := 0; i < in.Vec; i++ {
				v := e.val(w, lane, &ci.args[1+i])
				if t.Float() && ci.args[1+i].kind == ptx.OpndFImm {
					v = fbits(ci.args[1+i].f, t)
				}
				if err := e.storeSpace(w, lane, in.Space, addr+uint64(i*size), size, truncTo(v, size)); err != nil {
					return err
				}
			}
			return nil
		}
		addr := e.laneAddr(w, lane, &ci.args[0])
		v := e.val(w, lane, &ci.args[1])
		if t.Float() && ci.args[1].kind == ptx.OpndFImm {
			v = fbits(ci.args[1].f, t)
		}
		return e.storeSpace(w, lane, in.Space, addr, size, truncTo(v, size))

	case ptx.OpAtom, ptx.OpRed:
		addr := e.laneAddr(w, lane, &ci.args[0])
		old, err := e.loadSpace(w, lane, in.Space, addr, size)
		if err != nil {
			return err
		}
		b := truncTo(e.val(w, lane, &ci.args[1]), size)
		var c uint64
		if len(ci.args) > 2 {
			c = truncTo(e.val(w, lane, &ci.args[2]), size)
		}
		nv := applyAtom(in.Atom, t, size, old, b, c)
		if err := e.storeSpace(w, lane, in.Space, addr, size, truncTo(nv, size)); err != nil {
			return err
		}
		if ci.hasDst {
			e.setRegRaw(w, lane, ci.dst.reg, old)
		}

	case ptx.OpSetp:
		a := &ci.args[0]
		bop := &ci.args[1]
		var r bool
		if t.Float() {
			r = cmpFloat(in.Cmp, e.fval(w, lane, a, t), e.fval(w, lane, bop, t))
		} else {
			r = cmpInt(in.Cmp, t, size, e.val(w, lane, a), e.val(w, lane, bop))
		}
		e.setPred(w, lane, ci.dst.reg, r)

	case ptx.OpSelp:
		cond := ci.args[2]
		var take bool
		if cond.isPred {
			take = e.pred(w, lane, cond.reg)
		} else {
			take = e.val(w, lane, &cond) != 0
		}
		if take {
			e.setRegRaw(w, lane, ci.dst.reg, truncTo(e.val(w, lane, &ci.args[0]), size))
		} else {
			e.setRegRaw(w, lane, ci.dst.reg, truncTo(e.val(w, lane, &ci.args[1]), size))
		}

	case ptx.OpCvt:
		e.setRegRaw(w, lane, ci.dst.reg, convert(e, w, lane, ci))

	case ptx.OpNot:
		v := e.val(w, lane, &ci.args[0])
		e.setRegRaw(w, lane, ci.dst.reg, truncTo(^v, size))

	case ptx.OpNeg:
		if t.Float() {
			e.setRegRaw(w, lane, ci.dst.reg, fbits(-e.fval(w, lane, &ci.args[0], t), t))
		} else {
			v := e.val(w, lane, &ci.args[0])
			e.setRegRaw(w, lane, ci.dst.reg, truncTo(-v, size))
		}

	default:
		return e.execArith(w, ci, lane)
	}
	return nil
}

// execArith handles the two/three-operand arithmetic core.
func (e *engine) execArith(w *warpState, ci *cInstr, lane int) error {
	in := ci.in
	t := in.Type
	size := ci.size
	if t.Float() {
		a := e.fval(w, lane, &ci.args[0], t)
		b := e.fval(w, lane, &ci.args[1], t)
		var r float64
		switch ci.op {
		case ptx.OpAdd:
			r = a + b
		case ptx.OpSub:
			r = a - b
		case ptx.OpMul:
			r = a * b
		case ptx.OpDiv:
			r = a / b
		case ptx.OpMin:
			r = math.Min(a, b)
		case ptx.OpMax:
			r = math.Max(a, b)
		case ptx.OpMad:
			r = a*b + e.fval(w, lane, &ci.args[2], t)
		default:
			return fmt.Errorf("unsupported float op %v", ci.op)
		}
		e.setRegRaw(w, lane, ci.dst.reg, fbits(r, t))
		return nil
	}

	a := truncTo(e.val(w, lane, &ci.args[0]), size)
	b := truncTo(e.val(w, lane, &ci.args[1]), size)
	var r uint64
	switch ci.op {
	case ptx.OpAdd:
		r = a + b
	case ptx.OpSub:
		r = a - b
	case ptx.OpAnd:
		r = a & b
	case ptx.OpOr:
		r = a | b
	case ptx.OpXor:
		r = a ^ b
	case ptx.OpShl:
		if b >= uint64(8*size) {
			r = 0
		} else {
			r = a << b
		}
	case ptx.OpShr:
		if t.Signed() {
			sh := b
			if sh >= uint64(8*size) {
				sh = uint64(8*size) - 1
			}
			r = uint64(signExt(a, size) >> sh)
		} else if b >= uint64(8*size) {
			r = 0
		} else {
			r = a >> b
		}
	case ptx.OpMin:
		if t.Signed() {
			if signExt(a, size) < signExt(b, size) {
				r = a
			} else {
				r = b
			}
		} else if a < b {
			r = a
		} else {
			r = b
		}
	case ptx.OpMax:
		if t.Signed() {
			if signExt(a, size) > signExt(b, size) {
				r = a
			} else {
				r = b
			}
		} else if a > b {
			r = a
		} else {
			r = b
		}
	case ptx.OpMul:
		switch {
		case in.Wide:
			if t.Signed() {
				r = uint64(signExt(a, size) * signExt(b, size))
			} else {
				r = a * b
			}
			// result is 2*size wide; no truncation to size
			e.setRegRaw(w, lane, ci.dst.reg, truncTo(r, 2*size))
			return nil
		case in.Hi:
			if size == 4 {
				full := a * b
				if t.Signed() {
					full = uint64(signExt(a, size) * signExt(b, size))
				}
				r = full >> 32
			} else {
				hi, _ := bits.Mul64(a, b)
				r = hi
			}
		default: // .lo or unmarked
			r = a * b
		}
	case ptx.OpMad:
		c := truncTo(e.val(w, lane, &ci.args[2]), size)
		if in.Wide {
			var p uint64
			if t.Signed() {
				p = uint64(signExt(a, size) * signExt(b, size))
			} else {
				p = a * b
			}
			e.setRegRaw(w, lane, ci.dst.reg, truncTo(p+e.val(w, lane, &ci.args[2]), 2*size))
			return nil
		}
		r = a*b + c
	case ptx.OpDiv:
		if b == 0 {
			r = 0 // PTX leaves integer division by zero unspecified
		} else if t.Signed() {
			r = uint64(signExt(a, size) / signExt(b, size))
		} else {
			r = a / b
		}
	case ptx.OpRem:
		if b == 0 {
			r = 0
		} else if t.Signed() {
			r = uint64(signExt(a, size) % signExt(b, size))
		} else {
			r = a % b
		}
	default:
		return fmt.Errorf("unsupported op %v", ci.op)
	}
	e.setRegRaw(w, lane, ci.dst.reg, truncTo(r, size))
	return nil
}

// applyAtom computes the new memory value for an atomic operation.
func applyAtom(op ptx.AtomOp, t ptx.Type, size int, old, b, c uint64) uint64 {
	switch op {
	case ptx.AtomAdd:
		if t.Float() {
			return fbits(bitsToF(old, t)+bitsToF(b, t), t)
		}
		return old + b
	case ptx.AtomExch:
		return b
	case ptx.AtomCas:
		if old == b {
			return c
		}
		return old
	case ptx.AtomMin:
		if t.Signed() {
			if signExt(b, size) < signExt(old, size) {
				return b
			}
			return old
		}
		if b < old {
			return b
		}
		return old
	case ptx.AtomMax:
		if t.Signed() {
			if signExt(b, size) > signExt(old, size) {
				return b
			}
			return old
		}
		if b > old {
			return b
		}
		return old
	case ptx.AtomAnd:
		return old & b
	case ptx.AtomOr:
		return old | b
	case ptx.AtomXor:
		return old ^ b
	case ptx.AtomInc:
		if old >= b {
			return 0
		}
		return old + 1
	case ptx.AtomDec:
		if old == 0 || old > b {
			return b
		}
		return old - 1
	}
	return old
}

func bitsToF(v uint64, t ptx.Type) float64 {
	if t == ptx.F32 {
		return float64(math.Float32frombits(uint32(v)))
	}
	return math.Float64frombits(v)
}

func cmpInt(op ptx.CmpOp, t ptx.Type, size int, a, b uint64) bool {
	a, b = truncTo(a, size), truncTo(b, size)
	if t.Signed() {
		x, y := signExt(a, size), signExt(b, size)
		switch op {
		case ptx.CmpEQ:
			return x == y
		case ptx.CmpNE:
			return x != y
		case ptx.CmpLT:
			return x < y
		case ptx.CmpLE:
			return x <= y
		case ptx.CmpGT:
			return x > y
		case ptx.CmpGE:
			return x >= y
		}
		return false
	}
	switch op {
	case ptx.CmpEQ:
		return a == b
	case ptx.CmpNE:
		return a != b
	case ptx.CmpLT:
		return a < b
	case ptx.CmpLE:
		return a <= b
	case ptx.CmpGT:
		return a > b
	case ptx.CmpGE:
		return a >= b
	}
	return false
}

func cmpFloat(op ptx.CmpOp, a, b float64) bool {
	switch op {
	case ptx.CmpEQ:
		return a == b
	case ptx.CmpNE:
		return a != b
	case ptx.CmpLT:
		return a < b
	case ptx.CmpLE:
		return a <= b
	case ptx.CmpGT:
		return a > b
	case ptx.CmpGE:
		return a >= b
	}
	return false
}

// convert implements cvt.<dtype>.<stype>.
func convert(e *engine, w *warpState, lane int, ci *cInstr) uint64 {
	dt, st := ci.in.Type, ci.in.Src
	v := e.val(w, lane, &ci.args[0])
	switch {
	case dt.Float() && st.Float():
		return fbits(bitsToF(v, st), dt)
	case dt.Float():
		if st.Signed() {
			return fbits(float64(signExt(v, st.Size())), dt)
		}
		return fbits(float64(truncTo(v, st.Size())), dt)
	case st.Float():
		f := bitsToF(v, st)
		if dt.Signed() {
			return truncTo(uint64(int64(f)), dt.Size())
		}
		return truncTo(uint64(int64(f)), dt.Size())
	default:
		if st.Signed() {
			return truncTo(uint64(signExt(v, st.Size())), dt.Size())
		}
		return truncTo(truncTo(v, st.Size()), dt.Size())
	}
}
