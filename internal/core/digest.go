package core

import (
	"fmt"
	"sort"
	"strings"

	"barracuda/internal/logging"
)

// CanonicalDigest renders the queue-count-invariant projection of a
// report: the determinism contract the multi-queue pipeline upholds.
// Two reports of the same kernel run are "equivalent" for caching and
// for the scaling experiments iff their digests are byte-identical.
//
// The projection has two tiers, matching what is actually provable:
//
// Shared-memory races are rendered exactly — kind, both PCs, access
// modes, sameInstr, and the dynamic count. Shared-space shadow
// cells are per-block, every record of a block flows through that
// block's queue in FIFO order, and cross-queue happens-before edges are
// applied in Seq order (awaitSyncTurn), so a block's shared-memory
// detection state evolves identically at any queue count.
//
// Global-memory races are rendered structurally — kind, space, block,
// sameInstr, the PCs of write/atomic sides, and the *presence* of a
// read side, but not reader PCs and not dynamic counts. A global word
// can be touched from several queues, and the interleaving of those
// touches is real concurrency: the FastTrack-style shadow cell keeps
// one write epoch and a bounded read set with a single PC
// representative, so (a) how many dynamic pairs are witnessed for one
// static race depends on whether an access lands before or after the
// conflicting epoch is overwritten, and (b) a write that races against
// a read-shared cell reports the cell's representative reader, which is
// whichever reader was processed last. Write-side PCs stay exact
// because the write slot always names the actual last conflicting
// writer. This is not an implementation artifact to fix but the
// documented cost of parallel FastTrack detection; the race *set* the
// user sees is the same, its attribution detail for global reads is
// scheduling-dependent.
//
// Orientation (which side was "previous" vs "current") is normalized
// away in both tiers: for a cross-queue pair it depends only on
// scheduling. The Block and Addr fields of a Race are dropped in both
// tiers: a static race deduplicates dynamic occurrences from every
// block, and those fields keep whichever occurrence was seen first.
//
// The record count is invariant (every record is handled exactly once)
// and is included; the same-value filter count is NOT — the filter
// fires only when a lane's write conflicts with the cell's current
// write epoch, and on a global word that epoch can be overwritten from
// another queue between any two lanes — so SameValueGag stays in the
// human-readable report but out of the digest.
//
// The multi-queue stress test and the -scaling benchmark compare
// reports through this digest.
func (r *Report) CanonicalDigest() string {
	type side struct {
		pc            uint32
		write, atomic bool
	}
	type key struct {
		kind      RaceKind
		space     logging.SpaceID
		a, b      side
		sameInstr bool
		exact     bool // shared-space tier: count is meaningful
	}
	counts := make(map[key]int)
	for _, rc := range r.Races {
		exact := rc.Space == logging.SpaceShared
		a := side{rc.Prev.PC, rc.Prev.Write, rc.Prev.Atomic}
		b := side{rc.Cur.PC, rc.Cur.Write, rc.Cur.Atomic}
		if !exact {
			// Structural tier: reader PCs are representative-dependent.
			if !a.write && !a.atomic {
				a.pc = 0
			}
			if !b.write && !b.atomic {
				b.pc = 0
			}
		}
		if b.pc < a.pc || (b.pc == a.pc && !b.write && a.write) ||
			(b.pc == a.pc && b.write == a.write && !b.atomic && a.atomic) {
			a, b = b, a
		}
		counts[key{rc.Kind, rc.Space, a, b, rc.SameInstr, exact}] += rc.Count
	}
	lines := make([]string, 0, len(counts)+len(r.Divergences))
	rw := func(s side) string {
		mode := "read"
		switch {
		case s.atomic:
			mode = "atomic"
		case s.write:
			mode = "write"
		}
		if s.pc == 0 && !s.write && !s.atomic {
			return mode // structural read side: no PC
		}
		return fmt.Sprintf("%d %s", s.pc, mode)
	}
	for k, n := range counts {
		line := fmt.Sprintf("race %s %s {%s | %s} sameInstr=%v",
			k.kind, k.space, rw(k.a), rw(k.b), k.sameInstr)
		if k.exact {
			line += fmt.Sprintf(" x%d", n)
		}
		lines = append(lines, line)
	}
	for _, d := range r.Divergences {
		lines = append(lines, fmt.Sprintf("divergence block=%d warp=%d pc=%d mask=%#x",
			d.Block, d.Warp, d.PC, d.Mask))
	}
	sort.Strings(lines)
	lines = append(lines, fmt.Sprintf("records=%d", r.RecordsSeen))
	return strings.Join(lines, "\n") + "\n"
}
