package core

import (
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
)

// spanRec builds one classified coalesced record: full mask, lane i at
// base+i*size.
func spanRec(op trace.OpKind, warp uint32, base uint64, size uint8, pc uint32) *logging.Record {
	r := &logging.Record{Op: op, Warp: warp, Block: warp / 2, Space: logging.SpaceGlobal, Size: size, PC: pc, Mask: ^uint32(0)}
	for lane := 0; lane < 32; lane++ {
		r.Addrs[lane] = base + uint64(lane)*uint64(size)
		r.Vals[lane] = uint64(lane)
	}
	r.Classify()
	if !r.Coalesced() {
		panic("spanRec: record not coalesced")
	}
	return r
}

// TestSpanReadInflationBoundary walks the full read-state lifecycle
// across the summary/per-cell boundary: a coalesced read installs a
// read-layer summary; an unordered cross-block read demotes it and
// inflates every cell's read map (READINFLATE); a coalesced write then
// reports the read-write races, clears the maps (ClearReads) and
// re-uniforms the range under a fresh write summary.
func TestSpanReadInflationBoundary(t *testing.T) {
	geo := ptvc.Geometry{WarpSize: 32, BlockSize: 64, Blocks: 4}
	d := New(geo, 0, Options{})
	if !d.spans {
		t.Fatal("spans not enabled by default")
	}
	w := d.NewWorker()

	w.Handle(spanRec(trace.OpRead, 0, 0, 4, 1))
	w.Handle(spanRec(trace.OpRead, 4, 0, 4, 2)) // different block: unordered

	// Both readers must now be in every cell's inflated map.
	for _, addr := range []uint64{0, 64, 124} {
		c := d.Shadow().CellFor(logging.SpaceGlobal, -1, addr)
		if !c.ReadShared || len(c.Readers) != 2 {
			t.Fatalf("addr %d: ReadShared=%v readers=%v, want inflated with 2", addr, c.ReadShared, c.Readers)
		}
	}

	w.Handle(spanRec(trace.OpWrite, 0, 0, 4, 3))
	rep := d.Report()
	if got := rep.CountKind(InterBlock); got != 1 {
		t.Errorf("inter-block read-write races = %d, want 1", got)
	}

	// The write re-uniformed the range: one summary, and (after its
	// demotion via CellFor) clean per-cell write epochs with no read map.
	sums := 0
	d.Shadow().SpanRuns(nil, logging.SpaceGlobal, -1, 0, 128, 4, func(reg *shadow.Region, lo, hi, off int) {
		reg.Lock()
		sums += len(reg.Sums())
		reg.Unlock()
	})
	if sums != 1 {
		t.Errorf("write summaries after re-uniforming = %d, want 1", sums)
	}
	for _, addr := range []uint64{0, 124} {
		c := d.Shadow().CellFor(logging.SpaceGlobal, -1, addr)
		if c.ReadShared || c.Readers != nil || !c.R.IsZero() {
			t.Errorf("addr %d: ClearReads not applied across bulk store: %+v", addr, c)
		}
		wantT := geo.TIDOf(0, int(addr/4))
		if c.W.T != wantT || c.WritePC != 3 {
			t.Errorf("addr %d: W=%+v pc=%d, want T=%d pc=3", addr, c.W, c.WritePC, wantT)
		}
	}
}

// TestSpanAtomicBitLifecycle: the atomic bit must survive the summary
// round trip — set by a coalesced atomic (virgin install), honored by a
// following atomic from another warp of the same block after a barrier-
// free but ordered... — here simply: same warp updates in place, and a
// plain write clears the bit again, both purely in summary form.
func TestSpanAtomicBitLifecycle(t *testing.T) {
	geo := ptvc.Geometry{WarpSize: 32, BlockSize: 64, Blocks: 4}
	d := New(geo, 0, Options{})
	w := d.NewWorker()

	w.Handle(spanRec(trace.OpAtom, 0, 0, 4, 1))
	c := d.Shadow().CellFor(logging.SpaceGlobal, -1, 64)
	if !c.Atomic {
		t.Fatal("atomic bit lost through summary install + demotion")
	}

	// Fresh range, stays in summary form: atomic then same-warp write.
	w.Handle(spanRec(trace.OpAtom, 1, 4096, 4, 2))
	w.Handle(spanRec(trace.OpWrite, 1, 4096, 4, 3))
	c = d.Shadow().CellFor(logging.SpaceGlobal, -1, 4096)
	if c.Atomic {
		t.Error("plain write did not clear the atomic bit in summary form")
	}
	if c.WritePC != 3 {
		t.Errorf("WritePC = %d, want 3 (the plain write)", c.WritePC)
	}
	if rep := d.Report(); rep.HasRaces() {
		t.Errorf("unexpected races: %+v", rep.Races)
	}
}

// TestSpanAtomicCrossWarpNoRace: atomics from different blocks do not
// race with each other (ATOMEXCL); in summary form this is the skipW
// path of spanCheck. The R layer is absent, so the whole check is O(1)
// and the record must stay on the fast path — verified by the summary
// still being intact (the demote path would reinstall, which is
// indistinguishable, so instead verify no race and correct bit).
func TestSpanAtomicCrossWarpNoRace(t *testing.T) {
	geo := ptvc.Geometry{WarpSize: 32, BlockSize: 64, Blocks: 4}
	d := New(geo, 0, Options{})
	w := d.NewWorker()

	w.Handle(spanRec(trace.OpAtom, 0, 0, 4, 1))
	w.Handle(spanRec(trace.OpAtom, 4, 0, 4, 2)) // different block, unordered
	if rep := d.Report(); rep.HasRaces() {
		t.Fatalf("atomic-atomic reported as race: %+v", rep.Races)
	}
	c := d.Shadow().CellFor(logging.SpaceGlobal, -1, 0)
	if !c.Atomic {
		t.Error("atomic bit lost across cross-warp atomic update")
	}
	if c.W.T != geo.TIDOf(4, 0) {
		t.Errorf("W.T = %d, want the second atomic's lane 0 tid %d", c.W.T, geo.TIDOf(4, 0))
	}
}
