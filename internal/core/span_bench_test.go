package core

import (
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

// benchGeo is the microbenchmark launch: 8 blocks × 128 threads,
// 32-lane warps.
func benchGeo() ptvc.Geometry {
	return ptvc.Geometry{WarpSize: 32, BlockSize: 128, Blocks: 8}
}

// benchRecords builds a short cyclic stream of warp memory records for
// one warp over its own address window, alternating reads and writes.
// pattern selects the per-lane layout (see bench.DetectBench for the
// full-stream experiment these mirror).
func benchRecords(pattern string) []logging.Record {
	const instrs = 8
	recs := make([]logging.Record, 0, instrs)
	lcg := uint64(0x9E3779B97F4A7C15)
	rnd := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg >> 33
	}
	for i := 0; i < instrs; i++ {
		var r logging.Record
		r.Warp = 0
		r.Block = 0
		r.Space = logging.SpaceGlobal
		r.Size = 4
		r.PC = uint32(i + 1)
		if i%2 == 0 {
			r.Op = trace.OpRead
		} else {
			r.Op = trace.OpWrite
		}
		switch pattern {
		case "coalesced":
			r.Mask = ^uint32(0)
			base := uint64(i) * 128
			for lane := 0; lane < 32; lane++ {
				r.Addrs[lane] = base + uint64(lane)*4
				r.Vals[lane] = uint64(lane)
			}
		case "strided":
			r.Mask = ^uint32(0)
			base := uint64(i) * 256
			for lane := 0; lane < 32; lane++ {
				r.Addrs[lane] = base + uint64(lane)*8
				r.Vals[lane] = uint64(lane)
			}
		case "divergent":
			r.Mask = uint32(rnd()) | 1
			for lane := 0; lane < 32; lane++ {
				if r.Mask&(1<<uint(lane)) == 0 {
					continue
				}
				r.Addrs[lane] = rnd() % 1024 * 4
				r.Vals[lane] = uint64(lane)
			}
		}
		r.Classify()
		recs = append(recs, r)
	}
	return recs
}

// benchWarpAccess drains the cyclic stream through one worker. ns/op is
// nanoseconds per warp access (one warp-level record).
func benchWarpAccess(b *testing.B, pattern string, perCell bool) {
	d := New(benchGeo(), 0, Options{PerCellShadow: perCell})
	w := d.NewWorker()
	recs := benchRecords(pattern)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Handle(&recs[i%len(recs)])
	}
}

func benchBothPaths(b *testing.B, pattern string) {
	for _, mode := range []struct {
		name    string
		perCell bool
	}{{"span", false}, {"percell", true}} {
		b.Run(mode.name, func(b *testing.B) {
			benchWarpAccess(b, pattern, mode.perCell)
		})
	}
}

func BenchmarkWarpAccessCoalesced(b *testing.B) { benchBothPaths(b, "coalesced") }
func BenchmarkWarpAccessStrided(b *testing.B)   { benchBothPaths(b, "strided") }
func BenchmarkWarpAccessDivergent(b *testing.B) { benchBothPaths(b, "divergent") }

// BenchmarkWarpAccessReadSharedInflate measures the span path's worst
// case: two warps read the same coalesced range, so every summary is
// demoted (cross-warp epochs are unordered) and the cells carry
// inflated read maps — all traffic lands on the per-cell slow path plus
// the demotion bookkeeping.
func BenchmarkWarpAccessReadSharedInflate(b *testing.B) {
	for _, mode := range []struct {
		name    string
		perCell bool
	}{{"span", false}, {"percell", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d := New(benchGeo(), 0, Options{PerCellShadow: mode.perCell})
			w := d.NewWorker()
			var recs []logging.Record
			for _, warp := range []uint32{0, 4} { // different blocks: no sync order
				var r logging.Record
				r.Warp = warp
				r.Block = warp / 4
				r.Space = logging.SpaceGlobal
				r.Size = 4
				r.PC = 1
				r.Op = trace.OpRead
				r.Mask = ^uint32(0)
				for lane := 0; lane < 32; lane++ {
					r.Addrs[lane] = uint64(lane) * 4
				}
				r.Classify()
				recs = append(recs, r)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Handle(&recs[i%len(recs)])
			}
		})
	}
}

// TestBenchRecordsClassify guards the microbenchmark setup: the
// coalesced pattern must be tagged, the others must not be.
func TestBenchRecordsClassify(t *testing.T) {
	for _, tc := range []struct {
		pattern string
		want    bool
	}{{"coalesced", true}, {"strided", false}} {
		for i, r := range benchRecords(tc.pattern) {
			if got := r.Coalesced(); got != tc.want {
				t.Errorf("%s[%d]: Coalesced() = %v, want %v", tc.pattern, i, got, tc.want)
			}
		}
	}
}
