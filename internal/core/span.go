package core

import (
	"math/bits"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// forEachLaneCell visits every shadow cell of every active lane of a
// memory record, with the cell locked — the per-cell iteration shared by
// the epoch detector's fallback path and the full-VC ablation. Addresses
// go through LaneAddr so coalesced records that crossed the compact wire
// (no address array) resolve identically.
func (d *Detector) forEachLaneCell(sc *shadow.SpanCache, r *logging.Record, visit func(lane int, tid vc.TID, c *shadow.Cell)) {
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	for lane := 0; lane < d.geo.WarpSize && lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		tid := d.geo.TIDOf(int(r.Warp), lane)
		d.mem.SpanCached(sc, r.Space, blk, r.LaneAddr(lane), int(r.Size), func(c *shadow.Cell) {
			visit(lane, tid, c)
		})
	}
}

// trySpan is the coalesced-span fast path: process an entire coalesced
// warp access as one span operation per region run — one region lock,
// one representative FastTrack check against the run's uniform-span
// summary, and one bulk metadata store — instead of per-cell loops. It
// reports whether the record was handled; false sends the caller down
// the exact per-cell path. The fast path NEVER reports a race itself:
// any rank whose check fails (a potential race, or state a summary
// cannot express) demotes the summary and replays the per-cell rules,
// which keeps race reports and digests byte-identical to the per-cell
// baseline.
func (d *Detector) trySpan(r *logging.Record, g *ptvc.Group, w *Worker) bool {
	if !d.spans || !r.Coalesced() || r.Size == 0 || r.Mask == 0 {
		return false
	}
	if r.Space != logging.SpaceGlobal && r.Space != logging.SpaceShared {
		return false
	}
	gran := d.mem.Granularity()
	if gran > 1 && (r.Base%uint64(gran) != 0 || int(r.Size)%gran != 0) {
		// Lanes could share cells; only the per-cell rules (and the
		// same-value filter) handle that exactly.
		return false
	}
	ws := d.geo.WarpSize
	if ws > logging.WarpWidth {
		ws = logging.WarpWidth
	}
	if ws < 32 && r.Mask>>uint(ws) != 0 {
		// The per-cell path ignores lanes beyond the simulated warp
		// width; a span over the full mask would not.
		return false
	}
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	var sc *shadow.SpanCache
	if w.caching {
		sc = &w.span
	}
	n := bits.OnesCount32(r.Mask)
	return d.mem.SpanRuns(sc, r.Space, blk, r.Base, n*int(r.Size), int(r.Size),
		func(reg *shadow.Region, lo, hi, byteOff int) {
			d.spanRun(r, g, w, reg, lo, hi, byteOff)
		})
}

// spanRun processes one region-contiguous part of a coalesced record
// under the region lock.
func (d *Detector) spanRun(r *logging.Record, g *ptvc.Group, w *Worker, reg *shadow.Region, lo, hi, byteOff int) {
	reg.Lock()
	defer reg.Unlock()

	// Keep the ownership facts alive for traffic that bypassed the
	// ownership fast path (diverged groups, clock bounds not provably
	// below the barrier): every store below carries clock g.L under
	// warp r.Warp, which is exactly what trackOwner folds in.
	if d.owned {
		d.trackOwner(reg, r, g)
	}

	nRanks := (hi - lo) * d.mem.Granularity() / int(r.Size)
	runMask := spanRunMask(r.Mask, byteOff/int(r.Size), nRanks)

	exact, overlap := reg.FindSpan(lo, hi)
	if exact != nil && d.spanCheck(r, g, exact, runMask) {
		d.spanUpdate(r, g, exact, runMask)
		return
	}
	if !overlap && !reg.Touched() {
		// Virgin cells: every FastTrack check against zero epochs passes
		// trivially — install the summary in O(1).
		s := shadow.SpanSum{Lo: lo, Hi: hi}
		d.spanUpdate(r, g, &s, runMask)
		reg.Install(s)
		return
	}
	// Demotion: materialize overlapping summaries into exact per-cell
	// epochs, replay the per-cell rules (which report any races exactly
	// as the baseline would), then re-summarize the uniform state a
	// write leaves behind.
	reg.DemoteOverlapping(d.mem, lo, hi)
	reg.SetTouched()
	d.spanPerCell(r, g, w, reg, lo, byteOff, runMask)
	if r.Op != trace.OpRead {
		s := shadow.SpanSum{Lo: lo, Hi: hi}
		d.spanWriteLayer(&s, r, g, runMask)
		reg.Install(s)
	}
}

// spanRunMask extracts the active-lane bits of ranks [rankLo,
// rankLo+n) from a record mask.
func spanRunMask(mask uint32, rankLo, n int) uint32 {
	for ; rankLo > 0; rankLo-- {
		mask &= mask - 1
	}
	var out uint32
	for ; n > 0 && mask != 0; n-- {
		out |= mask & -mask
		mask &= mask - 1
	}
	return out
}

// spanCheck reports whether every epoch summarized for [Lo, Hi) is
// ordered before the record's accessing lanes, i.e. whether the span
// can be answered without any per-cell work. Size mismatches between
// the summary layers and the record fail conservatively (the rank→lane
// mapping would differ), as does anything not ordered.
func (d *Detector) spanCheck(r *logging.Record, g *ptvc.Group, s *shadow.SpanSum, runMask uint32) bool {
	// ATOMEXCL: atomic-over-atomic skips the write check (atomics do
	// not race with each other), exactly like applyAtomic.
	skipW := r.Op == trace.OpAtom && s.Atomic
	if s.W.Valid() && !skipW {
		if s.W.Size != r.Size {
			return false
		}
		if !d.spanLayerOrdered(g, r, &s.W, runMask) {
			return false
		}
	}
	if s.R.Valid() {
		if s.R.Size != r.Size {
			return false
		}
		if !d.spanLayerOrdered(g, r, &s.R, runMask) {
			return false
		}
	}
	return true
}

// spanLayerOrdered checks one summary layer's per-rank epochs against
// the record's per-rank thread ids: the k-th slice's epoch must happen-
// before the k-th accessing lane's current operation.
func (d *Detector) spanLayerOrdered(g *ptvc.Group, r *logging.Record, l *shadow.SpanLayer, runMask uint32) bool {
	if l.Clock == 0 {
		return true
	}
	if l.Warp == r.Warp && l.Mask == runMask {
		// The uniform resweep: every rank checks its own previous
		// epoch, so the whole span is one representative compare.
		return l.Clock <= g.L
	}
	lm, rm := l.Mask, runMask
	for lm != 0 && rm != 0 {
		tid := d.geo.TIDOf(int(r.Warp), bits.TrailingZeros32(rm))
		e := vc.Epoch{T: d.geo.TIDOf(int(l.Warp), bits.TrailingZeros32(lm)), C: l.Clock}
		if !ordered(g, tid, e) {
			return false
		}
		lm &= lm - 1
		rm &= rm - 1
	}
	return true
}

// spanUpdate applies a checked span to a summary — the bulk analogue of
// applyRead/applyWrite/applyAtomic on every covered cell at once.
func (d *Detector) spanUpdate(r *logging.Record, g *ptvc.Group, s *shadow.SpanSum, runMask uint32) {
	if r.Op == trace.OpRead {
		// READEXCL over the run: reads stay an epoch layer.
		s.R = shadow.SpanLayer{Warp: r.Warp, Mask: runMask, Clock: g.L, PC: r.PC, Size: r.Size}
		return
	}
	d.spanWriteLayer(s, r, g, runMask)
}

// spanWriteLayer installs the write layer of a write/atomic span and
// clears the read layer (the R' = ⊥e step of the write rules).
func (d *Detector) spanWriteLayer(s *shadow.SpanSum, r *logging.Record, g *ptvc.Group, runMask uint32) {
	s.W = shadow.SpanLayer{Warp: r.Warp, Mask: runMask, Clock: g.L, PC: r.PC, Size: r.Size}
	s.Atomic = r.Op == trace.OpAtom
	s.R = shadow.SpanLayer{}
}

// spanPerCell replays the exact per-cell rules for one region run: the
// same lanes, cells, visit order and callbacks as the legacy path, under
// the already-held region lock.
func (d *Detector) spanPerCell(r *logging.Record, g *ptvc.Group, w *Worker, reg *shadow.Region, lo, byteOff int, runMask uint32) {
	gran := d.mem.Granularity()
	cellsPerLane := int(r.Size) / gran
	cells := reg.Cells()
	idx := lo
	for rm := runMask; rm != 0; rm &= rm - 1 {
		lane := bits.TrailingZeros32(rm)
		tid := d.geo.TIDOf(int(r.Warp), lane)
		for k := 0; k < cellsPerLane; k++ {
			c := &cells[idx]
			idx++
			c.Lock()
			switch r.Op {
			case trace.OpRead:
				d.applyRead(c, g, tid, r, lane)
			case trace.OpWrite:
				d.applyWrite(c, g, tid, r, lane, false, w)
			case trace.OpAtom:
				d.applyAtomic(c, g, tid, r, lane)
			}
			c.Unlock()
		}
	}
}
