// The exclusive-ownership fast tier (SmartTrack-style, below FastTrack).
//
// Soundness. The fast path skips EVERY per-epoch check of the baseline
// rules, so it may only run when each skipped check provably passes:
//
//  1. Convergence invariant: while a warp's active group is fully
//     converged (g.Mask == g.FullMask), every epoch previously stored
//     by that warp has clock < g.L. (Sibling divergence paths that
//     could hold overlapping clock ranges always carry disjoint,
//     strictly smaller masks; Merge and Barrier relabel the group
//     strictly above everything both paths stored.) Hence every
//     same-warp epoch e passes both the own-epoch check (e.C <= g.L)
//     and the active-lane-mate check (e.C <= g.L-1) — and, because
//     e.C < g.L, no prior epoch can trigger the same-instruction
//     same-value filter either.
//  2. Region ownership: the region's ownership word says which warps
//     can have stored epochs at all. Under Exclusive(warp == r.Warp),
//     invariant 1 covers every resident epoch. Under Exclusive(block),
//     cross-warp same-block epochs additionally need clock <= g.B (the
//     group's last barrier relabel), which the region's tracked clock
//     bounds (lastMax/otherMax) certify in O(1).
//  3. Intra-record isolation: lanes of the current record must touch
//     pairwise-disjoint cells, otherwise the record races (or
//     inflates read state) against itself and only the per-cell rules
//     handle that exactly.
//
// When all three hold, the baseline would report nothing and leave
// exactly the state this path stores raw — so reports stay
// byte-identical. Anything unprovable bails to the span/per-cell slow
// paths untouched (no stores happen before the final verdict).
//
// TOCTOU: the ownership word is probed lock-free in tryOwned's callers'
// hot loop, but every decision here re-reads it AFTER taking the region
// lock — another queue's worker may have inflated the region between
// probe and lock (global pages are shared across block-affine workers).
package core

import (
	"math/bits"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// tryOwned attempts the exclusive-ownership fast path for one memory
// record. It reports whether the record was fully handled; false means
// no state was changed (beyond ownership bookkeeping) and the caller
// must run the span/per-cell path.
func (d *Detector) tryOwned(r *logging.Record, g *ptvc.Group, w *Worker) bool {
	if !d.owned || r.Size == 0 || r.Mask == 0 || g.Mask != g.FullMask {
		return false
	}
	if r.Space != logging.SpaceGlobal && r.Space != logging.SpaceShared {
		return false
	}
	ws := d.geo.WarpSize
	if ws > logging.WarpWidth {
		ws = logging.WarpWidth
	}
	if ws < 32 && r.Mask>>uint(ws) != 0 {
		// The per-cell path ignores lanes beyond the simulated warp
		// width; this path would not.
		return false
	}
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	var sc *shadow.SpanCache
	if w.caching {
		sc = &w.span
	}
	if r.Coalesced() {
		return d.ownedCoalesced(r, g, sc, blk)
	}
	return d.ownedLanes(r, g, sc, blk, ws)
}

// ownedValidate re-reads the ownership word under the region lock and
// decides whether every resident epoch is provably ordered before the
// record's lanes (see the file comment). On success it also advances
// the ownership state (claim / retain / rotate / promote); on failure
// it leaves the region for the slow path — inflating only when
// exclusivity itself is disproven, not when a clock bound is merely
// unprovable.
func (d *Detector) ownedValidate(reg *shadow.Region, r *logging.Record, g *ptvc.Group) bool {
	st, id := reg.Owner()
	switch st {
	case shadow.OwnNone:
		// Virgin region: every check passes against zero epochs.
		d.mem.Claim(reg, r.Warp, g.L)
		return true
	case shadow.OwnWarp:
		if id == r.Warp {
			// Same warp + convergence: invariant 1 covers everything.
			reg.Retain(g.L)
			return true
		}
		if d.geo.BlockOfWarp(int(id)) != d.geo.BlockOfWarp(int(r.Warp)) {
			d.mem.Inflate(reg)
			return false
		}
		// Second warp of the same block: promote if the owner's epochs
		// are all below our last barrier.
		_, lastMax, _ := reg.OwnerClocks()
		if lastMax <= g.B {
			d.mem.Rotate(reg, shadow.OwnBlock, uint32(d.geo.BlockOfWarp(int(r.Warp))), r.Warp, g.L)
			return true
		}
		return false
	case shadow.OwnBlock:
		myBlock := uint32(d.geo.BlockOfWarp(int(r.Warp)))
		if id != myBlock {
			d.mem.Inflate(reg)
			return false
		}
		lw, lastMax, otherMax := reg.OwnerClocks()
		if lw == r.Warp {
			// Own epochs pass by invariant 1; the other warps' are
			// bounded by otherMax.
			if otherMax <= g.B {
				reg.Retain(g.L)
				return true
			}
			return false
		}
		if lastMax <= g.B && otherMax <= g.B {
			d.mem.Rotate(reg, shadow.OwnBlock, myBlock, r.Warp, g.L)
			return true
		}
		return false
	}
	return false // OwnShared is sticky; the slow path owns this region
}

// trackOwner maintains the ownership facts from the span slow path,
// under the region lock, so exclusivity survives traffic that merely
// bypassed the fast path (diverged groups, partial masks, summary
// demotions). The record's stores all carry clock g.L, which is what
// Retain/Rotate fold into the bounds.
func (d *Detector) trackOwner(reg *shadow.Region, r *logging.Record, g *ptvc.Group) {
	st, id := reg.Owner()
	switch st {
	case shadow.OwnShared:
	case shadow.OwnNone:
		d.mem.Claim(reg, r.Warp, g.L)
	case shadow.OwnWarp:
		switch {
		case id == r.Warp:
			reg.Retain(g.L)
		case d.geo.BlockOfWarp(int(id)) == d.geo.BlockOfWarp(int(r.Warp)):
			d.mem.Rotate(reg, shadow.OwnBlock, uint32(d.geo.BlockOfWarp(int(r.Warp))), r.Warp, g.L)
		default:
			d.mem.Inflate(reg)
		}
	case shadow.OwnBlock:
		myBlock := uint32(d.geo.BlockOfWarp(int(r.Warp)))
		if id != myBlock {
			d.mem.Inflate(reg)
		} else if lw, _, _ := reg.OwnerClocks(); lw == r.Warp {
			reg.Retain(g.L)
		} else {
			d.mem.Rotate(reg, shadow.OwnBlock, myBlock, r.Warp, g.L)
		}
	}
}

// ownedCoalesced handles a coalesced record over one region: the span
// store of spanRun with every check removed.
func (d *Detector) ownedCoalesced(r *logging.Record, g *ptvc.Group, sc *shadow.SpanCache, blk int32) bool {
	gran := d.mem.Granularity()
	size := int(r.Size)
	if gran > 1 && (r.Base%uint64(gran) != 0 || size%gran != 0) {
		return false // lanes could share cells (isolation condition 3)
	}
	n := bits.OnesCount32(r.Mask) * size
	if r.Space == logging.SpaceGlobal && r.Base/shadow.PageBytes != (r.Base+uint64(n)-1)/shadow.PageBytes {
		return false // page-crossing runs: the span path's business
	}
	reg, lo := d.mem.RegionFor(sc, r.Space, blk, r.Base)
	if r.Space == logging.SpaceShared && uint64(lo) != r.Base/uint64(gran) {
		return false // out of the slab; per-cell clamping semantics win
	}
	hi := lo + n/gran
	if hi > len(reg.Cells()) {
		return false
	}
	runMask := r.Mask
	reg.Lock()
	defer reg.Unlock()
	if !d.ownedValidate(reg, r, g) {
		return false
	}
	if exact, overlap := reg.FindSpan(lo, hi); exact != nil {
		d.spanUpdate(r, g, exact, runMask)
	} else if !overlap && !reg.Touched() {
		s := shadow.SpanSum{Lo: lo, Hi: hi}
		d.spanUpdate(r, g, &s, runMask)
		reg.Install(s)
	} else {
		reg.DemoteOverlapping(d.mem, lo, hi)
		reg.SetTouched()
		d.ownedRankCells(r, g, reg, lo, runMask)
		if r.Op != trace.OpRead {
			s := shadow.SpanSum{Lo: lo, Hi: hi}
			d.spanWriteLayer(&s, r, g, runMask)
			reg.Install(s)
		}
	}
	d.mem.NoteOwnedFast()
	return true
}

// ownedLanes handles a non-coalesced record whose lanes all land in one
// region with strictly ascending, pairwise-disjoint cell ranges: one
// region lock and raw per-cell stores, instead of the per-lane
// SpanCached loop with per-cell spinlocks and epoch checks.
func (d *Detector) ownedLanes(r *logging.Record, g *ptvc.Group, sc *shadow.SpanCache, blk int32, ws int) bool {
	gran := uint64(d.mem.Granularity())
	var reg *shadow.Region
	var los, his [logging.WarpWidth]int
	nl := 0
	prevHi := 0
	for lane := 0; lane < ws; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := r.LaneAddr(lane)
		end := addr + uint64(r.Size) - 1
		if r.Space == logging.SpaceGlobal && addr/shadow.PageBytes != end/shadow.PageBytes {
			return false
		}
		rg, lo := d.mem.RegionFor(sc, r.Space, blk, addr)
		if reg == nil {
			reg = rg
		} else if rg != reg {
			return false // lanes span regions
		}
		if r.Space == logging.SpaceShared && uint64(lo) != addr/gran {
			return false // clamped: out of the slab
		}
		hi := lo + int(end/gran-addr/gran) + 1
		if hi > len(rg.Cells()) {
			return false
		}
		if lo < prevHi {
			return false // overlapping or unsorted lanes (condition 3)
		}
		prevHi = hi
		los[nl], his[nl] = lo, hi
		nl++
	}
	if reg == nil {
		return false
	}
	reg.Lock()
	defer reg.Unlock()
	if !d.ownedValidate(reg, r, g) {
		return false
	}
	for i := 0; i < nl; i++ {
		reg.DemoteOverlapping(d.mem, los[i], his[i])
	}
	reg.SetTouched()
	cells := reg.Cells()
	i := 0
	for lane := 0; lane < ws; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		tid := d.geo.TIDOf(int(r.Warp), lane)
		for idx := los[i]; idx < his[i]; idx++ {
			rawStore(&cells[idx], r.Op, tid, g.L, r.PC)
		}
		i++
	}
	d.mem.NoteOwnedFast()
	return true
}

// ownedRankCells is the raw-store twin of spanPerCell: same cells, same
// order, no checks (they provably pass) and no per-cell spinlocks (the
// region lock already serializes every record-path access in span mode,
// the same argument shadow.materialize relies on).
func (d *Detector) ownedRankCells(r *logging.Record, g *ptvc.Group, reg *shadow.Region, lo int, runMask uint32) {
	gran := d.mem.Granularity()
	cellsPerLane := int(r.Size) / gran
	cells := reg.Cells()
	idx := lo
	for rm := runMask; rm != 0; rm &= rm - 1 {
		lane := bits.TrailingZeros32(rm)
		tid := d.geo.TIDOf(int(r.Warp), lane)
		for k := 0; k < cellsPerLane; k++ {
			rawStore(&cells[idx], r.Op, tid, g.L, r.PC)
			idx++
		}
	}
}

// rawStore leaves exactly the state applyRead/applyWrite/applyAtomic
// leave when every happens-before check passes: reads keep an inflated
// read map inflated (READSHARED) or advance the read epoch (READEXCL);
// writes and atomics install the write epoch and clear reads.
func rawStore(c *shadow.Cell, op trace.OpKind, tid vc.TID, clock vc.Clock, pc uint32) {
	if op == trace.OpRead {
		if c.ReadShared {
			c.Readers[tid] = clock
		} else {
			c.R = vc.Epoch{T: tid, C: clock}
		}
		c.ReadPC = pc
		return
	}
	c.W = vc.Epoch{T: tid, C: clock}
	c.Atomic = op == trace.OpAtom
	c.WritePC = pc
	c.ClearReads()
}

// maybeCompactShared drops a block's shared-memory shadow slab after a
// barrier release at which every populated warp of the block arrived
// fully converged. At such a barrier, every epoch stored in the slab
// has clock < its warp's pre-barrier L <= m (the convergence
// invariant), and Barrier(m) relabels every warp to B = m, L = m+1 — so
// each resident epoch is forever ordered before every future access by
// the block, and the slab is block-private, so no other accessor
// exists. Dropping it (a later access reallocates virgin cells) is
// therefore report-identical. A warp that did not arrive, or arrived
// diverged, can hold unrelabeled sibling clocks above m, making the
// drop unsafe — hence both checks.
func (d *Detector) maybeCompactShared(r *logging.Record, base, wpb int) {
	if wpb > 32 {
		return // the release mask cannot certify warps beyond bit 31
	}
	for wi := 0; wi < wpb; wi++ {
		w := d.warps[base+wi]
		if w == nil {
			continue // never ran: stored nothing
		}
		if r.Mask&(1<<uint(wi)) == 0 {
			return // populated but not arrived
		}
		if len(w.stack) != 1 || w.top().Mask != w.top().FullMask {
			return // not converged at the barrier
		}
	}
	d.mem.CompactSharedSlab(int32(r.Block))
}
