package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

// Test geometry: 2 blocks x 2 warps x 4 lanes = 16 threads.
func testGeo() ptvc.Geometry { return ptvc.Geometry{WarpSize: 4, BlockSize: 8, Blocks: 2} }

const full4 = 0xF

// recBuilder builds records tersely.
type recBuilder struct {
	r logging.Record
}

func rec(op trace.OpKind, warp int, mask uint32) *recBuilder {
	geo := testGeo()
	b := &recBuilder{}
	b.r.Op = op
	b.r.Warp = uint32(warp)
	b.r.Block = uint32(geo.BlockOfWarp(warp))
	b.r.Mask = mask
	b.r.Size = 4
	return b
}

func (b *recBuilder) at(pc uint32) *recBuilder { b.r.PC = pc; return b }

// addr sets the same address for every lane.
func (b *recBuilder) addr(a uint64) *recBuilder {
	for i := range b.r.Addrs {
		b.r.Addrs[i] = a
	}
	return b
}

// stride sets per-lane addresses base + lane*4.
func (b *recBuilder) stride(base uint64) *recBuilder {
	for i := range b.r.Addrs {
		b.r.Addrs[i] = base + uint64(i)*4
	}
	return b
}

func (b *recBuilder) vals(vs ...uint64) *recBuilder {
	copy(b.r.Vals[:], vs)
	return b
}

func (b *recBuilder) shared() *recBuilder { b.r.Space = logging.SpaceShared; return b }

func (b *recBuilder) rec() *logging.Record { return &b.r }

func newDet(opts Options) *Detector { return New(testGeo(), 256, opts) }

func TestIntraWarpSameInstrWriteWrite(t *testing.T) {
	d := newDet(Options{})
	// All 4 lanes write the same address with different values.
	d.Handle(rec(trace.OpWrite, 0, full4).addr(0x10000).vals(1, 2, 3, 4).at(10).rec())
	rep := d.Report()
	if rep.RaceCount() != 1 {
		t.Fatalf("races = %d, want 1: %v", rep.RaceCount(), rep.Races)
	}
	r := rep.Races[0]
	if r.Kind != IntraWarp || !r.SameInstr {
		t.Errorf("race = %+v, want intra-warp same-instruction", r)
	}
	if r.Count < 3 {
		t.Errorf("dynamic count = %d, want >= 3 (lanes 1..3 each conflict)", r.Count)
	}
}

func TestSameValueFilter(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, full4).addr(0x10000).vals(7, 7, 7, 7).at(10).rec())
	rep := d.Report()
	if rep.RaceCount() != 0 {
		t.Fatalf("races = %d, want 0 (same value): %v", rep.RaceCount(), rep.Races)
	}
	if rep.SameValueGag == 0 {
		t.Error("same-value filter did not record any filtered writes")
	}
	// With the filter disabled the race appears.
	d2 := newDet(Options{NoSameValueFilter: true})
	d2.Handle(rec(trace.OpWrite, 0, full4).addr(0x10000).vals(7, 7, 7, 7).at(10).rec())
	if d2.Report().RaceCount() != 1 {
		t.Error("NoSameValueFilter did not surface the race")
	}
}

func TestDistinctAddressesNoRace(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, full4).stride(0x10000).vals(1, 2, 3, 4).at(10).rec())
	d.Handle(rec(trace.OpRead, 0, full4).stride(0x10000).at(11).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("races = %v, want none", rep.Races)
	}
}

func TestSequentialSameThreadNoRace(t *testing.T) {
	d := newDet(Options{})
	// Only lane 0 active: write then read then write.
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpRead, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(12).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("races = %v, want none", rep.Races)
	}
}

func TestCrossWarpIntraBlockRace(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpWrite, 1, 0x1).addr(0x10000).at(20).rec())
	rep := d.Report()
	if rep.RaceCount() != 1 || rep.Races[0].Kind != IntraBlock {
		t.Fatalf("races = %v, want one intra-block", rep.Races)
	}
}

func TestCrossBlockRace(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpRead, 2, 0x1).addr(0x10000).at(20).rec()) // warp 2 = block 1
	rep := d.Report()
	if rep.RaceCount() != 1 || rep.Races[0].Kind != InterBlock {
		t.Fatalf("races = %v, want one inter-block", rep.Races)
	}
	r := rep.Races[0]
	if !r.Prev.Write || r.Cur.Write {
		t.Errorf("race sides wrong: %+v", r)
	}
}

func TestBarrierOrdersBlock(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	// Barrier: both warps of block 0 arrive (marker + release).
	d.Handle(rec(trace.OpBar, 0, full4).at(11).rec())
	d.Handle(rec(trace.OpBar, 1, full4).at(11).rec())
	d.Handle(rec(trace.OpBarRel, 0, 0b11).rec())
	d.Handle(rec(trace.OpRead, 1, 0x1).addr(0x10000).at(12).rec())
	rep := d.Report()
	if rep.RaceCount() != 0 {
		t.Errorf("races after barrier = %v, want none", rep.Races)
	}
	if len(rep.Divergences) != 0 {
		t.Errorf("divergences = %v", rep.Divergences)
	}
	// But a thread in the OTHER block is not ordered by block 0's barrier.
	d.Handle(rec(trace.OpWrite, 2, 0x1).addr(0x10000).at(30).rec())
	if d.Report().RaceCount() == 0 {
		t.Error("cross-block access wrongly ordered by a block barrier")
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpBar, 0, 0x3).at(11).rec()) // only 2 of 4 lanes
	rep := d.Report()
	if len(rep.Divergences) != 1 {
		t.Fatalf("divergences = %v, want 1", rep.Divergences)
	}
	if rep.Divergences[0].Warp != 0 || rep.Divergences[0].Mask != 0x3 {
		t.Errorf("divergence = %+v", rep.Divergences[0])
	}
	// The same static barrier is reported once.
	d.Handle(rec(trace.OpBar, 0, 0x3).at(11).rec())
	if len(d.Report().Divergences) != 1 {
		t.Error("divergence not deduplicated")
	}
}

func TestReadInflationAndWriterRace(t *testing.T) {
	d := newDet(Options{})
	// Two concurrent readers in different warps: no race.
	d.Handle(rec(trace.OpRead, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpRead, 1, 0x1).addr(0x10000).at(11).rec())
	if d.Report().RaceCount() != 0 {
		t.Fatal("concurrent reads reported as a race")
	}
	// A concurrent writer races with (at least) one reader.
	d.Handle(rec(trace.OpWrite, 2, 0x1).addr(0x10000).at(12).rec())
	rep := d.Report()
	if rep.RaceCount() == 0 {
		t.Fatal("read-shared vs write race missed")
	}
	for _, r := range rep.Races {
		if r.Prev.Write || !r.Cur.Write {
			t.Errorf("expected read-vs-write races, got %+v", r)
		}
	}
}

func TestAtomicsDoNotRaceWithEachOther(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpAtom, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpAtom, 1, 0x1).addr(0x10000).at(20).rec())
	d.Handle(rec(trace.OpAtom, 2, 0x1).addr(0x10000).at(30).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("atomic-atomic races = %v, want none", rep.Races)
	}
}

func TestAtomicVsPlainWriteRaces(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	d.Handle(rec(trace.OpAtom, 1, 0x1).addr(0x10000).at(20).rec())
	rep := d.Report()
	if rep.RaceCount() != 1 {
		t.Fatalf("INITATOM race missed: %v", rep.Races)
	}
	// And plain write over an atomic also races.
	d2 := newDet(Options{})
	d2.Handle(rec(trace.OpAtom, 0, 0x1).addr(0x10000).at(10).rec())
	d2.Handle(rec(trace.OpWrite, 1, 0x1).addr(0x10000).at(20).rec())
	if d2.Report().RaceCount() != 1 {
		t.Fatalf("write-over-atomic race missed: %v", d2.Report().Races)
	}
}

func TestAtomicsAloneDoNotSynchronize(t *testing.T) {
	d := newDet(Options{})
	// Warp 0 writes data, then "publishes" via a bare atomic; warp 1
	// "consumes" via a bare atomic and reads data. Atomics imply no
	// ordering, so the data access races.
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x20000).at(10).rec())
	d.Handle(rec(trace.OpAtom, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpAtom, 1, 0x1).addr(0x10000).at(20).rec())
	d.Handle(rec(trace.OpRead, 1, 0x1).addr(0x20000).at(21).rec())
	rep := d.Report()
	if rep.RaceCount() != 1 {
		t.Fatalf("races = %v, want the data race (atomics don't sync)", rep.Races)
	}
	if rep.Races[0].Addr != 0x20000 {
		t.Errorf("race on %#x, want the data location", rep.Races[0].Addr)
	}
}

func TestBlockScopedReleaseAcquireOrders(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x20000).at(10).rec())
	d.Handle(rec(trace.OpRelBlk, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpAcqBlk, 1, 0x1).addr(0x10000).at(20).rec())
	d.Handle(rec(trace.OpRead, 1, 0x1).addr(0x20000).at(21).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("block-scoped sync within a block failed: %v", rep.Races)
	}
}

func TestBlockScopedSyncAcrossBlocksDoesNotOrder(t *testing.T) {
	// The Figure 4 litmus result: membar.cta is insufficient between
	// blocks.
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x20000).at(10).rec())
	d.Handle(rec(trace.OpRelBlk, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpAcqBlk, 2, 0x1).addr(0x10000).at(20).rec()) // other block
	d.Handle(rec(trace.OpRead, 2, 0x1).addr(0x20000).at(21).rec())
	rep := d.Report()
	if rep.RaceCount() != 1 {
		t.Fatalf("races = %v, want 1 (cta fences don't sync across blocks)", rep.Races)
	}
	if rep.Races[0].Kind != InterBlock {
		t.Errorf("race kind = %v", rep.Races[0].Kind)
	}
}

func TestGlobalScopedSyncAcrossBlocksOrders(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x20000).at(10).rec())
	d.Handle(rec(trace.OpRelGlb, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpAcqGlb, 2, 0x1).addr(0x10000).at(20).rec())
	d.Handle(rec(trace.OpRead, 2, 0x1).addr(0x20000).at(21).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("global sync across blocks failed: %v", rep.Races)
	}
}

func TestGlobalReleaseBlockAcquire(t *testing.T) {
	// §3.3.4: a global release in one block synchronizes with an
	// acquire in any other block even if the latter is block-scoped.
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x20000).at(10).rec())
	d.Handle(rec(trace.OpRelGlb, 0, 0x1).addr(0x10000).at(11).rec())
	d.Handle(rec(trace.OpAcqBlk, 2, 0x1).addr(0x10000).at(20).rec())
	d.Handle(rec(trace.OpRead, 2, 0x1).addr(0x20000).at(21).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("global release + block acquire failed: %v", rep.Races)
	}
}

func TestAcqRelLockHandoffChain(t *testing.T) {
	// A lock bouncing between three warps: each holder's writes are
	// ordered before the next holder's.
	d := newDet(Options{})
	lock, data := uint64(0x10000), uint64(0x20000)
	holders := []int{0, 1, 2}
	for i, w := range holders {
		d.Handle(rec(trace.OpArGlb, w, 0x1).addr(lock).at(uint32(100 + i)).rec()) // acquire
		d.Handle(rec(trace.OpWrite, w, 0x1).addr(data).at(uint32(200 + i)).rec())
		d.Handle(rec(trace.OpArGlb, w, 0x1).addr(lock).at(uint32(300 + i)).rec()) // release
	}
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("lock handoff chain produced races: %v", rep.Races)
	}
}

func TestBranchOrderingRace(t *testing.T) {
	// The new bug class from the paper: writes on the two sides of a
	// divergent branch to the same location are logically concurrent.
	d := newDet(Options{})
	d.Handle(rec(trace.OpIf, 0, 0x3).rec()) // lanes 0,1 take the first path
	d.Handle(rec(trace.OpWrite, 0, 0x3).addr(0x10000).vals(1, 1).at(10).rec())
	d.Handle(rec(trace.OpElse, 0, 0xC).rec())
	d.Handle(rec(trace.OpWrite, 0, 0xC).addr(0x10000).vals(0, 0, 2, 2).at(20).rec())
	d.Handle(rec(trace.OpFi, 0, full4).rec())
	rep := d.Report()
	found := false
	for _, r := range rep.Races {
		if r.Kind == IntraWarp && !r.SameInstr && r.Prev.PC == 10 && r.Cur.PC == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("branch-ordering race not found: %v", rep.Races)
	}
	// After reconvergence, later accesses are ordered with both paths.
	d.Handle(rec(trace.OpWrite, 0, full4).stride(0x30000).at(30).rec())
	d.Handle(rec(trace.OpRead, 0, full4).addr(0x10000).at(31).rec())
	for _, r := range d.Report().Races {
		if r.Cur.PC == 31 {
			t.Errorf("post-reconvergence read races: %+v", r)
		}
	}
}

func TestBranchPathsSeparateLocationsNoRace(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpIf, 0, 0x3).rec())
	d.Handle(rec(trace.OpWrite, 0, 0x3).addr(0x10000).vals(1, 1).at(10).rec())
	d.Handle(rec(trace.OpElse, 0, 0xC).rec())
	d.Handle(rec(trace.OpWrite, 0, 0xC).addr(0x20000).vals(0, 0, 2, 2).at(20).rec())
	d.Handle(rec(trace.OpFi, 0, full4).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("disjoint branch writes raced: %v", rep.Races)
	}
}

func TestSharedMemoryBlockPrivate(t *testing.T) {
	d := newDet(Options{})
	// Same shared address in different blocks never conflicts.
	d.Handle(rec(trace.OpWrite, 0, 0x1).shared().addr(16).at(10).rec())
	d.Handle(rec(trace.OpWrite, 2, 0x1).shared().addr(16).at(20).rec())
	if rep := d.Report(); rep.RaceCount() != 0 {
		t.Errorf("shared memory leaked across blocks: %v", rep.Races)
	}
	// Within a block it conflicts as usual.
	d.Handle(rec(trace.OpWrite, 1, 0x1).shared().addr(16).at(30).rec())
	if d.Report().RaceCount() != 1 {
		t.Error("intra-block shared race missed")
	}
}

func TestRaceDedupAndCount(t *testing.T) {
	d := newDet(Options{})
	for i := 0; i < 10; i++ {
		d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000 + uint64(i)*64).at(10).rec())
		d.Handle(rec(trace.OpWrite, 1, 0x1).addr(0x10000 + uint64(i)*64).at(20).rec())
	}
	rep := d.Report()
	if rep.RaceCount() != 1 {
		t.Fatalf("static races = %d, want 1", rep.RaceCount())
	}
	// Size-4 accesses at 1-byte granularity: 4 cells per conflict.
	if rep.Races[0].Count != 40 {
		t.Errorf("dynamic count = %d, want 40", rep.Races[0].Count)
	}
}

func TestReportMetadata(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).addr(0x10000).at(10).rec())
	rep := d.Report()
	if rep.RecordsSeen != 1 {
		t.Errorf("RecordsSeen = %d", rep.RecordsSeen)
	}
	if rep.HasRaces() {
		t.Error("HasRaces on clean report")
	}
	if s := (Race{Kind: InterBlock, Space: logging.SpaceGlobal, Addr: 1,
		Prev: Access{Write: true}, Cur: Access{}}).String(); s == "" {
		t.Error("Race.String empty")
	}
}

func TestFormatStats(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, full4).stride(0x10000).vals(1, 2, 3, 4).at(10).rec())
	d.Handle(rec(trace.OpIf, 1, 0x3).rec())
	stats := d.FormatStats()
	if stats[ptvc.Converged] == 0 {
		t.Errorf("format stats = %v, want converged groups", stats)
	}
	if stats[ptvc.Diverged] == 0 {
		t.Errorf("format stats = %v, want a diverged group", stats)
	}
}

// --- Cross-check: compressed detector vs full-VC baseline -------------

// genRandomStream produces a well-formed random record stream.
func genRandomStream(r *rand.Rand, n int) []*logging.Record {
	var out []*logging.Record
	depth := make([]int, 4)      // divergence depth per warp
	elseDone := make([]bool, 4)  // whether the top frame switched already
	masks := make([][]uint32, 4) // active mask stack per warp
	pending := make([]uint32, 4) // second-path mask of the top frame
	for w := range masks {
		masks[w] = []uint32{full4}
	}
	addrs := []uint64{0x10000, 0x10040, 0x20000}
	for len(out) < n {
		w := r.Intn(4)
		cur := masks[w][len(masks[w])-1]
		switch op := r.Intn(12); {
		case op < 5: // memory access
			kind := []trace.OpKind{trace.OpRead, trace.OpWrite, trace.OpAtom}[r.Intn(3)]
			b := rec(kind, w, cur).addr(addrs[r.Intn(len(addrs))]).at(uint32(r.Intn(30)))
			for i := range b.r.Vals {
				b.r.Vals[i] = uint64(r.Intn(3))
			}
			out = append(out, b.rec())
		case op < 7 && depth[w] == 0 && popcnt(cur) >= 2: // diverge
			var first uint32
			for first == 0 || first == cur {
				first = cur & uint32(r.Intn(16))
			}
			out = append(out, rec(trace.OpIf, w, first).rec())
			pending[w] = cur &^ first
			masks[w] = append(masks[w], first)
			depth[w] = 1
			elseDone[w] = false
		case op < 8 && depth[w] == 1 && !elseDone[w]: // else
			out = append(out, rec(trace.OpElse, w, pending[w]).rec())
			masks[w][len(masks[w])-1] = pending[w]
			elseDone[w] = true
		case op < 9 && depth[w] == 1 && elseDone[w]: // fi
			masks[w] = masks[w][:len(masks[w])-1]
			out = append(out, rec(trace.OpFi, w, masks[w][len(masks[w])-1]).rec())
			depth[w] = 0
		case op < 10: // sync op on a lock location
			kinds := []trace.OpKind{
				trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
				trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb,
			}
			out = append(out, rec(kinds[r.Intn(len(kinds))], w, cur).addr(0x30000).at(uint32(40+r.Intn(5))).rec())
		default: // barrier over a block if both warps converged
			blk := r.Intn(2)
			w0, w1 := blk*2, blk*2+1
			if depth[w0] != 0 || depth[w1] != 0 {
				continue
			}
			out = append(out,
				rec(trace.OpBar, w0, full4).at(50).rec(),
				rec(trace.OpBar, w1, full4).at(50).rec(),
				rec(trace.OpBarRel, w0, 0b11).rec())
		}
	}
	return out
}

func popcnt(m uint32) int {
	n := 0
	for ; m != 0; m >>= 1 {
		n += int(m & 1)
	}
	return n
}

// raceSig is the comparable signature of a static race.
func raceSig(r Race) string {
	return fmt.Sprintf("%v/%v/%d/%d/%v/%v/%v", r.Kind, r.Space, r.Prev.PC, r.Cur.PC,
		r.Prev.Write, r.Cur.Write, r.SameInstr)
}

func TestPropCompressedMatchesFullVC(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		stream := genRandomStream(r, 120)
		dc := newDet(Options{})
		df := newDet(Options{FullVC: true})
		for _, rc := range stream {
			cp1, cp2 := *rc, *rc
			dc.Handle(&cp1)
			df.Handle(&cp2)
		}
		sigs := func(rep *Report) []string {
			var out []string
			for _, rc := range rep.Races {
				out = append(out, raceSig(rc))
			}
			sort.Strings(out)
			return out
		}
		a, b := sigs(dc.Report()), sigs(df.Report())
		if len(a) != len(b) {
			t.Fatalf("seed %d: compressed found %d races, full VC %d\ncompressed: %v\nfull: %v",
				seed, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: race sets differ:\ncompressed: %v\nfull: %v", seed, a, b)
			}
		}
	}
}
