package core

import (
	"strings"
	"testing"

	"barracuda/internal/trace"
)

// TestWorkerShardMerge: counters recorded through per-goroutine workers
// and the legacy worker-less Handle must all appear in Report and
// FormatHistogram.
func TestWorkerShardMerge(t *testing.T) {
	d := newDet(Options{})
	w0 := d.NewWorker()
	w1 := d.NewWorker()

	// Block 0 through w0, block 1 through w1, plus one record through
	// the legacy path.
	w0.Handle(rec(trace.OpWrite, 0, full4).at(10).stride(0x100).rec())
	w0.Handle(rec(trace.OpRead, 0, full4).at(11).stride(0x100).rec())
	w1.Handle(rec(trace.OpWrite, 2, full4).at(12).stride(0x200).rec())
	d.Handle(rec(trace.OpRead, 2, full4).at(13).stride(0x200).rec())

	rep := d.Report()
	if rep.RecordsSeen != 4 {
		t.Errorf("RecordsSeen = %d, want 4 (shards not merged)", rep.RecordsSeen)
	}
	if rep.HasRaces() {
		t.Errorf("unexpected races: %v", rep.Races)
	}
	var total uint64
	for _, n := range d.FormatHistogram() {
		total += n
	}
	if total != 4 {
		t.Errorf("format histogram total = %d, want 4 (memory records)", total)
	}
}

// TestWorkerSameValueShard: the same-value filter count lands in the
// worker shard and is merged into the report.
func TestWorkerSameValueShard(t *testing.T) {
	d := newDet(Options{})
	w := d.NewWorker()
	// Two lanes of one warp write the same value to one address in the
	// same instruction: filtered, not a race.
	w.Handle(rec(trace.OpWrite, 0, 0x3).at(20).addr(0x40).vals(7, 7).rec())
	rep := d.Report()
	if rep.HasRaces() {
		t.Fatalf("same-value write reported as race: %v", rep.Races)
	}
	// One filtered pair per covered shadow cell: Size=4 at granularity 1.
	if rep.SameValueGag != 4 {
		t.Errorf("SameValueGag = %d, want 4", rep.SameValueGag)
	}
}

// TestWorkerWarpCacheConsistency: the worker's last-warp cache must
// return the same mirror the detector owns, across warp switches.
func TestWorkerWarpCacheConsistency(t *testing.T) {
	d := newDet(Options{})
	w := d.NewWorker()
	for i := 0; i < 3; i++ {
		for warp := 0; warp < 4; warp++ {
			w.Handle(rec(trace.OpWrite, warp, full4).at(uint32(30 + warp)).stride(uint64(0x1000 * warp)).rec())
		}
	}
	for warp := 0; warp < 4; warp++ {
		if w.warp(warp) != d.warp(warp) {
			t.Errorf("warp %d: cached mirror differs from detector's", warp)
		}
	}
	if rep := d.Report(); rep.HasRaces() {
		t.Errorf("unexpected races: %v", rep.Races)
	}
}

// TestCanonicalDigestOrientationInvariant: the digest must be identical
// whichever side of a race was processed first.
func TestCanonicalDigestOrientationInvariant(t *testing.T) {
	// Orientation A: warp 0 (block 0) writes, then warp 2 (block 1)
	// writes the same global address — inter-block, prev = warp 0.
	dA := newDet(Options{})
	dA.Handle(rec(trace.OpWrite, 0, 0x1).at(10).addr(0x80).rec())
	dA.Handle(rec(trace.OpWrite, 2, 0x1).at(20).addr(0x80).rec())

	// Orientation B: same two accesses, opposite processing order.
	dB := newDet(Options{})
	dB.Handle(rec(trace.OpWrite, 2, 0x1).at(20).addr(0x80).rec())
	dB.Handle(rec(trace.OpWrite, 0, 0x1).at(10).addr(0x80).rec())

	a, b := dA.Report(), dB.Report()
	if !a.HasRaces() || !b.HasRaces() {
		t.Fatalf("races not detected: A=%d B=%d", a.RaceCount(), b.RaceCount())
	}
	da, db := a.CanonicalDigest(), b.CanonicalDigest()
	if da != db {
		t.Errorf("digest depends on processing order:\n--- A ---\n%s--- B ---\n%s", da, db)
	}
	if !strings.Contains(da, "inter-block") {
		t.Errorf("digest missing race kind:\n%s", da)
	}
}

// TestCanonicalDigestReadWriteOrientation: a read/write pair detected in
// either orientation (write-sees-reader vs read-sees-writer) merges to
// the same digest line.
func TestCanonicalDigestReadWriteOrientation(t *testing.T) {
	dA := newDet(Options{})
	dA.Handle(rec(trace.OpRead, 0, 0x1).at(10).addr(0x80).rec())
	dA.Handle(rec(trace.OpWrite, 2, 0x1).at(20).addr(0x80).rec())

	dB := newDet(Options{})
	dB.Handle(rec(trace.OpWrite, 2, 0x1).at(20).addr(0x80).rec())
	dB.Handle(rec(trace.OpRead, 0, 0x1).at(10).addr(0x80).rec())

	da, db := dA.Report().CanonicalDigest(), dB.Report().CanonicalDigest()
	if da != db {
		t.Errorf("read/write orientation not normalized:\n--- A ---\n%s--- B ---\n%s", da, db)
	}
}

// TestCanonicalDigestTiers: shared-space races are digested exactly
// (both PCs, dynamic count); global-space races are digested
// structurally (writer PCs kept, reader PCs and counts dropped) because
// reader attribution and pair multiplicity on a cross-queue word are
// scheduling-dependent.
func TestCanonicalDigestTiers(t *testing.T) {
	d := newDet(Options{})
	// Shared: two warps of block 0, unsynchronized write-write.
	d.Handle(rec(trace.OpWrite, 0, 0x1).at(10).addr(0x80).shared().rec())
	d.Handle(rec(trace.OpWrite, 1, 0x1).at(20).addr(0x80).shared().rec())
	// Global: block 0 reads, block 1 writes the same word.
	d.Handle(rec(trace.OpRead, 0, 0x1).at(30).addr(0x200).rec())
	d.Handle(rec(trace.OpWrite, 2, 0x1).at(40).addr(0x200).rec())
	dig := d.Report().CanonicalDigest()
	if !strings.Contains(dig, "shared {10 write | 20 write} sameInstr=false x") {
		t.Errorf("shared race not digested exactly:\n%s", dig)
	}
	if !strings.Contains(dig, "global {read | 40 write} sameInstr=false\n") {
		t.Errorf("global race not digested structurally (reader PC and count dropped):\n%s", dig)
	}
	if strings.Contains(dig, "30 read") {
		t.Errorf("global reader PC leaked into digest:\n%s", dig)
	}
}

// TestCanonicalDigestDistinguishesRaces: different static races must not
// collapse into one digest line.
func TestCanonicalDigestDistinguishesRaces(t *testing.T) {
	d := newDet(Options{})
	d.Handle(rec(trace.OpWrite, 0, 0x1).at(10).addr(0x80).rec())
	d.Handle(rec(trace.OpWrite, 2, 0x1).at(20).addr(0x80).rec())
	d.Handle(rec(trace.OpWrite, 0, 0x1).at(11).addr(0x180).rec())
	d.Handle(rec(trace.OpWrite, 1, 0x1).at(21).addr(0x180).rec())
	dig := d.Report().CanonicalDigest()
	if n := strings.Count(dig, "race "); n != 2 {
		t.Errorf("digest has %d race lines, want 2:\n%s", n, dig)
	}
}
