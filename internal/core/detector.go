// Package core implements the BARRACUDA data race detection algorithm
// (PLDI 2017, §3.3): the operational rules of Figures 2 and 3 over the
// analysis state (K, C, S, R, W), where
//
//	K — per-warp SIMT-mirror stacks of compressed per-thread vector
//	    clocks (package ptvc)
//	C — per-thread vector clocks, stored at warp granularity
//	S — per-synchronization-location, per-block vector clocks
//	R, W — per-location read/write metadata (package shadow)
//
// The detector consumes the warp-level records produced by instrumented
// kernels (package logging) and reports data races classified as
// intra-warp (divergence), intra-block or inter-block, plus barrier
// divergence errors. Intra-warp write-write races where every lane stores
// the same value are filtered, following the CUDA documentation's
// guarantee that such writes are well-defined.
//
// Concurrency: each queue-consumer goroutine should create a Worker with
// NewWorker and deliver records through Worker.Handle, keeping all
// records of one thread block on the same worker (the block-to-queue
// affinity of package logging guarantees this). Per-warp and per-block
// state is block-affine; shadow cells use per-location spinlocks; and
// per-record statistics (record count, same-value filter count, PTVC
// format histogram) live in per-worker shards merged lazily by Report
// and FormatHistogram — so the per-record fast path of a memory access
// acquires no mutex at all. Only the rare events (a detected race, a
// barrier divergence) take the report mutex. Detector.Handle remains as
// a worker-less convenience for tests and single-consumer callers; it is
// safe for concurrent use but skips the worker-private caches.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// RaceKind classifies a detected race by the threads involved.
type RaceKind int

// Race classifications (§4.3.3: "the offending TIDs are examined to
// classify the race as a divergence race, an intra-block race or
// inter-block race").
const (
	IntraWarp RaceKind = iota // same warp: same-instruction or branch-ordering
	IntraBlock
	InterBlock
)

func (k RaceKind) String() string {
	switch k {
	case IntraWarp:
		return "intra-warp"
	case IntraBlock:
		return "intra-block"
	case InterBlock:
		return "inter-block"
	}
	return "?"
}

// Access describes one side of a race.
type Access struct {
	TID    vc.TID
	PC     uint32 // source line of the access
	Write  bool
	Atomic bool
}

// Race is one detected data race.
type Race struct {
	Kind      RaceKind
	Space     logging.SpaceID
	Block     int32 // thread block (shared memory), -1 for global
	Addr      uint64
	Prev, Cur Access
	SameInstr bool // both accesses in the same warp instruction
	Count     int  // dynamic occurrences of this static race
}

func (r Race) String() string {
	rw := func(a Access) string {
		switch {
		case a.Atomic:
			return "atomic"
		case a.Write:
			return "write"
		default:
			return "read"
		}
	}
	return fmt.Sprintf("%s race on %s memory at %#x: %s (line %d, thread %d) vs %s (line %d, thread %d)",
		r.Kind, r.Space, r.Addr, rw(r.Prev), r.Prev.PC, r.Prev.TID, rw(r.Cur), r.Cur.PC, r.Cur.TID)
}

// BarrierDivergence is a bar.sync executed with inactive threads.
type BarrierDivergence struct {
	Block int
	Warp  int
	PC    uint32
	Mask  uint32 // active mask at the barrier
}

// Report aggregates everything the detector found.
type Report struct {
	Races        []Race
	Divergences  []BarrierDivergence
	RecordsSeen  uint64
	SameValueGag uint64 // intra-warp same-value writes filtered

	// Shadow snapshots the shadow-memory occupancy and the adaptive-
	// tier counters (ownership claims/inflations, evictions,
	// compactions) at report time. Diagnostic only: the canonical
	// digest does not cover it.
	Shadow shadow.MemStats
	// PrecisionDegraded is true when an LRU eviction discarded live
	// shadow metadata: from that point on, races involving the
	// discarded epochs can go unreported (never falsely reported).
	PrecisionDegraded bool
}

// RaceCount returns the number of distinct static races.
func (r *Report) RaceCount() int { return len(r.Races) }

// HasRaces reports whether any race or barrier divergence was found.
func (r *Report) HasRaces() bool { return len(r.Races) > 0 }

// CountKind returns the number of distinct races of one kind.
func (r *Report) CountKind(k RaceKind) int {
	n := 0
	for _, rc := range r.Races {
		if rc.Kind == k {
			n++
		}
	}
	return n
}

// Options tunes the detector.
type Options struct {
	// Granularity is the shadow bytes per cell (default 1).
	Granularity int
	// MaxRaces bounds the number of distinct races recorded (default
	// 1024; 0 means the default).
	MaxRaces int
	// NoSameValueFilter disables the intra-warp same-value write filter.
	NoSameValueFilter bool
	// FullVC replaces the compressed PTVC representation with plain
	// per-thread vector clocks — the ablation baseline for §4.3.1.
	FullVC bool
	// PerCellShadow disables the coalesced-span fast path, forcing every
	// warp access down the per-cell shadow loop — the A/B baseline for
	// the span optimization (pattern of gpusim's LaneMajor knob).
	PerCellShadow bool
	// Ownership enables the exclusive-ownership fast tier (owned.go):
	// regions touched by a single warp or block skip the epoch checks
	// entirely. Requires span mode (no effect under FullVC or
	// PerCellShadow, which the detector-level Config rejects).
	Ownership bool
	// ShadowCapBytes bounds the resident shadow (global pages + shared
	// slabs) to this many bytes via LRU eviction, and enables epoch-
	// based compaction of shared slabs at fully-converged block
	// barriers. 0 means unbounded. Requires span mode.
	ShadowCapBytes int64
	// OnRace, when set, is invoked once per *new* static race, at the
	// moment of discovery (subsequent dynamic occurrences only bump the
	// count and do not re-fire). The callback runs under the detector's
	// report lock on a detection worker goroutine, so it must be fast and
	// must never block indefinitely or call back into the detector; the
	// streaming job API hands it a buffered channel sized to MaxRaces so
	// a send can never block. The Race passed is a snapshot (Count == 1).
	OnRace func(Race)
}

// raceKey dedupes dynamic races into static ones.
type raceKey struct {
	kind       RaceKind
	space      logging.SpaceID
	prevPC     uint32
	curPC      uint32
	prevW      bool
	curW       bool
	sameInstr  bool
	prevAtomic bool
}

// frame is one divergence level of a warp's mirror stack.
type frame struct {
	second    *ptvc.Group // pending second path (nil once it started)
	firstDone *ptvc.Group // completed first path, kept for the merge
}

// warpMirror mirrors one warp's SIMT stack.
type warpMirror struct {
	stack  []*ptvc.Group // stack[0] is the base group; top is active
	frames []frame       // one per divergence level
}

func (w *warpMirror) top() *ptvc.Group { return w.stack[len(w.stack)-1] }

// Detector is the BARRACUDA analysis state plus race reports.
type Detector struct {
	geo  ptvc.Geometry
	opts Options
	mem  *shadow.Memory

	// spans enables the coalesced-span fast path (shadow memory in
	// region-lock mode with uniform-span summaries). Off under FullVC
	// (per-thread clocks are not uniform across a warp) and under the
	// PerCellShadow baseline knob.
	spans bool

	// owned enables the exclusive-ownership fast tier and compact the
	// barrier-time shared-slab compaction; both require span mode.
	owned   bool
	compact bool

	warps []*warpMirror // indexed by global warp id; block-affine access

	// repMu guards only the slow path: the race dedup map and the
	// barrier-divergence list. It is never taken for a record that does
	// not report anything.
	repMu    sync.Mutex
	races    map[raceKey]*Race
	diverge  []BarrierDivergence
	divergeK map[[2]uint32]bool
	fullVC   *fullVCState // non-nil in the FullVC ablation mode

	// base is the shared stats shard behind the worker-less Handle; its
	// counters are atomic so concurrent legacy callers stay safe, but
	// its worker-private caches are disabled.
	base Worker

	// workers registers every NewWorker shard for the lazy merges in
	// Report, FormatHistogram and RecordsSeen.
	workersMu sync.Mutex
	workers   []*Worker

	// syncCursor orders synchronization records globally across queue
	// consumers: a sync record with sequence s is processed only after
	// every sync record with a smaller sequence (and, by per-queue FIFO
	// order, everything program-ordered before them). Without this, a
	// release in one queue could be processed after a dependent acquire
	// from another queue, losing the synchronization edge.
	syncCursor atomic.Uint64
}

// Worker is one queue consumer's private view of a Detector. It shards
// the per-record statistics (record count, same-value filter count, PTVC
// format histogram) so the hot path touches only worker-local cache
// lines, and carries the worker's shadow-lookup and warp-mirror caches.
// A Worker must not be shared across goroutines (except the detector's
// own base shard, which disables the caches).
type Worker struct {
	d       *Detector
	caching bool // false only for the shared base shard

	// Counters are atomic so Report/FormatHistogram may run while
	// workers are still consuming; the adds are uncontended (one writer
	// per shard) and therefore cheap.
	records   atomic.Uint64
	sameValue atomic.Uint64
	hist      [4]atomic.Uint64

	span shadow.SpanCache

	// Last-warp cache: records arrive in bursts from the same warp, so
	// remembering the previous mirror skips the shared-slice lookup.
	lastGwid int32
	lastWarp *warpMirror
}

// NewWorker creates and registers a per-goroutine worker shard.
func (d *Detector) NewWorker() *Worker {
	w := &Worker{d: d, caching: true, lastGwid: -1}
	d.workersMu.Lock()
	d.workers = append(d.workers, w)
	d.workersMu.Unlock()
	return w
}

// shards snapshots the registered worker shards plus the base shard.
func (d *Detector) shards() []*Worker {
	d.workersMu.Lock()
	out := make([]*Worker, 0, len(d.workers)+1)
	out = append(out, &d.base)
	out = append(out, d.workers...)
	d.workersMu.Unlock()
	return out
}

// New creates a detector for a launch with the given geometry and
// per-block static shared-memory size.
func New(geo ptvc.Geometry, sharedBytes int64, opts Options) *Detector {
	if opts.Granularity < 1 {
		opts.Granularity = 1
	}
	if opts.MaxRaces <= 0 {
		opts.MaxRaces = 1024
	}
	d := &Detector{
		geo:      geo,
		opts:     opts,
		mem:      shadow.New(opts.Granularity, sharedBytes),
		warps:    make([]*warpMirror, geo.Blocks*geo.WarpsPerBlock()),
		races:    make(map[raceKey]*Race),
		divergeK: make(map[[2]uint32]bool),
	}
	d.base.d = d
	d.base.lastGwid = -1
	if opts.FullVC {
		d.fullVC = newFullVCState(geo)
	} else if !opts.PerCellShadow {
		d.spans = true
		d.mem.EnableSpans(geo)
		if opts.Ownership {
			d.owned = true
			d.mem.EnableOwnership()
		}
		if opts.ShadowCapBytes > 0 {
			d.compact = true
			d.mem.SetCapBytes(opts.ShadowCapBytes)
		}
	}
	return d
}

// Geometry returns the launch geometry the detector was built for.
func (d *Detector) Geometry() ptvc.Geometry { return d.geo }

// Shadow exposes the shadow memory (stats and tests).
func (d *Detector) Shadow() *shadow.Memory { return d.mem }

// warp returns the mirror state of a global warp through the worker's
// last-warp cache.
func (w *Worker) warp(gwid int) *warpMirror {
	if w.caching && int32(gwid) == w.lastGwid {
		return w.lastWarp
	}
	m := w.d.warp(gwid)
	if w.caching {
		w.lastGwid = int32(gwid)
		w.lastWarp = m
	}
	return m
}

// warp returns (creating lazily) the mirror state of a global warp.
func (d *Detector) warp(gwid int) *warpMirror {
	w := d.warps[gwid]
	if w == nil {
		lanes := d.geo.BlockSize - (gwid%d.geo.WarpsPerBlock())*d.geo.WarpSize
		if lanes > d.geo.WarpSize {
			lanes = d.geo.WarpSize
		}
		var mask uint32
		if lanes >= 32 {
			mask = ^uint32(0)
		} else {
			mask = 1<<uint(lanes) - 1
		}
		w = &warpMirror{stack: []*ptvc.Group{ptvc.NewGroup(d.geo, gwid, mask)}}
		d.warps[gwid] = w
	}
	return w
}

// Handle processes one record without a per-goroutine worker: stats land
// in the detector's shared base shard (atomically, so concurrent callers
// stay safe) and the worker-private caches are skipped. Queue consumers
// should prefer NewWorker + Worker.Handle.
func (d *Detector) Handle(r *logging.Record) {
	d.base.Handle(r)
}

// Handle processes one record (the detector's per-event entry point).
func (w *Worker) Handle(r *logging.Record) {
	if r.Op == trace.OpFlush {
		// Producer-side filter flush: Seq suppressed records for this warp
		// since the last flush. They are provably report-neutral, but they
		// would have counted toward RecordsSeen and the format histogram, so
		// merge them back here. The producer flushes before anything that
		// changes the warp's group format, so the current top format is the
		// one every suppressed record would have been counted under.
		w.records.Add(r.Seq)
		g := w.warp(int(r.Warp)).top()
		w.hist[g.Format()].Add(r.Seq)
		return
	}
	w.records.Add(1)
	d := w.d
	if d.fullVC != nil {
		d.handleFullVC(r, w)
		return
	}
	switch r.Op {
	case trace.OpRead, trace.OpWrite, trace.OpAtom:
		d.handleMemory(r, w)
	case trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
		trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb:
		d.handleSync(r, w)
	case trace.OpBar:
		d.handleBarMarker(r, w)
	case trace.OpBarRel:
		d.handleBarRelease(r, w)
	case trace.OpIf:
		d.handleIf(r, w)
	case trace.OpElse:
		d.handleElse(r, w)
	case trace.OpFi:
		d.handleFi(r, w)
	case trace.OpEnd, trace.OpNone:
		// stream control; nothing to do
	}
}

// ordered reports whether epoch e happens-before the current operation of
// the group's active lane `tid`.
func ordered(g *ptvc.Group, tid vc.TID, e vc.Epoch) bool {
	if e.IsZero() {
		return true
	}
	if e.T == tid {
		return e.C <= g.L
	}
	return g.EpochOrdered(e)
}

// handleMemory implements the READ*/WRITE*/ATOM* rules for every active
// lane of a warp-level memory record, followed by ENDINSN. This is the
// per-record fast path: no mutex is acquired anywhere on it — stats go
// to the worker's shard, shadow lookups go through the worker's span
// cache over the lock-free page table, and cells use CAS spinlocks.
func (d *Detector) handleMemory(r *logging.Record, w *Worker) {
	g := w.warp(int(r.Warp)).top()
	w.hist[g.Format()].Add(1)
	if !d.tryOwned(r, g, w) && !d.trySpan(r, g, w) {
		var span *shadow.SpanCache
		if w.caching {
			span = &w.span
		}
		d.forEachLaneCell(span, r, func(lane int, tid vc.TID, c *shadow.Cell) {
			switch r.Op {
			case trace.OpRead:
				d.applyRead(c, g, tid, r, lane)
			case trace.OpWrite:
				d.applyWrite(c, g, tid, r, lane, false, w)
			case trace.OpAtom:
				d.applyAtomic(c, g, tid, r, lane)
			}
		})
	}
	g.EndInstr()
}

func (d *Detector) applyRead(c *shadow.Cell, g *ptvc.Group, tid vc.TID, r *logging.Record, lane int) {
	if !ordered(g, tid, c.W) {
		d.report(tid, r, lane, false, c.W.T, c.WritePC, true, c.Atomic, false)
	}
	if c.ReadShared {
		// READSHARED: concurrent readers use the sparse read clock.
		c.Readers[tid] = g.L
		c.ReadPC = r.PC
		return
	}
	if ordered(g, tid, c.R) {
		// READEXCL: totally-ordered reads stay an epoch.
		c.R = vc.Epoch{T: tid, C: g.L}
		c.ReadPC = r.PC
		return
	}
	// READINFLATE: first concurrent read inflates to a read map.
	c.InflateReads()
	c.Readers[tid] = g.L
	c.ReadPC = r.PC
}

func (d *Detector) applyWrite(c *shadow.Cell, g *ptvc.Group, tid vc.TID, r *logging.Record, lane int, atomic bool, w *Worker) {
	if !ordered(g, tid, c.W) {
		// Same-instruction intra-warp write-write: filter when the
		// lanes stored the same value (§3.3.1).
		sameInstr := d.sameInstruction(g, c.W, tid)
		filtered := false
		if sameInstr && !d.opts.NoSameValueFilter && r.Op == trace.OpWrite && !c.Atomic {
			prevLane := d.geo.LaneOf(c.W.T)
			if r.Mask&(1<<uint(prevLane)) != 0 && r.Vals[prevLane] == r.Vals[lane] {
				filtered = true
				w.sameValue.Add(1)
			}
		}
		if !filtered {
			d.report(tid, r, lane, true, c.W.T, c.WritePC, true, c.Atomic, sameInstr)
		}
	}
	d.checkReaders(c, g, tid, r, lane)
	c.W = vc.Epoch{T: tid, C: g.L}
	c.Atomic = atomic
	c.WritePC = r.PC
	c.ClearReads()
}

func (d *Detector) applyAtomic(c *shadow.Cell, g *ptvc.Group, tid vc.TID, r *logging.Record, lane int) {
	if c.Atomic {
		// ATOMEXCL/ATOMSHARED: atomic-to-atomic needs no write check —
		// atomics do not race with each other (nor synchronize).
		d.checkReaders(c, g, tid, r, lane)
	} else {
		// INITATOM*: the previous write was non-atomic; PTX gives no
		// atomicity guarantee against normal stores.
		if !ordered(g, tid, c.W) {
			d.report(tid, r, lane, true, c.W.T, c.WritePC, true, false, false)
		}
		d.checkReaders(c, g, tid, r, lane)
	}
	c.W = vc.Epoch{T: tid, C: g.L}
	c.Atomic = true
	c.WritePC = r.PC
	c.ClearReads()
}

// checkReaders verifies all previous reads happen-before the current
// write/atomic. Readers are visited in TID order: the first racing
// reader becomes the race's reported representative, and map iteration
// order would make that attribution flap from run to run.
func (d *Detector) checkReaders(c *shadow.Cell, g *ptvc.Group, tid vc.TID, r *logging.Record, lane int) {
	if c.ReadShared {
		for _, u := range sortedReaders(c.Readers) {
			if !ordered(g, tid, vc.Epoch{T: u, C: c.Readers[u]}) {
				d.report(tid, r, lane, true, u, c.ReadPC, false, false, false)
			}
		}
		return
	}
	if !ordered(g, tid, c.R) {
		d.report(tid, r, lane, true, c.R.T, c.ReadPC, false, false, false)
	}
}

// sortedReaders returns the read map's TIDs in ascending order.
func sortedReaders(m map[vc.TID]vc.Clock) []vc.TID {
	tids := make([]vc.TID, 0, len(m))
	for u := range m {
		tids = append(tids, u)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	return tids
}

// sameInstruction reports whether the conflicting epoch belongs to an
// active lane-mate at the current local clock — i.e. the two accesses come
// from the same warp instruction.
func (d *Detector) sameInstruction(g *ptvc.Group, e vc.Epoch, tid vc.TID) bool {
	if e.IsZero() || d.geo.WarpOf(e.T) != d.geo.WarpOf(tid) {
		return false
	}
	lane := d.geo.LaneOf(e.T)
	return g.Mask&(1<<uint(lane)) != 0 && e.C == g.L
}

// awaitSyncTurn blocks until every earlier synchronization record has
// been fully processed (cross-queue sync ordering). The bounded backoff
// matters at high queue counts: a consumer whose sync record is far down
// the global order would otherwise burn a core spinning.
func (d *Detector) awaitSyncTurn(r *logging.Record) {
	if r.Seq == 0 {
		return
	}
	var bo logging.Backoff
	for d.syncCursor.Load() != r.Seq-1 {
		bo.Wait()
	}
}

// finishSyncTurn publishes that this sync record is done.
func (d *Detector) finishSyncTurn(r *logging.Record) {
	if r.Seq != 0 {
		d.syncCursor.Store(r.Seq)
	}
}

// handleSync implements ACQ*/REL*/ACQREL* for every active lane, followed
// by ENDINSN. A synchronization access updates S_x and does not undergo
// the plain-access race checks, matching Figure 3.
func (d *Detector) handleSync(r *logging.Record, w *Worker) {
	d.awaitSyncTurn(r)
	defer d.finishSyncTurn(r)
	g := w.warp(int(r.Warp)).top()
	block := d.geo.BlockOfWarp(int(r.Warp))
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	for lane := 0; lane < d.geo.WarpSize && lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		key := shadow.Key{Space: r.Space, Block: blk, Addr: r.LaneAddr(lane)}
		loc := d.mem.SyncFor(key)
		loc.Lock()
		if r.Op.IsAcquire() {
			var snaps []*ptvc.Snapshot
			if r.Op.GlobalScope() {
				snaps = loc.AcquireGlobal(d.geo.Blocks)
			} else {
				snaps = loc.AcquireBlock(block)
			}
			for _, s := range snaps {
				g.Acquire(s)
			}
		}
		if r.Op.IsRelease() {
			snap := g.Snapshot(lane)
			if r.Op.GlobalScope() {
				loc.ReleaseGlobal(snap)
			} else {
				loc.ReleaseBlock(block, snap)
			}
		}
		loc.Unlock()
	}
	g.EndInstr()
}

// handleBarMarker checks a per-warp barrier record for barrier divergence:
// every populated lane of the warp must be active.
func (d *Detector) handleBarMarker(r *logging.Record, w *Worker) {
	g := w.warp(int(r.Warp)).top()
	if r.Mask == g.FullMask && len(w.warp(int(r.Warp)).stack) == 1 {
		return
	}
	key := [2]uint32{r.Warp, r.PC}
	d.repMu.Lock()
	if !d.divergeK[key] {
		d.divergeK[key] = true
		d.diverge = append(d.diverge, BarrierDivergence{
			Block: int(r.Block), Warp: int(r.Warp), PC: r.PC, Mask: r.Mask,
		})
	}
	d.repMu.Unlock()
}

// handleBarRelease applies the BAR rule: a block-wide join of the arrived
// warps' clocks, implemented as a broadcast of the block's maximum clock.
func (d *Detector) handleBarRelease(r *logging.Record, _ *Worker) {
	wpb := d.geo.WarpsPerBlock()
	base := int(r.Block) * wpb
	var groups []*ptvc.Group
	var m vc.Clock
	for wi := 0; wi < wpb && wi < 32; wi++ {
		if r.Mask&(1<<uint(wi)) == 0 {
			continue
		}
		g := d.warp(base + wi).top()
		groups = append(groups, g)
		if g.L > m {
			m = g.L
		}
	}
	ptvc.MergeExt(groups)
	for _, g := range groups {
		g.Barrier(m)
	}
	if d.compact {
		d.maybeCompactShared(r, base, wpb)
	}
}

// handleIf mirrors the SIMT-stack push of a divergent branch (IF rule).
func (d *Detector) handleIf(r *logging.Record, wk *Worker) {
	w := wk.warp(int(r.Warp))
	g := w.top()
	first, second := g.Split(r.Mask)
	w.frames = append(w.frames, frame{second: second})
	w.stack = append(w.stack, first)
}

// handleElse switches to the second divergent path (ELSE rule).
func (d *Detector) handleElse(r *logging.Record, wk *Worker) {
	w := wk.warp(int(r.Warp))
	if len(w.frames) == 0 {
		return // tolerate stray events
	}
	f := &w.frames[len(w.frames)-1]
	if f.second == nil {
		return
	}
	f.firstDone = w.top()
	w.stack[len(w.stack)-1] = f.second
	f.second = nil
}

// handleFi reconverges the paths (FI rule).
func (d *Detector) handleFi(r *logging.Record, wk *Worker) {
	w := wk.warp(int(r.Warp))
	if len(w.frames) == 0 || len(w.stack) < 2 {
		return
	}
	f := w.frames[len(w.frames)-1]
	w.frames = w.frames[:len(w.frames)-1]
	second := w.top()
	w.stack = w.stack[:len(w.stack)-1]
	firstDone := f.firstDone
	if firstDone == nil {
		// The second path never ran (it was empty): merge the single
		// path with itself.
		firstDone = second
	}
	w.top().Merge(firstDone, second)
}

// report records one dynamic race, deduplicating into static races.
func (d *Detector) report(tid vc.TID, r *logging.Record,
	lane int, curWrite bool, prevTID vc.TID, prevPC uint32, prevWrite, prevAtomic, sameInstr bool) {

	kind := InterBlock
	switch {
	case d.geo.WarpOf(prevTID) == d.geo.WarpOf(tid):
		kind = IntraWarp
	case d.geo.BlockOf(prevTID) == d.geo.BlockOf(tid):
		kind = IntraBlock
	}
	key := raceKey{
		kind: kind, space: r.Space, prevPC: prevPC, curPC: r.PC,
		prevW: prevWrite, curW: curWrite, sameInstr: sameInstr,
		prevAtomic: prevAtomic,
	}
	d.repMu.Lock()
	defer d.repMu.Unlock()
	if rc := d.races[key]; rc != nil {
		rc.Count++
		return
	}
	if len(d.races) >= d.opts.MaxRaces {
		return
	}
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	rc := &Race{
		Kind:      kind,
		Space:     r.Space,
		Block:     blk,
		Addr:      r.LaneAddr(lane),
		Prev:      Access{TID: prevTID, PC: prevPC, Write: prevWrite, Atomic: prevAtomic},
		Cur:       Access{TID: tid, PC: r.PC, Write: curWrite, Atomic: r.Op == trace.OpAtom},
		SameInstr: sameInstr,
		Count:     1,
	}
	d.races[key] = rc
	if d.opts.OnRace != nil {
		d.opts.OnRace(*rc)
	}
}

// Report snapshots the detector's findings, with races ordered by source
// position for stable output. The per-record counters are merged from
// the worker shards here, lazily, instead of being maintained centrally
// on the hot path.
func (d *Detector) Report() *Report {
	out := &Report{}
	for _, w := range d.shards() {
		out.RecordsSeen += w.records.Load()
		out.SameValueGag += w.sameValue.Load()
	}
	out.Shadow = d.mem.Stats()
	out.PrecisionDegraded = out.Shadow.PrecisionDegraded
	d.repMu.Lock()
	defer d.repMu.Unlock()
	for _, rc := range d.races {
		out.Races = append(out.Races, *rc)
	}
	sort.Slice(out.Races, func(i, j int) bool {
		a, b := out.Races[i], out.Races[j]
		if a.Prev.PC != b.Prev.PC {
			return a.Prev.PC < b.Prev.PC
		}
		if a.Cur.PC != b.Cur.PC {
			return a.Cur.PC < b.Cur.PC
		}
		return a.Kind < b.Kind
	})
	out.Divergences = append(out.Divergences, d.diverge...)
	return out
}

// FormatStats counts the PTVC formats currently in use across all warps
// (the Figure 7 distribution at the current instant).
func (d *Detector) FormatStats() map[ptvc.Format]int {
	out := make(map[ptvc.Format]int)
	for _, w := range d.warps {
		if w == nil {
			continue
		}
		for _, g := range w.stack {
			out[g.Format()]++
		}
	}
	return out
}

// FormatHistogram returns how often each PTVC format was the active
// group's representation, sampled at every memory record processed — the
// "roughly 90% of the time PTVCs are compressible" measurement of
// §4.3.1. The histogram is merged from the per-worker shards.
func (d *Detector) FormatHistogram() map[ptvc.Format]uint64 {
	var hist [4]uint64
	for _, w := range d.shards() {
		for i := range hist {
			hist[i] += w.hist[i].Load()
		}
	}
	return map[ptvc.Format]uint64{
		ptvc.Converged:      hist[ptvc.Converged],
		ptvc.Diverged:       hist[ptvc.Diverged],
		ptvc.NestedDiverged: hist[ptvc.NestedDiverged],
		ptvc.SparseVC:       hist[ptvc.SparseVC],
	}
}
