package core

import (
	"sync"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// fullVCState is the uncompressed-baseline analysis state: one explicit
// vector clock per thread, exactly the C of the formal rules. It consumes
// the same record stream as the compressed detector and reports through
// the same dedup, so it serves both as the §4.3.1 ablation (how much do
// compressed PTVCs buy?) and as an independent implementation for
// cross-checking.
//
// Note how the warp-level structure disappears: every endi/if/else/fi/bar
// becomes an O(active × clock-size) join-and-fork, and storage is O(n²)
// in the worst case — the scaling wall the paper's compression removes.
type fullVCState struct {
	geo    ptvc.Geometry
	mu     sync.Mutex // protects clocks for cross-queue sync edges
	clocks []*vc.VC
	syncs  map[shadow.Key]*fullSync
}

type fullSync struct {
	perBlock map[int]*vc.VC
	global   *vc.VC
}

func newFullVCState(geo ptvc.Geometry) *fullVCState {
	s := &fullVCState{
		geo:    geo,
		clocks: make([]*vc.VC, geo.Threads()),
		syncs:  make(map[shadow.Key]*fullSync),
	}
	for i := range s.clocks {
		s.clocks[i] = vc.New()
		s.clocks[i].Inc(vc.TID(i))
	}
	return s
}

// joinFork implements the shared join-and-fork of ENDINSN/IF/ELSE/FI/BAR:
// vc = ⊔ C_t over the set, then C_t = inc_t(vc).
func (s *fullVCState) joinFork(tids []vc.TID) {
	j := vc.New()
	for _, t := range tids {
		j.Join(s.clocks[t])
	}
	for _, t := range tids {
		c := j.Copy()
		c.Inc(t)
		s.clocks[t] = c
	}
}

// laneTIDs expands a record mask into thread ids.
func (s *fullVCState) laneTIDs(warp int, mask uint32) []vc.TID {
	out := make([]vc.TID, 0, 32)
	for lane := 0; lane < s.geo.WarpSize && lane < logging.WarpWidth; lane++ {
		if mask&(1<<uint(lane)) != 0 {
			out = append(out, s.geo.TIDOf(warp, lane))
		}
	}
	return out
}

func (s *fullVCState) ordered(tid vc.TID, e vc.Epoch) bool {
	return e.C <= s.clocks[tid].Get(e.T)
}

// handleFullVC processes one record in the uncompressed baseline mode.
// The ablation keeps its single state mutex by design — it exists to
// measure what the compressed, sharded representation buys — but stats
// still go to the caller's worker shard.
func (d *Detector) handleFullVC(r *logging.Record, w *Worker) {
	s := d.fullVC
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Op {
	case trace.OpRead, trace.OpWrite, trace.OpAtom:
		d.fullMemory(r, w)
		s.joinFork(s.laneTIDs(int(r.Warp), r.Mask))
	case trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
		trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb:
		// Cross-queue sync ordering (see Detector.awaitSyncTurn). The
		// state mutex must be released while waiting or the earlier
		// sync record could never be processed.
		s.mu.Unlock()
		d.awaitSyncTurn(r)
		s.mu.Lock()
		d.fullSyncOp(r)
		d.finishSyncTurn(r)
		s.joinFork(s.laneTIDs(int(r.Warp), r.Mask))
	case trace.OpBar:
		d.fullBarMarker(r)
	case trace.OpBarRel:
		wpb := s.geo.WarpsPerBlock()
		var tids []vc.TID
		for wi := 0; wi < wpb && wi < 32; wi++ {
			if r.Mask&(1<<uint(wi)) == 0 {
				continue
			}
			gw := int(r.Block)*wpb + wi
			full := d.fullWarpMask(gw)
			tids = append(tids, s.laneTIDs(gw, full)...)
		}
		s.joinFork(tids)
	case trace.OpIf, trace.OpElse, trace.OpFi:
		s.joinFork(s.laneTIDs(int(r.Warp), r.Mask))
	}
}

// fullWarpMask returns the populated-lane mask of a global warp.
func (d *Detector) fullWarpMask(gwid int) uint32 {
	lanes := d.geo.BlockSize - (gwid%d.geo.WarpsPerBlock())*d.geo.WarpSize
	if lanes > d.geo.WarpSize {
		lanes = d.geo.WarpSize
	}
	if lanes >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(lanes) - 1
}

func (d *Detector) fullMemory(r *logging.Record, w *Worker) {
	s := d.fullVC
	// The full-VC ablation cannot use uniform-span summaries — after a
	// joinFork every lane's own clock component differs, so a warp access
	// is not expressible as a single (warp, mask, clock) layer. It shares
	// the per-lane cell iteration with the epoch detector's fallback path.
	d.forEachLaneCell(nil, r, func(lane int, tid vc.TID, c *shadow.Cell) {
		myClock := s.clocks[tid].Get(tid)
		switch r.Op {
		case trace.OpRead:
			if !s.ordered(tid, c.W) {
				d.report(tid, r, lane, false, c.W.T, c.WritePC, true, c.Atomic, false)
			}
			if c.ReadShared {
				c.Readers[tid] = myClock
			} else if s.ordered(tid, c.R) {
				c.R = vc.Epoch{T: tid, C: myClock}
			} else {
				c.InflateReads()
				c.Readers[tid] = myClock
			}
			c.ReadPC = r.PC
		case trace.OpWrite, trace.OpAtom:
			atomic := r.Op == trace.OpAtom
			checkW := !atomic || !c.Atomic
			if checkW && !s.ordered(tid, c.W) {
				sameInstr := !c.W.IsZero() &&
					d.geo.WarpOf(c.W.T) == int(r.Warp) &&
					r.Mask&(1<<uint(d.geo.LaneOf(c.W.T))) != 0 &&
					c.W.C == s.clocks[c.W.T].Get(c.W.T)
				filtered := false
				if sameInstr && !d.opts.NoSameValueFilter && !atomic && !c.Atomic {
					if r.Vals[d.geo.LaneOf(c.W.T)] == r.Vals[lane] {
						filtered = true
						w.sameValue.Add(1)
					}
				}
				if !filtered {
					d.report(tid, r, lane, true, c.W.T, c.WritePC, true, c.Atomic, sameInstr)
				}
			}
			if c.ReadShared {
				// TID order, matching checkReaders: keeps the
				// reported representative reader deterministic.
				for _, u := range sortedReaders(c.Readers) {
					if !s.ordered(tid, vc.Epoch{T: u, C: c.Readers[u]}) {
						d.report(tid, r, lane, true, u, c.ReadPC, false, false, false)
					}
				}
			} else if !s.ordered(tid, c.R) {
				d.report(tid, r, lane, true, c.R.T, c.ReadPC, false, false, false)
			}
			c.W = vc.Epoch{T: tid, C: myClock}
			c.Atomic = atomic
			c.WritePC = r.PC
			c.ClearReads()
		}
	})
}

func (d *Detector) fullSyncOp(r *logging.Record) {
	s := d.fullVC
	block := d.geo.BlockOfWarp(int(r.Warp))
	blk := int32(-1)
	if r.Space == logging.SpaceShared {
		blk = int32(r.Block)
	}
	for lane := 0; lane < d.geo.WarpSize && lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		tid := d.geo.TIDOf(int(r.Warp), lane)
		key := shadow.Key{Space: r.Space, Block: blk, Addr: r.LaneAddr(lane)}
		loc := s.syncs[key]
		if loc == nil {
			loc = &fullSync{perBlock: make(map[int]*vc.VC)}
			s.syncs[key] = loc
		}
		if r.Op.IsAcquire() {
			if r.Op.GlobalScope() {
				for _, v := range loc.perBlock {
					s.clocks[tid].Join(v)
				}
				if loc.global != nil && len(loc.perBlock) < d.geo.Blocks {
					s.clocks[tid].Join(loc.global)
				}
			} else {
				if v := loc.perBlock[block]; v != nil {
					s.clocks[tid].Join(v)
				} else if loc.global != nil {
					s.clocks[tid].Join(loc.global)
				}
			}
		}
		if r.Op.IsRelease() {
			snap := s.clocks[tid].Copy()
			if r.Op.GlobalScope() {
				loc.perBlock = make(map[int]*vc.VC)
				loc.global = snap
			} else {
				loc.perBlock[block] = snap
			}
		}
	}
}

func (d *Detector) fullBarMarker(r *logging.Record) {
	if r.Mask == d.fullWarpMask(int(r.Warp)) {
		return
	}
	key := [2]uint32{r.Warp, r.PC}
	d.repMu.Lock()
	if !d.divergeK[key] {
		d.divergeK[key] = true
		d.diverge = append(d.diverge, BarrierDivergence{
			Block: int(r.Block), Warp: int(r.Warp), PC: r.PC, Mask: r.Mask,
		})
	}
	d.repMu.Unlock()
}
