package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

// propStream generates a pseudo-random warp memory stream mixing every
// shape the span fast path has to handle or reject: contiguous runs
// (coalesce candidates, including ones that straddle the 64 KiB page
// boundary), strided and scattered layouts, partial masks, sizes 1–8,
// global and shared space, reads, writes and atomics — with the address
// ranges kept small so warps genuinely collide and races, read
// inflation and demotion all occur.
func propStream(rng *rand.Rand, geo ptvc.Geometry, n int) []logging.Record {
	warps := geo.Blocks * geo.WarpsPerBlock()
	sizes := []uint8{1, 2, 4, 8}
	recs := make([]logging.Record, 0, n)
	for len(recs) < n {
		var r logging.Record
		r.Warp = uint32(rng.Intn(warps))
		r.Block = r.Warp / uint32(geo.WarpsPerBlock())
		switch rng.Intn(4) {
		case 0:
			r.Op = trace.OpWrite
		case 1:
			r.Op = trace.OpAtom
		default:
			r.Op = trace.OpRead
		}
		r.Size = sizes[rng.Intn(len(sizes))]
		r.PC = uint32(1 + rng.Intn(12))
		if rng.Intn(3) == 0 {
			r.Space = logging.SpaceShared
		} else {
			r.Space = logging.SpaceGlobal
		}
		if rng.Intn(2) == 0 {
			r.Mask = ^uint32(0)
		} else {
			r.Mask = rng.Uint32() | 1<<uint(rng.Intn(32))
		}
		var base uint64
		if r.Space == logging.SpaceShared {
			base = uint64(rng.Intn(256)) // slab is 1 KiB; runs may overrun it
		} else if rng.Intn(4) == 0 {
			// Straddle the page boundary: multi-run spans and the
			// lane-split rejection.
			base = 1<<16 - uint64(rng.Intn(64))
		} else {
			base = uint64(rng.Intn(2048))
		}
		layout := rng.Intn(3)
		rank := 0
		for lane := 0; lane < 32; lane++ {
			if r.Mask&(1<<uint(lane)) == 0 {
				continue
			}
			switch layout {
			case 0: // contiguous: coalesce candidate
				r.Addrs[lane] = base + uint64(rank)*uint64(r.Size)
			case 1: // strided
				r.Addrs[lane] = base + uint64(rank)*uint64(r.Size)*2
			default: // scattered, possibly lane-overlapping
				r.Addrs[lane] = base + uint64(rng.Intn(512))
			}
			r.Vals[lane] = uint64(rng.Intn(3)) // small: same-value filter hits
			rank++
		}
		r.Classify()
		recs = append(recs, r)
	}
	return recs
}

// propRun drains a stream through one detector configuration and
// renders everything observable: the canonical digest, the ordered race
// list, divergences and the counters.
func propRun(geo ptvc.Geometry, recs []logging.Record, gran int, perCell bool) string {
	d := New(geo, 1024, Options{Granularity: gran, PerCellShadow: perCell})
	w := d.NewWorker()
	for i := range recs {
		w.Handle(&recs[i])
	}
	rep := d.Report()
	out := rep.CanonicalDigest()
	// Report() orders races by (prevPC, curPC, kind); synthetic streams
	// reuse a handful of PCs, and ties land in map-iteration order — so
	// sort the full rendering for a stable comparison. The multiset of
	// races (down to counts, addresses and representative TIDs) is
	// deterministic with a single worker.
	lines := make([]string, 0, len(rep.Races))
	for _, rc := range rep.Races {
		lines = append(lines, fmt.Sprintf("%+v count=%d\n", rc, rc.Count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		out += l
	}
	out += fmt.Sprintf("divergences=%d records=%d samevalue=%d\n",
		len(rep.Divergences), rep.RecordsSeen, rep.SameValueGag)
	return out
}

// TestSpanPropertyEquivalence is the randomized half of the span
// correctness contract: for arbitrary warp record streams — coalesced
// or not, racing or not, at byte and word granularity — the span fast
// path must produce byte-identical reports to the per-cell baseline,
// down to race ordering, dynamic counts and the same-value filter
// counter. Single worker, so the whole report is deterministic. Runs
// under -race in CI, which also exercises the region-lock protocol.
func TestSpanPropertyEquivalence(t *testing.T) {
	geo := ptvc.Geometry{WarpSize: 32, BlockSize: 64, Blocks: 4}
	n := 400
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		for _, gran := range []int{1, 4} {
			recs := propStream(rand.New(rand.NewSource(int64(seed))), geo, n)
			cell := propRun(geo, recs, gran, true)
			span := propRun(geo, recs, gran, false)
			if cell != span {
				t.Fatalf("seed %d gran %d: reports diverged\n--- per-cell ---\n%s--- span ---\n%s",
					seed, gran, cell, span)
			}
		}
	}
}

// TestSpanPropertyEquivalenceSmallWarp re-runs the property at warp
// size 5: every mask has bits beyond the warp width (which must gate
// the span path off, not change behavior) and partial top warps abound.
func TestSpanPropertyEquivalenceSmallWarp(t *testing.T) {
	geo := ptvc.Geometry{WarpSize: 5, BlockSize: 17, Blocks: 3}
	for seed := 0; seed < 10; seed++ {
		recs := propStream(rand.New(rand.NewSource(int64(100+seed))), geo, 300)
		cell := propRun(geo, recs, 1, true)
		span := propRun(geo, recs, 1, false)
		if cell != span {
			t.Fatalf("seed %d: reports diverged\n--- per-cell ---\n%s--- span ---\n%s",
				seed, cell, span)
		}
	}
}
