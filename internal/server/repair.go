package server

import (
	"fmt"

	"barracuda/internal/bench"
	"barracuda/internal/detector"
)

// RepairRequest asks for verified repair synthesis (POST /v1/repair):
// static race candidates, synthesized patches, and a full dynamic
// re-detection verdict per patch. Exactly one of PTX or Bench selects
// the module. The launch shape controls the verification runs; like
// /v1/analyze, the result is memoized on the module-cache entry, so a
// warm repeat is a pure lookup.
type RepairRequest struct {
	PTX     string     `json:"ptx,omitempty"`
	Bench   string     `json:"bench,omitempty"`
	Kernel  string     `json:"kernel,omitempty"` // default: the module's first kernel
	Grid    int        `json:"grid,omitempty"`
	Block   int        `json:"block,omitempty"`
	Buffers []int      `json:"buffers,omitempty"`
	Config  ConfigJSON `json:"config"`
	// MaxInstrs bounds each verification launch (0 = server default);
	// always enforced so a deadlocking patch cannot pin the handler.
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
	// MaxCandidates / MaxPatches bound the search (0 = defaults).
	MaxCandidates int `json:"max_candidates,omitempty"`
	MaxPatches    int `json:"max_patches,omitempty"`
}

// Validate checks the payload shape; the server maps errors to 400.
func (r *RepairRequest) Validate(maxBufferBytes int64) error {
	switch {
	case r.PTX == "" && r.Bench == "":
		return fmt.Errorf("repair: field \"ptx\"/\"bench\": exactly one must be set, got neither")
	case r.PTX != "" && r.Bench != "":
		return fmt.Errorf("repair: field \"ptx\"/\"bench\": exactly one must be set, got both")
	}
	if r.Bench != "" && bench.ByName(r.Bench) == nil {
		return fmt.Errorf("repair: field \"bench\": unknown benchmark %q", r.Bench)
	}
	if r.Grid < 0 {
		return fmt.Errorf("repair: field \"grid\": must be >= 0, got %d", r.Grid)
	}
	if r.Block < 0 {
		return fmt.Errorf("repair: field \"block\": must be >= 0, got %d", r.Block)
	}
	if r.MaxCandidates < 0 {
		return fmt.Errorf("repair: field \"max_candidates\": must be >= 0, got %d", r.MaxCandidates)
	}
	if r.MaxPatches < 0 {
		return fmt.Errorf("repair: field \"max_patches\": must be >= 0, got %d", r.MaxPatches)
	}
	var total int64
	for i, b := range r.Buffers {
		if b < 0 {
			return fmt.Errorf("repair: field \"buffers[%d]\": must be >= 0, got %d", i, b)
		}
		total += int64(b)
	}
	if maxBufferBytes > 0 && total > maxBufferBytes {
		return fmt.Errorf("repair: field \"buffers\": total %d bytes exceeds the server limit %d", total, maxBufferBytes)
	}
	if err := r.Config.Detector().Validate(); err != nil {
		return fmt.Errorf("repair: field \"config\": %w", err)
	}
	return nil
}

// RepairResponse wraps the repair report with cache provenance.
type RepairResponse struct {
	CacheHit bool                   `json:"cache_hit"`
	Report   *detector.RepairReport `json:"report"`
}

// repairSig is the memo key for one repair parameterization on a cache
// entry (the entry itself already pins source and detector config).
func repairSig(kernel string, opt detector.RepairOptions) string {
	return fmt.Sprintf("%s|%d|%d|%v|%d|%d|%d|%d",
		kernel, opt.Grid, opt.Block, opt.Buffers, opt.MaxInstrs,
		opt.WarpSize, opt.MaxCandidates, opt.MaxPatchesPerCandidate)
}

// repairOptions maps request knobs onto detector.RepairOptions, always
// enforcing a step budget.
func (s *Scheduler) repairOptions(grid, block int, buffers []int, maxInstrs uint64, maxCands, maxPatches, warpSize int) detector.RepairOptions {
	if maxInstrs == 0 {
		maxInstrs = s.opts.DefaultMaxInstrs
	}
	return detector.RepairOptions{
		Grid:                   grid,
		Block:                  block,
		Buffers:                buffers,
		MaxInstrs:              maxInstrs,
		WarpSize:               warpSize,
		MaxCandidates:          maxCands,
		MaxPatchesPerCandidate: maxPatches,
	}
}

// repairOnLease runs (or recalls) a repair on a leased cache entry. The
// lease holds the entry mutex, so memo reads and writes are race-free
// and two concurrent identical requests compute once.
func repairOnLease(lease *Lease, kernel string, opt detector.RepairOptions) (*detector.RepairReport, bool, error) {
	e := lease.e
	mod := lease.Session().SrcMod
	if kernel == "" {
		if len(mod.Kernels) == 0 {
			return nil, false, fmt.Errorf("repair: module has no kernels")
		}
		kernel = mod.Kernels[0].Name
	}
	sig := repairSig(kernel, opt)
	if rep, ok := e.repairs[sig]; ok {
		return rep, true, nil
	}
	rep, err := detector.Repair(mod, kernel, lease.Session().Config(), opt)
	if err != nil {
		return nil, false, err
	}
	if e.repairs == nil {
		e.repairs = make(map[string]*detector.RepairReport)
	}
	e.repairs[sig] = rep
	return rep, false, nil
}

// Repair resolves the module, leases its warm session and runs the
// verified repair loop, memoizing the report on the cache entry. The
// verification launches open their own throwaway sessions (each patched
// module must be instrumented and loaded from scratch); the lease
// serializes repairs on the module and carries the memo.
func (s *Scheduler) Repair(req RepairRequest) (*RepairResponse, error) {
	if err := req.Validate(s.opts.MaxBufferBytes); err != nil {
		return nil, err
	}
	src := req.PTX
	if req.Bench != "" {
		src = bench.ByName(req.Bench).PTX()
	}
	lease, _, err := s.cache.Acquire(src, req.Config.Detector())
	if err != nil {
		return nil, err
	}
	defer lease.Release()

	opt := s.repairOptions(req.Grid, req.Block, req.Buffers, req.MaxInstrs,
		req.MaxCandidates, req.MaxPatches, 0)
	rep, hit, err := repairOnLease(lease, req.Kernel, opt)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	return &RepairResponse{CacheHit: hit, Report: rep}, nil
}
