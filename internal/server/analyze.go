package server

import (
	"fmt"
	"sort"

	"barracuda/internal/bench"
	"barracuda/internal/instrument"
	"barracuda/internal/staticanalysis"
)

// AnalyzeRequest asks for static analysis only (POST /v1/analyze): lint
// diagnostics plus instrumentation-pruning statistics, with no kernel
// launch. Exactly one of PTX or Bench selects the module. The config is
// used for session caching (the same warm entry later serves detection
// jobs); the analysis itself is configuration-independent.
type AnalyzeRequest struct {
	PTX    string     `json:"ptx,omitempty"`
	Bench  string     `json:"bench,omitempty"`
	Config ConfigJSON `json:"config"`
}

// Validate checks the payload shape; the server maps errors to 400.
// Like JobRequest.Validate, every error names the offending JSON field.
func (r *AnalyzeRequest) Validate() error {
	switch {
	case r.PTX == "" && r.Bench == "":
		return fmt.Errorf("analyze: field \"ptx\"/\"bench\": exactly one must be set, got neither")
	case r.PTX != "" && r.Bench != "":
		return fmt.Errorf("analyze: field \"ptx\"/\"bench\": exactly one must be set, got both")
	}
	if r.Bench != "" && bench.ByName(r.Bench) == nil {
		return fmt.Errorf("analyze: field \"bench\": unknown benchmark %q", r.Bench)
	}
	if err := r.Config.Detector().Validate(); err != nil {
		return fmt.Errorf("analyze: field \"config\": %w", err)
	}
	return nil
}

// DiagnosticJSON is one lint finding with its PTX source position.
type DiagnosticJSON struct {
	Kernel   string `json:"kernel"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Code     string `json:"code"`
	Severity string `json:"severity"` // warning | error
	Message  string `json:"message"`
}

// KernelStaticJSON is the Figure 9 instrumentation census for one kernel:
// how much of the static instruction stream each pruning tier logs.
type KernelStaticJSON struct {
	Kernel             string  `json:"kernel"`
	Static             int     `json:"static_instrs"`
	Instrumented       int     `json:"instrumented"`
	InstrumentedStatic int     `json:"instrumented_static"`
	StaticPruned       int     `json:"static_pruned"`
	ThreadPrivate      int     `json:"thread_private"`
	FracIntra          float64 `json:"frac_intra"`
	FracStatic         float64 `json:"frac_static"`
}

// AnalyzeResponse is the full static-analysis result.
type AnalyzeResponse struct {
	CacheHit    bool               `json:"cache_hit"`
	Errors      int                `json:"errors"`
	Warnings    int                `json:"warnings"`
	Diagnostics []DiagnosticJSON   `json:"diagnostics"`
	Kernels     []KernelStaticJSON `json:"kernels"`
	Totals      KernelStaticJSON   `json:"totals"`
}

func kernelStaticJSON(name string, s instrument.KernelStats) KernelStaticJSON {
	return KernelStaticJSON{
		Kernel:             name,
		Static:             s.Static,
		Instrumented:       s.Instrumented,
		InstrumentedStatic: s.InstrumentedStatic,
		StaticPruned:       s.StaticPruned,
		ThreadPrivate:      s.ThreadPrivate,
		FracIntra:          s.FracInstrumented(),
		FracStatic:         s.FracInstrumentedStatic(),
	}
}

// Analyze resolves the module, leases its warm session (building one on a
// miss — the same entry then serves detection jobs for this source and
// config), and returns lint diagnostics plus pruning statistics. The
// analysis result is computed once per cache entry and memoized on it:
// both it and the lint verdicts depend only on the PTX source.
func (s *Scheduler) Analyze(req AnalyzeRequest) (*AnalyzeResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	src := req.PTX
	if req.Bench != "" {
		src = bench.ByName(req.Bench).PTX()
	}
	lease, _, err := s.cache.Acquire(src, req.Config.Detector())
	if err != nil {
		return nil, err
	}
	defer lease.Release()

	// The lease holds the entry mutex, so the memoized analysis is read
	// and written race-free.
	e := lease.e
	if e.analysis != nil {
		out := *e.analysis
		out.CacheHit = true
		return &out, nil
	}

	mod := lease.Session().SrcMod
	diags, err := staticanalysis.LintModule(mod)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	res, err := instrument.Instrument(mod, instrument.Options{StaticPrune: true})
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}

	out := &AnalyzeResponse{Diagnostics: []DiagnosticJSON{}}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, DiagnosticJSON{
			Kernel:   d.Kernel,
			Line:     d.Line,
			Col:      d.Col,
			Code:     d.Code,
			Severity: d.Severity.String(),
			Message:  d.Message,
		})
		if d.Severity == staticanalysis.SevError {
			out.Errors++
		} else {
			out.Warnings++
		}
	}
	names := make([]string, 0, len(res.Stats))
	for name := range res.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Kernels = append(out.Kernels, kernelStaticJSON(name, *res.Stats[name]))
	}
	out.Totals = kernelStaticJSON("(total)", res.TotalStats())
	e.analysis = out
	snap := *out
	return &snap, nil
}
