package server

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// SrcStore is a bounded content-addressed store of module sources,
// keyed by SHA-256 of the bytes. It backs the streaming protocol's
// warm-upload short-circuit: a client that declares a hash the store
// already holds skips the byte transfer, and a fleet coordinator
// re-streams a retried job to a ring-affine worker without keeping the
// module in its own memory twice.
//
// The store is deliberately separate from ModCache: ModCache keys on
// (source, detector config) and holds built sessions (expensive,
// per-config); SrcStore keys on content alone and holds raw text
// (cheap, config-independent), so one uploaded module serves launches
// under many configs.
type SrcStore struct {
	mu      sync.Mutex
	entries map[[32]byte]*list.Element // value: *srcEntry
	lru     *list.List                 // front = most recent
	max     int
	hits    int64
	misses  int64
}

type srcEntry struct {
	hash [32]byte
	src  string
}

// NewSrcStore builds a store bounded to max entries (≤0 means 64).
func NewSrcStore(max int) *SrcStore {
	if max <= 0 {
		max = 64
	}
	return &SrcStore{entries: make(map[[32]byte]*list.Element), lru: list.New(), max: max}
}

// HashSrc is the store's content key.
func HashSrc(src string) [32]byte { return sha256.Sum256([]byte(src)) }

// Put stores src under its content hash and returns the hash.
func (s *SrcStore) Put(src string) [32]byte {
	h := HashSrc(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[h]; ok {
		s.lru.MoveToFront(el)
		return h
	}
	s.entries[h] = s.lru.PushFront(&srcEntry{hash: h, src: src})
	for s.lru.Len() > s.max {
		el := s.lru.Back()
		s.lru.Remove(el)
		delete(s.entries, el.Value.(*srcEntry).hash)
	}
	return h
}

// Get returns the source stored under hash, if resident.
func (s *SrcStore) Get(hash [32]byte) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[hash]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		return el.Value.(*srcEntry).src, true
	}
	s.misses++
	return "", false
}

// SrcStoreStats is the hit/miss/occupancy snapshot.
type SrcStoreStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// Stats snapshots the store.
func (s *SrcStore) Stats() SrcStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SrcStoreStats{Entries: s.lru.Len(), Hits: s.hits, Misses: s.misses}
}
