package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// divergentSrc has a bar.sync reachable only under a tid-dependent guard.
const divergentSrc = `.visible .entry k()
{
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@!%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}`

// stridedAnalyzeSrc: every access lands in the thread's own 16-byte slot,
// so the static pruner drops all logging.
const stridedAnalyzeSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 16;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	ld.global.u32 %r6, [%rd3+4];
	ret;
}`

func postAnalyze(t *testing.T, ts *httptest.Server, req AnalyzeRequest) (int, AnalyzeResponse, ErrorJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	var errj ErrorJSON
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&out)
	} else {
		json.NewDecoder(resp.Body).Decode(&errj)
	}
	return resp.StatusCode, out, errj
}

func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})

	// A divergent barrier is reported as an error with its position.
	code, res, errj := postAnalyze(t, ts, AnalyzeRequest{PTX: divergentSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, errj)
	}
	if res.CacheHit {
		t.Error("first analysis reported a cache hit")
	}
	if res.Errors != 1 || len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %+v, want one error", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Code != "barrier-divergence" || d.Severity != "error" || d.Line != 8 {
		t.Errorf("diagnostic = %+v, want barrier-divergence error at line 8", d)
	}

	// The same module again is served from the memoized analysis.
	code, res, _ = postAnalyze(t, ts, AnalyzeRequest{PTX: divergentSrc})
	if code != http.StatusOK || !res.CacheHit {
		t.Errorf("repeat analysis: status = %d, cache_hit = %v, want hit", code, res.CacheHit)
	}
}

func TestAnalyzePruningStats(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, res, errj := postAnalyze(t, ts, AnalyzeRequest{PTX: stridedAnalyzeSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, errj)
	}
	if res.Errors != 0 {
		t.Errorf("clean kernel reported errors: %+v", res.Diagnostics)
	}
	if len(res.Kernels) != 1 {
		t.Fatalf("kernels = %+v, want one", res.Kernels)
	}
	k := res.Kernels[0]
	if k.ThreadPrivate != 2 {
		t.Errorf("thread_private = %d, want 2 (both slot accesses)", k.ThreadPrivate)
	}
	if k.FracStatic >= k.FracIntra {
		t.Errorf("frac_static %f not below frac_intra %f", k.FracStatic, k.FracIntra)
	}
	if res.Totals.InstrumentedStatic != k.InstrumentedStatic {
		t.Errorf("totals %+v disagree with the single kernel %+v", res.Totals, k)
	}
}

func TestAnalyzeRejectsBadPayloads(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	for _, req := range []AnalyzeRequest{
		{}, // neither ptx nor bench
		{PTX: racySrc, Bench: "lockhashtable"},
		{Bench: "no-such-bench"},
		{PTX: racySrc, Config: ConfigJSON{NoPrune: true, StaticPrune: true}},
		{PTX: "not ptx at all"},
	} {
		code, _, errj := postAnalyze(t, ts, req)
		if code != http.StatusBadRequest || errj.Error == "" {
			t.Errorf("req %+v: status = %d, error = %q, want 400", req, code, errj.Error)
		}
	}
}
