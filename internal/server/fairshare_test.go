package server

import (
	"testing"
	"time"
)

// TestFairQueueWRROrder pins the deficit rotation: a weight-2 tenant
// takes two consecutive jobs per round, everyone else one, and a
// drained tenant leaves the ring without disturbing the rotation.
func TestFairQueueWRROrder(t *testing.T) {
	q := newFairQueue(16, map[string]int{"a": 2})
	mk := func(id string) *Job { return &Job{ID: id, done: make(chan struct{})} }
	for _, j := range []struct{ tenant, id string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"a", "a4"},
		{"b", "b1"}, {"c", "c1"},
	} {
		if !q.push(j.tenant, mk(j.id)) {
			t.Fatalf("push %s rejected", j.id)
		}
	}
	want := []string{"a1", "a2", "b1", "c1", "a3", "a4"}
	for i, w := range want {
		j := q.pop()
		if j == nil || j.ID != w {
			t.Fatalf("pop %d = %v, want %s", i, j, w)
		}
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth after drain = %d", d)
	}
}

// TestFairShareNoStarvation is the two-tenant contract: a noisy tenant
// queues a deep backlog behind a held worker, a quiet tenant then
// submits a single job, and weighted round-robin serves the quiet job
// on the first free rotation — not behind the whole backlog as the old
// single FIFO would.
func TestFairShareNoStarvation(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 1, QueueCap: 64})
	defer s.Stop()

	// Hold the lone worker long enough for every submission below to
	// land in the queue while it runs.
	holder, err := s.SubmitTenant(JobRequest{
		PTX: spinSrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4, 4},
		TimeoutMS: 500, MaxInstrs: 1 << 24,
	}, "noisy", nil)
	if err != nil {
		t.Fatal(err)
	}

	quick := JobRequest{PTX: racySrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4}}
	var noisy []*Job
	for i := 0; i < 8; i++ {
		j, err := s.SubmitTenant(quick, "noisy", nil)
		if err != nil {
			t.Fatal(err)
		}
		noisy = append(noisy, j)
	}
	quiet, err := s.SubmitTenant(quick, "quiet", nil)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(30 * time.Second)
	for _, j := range append([]*Job{holder, quiet}, noisy...) {
		select {
		case <-j.Done():
		case <-deadline:
			t.Fatalf("job %s did not finish", j.ID)
		}
	}

	finished := func(j *Job) time.Time {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.finished
	}
	ahead := 0
	for _, j := range noisy {
		if finished(j).Before(finished(quiet)) {
			ahead++
		}
	}
	// The rotation serves at most one backlogged noisy job before the
	// quiet tenant's turn comes around.
	if ahead > 1 {
		t.Errorf("%d of 8 noisy backlog jobs ran before the quiet tenant's single job (starved by the backlog)", ahead)
	}
}
