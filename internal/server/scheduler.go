package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"barracuda/internal/bench"
	"barracuda/internal/core"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; the HTTP layer maps it to 429 backpressure.
var ErrQueueFull = errors.New("server: job queue full")

// SchedulerOptions sizes the service.
type SchedulerOptions struct {
	// Workers is the number of concurrent detection workers (default 2).
	Workers int
	// QueueCap bounds the number of queued-but-unstarted jobs
	// (default 64). Submissions beyond it are rejected with
	// ErrQueueFull rather than growing without bound.
	QueueCap int
	// CacheEntries bounds the warm-session cache (default 32).
	CacheEntries int
	// DefaultTimeout is the per-job wall-clock budget when the request
	// does not set one (default 30s).
	DefaultTimeout time.Duration
	// DefaultMaxInstrs is the dynamic warp-instruction budget applied
	// when the request does not set one; always enforced, so a spin
	// loop cannot pin a worker forever (default 1<<24).
	DefaultMaxInstrs uint64
	// MaxBufferBytes caps a single job's total buffer allocation
	// (default 1 GiB; <0 disables the cap).
	MaxBufferBytes int64
	// MaxJobs bounds the retained job history (default 4096; oldest
	// finished jobs are forgotten first).
	MaxJobs int
	// SrcEntries bounds the content-addressed source store behind the
	// streaming protocol's warm-upload short-circuit (default 64).
	SrcEntries int
	// Tenants sizes the per-API-key admission control on the streaming
	// path.
	Tenants TenantOptions
	// TenantWeights sets per-tenant weighted-round-robin shares of the
	// admission queue (default weight 1 for any tenant not listed). A
	// tenant with weight 2 is served two jobs per rotation to everyone
	// else's one; no tenant can starve another regardless of backlog.
	TenantWeights map[string]int
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 32
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.DefaultMaxInstrs == 0 {
		o.DefaultMaxInstrs = 1 << 24
	}
	if o.MaxBufferBytes == 0 {
		o.MaxBufferBytes = 1 << 30
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	return o
}

// Job is one submitted detection unit.
type Job struct {
	ID string

	// Immutable after Submit.
	req      JobRequest
	src      string // resolved PTX source
	kernel   string // may be "" for PTX jobs: resolved at run time
	grid     int
	block    int
	buffers  []int
	cfg      detector.Config
	timeout  time.Duration
	budget   uint64
	tenant   string          // API key the job was admitted under ("" = anonymous)
	observer func(core.Race) // streaming path: fired per new static race

	mu        sync.Mutex
	status    string
	cacheHit  bool
	errMsg    string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job for the API.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:          j.ID,
		Status:      j.status,
		CacheHit:    j.cacheHit,
		Error:       j.errMsg,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Result:      j.result,
	}
	if !j.started.IsZero() {
		info.QueueWaitMS = float64(j.started.Sub(j.submitted).Microseconds()) / 1000
	}
	if !j.finished.IsZero() {
		info.TotalMS = float64(j.finished.Sub(j.submitted).Microseconds()) / 1000
	}
	return info
}

func (j *Job) finish(status, errMsg string, result *JobResult) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.result = result
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Scheduler owns the job queue, the worker pool and the module cache.
type Scheduler struct {
	opts    SchedulerOptions
	cache   *ModCache
	srcs    *SrcStore
	tenants *TenantRegistry
	metrics *Metrics

	inflight atomic.Int64 // jobs currently held by a worker

	q  *fairQueue
	wg sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing and history trimming
	nextID int64
}

// NewScheduler builds the service core and starts its workers.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		opts:    opts,
		cache:   NewModCache(opts.CacheEntries),
		srcs:    NewSrcStore(opts.SrcEntries),
		tenants: NewTenantRegistry(opts.Tenants),
		metrics: &Metrics{},
		q:       newFairQueue(opts.QueueCap, opts.TenantWeights),
		jobs:    make(map[string]*Job),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the counter registry.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Cache returns the module cache (for stats).
func (s *Scheduler) Cache() *ModCache { return s.cache }

// Srcs returns the content-addressed source store the streaming
// protocol negotiates uploads against.
func (s *Scheduler) Srcs() *SrcStore { return s.srcs }

// Tenants returns the per-API-key admission registry.
func (s *Scheduler) Tenants() *TenantRegistry { return s.tenants }

// QueueDepth is the number of queued-but-unstarted jobs.
func (s *Scheduler) QueueDepth() int { return s.q.Depth() }

// InFlight is the number of jobs currently held by workers.
func (s *Scheduler) InFlight() int { return int(s.inflight.Load()) }

// HeartbeatStats snapshots the load and cache figures a fleet worker
// reports to its coordinator: queue pressure steers overflow routing,
// cache hits/misses make warm-routing effectiveness observable.
type HeartbeatStats struct {
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	InFlight    int   `json:"in_flight"`
	Workers     int   `json:"workers"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`

	// Shadow-memory pressure: lets the coordinator see which nodes run
	// detection under a byte cap hard enough to evict live state (and
	// so degrade precision), and how much shadow the node's jobs peak
	// at, before routing more memory-hungry kernels its way.
	ShadowPeakResident int64 `json:"shadow_peak_resident_bytes,omitempty"`
	ShadowEvictions    int64 `json:"shadow_evictions,omitempty"`
	ShadowDegradedJobs int64 `json:"shadow_degraded_jobs,omitempty"`

	// Producer-filter effectiveness: how many records this node's jobs
	// kept off the queues, so fleet operators can see the A/B knob's
	// payoff per node.
	FilterSuppressed int64 `json:"filter_suppressed_records,omitempty"`
	FilterProbes     int64 `json:"filter_probes,omitempty"`
}

// HeartbeatStats builds the heartbeat payload.
func (s *Scheduler) HeartbeatStats() HeartbeatStats {
	cs := s.cache.Stats()
	c := s.metrics.Counters()
	sh := s.metrics.Shadow()
	fc := s.metrics.Filter()
	return HeartbeatStats{
		QueueDepth:         s.QueueDepth(),
		QueueCap:           s.opts.QueueCap,
		InFlight:           s.InFlight(),
		Workers:            s.opts.Workers,
		CacheHits:          cs.Hits,
		CacheMisses:        cs.Misses,
		Completed:          c.Completed,
		Failed:             c.Failed,
		ShadowPeakResident: sh.PeakResident,
		ShadowEvictions:    sh.Evictions,
		ShadowDegradedJobs: sh.DegradedJobs,
		FilterSuppressed:   fc.Suppressed,
		FilterProbes:       fc.Probes,
	}
}

// Options returns the effective (defaulted) options.
func (s *Scheduler) Options() SchedulerOptions { return s.opts }

// Submit validates, resolves and enqueues a job. It returns the job on
// success, ErrQueueFull under backpressure, and a descriptive error for
// invalid payloads (mapped to 400 by the HTTP layer).
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	return s.SubmitObserved(req, nil)
}

// SubmitObserved is Submit with an incremental race observer: onRace is
// invoked once per new static race at the moment of discovery, from a
// detection worker goroutine. The streaming API uses it to push FRace
// frames before the job completes; it must not block (the stream layer
// hands it a buffered channel sized to the race cap).
func (s *Scheduler) SubmitObserved(req JobRequest, onRace func(core.Race)) (*Job, error) {
	return s.SubmitTenant(req, "", onRace)
}

// SubmitTenant is SubmitObserved with a tenant identity: the job is
// admitted into that tenant's weighted-round-robin bucket, so one
// tenant's backlog cannot starve another's submissions.
func (s *Scheduler) SubmitTenant(req JobRequest, tenant string, onRace func(core.Race)) (*Job, error) {
	if err := req.Validate(s.opts.MaxBufferBytes); err != nil {
		return nil, err
	}
	job := &Job{
		tenant:   tenant,
		observer: onRace,
		req:      req,
		kernel:   req.Kernel,
		grid:     req.Grid,
		block:    req.Block,
		buffers:  req.Buffers,
		cfg:      req.Config.Detector(),
		timeout:  s.opts.DefaultTimeout,
		budget:   s.opts.DefaultMaxInstrs,
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
	if req.TimeoutMS > 0 {
		job.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.MaxInstrs > 0 {
		job.budget = req.MaxInstrs
	}
	if req.Bench != "" {
		b := bench.ByName(req.Bench)
		job.src = b.PTX()
		if job.kernel == "" {
			job.kernel = "main"
		}
		if job.grid == 0 && job.block == 0 {
			job.grid, job.block = b.Grid.Count(), b.Block.Count()
		}
		if job.buffers == nil {
			job.buffers = b.Buffers()
		}
	} else {
		job.src = req.PTX
	}

	s.mu.Lock()
	s.nextID++
	job.ID = fmt.Sprintf("job-%d", s.nextID)
	job.submitted = time.Now()
	s.mu.Unlock()

	if !s.q.push(job.tenant, job) {
		s.metrics.Rejected.Add(1)
		return nil, ErrQueueFull
	}

	s.mu.Lock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.trimHistoryLocked()
	s.mu.Unlock()
	s.metrics.Submitted.Add(1)
	return job, nil
}

// trimHistoryLocked forgets the oldest finished jobs past MaxJobs.
func (s *Scheduler) trimHistoryLocked() {
	for len(s.order) > s.opts.MaxJobs {
		id := s.order[0]
		if j, ok := s.jobs[id]; ok {
			j.mu.Lock()
			terminal := j.status == StatusDone || j.status == StatusFailed || j.status == StatusTimeout
			j.mu.Unlock()
			if !terminal {
				return // oldest still live: keep history until it finishes
			}
			delete(s.jobs, id)
		}
		s.order = s.order[1:]
	}
}

// Job looks up a job by id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists retained jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Stop shuts the worker pool down and fails any still-queued jobs.
func (s *Scheduler) Stop() {
	s.q.close()
	s.wg.Wait()
	for _, job := range s.q.drain() {
		job.finish(StatusFailed, "server shutting down", nil)
		s.metrics.Failed.Add(1)
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		job := s.q.pop()
		if job == nil {
			return
		}
		s.run(job)
	}
}

// run executes one job with a wall-clock timeout. The detect itself runs
// in a child goroutine holding the cache lease; on timeout the worker
// moves on while the child winds down against the step budget and
// releases the lease when the simulator gives up.
func (s *Scheduler) run(job *Job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	job.mu.Lock()
	job.status = StatusRunning
	job.started = time.Now()
	job.mu.Unlock()

	lease, hit, err := s.cache.Acquire(job.src, job.cfg)
	if err != nil {
		s.metrics.Failed.Add(1)
		job.finish(StatusFailed, "open: "+err.Error(), nil)
		return
	}
	job.mu.Lock()
	job.cacheHit = hit
	job.mu.Unlock()

	type outcome struct {
		kernel string
		res    *detector.Result
		repair *detector.RepairReport
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer lease.Release()
		sess := lease.Session()
		kernel := job.kernel
		if kernel == "" {
			names := sess.Native.KernelNames()
			if len(names) == 0 {
				ch <- outcome{err: errors.New("module has no kernels")}
				return
			}
			kernel = names[0]
		}
		if job.req.Kind == KindRepair {
			opt := s.repairOptions(job.grid, job.block, job.buffers, job.budget,
				0, 0, job.req.WarpSize)
			rep, _, err := repairOnLease(lease, kernel, opt)
			ch <- outcome{kernel: kernel, repair: rep, err: err}
			return
		}
		args, err := lease.Buffers(job.buffers)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		res, err := sess.DetectObserved(kernel, launchConfig(job.grid, job.block, args, job.budget, job.req.WarpSize), job.observer)
		ch <- outcome{kernel: kernel, res: res, err: err}
	}()

	timer := time.NewTimer(job.timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		switch {
		case o.err == nil && o.repair != nil:
			s.metrics.Completed.Add(1)
			job.finish(StatusDone, "", &JobResult{
				Kernel:    o.kernel,
				RaceCount: o.repair.BaselineRaces,
				Repair:    o.repair,
			})
		case o.err == nil:
			s.metrics.Completed.Add(1)
			s.metrics.Latency.Observe(o.res.Duration)
			s.metrics.ObserveShadow(o.res.Report.Shadow)
			s.metrics.ObserveFilter(o.res.SimStats.Filter)
			job.finish(StatusDone, "", resultJSON(o.kernel, o.res))
		case errors.Is(o.err, gpusim.ErrStepBudget):
			s.metrics.TimedOut.Add(1)
			job.finish(StatusTimeout, fmt.Sprintf("step budget (%d warp instructions) exceeded: %v", job.budget, o.err), nil)
		default:
			s.metrics.Failed.Add(1)
			job.finish(StatusFailed, o.err.Error(), nil)
		}
	case <-timer.C:
		s.metrics.TimedOut.Add(1)
		job.finish(StatusTimeout, fmt.Sprintf("wall-clock timeout after %v", job.timeout), nil)
	}
}
