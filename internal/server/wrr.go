package server

import "sync"

// fairQueue is the scheduler's admission queue: one FIFO bucket per
// tenant, drained by weighted round-robin. A tenant that floods the
// queue only delays its own jobs — another tenant's next job is served
// after at most `weight(noisy)` of the flooder's, not after the whole
// backlog, which is the starvation the old single FIFO allowed.
//
// The capacity bound stays global (total queued jobs across tenants), so
// backpressure semantics — ErrQueueFull past QueueCap — are unchanged.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	depth  int
	closed bool

	weights map[string]int     // static per-tenant weights (default 1)
	buckets map[string]*bucket // live per-tenant FIFOs
	ring    []string           // rotation order of tenants with queued jobs
	cursor  int                // ring index the next pop starts from
}

type bucket struct {
	jobs   []*Job
	credit int // jobs this tenant may still take in the current round
}

func newFairQueue(capacity int, weights map[string]int) *fairQueue {
	q := &fairQueue{
		cap:     capacity,
		weights: weights,
		buckets: make(map[string]*bucket),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) weight(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// push enqueues a job for a tenant, reporting false when the global
// capacity is reached (or the queue is closed).
func (q *fairQueue) push(tenant string, job *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.depth >= q.cap {
		return false
	}
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{}
		q.buckets[tenant] = b
	}
	if len(b.jobs) == 0 {
		// Joining tenants enter the ring behind the cursor: they wait
		// their turn in the current round rather than jumping the rotation.
		q.ring = append(q.ring, tenant)
	}
	b.jobs = append(b.jobs, job)
	q.depth++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available or the queue is closed; it
// returns nil once closed (remaining jobs are left for drain).
func (q *fairQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	// Weighted round-robin: the cursor tenant serves up to its weight in
	// consecutive jobs per round, then the turn passes. Empty buckets
	// leave the ring; their tenants re-enter at the tail on next push.
	for {
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
		tenant := q.ring[q.cursor]
		b := q.buckets[tenant]
		if len(b.jobs) == 0 {
			b.credit = 0
			q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
			continue
		}
		if b.credit <= 0 {
			b.credit = q.weight(tenant)
		}
		job := b.jobs[0]
		b.jobs = b.jobs[1:]
		b.credit--
		q.depth--
		if len(b.jobs) == 0 {
			b.credit = 0
			q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
		} else if b.credit == 0 {
			q.cursor++
		}
		return job
	}
}

// close wakes all blocked poppers; subsequent pops return nil.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drain removes and returns every still-queued job (used after close to
// fail them on shutdown).
func (q *fairQueue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for _, tenant := range q.ring {
		b := q.buckets[tenant]
		out = append(out, b.jobs...)
		b.jobs, b.credit = nil, 0
	}
	q.ring, q.cursor, q.depth = nil, 0, 0
	return out
}

// Depth is the number of queued-but-unstarted jobs across all tenants.
func (q *fairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}
