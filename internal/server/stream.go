package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"barracuda/internal/core"
	"barracuda/internal/shadow"
	"barracuda/internal/wire"
)

// handleStream upgrades the connection to the binary streaming protocol
// (see internal/wire): chunked module upload into the content-addressed
// source store, pipelined launches under the same scheduler budgets as
// the JSON API, and incremental race frames pushed as the detector
// finds them — no poll loop.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != wire.UpgradeHeader {
		writeError(w, http.StatusUpgradeRequired, CodeInvalidArgument,
			fmt.Sprintf("stream: set \"Upgrade: %s\"", wire.UpgradeHeader))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeUnavailable, "stream: connection not hijackable")
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeUnavailable, "stream: hijack: "+err.Error())
		return
	}
	resp := fmt.Sprintf("HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
		wire.UpgradeHeader)
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return
	}
	st := &stream{
		sched: s.sched,
		conn:  conn,
		// The hijacked bufio.Reader may already hold client bytes that
		// raced ahead of the 101; reads must drain it first.
		src: io.MultiReader(bufferedReader{rw.Reader}, conn),
		fw:  wire.NewWriter(conn),
	}
	st.serve()
}

// bufferedReader drains what the hijacked bufio.Reader buffered and
// then reports EOF so the MultiReader falls through to the conn.
type bufferedReader struct{ br *bufio.Reader }

func (b bufferedReader) Read(p []byte) (int, error) {
	if b.br.Buffered() == 0 {
		return 0, io.EOF
	}
	return b.br.Read(p)
}

// stream is one upgraded connection's state machine.
type stream struct {
	sched *Scheduler
	conn  net.Conn

	src io.Reader
	fr  *wire.Reader

	wmu sync.Mutex // serializes frames from launch goroutines
	fw  *wire.Writer

	apiKey string

	// Current module (the source launches run against).
	module    string
	moduleSet bool

	// In-progress upload.
	upTotal  uint64
	upHash   []byte // declared hash, nil if undeclared
	upBuf    bytes.Buffer
	upSHA    hash.Hash
	upActive bool

	launches sync.WaitGroup

	jobs     int64
	races    atomic.Int64 // bumped from per-launch pump goroutines
	bytesOut int64
}

func (st *stream) writeFrame(t byte, payload []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	st.bytesOut += int64(len(payload)) + 9
	return st.fw.WriteFrame(t, payload)
}

func (st *stream) fatal(code, msg string) {
	st.writeFrame(wire.FFatal, wire.EncodeFatal(wire.Fatal{Code: code, Msg: msg}))
}

func (st *stream) serve() {
	defer st.conn.Close()
	defer func() {
		st.sched.Tenants().ObserveBytes(st.apiKey, 0, st.bytesOut)
	}()

	if err := wire.WritePrelude(st.conn); err != nil {
		return
	}
	if _, err := wire.ReadPrelude(st.src); err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			st.fatal(wire.CodeVersionMismatch, err.Error())
		}
		return
	}
	st.fr = wire.NewReader(st.src)
	f, err := st.fr.ReadFrame()
	if err != nil || f.Type != wire.FHello {
		st.fatal(wire.CodeInvalidArgument, "stream: expected HELLO")
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		st.fatal(wire.CodeInvalidArgument, err.Error())
		return
	}
	st.apiKey = hello.APIKey
	// Connection admission spends one token: a tenant hammering
	// reconnects is throttled the same way as one hammering launches.
	if ok, wait := st.sched.Tenants().Admit(st.apiKey); !ok {
		st.writeFrame(wire.FReject, wire.EncodeReject(wire.Reject{
			Code: wire.CodeQueueFull, Msg: "stream: tenant rate limit",
			RetryAfterMS: uint64(wait.Milliseconds()) + 1,
		}))
		return
	}
	if err := st.writeFrame(wire.FWelcome, wire.EncodeWelcome(wire.Welcome{
		MaxFrame: wire.MaxFrame, MaxModule: wire.MaxModule,
	})); err != nil {
		return
	}

	bytesIn := int64(0)
	defer func() { st.sched.Tenants().ObserveBytes(st.apiKey, bytesIn, 0) }()
	for {
		f, err := st.fr.ReadFrame()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				st.fatal(wire.CodeInvalidArgument, err.Error())
			}
			break
		}
		bytesIn += int64(len(f.Payload)) + 9
		switch f.Type {
		case wire.FModBegin:
			err = st.modBegin(f.Payload)
		case wire.FModChunk:
			err = st.modChunk(f.Payload)
		case wire.FModEnd:
			err = st.modEnd()
		case wire.FLaunch:
			err = st.launch(f.Payload)
		case wire.FBye:
			err = errStreamDone
		default:
			err = fmt.Errorf("unexpected frame %#x", f.Type)
		}
		if err == errStreamDone {
			break
		}
		if err != nil {
			st.fatal(wire.CodeInvalidArgument, err.Error())
			break
		}
	}
	// Drain in-flight launches so their summaries reach the client even
	// after BYE; a torn connection just makes their writes no-ops.
	st.launches.Wait()
	st.sched.Tenants().ObserveRaces(st.apiKey, st.races.Load())
}

var errStreamDone = errors.New("stream: bye")

func (st *stream) modBegin(p []byte) error {
	mb, err := wire.DecodeModBegin(p)
	if err != nil {
		return err
	}
	if mb.TotalLen > wire.MaxModule {
		return fmt.Errorf("module %d bytes exceeds limit %d", mb.TotalLen, wire.MaxModule)
	}
	if len(mb.Hash) == 32 {
		var h [32]byte
		copy(h[:], mb.Hash)
		if src, ok := st.sched.Srcs().Get(h); ok {
			// Warm hit: the declared content is resident; skip the upload.
			st.module, st.moduleSet = src, true
			st.upActive = false
			return st.writeFrame(wire.FModState, wire.EncodeModState(wire.ModState{State: wire.ModHave, Hash: mb.Hash}))
		}
	}
	st.upTotal = mb.TotalLen
	st.upHash = mb.Hash
	st.upBuf.Reset()
	st.upBuf.Grow(int(mb.TotalLen))
	st.upSHA = sha256.New()
	st.upActive = true
	return st.writeFrame(wire.FModState, wire.EncodeModState(wire.ModState{State: wire.ModNeed}))
}

func (st *stream) modChunk(p []byte) error {
	if !st.upActive {
		return errors.New("MOD_CHUNK outside an upload")
	}
	if uint64(st.upBuf.Len())+uint64(len(p)) > st.upTotal {
		return fmt.Errorf("upload overruns declared length %d", st.upTotal)
	}
	st.upBuf.Write(p)
	st.upSHA.Write(p)
	return nil
}

func (st *stream) modEnd() error {
	if !st.upActive {
		return errors.New("MOD_END outside an upload")
	}
	st.upActive = false
	if uint64(st.upBuf.Len()) != st.upTotal {
		return fmt.Errorf("upload ended at %d of %d declared bytes", st.upBuf.Len(), st.upTotal)
	}
	sum := st.upSHA.Sum(nil)
	if st.upHash != nil && !bytes.Equal(sum, st.upHash) {
		return errors.New("upload content hash does not match MOD_BEGIN declaration")
	}
	st.module, st.moduleSet = st.upBuf.String(), true
	st.sched.Srcs().Put(st.module)
	return st.writeFrame(wire.FModState, wire.EncodeModState(wire.ModState{State: wire.ModReady, Hash: sum}))
}

func (st *stream) reject(seq uint64, code, msg string, retryAfter time.Duration) error {
	return st.writeFrame(wire.FReject, wire.EncodeReject(wire.Reject{
		Seq: seq, Code: code, Msg: msg,
		RetryAfterMS: uint64(retryAfter.Milliseconds()),
	}))
}

func (st *stream) launch(p []byte) error {
	spec, err := wire.DecodeLaunch(p)
	if err != nil {
		return err
	}
	if !st.moduleSet {
		return st.reject(spec.Seq, wire.CodeInvalidArgument, "LAUNCH before a module upload", 0)
	}
	if ok, wait := st.sched.Tenants().Admit(st.apiKey); !ok {
		return st.reject(spec.Seq, wire.CodeQueueFull, "tenant rate limit", wait+time.Millisecond)
	}
	req := JobRequest{
		PTX:       st.module,
		Kernel:    spec.Kernel,
		Grid:      spec.Grid,
		Block:     spec.Block,
		Buffers:   spec.Buffers,
		TimeoutMS: spec.TimeoutMS,
		MaxInstrs: spec.MaxInstrs,
		WarpSize:  spec.WarpSize,
		Config: ConfigJSON{
			Queues:            spec.Config.Queues,
			QueueCap:          spec.Config.QueueCap,
			Granularity:       spec.Config.Granularity,
			MaxRaces:          spec.Config.MaxRaces,
			FullVC:            spec.Config.FullVC,
			NoPrune:           spec.Config.NoPrune,
			StaticPrune:       spec.Config.StaticPrune,
			NoSameValueFilter: spec.Config.NoSameValueFilter,
			PerCellShadow:     spec.Config.PerCellShadow,
			Ownership:         spec.Config.Ownership,
			ShadowCapBytes:    spec.Config.ShadowCapBytes,
			ProducerFilter:    spec.Config.ProducerFilter,
		},
	}
	// Buffer to the race cap so the observer can never block the
	// detection worker: the detector fires at most MaxRaces new static
	// races per run.
	capRaces := spec.Config.MaxRaces
	if capRaces <= 0 {
		capRaces = 1024
	}
	raceCh := make(chan core.Race, capRaces)
	onRace := func(r core.Race) {
		select {
		case raceCh <- r:
		default: // cap exceeded would be a detector bug; never block
		}
	}
	job, err := st.sched.SubmitTenant(req, st.apiKey, onRace)
	switch {
	case errors.Is(err, ErrQueueFull):
		return st.reject(spec.Seq, wire.CodeQueueFull, err.Error(), time.Second)
	case err != nil:
		return st.reject(spec.Seq, wire.CodeInvalidArgument, err.Error(), 0)
	}
	st.jobs++
	st.sched.Tenants().ObserveJob(st.apiKey)
	if err := st.writeFrame(wire.FAccept, wire.EncodeAccept(wire.Accept{Seq: spec.Seq, JobID: job.ID})); err != nil {
		return err
	}
	st.launches.Add(1)
	go st.pump(spec.Seq, job, raceCh)
	return nil
}

// pump pushes one launch's incremental race frames and terminal
// summary. It runs per launch; frame writes serialize on the stream's
// write mutex, so pipelined launches interleave cleanly.
func (st *stream) pump(seq uint64, job *Job, raceCh <-chan core.Race) {
	defer st.launches.Done()
	var enc wire.RaceEncoder
	push := func(r core.Race) {
		st.races.Add(1)
		st.writeFrame(wire.FRace, wire.EncodeRace(&enc, wire.RaceEvent{Seq: seq, Race: r}))
	}
	for {
		select {
		case r := <-raceCh:
			push(r)
		case <-job.Done():
			for {
				select {
				case r := <-raceCh:
					push(r)
					continue
				default:
				}
				break
			}
			st.writeFrame(wire.FSummary, wire.EncodeSummary(st.summary(seq, job)))
			return
		}
	}
}

// JobInfoFromSummary rebuilds the JSON JobInfo shape from a streamed
// terminal Summary — the inverse of the projection the daemon applies
// when it encodes one. The fleet coordinator uses it so wire-forwarded
// jobs report results in the same envelope as JSON-forwarded ones.
// Only digest-covered and headline fields travel on the wire; the
// JSON-only extras (simulator-side Records, PTVC format census, full
// shadow occupancy breakdown) stay zero.
func JobInfoFromSummary(id string, sum wire.Summary) *JobInfo {
	info := &JobInfo{
		ID:          id,
		Status:      sum.Status,
		Error:       sum.Error,
		CacheHit:    sum.CacheHit,
		QueueWaitMS: float64(sum.QueueWaitUS) / 1000,
		TotalMS:     float64(sum.TotalUS) / 1000,
	}
	if sum.Status != StatusDone {
		return info // failed/timeout jobs carry no result, matching the scheduler
	}
	res := &JobResult{
		Kernel:            sum.Kernel,
		RaceCount:         len(sum.Races),
		SameValueFiltered: sum.SameValueFiltered,
		WarpInstrs:        sum.WarpInstrs,
		RecordsSeen:       sum.RecordsSeen,
		DetectMS:          float64(sum.DetectUS) / 1000,
		PrecisionDegraded: sum.PrecisionDegraded,
		Shadow: &shadow.MemStats{
			PeakResidentBytes: int64(sum.ShadowPeakResident),
			LiveEvictions:     sum.ShadowLiveEvicts,
			PrecisionDegraded: sum.PrecisionDegraded,
		},
	}
	if sum.FilterSuppressed != 0 || sum.FilterFlushes != 0 {
		res.Filter = &FilterJSON{
			Suppressed: sum.FilterSuppressed,
			Flushes:    sum.FilterFlushes,
		}
	}
	for _, r := range sum.Races {
		res.Races = append(res.Races, RaceJSON{
			Kind:      r.Kind.String(),
			Space:     r.Space.String(),
			Addr:      fmt.Sprintf("%#x", r.Addr),
			Block:     r.Block,
			Count:     r.Count,
			SameInstr: r.SameInstr,
			Prev:      accessJSON(r.Prev),
			Cur:       accessJSON(r.Cur),
			Summary:   r.String(),
		})
	}
	for _, d := range sum.Divergences {
		res.Divergences = append(res.Divergences, DivergenceJSON{
			Block: d.Block, Warp: d.Warp, Line: d.PC,
			Mask: fmt.Sprintf("%#x", d.Mask),
		})
	}
	info.Result = res
	return info
}

// summary projects a terminal job onto the wire. The race table comes
// from the final report (authoritative ordering and dynamic counts);
// the incremental frames the client saw were a low-latency preview.
func (st *stream) summary(seq uint64, job *Job) wire.Summary {
	info := job.Info()
	sum := wire.Summary{
		Seq:         seq,
		Status:      info.Status,
		Error:       info.Error,
		CacheHit:    info.CacheHit,
		QueueWaitUS: uint64(info.QueueWaitMS * 1000),
		TotalUS:     uint64(info.TotalMS * 1000),
	}
	res := info.Result
	if res == nil {
		return sum
	}
	sum.Kernel = res.Kernel
	sum.RecordsSeen = res.RecordsSeen
	sum.WarpInstrs = res.WarpInstrs
	sum.SameValueFiltered = res.SameValueFiltered
	sum.DetectUS = uint64(res.DetectMS * 1000)
	sum.PrecisionDegraded = res.PrecisionDegraded
	if res.Shadow != nil {
		sum.ShadowPeakResident = uint64(res.Shadow.PeakResidentBytes)
		sum.ShadowLiveEvicts = uint64(res.Shadow.LiveEvictions)
	}
	if res.Filter != nil {
		sum.FilterSuppressed = res.Filter.Suppressed
		sum.FilterFlushes = res.Filter.Flushes
	}
	if rep, err := res.CoreReport(); err == nil {
		sum.Races = rep.Races
		for _, d := range rep.Divergences {
			sum.Divergences = append(sum.Divergences, wire.Divergence{
				Block: d.Block, Warp: d.Warp, PC: d.PC, Mask: d.Mask,
			})
		}
	}
	return sum
}
