package server

import (
	"sort"
	"sync"
	"time"
)

// TenantOptions sizes the per-tenant admission control on the streaming
// path. A tenant is one API key presented in the handshake frame; the
// empty key is the anonymous tenant (allowed, but sharing one bucket).
type TenantOptions struct {
	// RatePerSec is the steady-state launch admission rate per tenant
	// (default 100/s; <0 disables rate limiting).
	RatePerSec float64
	// Burst is the token-bucket depth (default 200).
	Burst float64
	// MaxTenants bounds the registry (default 1024). Past it, new keys
	// share the anonymous bucket rather than growing without bound.
	MaxTenants int
}

func (o TenantOptions) withDefaults() TenantOptions {
	if o.RatePerSec == 0 {
		o.RatePerSec = 100
	}
	if o.Burst <= 0 {
		o.Burst = 200
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = 1024
	}
	return o
}

// tenant is one API key's bucket and counters.
type tenant struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	jobs     int64
	races    int64
	bytesIn  int64
	bytesOut int64
	rejected int64
}

// TenantRegistry tracks per-API-key token buckets and traffic counters
// for the streaming protocol.
type TenantRegistry struct {
	opts TenantOptions

	mu      sync.Mutex
	tenants map[string]*tenant
}

// NewTenantRegistry builds a registry.
func NewTenantRegistry(opts TenantOptions) *TenantRegistry {
	return &TenantRegistry{opts: opts.withDefaults(), tenants: make(map[string]*tenant)}
}

func (r *TenantRegistry) get(key string) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[key]
	if !ok {
		if len(r.tenants) >= r.opts.MaxTenants {
			key = "" // registry full: overflow keys share the anonymous bucket
			if t, ok = r.tenants[key]; ok {
				return t
			}
		}
		t = &tenant{tokens: r.opts.Burst, last: time.Now()}
		r.tenants[key] = t
	}
	return t
}

// Admit spends one launch token for key. When the bucket is dry it
// returns false and the duration after which one token will be
// available — the Retry-After hint the reject frame carries.
func (r *TenantRegistry) Admit(key string) (bool, time.Duration) {
	if r.opts.RatePerSec < 0 {
		return true, 0
	}
	t := r.get(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * r.opts.RatePerSec
	if t.tokens > r.opts.Burst {
		t.tokens = r.opts.Burst
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	t.rejected++
	wait := time.Duration((1 - t.tokens) / r.opts.RatePerSec * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// ObserveJob counts one admitted launch for key.
func (r *TenantRegistry) ObserveJob(key string) {
	t := r.get(key)
	t.mu.Lock()
	t.jobs++
	t.mu.Unlock()
}

// ObserveRaces counts races pushed to key.
func (r *TenantRegistry) ObserveRaces(key string, n int64) {
	t := r.get(key)
	t.mu.Lock()
	t.races += n
	t.mu.Unlock()
}

// ObserveBytes counts wire traffic for key.
func (r *TenantRegistry) ObserveBytes(key string, in, out int64) {
	t := r.get(key)
	t.mu.Lock()
	t.bytesIn += in
	t.bytesOut += out
	t.mu.Unlock()
}

// TenantJSON is one tenant's accounting snapshot on /v1/metrics. The
// key is reported verbatim; deployments that treat keys as secrets
// should issue opaque tokens, not credentials, as API keys.
type TenantJSON struct {
	Key      string `json:"key"`
	Jobs     int64  `json:"jobs"`
	Races    int64  `json:"races"`
	BytesIn  int64  `json:"bytes_in"`
	BytesOut int64  `json:"bytes_out"`
	Rejected int64  `json:"rejected"`
}

// Snapshot lists per-tenant counters, sorted by key for stable output.
func (r *TenantRegistry) Snapshot() []TenantJSON {
	r.mu.Lock()
	keys := make([]string, 0, len(r.tenants))
	for k := range r.tenants {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	out := make([]TenantJSON, 0, len(keys))
	for _, k := range keys {
		t := r.get(k)
		t.mu.Lock()
		out = append(out, TenantJSON{
			Key: k, Jobs: t.jobs, Races: t.races,
			BytesIn: t.bytesIn, BytesOut: t.bytesOut, Rejected: t.rejected,
		})
		t.mu.Unlock()
	}
	return out
}
