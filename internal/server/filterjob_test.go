package server

import (
	"net/http"
	"reflect"
	"testing"
)

// loopReadSrc reads a per-thread global word in a tight barrier-free
// loop — heavy producer-filter traffic, no races.
const loopReadSrc = `.visible .entry k(.param .u64 in, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [in];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd3, %r2;
	add.u64 %rd4, %rd1, %rd3;
	add.u64 %rd5, %rd2, %rd3;
	mov.u32 %r3, 0;
	mov.u32 %r4, 0;
LOOP:
	ld.global.u32 %r5, [%rd4];
	add.u32 %r3, %r3, %r5;
	add.u32 %r4, %r4, 1;
	setp.lt.u32 %p1, %r4, 32;
	@%p1 bra LOOP;
	st.global.u32 [%rd5], %r3;
	ret;
}`

// TestProducerFilterJob runs the same kernel with and without the
// producer filter through the full HTTP surface: the reports must be
// identical, the filtered job must surface its filter stats in the
// result, and /metrics must accumulate them daemon-wide.
func TestProducerFilterJob(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})

	req := JobRequest{PTX: loopReadSrc, Kernel: "k", Grid: 2, Block: 64, Buffers: []int{512, 512}}
	code, base, _ := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: %d", code)
	}
	baseInfo := waitJob(t, ts, base.ID)
	if baseInfo.Status != StatusDone {
		t.Fatalf("baseline job: %s (%s)", baseInfo.Status, baseInfo.Error)
	}
	if baseInfo.Result.Filter != nil {
		t.Errorf("unfiltered job carries filter stats: %+v", baseInfo.Result.Filter)
	}

	req.Config.ProducerFilter = true
	code, filt, _ := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("filtered submit: %d", code)
	}
	filtInfo := waitJob(t, ts, filt.ID)
	if filtInfo.Status != StatusDone {
		t.Fatalf("filtered job: %s (%s)", filtInfo.Status, filtInfo.Error)
	}
	if filtInfo.CacheHit {
		t.Error("filtered job hit the unfiltered module cache entry (CacheKey ignores producer_filter)")
	}

	if !reflect.DeepEqual(baseInfo.Result.Races, filtInfo.Result.Races) {
		t.Errorf("race lists diverged:\nbaseline: %+v\nfiltered: %+v",
			baseInfo.Result.Races, filtInfo.Result.Races)
	}
	if baseInfo.Result.RecordsSeen != filtInfo.Result.RecordsSeen {
		t.Errorf("RecordsSeen diverged: baseline %d, filtered %d",
			baseInfo.Result.RecordsSeen, filtInfo.Result.RecordsSeen)
	}
	f := filtInfo.Result.Filter
	if f == nil {
		t.Fatal("filtered job result carries no filter stats")
	}
	if f.Suppressed == 0 || f.Suppressed != f.Hits+f.StaticElides {
		t.Errorf("implausible filter stats: %+v", f)
	}
	if filtInfo.Result.Records >= baseInfo.Result.Records {
		t.Errorf("filtered job emitted %d records, baseline %d", filtInfo.Result.Records, baseInfo.Result.Records)
	}

	m := getMetrics(t, ts)
	if m.Filter.Suppressed != int64(f.Suppressed) || m.Filter.Probes != int64(f.Probes) {
		t.Errorf("/metrics filter counters %+v do not match the job's %+v", m.Filter, f)
	}
}
