// Package server turns the detector pipeline into a long-running
// detection service: an HTTP JSON API over a bounded job queue, a worker
// pool running detector.Session.Detect, and a content-addressed module
// cache so repeated submissions of the same PTX skip parse, instrument
// and module load entirely.
//
// It is the resident-service analogue of the paper's Figure 5 host side:
// where BARRACUDA keeps detector threads alive next to the instrumented
// application for the life of the process, barracudad keeps warm
// instrumented modules and detector workers alive across *many*
// applications' jobs.
package server

import (
	"fmt"
	"strconv"

	"barracuda/internal/bench"
	"barracuda/internal/core"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
	"barracuda/internal/shadow"
	"barracuda/internal/vc"
)

// ConfigJSON is the wire form of detector.Config.
type ConfigJSON struct {
	Queues            int   `json:"queues,omitempty"`
	QueueCap          int   `json:"queue_cap,omitempty"`
	Granularity       int   `json:"granularity,omitempty"`
	MaxRaces          int   `json:"max_races,omitempty"`
	FullVC            bool  `json:"full_vc,omitempty"`
	NoPrune           bool  `json:"no_prune,omitempty"`
	StaticPrune       bool  `json:"static_prune,omitempty"`
	NoSameValueFilter bool  `json:"no_same_value_filter,omitempty"`
	PerCellShadow     bool  `json:"per_cell_shadow,omitempty"`
	Ownership         bool  `json:"ownership,omitempty"`
	ShadowCapBytes    int64 `json:"shadow_cap_bytes,omitempty"`
	ProducerFilter    bool  `json:"producer_filter,omitempty"`
}

// Detector converts to the internal config.
func (c ConfigJSON) Detector() detector.Config {
	return detector.Config{
		Queues:            c.Queues,
		QueueCap:          c.QueueCap,
		Granularity:       c.Granularity,
		MaxRaces:          c.MaxRaces,
		FullVC:            c.FullVC,
		NoPrune:           c.NoPrune,
		StaticPrune:       c.StaticPrune,
		NoSameValueFilter: c.NoSameValueFilter,
		PerCellShadow:     c.PerCellShadow,
		Ownership:         c.Ownership,
		ShadowCapBytes:    c.ShadowCapBytes,
		ProducerFilter:    c.ProducerFilter,
	}
}

// JobRequest is one detection job submission (POST /jobs). Exactly one
// of PTX or Bench selects the module; for Bench jobs the kernel, launch
// geometry and buffers default to the benchmark's own.
type JobRequest struct {
	// PTX is inline PTX source to analyze.
	PTX string `json:"ptx,omitempty"`
	// Bench names a built-in Table 1 benchmark instead.
	Bench string `json:"bench,omitempty"`
	// Kernel is the entry to launch (default: the module's first
	// kernel; "main" for benchmarks).
	Kernel string `json:"kernel,omitempty"`
	// Grid and Block are 1-D launch extents (default 1 and 32).
	Grid  int `json:"grid,omitempty"`
	Block int `json:"block,omitempty"`
	// Buffers are byte sizes of zeroed global buffers allocated (or
	// reused, for cached modules) and passed as u64 kernel arguments.
	Buffers []int `json:"buffers,omitempty"`
	// Config tunes the detector.
	Config ConfigJSON `json:"config"`
	// TimeoutMS is the per-job wall-clock budget (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxInstrs is the dynamic warp-instruction budget (0 = server
	// default; the server always enforces one so spin loops terminate).
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
	// WarpSize overrides the simulated warp width (0 = 32).
	WarpSize int `json:"warp_size,omitempty"`
	// Class is the scheduling class: "batch" (default) or
	// "interactive". The fleet coordinator routes interactive jobs
	// ahead of batch work; a standalone worker records it only.
	Class string `json:"class,omitempty"`
	// Kind selects the work: "detect" (default) runs one detection
	// launch; "repair" runs the verified repair-synthesis loop and
	// returns a RepairReport in the result. Repair jobs are batch-class
	// by nature (they run many launches) and the fleet coordinator
	// forces them onto the batch queue.
	Kind string `json:"kind,omitempty"`
}

// Job kinds.
const (
	KindDetect = "detect"
	KindRepair = "repair"
)

// Job priority classes, used by the fleet coordinator. A plain worker
// accepts and records the class but schedules FIFO; the coordinator
// gives "interactive" submissions strict priority and a reserved slot
// so they are never starved behind batch detection jobs.
const (
	ClassBatch       = "batch"
	ClassInteractive = "interactive"
)

// Validate checks the payload shape; the server maps errors to 400.
// Every error names the offending JSON field so clients (and the fleet
// coordinator) can report precisely what to fix.
func (r *JobRequest) Validate(maxBufferBytes int64) error {
	switch {
	case r.PTX == "" && r.Bench == "":
		return fmt.Errorf("job: field \"ptx\"/\"bench\": exactly one must be set, got neither")
	case r.PTX != "" && r.Bench != "":
		return fmt.Errorf("job: field \"ptx\"/\"bench\": exactly one must be set, got both")
	}
	if r.Bench != "" && bench.ByName(r.Bench) == nil {
		return fmt.Errorf("job: field \"bench\": unknown benchmark %q", r.Bench)
	}
	if r.Grid < 0 {
		return fmt.Errorf("job: field \"grid\": must be >= 0, got %d", r.Grid)
	}
	if r.Block < 0 {
		return fmt.Errorf("job: field \"block\": must be >= 0, got %d", r.Block)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("job: field \"timeout_ms\": must be >= 0, got %d", r.TimeoutMS)
	}
	if r.WarpSize != 0 && (r.WarpSize < 2 || r.WarpSize > 32) {
		return fmt.Errorf("job: field \"warp_size\": must be 0 or in [2,32], got %d", r.WarpSize)
	}
	if r.Class != "" && r.Class != ClassBatch && r.Class != ClassInteractive {
		return fmt.Errorf("job: field \"class\": must be %q or %q, got %q", ClassBatch, ClassInteractive, r.Class)
	}
	if r.Kind != "" && r.Kind != KindDetect && r.Kind != KindRepair {
		return fmt.Errorf("job: field \"kind\": must be %q or %q, got %q", KindDetect, KindRepair, r.Kind)
	}
	var total int64
	for i, b := range r.Buffers {
		if b < 0 {
			return fmt.Errorf("job: field \"buffers[%d]\": must be >= 0, got %d", i, b)
		}
		total += int64(b)
	}
	if maxBufferBytes > 0 && total > maxBufferBytes {
		return fmt.Errorf("job: field \"buffers\": total %d bytes exceeds the server limit %d", total, maxBufferBytes)
	}
	if err := r.Config.Detector().Validate(); err != nil {
		return fmt.Errorf("job: field \"config\": %w", err)
	}
	return nil
}

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	StatusTimeout = "timeout"
)

// AccessJSON is one side of a reported race.
type AccessJSON struct {
	Thread int32  `json:"thread"`
	Line   uint32 `json:"line"`
	Write  bool   `json:"write"`
	Atomic bool   `json:"atomic,omitempty"`
}

// RaceJSON is one detected race.
type RaceJSON struct {
	Kind      string     `json:"kind"`  // intra-warp | intra-block | inter-block
	Space     string     `json:"space"` // global | shared | local
	Addr      string     `json:"addr"`  // hex device address
	Block     int32      `json:"block"` // -1 for global memory
	Count     int        `json:"count"` // dynamic occurrences
	SameInstr bool       `json:"same_instr,omitempty"`
	Prev      AccessJSON `json:"prev"`
	Cur       AccessJSON `json:"cur"`
	Summary   string     `json:"summary"`
}

// DivergenceJSON is one barrier-divergence report.
type DivergenceJSON struct {
	Block int    `json:"block"`
	Warp  int    `json:"warp"`
	Line  uint32 `json:"line"`
	Mask  string `json:"mask"`
}

// JobResult is the outcome of a completed detection run. For repair
// jobs (kind "repair"), Repair carries the full report and RaceCount is
// the baseline race count the repair loop started from.
type JobResult struct {
	Kernel            string           `json:"kernel"`
	RaceCount         int              `json:"race_count"`
	Races             []RaceJSON       `json:"races,omitempty"`
	Divergences       []DivergenceJSON `json:"divergences,omitempty"`
	SameValueFiltered uint64           `json:"same_value_filtered,omitempty"`
	WarpInstrs        uint64           `json:"warp_instrs"`
	Records           uint64           `json:"records"`
	// RecordsSeen is the detector-side record count (Report.RecordsSeen),
	// the figure CanonicalDigest covers. Records above is the
	// simulator-side count; the two agree on healthy runs but are sampled
	// at different layers, so both travel.
	RecordsSeen uint64                 `json:"records_seen"`
	DetectMS    float64                `json:"detect_ms"`
	Formats     map[string]int         `json:"ptvc_formats,omitempty"`
	Repair      *detector.RepairReport `json:"repair,omitempty"`
	// Shadow reports the shadow-memory occupancy and adaptive-tier
	// counters of the run; PrecisionDegraded is true when a bounded
	// shadow evicted live metadata (races may be under- but never
	// over-reported from that point).
	Shadow            *shadow.MemStats `json:"shadow,omitempty"`
	PrecisionDegraded bool             `json:"precision_degraded,omitempty"`
	// Filter reports the producer-side epoch filter's activity; present
	// only when the job ran with producer_filter set (the counters are
	// zero otherwise and the field is omitted).
	Filter *FilterJSON `json:"filter,omitempty"`
}

// FilterJSON is the per-job producer-filter activity on the wire.
// Suppressed is Hits + StaticElides: the records kept off the queue.
type FilterJSON struct {
	Probes       uint64 `json:"probes"`
	Hits         uint64 `json:"hits"`
	StaticElides uint64 `json:"static_elides"`
	Flushes      uint64 `json:"flushes"`
	Suppressed   uint64 `json:"suppressed_records"`
}

// JobInfo is the job envelope returned by the API.
type JobInfo struct {
	ID          string     `json:"id"`
	Status      string     `json:"status"`
	CacheHit    bool       `json:"cache_hit"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt string     `json:"submitted_at"`
	QueueWaitMS float64    `json:"queue_wait_ms,omitempty"`
	TotalMS     float64    `json:"total_ms,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// Stable machine-readable error codes carried by ErrorJSON. Clients —
// in particular the fleet coordinator — branch on the code, not the
// message: CodeQueueFull and CodeUnavailable are retryable (the same
// request may succeed elsewhere or later), CodeInvalidArgument and
// CodeNotFound are permanent.
const (
	CodeInvalidArgument = "invalid_argument" // 400: malformed or failing validation
	CodeNotFound        = "not_found"        // 404: unknown job id
	CodeQueueFull       = "queue_full"       // 429: bounded queue at capacity
	CodeUnavailable     = "unavailable"      // 503: shutting down / transient
)

// RetryableCode reports whether a failed request with this error code
// may succeed if retried on another node (or later on this one).
func RetryableCode(code string) bool {
	return code == CodeQueueFull || code == CodeUnavailable
}

// ErrorJSON is the error envelope for non-2xx responses. Code is one of
// the Code* constants; Error is the human-readable detail naming the
// offending field.
type ErrorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// resultJSON converts a detector result to the wire form.
func resultJSON(kernel string, res *detector.Result) *JobResult {
	out := &JobResult{
		Kernel:            kernel,
		RaceCount:         res.Report.RaceCount(),
		SameValueFiltered: res.Report.SameValueGag,
		WarpInstrs:        res.SimStats.WarpInstrs,
		Records:           res.SimStats.Records,
		RecordsSeen:       res.Report.RecordsSeen,
		DetectMS:          float64(res.Duration.Microseconds()) / 1000,
		PrecisionDegraded: res.Report.PrecisionDegraded,
	}
	sh := res.Report.Shadow
	out.Shadow = &sh
	if f := res.SimStats.Filter; f != (gpusim.FilterStats{}) {
		out.Filter = &FilterJSON{
			Probes:       f.Probes,
			Hits:         f.Hits,
			StaticElides: f.StaticElides,
			Flushes:      f.Flushes,
			Suppressed:   f.Suppressed(),
		}
	}
	for _, r := range res.Report.Races {
		out.Races = append(out.Races, RaceJSON{
			Kind:      r.Kind.String(),
			Space:     r.Space.String(),
			Addr:      fmt.Sprintf("%#x", r.Addr),
			Block:     r.Block,
			Count:     r.Count,
			SameInstr: r.SameInstr,
			Prev:      accessJSON(r.Prev),
			Cur:       accessJSON(r.Cur),
			Summary:   r.String(),
		})
	}
	for _, d := range res.Report.Divergences {
		out.Divergences = append(out.Divergences, DivergenceJSON{
			Block: d.Block, Warp: d.Warp, Line: d.PC,
			Mask: fmt.Sprintf("%#x", d.Mask),
		})
	}
	if len(res.Formats) > 0 {
		out.Formats = make(map[string]int, len(res.Formats))
		for f, n := range res.Formats {
			out.Formats[f.String()] = n
		}
	}
	return out
}

func accessJSON(a core.Access) AccessJSON {
	return AccessJSON{Thread: int32(a.TID), Line: a.PC, Write: a.Write, Atomic: a.Atomic}
}

// CoreReport reconstructs the detector report a result was projected
// from — the inverse of resultJSON over the fields CanonicalDigest
// covers. The streamed and polled paths are compared through this:
// digest(CoreReport(JSON)) must equal digest(Summary.Report()).
func (r *JobResult) CoreReport() (*core.Report, error) {
	rep := &core.Report{
		RecordsSeen:       r.RecordsSeen,
		SameValueGag:      r.SameValueFiltered,
		PrecisionDegraded: r.PrecisionDegraded,
	}
	for i, rc := range r.Races {
		kind, ok := raceKinds[rc.Kind]
		if !ok {
			return nil, fmt.Errorf("result: races[%d]: unknown kind %q", i, rc.Kind)
		}
		space, ok := spaceIDs[rc.Space]
		if !ok {
			return nil, fmt.Errorf("result: races[%d]: unknown space %q", i, rc.Space)
		}
		var addr uint64
		if rc.Addr != "" {
			var err error
			if addr, err = strconv.ParseUint(rc.Addr, 0, 64); err != nil {
				return nil, fmt.Errorf("result: races[%d]: bad addr %q: %v", i, rc.Addr, err)
			}
		}
		rep.Races = append(rep.Races, core.Race{
			Kind:      kind,
			Space:     space,
			Block:     rc.Block,
			Addr:      addr,
			SameInstr: rc.SameInstr,
			Count:     rc.Count,
			Prev:      coreAccess(rc.Prev),
			Cur:       coreAccess(rc.Cur),
		})
	}
	for i, d := range r.Divergences {
		var mask uint64
		if d.Mask != "" {
			var err error
			if mask, err = strconv.ParseUint(d.Mask, 0, 32); err != nil {
				return nil, fmt.Errorf("result: divergences[%d]: bad mask %q: %v", i, d.Mask, err)
			}
		}
		rep.Divergences = append(rep.Divergences, core.BarrierDivergence{
			Block: d.Block, Warp: d.Warp, PC: d.Line, Mask: uint32(mask),
		})
	}
	return rep, nil
}

var raceKinds = map[string]core.RaceKind{
	"intra-warp":  core.IntraWarp,
	"intra-block": core.IntraBlock,
	"inter-block": core.InterBlock,
}

var spaceIDs = map[string]logging.SpaceID{
	"global": logging.SpaceGlobal,
	"shared": logging.SpaceShared,
	"local":  logging.SpaceLocal,
}

func coreAccess(a AccessJSON) core.Access {
	return core.Access{TID: vc.TID(a.Thread), PC: a.Line, Write: a.Write, Atomic: a.Atomic}
}

// launchConfig builds the simulator launch for a resolved job.
func launchConfig(grid, block int, args []uint64, maxInstrs uint64, warpSize int) gpusim.LaunchConfig {
	if grid <= 0 {
		grid = 1
	}
	if block <= 0 {
		block = 32
	}
	return gpusim.LaunchConfig{
		Grid:          gpusim.D1(grid),
		Block:         gpusim.D1(block),
		Args:          args,
		MaxWarpInstrs: maxInstrs,
		WarpSize:      warpSize,
	}
}
