package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"barracuda/internal/detector"
)

// ModCache is a content-addressed cache of open detector sessions, keyed
// by the SHA-256 of the PTX source plus the detector configuration (the
// configuration is baked into a Session at Open time, and NoPrune changes
// the instrumented module itself). A hit skips the whole front half of
// the pipeline — parse, CFG construction, instrumentation, module load —
// which dominates the cost of small jobs.
//
// Entries are evicted LRU once the cache holds more than max sessions.
// Each entry carries a mutex serializing jobs on its session (kernel
// launches mutate shared device memory, so a Session must never run two
// Detect calls concurrently) and a buffer arena so that repeated jobs
// with the same buffer sizes reuse — and re-zero — the same device
// allocations. Reuse keeps device memory bounded AND makes repeated
// identical jobs report byte-identical race addresses.
//
// Leases pin their entry: an entry evicted while pinned is dropped from
// the index immediately but its session is only closed when the last
// lease releases, so in-flight jobs always finish on a live session.
type ModCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	elem *list.Element

	// Guarded by the cache mutex.
	pinned  int  // outstanding leases (plus waiters)
	evicted bool // dropped from the index; close on last unpin

	// mu serializes session construction and job execution on this entry.
	mu   sync.Mutex
	sess *detector.Session
	err  error
	bufs map[string][]uint64 // buffer-size signature → device addresses

	// analysis memoizes the /v1/analyze result for this module: lint
	// diagnostics and pruning statistics depend only on the source.
	analysis *AnalyzeResponse

	// repairs memoizes /v1/repair reports per parameterization (the
	// verification outcome also depends on launch shape and budgets).
	repairs map[string]*detector.RepairReport
}

// NewModCache creates a cache bounded to max sessions (minimum 1).
func NewModCache(max int) *ModCache {
	if max < 1 {
		max = 1
	}
	return &ModCache{
		max:     max,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// CacheKey returns the content address of a (source, config) pair.
func CacheKey(src string, cfg detector.Config) string {
	h := sha256.New()
	h.Write([]byte(src))
	fmt.Fprintf(h, "\x00%d|%d|%d|%d|%t|%t|%t|%t|%t|%t|%d|%t",
		cfg.Queues, cfg.QueueCap, cfg.Granularity, cfg.MaxRaces,
		cfg.FullVC, cfg.NoPrune, cfg.NoSameValueFilter, cfg.StaticPrune,
		cfg.PerCellShadow, cfg.Ownership, cfg.ShadowCapBytes, cfg.ProducerFilter)
	return hex.EncodeToString(h.Sum(nil))
}

// Lease is exclusive access to a cached session; callers must Release.
type Lease struct {
	c        *ModCache
	e        *cacheEntry
	released bool
}

// Acquire returns a leased session for the given source and config,
// reporting whether it was already cached (a hit). The session is built
// lazily under the entry lock, so two concurrent first submissions of
// the same module build it once. The caller owns the session until
// Release; concurrent jobs on the same module serialize here.
func (c *ModCache) Acquire(src string, cfg detector.Config) (*Lease, bool, error) {
	key := CacheKey(src, cfg)

	c.mu.Lock()
	e, hit := c.entries[key]
	if hit {
		c.lru.MoveToFront(e.elem)
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		e = &cacheEntry{key: key, bufs: make(map[string][]uint64)}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.evictExcessLocked()
	}
	e.pinned++
	c.mu.Unlock()

	e.mu.Lock()
	if e.sess == nil && e.err == nil {
		e.sess, e.err = detector.OpenPTX(src, cfg)
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		// A module that fails to open is useless warm: drop it so the
		// slot goes to a loadable one.
		c.mu.Lock()
		c.dropLocked(e)
		c.unpinLocked(e)
		c.mu.Unlock()
		return nil, hit, err
	}
	return &Lease{c: c, e: e}, hit, nil
}

// evictExcessLocked drops LRU entries beyond capacity. A pinned entry
// (an in-flight or waiting job) is removed from the index but stays
// open until its last lease releases.
func (c *ModCache) evictExcessLocked() {
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		if tail == nil {
			return
		}
		e := tail.Value.(*cacheEntry)
		c.dropLocked(e)
		c.evictions.Add(1)
		if e.pinned == 0 && e.sess != nil {
			e.sess.Close()
		}
	}
}

// dropLocked removes an entry from the index (idempotent).
func (c *ModCache) dropLocked(e *cacheEntry) {
	if !e.evicted {
		e.evicted = true
		c.lru.Remove(e.elem)
		delete(c.entries, e.key)
	}
}

// unpinLocked releases one pin, closing an already-evicted session once
// the last holder lets go.
func (c *ModCache) unpinLocked(e *cacheEntry) {
	e.pinned--
	if e.evicted && e.pinned == 0 && e.sess != nil {
		e.sess.Close()
	}
}

// Session returns the leased detector session.
func (l *Lease) Session() *detector.Session { return l.e.sess }

// Buffers returns zeroed device buffers of the given sizes, reusing the
// entry's previous allocations when the size signature matches (so a
// repeated job sees identical addresses and a freshly zeroed initial
// state) and allocating otherwise.
func (l *Lease) Buffers(sizes []int) ([]uint64, error) {
	sig := fmt.Sprint(sizes)
	if addrs, ok := l.e.bufs[sig]; ok {
		for i, a := range addrs {
			if err := l.e.sess.Dev.Memset(a, 0, sizes[i]); err != nil {
				return nil, err
			}
		}
		return addrs, nil
	}
	addrs := make([]uint64, 0, len(sizes))
	for _, n := range sizes {
		a, err := l.e.sess.Dev.Alloc(n)
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, a)
	}
	l.e.bufs[sig] = addrs
	return addrs, nil
}

// Release returns the session to the cache. Idempotent.
func (l *Lease) Release() {
	if l.released {
		return
	}
	l.released = true
	l.e.mu.Unlock()
	l.c.mu.Lock()
	l.c.unpinLocked(l.e)
	l.c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`
}

// Stats snapshots the counters.
func (c *ModCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	h, m := c.hits.Load(), c.misses.Load()
	s := CacheStats{Entries: n, Capacity: c.max, Hits: h, Misses: m, Evictions: c.evictions.Load()}
	if h+m > 0 {
		s.HitRatio = float64(h) / float64(h+m)
	}
	return s
}
