package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// repairableSrc is the canonical lost-update kernel: a plain ld/add/st
// on one global counter, fixable by atomicizing the triple.
const repairableSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`

func postRepair(t *testing.T, ts *httptest.Server, req RepairRequest) (int, RepairResponse, ErrorJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out RepairResponse
	var errj ErrorJSON
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&out)
	} else {
		json.NewDecoder(resp.Body).Decode(&errj)
	}
	return resp.StatusCode, out, errj
}

func TestRepairEndpoint(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})

	code, res, errj := postRepair(t, ts, RepairRequest{PTX: repairableSrc})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%v)", code, errj)
	}
	if res.CacheHit {
		t.Error("first repair reported a cache hit")
	}
	rep := res.Report
	if rep == nil || rep.BaselineRaces == 0 {
		t.Fatalf("report = %+v, want baseline races", rep)
	}
	if rep.Verified == 0 || rep.FinalRaces != 0 {
		t.Fatalf("verified = %d, final races = %d, want a verified race-free repair", rep.Verified, rep.FinalRaces)
	}
	found := false
	for _, c := range rep.Candidates {
		for _, p := range c.Patches {
			if p.Verdict.Verified && p.Kind == "atomicize" {
				found = true
				if p.Diff == "" {
					t.Error("verified patch carries no diff")
				}
			}
		}
	}
	if !found {
		t.Fatalf("no verified atomicize patch in %+v", rep.Candidates)
	}

	// The same request again is a pure memo lookup with the same verdicts.
	code, warm, _ := postRepair(t, ts, RepairRequest{PTX: repairableSrc})
	if code != http.StatusOK || !warm.CacheHit {
		t.Errorf("repeat repair: status = %d, cache_hit = %v, want hit", code, warm.CacheHit)
	}
	if warm.Report.Verified != rep.Verified || warm.Report.PatchedPTX != rep.PatchedPTX {
		t.Error("warm report differs from cold")
	}

	// A different launch shape is a distinct parameterization: miss.
	code, other, _ := postRepair(t, ts, RepairRequest{PTX: repairableSrc, Grid: 3})
	if code != http.StatusOK || other.CacheHit {
		t.Errorf("different grid: status = %d, cache_hit = %v, want miss", code, other.CacheHit)
	}
}

func TestRepairRejectsBadPayloads(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	for _, req := range []RepairRequest{
		{},                                     // neither ptx nor bench
		{PTX: repairableSrc, Bench: "counter"}, // both
		{PTX: repairableSrc, Grid: -1},
		{PTX: repairableSrc, MaxCandidates: -2},
	} {
		code, _, errj := postRepair(t, ts, req)
		if code != http.StatusBadRequest || errj.Code != CodeInvalidArgument {
			t.Errorf("req %+v: status = %d code = %q, want 400 invalid_argument", req, code, errj.Code)
		}
	}
}

// TestRepairJobKind drives the same loop through the async job API — the
// form the fleet coordinator forwards to workers.
func TestRepairJobKind(t *testing.T) {
	srv, _ := newTestServer(t, SchedulerOptions{Workers: 1})
	sched := srv.Scheduler()

	job, err := sched.Submit(JobRequest{PTX: repairableSrc, Kind: KindRepair})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	info := job.Info()
	if info.Status != StatusDone {
		t.Fatalf("status = %s (%s)", info.Status, info.Error)
	}
	if info.Result == nil || info.Result.Repair == nil {
		t.Fatalf("result = %+v, want a repair report", info.Result)
	}
	if info.Result.Repair.Verified == 0 {
		t.Errorf("repair job verified no patches: %+v", info.Result.Repair)
	}
	if info.Result.RaceCount != info.Result.Repair.BaselineRaces {
		t.Errorf("race_count = %d, want the baseline count %d",
			info.Result.RaceCount, info.Result.Repair.BaselineRaces)
	}

	// A second identical repair job hits the per-entry memo.
	job2, err := sched.Submit(JobRequest{PTX: repairableSrc, Kind: KindRepair})
	if err != nil {
		t.Fatal(err)
	}
	<-job2.Done()
	if got := job2.Info(); got.Status != StatusDone || got.Result.Repair.Verified != info.Result.Repair.Verified {
		t.Errorf("warm repair job disagrees: %+v", got)
	}

	// Unknown kinds are rejected at validation.
	if _, err := sched.Submit(JobRequest{PTX: repairableSrc, Kind: "optimize"}); err == nil {
		t.Error("unknown kind accepted")
	}
}
