package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxBodyBytes bounds a job submission body (PTX sources are text; 16
// MiB is far beyond any real module).
const maxBodyBytes = 16 << 20

// Server is the barracudad HTTP front end.
//
// API:
//
//	POST /jobs          submit a JobRequest  → 202 JobInfo | 400 | 429
//	GET  /jobs          list retained jobs   → 200 []JobInfo
//	GET  /jobs/{id}     fetch one job        → 200 JobInfo | 404
//	                    ?wait_ms=N long-polls until terminal or N ms
//	POST /v1/analyze    static analysis only → 200 AnalyzeResponse | 400
//	POST /v1/repair     verified repair loop → 200 RepairResponse | 400
//	GET  /v1/stream     upgrade to the binary streaming protocol
//	                    (internal/wire): chunked PTX upload, pipelined
//	                    launches, incremental race frames → 101 | 426
//	GET  /healthz       liveness             → 200 {"status":"ok",...}
//	GET  /metrics       counters             → 200 MetricsJSON
//	GET  /v1/metrics    alias of /metrics (the versioned surface the
//	                    fleet coordinator's heartbeats are built from)
//
// Non-2xx responses carry ErrorJSON with a stable machine-readable
// code so the coordinator can tell retryable from permanent failures.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	start time.Time
}

// New builds a server (and its scheduler/worker pool) from options.
func New(opts SchedulerOptions) *Server {
	s := &Server{
		sched: NewScheduler(opts),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/repair", s.handleRepair)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the service core (tests, benchmarks).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Close stops the worker pool.
func (s *Server) Close() { s.sched.Stop() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorJSON{Error: msg, Code: code})
}

// bearerToken extracts the API key from an Authorization: Bearer
// header; jobs submitted without one share the anonymous fair-share
// bucket.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	job, err := s.sched.SubmitTenant(req, bearerToken(r), nil)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, job.Info())
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	res, err := s.sched.Analyze(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req RepairRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	res, err := s.sched.Repair(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	if ms, _ := strconv.Atoi(r.URL.Query().Get("wait_ms")); ms > 0 {
		select {
		case <-job.Done():
		case <-time.After(time.Duration(ms) * time.Millisecond):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, job.Info())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_ms":   float64(time.Since(s.start).Microseconds()) / 1000,
		"queue_depth": s.sched.QueueDepth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.sched.Metrics()
	writeJSON(w, http.StatusOK, MetricsJSON{
		UptimeMS:      float64(time.Since(s.start).Microseconds()) / 1000,
		Workers:       s.sched.Options().Workers,
		QueueDepth:    s.sched.QueueDepth(),
		QueueCapacity: s.sched.Options().QueueCap,
		InFlight:      s.sched.InFlight(),
		Jobs:          m.Counters(),
		Cache:         s.sched.Cache().Stats(),
		Srcs:          s.sched.Srcs().Stats(),
		Tenants:       s.sched.Tenants().Snapshot(),
		Shadow:        m.Shadow(),
		Filter:        m.Filter(),
		DetectLatency: m.Latency.Snapshot(),
	})
}
