package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"barracuda/internal/wire"
)

// dialStream upgrades a fresh connection against the test server.
func dialStream(t *testing.T, ts_URL, apiKey string) *wire.Client {
	t.Helper()
	host := strings.TrimPrefix(ts_URL, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Handshake(conn, host, apiKey)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// collect drains events until every launched seq has a summary.
func collect(t *testing.T, c *wire.Client, want int) (map[uint64]wire.Summary, map[uint64][]wire.RaceEvent, []wire.Reject) {
	t.Helper()
	sums := map[uint64]wire.Summary{}
	races := map[uint64][]wire.RaceEvent{}
	var rejects []wire.Reject
	for len(sums)+len(rejects) < want {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("after %d summaries: %v", len(sums), err)
		}
		switch ev.Type {
		case wire.FAccept:
		case wire.FRace:
			races[ev.Race.Seq] = append(races[ev.Race.Seq], ev.Race)
		case wire.FSummary:
			sums[ev.Summary.Seq] = ev.Summary
		case wire.FReject:
			rejects = append(rejects, ev.Reject)
		}
	}
	return sums, races, rejects
}

func TestStreamDetectFlow(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 2})
	c := dialStream(t, ts.URL, "tenant-a")

	if w := c.Welcome(); w.MaxFrame != wire.MaxFrame || w.MaxModule != wire.MaxModule {
		t.Fatalf("welcome limits = %+v", w)
	}
	_, warm, err := c.UploadModule([]byte(racySrc))
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("first upload reported warm")
	}
	if err := c.Launch(wire.LaunchSpec{Seq: 1, Kernel: "k", Grid: 1, Block: 64, Buffers: []int{256}}); err != nil {
		t.Fatal(err)
	}
	sums, races, rejects := collect(t, c, 1)
	if len(rejects) != 0 {
		t.Fatalf("rejects: %+v", rejects)
	}
	sum := sums[1]
	if sum.Status != StatusDone {
		t.Fatalf("status = %q (%s)", sum.Status, sum.Error)
	}
	if len(sum.Races) == 0 {
		t.Fatal("racy kernel streamed no races in summary")
	}
	// The incremental frames must have previewed every static race.
	if len(races[1]) != len(sum.Races) {
		t.Fatalf("streamed %d incremental races, summary has %d", len(races[1]), len(sum.Races))
	}
	if sum.RecordsSeen == 0 || sum.WarpInstrs == 0 {
		t.Fatalf("stats not populated: %+v", sum)
	}
}

func TestStreamWarmUploadSkipsBytes(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	c1 := dialStream(t, ts.URL, "")
	if _, warm, err := c1.UploadModule([]byte(racySrc)); err != nil || warm {
		t.Fatalf("first upload: warm=%v err=%v", warm, err)
	}
	// A second connection declaring the same hash skips the transfer.
	c2 := dialStream(t, ts.URL, "")
	if _, warm, err := c2.UploadModule([]byte(racySrc)); err != nil || !warm {
		t.Fatalf("second upload: warm=%v err=%v, want warm=true", warm, err)
	}
	// The warm module is actually usable.
	if err := c2.Launch(wire.LaunchSpec{Seq: 7, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{64}}); err != nil {
		t.Fatal(err)
	}
	sums, _, _ := collect(t, c2, 1)
	if sums[7].Status != StatusDone {
		t.Fatalf("warm-module launch: %+v", sums[7])
	}
}

func TestStreamPipelinedLaunches(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 2})
	c := dialStream(t, ts.URL, "tenant-p")
	if _, _, err := c.UploadModule([]byte(racySrc)); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 1; i <= n; i++ {
		if err := c.Launch(wire.LaunchSpec{Seq: uint64(i), Kernel: "k", Grid: 1, Block: 32, Buffers: []int{64}}); err != nil {
			t.Fatal(err)
		}
	}
	sums, _, rejects := collect(t, c, n)
	if len(rejects) != 0 {
		t.Fatalf("rejects: %+v", rejects)
	}
	for i := 1; i <= n; i++ {
		if s, ok := sums[uint64(i)]; !ok || s.Status != StatusDone {
			t.Fatalf("seq %d: %+v", i, s)
		}
	}
}

func TestStreamLaunchValidationReject(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	c := dialStream(t, ts.URL, "")
	if _, _, err := c.UploadModule([]byte(racySrc)); err != nil {
		t.Fatal(err)
	}
	// Negative grid fails JobRequest validation; connection survives.
	if err := c.Launch(wire.LaunchSpec{Seq: 1, Kernel: "k", Grid: -1, Block: 32}); err != nil {
		t.Fatal(err)
	}
	_, _, rejects := collect(t, c, 1)
	if len(rejects) != 1 || rejects[0].Code != wire.CodeInvalidArgument {
		t.Fatalf("rejects = %+v, want one invalid_argument", rejects)
	}
	// The connection still works after a reject.
	if err := c.Launch(wire.LaunchSpec{Seq: 2, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{64}}); err != nil {
		t.Fatal(err)
	}
	sums, _, _ := collect(t, c, 1)
	if sums[2].Status != StatusDone {
		t.Fatalf("post-reject launch: %+v", sums[2])
	}
}

func TestStreamTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{
		Workers: 1,
		// One-token bucket with negligible refill: the handshake spends
		// the only token, the first launch must be rejected with a
		// Retry-After hint.
		Tenants: TenantOptions{RatePerSec: 0.001, Burst: 1},
	})
	c := dialStream(t, ts.URL, "throttled")
	if _, _, err := c.UploadModule([]byte(racySrc)); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(wire.LaunchSpec{Seq: 1, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{64}}); err != nil {
		t.Fatal(err)
	}
	_, _, rejects := collect(t, c, 1)
	if len(rejects) != 1 {
		t.Fatalf("rejects = %+v", rejects)
	}
	rej := rejects[0]
	if rej.Code != wire.CodeQueueFull {
		t.Fatalf("reject code = %q, want %q", rej.Code, wire.CodeQueueFull)
	}
	if rej.RetryAfterMS == 0 {
		t.Fatal("reject carries no Retry-After hint")
	}
}

func TestStreamRateLimitedHandshake(t *testing.T) {
	srv, ts := newTestServer(t, SchedulerOptions{
		Workers: 1,
		Tenants: TenantOptions{RatePerSec: 0.001, Burst: 1},
	})
	// Exhaust the tenant's only token.
	if ok, _ := srv.Scheduler().Tenants().Admit("dos"); !ok {
		t.Fatal("first admit should pass")
	}
	host := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = wire.Handshake(conn, host, "dos")
	rej, ok := err.(*wire.RejectError)
	if !ok {
		t.Fatalf("err = %v, want *wire.RejectError", err)
	}
	if rej.Reject.Code != wire.CodeQueueFull || rej.Reject.RetryAfterMS == 0 {
		t.Fatalf("handshake reject = %+v", rej.Reject)
	}
}

func TestStreamTenantAccounting(t *testing.T) {
	srv, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	c := dialStream(t, ts.URL, "metered")
	if _, _, err := c.UploadModule([]byte(racySrc)); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(wire.LaunchSpec{Seq: 1, Kernel: "k", Grid: 1, Block: 64, Buffers: []int{256}}); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 1)
	c.Bye()
	c.Close()
	// Bye lets the server finish its accounting; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got *TenantJSON
		for _, tj := range srv.Scheduler().Tenants().Snapshot() {
			if tj.Key == "metered" {
				tj := tj
				got = &tj
			}
		}
		if got != nil && got.Jobs == 1 && got.BytesIn > 0 && got.BytesOut > 0 && got.Races > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant counters never settled: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamModuleHashMismatch(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	host := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := wire.Handshake(conn, host, "")
	if err != nil {
		t.Fatal(err)
	}
	// Hand-roll an upload whose declared hash does not match the bytes.
	w := wire.NewWriter(conn)
	badHash := make([]byte, 32)
	w.WriteFrame(wire.FModBegin, wire.EncodeModBegin(wire.ModBegin{TotalLen: 3, Hash: badHash}))
	if _, err := c.Next(); err == nil {
		// ModState(need) arrives as an unexpected-frame error from Next;
		// accept either shape, the point is what follows.
		t.Log("mod state delivered")
	}
	w.WriteFrame(wire.FModChunk, []byte("abc"))
	w.WriteFrame(wire.FModEnd, nil)
	_, err = c.Next()
	if _, ok := err.(*wire.FatalError); !ok {
		t.Fatalf("err = %v, want *wire.FatalError for hash mismatch", err)
	}
}
