package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

const racySrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

// spinSrc never terminates under SIMT lockstep: the winning lane cannot
// release while the losers spin, so only a step budget or wall-clock
// timeout stops it — exactly what the timeout tests need.
const spinSrc = `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`

func newTestServer(t *testing.T, opts SchedulerOptions) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (int, JobInfo, ErrorJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	var errj ErrorJSON
	if resp.StatusCode == http.StatusAccepted {
		json.NewDecoder(resp.Body).Decode(&info)
	} else {
		json.NewDecoder(resp.Body).Decode(&errj)
	}
	return resp.StatusCode, info, errj
}

func waitJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait_ms=2000", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		switch info.Status {
		case StatusDone, StatusFailed, StatusTimeout:
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, info.Status)
		}
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsJSON
	json.NewDecoder(resp.Body).Decode(&m)
	return m
}

// TestRepeatSubmissionHitsCache is the acceptance flow: the same PTX job
// twice, identical reports, and the second served from the module cache.
func TestRepeatSubmissionHitsCache(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 2})

	req := JobRequest{PTX: racySrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4}}
	code, first, _ := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	info1 := waitJob(t, ts, first.ID)
	if info1.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", info1.Status, info1.Error)
	}
	if info1.CacheHit {
		t.Error("job 1 reported a cache hit on a cold cache")
	}
	if info1.Result == nil || info1.Result.RaceCount == 0 {
		t.Fatalf("job 1 found no races: %+v", info1.Result)
	}

	code, second, _ := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", code)
	}
	info2 := waitJob(t, ts, second.ID)
	if info2.Status != StatusDone {
		t.Fatalf("job 2: %s (%s)", info2.Status, info2.Error)
	}
	if !info2.CacheHit {
		t.Error("job 2 missed the module cache")
	}
	if !reflect.DeepEqual(info1.Result.Races, info2.Result.Races) {
		t.Errorf("reports differ:\nfirst:  %+v\nsecond: %+v", info1.Result.Races, info2.Result.Races)
	}

	m := getMetrics(t, ts)
	if m.Cache.Hits < 1 || m.Cache.Misses < 1 {
		t.Errorf("cache counters = %+v, want >=1 hit and >=1 miss", m.Cache)
	}
	if m.Jobs.Completed != 2 {
		t.Errorf("completed = %d, want 2", m.Jobs.Completed)
	}
	if m.DetectLatency.Count != 2 {
		t.Errorf("latency observations = %d, want 2", m.DetectLatency.Count)
	}
}

func TestBenchJobDefaults(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, info, _ := postJob(t, ts, JobRequest{Bench: "hybridsort"})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	done := waitJob(t, ts, info.ID)
	if done.Status != StatusDone {
		t.Fatalf("bench job: %s (%s)", done.Status, done.Error)
	}
	// hybridsort's engineered ground truth is 1 shared-memory race.
	if done.Result.RaceCount != 1 {
		t.Errorf("race_count = %d, want 1", done.Result.RaceCount)
	}
}

func TestInvalidPayloadsReturn400(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	cases := []JobRequest{
		{},                            // neither ptx nor bench
		{PTX: racySrc, Bench: "bfs"},  // both
		{Bench: "no-such-benchmark"},  // unknown bench
		{PTX: racySrc, Grid: -1},      // negative geometry
		{PTX: racySrc, TimeoutMS: -5}, // negative timeout
		{PTX: racySrc, Config: ConfigJSON{Queues: -2}},      // invalid detector config
		{PTX: racySrc, Config: ConfigJSON{MaxRaces: -1}},    // invalid detector config
		{PTX: racySrc, Config: ConfigJSON{Granularity: -4}}, // invalid detector config
		{PTX: racySrc, Buffers: []int{-8}},                  // negative buffer
		{PTX: racySrc, WarpSize: 64},                        // out-of-range warp
	}
	for i, req := range cases {
		code, _, errj := postJob(t, ts, req)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
		if errj.Error == "" {
			t.Errorf("case %d: empty error message", i)
		}
	}
	// Malformed JSON is also a 400, not a panic.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestQueueFullReturns429 saturates a 1-worker, 1-slot server with spin
// jobs; some submission in the burst must be rejected with backpressure
// and the daemon must keep serving afterwards.
func TestQueueFullReturns429(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1, QueueCap: 1})
	spin := JobRequest{
		PTX: spinSrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4, 4},
		TimeoutMS: 400, MaxInstrs: 1 << 20,
	}
	got429 := false
	for i := 0; i < 4; i++ {
		code, _, _ := postJob(t, ts, spin)
		if code == http.StatusTooManyRequests {
			got429 = true
		} else if code != http.StatusAccepted {
			t.Fatalf("submit %d: unexpected status %d", i, code)
		}
	}
	if !got429 {
		t.Error("no submission was rejected with 429")
	}
	m := getMetrics(t, ts)
	if m.Jobs.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", m.Jobs.Rejected)
	}
	// The daemon survives the burst.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after burst: %d", resp.StatusCode)
	}
}

func TestWallClockTimeout(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, info, _ := postJob(t, ts, JobRequest{
		PTX: spinSrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4, 4},
		TimeoutMS: 1, MaxInstrs: 1 << 22,
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	done := waitJob(t, ts, info.ID)
	if done.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", done.Status, done.Error)
	}
	if done.Error == "" {
		t.Error("timeout without a structured error message")
	}
	m := getMetrics(t, ts)
	if m.Jobs.TimedOut < 1 {
		t.Errorf("timed_out = %d, want >= 1", m.Jobs.TimedOut)
	}
}

func TestStepBudgetReportsTimeout(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, info, _ := postJob(t, ts, JobRequest{
		PTX: spinSrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4, 4},
		TimeoutMS: 30000, MaxInstrs: 10000,
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	done := waitJob(t, ts, info.ID)
	if done.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", done.Status, done.Error)
	}
}

func TestBadPTXFailsJobNotDaemon(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, info, _ := postJob(t, ts, JobRequest{PTX: "this is not ptx"})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	done := waitJob(t, ts, info.ID)
	if done.Status != StatusFailed || done.Error == "" {
		t.Fatalf("status = %s (%q), want failed with an error", done.Status, done.Error)
	}
}

// TestConcurrentJobsSmallPool drives many concurrent submissions of a
// handful of distinct modules through a small worker pool — the -race
// stress for the scheduler, cache serialization and metrics.
func TestConcurrentJobsSmallPool(t *testing.T) {
	srv, ts := newTestServer(t, SchedulerOptions{Workers: 3, QueueCap: 256, CacheEntries: 2})

	// Three distinct modules (differing comment changes the hash) so
	// jobs contend for a 2-entry cache while sharing sessions.
	srcs := make([]string, 3)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("// variant %d\n%s", i, racySrc)
	}
	const perSrc = 8
	var wg sync.WaitGroup
	ids := make(chan string, len(srcs)*perSrc)
	for _, src := range srcs {
		for j := 0; j < perSrc; j++ {
			wg.Add(1)
			go func(src string) {
				defer wg.Done()
				code, info, errj := postJob(t, ts, JobRequest{
					PTX: src, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4},
				})
				if code != http.StatusAccepted {
					t.Errorf("submit: status %d (%s)", code, errj.Error)
					return
				}
				ids <- info.ID
			}(src)
		}
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		done := waitJob(t, ts, id)
		if done.Status != StatusDone {
			t.Errorf("job %s: %s (%s)", id, done.Status, done.Error)
			continue
		}
		if done.Result.RaceCount == 0 {
			t.Errorf("job %s: no races found", id)
		}
	}
	if d := srv.Scheduler().QueueDepth(); d != 0 {
		t.Errorf("queue depth after drain = %d", d)
	}
}

func TestJobListAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	code, info, _ := postJob(t, ts, JobRequest{PTX: racySrc, Kernel: "k", Buffers: []int{4}})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	waitJob(t, ts, info.ID)

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobInfo
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Errorf("list = %+v, want the one submitted job", list)
	}

	resp, err = http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}
