package server

import (
	"sync/atomic"
	"time"

	"barracuda/internal/gpusim"
	"barracuda/internal/shadow"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the per-job
// detect-latency histogram; the last implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	buckets [len(latencyBucketsMS) + 1]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// HistogramBucket is one cumulative bucket of the snapshot.
type HistogramBucket struct {
	LEms  float64 `json:"le_ms"` // upper bound; -1 encodes +Inf
	Count int64   `json:"count"` // cumulative observations <= bound
}

// HistogramJSON is the wire form of a histogram.
type HistogramJSON struct {
	Count   int64             `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot renders the histogram with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramJSON {
	out := HistogramJSON{
		Count: h.count.Load(),
		SumMS: float64(h.sumUS.Load()) / 1000,
	}
	if out.Count > 0 {
		out.MeanMS = out.SumMS / float64(out.Count)
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := -1.0
		if i < len(latencyBucketsMS) {
			le = latencyBucketsMS[i]
		}
		out.Buckets = append(out.Buckets, HistogramBucket{LEms: le, Count: cum})
	}
	return out
}

// Metrics is the daemon-wide counter registry, exposed on /metrics.
type Metrics struct {
	Submitted atomic.Int64
	Completed atomic.Int64
	Failed    atomic.Int64
	TimedOut  atomic.Int64
	Rejected  atomic.Int64 // queue-full 429s
	Latency   Histogram    // successful detect wall time

	// Shadow-memory pressure, accumulated from every successful
	// detect's per-job shadow stats. PeakResidentBytes is a high-water
	// mark across jobs; the rest are running sums.
	ShadowOwnedFast     atomic.Int64 // records handled by the ownership fast path
	ShadowInflations    atomic.Int64 // exclusive regions inflated to shared
	ShadowCompactions   atomic.Int64 // shared slabs reclaimed at barriers
	ShadowEvictions     atomic.Int64 // regions evicted under the byte cap
	ShadowLiveEvictions atomic.Int64 // evictions that discarded live state
	ShadowDegradedJobs  atomic.Int64 // jobs that finished PrecisionDegraded
	ShadowPeakResident  atomic.Int64 // max per-job peak resident bytes

	// Producer-side filter activity, accumulated from every successful
	// detect's simulator stats. All running sums; zero unless jobs run
	// with producer_filter set.
	FilterProbes       atomic.Int64 // dynamic filter-cache probes
	FilterHits         atomic.Int64 // records suppressed by the dynamic cache
	FilterStaticElides atomic.Int64 // records elided at static log-once sites
	FilterFlushes      atomic.Int64 // OpFlush reconciliation records emitted
}

// ObserveShadow folds one completed job's shadow stats into the
// daemon-wide registry.
func (m *Metrics) ObserveShadow(st shadow.MemStats) {
	m.ShadowOwnedFast.Add(int64(st.OwnedFast))
	m.ShadowInflations.Add(int64(st.Inflations))
	m.ShadowCompactions.Add(int64(st.Compactions))
	m.ShadowEvictions.Add(int64(st.Evictions))
	m.ShadowLiveEvictions.Add(int64(st.LiveEvictions))
	if st.PrecisionDegraded {
		m.ShadowDegradedJobs.Add(1)
	}
	for {
		cur := m.ShadowPeakResident.Load()
		if st.PeakResidentBytes <= cur ||
			m.ShadowPeakResident.CompareAndSwap(cur, st.PeakResidentBytes) {
			return
		}
	}
}

// ObserveFilter folds one completed job's producer-filter stats into
// the daemon-wide registry.
func (m *Metrics) ObserveFilter(st gpusim.FilterStats) {
	if st == (gpusim.FilterStats{}) {
		return
	}
	m.FilterProbes.Add(int64(st.Probes))
	m.FilterHits.Add(int64(st.Hits))
	m.FilterStaticElides.Add(int64(st.StaticElides))
	m.FilterFlushes.Add(int64(st.Flushes))
}

// FilterCounters groups the aggregated producer-filter figures for the
// wire. Suppressed is Hits + StaticElides: the total record volume the
// filter kept off the queues.
type FilterCounters struct {
	Probes       int64 `json:"probes"`
	Hits         int64 `json:"hits"`
	StaticElides int64 `json:"static_elides"`
	Flushes      int64 `json:"flushes"`
	Suppressed   int64 `json:"suppressed_records"`
}

// Filter snapshots the producer-filter counters.
func (m *Metrics) Filter() FilterCounters {
	h, e := m.FilterHits.Load(), m.FilterStaticElides.Load()
	return FilterCounters{
		Probes:       m.FilterProbes.Load(),
		Hits:         h,
		StaticElides: e,
		Flushes:      m.FilterFlushes.Load(),
		Suppressed:   h + e,
	}
}

// ShadowCounters groups the aggregated shadow-memory figures for the
// wire.
type ShadowCounters struct {
	OwnedFastRecords int64 `json:"owned_fast_records"`
	Inflations       int64 `json:"ownership_inflations"`
	Compactions      int64 `json:"compactions"`
	Evictions        int64 `json:"evictions"`
	LiveEvictions    int64 `json:"live_evictions"`
	DegradedJobs     int64 `json:"degraded_jobs"`
	PeakResident     int64 `json:"peak_resident_bytes"`
}

// Shadow snapshots the shadow-memory counters.
func (m *Metrics) Shadow() ShadowCounters {
	return ShadowCounters{
		OwnedFastRecords: m.ShadowOwnedFast.Load(),
		Inflations:       m.ShadowInflations.Load(),
		Compactions:      m.ShadowCompactions.Load(),
		Evictions:        m.ShadowEvictions.Load(),
		LiveEvictions:    m.ShadowLiveEvictions.Load(),
		DegradedJobs:     m.ShadowDegradedJobs.Load(),
		PeakResident:     m.ShadowPeakResident.Load(),
	}
}

// MetricsJSON is the /metrics response body.
type MetricsJSON struct {
	UptimeMS      float64        `json:"uptime_ms"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	InFlight      int            `json:"in_flight"`
	Jobs          JobCounters    `json:"jobs"`
	Cache         CacheStats     `json:"cache"`
	Srcs          SrcStoreStats  `json:"srcs"`
	Tenants       []TenantJSON   `json:"tenants,omitempty"`
	Shadow        ShadowCounters `json:"shadow"`
	Filter        FilterCounters `json:"filter"`
	DetectLatency HistogramJSON  `json:"detect_latency"`
}

// JobCounters groups the job outcome counters.
type JobCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	TimedOut  int64 `json:"timed_out"`
	Rejected  int64 `json:"rejected"`
}

// Counters snapshots the job counters.
func (m *Metrics) Counters() JobCounters {
	return JobCounters{
		Submitted: m.Submitted.Load(),
		Completed: m.Completed.Load(),
		Failed:    m.Failed.Load(),
		TimedOut:  m.TimedOut.Load(),
		Rejected:  m.Rejected.Load(),
	}
}
