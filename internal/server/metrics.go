package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the per-job
// detect-latency histogram; the last implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	buckets [len(latencyBucketsMS) + 1]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// HistogramBucket is one cumulative bucket of the snapshot.
type HistogramBucket struct {
	LEms  float64 `json:"le_ms"` // upper bound; -1 encodes +Inf
	Count int64   `json:"count"` // cumulative observations <= bound
}

// HistogramJSON is the wire form of a histogram.
type HistogramJSON struct {
	Count   int64             `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot renders the histogram with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramJSON {
	out := HistogramJSON{
		Count: h.count.Load(),
		SumMS: float64(h.sumUS.Load()) / 1000,
	}
	if out.Count > 0 {
		out.MeanMS = out.SumMS / float64(out.Count)
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := -1.0
		if i < len(latencyBucketsMS) {
			le = latencyBucketsMS[i]
		}
		out.Buckets = append(out.Buckets, HistogramBucket{LEms: le, Count: cum})
	}
	return out
}

// Metrics is the daemon-wide counter registry, exposed on /metrics.
type Metrics struct {
	Submitted atomic.Int64
	Completed atomic.Int64
	Failed    atomic.Int64
	TimedOut  atomic.Int64
	Rejected  atomic.Int64 // queue-full 429s
	Latency   Histogram    // successful detect wall time
}

// MetricsJSON is the /metrics response body.
type MetricsJSON struct {
	UptimeMS      float64       `json:"uptime_ms"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	InFlight      int           `json:"in_flight"`
	Jobs          JobCounters   `json:"jobs"`
	Cache         CacheStats    `json:"cache"`
	DetectLatency HistogramJSON `json:"detect_latency"`
}

// JobCounters groups the job outcome counters.
type JobCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	TimedOut  int64 `json:"timed_out"`
	Rejected  int64 `json:"rejected"`
}

// Counters snapshots the job counters.
func (m *Metrics) Counters() JobCounters {
	return JobCounters{
		Submitted: m.Submitted.Load(),
		Completed: m.Completed.Load(),
		Failed:    m.Failed.Load(),
		TimedOut:  m.TimedOut.Load(),
		Rejected:  m.Rejected.Load(),
	}
}
