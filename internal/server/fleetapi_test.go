package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// The satellite contract for the fleet PR: every non-2xx response
// carries a stable machine-readable code, validation errors name the
// offending JSON field, and the observability surface (/healthz,
// /metrics, /v1/metrics, HeartbeatStats) exposes queue depth and cache
// hit/miss counters.

func TestErrorCodesRetryableVsPermanent(t *testing.T) {
	if !RetryableCode(CodeQueueFull) || !RetryableCode(CodeUnavailable) {
		t.Fatal("queue_full and unavailable must be retryable")
	}
	if RetryableCode(CodeInvalidArgument) || RetryableCode(CodeNotFound) {
		t.Fatal("invalid_argument and not_found must be permanent")
	}
	if RetryableCode("") || RetryableCode("something_else") {
		t.Fatal("unknown codes must default to permanent")
	}
}

func TestValidationErrorsCarryCodeAndFieldName(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1, QueueCap: 4})

	for _, tc := range []struct {
		name  string
		req   JobRequest
		field string
	}{
		{"neither source", JobRequest{}, `"ptx"/"bench"`},
		{"both sources", JobRequest{PTX: racySrc, Bench: "bfs"}, `"ptx"/"bench"`},
		{"unknown bench", JobRequest{Bench: "nope"}, `"bench"`},
		{"negative grid", JobRequest{PTX: racySrc, Grid: -1}, `"grid"`},
		{"negative block", JobRequest{PTX: racySrc, Block: -2}, `"block"`},
		{"negative timeout", JobRequest{PTX: racySrc, TimeoutMS: -1}, `"timeout_ms"`},
		{"bad warp size", JobRequest{PTX: racySrc, WarpSize: 64}, `"warp_size"`},
		{"bad class", JobRequest{PTX: racySrc, Class: "urgent"}, `"class"`},
		{"negative buffer", JobRequest{PTX: racySrc, Buffers: []int{8, -4}}, `"buffers[1]"`},
		{"bad config", JobRequest{PTX: racySrc, Config: ConfigJSON{Queues: -1}}, `"config"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errj := postJob(t, ts, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if errj.Code != CodeInvalidArgument {
				t.Fatalf("code %q, want %q", errj.Code, CodeInvalidArgument)
			}
			if !strings.Contains(errj.Error, tc.field) {
				t.Fatalf("error %q does not name field %s", errj.Error, tc.field)
			}
		})
	}
}

func TestQueueFullCarriesRetryableCode(t *testing.T) {
	// Single worker, tiny queue, spin jobs that outlive the test window.
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1, QueueCap: 1})
	req := JobRequest{PTX: spinSrc, Kernel: "k", Grid: 1, Block: 32,
		Buffers: []int{4, 4}, TimeoutMS: 3000}
	var sawFull bool
	for i := 0; i < 8; i++ {
		code, _, errj := postJob(t, ts, req)
		if code == http.StatusTooManyRequests {
			if errj.Code != CodeQueueFull {
				t.Fatalf("429 with code %q, want %q", errj.Code, CodeQueueFull)
			}
			if !RetryableCode(errj.Code) {
				t.Fatal("queue_full must classify as retryable")
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("never saw 429 with a 1-deep queue and spinning worker")
	}
}

func TestNotFoundCarriesCode(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	resp, err := http.Get(ts.URL + "/jobs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var errj ErrorJSON
	json.NewDecoder(resp.Body).Decode(&errj)
	if resp.StatusCode != http.StatusNotFound || errj.Code != CodeNotFound {
		t.Fatalf("status %d code %q, want 404 %q", resp.StatusCode, errj.Code, CodeNotFound)
	}
}

func TestHealthzReportsQueueDepth(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	json.NewDecoder(resp.Body).Decode(&hz)
	if hz["status"] != "ok" {
		t.Fatalf("healthz status = %v", hz["status"])
	}
	if _, ok := hz["queue_depth"]; !ok {
		t.Fatal("healthz missing queue_depth gauge")
	}
}

// /v1/metrics is the versioned alias the fleet tooling scrapes; it must
// serve the same body shape as /metrics, including queue and cache
// figures.
func TestV1MetricsAlias(t *testing.T) {
	_, ts := newTestServer(t, SchedulerOptions{Workers: 1, CacheEntries: 4})
	_, info, _ := postJob(t, ts, JobRequest{PTX: racySrc, Kernel: "k", Buffers: []int{4}})
	waitJob(t, ts, info.ID)
	_, info, _ = postJob(t, ts, JobRequest{PTX: racySrc, Kernel: "k", Buffers: []int{4}})
	waitJob(t, ts, info.ID)

	for _, path := range []string{"/metrics", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var m MetricsJSON
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if m.Jobs.Completed != 2 {
			t.Fatalf("%s: completed = %d, want 2", path, m.Jobs.Completed)
		}
		if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
			t.Fatalf("%s: cache %d/%d, want 1 hit / 1 miss", path, m.Cache.Hits, m.Cache.Misses)
		}
		if m.QueueCapacity == 0 {
			t.Fatalf("%s: missing queue capacity", path)
		}
	}
}

// HeartbeatStats is the snapshot workers embed in fleet heartbeats; it
// must agree with the metrics counters.
func TestHeartbeatStatsSnapshot(t *testing.T) {
	srv, ts := newTestServer(t, SchedulerOptions{Workers: 2, QueueCap: 8, CacheEntries: 4})
	_, info, _ := postJob(t, ts, JobRequest{PTX: racySrc, Kernel: "k", Buffers: []int{4}})
	waitJob(t, ts, info.ID)
	_, info, _ = postJob(t, ts, JobRequest{PTX: racySrc, Kernel: "k", Buffers: []int{4}})
	waitJob(t, ts, info.ID)

	hs := srv.Scheduler().HeartbeatStats()
	if hs.Workers != 2 || hs.QueueCap != 8 {
		t.Fatalf("static fields: %+v", hs)
	}
	if hs.Completed != 2 || hs.Failed != 0 {
		t.Fatalf("completed %d / failed %d, want 2 / 0", hs.Completed, hs.Failed)
	}
	if hs.CacheHits != 1 || hs.CacheMisses != 1 {
		t.Fatalf("cache %d/%d, want 1 hit / 1 miss", hs.CacheHits, hs.CacheMisses)
	}
	if hs.QueueDepth != 0 || hs.InFlight != 0 {
		t.Fatalf("idle server reports queue %d / in-flight %d", hs.QueueDepth, hs.InFlight)
	}
}
