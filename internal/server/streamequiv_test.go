package server

import (
	"testing"

	"barracuda/internal/bugsuite"
	"barracuda/internal/wire"
)

// TestStreamJSONEquivalence is the end-to-end contract of the streaming
// protocol: over the whole bug suite, the report reassembled from
// stream frames must be digest-identical (core.CanonicalDigest) to the
// report fetched from the JSON poll API — same races, same counts, same
// divergences, same record totals. Programs that exhaust the step
// budget must classify as timeout on both surfaces.
func TestStreamJSONEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full bug suite; skipped in -short")
	}
	_, ts := newTestServer(t, SchedulerOptions{Workers: 2, QueueCap: 256, MaxJobs: 8192})
	c := dialStream(t, ts.URL, "equiv")

	tests := bugsuite.Tests()
	for _, bt := range tests {
		bt := bt
		t.Run(bt.Name, func(t *testing.T) {
			req := JobRequest{
				PTX:       bt.PTX,
				Kernel:    bt.Kernel,
				Grid:      bt.Grid.Count(),
				Block:     bt.Block.Count(),
				Buffers:   bt.Bufs,
				MaxInstrs: 1 << 19,
			}

			// JSON path: submit and poll.
			code, info, errj := postJob(t, ts, req)
			if code != 202 {
				t.Fatalf("JSON submit: %d %+v", code, errj)
			}
			info = waitJob(t, ts, info.ID)

			// Stream path: upload (warm after the first program repeats a
			// module) and launch on the shared connection.
			if _, _, err := c.UploadModule([]byte(bt.PTX)); err != nil {
				t.Fatal(err)
			}
			if err := c.Launch(wire.LaunchSpec{
				Seq: 1, Kernel: bt.Kernel,
				Grid: bt.Grid.Count(), Block: bt.Block.Count(),
				Buffers: bt.Bufs, MaxInstrs: 1 << 19,
			}); err != nil {
				t.Fatal(err)
			}
			var sum wire.Summary
			for {
				ev, err := c.Next()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Type == wire.FReject {
					t.Fatalf("stream reject: %+v", ev.Reject)
				}
				if ev.Type == wire.FSummary {
					sum = ev.Summary
					break
				}
			}

			if sum.Status != info.Status {
				t.Fatalf("status: stream %q (%s), JSON %q (%s)", sum.Status, sum.Error, info.Status, info.Error)
			}
			if info.Status != StatusDone {
				return // timeout/failure classified identically: done
			}
			jsonRep, err := info.Result.CoreReport()
			if err != nil {
				t.Fatalf("reconstruct JSON report: %v", err)
			}
			jsonDig := jsonRep.CanonicalDigest()
			streamDig := sum.Report().CanonicalDigest()
			if streamDig != jsonDig {
				t.Fatalf("digest mismatch:\n--- stream ---\n%s--- json ---\n%s", streamDig, jsonDig)
			}
		})
	}
}
