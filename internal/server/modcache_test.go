package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"barracuda/internal/detector"
)

func TestCacheKeyDistinguishesSourceAndConfig(t *testing.T) {
	base := CacheKey(racySrc, detector.Config{})
	if CacheKey(racySrc, detector.Config{}) != base {
		t.Error("key not deterministic")
	}
	if CacheKey(racySrc+" ", detector.Config{}) == base {
		t.Error("key ignores source")
	}
	if CacheKey(racySrc, detector.Config{NoPrune: true}) == base {
		t.Error("key ignores instrument options")
	}
	if CacheKey(racySrc, detector.Config{Queues: 4}) == base {
		t.Error("key ignores detector config")
	}
	if CacheKey(racySrc, detector.Config{ProducerFilter: true}) == base {
		t.Error("key ignores producer filter")
	}
}

func TestCacheHitReusesSessionAndBuffers(t *testing.T) {
	c := NewModCache(4)
	l1, hit, err := c.Acquire(racySrc, detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first acquire reported a hit")
	}
	sess1 := l1.Session()
	addrs1, err := l1.Buffers([]int{16})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the buffer; a later lease must see it zeroed again.
	if err := sess1.Dev.WriteU32(addrs1[0], 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	l1.Release()

	l2, hit, err := c.Acquire(racySrc, detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second acquire missed")
	}
	if l2.Session() != sess1 {
		t.Error("hit returned a different session")
	}
	addrs2, err := l2.Buffers([]int{16})
	if err != nil {
		t.Fatal(err)
	}
	if addrs2[0] != addrs1[0] {
		t.Errorf("buffer not reused: %#x vs %#x", addrs2[0], addrs1[0])
	}
	if v, _ := sess1.Dev.ReadU32(addrs2[0]); v != 0 {
		t.Errorf("reused buffer not re-zeroed: %#x", v)
	}
	l2.Release()

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEvictionClosesSession(t *testing.T) {
	c := NewModCache(2)
	var sessions []*detector.Session
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("// v%d\n%s", i, racySrc)
		l, _, err := c.Acquire(src, detector.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, l.Session())
		l.Release()
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	// The evicted (oldest) session is closed; the survivors are not.
	if _, err := sessions[0].Detect("k", launchConfig(1, 32, nil, 1000, 0)); !errors.Is(err, detector.ErrClosed) {
		t.Errorf("evicted session Detect err = %v, want ErrClosed", err)
	}
	// Re-acquiring the evicted source is a miss building a new session.
	l, hit, err := c.Acquire("// v0\n"+racySrc, detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("re-acquire of evicted entry reported a hit")
	}
	if l.Session() == sessions[0] {
		t.Error("re-acquire returned the closed session")
	}
	l.Release()
}

func TestCacheOpenErrorNotCachedAsDead(t *testing.T) {
	c := NewModCache(4)
	_, _, err := c.Acquire("not ptx at all", detector.Config{})
	if err == nil {
		t.Fatal("acquire of invalid source succeeded")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed open left %d entries in the cache", st.Entries)
	}
}

func TestCacheSerializesLeases(t *testing.T) {
	c := NewModCache(2)
	l1, _, err := c.Acquire(racySrc, detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		l2, _, err := c.Acquire(racySrc, detector.Config{})
		if err != nil {
			t.Error(err)
		} else {
			l2.Release()
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second lease acquired while the first was held")
	case <-time.After(50 * time.Millisecond):
	}
	l1.Release()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second lease never acquired after release")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // ≤1ms bucket
	h.Observe(3 * time.Millisecond)   // ≤5ms bucket
	h.Observe(time.Minute)            // +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0].Count != 1 { // le 1ms
		t.Errorf("le_1ms = %d, want 1", s.Buckets[0].Count)
	}
	if s.Buckets[2].Count != 2 { // le 5ms cumulative
		t.Errorf("le_5ms = %d, want 2", s.Buckets[2].Count)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LEms != -1 || last.Count != 3 {
		t.Errorf("+Inf bucket = %+v, want all 3", last)
	}
}
