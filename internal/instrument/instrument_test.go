package instrument

import (
	"strings"
	"testing"

	"barracuda/internal/ptx"
)

func instr(t *testing.T, src string, opts Options) (*Result, string) {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Instrument(m, opts)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	text := ptx.Print(res.Module)
	// The instrumented module must still parse (round-trip validity).
	if _, err := ptx.Parse(text); err != nil {
		t.Fatalf("instrumented module does not re-parse: %v\n%s", err, text)
	}
	return res, text
}

const simpleSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	bar.sync 0;
	ld.global.u32 %r2, [%rd1];
	atom.global.add.u32 %r3, [%rd1+4], 1;
	ret;
}`

func TestBasicLoggingInsertion(t *testing.T) {
	res, text := instr(t, simpleSrc, Options{})
	if !strings.Contains(text, "_log.wr.global.sz4 [%rd1], %r1;") {
		t.Errorf("missing store log with value:\n%s", text)
	}
	if !strings.Contains(text, "_log.bar;") {
		t.Errorf("missing barrier log:\n%s", text)
	}
	if !strings.Contains(text, "_log.rd.global.sz4 [%rd1];") {
		t.Errorf("missing load log:\n%s", text)
	}
	if !strings.Contains(text, "_log.atm.global.sz4 [%rd1+4];") {
		t.Errorf("missing atomic log:\n%s", text)
	}
	s := res.Stats["k"]
	if s.Static != 7 {
		t.Errorf("static = %d, want 7", s.Static)
	}
	// st, bar, ld.global, atom are instrumented; ld.param, mov, ret not.
	if s.Instrumented != 4 {
		t.Errorf("instrumented = %d, want 4", s.Instrumented)
	}
	if s.FracInstrumented() <= 0 || s.FracInstrumented() > 1 {
		t.Errorf("fraction = %v", s.FracInstrumented())
	}
}

func TestLogKindsFollowFenceInference(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	membar.gl;
	st.global.u32 [%rd1], 1;
	ld.global.u32 %r1, [%rd1];
	membar.cta;
	atom.global.cas.b32 %r2, [%rd1], 0, 1;
	membar.gl;
	ret;
}`
	_, text := instr(t, src, Options{})
	if !strings.Contains(text, "_log.relglb.global.sz4") {
		t.Errorf("missing global release log:\n%s", text)
	}
	if !strings.Contains(text, "_log.acqblk.global.sz4") {
		t.Errorf("missing block acquire log:\n%s", text)
	}
	// cas between fences: acquire-release at global scope.
	if !strings.Contains(text, "_log.arglb.global.sz4") {
		t.Errorf("missing ar log:\n%s", text)
	}
}

func TestPredicationTransform(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	setp.eq.u32 %p1, %r1, 0;
	@%p1 st.global.u32 [%rd1], 1;
	ret;
}`
	_, text := instr(t, src, Options{})
	if !strings.Contains(text, "@!%p1 bra __bar_skip_1;") {
		t.Errorf("missing predication branch:\n%s", text)
	}
	if !strings.Contains(text, "__bar_skip_1:") {
		t.Errorf("missing skip label:\n%s", text)
	}
	// The store itself must be unpredicated inside the branch.
	if strings.Contains(text, "@%p1 st.global") {
		t.Errorf("store still predicated:\n%s", text)
	}
}

func TestNegatedGuardTransform(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	setp.eq.u32 %p1, %r1, 0;
	@!%p1 st.global.u32 [%rd1], 1;
	ret;
}`
	_, text := instr(t, src, Options{})
	if !strings.Contains(text, "@%p1 bra __bar_skip_1;") {
		t.Errorf("negated guard not inverted:\n%s", text)
	}
}

func TestBranchAndConvergenceLogging(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra A;
	mov.u32 %r2, 1;
	bra.uni J;
A:
	mov.u32 %r2, 2;
J:
	st.global.u32 [%rd1], %r2;
	ret;
}`
	res, text := instr(t, src, Options{})
	if !strings.Contains(text, "_log.if;") {
		t.Errorf("missing branch log:\n%s", text)
	}
	if !strings.Contains(text, "_log.fi;") {
		t.Errorf("missing convergence log:\n%s", text)
	}
	s := res.Stats["k"]
	// Instrumented: the conditional bra, the convergence-point store
	// (also a memory access), so st counts once.
	if s.Instrumented < 2 {
		t.Errorf("instrumented = %d", s.Instrumented)
	}
}

func TestPruningRedundantAccesses(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	ld.global.u32 %r2, [%rd1];
	st.global.u32 [%rd1+4], %r1;
	st.global.u32 [%rd1+4], %r2;
	ret;
}`
	res, _ := instr(t, src, Options{})
	s := res.Stats["k"]
	if s.InstrumentedNo != 4 {
		t.Errorf("unoptimized instrumented = %d, want 4", s.InstrumentedNo)
	}
	if s.Instrumented != 2 {
		t.Errorf("optimized instrumented = %d, want 2 (second ld and st pruned)", s.Instrumented)
	}
	if s.Pruned != 2 {
		t.Errorf("pruned = %d, want 2", s.Pruned)
	}
	// With NoPrune the module logs all four.
	resNo, textNo := instr(t, src, Options{NoPrune: true})
	if got := strings.Count(textNo, "_log."); got != 4 {
		t.Errorf("NoPrune module has %d logs, want 4", got)
	}
	_ = resNo
}

func TestPruneReadAfterWriteSameAddr(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	st.global.u32 [%rd1], 1;
	ld.global.u32 %r1, [%rd1];
	ret;
}`
	res, _ := instr(t, src, Options{})
	if res.Stats["k"].Instrumented != 1 {
		t.Errorf("instrumented = %d, want 1 (read covered by write)", res.Stats["k"].Instrumented)
	}
}

func TestNoPruneAcrossRegisterRedefinition(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	add.u64 %rd1, %rd1, 64;
	ld.global.u32 %r2, [%rd1];
	ret;
}`
	res, _ := instr(t, src, Options{})
	if res.Stats["k"].Instrumented != 2 {
		t.Errorf("instrumented = %d, want 2 (register redefined)", res.Stats["k"].Instrumented)
	}
}

func TestNoPruneAcrossBarrier(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	st.global.u32 [%rd1], 1;
	bar.sync 0;
	st.global.u32 [%rd1], 2;
	ret;
}`
	res, _ := instr(t, src, Options{})
	// st, bar, st all instrumented: the barrier invalidates tracking.
	if res.Stats["k"].Instrumented != 3 {
		t.Errorf("instrumented = %d, want 3", res.Stats["k"].Instrumented)
	}
}

func TestNoPruneAcrossBlockBoundary(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra L;
L:
	ld.global.u32 %r2, [%rd1];
	ret;
}`
	res, _ := instr(t, src, Options{})
	s := res.Stats["k"]
	// Both loads logged: the second is in a different basic block.
	if s.Pruned != 0 {
		t.Errorf("pruned = %d, want 0 across blocks", s.Pruned)
	}
}

func TestGuardedAccessNeverSatisfiesPrune(t *testing.T) {
	src := `.visible .entry k(.param .u64 p)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	setp.eq.u32 %p1, %r1, 0;
	@%p1 st.global.u32 [%rd1], 1;
	st.global.u32 [%rd1], 2;
	ret;
}`
	res, _ := instr(t, src, Options{})
	// The predicated store covers only some lanes, so the second store
	// must still be logged.
	if res.Stats["k"].Pruned != 0 {
		t.Errorf("pruned = %d, want 0 (guarded access)", res.Stats["k"].Pruned)
	}
}

func TestOriginalModuleUntouched(t *testing.T) {
	m, err := ptx.Parse(simpleSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := ptx.Print(m)
	if _, err := Instrument(m, Options{}); err != nil {
		t.Fatal(err)
	}
	if ptx.Print(m) != before {
		t.Error("Instrument mutated its input module")
	}
}

func TestTotalStats(t *testing.T) {
	res, _ := instr(t, simpleSrc, Options{})
	tot := res.TotalStats()
	if tot.Static != res.Stats["k"].Static {
		t.Error("TotalStats mismatch")
	}
}
