package instrument

import (
	"strings"
	"testing"

	"barracuda/internal/ptx"
)

const stridedSrc = `
.version 4.3
.target sm_35
.address_size 64

.visible .entry strided(.param .u64 out, .param .u64 flag) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	ld.param.u64 %rd4, [flag];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 16;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	st.global.u32 [%rd3+4], %r4;
	ld.global.u32 %r6, [%rd3+8];
	st.global.u32 [%rd4], %r4;
	ret;
}
`

// TestStaticPruneStats: thread-private strided accesses are dropped, the
// shared flag store is kept, and the static fraction strictly decreases.
func TestStaticPruneStats(t *testing.T) {
	m, err := ptx.Parse(stridedSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Instrument(m, Options{StaticPrune: true})
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	s := res.Stats["strided"]
	if s.ThreadPrivate != 3 {
		t.Errorf("ThreadPrivate = %d, want 3 (the slot-strided accesses)", s.ThreadPrivate)
	}
	if s.InstrumentedStatic >= s.Instrumented {
		t.Errorf("InstrumentedStatic = %d, want < Instrumented = %d",
			s.InstrumentedStatic, s.Instrumented)
	}
	if s.StaticPruned != s.Instrumented-s.InstrumentedStatic {
		t.Errorf("StaticPruned = %d, want %d", s.StaticPruned, s.Instrumented-s.InstrumentedStatic)
	}
	if got := s.FracInstrumentedStatic(); got >= s.FracInstrumented() {
		t.Errorf("static fraction %f not below intra fraction %f", got, s.FracInstrumented())
	}

	// The rewritten body must log the uniform flag store but none of the
	// strided slot accesses.
	var body strings.Builder
	p := ptx.Print(res.Module)
	body.WriteString(p)
	logs := strings.Count(p, "_log.wr") + strings.Count(p, "_log.rd")
	if logs != 1 {
		t.Errorf("memory logs in instrumented body = %d, want 1 (the flag store):\n%s", logs, p)
	}
}

// TestStaticPruneOffMatchesSeed: with the option off the new stats
// mirror the intra-block ones and the body is unchanged relative to the
// default pipeline.
func TestStaticPruneOffMatchesSeed(t *testing.T) {
	m, err := ptx.Parse(stridedSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Instrument(m, Options{})
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	s := res.Stats["strided"]
	if s.InstrumentedStatic != s.Instrumented || s.StaticPruned != 0 || s.ThreadPrivate != 0 {
		t.Errorf("static columns must mirror intra when disabled: %+v", s)
	}
}
