// Package instrument implements BARRACUDA's PTX binary instrumentation
// (§4.1). Given a parsed module it:
//
//   - classifies every load/store/atomic/barrier with the acquire/release
//     inference of package trace and inserts the corresponding `_log.*`
//     call before it;
//   - transforms predicated memory instructions into a branch plus a
//     non-predicated instruction, so the logging call is covered by the
//     branch;
//   - inserts branch logging before every conditional branch and at every
//     branch convergence point;
//   - applies the intra-basic-block redundant-logging optimization: an
//     access through a register whose value has not changed since the
//     last logged access to the same address (same basic block, no
//     intervening synchronization) is not logged again.
//
// The instrumented module remains valid PTX for package gpusim, and the
// per-kernel statistics drive the Figure 9 experiment (fraction of static
// instructions instrumented, before and after pruning).
package instrument

import (
	"fmt"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/staticanalysis"
	"barracuda/internal/trace"
)

// Options tunes instrumentation.
type Options struct {
	// NoPrune disables the intra-basic-block redundant-logging
	// optimization (the "unoptimized" bars of Figure 9).
	NoPrune bool
	// StaticPrune additionally applies the inter-block dataflow pruner
	// of package staticanalysis: accesses provably covered by an
	// earlier logged access on every path, or proven thread-private by
	// the affine index analysis, are not logged. Conservative by
	// construction — detection results are unchanged. Mutually
	// exclusive with NoPrune.
	StaticPrune bool
}

// KernelStats reports per-kernel instrumentation counts.
type KernelStats struct {
	Static             int // original static instruction count
	Instrumented       int // original instructions that received logging (after pruning)
	InstrumentedNo     int // same, without the pruning optimization
	InstrumentedStatic int // same, with the inter-block static pruner on top
	Pruned             int // logging sites removed by the intra-block optimization
	StaticPruned       int // additional sites removed only by the inter-block pruner
	ThreadPrivate      int // sites dropped entirely as provably thread-private
	Added              int // instructions added (logs, branches)
	LogOnce            int // sites marked elidable for the producer-side filter
}

// FracInstrumented returns Instrumented/Static.
func (s KernelStats) FracInstrumented() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.Instrumented) / float64(s.Static)
}

// FracInstrumentedNoOpt returns the unoptimized fraction.
func (s KernelStats) FracInstrumentedNoOpt() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.InstrumentedNo) / float64(s.Static)
}

// FracInstrumentedStatic returns the fraction with the static pruner.
func (s KernelStats) FracInstrumentedStatic() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.InstrumentedStatic) / float64(s.Static)
}

// Result is an instrumented module plus statistics.
type Result struct {
	Module *ptx.Module
	Stats  map[string]*KernelStats
}

// TotalStats sums the per-kernel statistics.
func (r *Result) TotalStats() KernelStats {
	var t KernelStats
	for _, s := range r.Stats {
		t.Static += s.Static
		t.Instrumented += s.Instrumented
		t.InstrumentedNo += s.InstrumentedNo
		t.InstrumentedStatic += s.InstrumentedStatic
		t.Pruned += s.Pruned
		t.StaticPruned += s.StaticPruned
		t.ThreadPrivate += s.ThreadPrivate
		t.Added += s.Added
		t.LogOnce += s.LogOnce
	}
	return t
}

// Instrument produces an instrumented copy of m.
func Instrument(m *ptx.Module, opts Options) (*Result, error) {
	out := &ptx.Module{
		Version:     m.Version,
		Target:      m.Target,
		AddressSize: m.AddressSize,
		Globals:     append([]ptx.VarDecl(nil), m.Globals...),
	}
	res := &Result{Module: out, Stats: make(map[string]*KernelStats)}
	for _, k := range m.Kernels {
		ik, stats, err := instrumentKernel(k, opts)
		if err != nil {
			return nil, err
		}
		out.Kernels = append(out.Kernels, ik)
		res.Stats[k.Name] = stats
	}
	return res, nil
}

// site describes the instrumentation decision for one original
// instruction.
type site struct {
	kind    trace.OpKind // memory/sync/bar classification (OpNone if none)
	prune   bool         // redundant under the intra-block optimization
	staticp bool         // prunable per the inter-block static analysis
	branch  bool         // conditional branch (gets _log.if)
	conv    bool         // branch convergence point (gets _log.fi)
	once    bool         // statically elidable by the producer filter
}

func instrumentKernel(k *ptx.Kernel, opts Options) (*ptx.Kernel, *KernelStats, error) {
	ik := copyKernel(k)
	cfg, err := kernel.Build(ik)
	if err != nil {
		return nil, nil, fmt.Errorf("instrument: %w", err)
	}
	class := trace.Classify(cfg)
	sites := make(map[*ptx.Instr]*site)
	siteFor := func(in *ptx.Instr) *site {
		s := sites[in]
		if s == nil {
			s = &site{}
			sites[in] = s
		}
		return s
	}
	for idx, kind := range class {
		siteFor(cfg.Instrs[idx]).kind = kind
	}
	for i, in := range cfg.Instrs {
		if in.Op == ptx.OpBra && in.Guard != nil {
			siteFor(in).branch = true
		}
		_ = i
	}
	for idx := range cfg.ConvergencePoints() {
		if idx < len(cfg.Instrs) {
			siteFor(cfg.Instrs[idx]).conv = true
		}
	}
	markPrunable(cfg, class, sites)

	stats := &KernelStats{Static: len(cfg.Instrs)}
	var aff *staticanalysis.Affine
	if opts.StaticPrune {
		sa := staticanalysis.AnalyzeCFG(cfg, class)
		for i := range cfg.Instrs {
			if sa.Prune.Prunable(i) {
				siteFor(cfg.Instrs[i]).staticp = true
			}
		}
		stats.ThreadPrivate = sa.Prune.Private
		aff = sa.Affine
	} else {
		aff = staticanalysis.ComputeAffine(cfg)
	}
	// Mark log-once sites unconditionally: the mark is metadata on the
	// emitted _log instruction (never printed, inert at runtime unless the
	// simulator's producer filter is on), so the instrumented module is
	// identical whether or not a given session enables filtering.
	for idx := range staticanalysis.LogOnceSites(cfg, class, aff) {
		s := siteFor(cfg.Instrs[idx])
		s.once = true
		stats.LogOnce++
	}
	for _, s := range sites {
		if s.kind == trace.OpNone && !s.branch && !s.conv {
			continue
		}
		stats.InstrumentedNo++
		intraSkip := s.kind != trace.OpNone && s.prune && !s.branch && !s.conv
		staticSkip := s.kind != trace.OpNone && (s.prune || s.staticp) && !s.branch && !s.conv
		if intraSkip {
			stats.Pruned++
		} else {
			stats.Instrumented++
		}
		if staticSkip {
			if !intraSkip {
				stats.StaticPruned++
			}
		} else {
			stats.InstrumentedStatic++
		}
	}
	if !opts.StaticPrune {
		// No analysis ran: the static column mirrors the intra column.
		stats.InstrumentedStatic = stats.Instrumented
		stats.StaticPruned = 0
	}

	ik.Body = rewriteBody(ik.Body, sites, opts, stats)
	return ik, stats, nil
}

// markPrunable implements the intra-basic-block redundant-logging
// analysis: within one basic block, a plain read/write through [reg+off]
// is redundant when a previous *unguarded* access of at-least-as-strong a
// type to the same [reg+off] was logged and reg has not been redefined,
// with no intervening synchronization (barrier, fence, atomic, sync op).
func markPrunable(cfg *kernel.CFG, class map[int]trace.OpKind, sites map[*ptx.Instr]*site) {
	type key struct {
		reg string
		off int64
	}
	for _, b := range cfg.Blocks {
		logged := make(map[key]trace.OpKind)
		for i := b.Start; i < b.End; i++ {
			in := cfg.Instrs[i]
			kind := class[i]
			// Synchronization operations invalidate all tracking: the
			// epoch structure changes across them.
			switch {
			case in.Op == ptx.OpBar || in.Op == ptx.OpMembar ||
				in.Op == ptx.OpAtom || in.Op == ptx.OpRed:
				logged = make(map[key]trace.OpKind)
			case kind == trace.OpRead || kind == trace.OpWrite:
				a, ok := in.AddrOperand()
				if ok && a.BaseReg != "" && in.Guard == nil {
					kk := key{a.BaseReg, a.Off}
					prev, seen := logged[kk]
					if seen && (prev == kind || prev == trace.OpWrite && kind == trace.OpRead) {
						sites[in].prune = true
					} else if !seen || prev == trace.OpRead && kind == trace.OpWrite {
						logged[kk] = kind
					}
				}
			}
			// Redefining a register drops every tracked address using it.
			if in.HasDst && in.Dst.Kind == ptx.OpndReg {
				for kk := range logged {
					if kk.reg == in.Dst.Reg {
						delete(logged, kk)
					}
				}
			}
		}
	}
}

// rewriteBody inserts the logging calls and predication transforms.
func rewriteBody(body []ptx.Stmt, sites map[*ptx.Instr]*site, opts Options, stats *KernelStats) []ptx.Stmt {
	out := make([]ptx.Stmt, 0, len(body)*2)
	skipCounter := 0
	emitLog := func(in *ptx.Instr, s *site) {
		kind := s.kind
		lg := &ptx.Instr{
			Op:      ptx.OpLog,
			LogK:    kind.LogKind(),
			LogOnce: s.once,
			Line:    in.Line,
		}
		switch kind {
		case trace.OpBar:
			// no operands
		default:
			lg.Space = in.Space
			lg.AccSz = in.AccessBytes() // vector accesses cover Vec elements
			if a, ok := in.AddrOperand(); ok {
				lg.Args = append(lg.Args, a)
			}
			// Stores carry the stored value for same-value filtering.
			// Vector stores contribute only their first component: two
			// lanes with equal first components but differing later
			// ones would be filtered — a narrow approximation affecting
			// only intra-warp same-instruction vector writes.
			if in.Op == ptx.OpSt && len(in.Args) > 1 {
				lg.Args = append(lg.Args, in.Args[1])
			}
		}
		out = append(out, ptx.Stmt{Instr: lg, Line: in.Line})
		stats.Added++
	}
	for _, st := range body {
		if st.Instr == nil {
			out = append(out, st)
			continue
		}
		in := st.Instr
		s := sites[in]
		if s == nil {
			out = append(out, st)
			continue
		}
		if s.conv {
			// Convergence-point logging (a runtime no-op marker; the
			// semantic Fi event comes from the SIMT stack).
			out = append(out, ptx.Stmt{
				Instr: &ptx.Instr{Op: ptx.OpLog, LogK: ptx.LogFi, Line: in.Line},
				Line:  in.Line,
			})
			stats.Added++
		}
		if s.branch {
			out = append(out, ptx.Stmt{
				Instr: &ptx.Instr{Op: ptx.OpLog, LogK: ptx.LogIf, Line: in.Line},
				Line:  in.Line,
			})
			stats.Added++
			out = append(out, st)
			continue
		}
		if s.kind == trace.OpNone {
			out = append(out, st)
			continue
		}
		pruned := (s.prune && !opts.NoPrune) || (s.staticp && opts.StaticPrune)
		if pruned {
			out = append(out, st)
			continue
		}
		if in.Guard != nil && s.kind != trace.OpBar {
			// Predication transform: cover the log and the (now
			// unpredicated) instruction with a branch.
			skipCounter++
			label := fmt.Sprintf("__bar_skip_%d", skipCounter)
			g := *in.Guard
			g.Neg = !g.Neg
			out = append(out, ptx.Stmt{
				Instr: &ptx.Instr{
					Op:    ptx.OpBra,
					Guard: &g,
					Args:  []ptx.Operand{ptx.LabelOp(label)},
					Line:  in.Line,
				},
				Line: in.Line,
			})
			stats.Added++
			emitLog(in, s)
			un := *in
			un.Guard = nil
			out = append(out, ptx.Stmt{Instr: &un, Line: st.Line})
			out = append(out, ptx.Stmt{Label: label, Line: in.Line})
			continue
		}
		emitLog(in, s)
		out = append(out, st)
	}
	return out
}

// copyKernel deep-copies a kernel so instrumentation never aliases the
// caller's AST.
func copyKernel(k *ptx.Kernel) *ptx.Kernel {
	out := &ptx.Kernel{
		Name:   k.Name,
		Params: append([]ptx.Param(nil), k.Params...),
		Regs:   append([]ptx.RegDecl(nil), k.Regs...),
		Shared: append([]ptx.VarDecl(nil), k.Shared...),
		Local:  append([]ptx.VarDecl(nil), k.Local...),
	}
	for _, st := range k.Body {
		ns := ptx.Stmt{Label: st.Label, Line: st.Line}
		if st.Instr != nil {
			in := *st.Instr
			if st.Instr.Guard != nil {
				g := *st.Instr.Guard
				in.Guard = &g
			}
			in.Args = append([]ptx.Operand(nil), st.Instr.Args...)
			ns.Instr = &in
		}
		out.Body = append(out.Body, ns)
	}
	return out
}
