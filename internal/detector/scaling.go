package detector

import (
	"fmt"
	"sync"
	"time"

	"barracuda/internal/core"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

// Capture is one kernel's full instrumentation record stream plus the
// launch facts the detector needs to replay it. It decouples record
// production (the single-goroutine SIMT simulator) from detection, so
// the multi-queue detector can be benchmarked at full producer speed:
// replay feeds each queue from its own goroutine, which is how the real
// BARRACUDA transport behaves (DMA engines per queue), while a live
// simulator run would serialize production and hide consumer-side
// scaling.
type Capture struct {
	Geo         ptvc.Geometry
	SharedBytes int64
	Records     []logging.Record
}

// captureSink retains every emitted record.
type captureSink struct {
	records []logging.Record
}

func (s *captureSink) Emit(r *logging.Record) {
	s.records = append(s.records, *r)
}

// Capture runs the instrumented kernel once, collecting the record
// stream instead of detecting on it.
func (s *Session) Capture(kernelName string, launch gpusim.LaunchConfig) (*Capture, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	k := s.InstMod.Kernel(kernelName)
	if k == nil {
		return nil, fmt.Errorf("detector: unknown kernel %q", kernelName)
	}
	ws := launch.WarpSize
	if ws == 0 {
		ws = gpusim.WarpSize
	}
	geo := ptvc.Geometry{
		WarpSize:  ws,
		BlockSize: launch.Block.Count(),
		Blocks:    launch.Grid.Count(),
	}
	if geo.BlockSize == 0 {
		geo.BlockSize = 1
	}
	if geo.Blocks == 0 {
		geo.Blocks = 1
	}
	sink := &captureSink{}
	launch.Sink = sink
	launch.EmitBranchEvents = true
	if _, err := s.Instr.Launch(kernelName, launch); err != nil {
		return nil, err
	}
	return &Capture{Geo: geo, SharedBytes: k.SharedBytes(), Records: sink.records}, nil
}

// ReplayResult is the outcome of one replayed detection run.
type ReplayResult struct {
	Report   *core.Report
	Records  int           // records pushed through the transport
	Duration time.Duration // wall clock of the transport+detection drain
}

// Replay pushes a captured record stream through the multi-queue
// transport and the race detector, with one producer goroutine per queue
// (each producing only its queue's block-affine sub-stream, in order)
// and one batched consumer per queue. The report is the same one a live
// Detect run produces; Duration covers only the drain, making
// records/sec comparable across queue widths.
func Replay(cap *Capture, cfg Config) (*ReplayResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	det := core.New(cap.Geo, cap.SharedBytes, core.Options{
		Granularity:       cfg.Granularity,
		MaxRaces:          cfg.MaxRaces,
		NoSameValueFilter: cfg.NoSameValueFilter,
		FullVC:            cfg.FullVC,
		PerCellShadow:     cfg.PerCellShadow,
		Ownership:         cfg.Ownership,
		ShadowCapBytes:    cfg.ShadowCapBytes,
	})
	set := logging.NewSet(cfg.Queues, cfg.QueueCap)

	// Partition the stream by queue, preserving per-queue order — the
	// same order routeSink would have produced.
	parts := make([][]*logging.Record, len(set.Queues))
	for i := range cap.Records {
		r := &cap.Records[i]
		qi := int(r.Block) % len(set.Queues)
		parts[qi] = append(parts[qi], r)
	}

	var consumers sync.WaitGroup
	var producers sync.WaitGroup
	start := time.Now()
	for qi, q := range set.Queues {
		consumers.Add(1)
		go consumeQueue(det, q, &consumers)
		producers.Add(1)
		go func(q *logging.Queue, recs []*logging.Record) {
			defer producers.Done()
			for _, r := range recs {
				q.Enqueue(r)
			}
			q.Enqueue(&logging.Record{Op: trace.OpEnd})
		}(q, parts[qi])
	}
	producers.Wait()
	consumers.Wait()
	dur := time.Since(start)
	return &ReplayResult{
		Report:   det.Report(),
		Records:  len(cap.Records),
		Duration: dur,
	}, nil
}
