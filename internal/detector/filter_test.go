package detector

import (
	"strings"
	"testing"

	"barracuda/internal/gpusim"
)

// loopInvariantReadSrc reads the same per-thread global word 64 times in
// a barrier-free loop, then stores an accumulator once: the canonical
// best case for producer-side filtering. The read site is unguarded,
// global, and its address is affine in (param, tid), so the static tier
// should mark it log-once; iterations 2..64 of every warp are then
// elided without even building a record.
const loopInvariantReadSrc = `.visible .entry k(.param .u64 in, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [in];
	ld.param.u64 %rd2, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd3, %r2;
	add.u64 %rd4, %rd1, %rd3;
	add.u64 %rd5, %rd2, %rd3;
	mov.u32 %r3, 0;
	mov.u32 %r4, 0;
LOOP:
	ld.global.u32 %r5, [%rd4];
	add.u32 %r3, %r3, %r5;
	add.u32 %r4, %r4, 1;
	setp.lt.u32 %p1, %r4, 64;
	@%p1 bra LOOP;
	st.global.u32 [%rd5], %r3;
	ret;
}`

func TestProducerFilterSuppressesLoopRepeats(t *testing.T) {
	run := func(filter bool) *Result {
		s := open(t, loopInvariantReadSrc, Config{ProducerFilter: filter})
		in := s.Dev.MustAlloc(4 * 64)
		out := s.Dev.MustAlloc(4 * 64)
		return detect(t, s, "k", gpusim.LaunchConfig{
			Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{in, out},
		})
	}
	base := run(false)
	filt := run(true)
	if base.Report.HasRaces() || filt.Report.HasRaces() {
		t.Fatalf("race-free kernel reported races: base=%d filtered=%d",
			base.Report.RaceCount(), filt.Report.RaceCount())
	}
	if bd, fd := base.Report.CanonicalDigest(), filt.Report.CanonicalDigest(); bd != fd {
		t.Errorf("digest diverged:\n--- baseline ---\n%s--- filtered ---\n%s", bd, fd)
	}
	f := filt.SimStats.Filter
	if f.Suppressed() == 0 {
		t.Fatal("filter suppressed nothing on a loop-invariant read kernel")
	}
	if f.StaticElides == 0 {
		t.Error("static log-once tier never fired; loop-invariant site not marked or not hit")
	}
	// 2 warps x 63 redundant loop iterations is the ceiling; the filter
	// should get most of them (the first iteration per warp must emit).
	if f.Suppressed() < 100 {
		t.Errorf("suppressed only %d records, want >= 100 (64-iteration loop, 2 warps)", f.Suppressed())
	}
	if filt.SimStats.Records >= base.SimStats.Records {
		t.Errorf("filtered run emitted %d records, baseline %d: nothing kept off the queue",
			filt.SimStats.Records, base.SimStats.Records)
	}
	if want := base.SimStats.Records - f.Suppressed() + f.Flushes; filt.SimStats.Records != want {
		t.Errorf("record ledger unbalanced: emitted %d, want %d", filt.SimStats.Records, want)
	}
	if bf := base.SimStats.Filter; (gpusim.FilterStats{}) != bf {
		t.Errorf("baseline counted filter activity: %+v", bf)
	}
}

// TestProducerFilterStillDetectsLoopRace guards against over-suppression:
// a loop that races (every thread hammers global word 0) must still be
// reported identically with the filter on.
func TestProducerFilterStillDetectsLoopRace(t *testing.T) {
	const src = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, 0;
LOOP:
	st.global.u32 [%rd1], %r1;
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra LOOP;
	ret;
}`
	for _, filter := range []bool{false, true} {
		s := open(t, src, Config{ProducerFilter: filter})
		out := s.Dev.MustAlloc(4)
		res := detect(t, s, "k", gpusim.LaunchConfig{
			Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out},
		})
		if !res.Report.HasRaces() {
			t.Errorf("filter=%t: intra-loop write race missed", filter)
		}
	}
}

func TestProducerFilterFullVCMutuallyExclusive(t *testing.T) {
	_, err := OpenPTX(racyAllWriteSrc, Config{ProducerFilter: true, FullVC: true})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("ProducerFilter+FullVC accepted, want validation error; got %v", err)
	}
}
