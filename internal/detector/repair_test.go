package detector

import (
	"strings"
	"testing"

	"barracuda/internal/ptx"
)

func repairSrc(t *testing.T, src string, opt RepairOptions) *RepairReport {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rr, err := Repair(m, m.Kernels[0].Name, Config{}, opt)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	return rr
}

func verifiedPatch(rr *RepairReport) (RepairCandidate, RepairPatch, bool) {
	for _, c := range rr.Candidates {
		if !c.Repaired {
			continue
		}
		for _, p := range c.Patches {
			if p.Verdict.Verified {
				return c, p, true
			}
		}
	}
	return RepairCandidate{}, RepairPatch{}, false
}

// TestRepairMissingBarrier: the classic neighbor exchange. Each thread
// stores its own shared slot then reads its neighbor's; without a
// barrier the cross-warp pairs race. The synthesizer's bar.sync must
// verify: target race gone, no new races, no divergence.
func TestRepairMissingBarrier(t *testing.T) {
	src := `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 s[1024];
	ld.param.u64 %rd4, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`
	rr := repairSrc(t, src, RepairOptions{})
	if rr.BaselineRaces == 0 {
		t.Fatal("baseline detected no races on the unsynchronized exchange")
	}
	cand, patch, ok := verifiedPatch(rr)
	if !ok {
		t.Fatalf("no verified patch: %+v", rr.Candidates)
	}
	if !cand.Dynamic {
		t.Error("the repaired candidate should be dynamically confirmed")
	}
	if patch.Kind != "insert-barrier" {
		t.Errorf("patch kind = %s, want insert-barrier", patch.Kind)
	}
	if !strings.Contains(patch.Diff, "+\tbar.sync 0;") {
		t.Errorf("diff does not insert a barrier:\n%s", patch.Diff)
	}
	if rr.PatchedPTX == "" {
		t.Fatal("no composed patched module")
	}
	if rr.FinalRaces != 0 {
		t.Errorf("composed module still races: %d", rr.FinalRaces)
	}
}

// TestRepairAtomicIncrement: every thread does a plain ld/add/st on one
// global counter. The atomicize template rewrites the triple to
// red.global.add and the patched module must be race-free.
func TestRepairAtomicIncrement(t *testing.T) {
	src := `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`
	rr := repairSrc(t, src, RepairOptions{})
	if rr.BaselineRaces == 0 {
		t.Fatal("baseline detected no races on the lost-update kernel")
	}
	cand, patch, ok := verifiedPatch(rr)
	if !ok {
		t.Fatalf("no verified patch: %+v", rr.Candidates)
	}
	if patch.Kind != "atomicize" {
		t.Errorf("patch kind = %s, want atomicize", patch.Kind)
	}
	if !strings.Contains(patch.Diff, "+\tred.global.add.u32 [%rd1], 1;") {
		t.Errorf("diff does not atomicize:\n%s", patch.Diff)
	}
	if rr.FinalRaces != 0 {
		t.Errorf("composed module still races: %d", rr.FinalRaces)
	}
	_ = cand
}

// TestRepairHandshakeFences: message passing with no fences. Thread 0
// of block 0 stores data then raises a flag; block 1 spins on the flag
// then reads the data. The fence patch must add a release fence before
// the flag store and an acquire fence after the spin load, after which
// the happens-before edge removes both the flag race and the data race.
func TestRepairHandshakeFences(t *testing.T) {
	src := `.visible .entry mp(.param .u64 data, .param .u64 flag) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<4>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	mov.u32 %r4, %tid.x;
	setp.ne.u32 %p2, %r4, 0;
	@%p2 bra DONE;
	st.global.u32 [%rd1], 42;
	st.global.u32 [%rd2], 1;
	bra DONE;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
DONE:
	ret;
}`
	rr := repairSrc(t, src, RepairOptions{})
	if rr.BaselineRaces == 0 {
		t.Fatal("baseline detected no races on the unfenced handshake")
	}
	_, patch, ok := verifiedPatch(rr)
	if !ok {
		t.Fatalf("no verified patch: %+v", rr.Candidates)
	}
	if patch.Kind != "insert-fence" {
		t.Errorf("patch kind = %s, want insert-fence", patch.Kind)
	}
	if got := strings.Count(patch.Diff, "+\tmembar.gl;"); got != 2 {
		t.Errorf("diff inserts %d membar.gl, want 2:\n%s", got, patch.Diff)
	}
	if rr.FinalRaces != 0 {
		t.Errorf("composed module still races: %d", rr.FinalRaces)
	}
}

// TestRepairDeclinesWarringWrites: every thread stores its tid to one
// address — an algorithmic race with no mechanical fix. The synthesizer
// must propose nothing and the report must say so honestly.
func TestRepairDeclinesWarringWrites(t *testing.T) {
	src := `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`
	rr := repairSrc(t, src, RepairOptions{})
	if rr.BaselineRaces == 0 {
		t.Fatal("baseline detected no races")
	}
	if rr.Verified != 0 {
		t.Errorf("Verified = %d, want 0", rr.Verified)
	}
	if rr.Unrepaired == 0 {
		t.Error("a dynamically confirmed candidate with no fix must count as unrepaired")
	}
	for _, c := range rr.Candidates {
		if len(c.Patches) != 0 {
			t.Errorf("candidate %q got %d proposals, want none", c.Description, len(c.Patches))
		}
	}
	if rr.PatchedPTX != "" {
		t.Error("no patch verified, yet a patched module was emitted")
	}
}

// TestRepairBudgetRejectsDeadlock: with an artificially tiny step
// budget every patched launch exhausts it, so no patch may verify even
// though the static proposal is sound.
func TestRepairBudgetRejectsDeadlock(t *testing.T) {
	src := `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Budget of 1: the baseline itself cannot complete.
	_, err = Repair(m, "k", Config{}, RepairOptions{MaxInstrs: 1})
	if err == nil {
		t.Fatal("expected the baseline run to fail under a 1-instruction budget")
	}
}

// TestRepairUnknownKernel: a helpful error, not a panic.
func TestRepairUnknownKernel(t *testing.T) {
	m, err := ptx.Parse(`.visible .entry k() { ret; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repair(m, "nope", Config{}, RepairOptions{}); err == nil {
		t.Fatal("expected an error for an unknown kernel")
	}
}
