package detector

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"barracuda/internal/gpusim"
)

func TestConfigValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string // substring of the error
	}{
		{Config{Queues: -1}, "Queues"},
		{Config{QueueCap: -4096}, "QueueCap"},
		{Config{Granularity: -4}, "Granularity"},
		{Config{MaxRaces: -1}, "MaxRaces"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %q, want mention of %s", c.cfg, err, c.want)
		}
		// Open must surface the same error instead of clamping.
		if _, oerr := OpenPTX(racyAllWriteSrc, c.cfg); oerr == nil || oerr.Error() != err.Error() {
			t.Errorf("OpenPTX(%+v) err = %v, want %v", c.cfg, oerr, err)
		}
	}
}

func TestConfigValidateAcceptsZeroAndPositive(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Queues: 4, QueueCap: 128, Granularity: 4, MaxRaces: 10},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}

// TestSessionReuseIdenticalReports exercises the documented reuse
// contract the server's module cache depends on: two back-to-back
// Detect calls on one session — with buffers re-zeroed in between —
// produce identical race reports.
func TestSessionReuseIdenticalReports(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{})
	out := s.Dev.MustAlloc(4)
	launch := gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(64), Args: []uint64{out}}

	res1 := detect(t, s, "k", launch)
	if err := s.Dev.Memset(out, 0, 4); err != nil {
		t.Fatal(err)
	}
	res2 := detect(t, s, "k", launch)

	if !res1.Report.HasRaces() {
		t.Fatal("first run found no races")
	}
	if !reflect.DeepEqual(res1.Report.Races, res2.Report.Races) {
		t.Errorf("reports differ across session reuse:\nfirst:  %v\nsecond: %v",
			res1.Report.Races, res2.Report.Races)
	}
	if len(res1.Report.Divergences) != len(res2.Report.Divergences) {
		t.Errorf("divergence counts differ: %d vs %d",
			len(res1.Report.Divergences), len(res2.Report.Divergences))
	}
}

func TestSessionCloseIsTerminalAndIdempotent(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{})
	out := s.Dev.MustAlloc(4)
	launch := gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}}
	if _, err := s.Detect("k", launch); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Detect("k", launch); !errors.Is(err, ErrClosed) {
		t.Errorf("Detect after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.RunNative("k", launch); !errors.Is(err, ErrClosed) {
		t.Errorf("RunNative after Close = %v, want ErrClosed", err)
	}
}
