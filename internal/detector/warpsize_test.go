package detector

import (
	"testing"

	"barracuda/internal/core"
	"barracuda/internal/gpusim"
)

// warpExchange is warp-synchronous code that communicates between lanes
// tid and tid+16 with no barrier. On a 32-lane warp this is ordered by
// lockstep execution; if the architecture's warp were 16 lanes wide, the
// exchange would cross warps and race — a latent warp-size-dependent bug
// (§3.1: portable CUDA code should eschew assumptions about warp size).
const warpExchange = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.shared .align 4 .b8 sm[128];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, sm;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	add.u32 %r3, %r1, 16;
	and.b32 %r4, %r3, 31;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	add.u64 %rd7, %rd1, %rd2;
	st.global.u32 [%rd7], %r6;
	ret;
}`

func TestWarpSizeLatentBug(t *testing.T) {
	// At the native warp size of 32 the kernel is race-free.
	s := open(t, warpExchange, Config{})
	out := s.Dev.MustAlloc(4 * 32)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	if res.Report.HasRaces() {
		t.Fatalf("false races at warp size 32: %v", res.Report.Races)
	}
	// Simulating a 16-lane warp exposes the latent cross-warp race.
	s2 := open(t, warpExchange, Config{})
	out2 := s2.Dev.MustAlloc(4 * 32)
	res2 := detect(t, s2, "k", gpusim.LaunchConfig{
		Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out2}, WarpSize: 16,
	})
	found := false
	for _, r := range res2.Report.Races {
		if r.Kind == core.IntraBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("latent bug not exposed at warp size 16: %v", res2.Report.Races)
	}
}

func TestWarpSizeFunctionalEquivalence(t *testing.T) {
	// The same program computes the same results at any warp width.
	collect := func(ws int) []byte {
		s := open(t, warpExchange, Config{})
		out := s.Dev.MustAlloc(4 * 32)
		launch := gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}, WarpSize: ws}
		if _, _, err := s.RunNative("k", launch); err != nil {
			t.Fatalf("ws=%d: %v", ws, err)
		}
		b, err := s.Dev.ReadBytes(out, 4*32)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := collect(0) // default 32
	for _, ws := range []int{4, 8, 16, 32} {
		got := collect(ws)
		// Note: the EXCHANGE result differs across warp sizes only when
		// the racy interleaving actually bites; the deterministic
		// round-robin scheduler runs warps in order, so with the
		// writer warp scheduled first the values still match.
		if string(got) != string(ref) {
			t.Logf("ws=%d produces different results (the latent race biting)", ws)
		}
	}
}

func TestWarpSizeValidation(t *testing.T) {
	s := open(t, warpExchange, Config{})
	out := s.Dev.MustAlloc(4 * 32)
	_, err := s.Detect("k", gpusim.LaunchConfig{
		Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}, WarpSize: 64,
	})
	if err == nil {
		t.Error("warp size 64 accepted")
	}
	_, err = s.Detect("k", gpusim.LaunchConfig{
		Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}, WarpSize: 1,
	})
	if err == nil {
		t.Error("warp size 1 accepted")
	}
}

// TestInstrumentedFunctionalEquivalence verifies instrumentation does not
// change program semantics: the instrumented module computes the same
// memory contents as the native one.
func TestInstrumentedFunctionalEquivalence(t *testing.T) {
	kernels := []struct {
		name string
		src  string
	}{
		{"clean", cleanPerThreadSrc},
		{"sharedBarrier", sharedBarrierSrc},
		{"branchOrder", branchOrderSrc},
		{"warpExchange", warpExchange},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			// Native run.
			sN := open(t, k.src, Config{})
			kname := sN.Native.KernelNames()[0]
			nParams := len(sN.SrcMod.Kernels[0].Params)
			outN := sN.Dev.MustAlloc(4 * 256)
			argsN := []uint64{outN}
			for len(argsN) < nParams {
				argsN = append(argsN, 1)
			}
			// Block of 32 keeps every kernel's shared buffer in bounds.
			launch := gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(32), Args: argsN}
			if _, _, err := sN.RunNative(kname, launch); err != nil {
				t.Fatal(err)
			}
			memN, _ := sN.Dev.ReadBytes(outN, 4*256)

			// Instrumented run under detection on a fresh session.
			sI := open(t, k.src, Config{})
			outI := sI.Dev.MustAlloc(4 * 256)
			argsI := []uint64{outI}
			for len(argsI) < nParams {
				argsI = append(argsI, 1)
			}
			launch.Args = argsI
			if _, err := sI.Detect(kname, launch); err != nil {
				t.Fatal(err)
			}
			memI, _ := sI.Dev.ReadBytes(outI, 4*256)
			if string(memN) != string(memI) {
				t.Fatal("instrumented execution diverged from native results")
			}
		})
	}
}
