package detector

import (
	"testing"

	"barracuda/internal/core"
	"barracuda/internal/fatbin"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
)

func open(t *testing.T, src string, cfg Config) *Session {
	t.Helper()
	s, err := OpenPTX(src, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func detect(t *testing.T, s *Session, kernel string, launch gpusim.LaunchConfig) *Result {
	t.Helper()
	res, err := s.Detect(kernel, launch)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return res
}

const racyAllWriteSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

func TestEndToEndRacyKernel(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(64), Args: []uint64{out}})
	if !res.Report.HasRaces() {
		t.Fatal("no races on an obviously racy kernel")
	}
	kinds := map[core.RaceKind]bool{}
	for _, r := range res.Report.Races {
		kinds[r.Kind] = true
		if r.Space != logging.SpaceGlobal {
			t.Errorf("race space = %v", r.Space)
		}
	}
	if !kinds[core.IntraWarp] {
		t.Errorf("expected an intra-warp race: %v", res.Report.Races)
	}
	if !kinds[core.InterBlock] && !kinds[core.IntraBlock] {
		t.Errorf("expected cross-warp races too: %v", res.Report.Races)
	}
}

func TestEndToEndSameValueWritesFiltered(t *testing.T) {
	src := `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	st.global.u32 [%rd1], 7;
	ret;
}`
	s := open(t, src, Config{})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	for _, r := range res.Report.Races {
		if r.Kind == core.IntraWarp && r.SameInstr {
			t.Errorf("same-value intra-warp write reported: %v", r)
		}
	}
	if res.Report.SameValueGag == 0 {
		t.Error("same-value filter inactive")
	}
}

const cleanPerThreadSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	cvt.u64.u32 %rd2, %r4;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	ld.global.u32 %r5, [%rd4];
	ret;
}`

func TestEndToEndCleanKernel(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{})
	out := s.Dev.MustAlloc(4 * 256)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(4), Block: gpusim.D1(64), Args: []uint64{out}})
	if res.Report.HasRaces() {
		t.Fatalf("false races: %v", res.Report.Races)
	}
	if res.SimStats.Records == 0 {
		t.Error("no records emitted")
	}
}

const sharedBarrierSrc = `.visible .entry k(.param .u64 out, .param .u32 dobar)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<10>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 buf[256];
	ld.param.u64 %rd1, [out];
	ld.param.u32 %r9, [dobar];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, buf;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	setp.eq.u32 %p1, %r9, 0;
	@%p1 bra NOBAR;
	bar.sync 0;
NOBAR:
	mov.u32 %r3, 63;
	sub.u32 %r4, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd5, %r5;
	add.u64 %rd6, %rd3, %rd5;
	ld.shared.u32 %r6, [%rd6];
	cvt.u64.u32 %rd7, %r2;
	add.u64 %rd8, %rd1, %rd7;
	st.global.u32 [%rd8], %r6;
	ret;
}`

func TestSharedMemoryBarrierSync(t *testing.T) {
	s := open(t, sharedBarrierSrc, Config{})
	out := s.Dev.MustAlloc(4 * 64)
	// With the barrier: race free.
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out, 1}})
	for _, r := range res.Report.Races {
		if r.Space == logging.SpaceShared {
			t.Errorf("false shared race with barrier: %v", r)
		}
	}
	// Without the barrier: the cross-warp shared accesses race.
	s2 := open(t, sharedBarrierSrc, Config{})
	out2 := s2.Dev.MustAlloc(4 * 64)
	res2 := detect(t, s2, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out2, 0}})
	found := false
	for _, r := range res2.Report.Races {
		if r.Space == logging.SpaceShared && r.Kind == core.IntraBlock {
			found = true
		}
	}
	if !found {
		t.Errorf("missing shared-memory race without barrier: %v", res2.Report.Races)
	}
}

// spinlock with configurable fences; one thread per block.
const spinlockSrc = `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.gl;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	membar.gl;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`

func TestSpinlockWithGlobalFencesIsClean(t *testing.T) {
	s := open(t, spinlockSrc, Config{})
	lock := s.Dev.MustAlloc(4)
	ctr := s.Dev.MustAlloc(4)
	cfg := gpusim.LaunchConfig{Grid: gpusim.D1(8), Block: gpusim.D1(1), Args: []uint64{lock, ctr}, MaxWarpInstrs: 1 << 22}
	res := detect(t, s, "k", cfg)
	if res.Report.HasRaces() {
		t.Fatalf("fenced spinlock produced races: %v", res.Report.Races)
	}
	// The counter must also be exact (simulator sanity).
	v, _ := s.Dev.ReadU32(ctr)
	if v != 8 {
		t.Errorf("counter = %d, want 8", v)
	}
}

const unfencedLockSrc = `.visible .entry k(.param .u64 lock, .param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
	ld.param.u64 %rd2, [ctr];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	atom.global.exch.b32 %r3, [%rd1], 0;
	ret;
}`

func TestSpinlockWithoutFencesRaces(t *testing.T) {
	// The §6.3 hashtable bug pattern: CAS without fences does not
	// synchronize, so the critical-section accesses race.
	s := open(t, unfencedLockSrc, Config{})
	lock := s.Dev.MustAlloc(4)
	ctr := s.Dev.MustAlloc(4)
	cfg := gpusim.LaunchConfig{Grid: gpusim.D1(4), Block: gpusim.D1(1), Args: []uint64{lock, ctr}, MaxWarpInstrs: 1 << 22}
	res := detect(t, s, "k", cfg)
	if !res.Report.HasRaces() {
		t.Fatal("unfenced lock reported clean")
	}
}

// Message passing with block-scoped fences across blocks: insufficient.
const mpCtaSrc = `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	membar.cta;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	membar.cta;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`

func TestMessagePassingCtaFenceRaces(t *testing.T) {
	s := open(t, mpCtaSrc, Config{})
	data := s.Dev.MustAlloc(4)
	flag := s.Dev.MustAlloc(4)
	cfg := gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(1), Args: []uint64{data, flag}, MaxWarpInstrs: 1 << 22}
	res := detect(t, s, "k", cfg)
	found := false
	for _, r := range res.Report.Races {
		if r.Kind == core.InterBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("cta-fenced message passing across blocks must race: %v", res.Report.Races)
	}
}

const mpGlSrc = `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	membar.gl;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	membar.gl;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`

func TestMessagePassingGlobalFenceClean(t *testing.T) {
	s := open(t, mpGlSrc, Config{})
	data := s.Dev.MustAlloc(4)
	flag := s.Dev.MustAlloc(4)
	cfg := gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(1), Args: []uint64{data, flag}, MaxWarpInstrs: 1 << 22}
	res := detect(t, s, "k", cfg)
	if res.Report.HasRaces() {
		t.Fatalf("gl-fenced message passing reported racy: %v", res.Report.Races)
	}
}

const branchOrderSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra THEN;
	st.global.u32 [%rd1], 1;
	bra.uni FI;
THEN:
	st.global.u32 [%rd1], 2;
FI:
	ret;
}`

func TestBranchOrderingRaceEndToEnd(t *testing.T) {
	s := open(t, branchOrderSrc, Config{})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	found := false
	for _, r := range res.Report.Races {
		if r.Kind == core.IntraWarp && !r.SameInstr {
			found = true
		}
	}
	if !found {
		t.Fatalf("branch-ordering race missed: %v", res.Report.Races)
	}
}

const barrierDivergenceSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.ge.u32 %p1, %r1, 16;
	@%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}`

func TestBarrierDivergenceEndToEnd(t *testing.T) {
	s := open(t, barrierDivergenceSrc, Config{})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	if len(res.Report.Divergences) == 0 {
		t.Fatal("barrier divergence not detected")
	}
}

func TestFatBinaryPipeline(t *testing.T) {
	bin, err := fatbin.PackWithSASS(cleanPerThreadSrc, 35, 52)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFatBinary(bin, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Dev.MustAlloc(4 * 64)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out}})
	if res.Report.HasRaces() {
		t.Errorf("fat binary run produced false races: %v", res.Report.Races)
	}
}

func TestMultiQueueDetection(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{Queues: 4, QueueCap: 64})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(8), Block: gpusim.D1(64), Args: []uint64{out}})
	if !res.Report.HasRaces() {
		t.Fatal("multi-queue detection missed the race")
	}
}

func TestFullVCPipelineAgrees(t *testing.T) {
	for _, fullvc := range []bool{false, true} {
		s := open(t, branchOrderSrc, Config{FullVC: fullvc})
		out := s.Dev.MustAlloc(4)
		res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
		if !res.Report.HasRaces() {
			t.Errorf("fullvc=%v: race missed", fullvc)
		}
	}
}

func TestRunNative(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{})
	out := s.Dev.MustAlloc(4 * 64)
	stats, dur, err := s.RunNative("k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 {
		t.Errorf("native run emitted %d records", stats.Records)
	}
	if dur <= 0 {
		t.Error("no duration measured")
	}
}

func TestDetectUnknownKernel(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{})
	if _, err := s.Detect("nope", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(1)}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestInstrumentationStatsExposed(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{})
	st := s.Stats["k"]
	if st == nil || st.Static == 0 || st.Instrumented == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Instrumented > st.InstrumentedNo {
		t.Error("pruned count exceeds unpruned")
	}
}

func TestFormatStatsExposed(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{})
	out := s.Dev.MustAlloc(4 * 64)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out}})
	total := 0
	for _, n := range res.Formats {
		total += n
	}
	if total == 0 {
		t.Error("no PTVC format stats")
	}
}
