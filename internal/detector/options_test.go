package detector

import (
	"testing"

	"barracuda/internal/core"
	"barracuda/internal/gpusim"
)

func TestGranularity4DetectsWordRaces(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{Granularity: 4})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	if !res.Report.HasRaces() {
		t.Fatal("4-byte granularity missed a word-aligned race")
	}
}

func TestGranularity4StillSeparatesWords(t *testing.T) {
	s := open(t, cleanPerThreadSrc, Config{Granularity: 4})
	out := s.Dev.MustAlloc(4 * 64)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out}})
	if res.Report.HasRaces() {
		t.Fatalf("false positives at 4-byte granularity: %v", res.Report.Races)
	}
}

func TestMaxRacesCap(t *testing.T) {
	// A kernel with many distinct racy sites: cap at 3.
	src := `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	st.global.u32 [%rd1+4], %r1;
	st.global.u32 [%rd1+8], %r1;
	st.global.u32 [%rd1+12], %r1;
	st.global.u32 [%rd1+16], %r1;
	st.global.u32 [%rd1+20], %r1;
	ret;
}`
	s := open(t, src, Config{MaxRaces: 3})
	out := s.Dev.MustAlloc(64)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out}})
	if got := res.Report.RaceCount(); got != 3 {
		t.Errorf("races = %d, want capped at 3", got)
	}
}

func TestRandomScheduleStillDetects(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := open(t, racyAllWriteSrc, Config{})
		out := s.Dev.MustAlloc(4)
		res := detect(t, s, "k", gpusim.LaunchConfig{
			Grid: gpusim.D1(4), Block: gpusim.D1(64), Args: []uint64{out},
			RandomSched: true, Seed: seed,
		})
		if !res.Report.HasRaces() {
			t.Fatalf("seed %d: race missed under randomized scheduling", seed)
		}
	}
}

func TestNoPruneDetectionEquivalent(t *testing.T) {
	// Pruning removes only redundant logging: the race verdict must not
	// change.
	for _, noPrune := range []bool{false, true} {
		s := open(t, sharedBarrierSrc, Config{NoPrune: noPrune})
		out := s.Dev.MustAlloc(4 * 64)
		res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out, 0}})
		if !res.Report.HasRaces() {
			t.Errorf("noPrune=%v: race missed", noPrune)
		}
		s2 := open(t, sharedBarrierSrc, Config{NoPrune: noPrune})
		out2 := s2.Dev.MustAlloc(4 * 64)
		res2 := detect(t, s2, "k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(64), Args: []uint64{out2, 1}})
		for _, r := range res2.Report.Races {
			t.Errorf("noPrune=%v: false positive with barrier: %v", noPrune, r)
		}
	}
}

func TestLargeLaunchManyBlocks(t *testing.T) {
	// A wave-scheduled launch (more blocks than resident) detects races
	// between blocks of different waves too (logical concurrency is not
	// bounded by co-residency).
	s := open(t, racyAllWriteSrc, Config{})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{
		Grid: gpusim.D1(200), Block: gpusim.D1(32), Args: []uint64{out},
		MaxResidentBlocks: 4,
	})
	interBlock := false
	for _, r := range res.Report.Races {
		if r.Kind.String() == "inter-block" {
			interBlock = true
		}
	}
	if !interBlock {
		t.Fatal("cross-wave inter-block race missed")
	}
}

func TestVectorStoreOverlapRace(t *testing.T) {
	// Block 0 writes a v4 (16-byte) vector; block 1 scalar-writes the
	// third component. The detector must see the whole vector footprint.
	src := `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SCALAR;
	mov.u32 %r2, 1;
	mov.u32 %r3, 2;
	mov.u32 %r4, 3;
	mov.u32 %r5, 4;
	st.global.v4.u32 [%rd1], {%r2, %r3, %r4, %r5};
	ret;
SCALAR:
	st.global.u32 [%rd1+8], 99;
	ret;
}`
	s := open(t, src, Config{})
	out := s.Dev.MustAlloc(16)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(1), Args: []uint64{out}})
	if !res.Report.HasRaces() {
		t.Fatal("vector-scalar overlap race missed")
	}
	if res.Report.Races[0].Kind != core.InterBlock {
		t.Errorf("kind = %v", res.Report.Races[0].Kind)
	}
}

func Test2DLaunchDetection(t *testing.T) {
	// 2-D grid and block: per-thread slots are race free; a shared
	// column write races.
	src := `.visible .entry k(.param .u64 out, .param .u64 shared)
{
	.reg .u32 %r<12>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	ld.param.u64 %rd2, [shared];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %tid.y;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %ctaid.x;
	mov.u32 %r5, %ctaid.y;
	mov.u32 %r6, %nctaid.x;
	mad.lo.u32 %r7, %r2, %r3, %r1;
	mad.lo.u32 %r8, %r5, %r6, %r4;
	mov.u32 %r9, %ntid.y;
	mul.lo.u32 %r10, %r3, %r9;
	mad.lo.u32 %r7, %r8, %r10, %r7;
	shl.b32 %r11, %r7, 2;
	cvt.u64.u32 %rd3, %r11;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r7;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 ret;
	st.global.u32 [%rd2], %r7;
	ret;
}`
	s := open(t, src, Config{})
	threads := 2 * 3 * 4 * 2 // grid 2x3, block 4x2
	out := s.Dev.MustAlloc(4 * threads)
	sh := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{
		Grid:  gpusim.Dim3{X: 2, Y: 3},
		Block: gpusim.Dim3{X: 4, Y: 2},
		Args:  []uint64{out, sh},
	})
	// The per-thread stores are clean; the tid.x==0 column writes race.
	for _, r := range res.Report.Races {
		if r.Addr >= out && r.Addr < out+uint64(4*threads) {
			t.Errorf("false race on per-thread slots: %v", r)
		}
	}
	if !res.Report.HasRaces() {
		t.Fatal("2-D column race missed")
	}
	// The native run fills every slot with the right global id.
	b, _ := s.Dev.ReadBytes(out, 4*threads)
	for i := 0; i < threads; i++ {
		got := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		if got != uint32(i) {
			t.Fatalf("slot %d = %d (2-D TID mapping broken)", i, got)
		}
	}
}

func TestQueueBackpressureSmallQueue(t *testing.T) {
	// A tiny queue forces the simulator to block on the consumer; the
	// run must still complete and detect.
	s := open(t, racyAllWriteSrc, Config{QueueCap: 2})
	out := s.Dev.MustAlloc(4)
	res := detect(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(8), Block: gpusim.D1(64), Args: []uint64{out}})
	if !res.Report.HasRaces() {
		t.Fatal("detection under backpressure failed")
	}
}
