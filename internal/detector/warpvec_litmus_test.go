package detector

import (
	"errors"
	"fmt"
	"testing"

	"barracuda/internal/gpusim"
)

// litmusCase is one memory-model litmus program run through the full
// detection pipeline (instrumentation, simulator, vector-clock detector).
type litmusCase struct {
	name   string
	ptx    string
	kernel string
	bufs   []int
	grid   gpusim.Dim3
	block  gpusim.Dim3
}

// litmusCorpus exercises the interpreter paths the bug suite leans on
// least: inter-block fences, spin-wait loops on flags, atomics used for
// synchronization, and block barriers with partial warps — the shapes
// where sync-record Seq stamping and warp-level broadcast must agree
// exactly between the lane-major and warp-major interpreters.
func litmusCorpus() []litmusCase {
	return []litmusCase{
		{
			name:   "mp-fence",
			kernel: "k",
			bufs:   []int{4, 4},
			grid:   gpusim.D1(2),
			block:  gpusim.D1(1),
			ptx: `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 1;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	membar.sys;
	st.global.u32 [%rd2], 1;
	ret;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	membar.sys;
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			name:   "mp-nofence",
			kernel: "k",
			bufs:   []int{4, 4},
			grid:   gpusim.D1(2),
			block:  gpusim.D1(1),
			ptx: `.visible .entry k(.param .u64 data, .param .u64 flag)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 1;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	st.global.u32 [%rd2], 1;
	ret;
READER:
	ld.global.u32 %r2, [%rd2];
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			name:   "sb-plain",
			kernel: "k",
			bufs:   []int{4, 4},
			grid:   gpusim.D1(2),
			block:  gpusim.D1(1),
			ptx: `.visible .entry k(.param .u64 x, .param .u64 y)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [x];
	ld.param.u64 %rd2, [y];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 1;
	@%p1 bra T1;
	st.global.u32 [%rd1], 1;
	ld.global.u32 %r2, [%rd2];
	ret;
T1:
	st.global.u32 [%rd2], 1;
	ld.global.u32 %r3, [%rd1];
	ret;
}`,
		},
		{
			name:   "atom-counter",
			kernel: "k",
			bufs:   []int{4},
			grid:   gpusim.D1(2),
			block:  gpusim.D1(32),
			ptx: `.visible .entry k(.param .u64 ctr)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [ctr];
	atom.global.add.u32 %r1, [%rd1], 1;
	ret;
}`,
		},
		{
			name:   "bar-partial-warp",
			kernel: "k",
			bufs:   []int{4},
			grid:   gpusim.D1(1),
			block:  gpusim.D1(48),
			ptx: `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 buf[256];
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd3, buf;
	add.u64 %rd4, %rd3, %rd2;
	st.shared.u32 [%rd4], %r1;
	bar.sync 0;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra DONE;
	ld.shared.u32 %r3, [%rd3+60];
	st.global.u32 [%rd1], %r3;
DONE:
	ret;
}`,
		},
	}
}

// litmusRun runs one case with an explicit interpreter path and warp size
// and returns the comparable outcome string (canonical digest + ordered
// races) and stats.
func litmusRun(lc litmusCase, ws int, laneMajor bool) (string, gpusim.Stats, error) {
	s, err := OpenPTX(lc.ptx, Config{})
	if err != nil {
		return "", gpusim.Stats{}, err
	}
	args := make([]uint64, 0, len(lc.bufs))
	for _, sz := range lc.bufs {
		a, err := s.Dev.Alloc(sz)
		if err != nil {
			return "", gpusim.Stats{}, err
		}
		args = append(args, a)
	}
	res, err := s.Detect(lc.kernel, gpusim.LaunchConfig{
		Grid: lc.grid, Block: lc.block, Args: args,
		MaxWarpInstrs: 1 << 18,
		WarpSize:      ws,
		LaneMajor:     laneMajor,
	})
	if err != nil {
		if errors.Is(err, gpusim.ErrStepBudget) {
			return "HANG\n", gpusim.Stats{}, nil
		}
		return "ERROR: " + err.Error() + "\n", gpusim.Stats{}, nil
	}
	out := res.Report.CanonicalDigest()
	for _, rc := range res.Report.Races {
		out += fmt.Sprintf("%+v\n", rc)
	}
	return out, res.SimStats, nil
}

// TestWarpVectorizedLitmusEquivalence asserts the warp-major interpreter
// reproduces the lane-major baseline on the litmus corpus: identical
// canonical digests, race sets, and launch stats, at the default warp
// width and at warp size 7 (partial warps everywhere).
func TestWarpVectorizedLitmusEquivalence(t *testing.T) {
	for _, lc := range litmusCorpus() {
		lc := lc
		t.Run(lc.name, func(t *testing.T) {
			for _, ws := range []int{0, 7} {
				lane, lst, err := litmusRun(lc, ws, true)
				if err != nil {
					t.Fatalf("lane-major (ws=%d): %v", ws, err)
				}
				warp, wst, err := litmusRun(lc, ws, false)
				if err != nil {
					t.Fatalf("warp-major (ws=%d): %v", ws, err)
				}
				if lane != warp {
					t.Errorf("outcome diverged (ws=%d):\n--- lane-major ---\n%s--- warp-major ---\n%s", ws, lane, warp)
				}
				if lst != wst {
					t.Errorf("stats diverged (ws=%d):\nlane-major: %+v\nwarp-major: %+v", ws, lst, wst)
				}
			}
		})
	}
}
