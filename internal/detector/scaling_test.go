package detector

import (
	"testing"

	"barracuda/internal/gpusim"
)

func capture(t *testing.T, s *Session, kernel string, launch gpusim.LaunchConfig) *Capture {
	t.Helper()
	c, err := s.Capture(kernel, launch)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return c
}

// TestCaptureReplayMatchesDetect: replaying a captured record stream
// through the transport must yield the same canonical report as the
// live pipeline — capture/replay only decouples production from
// detection, it must not change what is detected.
func TestCaptureReplayMatchesDetect(t *testing.T) {
	cfg := Config{Queues: 1}
	launchFor := func(s *Session) gpusim.LaunchConfig {
		return gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(64), Args: []uint64{s.Dev.MustAlloc(4)}}
	}
	live := open(t, racyAllWriteSrc, cfg)
	res := detect(t, live, "k", launchFor(live))

	// A fresh session replays the same launch: same module, same
	// allocation order, so the captured stream matches the live one.
	cs := open(t, racyAllWriteSrc, cfg)
	cap := capture(t, cs, "k", launchFor(cs))
	if len(cap.Records) == 0 {
		t.Fatal("capture collected no records")
	}
	rep, err := Replay(cap, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Records != len(cap.Records) {
		t.Errorf("replay pushed %d records, captured %d", rep.Records, len(cap.Records))
	}
	if got, want := rep.Report.CanonicalDigest(), res.Report.CanonicalDigest(); got != want {
		t.Errorf("replay report differs from live detection:\n--- live ---\n%s--- replay ---\n%s", want, got)
	}
}

// TestReplayWidthsAgree: one captured stream replayed at every -scaling
// queue width must produce identical canonical reports. Exercises both
// digest tiers: racyAllWriteSrc is a many-writer global race
// (structural tier), the barrier-free shared kernel an intra-block
// shared race (exact tier).
func TestReplayWidthsAgree(t *testing.T) {
	kernels := []struct {
		name   string
		src    string
		launch func(s *Session) gpusim.LaunchConfig
	}{
		{"global-many-writer", racyAllWriteSrc, func(s *Session) gpusim.LaunchConfig {
			return gpusim.LaunchConfig{Grid: gpusim.D1(8), Block: gpusim.D1(64), Args: []uint64{s.Dev.MustAlloc(4)}}
		}},
		{"shared-no-barrier", sharedBarrierSrc, func(s *Session) gpusim.LaunchConfig {
			return gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(64), Args: []uint64{s.Dev.MustAlloc(4 * 64), 0}}
		}},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			s := open(t, k.src, Config{})
			cap := capture(t, s, "k", k.launch(s))
			var base string
			for _, q := range []int{1, 2, 4, 8} {
				rep, err := Replay(cap, Config{Queues: q})
				if err != nil {
					t.Fatalf("replay queues=%d: %v", q, err)
				}
				if !rep.Report.HasRaces() {
					t.Fatalf("queues=%d: race missed", q)
				}
				dig := rep.Report.CanonicalDigest()
				if q == 1 {
					base = dig
					continue
				}
				if dig != base {
					t.Errorf("report changed at queues=%d:\n--- queues=1 ---\n%s--- queues=%d ---\n%s", q, base, q, dig)
				}
			}
		})
	}
}

// TestReplayRejectsBadConfig: Replay validates like Detect does.
func TestReplayRejectsBadConfig(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{})
	cap := capture(t, s, "k", gpusim.LaunchConfig{Grid: gpusim.D1(2), Block: gpusim.D1(64), Args: []uint64{s.Dev.MustAlloc(4)}})
	if _, err := Replay(cap, Config{Queues: -1}); err == nil {
		t.Error("negative queue count accepted")
	}
}

// TestCaptureClosedSession: Capture honors the session lifecycle.
func TestCaptureClosedSession(t *testing.T) {
	s := open(t, racyAllWriteSrc, Config{})
	s.Close()
	if _, err := s.Capture("k", gpusim.LaunchConfig{Grid: gpusim.D1(1), Block: gpusim.D1(1)}); err != ErrClosed {
		t.Errorf("Capture on closed session: err = %v, want ErrClosed", err)
	}
}
