// Verified repair synthesis: take the static race candidates and patch
// proposals from package staticanalysis, apply each proposal to a clone
// of the module, and re-run full dynamic detection on the patched
// module. A patch is accepted only when the targeted race is gone, no
// new races appeared, no new barrier divergence appeared, and the
// launch still completes within its step budget. The dynamic detector —
// not the synthesizer — is the judge, so the static layer is free to
// propose aggressively and unrepairable kernels are declined honestly.
package detector

import (
	"fmt"
	"sort"

	"barracuda/internal/core"
	"barracuda/internal/gpusim"
	"barracuda/internal/kernel"
	"barracuda/internal/logging"
	"barracuda/internal/ptx"
	"barracuda/internal/staticanalysis"
)

// RepairOptions configures one repair run.
type RepairOptions struct {
	// Grid and Block give the verification launch shape (defaults 2 and
	// 64: two blocks expose inter-block races, two warps expose
	// cross-warp intra-block ones that lockstep execution would hide
	// inside a single warp).
	Grid  int
	Block int
	// Buffers lists byte sizes of zeroed global buffers allocated fresh
	// for every launch, passed as the kernel arguments in order. When
	// empty, one 4096-byte buffer per kernel parameter is used.
	Buffers []int
	// MaxInstrs is the per-launch warp-instruction budget (default
	// 1<<22). A patch that deadlocks — e.g. a barrier a divergent
	// thread never reaches — exhausts it and is rejected.
	MaxInstrs uint64
	// WarpSize optionally narrows the warp (0 = architecture default).
	WarpSize int
	// MaxCandidates bounds how many candidates are evaluated, dynamic
	// ones first (default 8).
	MaxCandidates int
	// MaxPatchesPerCandidate bounds proposals tried per candidate
	// (default 3).
	MaxPatchesPerCandidate int
}

func (o RepairOptions) withDefaults() RepairOptions {
	if o.Grid <= 0 {
		o.Grid = 2
	}
	if o.Block <= 0 {
		o.Block = 64
	}
	if o.MaxInstrs == 0 {
		o.MaxInstrs = 1 << 22
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 8
	}
	if o.MaxPatchesPerCandidate <= 0 {
		o.MaxPatchesPerCandidate = 3
	}
	return o
}

// RepairVerdict is the dynamic verification outcome for one patch.
type RepairVerdict struct {
	Verified       bool   `json:"verified"`
	TargetGone     bool   `json:"target_gone"`
	NewRaces       int    `json:"new_races"`
	NewDivergences int    `json:"new_divergences"`
	LaunchError    string `json:"launch_error,omitempty"`
	Reason         string `json:"reason"`
}

// RepairPatch is one attempted patch with its verification verdict.
type RepairPatch struct {
	Kind    string        `json:"kind"`
	Note    string        `json:"note"`
	Diff    string        `json:"diff"`
	Verdict RepairVerdict `json:"verdict"`
}

// RepairCandidate is one evaluated race candidate.
type RepairCandidate struct {
	Description string        `json:"description"`
	LineA       int           `json:"line_a"`
	LineB       int           `json:"line_b"`
	Space       string        `json:"space"`
	Score       int           `json:"score"`
	Dynamic     bool          `json:"dynamic"` // confirmed by the baseline detection run
	Patches     []RepairPatch `json:"patches"`
	Repaired    bool          `json:"repaired"` // some patch was verified
}

// RepairReport is the full outcome of a repair run on one kernel.
type RepairReport struct {
	Kernel              string            `json:"kernel"`
	BaselineRaces       int               `json:"baseline_races"`
	BaselineDivergences int               `json:"baseline_divergences"`
	StaticCandidates    int               `json:"static_candidates"`
	Candidates          []RepairCandidate `json:"candidates"`
	Verified            int               `json:"verified"` // candidates with an accepted patch
	Unrepaired          int               `json:"unrepaired"`
	// PatchedPTX is the module with every accepted patch applied, empty
	// when nothing was verified. FinalRaces re-verifies the composition;
	// when no patch was accepted it is the baseline count (unchanged module).
	PatchedPTX string `json:"patched_ptx,omitempty"`
	FinalRaces int    `json:"final_races"`
	// PatchRuns counts dynamic detection launches (baseline + patches +
	// composition); the repair benchmarks derive evaluated/sec from it.
	PatchRuns int `json:"patch_runs"`
}

// raceKey identifies a static race independent of address and thread
// identity: the unordered pair of source lines with access roles, plus
// the space. Patched modules run from the cloned AST, so line numbers
// are stable across the baseline and every patched run.
type raceKey struct {
	lineLo, lineHi uint32
	wLo, wHi       bool
	space          logging.SpaceID
}

func keyOf(r core.Race) raceKey {
	a, b := r.Prev, r.Cur
	if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
		a, b = b, a
	}
	return raceKey{lineLo: a.PC, lineHi: b.PC, wLo: a.Write, wHi: b.Write, space: r.Space}
}

func raceKeys(rep *core.Report) map[raceKey]bool {
	out := make(map[raceKey]bool, len(rep.Races))
	for _, r := range rep.Races {
		out[keyOf(r)] = true
	}
	return out
}

func divergencePCs(rep *core.Report) map[uint32]bool {
	out := make(map[uint32]bool, len(rep.Divergences))
	for _, d := range rep.Divergences {
		out[d.PC] = true
	}
	return out
}

// Repair runs the full candidate → patch → verify loop on one kernel of
// the module. The module itself is never modified.
func Repair(m *ptx.Module, kernelName string, cfg Config, opt RepairOptions) (*RepairReport, error) {
	opt = opt.withDefaults()
	k := m.Kernel(kernelName)
	if k == nil {
		return nil, fmt.Errorf("detector: unknown kernel %q", kernelName)
	}
	buffers := opt.Buffers
	if len(buffers) == 0 {
		for range k.Params {
			buffers = append(buffers, 4096)
		}
	}
	rr := &RepairReport{Kernel: kernelName}

	// Baseline detection on the unpatched module.
	base, err := runOnce(m, kernelName, cfg, opt, buffers)
	rr.PatchRuns++
	if err != nil {
		return nil, fmt.Errorf("detector: baseline run: %w", err)
	}
	baseKeys := raceKeys(base)
	baseDivs := divergencePCs(base)
	rr.BaselineRaces = len(base.Races)
	rr.BaselineDivergences = len(base.Divergences)

	// Static candidates, then feed the dynamically observed races back:
	// a candidate matching a reported race is boosted to the front, and
	// races with no static candidate are synthesized into one.
	c, err := kernel.Build(k)
	if err != nil {
		return nil, err
	}
	analysis := staticanalysis.Analyze(c)
	cands := staticanalysis.RaceCandidates(analysis)
	rr.StaticCandidates = len(cands)
	cands = mergeDynamic(analysis, cands, base.Races)

	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Dynamic != cands[j].Dynamic {
			return cands[i].Dynamic
		}
		return cands[i].Score > cands[j].Score
	})
	if len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}

	origText := ptx.Print(m)
	var acceptedEdits []ptx.Edit
	for _, cand := range cands {
		rc := RepairCandidate{
			Description: cand.Describe(),
			LineA:       cand.LineA,
			LineB:       cand.LineB,
			Space:       cand.SpaceStr,
			Score:       cand.Score,
			Dynamic:     cand.Dynamic,
		}
		target := candidateKeys(cand)
		for _, prop := range staticanalysis.ProposePatches(analysis, cand, opt.MaxPatchesPerCandidate) {
			patched, err := ptx.ApplyEdits(m, prop.Edits)
			if err != nil {
				rc.Patches = append(rc.Patches, RepairPatch{
					Kind: string(prop.Kind), Note: prop.Note,
					Verdict: RepairVerdict{Reason: "patch did not apply: " + err.Error()},
				})
				continue
			}
			rp := RepairPatch{
				Kind: string(prop.Kind),
				Note: prop.Note,
				Diff: ptx.UnifiedDiff("a/"+kernelName+".ptx", "b/"+kernelName+".ptx", origText, ptx.Print(patched)),
			}
			rep, err := runOnce(patched, kernelName, cfg, opt, buffers)
			rr.PatchRuns++
			rp.Verdict = verdict(cand, target, baseKeys, baseDivs, rep, err)
			rc.Patches = append(rc.Patches, rp)
			if rp.Verdict.Verified {
				rc.Repaired = true
				acceptedEdits = append(acceptedEdits, prop.Edits...)
				break
			}
		}
		if rc.Repaired {
			rr.Verified++
		} else if rc.Dynamic {
			rr.Unrepaired++
		}
		rr.Candidates = append(rr.Candidates, rc)
	}

	// Compose every accepted patch into one module and re-verify: the
	// individually verified patches could in principle interfere. With
	// nothing accepted the module is unchanged, so the final race count
	// is the baseline's — not zero.
	rr.FinalRaces = rr.BaselineRaces
	if len(acceptedEdits) > 0 {
		composed, err := ptx.ApplyEdits(m, dedupeEdits(acceptedEdits))
		if err == nil {
			rep, err := runOnce(composed, kernelName, cfg, opt, buffers)
			rr.PatchRuns++
			if err == nil {
				rr.PatchedPTX = ptx.Print(composed)
				rr.FinalRaces = len(rep.Races)
			}
		}
	}
	return rr, nil
}

// runOnce opens a fresh session for the module (original or patched),
// allocates zeroed buffers, and runs one detection launch.
func runOnce(m *ptx.Module, kernelName string, cfg Config, opt RepairOptions, buffers []int) (*core.Report, error) {
	sess, err := Open(m, cfg)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	args := make([]uint64, 0, len(buffers))
	for _, n := range buffers {
		addr, err := sess.Dev.Alloc(n)
		if err != nil {
			return nil, err
		}
		args = append(args, addr)
	}
	res, err := sess.Detect(kernelName, gpusim.LaunchConfig{
		Grid:          gpusim.Dim3{X: opt.Grid, Y: 1, Z: 1},
		Block:         gpusim.Dim3{X: opt.Block, Y: 1, Z: 1},
		Args:          args,
		MaxWarpInstrs: opt.MaxInstrs,
		WarpSize:      opt.WarpSize,
	})
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// candidateKeys enumerates the race keys a candidate explains: both
// role assignments of its line pair, in its space. Atomic sides match
// either write polarity (an atomic access reports Write=true in some
// detectors and carries the Atomic flag in ours), so atomic candidates
// expand to all polarities on that side.
func candidateKeys(cd staticanalysis.Candidate) map[raceKey]bool {
	space := logging.SpaceGlobal
	if cd.SpaceStr == "shared" {
		space = logging.SpaceShared
	}
	la, lb := uint32(cd.LineA), uint32(cd.LineB)
	wa := polarities(cd.WriteA, cd.AtomicA)
	wb := polarities(cd.WriteB, cd.AtomicB)
	out := map[raceKey]bool{}
	for _, a := range wa {
		for _, b := range wb {
			out[normKey(la, a, lb, b, space)] = true
		}
	}
	return out
}

func polarities(write, atomic bool) []bool {
	if atomic {
		return []bool{true, false}
	}
	return []bool{write}
}

func normKey(la uint32, wa bool, lb uint32, wb bool, space logging.SpaceID) raceKey {
	if la > lb || (la == lb && wa && !wb) {
		la, lb, wa, wb = lb, la, wb, wa
	}
	return raceKey{lineLo: la, lineHi: lb, wLo: wa, wHi: wb, space: space}
}

// verdict applies the acceptance contract to one patched run.
func verdict(cand staticanalysis.Candidate, target, baseKeys map[raceKey]bool,
	baseDivs map[uint32]bool, rep *core.Report, err error) RepairVerdict {
	if err != nil {
		return RepairVerdict{
			LaunchError: err.Error(),
			Reason:      "patched kernel failed to launch cleanly",
		}
	}
	v := RepairVerdict{TargetGone: true}
	for _, r := range rep.Races {
		k := keyOf(r)
		if target[k] {
			v.TargetGone = false
		}
		if !baseKeys[k] {
			v.NewRaces++
		}
	}
	for _, d := range rep.Divergences {
		if !baseDivs[d.PC] {
			v.NewDivergences++
		}
	}
	switch {
	case !cand.Dynamic:
		v.Reason = "candidate race was not observed dynamically; patch is speculative and not certified"
	case !v.TargetGone:
		v.Reason = "targeted race still detected after the patch"
	case v.NewRaces > 0:
		v.Reason = fmt.Sprintf("patch introduced %d new race(s)", v.NewRaces)
	case v.NewDivergences > 0:
		v.Reason = fmt.Sprintf("patch introduced %d new barrier divergence(s)", v.NewDivergences)
	default:
		v.Verified = true
		v.Reason = "targeted race gone, no new races, no new divergence"
	}
	return v
}

// mergeDynamic marks candidates confirmed by the baseline run and
// synthesizes candidates for reported races no static pair explains.
func mergeDynamic(a *staticanalysis.Analysis, cands []staticanalysis.Candidate, races []core.Race) []staticanalysis.Candidate {
	covered := map[raceKey]bool{}
	for i := range cands {
		for k := range candidateKeys(cands[i]) {
			covered[k] = true
		}
	}
	for _, r := range races {
		k := keyOf(r)
		matched := false
		for i := range cands {
			if candidateKeys(cands[i])[k] {
				if !cands[i].Dynamic {
					cands[i].Dynamic = true
					cands[i].Score += 1000
					cands[i].Reason = "dynamically confirmed: " + cands[i].Reason
				}
				matched = true
			}
		}
		if matched || covered[k] {
			continue
		}
		covered[k] = true
		if cd, ok := synthesizeCandidate(a, r); ok {
			cands = append(cands, cd)
		}
	}
	return cands
}

// synthesizeCandidate builds a candidate from a dynamic race whose line
// pair the static analysis did not propose (e.g. both sites behind
// unknown addresses it declined to pair).
func synthesizeCandidate(a *staticanalysis.Analysis, r core.Race) (staticanalysis.Candidate, bool) {
	ia := siteAtLine(a, int(r.Prev.PC))
	ib := siteAtLine(a, int(r.Cur.PC))
	if ia < 0 || ib < 0 {
		return staticanalysis.Candidate{}, false
	}
	if ia > ib {
		ia, ib = ib, ia
	}
	in := a.CFG.Instrs[ia]
	cd := staticanalysis.Candidate{
		Kernel: a.CFG.Kernel.Name,
		A:      ia, B: ib,
		LineA: a.CFG.Instrs[ia].Line, LineB: a.CFG.Instrs[ib].Line,
		Space: in.Space, SpaceStr: in.Space.String(),
		WriteA: a.Class[ia].Writes(), WriteB: a.Class[ib].Writes(),
		Score: 1000, Dynamic: true,
		Reason: "reported by the dynamic detector",
	}
	return cd, true
}

// siteAtLine finds the memory-access instruction at a source line.
func siteAtLine(a *staticanalysis.Analysis, line int) int {
	for i, in := range a.CFG.Instrs {
		if in.Line == line && in.MemoryAccess() {
			return i
		}
	}
	return -1
}

// dedupeEdits drops exact-duplicate edits (two candidates can propose
// the same fence insertion).
func dedupeEdits(edits []ptx.Edit) []ptx.Edit {
	var out []ptx.Edit
	for _, e := range edits {
		dup := false
		for _, o := range out {
			if e.Kernel == o.Kernel && e.At == o.At && e.After == o.After &&
				e.Remove == o.Remove && len(e.Ins) == len(o.Ins) && sameIns(e.Ins, o.Ins) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

func sameIns(a, b []*ptx.Instr) bool {
	for i := range a {
		if ptx.FormatInstr(a[i]) != ptx.FormatInstr(b[i]) {
			return false
		}
	}
	return true
}
