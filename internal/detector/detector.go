// Package detector assembles the end-to-end BARRACUDA pipeline (Figure 5):
// fat binary → PTX extraction → binary instrumentation → SIMT simulation
// with GPU-side logging → multi-queue event transport → host-side race
// detection threads.
//
// A Session owns one simulated device with the native and instrumented
// variants of a module loaded side by side, so the same kernels can be
// run natively (for baseline timing) and under detection.
package detector

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"barracuda/internal/core"
	"barracuda/internal/fatbin"
	"barracuda/internal/gpusim"
	"barracuda/internal/instrument"
	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// Config tunes the pipeline.
type Config struct {
	// Queues is the number of GPU→CPU event queues (and host detector
	// threads). 1 (the default) gives deterministic detection; the
	// paper finds ~1.1–1.5 queues per SM optimal for throughput.
	Queues int
	// QueueCap is the per-queue capacity in records (default 4096).
	QueueCap int
	// Granularity is the shadow-memory granularity in bytes (default 1).
	Granularity int
	// MaxRaces bounds distinct race reports (default 1024).
	MaxRaces int
	// FullVC selects the uncompressed vector-clock ablation detector.
	FullVC bool
	// NoPrune disables the instrumentation pruning optimization.
	NoPrune bool
	// StaticPrune enables the inter-block static pruner (package
	// staticanalysis): provably redundant or thread-private accesses
	// are never logged. Race reports are unchanged; log volume drops.
	// Mutually exclusive with NoPrune.
	StaticPrune bool
	// NoSameValueFilter disables the intra-warp same-value write filter.
	NoSameValueFilter bool
	// PerCellShadow disables the coalesced-span shadow fast path: every
	// warp access takes the per-cell loop. The A/B baseline for the span
	// optimization; race reports are identical either way.
	PerCellShadow bool
	// Ownership enables the exclusive-ownership shadow tier: regions
	// touched by a single warp (or, across barriers, a single block)
	// skip the epoch checks entirely until a second owner appears. Race
	// reports are identical either way. Requires the span fast path, so
	// it is mutually exclusive with FullVC and PerCellShadow.
	Ownership bool
	// ProducerFilter enables the simulator's producer-side epoch filter:
	// per-warp caches suppress provably redundant global-space access
	// records before they reach the queues, with suppressed counts
	// reconciled so reports and canonical digests are byte-identical to
	// an unfiltered run (see gpusim/filter.go for the soundness gates).
	// False preserves the unfiltered emission path verbatim as the A/B
	// baseline. Mutually exclusive with FullVC.
	ProducerFilter bool
	// ShadowCapBytes bounds resident shadow memory (global pages plus
	// shared slabs) to this many bytes: shared slabs are compacted at
	// fully-converged block barriers (losslessly), and past the cap the
	// least-recently-used region is evicted, with Result reporting
	// PrecisionDegraded when an eviction discarded live metadata. 0
	// means unbounded. Requires the span fast path, so it is mutually
	// exclusive with FullVC and PerCellShadow.
	ShadowCapBytes int64
}

// Validate rejects nonsensical configurations. Zero values select
// defaults (see withDefaults); negative values are configuration errors,
// reported descriptively rather than silently clamped so that callers —
// in particular the barracudad job API — can surface them to users.
func (c Config) Validate() error {
	if c.Queues < 0 {
		return fmt.Errorf("detector: Queues must be >= 0 (0 selects the default of 1 queue), got %d", c.Queues)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("detector: QueueCap must be >= 0 (0 selects the default of 4096 records), got %d", c.QueueCap)
	}
	if c.Granularity < 0 {
		return fmt.Errorf("detector: Granularity must be >= 0 (0 selects byte granularity), got %d", c.Granularity)
	}
	if c.MaxRaces < 0 {
		return fmt.Errorf("detector: MaxRaces must be >= 0 (0 selects the default of 1024), got %d", c.MaxRaces)
	}
	if c.NoPrune && c.StaticPrune {
		return fmt.Errorf("detector: NoPrune and StaticPrune are mutually exclusive: the static pruner subsumes the intra-block optimization NoPrune disables")
	}
	if c.ShadowCapBytes < 0 {
		return fmt.Errorf("detector: ShadowCapBytes must be >= 0 (0 leaves the shadow unbounded), got %d", c.ShadowCapBytes)
	}
	if c.Ownership && c.FullVC {
		return fmt.Errorf("detector: Ownership and FullVC are mutually exclusive: the ownership tier relies on the compressed-PTVC convergence invariant the full-VC ablation abandons")
	}
	if c.Ownership && c.PerCellShadow {
		return fmt.Errorf("detector: Ownership and PerCellShadow are mutually exclusive: the ownership tier lives on the region-locked span paths PerCellShadow disables")
	}
	if c.ShadowCapBytes > 0 && c.FullVC {
		return fmt.Errorf("detector: ShadowCapBytes and FullVC are mutually exclusive: bounded shadow relies on the span-mode region bookkeeping the full-VC ablation bypasses")
	}
	if c.ShadowCapBytes > 0 && c.PerCellShadow {
		return fmt.Errorf("detector: ShadowCapBytes and PerCellShadow are mutually exclusive: bounded shadow relies on the region bookkeeping the per-cell baseline bypasses")
	}
	if c.ProducerFilter && c.FullVC {
		return fmt.Errorf("detector: ProducerFilter and FullVC are mutually exclusive: the filter's suppression argument relies on the compressed-PTVC epoch semantics (and OpFlush reconciliation) the full-VC ablation bypasses")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.Granularity <= 0 {
		c.Granularity = 1
	}
	return c
}

// Session is one device with a module loaded natively and instrumented.
//
// Reuse contract: a Session may run any number of sequential Detect /
// RunNative calls — each call builds a fresh detector state and queue
// set, so results are independent. Two constraints: (1) calls must not
// overlap (kernel launches mutate shared device memory), and (2) device
// global memory persists across calls, so a caller that wants run N+1 to
// see the same initial memory as run N must re-zero (or rewrite) its
// buffers between calls. The server-side module cache relies on exactly
// this contract to share one Session across many jobs.
type Session struct {
	cfg     Config
	Dev     *gpusim.Device
	Native  *gpusim.Module
	Instr   *gpusim.Module
	Stats   map[string]*instrument.KernelStats
	SrcMod  *ptx.Module
	InstMod *ptx.Module

	closed atomic.Bool
}

// Open instruments a module and loads both variants onto a fresh device.
func Open(m *ptx.Module, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	res, err := instrument.Instrument(m, instrument.Options{NoPrune: cfg.NoPrune, StaticPrune: cfg.StaticPrune})
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(0)
	nat, err := dev.LoadModule(m)
	if err != nil {
		return nil, err
	}
	ins, err := dev.LoadModule(res.Module)
	if err != nil {
		return nil, fmt.Errorf("detector: loading instrumented module: %w", err)
	}
	return &Session{
		cfg:     cfg,
		Dev:     dev,
		Native:  nat,
		Instr:   ins,
		Stats:   res.Stats,
		SrcMod:  m,
		InstMod: res.Module,
	}, nil
}

// OpenPTX parses PTX text and opens a session.
func OpenPTX(src string, cfg Config) (*Session, error) {
	m, err := ptx.Parse(src)
	if err != nil {
		return nil, err
	}
	return Open(m, cfg)
}

// OpenFatBinary intercepts a fat binary: extracts the architecture-
// neutral PTX, strips everything else, and opens a session — the
// LD_PRELOAD/__cudaRegisterFatBinary flow of §4.1.
func OpenFatBinary(bin []byte, cfg Config) (*Session, error) {
	src, err := fatbin.ExtractPTX(bin)
	if err != nil {
		return nil, err
	}
	return OpenPTX(src, cfg)
}

// Result is the outcome of one detection run.
type Result struct {
	Report   *core.Report
	SimStats gpusim.Stats
	// Formats is the PTVC format census at kernel completion; FormatHist
	// is sampled at every memory record during execution (the §4.3.1
	// "90% of the time" measurement).
	Formats    map[ptvc.Format]int
	FormatHist map[ptvc.Format]uint64
	Duration   time.Duration
}

// routeSink routes records to their block's queue.
type routeSink struct {
	set *logging.Set
}

func (s *routeSink) Emit(r *logging.Record) {
	s.set.ForBlock(int(r.Block)).Enqueue(r)
}

// consumerBatch is the per-drain record budget of a queue consumer:
// large enough to amortize the transport handshake, small enough that a
// batch stays cache-resident (256 records ≈ 70 KiB).
const consumerBatch = 256

// consumeQueue is one detector thread: it drains its queue in batches
// through a per-goroutine core.Worker (private stats shard, shadow span
// cache) and backs off exponentially while the queue is idle, stopping
// at the end-of-stream sentinel.
func consumeQueue(det *core.Detector, q *logging.Queue, wg *sync.WaitGroup) {
	defer wg.Done()
	w := det.NewWorker()
	n := consumerBatch
	if c := q.Cap(); c < n {
		n = c
	}
	buf := make([]logging.Record, n)
	var bo logging.Backoff
	for {
		got := q.DequeueBatch(buf)
		if got == 0 {
			bo.Wait()
			continue
		}
		bo.Reset()
		for i := 0; i < got; i++ {
			if buf[i].Op == trace.OpEnd {
				return
			}
			w.Handle(&buf[i])
		}
	}
}

// Config returns the session's effective (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// ErrClosed is returned by Detect/RunNative after Close.
var ErrClosed = fmt.Errorf("detector: session closed")

// Close marks the session unusable: subsequent Detect/RunNative calls
// return ErrClosed. A Detect already in flight runs to completion (the
// flag is checked only on entry), which lets a cache evict an entry
// without synchronizing with a job that still holds it. Close is
// idempotent and safe for concurrent use.
func (s *Session) Close() error {
	s.closed.Store(true)
	return nil
}

// Detect runs a kernel under the race detector.
func (s *Session) Detect(kernelName string, launch gpusim.LaunchConfig) (*Result, error) {
	return s.DetectObserved(kernelName, launch, nil)
}

// DetectObserved runs a kernel under the race detector with an optional
// incremental race observer: onRace fires once per new static race at
// the moment of discovery, before the run completes — the hook behind
// the streaming job protocol's incremental race frames. onRace runs on a
// detection worker goroutine under the report lock, so it must be
// non-blocking (the stream layer hands it a channel buffered to
// MaxRaces). A nil onRace is exactly Detect.
func (s *Session) DetectObserved(kernelName string, launch gpusim.LaunchConfig, onRace func(core.Race)) (*Result, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	grid := launch.Grid
	block := launch.Block
	ws := launch.WarpSize
	if ws == 0 {
		ws = gpusim.WarpSize
	}
	geo := ptvc.Geometry{
		WarpSize:  ws,
		BlockSize: block.Count(),
		Blocks:    grid.Count(),
	}
	if geo.BlockSize == 0 {
		geo.BlockSize = 1
	}
	if geo.Blocks == 0 {
		geo.Blocks = 1
	}
	var sharedBytes int64
	if k := s.InstMod.Kernel(kernelName); k != nil {
		sharedBytes = k.SharedBytes()
	} else {
		return nil, fmt.Errorf("detector: unknown kernel %q", kernelName)
	}

	det := core.New(geo, sharedBytes, core.Options{
		Granularity:       s.cfg.Granularity,
		MaxRaces:          s.cfg.MaxRaces,
		NoSameValueFilter: s.cfg.NoSameValueFilter,
		FullVC:            s.cfg.FullVC,
		PerCellShadow:     s.cfg.PerCellShadow,
		Ownership:         s.cfg.Ownership,
		ShadowCapBytes:    s.cfg.ShadowCapBytes,
		OnRace:            onRace,
	})
	set := logging.NewSet(s.cfg.Queues, s.cfg.QueueCap)

	var wg sync.WaitGroup
	for _, q := range set.Queues {
		wg.Add(1)
		go consumeQueue(det, q, &wg)
	}

	launch.Sink = &routeSink{set: set}
	launch.EmitBranchEvents = true
	launch.ProducerFilter = s.cfg.ProducerFilter
	launch.FilterGranularity = s.cfg.Granularity
	start := time.Now()
	stats, err := s.Instr.Launch(kernelName, launch)
	set.CloseAll()
	wg.Wait()
	dur := time.Since(start)
	if err != nil {
		return nil, err
	}
	return &Result{
		Report:     det.Report(),
		SimStats:   stats,
		Formats:    det.FormatStats(),
		FormatHist: det.FormatHistogram(),
		Duration:   dur,
	}, nil
}

// RunNative runs the uninstrumented kernel (baseline timing for the
// Figure 10 overhead experiment).
func (s *Session) RunNative(kernelName string, launch gpusim.LaunchConfig) (gpusim.Stats, time.Duration, error) {
	if s.closed.Load() {
		return gpusim.Stats{}, 0, ErrClosed
	}
	launch.Sink = nil
	launch.EmitBranchEvents = false
	start := time.Now()
	stats, err := s.Native.Launch(kernelName, launch)
	return stats, time.Since(start), err
}
