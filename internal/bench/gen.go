// Package bench provides the 26 synthetic benchmarks standing in for the
// paper's evaluation programs (Rodinia, SHOC, GPU-TM, the CUDA SDK and
// CUB samples — Table 1), plus the harnesses that regenerate Table 1,
// Figure 9 and Figure 10.
//
// Each benchmark is produced by a kernel generator whose specification
// controls the structural properties the experiments measure: the
// arithmetic/memory instruction mix (Figure 9's instrumented fraction),
// dynamic memory traffic (Figure 10's overhead), thread counts and
// footprints (Table 1), and the number and placement of engineered races
// ("races found"). Thread counts and memory sizes are scaled down from
// the paper's GPU-scale runs; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strings"
)

// Spec parameterises the kernel generator.
type Spec struct {
	Arith      int  // arithmetic filler instructions (total, split across loops)
	Loops      int  // dynamic iterations of the filler+traffic loop (min 1)
	Private    int  // per-thread private global store/load slots per iteration
	MemSites   int  // unrolled store+load site pairs on per-thread slots
	SharedComm bool // barrier-synchronized shared-memory staging phase
	RacyShared int  // engineered shared-memory racy store sites
	RacyGlobal int  // engineered global-memory racy store sites
	Atomics    int  // global atomic counter updates
	Fences     bool // a release/acquire pair on an auxiliary flag
}

// Slots returns the per-thread private slot count the generated kernel
// addresses (the out-buffer stride).
func (s Spec) Slots() int {
	n := s.Private
	if s.MemSites > n {
		n = s.MemSites
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sharedCommSlots is the size of the staging buffer (one slot per thread
// up to this many).
const sharedCommSlots = 128

// Generate produces the PTX for a benchmark kernel named "main" with
// parameters (out, racy, aux).
func Generate(s Spec) string {
	var b strings.Builder
	b.WriteString(".version 4.3\n.target sm_35\n.address_size 64\n\n")
	b.WriteString(".visible .entry main(.param .u64 out, .param .u64 racy, .param .u64 aux)\n{\n")
	b.WriteString("\t.reg .u32 %r<40>;\n")
	b.WriteString("\t.reg .u64 %rd<24>;\n")
	b.WriteString("\t.reg .pred %p<10>;\n")
	if s.SharedComm || s.RacyShared > 0 {
		size := sharedCommSlots*4 + s.RacyShared*4
		fmt.Fprintf(&b, "\t.shared .align 4 .b8 sm[%d];\n", size)
	}
	w := func(format string, args ...any) {
		b.WriteString("\t")
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}
	// Prologue: parameter loads and the unique TID (%r4), like the
	// instrumentation framework's TID preamble.
	w("ld.param.u64 %%rd1, [out];")
	w("ld.param.u64 %%rd2, [racy];")
	w("ld.param.u64 %%rd3, [aux];")
	w("mov.u32 %%r1, %%tid.x;")
	w("mov.u32 %%r2, %%ctaid.x;")
	w("mov.u32 %%r3, %%ntid.x;")
	w("mad.lo.u32 %%r4, %%r2, %%r3, %%r1;")
	// Per-thread private slot base: out + gtid*Slots*4.
	w("mul.lo.u32 %%r5, %%r4, %d;", s.Slots()*4)
	w("cvt.u64.u32 %%rd4, %%r5;")
	w("add.u64 %%rd5, %%rd1, %%rd4;")
	// Seed registers for the filler.
	w("add.u32 %%r16, %%r4, 1;")
	w("xor.b32 %%r17, %%r4, 0x5bd1;")
	w("add.u32 %%r18, %%r1, 7;")
	w("mov.u32 %%r19, 0x9e37;")

	loops := s.Loops
	if loops < 1 {
		loops = 1
	}
	if loops > 1 {
		w("mov.u32 %%r30, 0;")
		b.WriteString("BODY:\n")
	}
	perLoop := s.Arith
	emitFiller(&b, perLoop)
	// Private traffic: store then load each slot.
	for i := 0; i < s.Private; i++ {
		w("st.global.u32 [%%rd5+%d], %%r16;", i*4)
		w("ld.global.u32 %%r20, [%%rd5+%d];", i*4)
		w("add.u32 %%r16, %%r16, %%r20;")
	}
	if loops > 1 {
		w("add.u32 %%r30, %%r30, 1;")
		w("setp.lt.u32 %%p7, %%r30, %d;", loops)
		w("@%%p7 bra BODY;")
	}

	// Unrolled memory sites: a store then a load of the same private
	// slot. The loads are exactly the accesses the intra-basic-block
	// pruning optimization eliminates (read covered by the preceding
	// logged write), reproducing Figure 9's unoptimized/optimized gap.
	for i := 0; i < s.MemSites; i++ {
		w("st.global.u32 [%%rd5+%d], %%r16;", i*4)
		w("ld.global.u32 %%r20, [%%rd5+%d];", i*4)
		w("add.u32 %%r16, %%r16, %%r20;")
	}

	if s.SharedComm {
		// Barrier-synchronized staging: the first sharedCommSlots
		// threads write their slot, everyone barriers, the same
		// threads read their neighbour's slot, and everyone barriers
		// again. The guards reconverge before each bar.sync, so larger
		// blocks do not diverge at the barrier.
		w("setp.ge.u32 %%p8, %%r1, %d;", sharedCommSlots)
		w("mov.u64 %%rd7, sm;")
		w("@%%p8 bra CSKIP1;")
		w("shl.b32 %%r22, %%r1, 2;")
		w("cvt.u64.u32 %%rd6, %%r22;")
		w("add.u64 %%rd8, %%rd7, %%rd6;")
		w("st.shared.u32 [%%rd8], %%r16;")
		b.WriteString("CSKIP1:\n")
		w("bar.sync 0;")
		w("@%%p8 bra CSKIP2;")
		w("add.u32 %%r23, %%r1, 1;")
		w("and.b32 %%r23, %%r23, %d;", sharedCommSlots-1)
		w("shl.b32 %%r24, %%r23, 2;")
		w("cvt.u64.u32 %%rd9, %%r24;")
		w("add.u64 %%rd10, %%rd7, %%rd9;")
		w("ld.shared.u32 %%r25, [%%rd10];")
		w("add.u32 %%r16, %%r16, %%r25;")
		b.WriteString("CSKIP2:\n")
		w("bar.sync 0;")
	}
	for i := 0; i < s.Atomics; i++ {
		w("atom.global.add.u32 %%r26, [%%rd3], 1;")
	}
	if s.Fences {
		// A correct release/acquire pair on an auxiliary flag: thread 0
		// of block 0 releases, thread 0 of the last block acquires.
		w("setp.ne.u32 %%p1, %%r4, 0;")
		w("@%%p1 bra NOREL;")
		w("membar.gl;")
		w("st.global.u32 [%%rd3+8], 1;")
		b.WriteString("NOREL:\n")
		w("mov.u32 %%r27, %%nctaid.x;")
		w("sub.u32 %%r27, %%r27, 1;")
		w("setp.ne.u32 %%p2, %%r2, %%r27;")
		w("@%%p2 bra NOACQ;")
		w("setp.ne.u32 %%p3, %%r1, 0;")
		w("@%%p3 bra NOACQ;")
		w("ld.global.u32 %%r28, [%%rd3+8];")
		w("membar.gl;")
		b.WriteString("NOACQ:\n")
	}
	if s.RacyShared > 0 {
		// Lanes 0 and 1 of warp 0 write each racy shared site in the
		// same warp instruction with different values: one distinct
		// intra-warp race per site.
		w("setp.gt.u32 %%p4, %%r1, 1;")
		w("@%%p4 bra SKIPRS;")
		w("mov.u64 %%rd11, sm;")
		for i := 0; i < s.RacyShared; i++ {
			w("st.shared.u32 [%%rd11+%d], %%r4;", sharedCommSlots*4+i*4)
		}
		b.WriteString("SKIPRS:\n")
	}
	if s.RacyGlobal > 0 {
		// Thread 0 of block 0 and thread 0 of block 1 write each racy
		// global site: one distinct inter-block race per site.
		w("setp.ne.u32 %%p5, %%r1, 0;")
		w("@%%p5 bra SKIPRG;")
		w("setp.gt.u32 %%p6, %%r2, 1;")
		w("@%%p6 bra SKIPRG;")
		for i := 0; i < s.RacyGlobal; i++ {
			w("st.global.u32 [%%rd2+%d], %%r4;", i*4)
		}
		b.WriteString("SKIPRG:\n")
	}
	// Epilogue: publish the accumulated value to the private slot.
	w("st.global.u32 [%%rd5], %%r16;")
	w("ret;")
	b.WriteString("}\n")
	return b.String()
}

// fillerOps is the instruction mix of the arithmetic filler.
var fillerOps = []string{
	"add.u32 %r16, %r16, %r17;",
	"xor.b32 %r17, %r17, %r16;",
	"mul.lo.u32 %r18, %r18, %r19;",
	"shl.b32 %r19, %r16, 3;",
	"add.u32 %r17, %r17, %r18;",
	"sub.u32 %r18, %r18, %r16;",
	"and.b32 %r19, %r19, 0xffff;",
	"or.b32 %r16, %r16, 1;",
	"min.u32 %r17, %r17, %r18;",
	"mad.lo.u32 %r18, %r16, 3, %r17;",
	"max.u32 %r19, %r19, %r16;",
	"shr.u32 %r16, %r16, 1;",
}

func emitFiller(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("\t")
		b.WriteString(fillerOps[i%len(fillerOps)])
		b.WriteString("\n")
	}
}
