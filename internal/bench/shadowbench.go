package bench

import (
	"time"

	"barracuda/internal/core"
	"barracuda/internal/logging"
	"barracuda/internal/shadow"
	"barracuda/internal/trace"
)

// ShadowPoint is one access mix's A/B measurement of the adaptive
// ownership tier: the span baseline (Ownership off) against the
// exclusive-ownership fast path (Ownership on). Times are
// best-of-repeats for draining the mix's full record stream through one
// detector worker.
type ShadowPoint struct {
	Mix     string `json:"mix"`
	Records int    `json:"records"`

	BaseNS float64 `json:"base_ns"` // span baseline drain time, ns
	OwnNS  float64 `json:"own_ns"`  // ownership fast-path drain time, ns

	BaseRecordsPerSec float64 `json:"base_records_per_sec"`
	OwnRecordsPerSec  float64 `json:"own_records_per_sec"`

	Speedup      float64 `json:"speedup"` // BaseNS / OwnNS
	DigestsEqual bool    `json:"digests_equal"`

	// Ownership-tier telemetry from the fast-path run: what fraction of
	// records the tier fully absorbed, and how the mix moved through the
	// lattice.
	OwnedFastFrac float64 `json:"owned_fast_frac"`
	Claims        uint64  `json:"claims"`
	Promotions    uint64  `json:"promotions"`
	Inflations    uint64  `json:"inflations"`
}

// ShadowBoundedPoint is the memory-bounded half of the experiment: one
// page-sweeping stream drained with and without a shadow byte cap.
type ShadowBoundedPoint struct {
	Records  int   `json:"records"`
	CapBytes int64 `json:"cap_bytes"`

	UnboundedPeakBytes int64 `json:"unbounded_peak_bytes"`
	BoundedPeakBytes   int64 `json:"bounded_peak_bytes"`

	Evictions         uint64 `json:"evictions"`
	LiveEvictions     uint64 `json:"live_evictions"`
	PrecisionDegraded bool   `json:"precision_degraded"`

	// CapHeld: bounded peak never exceeded the cap by more than one
	// transient region allocation.
	CapHeld bool `json:"cap_held"`
}

// ShadowResult aggregates the adaptive-shadow experiment, the
// BENCH_shadow.json payload.
type ShadowResult struct {
	Points []ShadowPoint `json:"points"`

	// PrivateSpeedup is the speedup on the single-owner private mix —
	// the headline number the ownership tier exists for, and the one
	// `benchtab -shadow -min-speedup` gates on.
	PrivateSpeedup float64 `json:"private_speedup"`
	DigestsEqual   bool    `json:"digests_equal"`

	Bounded ShadowBoundedPoint `json:"bounded"`
}

// ShadowOptions tunes the adaptive-shadow experiment.
type ShadowOptions struct {
	// Repeats is how many times each mix is drained per path; the
	// fastest drain is kept (default 5).
	Repeats int
	// Iters scales the stream length (sweeps per warp, default 200).
	Iters int
}

// shadowStream generates one ownership mix's record stream over the
// detectGeo launch. kind selects who shares shadow regions:
//
//	private    — each warp sweeps its OWN 64 KiB page, alternating
//	  coalesced and strided (stride 2x the access size) instructions.
//	  Every region stays exclusively warp-owned, so the ownership tier
//	  replaces the whole epoch machinery — per-cell loops for the
//	  strided half — with one region-level comparison per record. The
//	  target of the `-min-speedup` gate.
//	blockowned — the warps of each block take turns sweeping the
//	  block's page, one warp per barrier interval. Regions promote
//	  warp→block, and the barriers keep the clock bounds provable.
//	contended  — every warp sweeps the same pages with no ordering:
//	  regions inflate to shared immediately, bounding the tier's
//	  overhead on traffic it cannot help.
func shadowStream(kind string, iters int) []logging.Record {
	geo := detectGeo()
	wpb := geo.WarpsPerBlock()
	warps := geo.Blocks * wpb
	instrsPerSweep := 8
	recs := make([]logging.Record, 0, warps*iters*instrsPerSweep)

	mem := func(w, instr int, base uint64, strided bool) logging.Record {
		var r logging.Record
		r.Warp = uint32(w)
		r.Block = uint32(w / wpb)
		r.Space = logging.SpaceGlobal
		r.Size = 4
		r.PC = uint32(instr + 1)
		if instr%2 == 0 {
			r.Op = trace.OpRead
		} else {
			r.Op = trace.OpWrite
		}
		r.Mask = ^uint32(0)
		stride := uint64(4)
		if strided {
			stride = 8
		}
		for lane := 0; lane < 32; lane++ {
			r.Addrs[lane] = base + uint64(lane)*stride
			r.Vals[lane] = uint64(lane)
		}
		r.Classify()
		return r
	}

	switch kind {
	case "private":
		for it := 0; it < iters; it++ {
			for w := 0; w < warps; w++ {
				window := uint64(w) * shadow.PageBytes
				for i := 0; i < instrsPerSweep; i++ {
					base := window + uint64(i)*256
					recs = append(recs, mem(w, i, base, i%2 == 1))
				}
			}
		}
	case "blockowned":
		for it := 0; it < iters; it++ {
			for b := 0; b < geo.Blocks; b++ {
				w := b*wpb + it%wpb // this interval's sweeping warp
				window := uint64(b) * shadow.PageBytes
				for i := 0; i < instrsPerSweep; i++ {
					base := window + uint64(i)*256
					recs = append(recs, mem(w, i, base, i%2 == 1))
				}
			}
			// Block-wide barrier: orders this interval's sweeps before
			// the next warp's, so the ownership tier can prove the
			// rotated clock bounds.
			for b := 0; b < geo.Blocks; b++ {
				var r logging.Record
				r.Op = trace.OpBarRel
				r.Block = uint32(b)
				r.Mask = 1<<uint(wpb) - 1
				recs = append(recs, r)
			}
		}
	case "contended":
		for it := 0; it < iters; it++ {
			for w := 0; w < warps; w++ {
				for i := 0; i < instrsPerSweep; i++ {
					base := uint64(i) * shadow.PageBytes / uint64(instrsPerSweep)
					recs = append(recs, mem(w, i, base, i%2 == 1))
				}
			}
		}
	}
	return recs
}

// shadowDrain runs one stream through a fresh single-worker detector
// and returns the drain time, the canonical digest and the shadow
// stats.
func shadowDrain(recs []logging.Record, opts core.Options) (time.Duration, string, shadow.MemStats) {
	det := core.New(detectGeo(), 0, opts)
	w := det.NewWorker()
	start := time.Now()
	for i := range recs {
		w.Handle(&recs[i])
	}
	d := time.Since(start)
	rep := det.Report()
	return d, rep.CanonicalDigest(), rep.Shadow
}

// shadowSweepStream generates the bounded-memory stream: every warp
// walks a long run of pages exactly once (coalesced writes), so the
// unbounded shadow's footprint grows linearly with the sweep while the
// bounded shadow must evict cold pages as it goes.
func shadowSweepStream(pages int) []logging.Record {
	geo := detectGeo()
	wpb := geo.WarpsPerBlock()
	warps := geo.Blocks * wpb
	recsPerPage := int(uint64(shadow.PageBytes) / 128)
	recs := make([]logging.Record, 0, pages*recsPerPage)
	for p := 0; p < pages; p++ {
		w := p % warps
		window := uint64(p) * shadow.PageBytes
		for i := 0; i < recsPerPage; i++ {
			var r logging.Record
			r.Warp = uint32(w)
			r.Block = uint32(w / wpb)
			r.Space = logging.SpaceGlobal
			r.Size = 4
			r.PC = uint32(i + 1)
			r.Op = trace.OpWrite
			r.Mask = ^uint32(0)
			base := window + uint64(i)*128
			for lane := 0; lane < 32; lane++ {
				r.Addrs[lane] = base + uint64(lane)*4
				r.Vals[lane] = uint64(lane)
			}
			r.Classify()
			recs = append(recs, r)
		}
	}
	return recs
}

// ShadowBench runs the adaptive-shadow A/B experiment: each ownership
// mix's stream is drained through the span baseline and the ownership
// fast path, best-of-repeats, with canonical-digest equality checked
// every run; then the page sweep is drained with and without a byte cap
// a quarter of its unbounded footprint.
func ShadowBench(opts ShadowOptions) (*ShadowResult, error) {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 5
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 200
	}
	res := &ShadowResult{DigestsEqual: true}
	for _, mix := range []string{"private", "blockowned", "contended"} {
		recs := shadowStream(mix, iters)
		pt := ShadowPoint{Mix: mix, Records: len(recs), DigestsEqual: true}
		var baseBest, ownBest time.Duration
		var ownStats shadow.MemStats
		for rep := 0; rep < repeats; rep++ {
			bd, bdig, _ := shadowDrain(recs, core.Options{})
			od, odig, ost := shadowDrain(recs, core.Options{Ownership: true})
			if rep == 0 || bd < baseBest {
				baseBest = bd
			}
			if rep == 0 || od < ownBest {
				ownBest = od
			}
			if bdig != odig {
				pt.DigestsEqual = false
			}
			ownStats = ost
		}
		pt.BaseNS = float64(baseBest.Nanoseconds())
		pt.OwnNS = float64(ownBest.Nanoseconds())
		if pt.BaseNS > 0 {
			pt.BaseRecordsPerSec = float64(pt.Records) / pt.BaseNS * 1e9
		}
		if pt.OwnNS > 0 {
			pt.OwnRecordsPerSec = float64(pt.Records) / pt.OwnNS * 1e9
			pt.Speedup = pt.BaseNS / pt.OwnNS
		}
		if pt.Records > 0 {
			pt.OwnedFastFrac = float64(ownStats.OwnedFast) / float64(pt.Records)
		}
		pt.Claims = ownStats.Claims
		pt.Promotions = ownStats.Promotions
		pt.Inflations = ownStats.Inflations
		if mix == "private" {
			res.PrivateSpeedup = pt.Speedup
		}
		res.DigestsEqual = res.DigestsEqual && pt.DigestsEqual
		res.Points = append(res.Points, pt)
	}

	// Bounded half: sweep enough pages that the unbounded footprint is
	// 4x the cap (granularity 4 keeps the absolute sizes modest).
	const sweepPages = 64
	sweep := shadowSweepStream(sweepPages)
	_, _, free := shadowDrain(sweep, core.Options{Granularity: 4})
	capBytes := free.PeakResidentBytes / 4
	_, _, bound := shadowDrain(sweep, core.Options{Granularity: 4, ShadowCapBytes: capBytes})
	regionBytes := free.PeakResidentBytes / sweepPages
	res.Bounded = ShadowBoundedPoint{
		Records:            len(sweep),
		CapBytes:           capBytes,
		UnboundedPeakBytes: free.PeakResidentBytes,
		BoundedPeakBytes:   bound.PeakResidentBytes,
		Evictions:          bound.Evictions,
		LiveEvictions:      bound.LiveEvictions,
		PrecisionDegraded:  bound.PrecisionDegraded,
		CapHeld:            bound.PeakResidentBytes <= capBytes+regionBytes,
	}
	return res, nil
}
