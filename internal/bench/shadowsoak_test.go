package bench

import (
	"fmt"
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/logging"
	"barracuda/internal/shadow"
)

// maxRegionBytes returns the resident footprint of one full global page
// region at granularity 1 — the worst-case transient overshoot of the
// bounded shadow (makeRoom runs before the allocation publishes, so a
// single in-flight allocation can exceed the cap by at most one region
// when nothing is evictable).
func maxRegionBytes(t *testing.T) int64 {
	t.Helper()
	m := shadow.New(1, 0)
	r, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, 0)
	return r.RegionBytes()
}

// TestBoundedShadowSoak replays the full 26-benchmark suite under a
// shadow byte cap a fraction of the biggest benchmarks' natural
// footprint, one detector session per benchmark, single queue (the
// deterministic schedule). The contract:
//
//   - the cap holds: peak resident bytes never exceed it by more than
//     one transient region allocation;
//   - eviction is honest: PrecisionDegraded is reported exactly when a
//     live region (one holding epochs) was discarded;
//   - reports stay correct on non-evicted state: with no live eviction
//     the canonical report is byte-identical to the unbounded run, and
//     with live evictions the detector may only MISS races (discarded
//     epochs pass every check), never invent them;
//   - the cap is doing real work: at least one benchmark's unbounded
//     shadow exceeds the cap by >= 4x, and the soak as a whole evicts.
func TestBoundedShadowSoak(t *testing.T) {
	if raceDetectorEnabled {
		// The soak is single-queue and deterministic, so the race
		// detector adds no interleaving coverage here — concurrent
		// bounded-shadow traffic is exercised under -race by
		// TestBoundedShadowEquivalence (bugsuite, 4 queues). Replaying
		// all 26 benchmarks twice under the ~10x slowdown would blow
		// the package's default test timeout.
		t.Skip("deterministic single-queue soak skipped under -race")
	}
	const capBytes = int64(64 << 20)
	slack := maxRegionBytes(t)

	var maxUnboundedPeak int64
	var totalEvictions, totalLiveEvictions uint64
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			free, err := Detect(b, detector.Config{Queues: 1})
			if err != nil {
				t.Fatal(err)
			}
			if p := free.Report.Shadow.PeakResidentBytes; p > maxUnboundedPeak {
				maxUnboundedPeak = p
			}

			bound, err := Detect(b, detector.Config{Queues: 1, ShadowCapBytes: capBytes})
			if err != nil {
				t.Fatal(err)
			}
			sh := bound.Report.Shadow
			totalEvictions += sh.Evictions
			totalLiveEvictions += sh.LiveEvictions

			if sh.PeakResidentBytes > capBytes+slack {
				t.Errorf("cap violated: peak resident %d > cap %d + slack %d",
					sh.PeakResidentBytes, capBytes, slack)
			}
			if sh.PrecisionDegraded != (sh.LiveEvictions > 0) {
				t.Errorf("PrecisionDegraded = %t but LiveEvictions = %d",
					sh.PrecisionDegraded, sh.LiveEvictions)
			}
			if bound.Report.PrecisionDegraded != sh.PrecisionDegraded {
				t.Errorf("report-level PrecisionDegraded = %t disagrees with shadow stats %t",
					bound.Report.PrecisionDegraded, sh.PrecisionDegraded)
			}
			if sh.LiveEvictions == 0 {
				if free.Report.CanonicalDigest() != bound.Report.CanonicalDigest() {
					t.Errorf("no live state was discarded, yet reports diverged:\n--- unbounded ---\n%s--- bounded ---\n%s",
						free.Report.CanonicalDigest(), bound.Report.CanonicalDigest())
				}
				return
			}
			// Live evictions: the bounded run may miss races whose epochs
			// were discarded, but every race it does report must be one
			// the unbounded run reports too.
			seen := map[string]bool{}
			for _, rc := range free.Report.Races {
				seen[fmt.Sprintf("%+v", rc)] = true
			}
			for _, rc := range bound.Report.Races {
				if !seen[fmt.Sprintf("%+v", rc)] {
					t.Errorf("bounded run invented a race the unbounded run never saw: %+v", rc)
				}
			}
		})
	}

	if maxUnboundedPeak < 4*capBytes {
		t.Errorf("soak is too gentle: max unbounded peak %d < 4x cap %d; tighten the cap",
			maxUnboundedPeak, capBytes)
	}
	if totalEvictions == 0 {
		t.Error("soak never evicted: the cap did no work")
	}
	if totalLiveEvictions == 0 {
		t.Error("soak never discarded live state: the degradation path went unexercised")
	}
}
