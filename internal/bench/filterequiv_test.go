package bench

import (
	"testing"

	"barracuda/internal/detector"
)

// TestFilterBenchmarkEquivalence is the benchmark-suite half of the
// producer-filter correctness contract (the bug-suite half lives in
// internal/bugsuite/filter_test.go): every Table 1 benchmark, detected
// live with producer-side epoch filtering on, must produce the same
// canonical report as the unfiltered baseline with an identical
// detector-side record count — at one queue and four, and (long mode)
// at warp size 5, where partial masks change which records qualify as
// coalesced and hence suppressible.
func TestFilterBenchmarkEquivalence(t *testing.T) {
	warpSizes := []int{0}
	queueCounts := []int{1, 4}
	if !testing.Short() {
		warpSizes = []int{0, 5}
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, ws := range warpSizes {
				for _, q := range queueCounts {
					type run struct {
						digest string
						seen   uint64
					}
					runs := map[bool]run{}
					for _, filter := range []bool{false, true} {
						s, launch, err := session(b, detector.Config{Queues: q, ProducerFilter: filter})
						if err != nil {
							t.Fatal(err)
						}
						launch.WarpSize = ws
						res, err := s.Detect("main", launch)
						if err != nil {
							t.Fatalf("detect (ws=%d q=%d filter=%v): %v", ws, q, filter, err)
						}
						runs[filter] = run{res.Report.CanonicalDigest(), res.Report.RecordsSeen}
					}
					if runs[false].digest != runs[true].digest {
						t.Errorf("canonical digest diverged (ws=%d q=%d):\n--- baseline ---\n%s--- filtered ---\n%s",
							ws, q, runs[false].digest, runs[true].digest)
					}
					if runs[false].seen != runs[true].seen {
						t.Errorf("RecordsSeen diverged (ws=%d q=%d): baseline %d, filtered %d",
							ws, q, runs[false].seen, runs[true].seen)
					}
				}
			}
		})
	}
}
