package bench

import (
	"fmt"
	"strings"
	"time"

	"barracuda/internal/core"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
	"barracuda/internal/ptx"
)

// session opens a detector session for a benchmark.
func session(b *Benchmark, cfg detector.Config) (*detector.Session, gpusim.LaunchConfig, error) {
	s, err := detector.OpenPTX(b.PTX(), cfg)
	if err != nil {
		return nil, gpusim.LaunchConfig{}, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	var args []uint64
	for _, sz := range b.Buffers() {
		a, err := s.Dev.Alloc(sz)
		if err != nil {
			return nil, gpusim.LaunchConfig{}, err
		}
		args = append(args, a)
	}
	launch := gpusim.LaunchConfig{Grid: b.Grid, Block: b.Block, Args: args}
	return s, launch, nil
}

// Detect runs a benchmark under the detector and returns the result.
func Detect(b *Benchmark, cfg detector.Config) (*detector.Result, error) {
	s, launch, err := session(b, cfg)
	if err != nil {
		return nil, err
	}
	return s.Detect("main", launch)
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Name         string
	StaticInstrs int
	Threads      int
	MemMB        float64
	RacesFound   int
	RaceSpace    string
	// Paper-reported columns for side-by-side comparison.
	PaperStatic  int
	PaperThreads int
	PaperMemMB   int
	PaperRaces   string
}

// Table1 regenerates Table 1: per-benchmark static instructions, total
// threads, global memory, and races found by the detector.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range All() {
		m, err := ptx.Parse(b.PTX())
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", b.Name, err)
		}
		res, err := Detect(b, detector.Config{})
		if err != nil {
			return nil, err
		}
		space := ""
		for _, r := range res.Report.Races {
			switch r.Space {
			case logging.SpaceShared:
				if space == "global" {
					space = "mixed"
				} else if space != "mixed" {
					space = "shared"
				}
			case logging.SpaceGlobal:
				if space == "shared" {
					space = "mixed"
				} else if space != "mixed" {
					space = "global"
				}
			}
		}
		rows = append(rows, Table1Row{
			Name:         b.Name,
			StaticInstrs: m.StaticInstrCount(),
			Threads:      b.Threads(),
			MemMB:        float64(b.MemBytes()) / (1 << 20),
			RacesFound:   res.Report.RaceCount(),
			RaceSpace:    space,
			PaperStatic:  b.PaperStatic,
			PaperThreads: b.PaperThreads,
			PaperMemMB:   b.PaperMemMB,
			PaperRaces:   b.PaperRaces,
		})
	}
	return rows, nil
}

// Fig9Row is one bar group of Figure 9.
type Fig9Row struct {
	Name        string
	Unoptimized float64 // fraction of static instructions instrumented, no pruning
	Optimized   float64 // with the intra-basic-block pruning
	Static      float64 // with the inter-block static pruner on top
}

// Fig9 regenerates Figure 9: the fraction of static PTX instructions
// instrumented with no pruning, with the paper's intra-block pruning,
// and with the dataflow-driven static pruner stacked on top. One
// instrumentation pass with StaticPrune computes all three columns.
func Fig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, b := range All() {
		s, err := detector.OpenPTX(b.PTX(), detector.Config{StaticPrune: true})
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", b.Name, err)
		}
		t := instrTotals(s)
		rows = append(rows, Fig9Row{
			Name:        b.Name,
			Unoptimized: t.FracInstrumentedNoOpt(),
			Optimized:   t.FracInstrumented(),
			Static:      t.FracInstrumentedStatic(),
		})
	}
	return rows, nil
}

func instrTotals(s *detector.Session) statsLike {
	var t statsLike
	for _, st := range s.Stats {
		t.Static += st.Static
		t.Instrumented += st.Instrumented
		t.InstrumentedNo += st.InstrumentedNo
		t.InstrumentedStatic += st.InstrumentedStatic
	}
	return t
}

type statsLike struct {
	Static, Instrumented, InstrumentedNo, InstrumentedStatic int
}

func (s statsLike) FracInstrumented() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.Instrumented) / float64(s.Static)
}

func (s statsLike) FracInstrumentedNoOpt() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.InstrumentedNo) / float64(s.Static)
}

func (s statsLike) FracInstrumentedStatic() float64 {
	if s.Static == 0 {
		return 0
	}
	return float64(s.InstrumentedStatic) / float64(s.Static)
}

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	Name     string
	Native   time.Duration
	Detected time.Duration
	Overhead float64 // Detected / Native
}

// Fig10 regenerates Figure 10: the runtime overhead of detection
// normalized to native execution.
func Fig10() ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, b := range All() {
		s, launch, err := session(b, detector.Config{})
		if err != nil {
			return nil, err
		}
		_, nat, err := s.RunNative("main", launch)
		if err != nil {
			return nil, fmt.Errorf("bench %s native: %w", b.Name, err)
		}
		res, err := s.Detect("main", launch)
		if err != nil {
			return nil, fmt.Errorf("bench %s detect: %w", b.Name, err)
		}
		ov := 0.0
		if nat > 0 {
			ov = float64(res.Duration) / float64(nat)
		}
		rows = append(rows, Fig10Row{
			Name:     b.Name,
			Native:   nat,
			Detected: res.Duration,
			Overhead: ov,
		})
	}
	return rows, nil
}

// VerifyRaces checks a detection result against the benchmark's
// engineered ground truth and returns a diagnostic error when they
// disagree.
func VerifyRaces(b *Benchmark, rep *core.Report) error {
	if rep.RaceCount() != b.ExpectRaces {
		var names []string
		for _, r := range rep.Races {
			names = append(names, r.String())
		}
		return fmt.Errorf("bench %s: %d races found, want %d:\n%s",
			b.Name, rep.RaceCount(), b.ExpectRaces, strings.Join(names, "\n"))
	}
	for _, r := range rep.Races {
		got := "global"
		if r.Space == logging.SpaceShared {
			got = "shared"
		}
		if b.RaceSpace != "" && got != b.RaceSpace {
			return fmt.Errorf("bench %s: race in %s memory, want %s: %v", b.Name, got, b.RaceSpace, r)
		}
	}
	return nil
}
