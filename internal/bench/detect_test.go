package bench

import (
	"testing"

	"barracuda/internal/detector"
)

// TestDetectBenchSmoke: the A/B experiment runs, every mix's reports
// are identical between the span fast path and the per-cell baseline,
// and the coalesced mix is not slower under spans.
func TestDetectBenchSmoke(t *testing.T) {
	res, err := DetectBench(DetectOptions{Repeats: 2, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("expected 3 mixes, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.DigestsEqual {
			t.Errorf("mix %s: reports diverged between span and per-cell paths", p.Mix)
		}
		if p.Records == 0 || p.CellNS == 0 || p.SpanNS == 0 {
			t.Errorf("mix %s: empty measurement: %+v", p.Mix, p)
		}
	}
	if res.CoalescedSpeedup < 1.0 {
		t.Errorf("coalesced mix slower under spans: speedup %.2f < 1.0", res.CoalescedSpeedup)
	}
}

// TestSpanReplayEquivalence is the benchmark-suite half of the span
// correctness contract (the bug-suite half lives in
// internal/bugsuite/span_test.go): every Table 1 benchmark's captured
// record stream, replayed through the multi-queue transport, must
// produce the same canonical report with the span fast path as with
// the per-cell baseline — at one queue and four, and (long mode) at
// warp size 5, where partial masks exercise classification rejection
// and span demotion.
func TestSpanReplayEquivalence(t *testing.T) {
	warpSizes := []int{0}
	queueCounts := []int{1, 4}
	if !testing.Short() {
		warpSizes = []int{0, 5}
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, ws := range warpSizes {
				s, launch, err := session(b, detector.Config{})
				if err != nil {
					t.Fatal(err)
				}
				launch.WarpSize = ws
				cap, err := s.Capture("main", launch)
				if err != nil {
					t.Fatalf("capture (ws=%d): %v", ws, err)
				}
				for _, q := range queueCounts {
					digs := map[bool]string{}
					for _, perCell := range []bool{true, false} {
						res, err := detector.Replay(cap, detector.Config{Queues: q, PerCellShadow: perCell})
						if err != nil {
							t.Fatalf("replay (ws=%d q=%d perCell=%v): %v", ws, q, perCell, err)
						}
						digs[perCell] = res.Report.CanonicalDigest()
					}
					if digs[true] != digs[false] {
						t.Errorf("canonical digest diverged (ws=%d q=%d):\n--- per-cell ---\n%s--- span ---\n%s",
							ws, q, digs[true], digs[false])
					}
				}
			}
		})
	}
}
