package bench

import "testing"

// TestShadowBenchSmoke: the adaptive-shadow A/B experiment runs, every
// mix's reports are identical between the ownership fast path and the
// span baseline, the private mix actually engages the tier, and the
// bounded sweep holds its cap.
func TestShadowBenchSmoke(t *testing.T) {
	res, err := ShadowBench(ShadowOptions{Repeats: 2, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("expected 3 mixes, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.DigestsEqual {
			t.Errorf("mix %s: reports diverged between ownership and baseline paths", p.Mix)
		}
		if p.Records == 0 || p.BaseNS == 0 || p.OwnNS == 0 {
			t.Errorf("mix %s: empty measurement: %+v", p.Mix, p)
		}
		switch p.Mix {
		case "private":
			if p.OwnedFastFrac < 0.9 {
				t.Errorf("private mix: ownership tier absorbed only %.0f%% of records", p.OwnedFastFrac*100)
			}
			if p.Inflations != 0 {
				t.Errorf("private mix inflated %d exclusively-owned regions", p.Inflations)
			}
		case "blockowned":
			if p.Promotions == 0 {
				t.Error("blockowned mix never promoted a warp-owned region to block ownership")
			}
		case "contended":
			if p.Inflations == 0 {
				t.Error("contended mix never inflated: the mix is not contending")
			}
		}
	}
	b := res.Bounded
	if !b.CapHeld {
		t.Errorf("bounded sweep exceeded its cap: peak %d, cap %d", b.BoundedPeakBytes, b.CapBytes)
	}
	if b.UnboundedPeakBytes < 4*b.CapBytes {
		t.Errorf("bounded sweep is too gentle: unbounded peak %d < 4x cap %d", b.UnboundedPeakBytes, b.CapBytes)
	}
	if b.Evictions == 0 {
		t.Error("bounded sweep never evicted")
	}
	if b.PrecisionDegraded != (b.LiveEvictions > 0) {
		t.Errorf("PrecisionDegraded = %t but LiveEvictions = %d", b.PrecisionDegraded, b.LiveEvictions)
	}
}
