//go:build race

package bench

// raceDetectorEnabled reports whether this test binary was built with
// -race, so wall-clock-heavy deterministic tests can stay within the
// package's default timeout under the ~10x race-detector slowdown.
const raceDetectorEnabled = true
