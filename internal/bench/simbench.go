package bench

import (
	"fmt"
	"runtime"
	"time"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/logging"
)

// SimPoint is one benchmark's A/B measurement of the two interpreter
// paths: the legacy lane-major baseline and the warp-vectorized fast
// path. Times are best-of-repeats for one instrumented launch with log
// emission into a discarding sink — the simulator-side cost the detector
// pipeline pays, with no consumer attached.
type SimPoint struct {
	Name         string
	WarpInstrs   uint64  // dynamic warp instructions per launch
	Records      uint64  // records emitted per launch
	LaneNS       float64 // lane-major launch time, ns
	WarpNS       float64 // warp-major launch time, ns
	Speedup      float64 // LaneNS / WarpNS
	DigestsEqual bool    // full-pipeline canonical reports match
}

// SimResult aggregates the suite-wide interpreter comparison, the
// BENCH_sim.json payload.
type SimResult struct {
	Points []SimPoint

	// Suite totals for one full pass (best-of-repeats per benchmark).
	WarpInstrs uint64
	Records    uint64
	LaneNS     float64
	WarpNS     float64

	LaneWarpInstrsPerSec float64
	WarpWarpInstrsPerSec float64
	LaneRecordsPerSec    float64
	WarpRecordsPerSec    float64
	LaneNSPerWarpInstr   float64
	WarpNSPerWarpInstr   float64

	// Heap allocations per warm launch, averaged over the suite: the
	// zero-alloc launch-state claim. Warm means the module was already
	// launched once, so compilation and (on the warp path) the arena are
	// populated.
	LaneAllocsPerLaunch float64
	WarpAllocsPerLaunch float64

	Speedup      float64 // suite warp-instrs/sec ratio, warp over lane
	AllocRatio   float64 // lane allocs/launch over warp allocs/launch
	DigestsEqual bool    // every benchmark's reports matched
}

// SimOptions tunes the interpreter A/B experiment.
type SimOptions struct {
	// Repeats is how many timed launches per path; the fastest is kept
	// (default 5).
	Repeats int
	// AllocLaunches is how many warm launches the allocation counter is
	// averaged over (default 8).
	AllocLaunches int
}

// simSink discards records; the experiment measures emission, not
// consumption.
type simSink struct{ n uint64 }

func (s *simSink) Emit(r *logging.Record) { s.n++ }

// simDigest runs one benchmark through the full detection pipeline on a
// fresh session (fresh device, zeroed buffers) with the given
// interpreter path and returns the canonical report digest.
func simDigest(b *Benchmark, laneMajor bool) (string, error) {
	s, launch, err := session(b, detector.Config{})
	if err != nil {
		return "", err
	}
	launch.LaneMajor = laneMajor
	res, err := s.Detect("main", launch)
	if err != nil {
		return "", fmt.Errorf("bench %s (laneMajor=%v): %w", b.Name, laneMajor, err)
	}
	return res.Report.CanonicalDigest(), nil
}

// simTime measures the best-of-repeats instrumented launch time of one
// path, returning the stats of the final launch.
func simTime(s *detector.Session, launch gpusim.LaunchConfig, laneMajor bool, repeats int) (time.Duration, gpusim.Stats, error) {
	launch.Sink = &simSink{}
	launch.EmitBranchEvents = true
	launch.LaneMajor = laneMajor
	// Warm-up: compile the kernel and populate the arena.
	if _, err := s.Instr.Launch("main", launch); err != nil {
		return 0, gpusim.Stats{}, err
	}
	var best time.Duration
	var stats gpusim.Stats
	for i := 0; i < repeats; i++ {
		start := time.Now()
		st, err := s.Instr.Launch("main", launch)
		d := time.Since(start)
		if err != nil {
			return 0, gpusim.Stats{}, err
		}
		if best == 0 || d < best {
			best = d
		}
		stats = st
	}
	return best, stats, nil
}

// simAllocs measures heap allocations per warm launch.
func simAllocs(s *detector.Session, launch gpusim.LaunchConfig, laneMajor bool, launches int) (float64, error) {
	launch.Sink = &simSink{}
	launch.EmitBranchEvents = true
	launch.LaneMajor = laneMajor
	if _, err := s.Instr.Launch("main", launch); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < launches; i++ {
		if _, err := s.Instr.Launch("main", launch); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(launches), nil
}

// Sim runs the warp-vectorized interpreter A/B experiment over the full
// benchmark suite.
func Sim(opts SimOptions) (*SimResult, error) {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 5
	}
	allocN := opts.AllocLaunches
	if allocN <= 0 {
		allocN = 8
	}
	res := &SimResult{DigestsEqual: true}
	var laneAllocs, warpAllocs float64
	for _, b := range All() {
		laneDig, err := simDigest(b, true)
		if err != nil {
			return nil, err
		}
		warpDig, err := simDigest(b, false)
		if err != nil {
			return nil, err
		}
		s, launch, err := session(b, detector.Config{})
		if err != nil {
			return nil, err
		}
		laneT, laneStats, err := simTime(s, launch, true, repeats)
		if err != nil {
			return nil, err
		}
		warpT, warpStats, err := simTime(s, launch, false, repeats)
		if err != nil {
			return nil, err
		}
		la, err := simAllocs(s, launch, true, allocN)
		if err != nil {
			return nil, err
		}
		wa, err := simAllocs(s, launch, false, allocN)
		if err != nil {
			return nil, err
		}
		if warpStats != laneStats {
			return nil, fmt.Errorf("bench %s: stats diverged between paths: lane %+v warp %+v",
				b.Name, laneStats, warpStats)
		}
		pt := SimPoint{
			Name:         b.Name,
			WarpInstrs:   warpStats.WarpInstrs,
			Records:      warpStats.Records,
			LaneNS:       float64(laneT.Nanoseconds()),
			WarpNS:       float64(warpT.Nanoseconds()),
			DigestsEqual: laneDig == warpDig,
		}
		if pt.WarpNS > 0 {
			pt.Speedup = pt.LaneNS / pt.WarpNS
		}
		res.Points = append(res.Points, pt)
		res.WarpInstrs += pt.WarpInstrs
		res.Records += pt.Records
		res.LaneNS += pt.LaneNS
		res.WarpNS += pt.WarpNS
		laneAllocs += la
		warpAllocs += wa
		res.DigestsEqual = res.DigestsEqual && pt.DigestsEqual
	}
	n := float64(len(res.Points))
	res.LaneAllocsPerLaunch = laneAllocs / n
	res.WarpAllocsPerLaunch = warpAllocs / n
	if res.LaneNS > 0 {
		res.LaneWarpInstrsPerSec = float64(res.WarpInstrs) / res.LaneNS * 1e9
		res.LaneRecordsPerSec = float64(res.Records) / res.LaneNS * 1e9
		res.LaneNSPerWarpInstr = res.LaneNS / float64(res.WarpInstrs)
	}
	if res.WarpNS > 0 {
		res.WarpWarpInstrsPerSec = float64(res.WarpInstrs) / res.WarpNS * 1e9
		res.WarpRecordsPerSec = float64(res.Records) / res.WarpNS * 1e9
		res.WarpNSPerWarpInstr = res.WarpNS / float64(res.WarpInstrs)
		res.Speedup = res.LaneNS / res.WarpNS
	}
	if res.WarpAllocsPerLaunch > 0 {
		res.AllocRatio = res.LaneAllocsPerLaunch / res.WarpAllocsPerLaunch
	}
	return res, nil
}
