package bench

import (
	"fmt"
	"time"

	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
)

// FilterPoint is one access mix's A/B measurement of producer-side
// epoch filtering: full live detection (simulate + instrument + detect)
// with the filter off against the same launch with it on. Times are
// best-of-repeats for Session.Detect end to end.
type FilterPoint struct {
	Mix     string `json:"mix"`
	Records uint64 `json:"records"` // detector-side records, unfiltered run

	BaseNS float64 `json:"base_ns"` // unfiltered detection time, ns
	FiltNS float64 `json:"filt_ns"` // filtered detection time, ns

	Speedup      float64 `json:"speedup"` // BaseNS / FiltNS
	DigestsEqual bool    `json:"digests_equal"`

	// Producer-filter telemetry from the filtered run.
	Probes          uint64  `json:"probes"`
	Hits            uint64  `json:"hits"`
	StaticElides    uint64  `json:"static_elides"`
	Suppressed      uint64  `json:"suppressed_records"`
	SuppressedFrac  float64 `json:"suppressed_frac"`  // of the unfiltered record count
	EmittedRecords  uint64  `json:"emitted_records"`  // records that still hit the queue
	FilteredRecords uint64  `json:"filtered_records"` // RecordsSeen of the filtered run (must equal Records)
}

// FilterResult aggregates the producer-filter experiment, the
// BENCH_filter.json payload.
type FilterResult struct {
	Points []FilterPoint `json:"points"`

	// LoopSpeedup is the speedup on the loop-heavy mix — the headline
	// number producer-side filtering exists for, and the one
	// `benchtab -filter -min-speedup` gates on.
	LoopSpeedup float64 `json:"loop_speedup"`
	// AdversarialOverhead is FiltNS/BaseNS - 1 on the no-repeat mix:
	// the honest cost of probing a filter that never hits.
	AdversarialOverhead float64 `json:"adversarial_overhead"`
	DigestsEqual        bool    `json:"digests_equal"`
}

// FilterOptions tunes the producer-filter experiment.
type FilterOptions struct {
	// Repeats is how many times each mix is detected per path; the
	// fastest run is kept (default 3 — these are full simulations).
	Repeats int
	// Iters scales the kernel loop trip counts (default 2048 — short
	// runs are wall-clock-noise-dominated and undersell both the win
	// and the honest adversarial overhead).
	Iters int
}

// filterMixPTX generates one mix's kernel. All three are race-free so
// the measurement is pure capture-path cost:
//
//	loop-heavy   — each thread re-reads its own 4 global words in a
//	  barrier-free loop: after the first pass every read is equivalent
//	  to one already logged in the interval, so the filter (and the
//	  static log-once tier) suppresses nearly the whole stream. The
//	  target of the `-min-speedup` gate.
//	barrier-dense — the loop body re-reads one word 8 times, then hits
//	  a block barrier: each barrier opens a new interval (the per-warp
//	  generation bump), so only the 7 within-interval repeats filter.
//	  This bounds what sync-heavy kernels keep of the win.
//	adversarial  — a sweep where every iteration reads a fresh address:
//	  no access is ever equivalent to a logged one, so every probe
//	  misses and the run pays pure filter overhead. This bounds the
//	  cost on streaming kernels.
func filterMixPTX(mix string, iters int) (src string, buffers []int) {
	switch mix {
	case "loop-heavy":
		// 4 private words per thread, re-read iters times.
		src = fmt.Sprintf(`.visible .entry main(.param .u64 in, .param .u64 out)
{
	.reg .u32 %%r<16>;
	.reg .u64 %%rd<8>;
	.reg .pred %%p<2>;
	ld.param.u64 %%rd1, [in];
	ld.param.u64 %%rd2, [out];
	mov.u32 %%r1, %%tid.x;
	mov.u32 %%r2, %%ctaid.x;
	mov.u32 %%r3, %%ntid.x;
	mad.lo.u32 %%r4, %%r2, %%r3, %%r1;
	mul.lo.u32 %%r5, %%r4, 16;
	cvt.u64.u32 %%rd3, %%r5;
	add.u64 %%rd4, %%rd1, %%rd3;
	mov.u32 %%r6, 0;
	mov.u32 %%r7, 0;
BODY:
	ld.global.u32 %%r8, [%%rd4];
	ld.global.u32 %%r9, [%%rd4+4];
	ld.global.u32 %%r10, [%%rd4+8];
	ld.global.u32 %%r11, [%%rd4+12];
	add.u32 %%r6, %%r6, %%r8;
	add.u32 %%r6, %%r6, %%r9;
	add.u32 %%r6, %%r6, %%r10;
	add.u32 %%r6, %%r6, %%r11;
	add.u32 %%r7, %%r7, 1;
	setp.lt.u32 %%p1, %%r7, %d;
	@%%p1 bra BODY;
	shl.b32 %%r12, %%r4, 2;
	cvt.u64.u32 %%rd5, %%r12;
	add.u64 %%rd6, %%rd2, %%rd5;
	st.global.u32 [%%rd6], %%r6;
	ret;
}`, iters)
		return src, []int{256 * 16, 256 * 4}
	case "barrier-dense":
		// The read address is offset by a value loaded from memory (zero
		// at runtime), so the static analysis cannot prove the site
		// loop-invariant and suppression must come from the dynamic
		// cache. Inner loop: 8 same-PC reads; outer loop: a block
		// barrier per interval.
		outer := iters / 8
		if outer < 1 {
			outer = 1
		}
		src = fmt.Sprintf(`.visible .entry main(.param .u64 in, .param .u64 out)
{
	.reg .u32 %%r<16>;
	.reg .u64 %%rd<8>;
	.reg .pred %%p<4>;
	ld.param.u64 %%rd1, [in];
	ld.param.u64 %%rd2, [out];
	mov.u32 %%r1, %%tid.x;
	mov.u32 %%r2, %%ctaid.x;
	mov.u32 %%r3, %%ntid.x;
	mad.lo.u32 %%r4, %%r2, %%r3, %%r1;
	shl.b32 %%r5, %%r4, 2;
	cvt.u64.u32 %%rd3, %%r5;
	add.u64 %%rd4, %%rd1, %%rd3;
	ld.global.u32 %%r6, [%%rd4];
	cvt.u64.u32 %%rd5, %%r6;
	add.u64 %%rd6, %%rd4, %%rd5;
	mov.u32 %%r7, 0;
	mov.u32 %%r8, 0;
OUTER:
	mov.u32 %%r9, 0;
INNER:
	ld.global.u32 %%r10, [%%rd6];
	add.u32 %%r7, %%r7, %%r10;
	add.u32 %%r9, %%r9, 1;
	setp.lt.u32 %%p1, %%r9, 8;
	@%%p1 bra INNER;
	bar.sync 0;
	add.u32 %%r8, %%r8, 1;
	setp.lt.u32 %%p2, %%r8, %d;
	@%%p2 bra OUTER;
	add.u64 %%rd7, %%rd2, %%rd3;
	st.global.u32 [%%rd7], %%r7;
	ret;
}`, outer)
		return src, []int{256 * 4, 256 * 4}
	case "adversarial":
		// Each iteration reads a fresh word: addr = in + (iter*N + gtid)*4.
		src = fmt.Sprintf(`.visible .entry main(.param .u64 in, .param .u64 out)
{
	.reg .u32 %%r<16>;
	.reg .u64 %%rd<8>;
	.reg .pred %%p<2>;
	ld.param.u64 %%rd1, [in];
	ld.param.u64 %%rd2, [out];
	mov.u32 %%r1, %%tid.x;
	mov.u32 %%r2, %%ctaid.x;
	mov.u32 %%r3, %%ntid.x;
	mad.lo.u32 %%r4, %%r2, %%r3, %%r1;
	mov.u32 %%r6, 0;
	mov.u32 %%r7, 0;
BODY:
	mad.lo.u32 %%r8, %%r7, 256, %%r4;
	shl.b32 %%r9, %%r8, 2;
	cvt.u64.u32 %%rd3, %%r9;
	add.u64 %%rd4, %%rd1, %%rd3;
	ld.global.u32 %%r10, [%%rd4];
	add.u32 %%r6, %%r6, %%r10;
	add.u32 %%r7, %%r7, 1;
	setp.lt.u32 %%p1, %%r7, %d;
	@%%p1 bra BODY;
	shl.b32 %%r11, %%r4, 2;
	cvt.u64.u32 %%rd5, %%r11;
	add.u64 %%rd6, %%rd2, %%rd5;
	st.global.u32 [%%rd6], %%r6;
	ret;
}`, iters)
		return src, []int{iters * 256 * 4, 256 * 4}
	}
	panic("unknown filter mix " + mix)
}

// filterDetect runs one mix end to end with the given filter setting
// and returns the wall time, digest and result.
func filterDetect(mix string, iters int, filter bool) (time.Duration, string, *detector.Result, error) {
	src, buffers := filterMixPTX(mix, iters)
	s, err := detector.OpenPTX(src, detector.Config{ProducerFilter: filter})
	if err != nil {
		return 0, "", nil, fmt.Errorf("filter mix %s: %w", mix, err)
	}
	var args []uint64
	for _, sz := range buffers {
		a, err := s.Dev.Alloc(sz)
		if err != nil {
			return 0, "", nil, err
		}
		args = append(args, a)
	}
	launch := gpusim.LaunchConfig{Grid: gpusim.Dim3{X: 4}, Block: gpusim.Dim3{X: 64}, Args: args}
	start := time.Now()
	res, err := s.Detect("main", launch)
	if err != nil {
		return 0, "", nil, fmt.Errorf("filter mix %s: %w", mix, err)
	}
	return time.Since(start), res.Report.CanonicalDigest(), res, nil
}

// FilterBench runs the producer-filter A/B experiment: each mix is
// detected live with the filter off and on, best-of-repeats, with
// canonical-digest and record-count equality checked every run.
func FilterBench(opts FilterOptions) (*FilterResult, error) {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 2048
	}
	res := &FilterResult{DigestsEqual: true}
	for _, mix := range []string{"loop-heavy", "barrier-dense", "adversarial"} {
		pt := FilterPoint{Mix: mix, DigestsEqual: true}
		var baseBest, filtBest time.Duration
		for rep := 0; rep < repeats; rep++ {
			bd, bdig, base, err := filterDetect(mix, iters, false)
			if err != nil {
				return nil, err
			}
			fd, fdig, filt, err := filterDetect(mix, iters, true)
			if err != nil {
				return nil, err
			}
			if rep == 0 || bd < baseBest {
				baseBest = bd
			}
			if rep == 0 || fd < filtBest {
				filtBest = fd
			}
			if bdig != fdig || base.Report.RecordsSeen != filt.Report.RecordsSeen {
				pt.DigestsEqual = false
			}
			pt.Records = base.Report.RecordsSeen
			f := filt.SimStats.Filter
			pt.Probes, pt.Hits, pt.StaticElides = f.Probes, f.Hits, f.StaticElides
			pt.Suppressed = f.Suppressed()
			pt.FilteredRecords = filt.Report.RecordsSeen
			pt.EmittedRecords = filt.Report.RecordsSeen - pt.Suppressed
		}
		pt.BaseNS = float64(baseBest.Nanoseconds())
		pt.FiltNS = float64(filtBest.Nanoseconds())
		if pt.FiltNS > 0 {
			pt.Speedup = pt.BaseNS / pt.FiltNS
		}
		if pt.Records > 0 {
			pt.SuppressedFrac = float64(pt.Suppressed) / float64(pt.Records)
		}
		switch mix {
		case "loop-heavy":
			res.LoopSpeedup = pt.Speedup
		case "adversarial":
			if pt.Speedup > 0 {
				res.AdversarialOverhead = 1/pt.Speedup - 1
			}
		}
		res.DigestsEqual = res.DigestsEqual && pt.DigestsEqual
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
