//go:build !race

package bench

const raceDetectorEnabled = false
