package bench

import (
	"sync"

	"barracuda/internal/gpusim"
)

// Benchmark describes one synthetic stand-in for a paper benchmark.
type Benchmark struct {
	Name  string
	Suite string // rodinia | shoc | gpu-tm | sdk | cub
	Spec  Spec
	Grid  gpusim.Dim3
	Block gpusim.Dim3

	// Paper-reported reference values (Table 1), for EXPERIMENTS.md
	// side-by-side reporting. PaperRaces is the paper's "races found"
	// cell, e.g. "3 global".
	PaperStatic  int
	PaperThreads int
	PaperMemMB   int
	PaperRaces   string

	// Engineered ground truth for our scaled reproduction.
	ExpectRaces int
	RaceSpace   string // "shared" | "global" | ""

	once sync.Once
	ptx  string
}

// PTX returns the generated kernel source (cached).
func (b *Benchmark) PTX() string {
	b.once.Do(func() { b.ptx = Generate(b.Spec) })
	return b.ptx
}

// Threads returns the launch's total thread count.
func (b *Benchmark) Threads() int { return b.Grid.Count() * b.Block.Count() }

// Buffers returns the sizes of the three kernel buffers (out, racy, aux).
func (b *Benchmark) Buffers() []int {
	out := b.Threads() * b.Spec.Slots() * 4
	racy := (b.Spec.RacyGlobal + 1) * 4
	return []int{out, racy, 64}
}

// MemBytes is the total global-memory footprint.
func (b *Benchmark) MemBytes() int64 {
	var t int64
	for _, n := range b.Buffers() {
		t += int64(n)
	}
	return t
}

// All returns the 26 benchmarks of Table 1. Thread counts are the
// paper's scaled down to laptop size (large kernels by 64x; the CUB
// samples, already tiny, keep their exact launch sizes).
func All() []*Benchmark {
	return []*Benchmark{
		{
			Name: "bfs", Suite: "rodinia",
			Spec: Spec{MemSites: 35, Arith: 160, Loops: 2, Private: 2},
			Grid: gpusim.D1(245), Block: gpusim.D1(64),
			PaperStatic: 281, PaperThreads: 1000448, PaperMemMB: 155,
		},
		{
			Name: "backprop", Suite: "rodinia",
			Spec: Spec{MemSites: 40, Arith: 150, Loops: 2, Private: 2, SharedComm: true},
			Grid: gpusim.D1(256), Block: gpusim.D1(64),
			PaperStatic: 272, PaperThreads: 1048576, PaperMemMB: 9,
		},
		{
			Name: "dwt2d", Suite: "rodinia",
			Spec: Spec{MemSites: 260, Arith: 2200, Loops: 6, Private: 8, SharedComm: true, RacyGlobal: 3},
			Grid: gpusim.D1(36), Block: gpusim.D1(64),
			PaperStatic: 35385, PaperThreads: 2304, PaperMemMB: 6644,
			PaperRaces: "3 global", ExpectRaces: 3, RaceSpace: "global",
		},
		{
			Name: "gaussian", Suite: "rodinia",
			Spec: Spec{MemSites: 25, Arith: 140, Loops: 2, Private: 1},
			Grid: gpusim.D1(256), Block: gpusim.D1(64),
			PaperStatic: 246, PaperThreads: 1048576, PaperMemMB: 124,
		},
		{
			Name: "hotspot", Suite: "rodinia",
			Spec: Spec{MemSites: 48, Arith: 200, Loops: 2, Private: 2, SharedComm: true},
			Grid: gpusim.D1(116), Block: gpusim.D1(64),
			PaperStatic: 338, PaperThreads: 473344, PaperMemMB: 119,
		},
		{
			Name: "hybridsort", Suite: "rodinia",
			Spec: Spec{MemSites: 75, Arith: 520, Loops: 2, Private: 2, SharedComm: true, RacyShared: 1},
			Grid: gpusim.D1(16), Block: gpusim.D1(32),
			PaperStatic: 906, PaperThreads: 32768, PaperMemMB: 252,
			PaperRaces: "1 shared", ExpectRaces: 1, RaceSpace: "shared",
		},
		{
			Name: "kmeans", Suite: "rodinia",
			Spec: Spec{MemSites: 36, Arith: 220, Loops: 3, Private: 2},
			Grid: gpusim.D1(121), Block: gpusim.D1(64),
			PaperStatic: 384, PaperThreads: 495616, PaperMemMB: 252,
		},
		{
			Name: "lavamd", Suite: "rodinia",
			Spec: Spec{MemSites: 95, Arith: 760, Loops: 4, Private: 3, SharedComm: true},
			Grid: gpusim.D1(16), Block: gpusim.D1(128),
			PaperStatic: 1320, PaperThreads: 128000, PaperMemMB: 965,
		},
		{
			Name: "needle", Suite: "rodinia",
			Spec: Spec{MemSites: 85, Arith: 580, Loops: 2, Private: 2, SharedComm: true},
			Grid: gpusim.D1(121), Block: gpusim.D1(64),
			PaperStatic: 1006, PaperThreads: 495616, PaperMemMB: 64,
		},
		{
			Name: "nn", Suite: "rodinia",
			Spec: Spec{MemSites: 16, Arith: 130, Loops: 1, Private: 1},
			Grid: gpusim.D1(21), Block: gpusim.D1(32),
			PaperStatic: 234, PaperThreads: 43008, PaperMemMB: 188,
		},
		{
			Name: "pathfinder", Suite: "rodinia",
			Spec: Spec{MemSites: 48, Arith: 160, Loops: 2, Private: 2, SharedComm: true, RacyShared: 7},
			Grid: gpusim.D1(29), Block: gpusim.D1(64),
			PaperStatic: 285, PaperThreads: 118528, PaperMemMB: 155,
			PaperRaces: "7 shared", ExpectRaces: 7, RaceSpace: "shared",
		},
		{
			Name: "streamcluster", Suite: "rodinia",
			Spec: Spec{MemSites: 26, Arith: 170, Loops: 2, Private: 2},
			Grid: gpusim.D1(16), Block: gpusim.D1(64),
			PaperStatic: 299, PaperThreads: 65536, PaperMemMB: 188,
		},
		{
			Name: "bfs_shoc", Suite: "shoc",
			Spec: Spec{MemSites: 60, Arith: 420, Loops: 2, Private: 2, RacyGlobal: 3},
			Grid: gpusim.D1(16), Block: gpusim.D1(64),
			PaperStatic: 770, PaperThreads: 1024, PaperMemMB: 68,
			PaperRaces: "3 global", ExpectRaces: 3, RaceSpace: "global",
		},
		{
			Name: "hashtable", Suite: "gpu-tm",
			Spec: Spec{MemSites: 32, Arith: 90, Loops: 1, Private: 1, Atomics: 2, RacyGlobal: 3},
			Grid: gpusim.D1(2), Block: gpusim.D1(32),
			PaperStatic: 193, PaperThreads: 64, PaperMemMB: 103,
			PaperRaces: "3 global", ExpectRaces: 3, RaceSpace: "global",
		},
		{
			Name: "dxtc", Suite: "sdk",
			Spec: Spec{MemSites: 160, Arith: 900, Loops: 3, Private: 2, SharedComm: true, RacyShared: 120},
			Grid: gpusim.D1(256), Block: gpusim.D1(64),
			PaperStatic: 1578, PaperThreads: 1048576, PaperMemMB: 17,
			PaperRaces: "120 shared", ExpectRaces: 120, RaceSpace: "shared",
		},
		{
			Name: "threadfencereduction", Suite: "sdk",
			Spec: Spec{MemSites: 95, Arith: 800, Loops: 2, Private: 2, SharedComm: true,
				Atomics: 1, Fences: true, RacyShared: 12},
			Grid: gpusim.D1(256), Block: gpusim.D1(64),
			PaperStatic: 5037, PaperThreads: 16384, PaperMemMB: 787,
			PaperRaces: "12 shared", ExpectRaces: 12, RaceSpace: "shared",
		},
		{
			Name: "block_radix_sort", Suite: "cub",
			Spec: Spec{MemSites: 65, Arith: 620, Loops: 3, Private: 2, SharedComm: true},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2174, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "block_reduce", Suite: "cub",
			Spec: Spec{MemSites: 75, Arith: 680, Loops: 3, Private: 2, SharedComm: true},
			Grid: gpusim.D1(1), Block: gpusim.D1(1024),
			PaperStatic: 2456, PaperThreads: 1024, PaperMemMB: 70,
		},
		{
			Name: "block_scan", Suite: "cub",
			Spec: Spec{MemSites: 95, Arith: 920, Loops: 3, Private: 2, SharedComm: true},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 4451, PaperThreads: 128, PaperMemMB: 118,
		},
		{
			Name: "device_partition_flagged", Suite: "cub",
			Spec: Spec{MemSites: 52, Arith: 540, Loops: 2, Private: 2},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2834, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "device_reduce", Suite: "cub",
			Spec: Spec{MemSites: 48, Arith: 500, Loops: 2, Private: 2, Atomics: 1},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2397, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "device_scan", Suite: "cub",
			Spec: Spec{MemSites: 40, Arith: 400, Loops: 2, Private: 2},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 1661, PaperThreads: 128, PaperMemMB: 65,
		},
		{
			Name: "device_select_flagged", Suite: "cub",
			Spec: Spec{MemSites: 50, Arith: 520, Loops: 2, Private: 2},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2615, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "device_select_if", Suite: "cub",
			Spec: Spec{MemSites: 49, Arith: 510, Loops: 2, Private: 2},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2508, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "device_select_unique", Suite: "cub",
			Spec: Spec{MemSites: 48, Arith: 505, Loops: 2, Private: 2},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 2484, PaperThreads: 128, PaperMemMB: 66,
		},
		{
			Name: "device_sort_find_non_trivial_runs", Suite: "cub",
			Spec: Spec{MemSites: 115, Arith: 1150, Loops: 3, Private: 2, SharedComm: true},
			Grid: gpusim.D1(1), Block: gpusim.D1(128),
			PaperStatic: 16479, PaperThreads: 128, PaperMemMB: 66,
		},
	}
}

// ByName returns the benchmark with the given name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
