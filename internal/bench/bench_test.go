package bench

import (
	"testing"

	"barracuda/internal/detector"
	"barracuda/internal/ptx"
)

func TestAllBenchmarksParse(t *testing.T) {
	bs := All()
	if len(bs) != 26 {
		t.Fatalf("benchmarks = %d, want 26", len(bs))
	}
	for _, b := range bs {
		m, err := ptx.Parse(b.PTX())
		if err != nil {
			t.Errorf("%s: parse: %v", b.Name, err)
			continue
		}
		if m.StaticInstrCount() < 50 {
			t.Errorf("%s: suspiciously small kernel (%d instrs)", b.Name, m.StaticInstrCount())
		}
	}
}

func TestBenchmarkNamesUniqueAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if ByName(b.Name) == nil {
			t.Errorf("ByName(%q) = nil", b.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName on unknown name should be nil")
	}
}

// TestTable1Races verifies the engineered ground truth: each benchmark
// reports exactly the races Table 1 lists for it, in the right memory
// space, and clean benchmarks stay clean.
func TestTable1Races(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep in -short mode")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := Detect(b, detector.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyRaces(b, res.Report); err != nil {
				t.Error(err)
			}
			if len(res.Report.Divergences) != 0 {
				t.Errorf("unexpected barrier divergences: %v", res.Report.Divergences)
			}
		})
	}
}

func TestFig9FractionsSane(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 26 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Optimized <= 0 || r.Optimized > r.Unoptimized || r.Unoptimized > 0.5 {
			// The paper: "BARRACUDA never instruments more than half of
			// the instructions among our benchmarks."
			t.Errorf("%s: optimized %.3f unoptimized %.3f out of shape",
				r.Name, r.Optimized, r.Unoptimized)
		}
	}
}

func TestFig9PruningHelpsSomewhere(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	helped := 0
	for _, r := range rows {
		if r.Optimized < r.Unoptimized {
			helped++
		}
	}
	if helped == 0 {
		t.Error("pruning never removed a logging site")
	}
}

func TestDetectSmallBenchmarkEndToEnd(t *testing.T) {
	b := ByName("hashtable")
	res, err := Detect(b, detector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRaces(b, res.Report); err != nil {
		t.Fatal(err)
	}
	if res.SimStats.Records == 0 {
		t.Error("no records")
	}
}

func TestGenerateSpecVariants(t *testing.T) {
	specs := []Spec{
		{},
		{Arith: 10},
		{Arith: 10, Loops: 3, Private: 2},
		{SharedComm: true},
		{RacyShared: 2},
		{RacyGlobal: 2},
		{Atomics: 2, Fences: true},
		{Arith: 50, Loops: 2, Private: 2, SharedComm: true, RacyShared: 1, RacyGlobal: 1, Atomics: 1, Fences: true},
	}
	for i, s := range specs {
		if _, err := ptx.Parse(Generate(s)); err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite at several queue widths")
	}
	points, err := Scaling(ScalingOptions{Widths: []int{1, 2}, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Queues != 1 || points[1].Queues != 2 {
		t.Fatalf("points = %+v, want widths 1 and 2", points)
	}
	for _, p := range points {
		if !p.RacesEqual {
			t.Errorf("queues=%d: report diverged from the 1-queue baseline", p.Queues)
		}
		if p.Records == 0 || p.RecordsPerSec <= 0 {
			t.Errorf("queues=%d: empty measurement: %+v", p.Queues, p)
		}
	}
	if points[0].Speedup != 1 || points[0].Efficiency != 1 {
		t.Errorf("baseline point not normalized: %+v", points[0])
	}
}
