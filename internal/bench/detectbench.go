package bench

import (
	"math/bits"
	"time"

	"barracuda/internal/core"
	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

// DetectPoint is one access mix's A/B measurement of the two shadow
// paths: the coalesced-span fast path (the default) and the per-cell
// baseline (Options.PerCellShadow). Times are best-of-repeats for
// draining the mix's full record stream through one detector worker.
type DetectPoint struct {
	Mix          string
	Records      int
	LaneAccesses uint64 // sum of active lanes over all records

	CellNS float64 // per-cell baseline drain time, ns
	SpanNS float64 // span fast-path drain time, ns

	CellRecordsPerSec float64
	SpanRecordsPerSec float64
	CellNSPerAccess   float64 // ns per warp access (one record)
	SpanNSPerAccess   float64

	Speedup      float64 // CellNS / SpanNS
	DigestsEqual bool    // canonical reports match between paths
}

// DetectResult aggregates the consumer-side A/B experiment, the
// BENCH_detect.json payload.
type DetectResult struct {
	Points []DetectPoint

	// CoalescedSpeedup is the speedup on the fully-coalesced mix — the
	// headline number the span fast path exists for, and the one
	// `benchtab -detect -min-speedup` gates on.
	CoalescedSpeedup float64
	DigestsEqual     bool
}

// DetectOptions tunes the detection A/B experiment.
type DetectOptions struct {
	// Repeats is how many times each mix is drained per path; the
	// fastest drain is kept (default 5).
	Repeats int
	// Iters scales the stream length (instruction sweeps per warp,
	// default 200).
	Iters int
}

// detectGeo is the synthetic launch the mixes are generated for:
// 8 blocks of 128 threads, 32-lane warps — 32 warps total, each
// sweeping a private 4 KiB window of global memory so the streams are
// race-free and the measurement is pure shadow-path cost.
func detectGeo() ptvc.Geometry {
	return ptvc.Geometry{WarpSize: 32, BlockSize: 128, Blocks: 8}
}

const detectWindow = 4096 // bytes of global memory per warp

// detectStream generates one mix's record stream. kind selects the
// address pattern per warp instruction:
//
//	coalesced — lane i touches base+4i: one contiguous 128-byte run,
//	  the pattern GPU kernels are tuned for and the span fast path's
//	  target. Classify tags every record.
//	strided   — lane i touches base+8i (stride 2× the access size):
//	  never coalesced, both paths take the per-cell loop. This bounds
//	  the classifier's overhead on span-ineligible traffic.
//	divergent — scattered addresses and partial masks from a
//	  deterministic LCG: the worst case, also per-cell on both paths.
func detectStream(kind string, iters int) []logging.Record {
	geo := detectGeo()
	wpb := geo.WarpsPerBlock()
	warps := geo.Blocks * wpb
	instrsPerSweep := 8
	recs := make([]logging.Record, 0, warps*iters*instrsPerSweep)
	lcg := uint64(0x9E3779B97F4A7C15)
	rnd := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg >> 33
	}
	for it := 0; it < iters; it++ {
		for w := 0; w < warps; w++ {
			window := uint64(w) * detectWindow
			for i := 0; i < instrsPerSweep; i++ {
				var r logging.Record
				r.Warp = uint32(w)
				r.Block = uint32(w / wpb)
				r.Space = logging.SpaceGlobal
				r.Size = 4
				r.PC = uint32(i + 1)
				if i%2 == 0 {
					r.Op = trace.OpRead
				} else {
					r.Op = trace.OpWrite
				}
				switch kind {
				case "coalesced":
					r.Mask = ^uint32(0)
					base := window + uint64(i)*128
					for lane := 0; lane < 32; lane++ {
						r.Addrs[lane] = base + uint64(lane)*4
						r.Vals[lane] = uint64(lane)
					}
				case "strided":
					r.Mask = ^uint32(0)
					base := window + uint64(i)*256%detectWindow
					for lane := 0; lane < 32; lane++ {
						r.Addrs[lane] = window + (base+uint64(lane)*8)%detectWindow
						r.Vals[lane] = uint64(lane)
					}
				case "divergent":
					r.Mask = uint32(rnd()) | 1 // never empty
					for lane := 0; lane < 32; lane++ {
						if r.Mask&(1<<uint(lane)) == 0 {
							continue
						}
						r.Addrs[lane] = window + rnd()%(detectWindow/4)*4
						r.Vals[lane] = uint64(lane)
					}
				}
				r.Classify()
				recs = append(recs, r)
			}
		}
	}
	return recs
}

// detectDrain runs one mix's stream through a fresh detector (one
// worker, the single-queue consumer shape) and returns the drain time
// and the canonical report digest.
func detectDrain(recs []logging.Record, perCell bool) (time.Duration, string) {
	det := core.New(detectGeo(), 0, core.Options{PerCellShadow: perCell})
	w := det.NewWorker()
	start := time.Now()
	for i := range recs {
		w.Handle(&recs[i])
	}
	d := time.Since(start)
	return d, det.Report().CanonicalDigest()
}

// DetectBench runs the shadow-path A/B experiment: each mix's stream is
// drained through the per-cell baseline and the span fast path,
// best-of-repeats, with canonical-digest equality checked every run.
func DetectBench(opts DetectOptions) (*DetectResult, error) {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 5
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 200
	}
	res := &DetectResult{DigestsEqual: true}
	for _, mix := range []string{"coalesced", "strided", "divergent"} {
		recs := detectStream(mix, iters)
		var lanes uint64
		for i := range recs {
			lanes += uint64(bits.OnesCount32(recs[i].Mask))
		}
		pt := DetectPoint{Mix: mix, Records: len(recs), LaneAccesses: lanes, DigestsEqual: true}
		var cellBest, spanBest time.Duration
		for rep := 0; rep < repeats; rep++ {
			cd, cdig := detectDrain(recs, true)
			sd, sdig := detectDrain(recs, false)
			if rep == 0 || cd < cellBest {
				cellBest = cd
			}
			if rep == 0 || sd < spanBest {
				spanBest = sd
			}
			if cdig != sdig {
				pt.DigestsEqual = false
			}
		}
		pt.CellNS = float64(cellBest.Nanoseconds())
		pt.SpanNS = float64(spanBest.Nanoseconds())
		if pt.CellNS > 0 {
			pt.CellRecordsPerSec = float64(pt.Records) / pt.CellNS * 1e9
			pt.CellNSPerAccess = pt.CellNS / float64(pt.Records)
		}
		if pt.SpanNS > 0 {
			pt.SpanRecordsPerSec = float64(pt.Records) / pt.SpanNS * 1e9
			pt.SpanNSPerAccess = pt.SpanNS / float64(pt.Records)
			pt.Speedup = pt.CellNS / pt.SpanNS
		}
		if mix == "coalesced" {
			res.CoalescedSpeedup = pt.Speedup
		}
		res.DigestsEqual = res.DigestsEqual && pt.DigestsEqual
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
