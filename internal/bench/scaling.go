package bench

import (
	"fmt"
	"time"

	"barracuda/internal/detector"
)

// ScalingPoint is the aggregate transport+detection throughput of the
// whole benchmark suite at one queue width.
type ScalingPoint struct {
	Queues        int
	Records       int           // records replayed across the suite
	Duration      time.Duration // best-of-Repeats drain time, summed over benchmarks
	RecordsPerSec float64
	Speedup       float64 // vs the 1-queue point
	Efficiency    float64 // Speedup / Queues
	RacesEqual    bool    // every benchmark's canonical report matched 1 queue
}

// ScalingOptions tunes the scaling experiment.
type ScalingOptions struct {
	// Widths are the queue counts to measure (default 1, 2, 4, 8).
	Widths []int
	// Repeats is how many times each capture is replayed per width; the
	// fastest drain is kept (default 3). Replays are cheap — the kernel
	// is simulated once per benchmark, at capture time.
	Repeats int
}

// Scaling measures how detection throughput scales with the number of
// event queues. Each benchmark's instrumented record stream is captured
// once, then replayed through the multi-queue transport at every width,
// with one producer goroutine per queue (the hardware DMA model) and
// one batched consumer per queue. Alongside throughput it checks the
// determinism contract: the canonical report at every width must equal
// the 1-queue report.
//
// The 1-queue width is always measured (it is the speedup baseline) and
// is prepended if absent from Widths.
func Scaling(opts ScalingOptions) ([]ScalingPoint, error) {
	widths := opts.Widths
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	if widths[0] != 1 {
		widths = append([]int{1}, widths...)
	}
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 3
	}

	type workload struct {
		name string
		cap  *detector.Capture
	}
	var caps []workload
	for _, b := range All() {
		s, launch, err := session(b, detector.Config{})
		if err != nil {
			return nil, err
		}
		c, err := s.Capture("main", launch)
		if err != nil {
			return nil, fmt.Errorf("bench %s capture: %w", b.Name, err)
		}
		caps = append(caps, workload{b.Name, c})
	}

	baseline := make(map[string]string, len(caps))
	var points []ScalingPoint
	for _, q := range widths {
		pt := ScalingPoint{Queues: q, RacesEqual: true}
		for _, wl := range caps {
			best := time.Duration(0)
			for rep := 0; rep < repeats; rep++ {
				res, err := detector.Replay(wl.cap, detector.Config{Queues: q})
				if err != nil {
					return nil, fmt.Errorf("bench %s replay queues=%d: %w", wl.name, q, err)
				}
				if rep == 0 || res.Duration < best {
					best = res.Duration
				}
				dig := res.Report.CanonicalDigest()
				if q == 1 && rep == 0 {
					baseline[wl.name] = dig
				} else if dig != baseline[wl.name] {
					pt.RacesEqual = false
				}
			}
			pt.Records += len(wl.cap.Records)
			pt.Duration += best
		}
		if pt.Duration > 0 {
			pt.RecordsPerSec = float64(pt.Records) / pt.Duration.Seconds()
		}
		points = append(points, pt)
	}
	base := points[0]
	for i := range points {
		if base.RecordsPerSec > 0 {
			points[i].Speedup = points[i].RecordsPerSec / base.RecordsPerSec
		}
		points[i].Efficiency = points[i].Speedup / float64(points[i].Queues)
	}
	return points, nil
}
