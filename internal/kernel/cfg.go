// Package kernel builds the control-flow graph of a PTX kernel and computes
// the immediate post-dominators that GPUs use as branch reconvergence
// points. The SIMT-stack simulator (package gpusim) pushes divergent paths
// with the reconvergence PC taken from here, and the instrumentation
// framework (package instrument) inserts logging at convergence points
// (§4.1: "we also add logging calls to all branch convergence points").
package kernel

import (
	"fmt"

	"barracuda/internal/ptx"
)

// Block is one basic block: instructions [Start, End) of the flat stream.
type Block struct {
	Index int
	Start int
	End   int
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of one kernel.
type CFG struct {
	Kernel  *ptx.Kernel
	Instrs  []*ptx.Instr   // flattened instruction stream
	LabelAt map[string]int // label name -> instruction index it precedes
	Blocks  []*Block
	BlockOf []int // instruction index -> block index

	// IPDom maps block index -> immediate post-dominator block index;
	// the virtual exit node is len(Blocks), and unreachable blocks map
	// to -1.
	IPDom []int

	// Dom maps block index -> immediate (forward) dominator block index.
	// The entry block maps to itself; blocks unreachable from the entry
	// map to -1.
	Dom []int
}

// Build constructs the CFG and post-dominator tree for k.
func Build(k *ptx.Kernel) (*CFG, error) {
	c := &CFG{Kernel: k, LabelAt: make(map[string]int)}
	for _, st := range k.Body {
		if st.Label != "" {
			if _, dup := c.LabelAt[st.Label]; dup {
				return nil, fmt.Errorf("kernel %s: duplicate label %q", k.Name, st.Label)
			}
			c.LabelAt[st.Label] = len(c.Instrs)
			continue
		}
		c.Instrs = append(c.Instrs, st.Instr)
	}
	if len(c.Instrs) == 0 {
		return nil, fmt.Errorf("kernel %s: empty body", k.Name)
	}
	if err := c.splitBlocks(); err != nil {
		return nil, err
	}
	c.linkBlocks()
	c.computeIPDom()
	c.computeDom()
	return c, nil
}

// branchTarget returns the instruction index a bra jumps to.
func (c *CFG) branchTarget(in *ptx.Instr) (int, error) {
	if len(in.Args) != 1 || in.Args[0].Kind != ptx.OpndLabel {
		return 0, fmt.Errorf("line %d: bra needs one label operand", in.Line)
	}
	idx, ok := c.LabelAt[in.Args[0].Sym]
	if !ok {
		return 0, fmt.Errorf("line %d: undefined label %q", in.Line, in.Args[0].Sym)
	}
	return idx, nil
}

func isTerminator(in *ptx.Instr) bool {
	switch in.Op {
	case ptx.OpBra, ptx.OpRet, ptx.OpExit:
		return true
	}
	return false
}

func (c *CFG) splitBlocks() error {
	leader := make([]bool, len(c.Instrs)+1)
	leader[0] = true
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBra {
			t, err := c.branchTarget(in)
			if err != nil {
				return err
			}
			if t < len(leader) {
				leader[t] = true
			}
		}
		if isTerminator(in) && i+1 < len(c.Instrs) {
			leader[i+1] = true
		}
	}
	c.BlockOf = make([]int, len(c.Instrs))
	start := 0
	for i := 1; i <= len(c.Instrs); i++ {
		if i == len(c.Instrs) || leader[i] {
			b := &Block{Index: len(c.Blocks), Start: start, End: i}
			c.Blocks = append(c.Blocks, b)
			for j := start; j < i; j++ {
				c.BlockOf[j] = b.Index
			}
			start = i
		}
	}
	return nil
}

func (c *CFG) linkBlocks() {
	exit := len(c.Blocks) // virtual exit node
	addEdge := func(from, to int) {
		b := c.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
		if to != exit {
			c.Blocks[to].Preds = append(c.Blocks[to].Preds, from)
		}
	}
	for _, b := range c.Blocks {
		last := c.Instrs[b.End-1]
		switch {
		case last.Op == ptx.OpRet || last.Op == ptx.OpExit:
			addEdge(b.Index, exit)
		case last.Op == ptx.OpBra:
			t, _ := c.branchTarget(last) // validated in splitBlocks
			if t == len(c.Instrs) {
				addEdge(b.Index, exit)
			} else {
				addEdge(b.Index, c.BlockOf[t])
			}
			if last.Guard != nil { // conditional: fallthrough edge too
				if b.End == len(c.Instrs) {
					addEdge(b.Index, exit)
				} else {
					addEdge(b.Index, c.BlockOf[b.End])
				}
			}
		default:
			if b.End == len(c.Instrs) {
				addEdge(b.Index, exit)
			} else {
				addEdge(b.Index, c.BlockOf[b.End])
			}
		}
	}
}

// computeIPDom runs the Cooper–Harvey–Kennedy iterative dominance algorithm
// on the reversed CFG rooted at the virtual exit node.
func (c *CFG) computeIPDom() {
	n := len(c.Blocks)
	exit := n
	// Reverse post-order of the reversed CFG, starting from exit.
	// Predecessors in the reversed graph are Succs in the forward graph.
	order := make([]int, 0, n+1)
	seen := make([]bool, n+1)
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		if b != exit {
			for _, p := range c.Blocks[b].Preds {
				if !seen[p] {
					dfs(p)
				}
			}
		} else {
			// exit's reverse successors: every block with an edge to exit
			for _, blk := range c.Blocks {
				for _, s := range blk.Succs {
					if s == exit && !seen[blk.Index] {
						dfs(blk.Index)
					}
				}
			}
		}
		order = append(order, b)
	}
	dfs(exit)
	// order is post-order of reversed graph; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == exit {
				continue
			}
			// Reverse-graph predecessors of b = forward successors.
			newIdom := -1
			for _, s := range c.Blocks[b].Succs {
				if ipdom[s] == -1 && s != exit {
					continue
				}
				if s == exit || ipdom[s] != -1 {
					if newIdom == -1 {
						newIdom = s
					} else {
						newIdom = intersect(s, newIdom)
					}
				}
			}
			if newIdom != -1 && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	c.IPDom = ipdom[:n]
}

// ReconvergencePC returns the instruction index at which a divergent branch
// at instruction index pc reconverges: the start of the branch block's
// immediate post-dominator, or len(Instrs) when control reconverges only at
// kernel exit.
func (c *CFG) ReconvergencePC(pc int) int {
	b := c.BlockOf[pc]
	ip := c.IPDom[b]
	if ip < 0 || ip >= len(c.Blocks) {
		return len(c.Instrs)
	}
	return c.Blocks[ip].Start
}

// ConvergencePoints returns the set of instruction indices that are
// reconvergence targets of at least one conditional branch. The
// instrumenter logs these (the `_log.fi` insertion points).
func (c *CFG) ConvergencePoints() map[int]bool {
	pts := make(map[int]bool)
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBra && in.Guard != nil {
			pts[c.ReconvergencePC(i)] = true
		}
	}
	return pts
}

// computeDom runs the Cooper–Harvey–Kennedy iterative dominance algorithm
// on the forward CFG rooted at the entry block (block 0). It mirrors
// computeIPDom but walks Succs instead of Preds; edges to the virtual exit
// node are skipped. Blocks unreachable from the entry keep Dom == -1 and
// are tolerated, not fatal: callers use UnreachableBlocks to report them.
func (c *CFG) computeDom() {
	n := len(c.Blocks)
	// Reverse post-order of the forward graph from the entry.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range c.Blocks[b].Succs {
			if s < n && !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	dom := make([]int, n)
	for i := range dom {
		dom[i] = -1
	}
	dom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = dom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = dom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Blocks[b].Preds {
				if dom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && dom[b] != newIdom {
				dom[b] = newIdom
				changed = true
			}
		}
	}
	c.Dom = dom
}

// Dominates reports whether block a dominates block b in the forward CFG.
// Every block dominates itself. Unreachable blocks are dominated by
// nothing (and dominate only themselves).
func (c *CFG) Dominates(a, b int) bool {
	if a == b {
		return true
	}
	for b != 0 {
		d := c.Dom[b]
		if d == b || d == -1 {
			return false
		}
		if d == a {
			return true
		}
		b = d
	}
	return a == 0
}

// UnreachableBlocks returns the indices of blocks unreachable from the
// kernel entry. Such blocks are dead code: the dominator solvers leave
// them at -1 rather than crashing, and the lint pass reports them.
func (c *CFG) UnreachableBlocks() []int {
	var out []int
	for i := range c.Blocks {
		if i != 0 && c.Dom[i] == -1 {
			out = append(out, i)
		}
	}
	return out
}
