package kernel

import (
	"testing"

	"barracuda/internal/ptx"
)

// Degenerate and irreducible CFG shapes that the barrier-interval and
// repair analyses lean on: self-loops, unreachable back-edges, blocks
// reduced to a single terminator, and reconvergence queries on all of
// them. None of these may crash or return out-of-range answers.

// TestSelfLoop: `L: @%p bra L` — a one-block loop whose only in-region
// successor is itself. The exit path must still post-dominate it.
func TestSelfLoop(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
L:
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, 64;
	@%p1 bra L;
	ret;
}`)
	var loop int = -1
	for bi, b := range c.Blocks {
		for _, s := range b.Succs {
			if s == bi {
				loop = bi
			}
		}
	}
	if loop < 0 {
		t.Fatal("no self-loop block found")
	}
	if !c.Dominates(loop, loop) {
		t.Error("a block must dominate itself")
	}
	// The loop's reconvergence point is the fall-through ret block.
	branch := c.Blocks[loop].End - 1
	r := c.ReconvergencePC(branch)
	if r <= branch || r > len(c.Instrs) {
		t.Errorf("ReconvergencePC(%d) = %d, want the post-loop position", branch, r)
	}
	if len(c.UnreachableBlocks()) != 0 {
		t.Errorf("unreachable = %v, want none", c.UnreachableBlocks())
	}
}

// TestPureSelfLoop: `L: bra L;` never reaches the exit. The virtual
// exit is unreachable in the reverse graph from the loop, so its IPDom
// must degrade gracefully (reconvergence clamps to the end) and the
// trailing ret must be reported unreachable.
func TestPureSelfLoop(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, 0;
L:
	bra.uni L;
	ret;
}`)
	dead := c.UnreachableBlocks()
	if len(dead) != 1 {
		t.Fatalf("unreachable = %v, want the trailing ret block", dead)
	}
	// Reconvergence of the loop branch must not panic and must stay in
	// range even though no path reaches the exit.
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBra {
			if r := c.ReconvergencePC(i); r < 0 || r > len(c.Instrs) {
				t.Errorf("ReconvergencePC(%d) = %d out of range", i, r)
			}
		}
	}
}

// TestUnreachableBackEdge: a back-edge that only dead code takes. The
// loop header is reachable, the latch is not; dominators must ignore
// the dead predecessor and the latch must have Dom == -1.
func TestUnreachableBackEdge(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, 0;
HEAD:
	add.u32 %r1, %r1, 1;
	bra.uni DONE;
	setp.lt.u32 %p1, %r1, 4;
	@%p1 bra HEAD;
DONE:
	ret;
}`)
	dead := c.UnreachableBlocks()
	if len(dead) != 1 {
		t.Fatalf("unreachable = %v, want exactly the dead latch", dead)
	}
	latch := dead[0]
	if c.Dom[latch] != -1 {
		t.Errorf("Dom[latch] = %d, want -1", c.Dom[latch])
	}
	// HEAD is reached only via fall-through plus the dead back edge; its
	// immediate dominator must be the entry block, unpolluted by the
	// unreachable predecessor.
	// The latch has two successors: the back-edge target HEAD (an earlier
	// block) and its fall-through DONE. Pick the back edge.
	head := -1
	for bi, b := range c.Blocks {
		if bi >= latch {
			continue
		}
		for _, p := range b.Preds {
			if p == latch {
				head = bi
			}
		}
	}
	if head < 0 {
		t.Fatal("latch has no successor back into the loop")
	}
	if c.Dom[head] != 0 {
		t.Errorf("Dom[HEAD] = %d, want 0", c.Dom[head])
	}
	if c.Dominates(latch, head) {
		t.Error("a dead latch must not dominate the reachable header")
	}
}

// TestSingleInstructionKernel: the minimal kernel (one ret) must build,
// dominate itself, and answer reconvergence at the end of the stream.
func TestSingleInstructionKernel(t *testing.T) {
	c := build(t, `.visible .entry k() {
	ret;
}`)
	if len(c.Blocks) != 1 || len(c.Instrs) != 1 {
		t.Fatalf("blocks=%d instrs=%d, want 1/1", len(c.Blocks), len(c.Instrs))
	}
	if !c.Dominates(0, 0) {
		t.Error("entry must dominate itself")
	}
	if c.Dom[0] != 0 {
		t.Errorf("Dom[entry] = %d, want itself", c.Dom[0])
	}
	if got := c.UnreachableBlocks(); len(got) != 0 {
		t.Errorf("unreachable = %v, want none", got)
	}
}

// TestIrreducibleReconvergence: reconvergence queries inside an
// irreducible region (two blocks branching into each other from
// separate entry edges) must stay in range on every branch.
func TestIrreducibleReconvergence(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra B;
A:
	add.u32 %r2, %r1, 1;
	setp.lt.u32 %p2, %r2, 4;
	@%p2 bra B;
	bra.uni OUT;
B:
	add.u32 %r3, %r1, 2;
	setp.lt.u32 %p3, %r3, 8;
	@%p3 bra A;
OUT:
	ret;
}`)
	for i, in := range c.Instrs {
		if in.Op != ptx.OpBra {
			continue
		}
		r := c.ReconvergencePC(i)
		if r < 0 || r > len(c.Instrs) {
			t.Errorf("ReconvergencePC(%d) = %d out of range", i, r)
		}
	}
	// Both region blocks converge at OUT: their convergence points set
	// must include OUT's first instruction.
	conv := c.ConvergencePoints()
	out := -1
	for bi := range c.Blocks {
		last := c.Instrs[c.Blocks[bi].End-1]
		if last.Op == ptx.OpRet {
			out = c.Blocks[bi].Start
		}
	}
	if out < 0 {
		t.Fatal("no ret block")
	}
	if !conv[out] {
		t.Errorf("convergence points %v do not include the ret block start %d", conv, out)
	}
}

// TestIntervalsOnDegenerateShapes is an integration guard: building the
// CFG and walking dominators on every degenerate shape above must keep
// index invariants that downstream analyses assume.
func TestDegenerateInvariants(t *testing.T) {
	srcs := []string{
		".visible .entry k() {\n\tret;\n}",
		".visible .entry k() {\n\t.reg .u32 %r<4>;\n\tmov.u32 %r1, 0;\nL:\n\tbra.uni L;\n\tret;\n}",
		".visible .entry k() {\n\t.reg .u32 %r<4>;\n\t.reg .pred %p<2>;\nL:\n\tmov.u32 %r1, 0;\n\tsetp.eq.u32 %p1, %r1, 0;\n\t@%p1 bra L;\n\tret;\n}",
	}
	for _, src := range srcs {
		c := build(t, src)
		if len(c.BlockOf) != len(c.Instrs) {
			t.Fatalf("BlockOf size mismatch for %q", src)
		}
		for i := range c.Instrs {
			bi := c.BlockOf[i]
			if bi < 0 || bi >= len(c.Blocks) {
				t.Fatalf("BlockOf[%d] = %d out of range for %q", i, bi, src)
			}
			if i < c.Blocks[bi].Start || i >= c.Blocks[bi].End {
				t.Fatalf("instr %d outside its block [%d,%d) for %q",
					i, c.Blocks[bi].Start, c.Blocks[bi].End, src)
			}
		}
		for bi := range c.Blocks {
			if d := c.Dom[bi]; d != -1 && (d < 0 || d >= len(c.Blocks)) {
				t.Fatalf("Dom[%d] = %d out of range for %q", bi, d, src)
			}
		}
	}
}
