package kernel

import "testing"

// TestDiamondDominators: in a diamond, the branch block dominates both arms
// and the join; neither arm dominates the join.
func TestDiamondDominators(t *testing.T) {
	c := build(t, diamondSrc)
	// Blocks: 0 = header (branch), 1 = else, 2 = then, 3 = join.
	if len(c.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(c.Blocks))
	}
	if c.Dom[0] != 0 {
		t.Errorf("Dom[entry] = %d, want 0", c.Dom[0])
	}
	for b := 1; b < 4; b++ {
		if c.Dom[b] != 0 {
			t.Errorf("Dom[%d] = %d, want 0", b, c.Dom[b])
		}
	}
	if !c.Dominates(0, 3) {
		t.Error("entry should dominate join")
	}
	if c.Dominates(1, 3) || c.Dominates(2, 3) {
		t.Error("arms must not dominate join")
	}
	if got := c.UnreachableBlocks(); len(got) != 0 {
		t.Errorf("unreachable = %v, want none", got)
	}
}

// TestLoopDominators: the loop header dominates the loop body and the
// blocks after the loop.
func TestLoopDominators(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, 0;
LOOP:
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, 10;
	@%p1 bra LOOP;
	mov.u32 %r2, %r1;
	ret;
}`)
	// Blocks: 0 = preheader, 1 = loop body (header), 2 = after.
	if len(c.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(c.Blocks))
	}
	if c.Dom[1] != 0 || c.Dom[2] != 1 {
		t.Errorf("Dom = %v, want [0 0 1]", c.Dom)
	}
	if !c.Dominates(1, 2) {
		t.Error("loop header should dominate exit block")
	}
}

// TestUnreachableBlock: dead code after an unconditional branch must be
// reported, not crash either dominance solver.
func TestUnreachableBlock(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, 1;
	bra.uni DONE;
	add.u32 %r2, %r1, 1;
DONE:
	ret;
}`)
	dead := c.UnreachableBlocks()
	if len(dead) != 1 {
		t.Fatalf("unreachable = %v, want one block", dead)
	}
	if c.Dom[dead[0]] != -1 {
		t.Errorf("Dom[dead] = %d, want -1", c.Dom[dead[0]])
	}
	if c.Dominates(dead[0], 0) {
		t.Error("dead block must not dominate the entry")
	}
	if c.Dominates(0, dead[0]) {
		t.Error("entry must not dominate an unreachable block")
	}
}

// TestIrreducibleDominators: two blocks that branch into each other from
// separate entry edges (an irreducible region). The only common dominator
// of both region blocks is the entry branch.
func TestIrreducibleDominators(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra B;
A:
	add.u32 %r2, %r1, 1;
	setp.lt.u32 %p2, %r2, 4;
	@%p2 bra B;
	ret;
B:
	add.u32 %r3, %r1, 2;
	setp.lt.u32 %p3, %r3, 8;
	@%p3 bra A;
	ret;
}`)
	// Blocks: 0 = header, 1 = A, 2 = ret-after-A, 3 = B, 4 = ret-after-B.
	a, b := 1, 3
	if c.Dom[a] != 0 || c.Dom[b] != 0 {
		t.Errorf("Dom[A]=%d Dom[B]=%d, want both 0 (irreducible region)", c.Dom[a], c.Dom[b])
	}
	if c.Dominates(a, b) || c.Dominates(b, a) {
		t.Error("neither irreducible-region block may dominate the other")
	}
}
