package kernel

import (
	"testing"

	"barracuda/internal/ptx"
)

func build(t *testing.T, src string) *CFG {
	t.Helper()
	k, err := ptx.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Build(k)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestStraightLine(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, 1;
	add.u32 %r2, %r1, 1;
	ret;
}`)
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(c.Blocks))
	}
	if len(c.Blocks[0].Succs) != 1 || c.Blocks[0].Succs[0] != 1 {
		t.Errorf("succs = %v, want [exit]", c.Blocks[0].Succs)
	}
}

// diamond: if/else that reconverges.
const diamondSrc = `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra THEN;
	mov.u32 %r2, 2;
	bra.uni JOIN;
THEN:
	mov.u32 %r2, 1;
JOIN:
	add.u32 %r3, %r2, 1;
	ret;
}`

func TestDiamondCFG(t *testing.T) {
	c := build(t, diamondSrc)
	// Blocks: [entry+branch], [else], [then], [join].
	if len(c.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(c.Blocks))
	}
	entry := c.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	// Branch instruction is index 2; reconvergence at the JOIN block.
	rpc := c.ReconvergencePC(2)
	join := c.BlockOf[rpc]
	if c.Instrs[rpc].Op != ptx.OpAdd {
		t.Errorf("reconvergence instr = %v at pc %d", c.Instrs[rpc].Op, rpc)
	}
	if c.IPDom[entry.Index] != join {
		t.Errorf("ipdom(entry) = %d, want %d", c.IPDom[entry.Index], join)
	}
}

func TestConvergencePoints(t *testing.T) {
	c := build(t, diamondSrc)
	pts := c.ConvergencePoints()
	if len(pts) != 1 {
		t.Fatalf("convergence points = %v", pts)
	}
	for pc := range pts {
		if c.Instrs[pc].Op != ptx.OpAdd {
			t.Errorf("convergence point at %v", c.Instrs[pc].Op)
		}
	}
}

func TestIfWithoutElse(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SKIP;
	mov.u32 %r2, 1;
SKIP:
	ret;
}`)
	rpc := c.ReconvergencePC(2)
	if c.Instrs[rpc].Op != ptx.OpRet {
		t.Errorf("reconvergence = %v, want ret", c.Instrs[rpc].Op)
	}
}

func TestLoop(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, 0;
LOOP:
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, 10;
	@%p1 bra LOOP;
	ret;
}`)
	// Blocks: [entry], [loop body], [after].
	if len(c.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %+v", len(c.Blocks), c.Blocks)
	}
	body := c.Blocks[1]
	// Backedge to itself + fallthrough.
	if len(body.Succs) != 2 {
		t.Errorf("body succs = %v", body.Succs)
	}
	// Loop branch reconverges at the block after the loop.
	rpc := c.ReconvergencePC(body.End - 1)
	if c.Instrs[rpc].Op != ptx.OpRet {
		t.Errorf("loop reconvergence = %v", c.Instrs[rpc].Op)
	}
}

func TestNestedBranches(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra OUTER;
	setp.eq.u32 %p2, %r1, 1;
	@%p2 bra INNER;
	mov.u32 %r2, 3;
INNER:
	mov.u32 %r3, 4;
OUTER:
	ret;
}`)
	// Outer branch at pc=1 reconverges at OUTER (ret).
	if in := c.Instrs[c.ReconvergencePC(1)]; in.Op != ptx.OpRet {
		t.Errorf("outer reconvergence = %v", in.Op)
	}
	// Inner branch at pc=3 reconverges at INNER (mov %r3).
	rpc := c.ReconvergencePC(3)
	in := c.Instrs[rpc]
	if in.Op != ptx.OpMov || in.Dst.Reg != "%r3" {
		t.Errorf("inner reconvergence = %v %v", in.Op, in.Dst.Reg)
	}
}

func TestBranchToEndLabel(t *testing.T) {
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra END;
	mov.u32 %r2, 1;
	ret;
END:
	ret;
}`)
	// The fallthrough path hits its own ret, so the paths only reconverge
	// at kernel exit (pc == len(Instrs)).
	if got := c.ReconvergencePC(1); got != 5 {
		t.Errorf("reconvergence pc = %d, want 5 (kernel end)", got)
	}
}

func TestUndefinedLabelError(t *testing.T) {
	k, err := ptx.ParseKernel(`.visible .entry k() {
	bra.uni NOWHERE;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(k); err == nil {
		t.Error("Build succeeded with undefined label")
	}
}

func TestDuplicateLabelError(t *testing.T) {
	k, err := ptx.ParseKernel(`.visible .entry k() {
A:
	mov.u32 %r1, 1;
A:
	ret;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(k); err == nil {
		t.Error("Build succeeded with duplicate label")
	}
}

func TestEmptyKernelError(t *testing.T) {
	k, err := ptx.ParseKernel(`.visible .entry k() { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(k); err == nil {
		t.Error("Build succeeded on empty body")
	}
}

func TestBlockOfCoversAllInstrs(t *testing.T) {
	c := build(t, diamondSrc)
	for i := range c.Instrs {
		b := c.BlockOf[i]
		blk := c.Blocks[b]
		if i < blk.Start || i >= blk.End {
			t.Errorf("instr %d mapped to block %d [%d,%d)", i, b, blk.Start, blk.End)
		}
	}
}

func TestInfiniteLoopNoExitPath(t *testing.T) {
	// A loop with no path to exit: ipdom must not crash; reconvergence
	// falls back to kernel end.
	c := build(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
SPIN:
	setp.eq.u32 %p1, %r1, 99;
	@%p1 bra SPIN;
	bra.uni SPIN;
}`)
	rpc := c.ReconvergencePC(1)
	if rpc < 0 || rpc > len(c.Instrs) {
		t.Errorf("reconvergence pc = %d out of range", rpc)
	}
}
