// Package vc implements the vector-clock and epoch algebra that underlies
// the BARRACUDA race-detection algorithm (PLDI 2017, §3.3).
//
// A vector clock V records a logical timestamp V(t) for each thread t. The
// package provides the three standard operations from the paper:
//
//	V ⊑ V'   — HappensBefore: ∀t. V(t) ≤ V'(t)
//	V ⊔ V'   — Join: λt. max(V(t), V'(t))
//	inc_t(V) — Inc: bump thread t's own component
//
// An epoch c@t is a reduced vector clock holding a timestamp for a single
// thread; it compares against a vector clock in O(1).
//
// Thread identifiers are dense global indices (the paper's 64-bit TID,
// computed from the 3-D block and thread indices). Vector clocks here are
// sparse maps so that empty components cost nothing; the compressed
// per-thread representation lives in package ptvc.
package vc

import (
	"fmt"
	"sort"
	"strings"
)

// TID is a globally unique dense thread identifier.
type TID int32

// Clock is a scalar logical timestamp.
type Clock uint32

// Epoch is the pair c@t: clock c for thread t, implicitly 0 elsewhere.
// The zero value is the minimal epoch 0@0 (⊥e).
type Epoch struct {
	T TID
	C Clock
}

// MinEpoch is ⊥e, the minimal epoch 0@t0.
var MinEpoch = Epoch{}

// String renders the epoch in the paper's c@t notation.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.C, e.T) }

// IsZero reports whether e is the minimal epoch.
func (e Epoch) IsZero() bool { return e.C == 0 }

// LeqVC reports c@t ⪯ V, i.e. c ≤ V(t).
func (e Epoch) LeqVC(v *VC) bool { return e.C <= v.Get(e.T) }

// Leq reports whether e ⪯ f as vector clocks. Distinct-thread epochs are
// ordered only when the left clock is zero.
func (e Epoch) Leq(f Epoch) bool {
	if e.C == 0 {
		return true
	}
	return e.T == f.T && e.C <= f.C
}

// VC is a sparse vector clock: absent entries are zero.
// The zero value (or New()) is ⊥v, the minimal vector clock.
type VC struct {
	m map[TID]Clock
}

// New returns a fresh minimal vector clock.
func New() *VC { return &VC{} }

// FromMap builds a vector clock from an explicit component map (copied).
func FromMap(m map[TID]Clock) *VC {
	v := New()
	for t, c := range m {
		if c != 0 {
			v.Set(t, c)
		}
	}
	return v
}

// FromEpoch builds the vector clock equivalent of an epoch.
func FromEpoch(e Epoch) *VC {
	v := New()
	if e.C != 0 {
		v.Set(e.T, e.C)
	}
	return v
}

// Get returns V(t).
func (v *VC) Get(t TID) Clock {
	if v == nil || v.m == nil {
		return 0
	}
	return v.m[t]
}

// Set assigns V(t) = c, deleting the entry when c is zero.
func (v *VC) Set(t TID, c Clock) {
	if c == 0 {
		if v.m != nil {
			delete(v.m, t)
		}
		return
	}
	if v.m == nil {
		v.m = make(map[TID]Clock, 4)
	}
	v.m[t] = c
}

// Inc implements inc_t: V(t) += 1.
func (v *VC) Inc(t TID) { v.Set(t, v.Get(t)+1) }

// Len reports the number of non-zero components.
func (v *VC) Len() int {
	if v == nil {
		return 0
	}
	return len(v.m)
}

// Copy returns an independent deep copy of v.
func (v *VC) Copy() *VC {
	c := New()
	if v == nil || v.m == nil {
		return c
	}
	c.m = make(map[TID]Clock, len(v.m))
	for t, cl := range v.m {
		c.m[t] = cl
	}
	return c
}

// Join sets v = v ⊔ o (component-wise max) and returns v.
func (v *VC) Join(o *VC) *VC {
	if o == nil || o.m == nil {
		return v
	}
	for t, c := range o.m {
		if c > v.Get(t) {
			v.Set(t, c)
		}
	}
	return v
}

// JoinEpoch sets v = v ⊔ (the VC of e) and returns v.
func (v *VC) JoinEpoch(e Epoch) *VC {
	if e.C > v.Get(e.T) {
		v.Set(e.T, e.C)
	}
	return v
}

// Leq reports v ⊑ o: ∀t. v(t) ≤ o(t).
func (v *VC) Leq(o *VC) bool {
	if v == nil || v.m == nil {
		return true
	}
	for t, c := range v.m {
		if c > o.Get(t) {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (v *VC) Equal(o *VC) bool { return v.Leq(o) && o.Leq(v) }

// Epoch returns the epoch E(t) = V(t)@t for thread t.
func (v *VC) Epoch(t TID) Epoch { return Epoch{T: t, C: v.Get(t)} }

// Threads returns the TIDs with non-zero components, in ascending order.
func (v *VC) Threads() []TID {
	if v == nil || v.m == nil {
		return nil
	}
	ts := make([]TID, 0, len(v.m))
	for t := range v.m {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// String renders the vector clock as [t:c t:c ...] in TID order.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range v.Threads() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", t, v.m[t])
	}
	b.WriteByte(']')
	return b.String()
}
