package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpochString(t *testing.T) {
	e := Epoch{T: 3, C: 7}
	if got := e.String(); got != "7@3" {
		t.Errorf("String() = %q, want 7@3", got)
	}
	if !MinEpoch.IsZero() {
		t.Error("MinEpoch should be zero")
	}
	if MinEpoch.String() != "0@0" {
		t.Errorf("MinEpoch.String() = %q", MinEpoch.String())
	}
}

func TestEpochLeqVC(t *testing.T) {
	v := New()
	v.Set(2, 5)
	cases := []struct {
		e    Epoch
		want bool
	}{
		{Epoch{T: 2, C: 5}, true},
		{Epoch{T: 2, C: 6}, false},
		{Epoch{T: 2, C: 1}, true},
		{Epoch{T: 3, C: 1}, false}, // V(3)=0 < 1
		{Epoch{T: 3, C: 0}, true},  // minimal epoch ⪯ anything
		{MinEpoch, true},
	}
	for _, c := range cases {
		if got := c.e.LeqVC(v); got != c.want {
			t.Errorf("%v ⪯ %v = %v, want %v", c.e, v, got, c.want)
		}
	}
}

func TestEpochLeqEpoch(t *testing.T) {
	if !(Epoch{T: 1, C: 0}).Leq(Epoch{T: 2, C: 3}) {
		t.Error("zero epoch should precede everything")
	}
	if !(Epoch{T: 1, C: 2}).Leq(Epoch{T: 1, C: 2}) {
		t.Error("epoch should precede itself")
	}
	if (Epoch{T: 1, C: 2}).Leq(Epoch{T: 2, C: 9}) {
		t.Error("distinct-thread nonzero epochs are unordered")
	}
	if (Epoch{T: 1, C: 3}).Leq(Epoch{T: 1, C: 2}) {
		t.Error("3@1 must not precede 2@1")
	}
}

func TestVCBasics(t *testing.T) {
	v := New()
	if v.Get(0) != 0 || v.Len() != 0 {
		t.Fatal("fresh VC must be minimal")
	}
	v.Inc(4)
	v.Inc(4)
	v.Inc(7)
	if v.Get(4) != 2 || v.Get(7) != 1 {
		t.Errorf("after incs: %v", v)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	v.Set(4, 0)
	if v.Len() != 1 {
		t.Errorf("Set(.,0) should delete entry; Len = %d", v.Len())
	}
}

func TestVCSetZeroOnEmpty(t *testing.T) {
	v := New()
	v.Set(1, 0) // must not panic or allocate
	if v.Len() != 0 {
		t.Error("Set(.,0) on empty VC changed it")
	}
}

func TestVCJoin(t *testing.T) {
	a := FromMap(map[TID]Clock{1: 3, 2: 1})
	b := FromMap(map[TID]Clock{2: 5, 3: 2})
	a.Join(b)
	want := FromMap(map[TID]Clock{1: 3, 2: 5, 3: 2})
	if !a.Equal(want) {
		t.Errorf("join = %v, want %v", a, want)
	}
	// b unchanged
	if !b.Equal(FromMap(map[TID]Clock{2: 5, 3: 2})) {
		t.Errorf("join mutated right operand: %v", b)
	}
}

func TestVCJoinNil(t *testing.T) {
	a := FromMap(map[TID]Clock{1: 1})
	a.Join(nil)
	a.Join(New())
	if a.Get(1) != 1 || a.Len() != 1 {
		t.Errorf("join with ⊥ changed VC: %v", a)
	}
}

func TestVCJoinEpoch(t *testing.T) {
	a := FromMap(map[TID]Clock{1: 3})
	a.JoinEpoch(Epoch{T: 1, C: 2}) // smaller, no-op
	a.JoinEpoch(Epoch{T: 2, C: 4})
	want := FromMap(map[TID]Clock{1: 3, 2: 4})
	if !a.Equal(want) {
		t.Errorf("JoinEpoch = %v, want %v", a, want)
	}
}

func TestVCLeq(t *testing.T) {
	a := FromMap(map[TID]Clock{1: 2})
	b := FromMap(map[TID]Clock{1: 2, 2: 1})
	if !a.Leq(b) {
		t.Error("a ⊑ b expected")
	}
	if b.Leq(a) {
		t.Error("b ⊑ a unexpected")
	}
	if !New().Leq(a) {
		t.Error("⊥ ⊑ a expected")
	}
}

func TestVCCopyIndependence(t *testing.T) {
	a := FromMap(map[TID]Clock{1: 2})
	b := a.Copy()
	b.Inc(1)
	if a.Get(1) != 2 {
		t.Error("Copy is not independent")
	}
}

func TestVCString(t *testing.T) {
	v := FromMap(map[TID]Clock{3: 1, 1: 9})
	if got := v.String(); got != "[1:9 3:1]" {
		t.Errorf("String() = %q", got)
	}
	if New().String() != "[]" {
		t.Errorf("empty String() = %q", New().String())
	}
}

func TestVCEpochExtraction(t *testing.T) {
	v := FromMap(map[TID]Clock{5: 8})
	if e := v.Epoch(5); e.T != 5 || e.C != 8 {
		t.Errorf("Epoch(5) = %v", e)
	}
	if e := v.Epoch(6); e.C != 0 {
		t.Errorf("Epoch(6) = %v, want clock 0", e)
	}
}

// randVC builds a small random vector clock for property tests.
func randVC(r *rand.Rand) *VC {
	v := New()
	n := r.Intn(6)
	for i := 0; i < n; i++ {
		v.Set(TID(r.Intn(8)), Clock(r.Intn(10)))
	}
	return v
}

func TestPropJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		j := a.Copy().Join(b)
		// Upper bound of both.
		if !a.Leq(j) || !b.Leq(j) {
			return false
		}
		// Least: every component comes from a or b.
		for _, tid := range j.Threads() {
			c := j.Get(tid)
			if c != a.Get(tid) && c != b.Get(tid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		ab := a.Copy().Join(b)
		ba := b.Copy().Join(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := a.Copy().Join(b).Join(c)
		abc2 := a.Copy().Join(b.Copy().Join(c))
		if !abc1.Equal(abc2) {
			return false
		}
		return a.Copy().Join(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLeqPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		if !a.Leq(a) { // reflexive
			return false
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) { // antisymmetric
			return false
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) { // transitive
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEpochVCConsistency(t *testing.T) {
	f := func(tRaw uint8, cRaw uint8, seed int64) bool {
		e := Epoch{T: TID(tRaw % 8), C: Clock(cRaw % 12)}
		r := rand.New(rand.NewSource(seed))
		v := randVC(r)
		// e ⪯ v must agree with FromEpoch(e) ⊑ v.
		return e.LeqVC(v) == FromEpoch(e).Leq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIncStrictlyIncreases(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v := randVC(r)
		tid := TID(tRaw % 8)
		before := v.Copy()
		v.Inc(tid)
		return before.Leq(v) && !v.Leq(before) && v.Get(tid) == before.Get(tid)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
