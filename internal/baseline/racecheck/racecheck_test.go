package racecheck

import (
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

func mkRec(op trace.OpKind, warp int, mask uint32, addr uint64, pc uint32, space logging.SpaceID) *logging.Record {
	r := &logging.Record{Op: op, Warp: uint32(warp), Block: uint32(warp / 2),
		Mask: mask, Size: 4, PC: pc, Space: space}
	for i := range r.Addrs {
		r.Addrs[i] = addr
	}
	return r
}

func newDet() *Detector { return New(8, 4) } // 2 warps x 4 lanes per block

func TestSharedHazardDetected(t *testing.T) {
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 10, logging.SpaceShared))
	d.Handle(mkRec(trace.OpWrite, 1, 0x1, 16, 20, logging.SpaceShared))
	if !d.HasHazards() {
		t.Fatal("shared WAW hazard missed")
	}
	h := d.Report()[0]
	if h.PrevPC != 10 || h.CurPC != 20 || !h.PrevWr || !h.CurWr {
		t.Errorf("hazard = %+v", h)
	}
}

func TestGlobalMemoryInvisible(t *testing.T) {
	// The headline limitation: global-memory races are missed entirely.
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x10000, 10, logging.SpaceGlobal))
	d.Handle(mkRec(trace.OpWrite, 1, 0x1, 0x10000, 20, logging.SpaceGlobal))
	if d.HasHazards() {
		t.Fatal("racecheck model tracked global memory")
	}
}

func TestBarrierResetsInterval(t *testing.T) {
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 10, logging.SpaceShared))
	d.Handle(&logging.Record{Op: trace.OpBarRel, Block: 0, Mask: 0b11})
	d.Handle(mkRec(trace.OpRead, 1, 0x1, 16, 20, logging.SpaceShared))
	if d.HasHazards() {
		t.Fatalf("barrier-separated accesses flagged: %v", d.Report())
	}
}

func TestWarpSynchronousFalsePositive(t *testing.T) {
	// Lockstep-ordered intra-warp accesses (ordered under BARRACUDA's
	// endi rule) are flagged by the interval model.
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 10, logging.SpaceShared)) // lane 0 writes
	d.Handle(mkRec(trace.OpRead, 0, 0x2, 16, 20, logging.SpaceShared))  // lane 1 reads next instr
	if !d.HasHazards() {
		t.Fatal("warp-synchronous access not flagged (limitation not modeled)")
	}
}

func TestAtomicsFlaggedAsWrites(t *testing.T) {
	d := newDet()
	d.Handle(mkRec(trace.OpAtom, 0, 0x1, 16, 10, logging.SpaceShared))
	d.Handle(mkRec(trace.OpAtom, 1, 0x1, 16, 20, logging.SpaceShared))
	if !d.HasHazards() {
		t.Fatal("atomic pair not flagged (racecheck treats atomics as writes)")
	}
}

func TestFenceSyncNotUnderstood(t *testing.T) {
	// Release/acquire on shared memory does not suppress hazards.
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 32, 10, logging.SpaceShared))
	d.Handle(mkRec(trace.OpRelBlk, 0, 0x1, 16, 11, logging.SpaceShared))
	d.Handle(mkRec(trace.OpAcqBlk, 1, 0x1, 16, 20, logging.SpaceShared))
	d.Handle(mkRec(trace.OpRead, 1, 0x1, 32, 21, logging.SpaceShared))
	found := false
	for _, h := range d.Report() {
		if h.Addr >= 32 && h.Addr < 36 {
			found = true
		}
	}
	if !found {
		t.Fatalf("flag-synchronized data access not flagged: %v", d.Report())
	}
}

func TestSameThreadNoHazard(t *testing.T) {
	d := newDet()
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 10, logging.SpaceShared))
	d.Handle(mkRec(trace.OpRead, 0, 0x1, 16, 20, logging.SpaceShared))
	d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 30, logging.SpaceShared))
	if d.HasHazards() {
		t.Fatalf("same-thread accesses flagged: %v", d.Report())
	}
}

func TestReadReadNoHazard(t *testing.T) {
	d := newDet()
	d.Handle(mkRec(trace.OpRead, 0, 0x1, 16, 10, logging.SpaceShared))
	d.Handle(mkRec(trace.OpRead, 1, 0x1, 16, 20, logging.SpaceShared))
	if d.HasHazards() {
		t.Fatal("read-read flagged")
	}
}

func TestHazardDedup(t *testing.T) {
	d := newDet()
	for i := 0; i < 5; i++ {
		d.Handle(mkRec(trace.OpWrite, 0, 0x1, 16, 10, logging.SpaceShared))
		d.Handle(mkRec(trace.OpWrite, 1, 0x1, 16, 20, logging.SpaceShared))
	}
	if n := len(d.Report()); n != 2 {
		// write(10) vs write(20) and write(20) vs write(10) count as
		// two static orderings at most.
		if n > 2 {
			t.Errorf("hazards = %d, want <= 2", n)
		}
	}
}

func TestHazardString(t *testing.T) {
	h := Hazard{Block: 1, Addr: 16, PrevWr: true}
	if h.String() == "" {
		t.Error("empty hazard string")
	}
}
