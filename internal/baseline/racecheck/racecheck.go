// Package racecheck models Nvidia's cuda-memcheck racecheck tool as a
// comparison baseline for the §6.1 bug-suite experiment. It is a
// barrier-interval hazard detector with the tool's documented
// limitations, each of which the paper's evaluation observes:
//
//   - it tracks SHARED memory only, so every global-memory race is
//     invisible to it;
//   - it divides execution into intervals separated by block-wide
//     barriers and flags any intra-interval conflicting pair (WAW, RAW,
//     WAR) between different threads — so warp-synchronous (lockstep)
//     programming is reported as racy even when BARRACUDA's endi
//     semantics prove it ordered ("reporting races where there are
//     none");
//   - atomics are treated as ordinary writes: they neither synchronize
//     nor are exempt from hazards, so atomic-to-atomic accesses are
//     false positives and fence/flag synchronization is not understood;
//   - under the tool the target is effectively serialized, which breaks
//     cross-block spin synchronization — the run never terminates
//     ("even hanging on the tests involving spinlocks"). The bug-suite
//     runner models this by executing one block at a time with a step
//     budget.
package racecheck

import (
	"fmt"
	"sort"
	"sync"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

// Hazard is one reported intra-interval conflict.
type Hazard struct {
	Block   int32
	Addr    uint64
	PrevTID int32
	CurTID  int32
	PrevPC  uint32
	CurPC   uint32
	PrevWr  bool
	CurWr   bool
}

func (h Hazard) String() string {
	rw := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("racecheck hazard on shared %#x (block %d): %s (line %d, thread %d) vs %s (line %d, thread %d)",
		h.Addr, h.Block, rw(h.PrevWr), h.PrevPC, h.PrevTID, rw(h.CurWr), h.CurPC, h.CurTID)
}

// interval is per-address access state within the current barrier
// interval of one block.
type interval struct {
	hasWrite bool
	writeTID int32
	writePC  uint32
	readers  map[int32]uint32 // tid -> pc
}

// Detector is the racecheck-like analysis.
type Detector struct {
	blockSize int
	warpSize  int

	mu      sync.Mutex
	state   map[int32]map[uint64]*interval // block -> addr -> interval
	hazards map[string]*Hazard
	records uint64
}

// New creates a detector. blockSize is threads per block (for TID
// computation from warp/lane).
func New(blockSize, warpSize int) *Detector {
	return &Detector{
		blockSize: blockSize,
		warpSize:  warpSize,
		state:     make(map[int32]map[uint64]*interval),
		hazards:   make(map[string]*Hazard),
	}
}

// Handle consumes one record.
func (d *Detector) Handle(r *logging.Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.records++
	switch r.Op {
	case trace.OpBarRel:
		// A completed block barrier ends the interval.
		delete(d.state, int32(r.Block))
		return
	case trace.OpRead, trace.OpWrite, trace.OpAtom,
		trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
		trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb:
		// Only shared memory is tracked at all.
		if r.Space != logging.SpaceShared {
			return
		}
	default:
		return
	}
	// Classify: atomics and releases count as writes; acquires as reads
	// (they are loads) — but none of them synchronize.
	write := r.Op.Writes()
	blk := int32(r.Block)
	addrs := d.state[blk]
	if addrs == nil {
		addrs = make(map[uint64]*interval)
		d.state[blk] = addrs
	}
	wpb := (d.blockSize + d.warpSize - 1) / d.warpSize
	widx := int(r.Warp) % wpb
	for lane := 0; lane < d.warpSize && lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		tid := int32(widx*d.warpSize + lane) // thread index within block
		for b := uint64(0); b < uint64(maxInt(int(r.Size), 1)); b++ {
			d.access(blk, addrs, r.LaneAddr(lane)+b, tid, r.PC, write)
		}
	}
}

func (d *Detector) access(blk int32, addrs map[uint64]*interval, addr uint64, tid int32, pc uint32, write bool) {
	iv := addrs[addr]
	if iv == nil {
		iv = &interval{readers: make(map[int32]uint32)}
		addrs[addr] = iv
	}
	if write {
		if iv.hasWrite && iv.writeTID != tid {
			d.add(Hazard{Block: blk, Addr: addr, PrevTID: iv.writeTID, CurTID: tid,
				PrevPC: iv.writePC, CurPC: pc, PrevWr: true, CurWr: true})
		}
		for rt, rpc := range iv.readers {
			if rt != tid {
				d.add(Hazard{Block: blk, Addr: addr, PrevTID: rt, CurTID: tid,
					PrevPC: rpc, CurPC: pc, PrevWr: false, CurWr: true})
			}
		}
		iv.hasWrite = true
		iv.writeTID = tid
		iv.writePC = pc
		return
	}
	if iv.hasWrite && iv.writeTID != tid {
		d.add(Hazard{Block: blk, Addr: addr, PrevTID: iv.writeTID, CurTID: tid,
			PrevPC: iv.writePC, CurPC: pc, PrevWr: true, CurWr: false})
	}
	iv.readers[tid] = pc
}

func (d *Detector) add(h Hazard) {
	key := fmt.Sprintf("%d/%d/%v/%v", h.PrevPC, h.CurPC, h.PrevWr, h.CurWr)
	if _, ok := d.hazards[key]; !ok {
		d.hazards[key] = &h
	}
}

// Report returns the distinct hazards, ordered by source position.
func (d *Detector) Report() []Hazard {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Hazard, 0, len(d.hazards))
	for _, h := range d.hazards {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PrevPC != out[j].PrevPC {
			return out[i].PrevPC < out[j].PrevPC
		}
		return out[i].CurPC < out[j].CurPC
	})
	return out
}

// HasHazards reports whether anything was flagged.
func (d *Detector) HasHazards() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.hazards) > 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
