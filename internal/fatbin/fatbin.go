// Package fatbin implements a synthetic CUDA fat-binary container and its
// loader — the analogue of BARRACUDA's __cudaRegisterFatBinary
// interception (§4.1). A fat binary bundles several per-architecture
// entries (opaque machine code) with one architecture-neutral PTX entry,
// zlib-compressed. The loader strips the architecture-specific entries
// and extracts and decompresses the PTX, which is what the
// instrumentation engine consumes; Repack builds a new fat binary around
// instrumented PTX so the (simulated) runtime loads only instrumented
// code.
package fatbin

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies the container format.
const Magic = "BARFATB1"

// EntryKind distinguishes container entries.
type EntryKind uint32

// Entry kinds.
const (
	KindPTX  EntryKind = 1 // architecture-neutral PTX text
	KindSASS EntryKind = 2 // architecture-specific machine code (opaque)
)

// Entry is one member of a fat binary.
type Entry struct {
	Kind EntryKind
	Arch uint32 // sm version for SASS entries (e.g. 35, 52); 0 for PTX
	Data []byte // uncompressed payload
}

// Pack serialises entries into the container format.
func Pack(entries []Entry) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(entries))); err != nil {
		return nil, err
	}
	for _, e := range entries {
		var comp bytes.Buffer
		zw := zlib.NewWriter(&comp)
		if _, err := zw.Write(e.Data); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		hdr := []uint32{uint32(e.Kind), e.Arch, uint32(comp.Len()), uint32(len(e.Data))}
		for _, h := range hdr {
			if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
				return nil, err
			}
		}
		buf.Write(comp.Bytes())
	}
	return buf.Bytes(), nil
}

// Unpack parses a container into its entries.
func Unpack(data []byte) ([]Entry, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("fatbin: bad magic")
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("fatbin: truncated header")
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("fatbin: implausible entry count %d", count)
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		var hdr [4]uint32
		for j := range hdr {
			if err := binary.Read(r, binary.LittleEndian, &hdr[j]); err != nil {
				return nil, fmt.Errorf("fatbin: truncated entry %d", i)
			}
		}
		comp := make([]byte, hdr[2])
		if _, err := io.ReadFull(r, comp); err != nil {
			return nil, fmt.Errorf("fatbin: truncated payload %d", i)
		}
		zr, err := zlib.NewReader(bytes.NewReader(comp))
		if err != nil {
			return nil, fmt.Errorf("fatbin: entry %d: %w", i, err)
		}
		raw, err := io.ReadAll(zr)
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("fatbin: entry %d: %w", i, err)
		}
		if uint32(len(raw)) != hdr[3] {
			return nil, fmt.Errorf("fatbin: entry %d: size mismatch %d != %d", i, len(raw), hdr[3])
		}
		entries = append(entries, Entry{Kind: EntryKind(hdr[0]), Arch: hdr[1], Data: raw})
	}
	return entries, nil
}

// ExtractPTX loads a fat binary, strips the architecture-specific entries
// and returns the architecture-neutral PTX text — the interception step
// of the paper's instrumentation pipeline.
func ExtractPTX(data []byte) (string, error) {
	entries, err := Unpack(data)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		if e.Kind == KindPTX {
			return string(e.Data), nil
		}
	}
	return "", fmt.Errorf("fatbin: no PTX entry")
}

// Repack builds a fat binary containing only the given (instrumented) PTX
// — the "data structures within the CUDA runtime are modified to point to
// the newly-generated fat binary that includes only the instrumented PTX"
// step.
func Repack(ptxText string) ([]byte, error) {
	return Pack([]Entry{{Kind: KindPTX, Data: []byte(ptxText)}})
}

// PackWithSASS builds a realistic fat binary: fake machine code for the
// given architectures plus the PTX entry. Test and demo helper.
func PackWithSASS(ptxText string, archs ...uint32) ([]byte, error) {
	var entries []Entry
	for _, a := range archs {
		fake := make([]byte, 64)
		for i := range fake {
			fake[i] = byte(a + uint32(i))
		}
		entries = append(entries, Entry{Kind: KindSASS, Arch: a, Data: fake})
	}
	entries = append(entries, Entry{Kind: KindPTX, Data: []byte(ptxText)})
	return Pack(entries)
}
