package fatbin

import (
	"strings"
	"testing"
)

const ptxText = `.visible .entry k() { ret; }`

func TestPackUnpackRoundTrip(t *testing.T) {
	in := []Entry{
		{Kind: KindSASS, Arch: 35, Data: []byte{1, 2, 3}},
		{Kind: KindPTX, Data: []byte(ptxText)},
	}
	bin, err := Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unpack(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("entries = %d", len(out))
	}
	if out[0].Kind != KindSASS || out[0].Arch != 35 || string(out[0].Data) != "\x01\x02\x03" {
		t.Errorf("entry 0 = %+v", out[0])
	}
	if out[1].Kind != KindPTX || string(out[1].Data) != ptxText {
		t.Errorf("entry 1 = %+v", out[1])
	}
}

func TestExtractPTXStripsSASS(t *testing.T) {
	bin, err := PackWithSASS(ptxText, 35, 52)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractPTX(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got != ptxText {
		t.Errorf("ExtractPTX = %q", got)
	}
}

func TestRepack(t *testing.T) {
	bin, err := Repack(ptxText)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Unpack(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Kind != KindPTX {
		t.Errorf("repacked entries = %+v", entries)
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	big := strings.Repeat("// padding comment line\n", 1000) + ptxText
	bin, err := Repack(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(big) {
		t.Errorf("container %d bytes >= payload %d bytes; zlib not engaged?", len(bin), len(big))
	}
	got, err := ExtractPTX(bin)
	if err != nil || got != big {
		t.Error("large payload corrupted")
	}
}

func TestUnpackErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WRONGMAG"),
		[]byte(Magic),                     // missing count
		append([]byte(Magic), 1, 0, 0, 0), // count=1, no entry
		append([]byte(Magic), 255, 255, 255, 255), // absurd count
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: Unpack succeeded on garbage", i)
		}
	}
}

func TestExtractPTXNoEntry(t *testing.T) {
	bin, err := Pack([]Entry{{Kind: KindSASS, Arch: 35, Data: []byte{9}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractPTX(bin); err == nil {
		t.Error("ExtractPTX succeeded without a PTX entry")
	}
}
