package shadow

import (
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/vc"
)

func spanTestGeo() ptvc.Geometry {
	return ptvc.Geometry{WarpSize: 32, BlockSize: 64, Blocks: 4}
}

// region grabs the global region covering addr through SpanRuns.
func region(t *testing.T, m *Memory, addr uint64, n, size int) (*Region, int) {
	t.Helper()
	var reg *Region
	lo := -1
	ok := m.SpanRuns(nil, logging.SpaceGlobal, -1, addr, n, size, func(r *Region, l, h, off int) {
		if reg == nil {
			reg, lo = r, l
		}
	})
	if !ok || reg == nil {
		t.Fatalf("SpanRuns refused [%d, %d)", addr, addr+uint64(n))
	}
	return reg, lo
}

// TestMaterializeLayers: demoting a summary must write back the exact
// per-cell state — per-rank write and read epochs, PCs, the atomic bit,
// and no read map.
func TestMaterializeLayers(t *testing.T) {
	geo := spanTestGeo()
	m := New(4, 0)
	m.EnableSpans(geo)
	reg, lo := region(t, m, 0, 128, 4)

	reg.Lock()
	reg.Install(SpanSum{
		Lo: lo, Hi: lo + 32,
		W:      SpanLayer{Warp: 2, Mask: ^uint32(0), Clock: 7, PC: 9, Size: 4},
		R:      SpanLayer{Warp: 3, Mask: ^uint32(0), Clock: 5, PC: 11, Size: 4},
		Atomic: true,
	})
	reg.Unlock()

	for rank := 0; rank < 32; rank += 7 {
		c := m.CellFor(logging.SpaceGlobal, -1, uint64(rank)*4)
		wantW := vc.Epoch{T: geo.TIDOf(2, rank), C: 7}
		wantR := vc.Epoch{T: geo.TIDOf(3, rank), C: 5}
		if c.W != wantW || c.WritePC != 9 || !c.Atomic {
			t.Errorf("rank %d: W=%+v pc=%d atomic=%v, want %+v pc=9 atomic=true", rank, c.W, c.WritePC, c.Atomic, wantW)
		}
		if c.R != wantR || c.ReadPC != 11 {
			t.Errorf("rank %d: R=%+v pc=%d, want %+v pc=11", rank, c.R, c.ReadPC, wantR)
		}
		if c.ReadShared || c.Readers != nil {
			t.Errorf("rank %d: materialized cell has a read map", rank)
		}
	}
	reg.Lock()
	if n := len(reg.Sums()); n != 0 {
		t.Errorf("summaries left after demotion: %d", n)
	}
	if !reg.Touched() {
		t.Error("demotion did not mark the region touched")
	}
	reg.Unlock()
}

// TestMaterializeAbsentLayersZero: a summary with a missing layer owns
// its cells completely — demotion must zero whatever stale per-cell
// state sat underneath, including an inflated read map.
func TestMaterializeAbsentLayersZero(t *testing.T) {
	geo := spanTestGeo()
	m := New(1, 0)
	m.EnableSpans(geo)
	reg, lo := region(t, m, 0, 64, 4)

	reg.Lock()
	c0 := &reg.Cells()[lo]
	c0.W = vc.Epoch{T: 5, C: 99}
	c0.WritePC = 42
	c0.Atomic = true
	c0.InflateReads()
	c0.Readers[7] = 3
	reg.Install(SpanSum{
		Lo: lo, Hi: lo + 64,
		R: SpanLayer{Warp: 1, Mask: ^uint32(0), Clock: 2, PC: 6, Size: 2},
	})
	reg.DemoteOverlapping(m, lo, lo+64)
	reg.Unlock()

	if !c0.W.IsZero() || c0.WritePC != 0 || c0.Atomic {
		t.Errorf("absent W layer not zeroed: %+v pc=%d atomic=%v", c0.W, c0.WritePC, c0.Atomic)
	}
	if c0.ReadShared || c0.Readers != nil {
		t.Error("demotion left an inflated read map")
	}
	// gran=1, layer size 2: cells 0 and 1 share rank 0; cells 2,3 rank 1.
	want := vc.Epoch{T: geo.TIDOf(1, 1), C: 2}
	if c := &reg.Cells()[lo+2]; c.R != want || c.ReadPC != 6 {
		t.Errorf("cell 2: R=%+v pc=%d, want %+v pc=6", c.R, c.ReadPC, want)
	}
}

// TestSpanCachedDemotesOverlap: the per-cell fallback path (SpanCached
// in spans mode) must demote any overlapping summary before handing
// cells to the callback, so per-cell rules never observe summarized
// state.
func TestSpanCachedDemotesOverlap(t *testing.T) {
	geo := spanTestGeo()
	m := New(1, 0)
	m.EnableSpans(geo)
	reg, lo := region(t, m, 256, 128, 4)

	reg.Lock()
	reg.Install(SpanSum{
		Lo: lo, Hi: lo + 128,
		W: SpanLayer{Warp: 0, Mask: ^uint32(0), Clock: 3, PC: 4, Size: 4},
	})
	reg.Unlock()

	var seen []vc.Epoch
	m.SpanCached(nil, logging.SpaceGlobal, -1, 300, 4, func(c *Cell) {
		seen = append(seen, c.W)
	})
	if len(seen) != 4 {
		t.Fatalf("visited %d cells, want 4", len(seen))
	}
	rank := (300 - 256) / 4
	want := vc.Epoch{T: geo.TIDOf(0, rank), C: 3}
	for i, e := range seen {
		if e != want {
			t.Errorf("cell %d: W=%+v, want materialized %+v", i, e, want)
		}
	}
	reg.Lock()
	if len(reg.Sums()) != 0 {
		t.Error("overlapping summary survived a per-cell access")
	}
	reg.Unlock()
}

// TestSpanRunsBoundaries: page-boundary handling — a span crossing the
// 64 KiB page line splits into two runs with correct byte offsets, and
// a boundary that would cut one lane's access in half is refused.
func TestSpanRunsBoundaries(t *testing.T) {
	m := New(1, 0)
	m.EnableSpans(spanTestGeo())

	type run struct{ lo, hi, off int }
	var runs []run
	ok := m.SpanRuns(nil, logging.SpaceGlobal, -1, 1<<16-64, 128, 4, func(r *Region, lo, hi, off int) {
		runs = append(runs, run{lo, hi, off})
	})
	if !ok || len(runs) != 2 {
		t.Fatalf("page-crossing span: ok=%v runs=%+v", ok, runs)
	}
	if runs[0].off != 0 || runs[1].off != 64 {
		t.Errorf("byte offsets = %d, %d; want 0, 64", runs[0].off, runs[1].off)
	}
	if runs[0].hi-runs[0].lo != 64 || runs[1].hi-runs[1].lo != 64 {
		t.Errorf("run lengths = %d, %d; want 64, 64", runs[0].hi-runs[0].lo, runs[1].hi-runs[1].lo)
	}

	// addr 65534, size 4: the boundary falls inside lane 0's access.
	if m.SpanRuns(nil, logging.SpaceGlobal, -1, 1<<16-2, 8, 4, func(*Region, int, int, int) {}) {
		t.Error("lane-splitting page boundary accepted")
	}

	// Shared: a run past the slab must be refused (clamping semantics).
	ms := New(1, 64)
	ms.EnableSpans(spanTestGeo())
	if ms.SpanRuns(nil, logging.SpaceShared, 0, 32, 64, 4, func(*Region, int, int, int) {}) {
		t.Error("shared overrun accepted; per-cell clamping must win")
	}
}
