package shadow

import (
	"sync"
	"testing"

	"barracuda/internal/logging"
)

// TestStripedPageIdentity: the same address resolves to the same cell no
// matter which path (cached, uncached, concurrent) found it.
func TestStripedPageIdentity(t *testing.T) {
	m := New(1, 0)
	// Addresses chosen to land in different stripes and pages.
	addrs := []uint64{0, 1 << pageBits, 7 << pageBits, 63 << pageBits, 64 << pageBits, 1<<40 + 5}
	for _, a := range addrs {
		c1 := m.CellFor(logging.SpaceGlobal, -1, a)
		var sc SpanCache
		c2 := m.cellCached(&sc, logging.SpaceGlobal, -1, a)
		c3 := m.cellCached(&sc, logging.SpaceGlobal, -1, a) // cache hit path
		if c1 != c2 || c2 != c3 {
			t.Errorf("addr %#x: cell identity differs across lookup paths", a)
		}
	}
	pages := m.Stats().GlobalPages
	if pages != len(addrs) {
		t.Errorf("global pages = %d, want %d", pages, len(addrs))
	}
}

// TestSpanCacheCrossesPages: a cached worker walking sequentially across
// a page boundary must get cells from both pages, not stale cache hits.
func TestSpanCacheCrossesPages(t *testing.T) {
	m := New(1, 0)
	var sc SpanCache
	boundary := uint64(1<<pageBits) - 2
	var visited []*Cell
	m.SpanCached(&sc, logging.SpaceGlobal, -1, boundary, 4, func(c *Cell) {
		visited = append(visited, c)
	})
	if len(visited) != 4 {
		t.Fatalf("visited %d cells, want 4", len(visited))
	}
	// First two cells are in page 0, last two in page 1.
	if visited[0] != m.CellFor(logging.SpaceGlobal, -1, boundary) {
		t.Error("cell 0 mismatch")
	}
	if visited[3] != m.CellFor(logging.SpaceGlobal, -1, boundary+3) {
		t.Error("cell 3 mismatch (page boundary crossed incorrectly)")
	}
	if sc.pageID != 1 {
		t.Errorf("cache left on page %d, want 1", sc.pageID)
	}
}

// TestSpanCacheSharedBlockSwitch: the shared-slab cache must miss when
// the block changes.
func TestSpanCacheSharedBlockSwitch(t *testing.T) {
	m := New(4, 64)
	var sc SpanCache
	c0 := m.cellCached(&sc, logging.SpaceShared, 0, 8)
	c1 := m.cellCached(&sc, logging.SpaceShared, 1, 8)
	if c0 == c1 {
		t.Fatal("different blocks share a shadow cell")
	}
	if got := m.cellCached(&sc, logging.SpaceShared, 0, 8); got != c0 {
		t.Error("switching back to block 0 resolved a different cell")
	}
}

// TestConcurrentStripedAllocation hammers page allocation from many
// goroutines; under -race this also proves the copy-on-write publication
// is sound.
func TestConcurrentStripedAllocation(t *testing.T) {
	m := New(1, 0)
	const workers = 8
	const pagesPerWorker = 32
	cells := make([][]*Cell, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc SpanCache
			for i := 0; i < pagesPerWorker; i++ {
				// All workers touch the same pages concurrently.
				addr := uint64(i) << pageBits
				cells[w] = append(cells[w], m.cellCached(&sc, logging.SpaceGlobal, -1, addr))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range cells[w] {
			if cells[w][i] != cells[0][i] {
				t.Fatalf("worker %d page %d: cell identity differs (allocation raced)", w, i)
			}
		}
	}
	pages := m.Stats().GlobalPages
	if pages != pagesPerWorker {
		t.Errorf("global pages = %d, want %d", pages, pagesPerWorker)
	}
}

// TestCellSpinlockMutualExclusion: the CAS spinlock must actually
// exclude concurrent critical sections.
func TestCellSpinlockMutualExclusion(t *testing.T) {
	var c Cell
	const workers = 4
	const iters = 5000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Lock()
				counter++
				c.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (spinlock failed to exclude)", counter, workers*iters)
	}
}
