// Package shadow implements BARRACUDA's host-side shadow memory (§4.3.3):
// per-location race-detection metadata with a FastTrack-style last-write
// epoch, a last-read epoch or sparse read vector clock, an atomic bit, a
// per-location spinlock, and the synchronization-location map S_x.
//
// Global-memory shadow is allocated on demand through a page table,
// because global allocations can occur while a kernel runs; shared-memory
// shadow is small and keyed by thread block. Metadata granularity is one
// byte by default, for generality — most CUDA code accesses memory at 4-
// byte granularity, and a coarser setting trades precision for speed.
package shadow

import (
	"sync"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/vc"
)

// Cell is the metadata for one shadow location. Access it only while
// holding its lock (the per-location spinlock of the paper).
type Cell struct {
	mu sync.Mutex

	// W is the epoch of the most recent write; Atomic records whether
	// that write came from an atomic operation.
	W      vc.Epoch
	Atomic bool

	// Read metadata: a single epoch in the common totally-ordered case,
	// inflated to a sparse read map after concurrent reads
	// (ReadShared).
	R          vc.Epoch
	Readers    map[vc.TID]vc.Clock
	ReadShared bool

	// Provenance for race reports.
	WritePC uint32
	ReadPC  uint32
}

// Lock acquires the per-location spinlock.
func (c *Cell) Lock() { c.mu.Lock() }

// Unlock releases the per-location spinlock.
func (c *Cell) Unlock() { c.mu.Unlock() }

// ClearReads resets the read metadata (the R' = ⊥e step of the write and
// atomic rules).
func (c *Cell) ClearReads() {
	c.R = vc.Epoch{}
	c.Readers = nil
	c.ReadShared = false
}

// InflateReads switches to the sparse read vector clock, seeding it with
// the existing read epoch (READINFLATE).
func (c *Cell) InflateReads() {
	if c.ReadShared {
		return
	}
	c.Readers = make(map[vc.TID]vc.Clock, 4)
	if !c.R.IsZero() {
		c.Readers[c.R.T] = c.R.C
	}
	c.ReadShared = true
}

// pageBits is the per-page coverage: 64 KiB of device memory per page.
const pageBits = 16

type page struct {
	cells []Cell
}

// Memory is the shadow of one device: a page table for global memory plus
// per-block shared-memory shadows.
type Memory struct {
	granularity int

	mu     sync.RWMutex
	global map[uint64]*page
	shared map[int32][]Cell
	shSize int64

	syncMu sync.Mutex
	syncs  map[Key]*SyncLoc
}

// Key identifies a shadow location: the memory space, the thread block
// (shared memory only; -1 for global) and the address.
type Key struct {
	Space logging.SpaceID
	Block int32
	Addr  uint64
}

// New creates a shadow memory. granularity is the bytes covered per cell
// (1 for full generality, 4 when all accesses are word-aligned);
// sharedBytes is the per-block shared-memory size to preallocate.
func New(granularity int, sharedBytes int64) *Memory {
	if granularity < 1 {
		granularity = 1
	}
	return &Memory{
		granularity: granularity,
		global:      make(map[uint64]*page),
		shared:      make(map[int32][]Cell),
		shSize:      sharedBytes,
		syncs:       make(map[Key]*SyncLoc),
	}
}

// Granularity returns the bytes covered per cell.
func (m *Memory) Granularity() int { return m.granularity }

// CellFor returns the cell covering (space, block, addr), allocating
// shadow pages on demand. Callers lock the cell before use.
func (m *Memory) CellFor(space logging.SpaceID, block int32, addr uint64) *Cell {
	if space == logging.SpaceShared {
		return m.sharedCell(block, addr)
	}
	return m.globalCell(addr)
}

func (m *Memory) globalCell(addr uint64) *Cell {
	pageID := addr >> pageBits
	idx := (addr & (1<<pageBits - 1)) / uint64(m.granularity)
	m.mu.RLock()
	p := m.global[pageID]
	m.mu.RUnlock()
	if p == nil {
		m.mu.Lock()
		p = m.global[pageID]
		if p == nil {
			p = &page{cells: make([]Cell, (1<<pageBits)/m.granularity)}
			m.global[pageID] = p
		}
		m.mu.Unlock()
	}
	return &p.cells[idx]
}

func (m *Memory) sharedCell(block int32, addr uint64) *Cell {
	idx := addr / uint64(m.granularity)
	m.mu.RLock()
	cells := m.shared[block]
	m.mu.RUnlock()
	if cells == nil {
		m.mu.Lock()
		cells = m.shared[block]
		if cells == nil {
			n := m.shSize/int64(m.granularity) + 1
			cells = make([]Cell, n)
			m.shared[block] = cells
		}
		m.mu.Unlock()
	}
	if idx >= uint64(len(cells)) {
		// Out-of-bounds shared accesses are the simulator's problem;
		// clamp defensively.
		idx = uint64(len(cells)) - 1
	}
	return &cells[idx]
}

// Span visits every cell covering [addr, addr+size) in (space, block),
// invoking fn with each cell locked.
func (m *Memory) Span(space logging.SpaceID, block int32, addr uint64, size int, fn func(*Cell)) {
	if size < 1 {
		size = 1
	}
	step := uint64(m.granularity)
	first := addr / step * step
	for a := first; a < addr+uint64(size); a += step {
		c := m.CellFor(space, block, a)
		c.Lock()
		fn(c)
		c.Unlock()
	}
}

// Stats reports shadow occupancy.
func (m *Memory) Stats() (globalPages int, sharedBlocks int, syncLocs int) {
	m.mu.RLock()
	globalPages = len(m.global)
	sharedBlocks = len(m.shared)
	m.mu.RUnlock()
	m.syncMu.Lock()
	syncLocs = len(m.syncs)
	m.syncMu.Unlock()
	return
}

// SyncLoc is the S_x metadata of one synchronization location: a map from
// thread block to the (compressed) vector clock most recently released at
// that scope, plus a grid-wide entry written by global releases.
type SyncLoc struct {
	mu       sync.Mutex
	perBlock map[int]*ptvc.Snapshot
	global   *ptvc.Snapshot
}

// SyncFor returns (creating if needed) the synchronization metadata for a
// location. GPU code usually has few synchronization locations, so these
// live in their own map rather than in shadow cells.
func (m *Memory) SyncFor(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	s := m.syncs[k]
	if s == nil {
		s = &SyncLoc{perBlock: make(map[int]*ptvc.Snapshot)}
		m.syncs[k] = s
	}
	return s
}

// PeekSync returns the synchronization metadata for a location if it
// exists, without creating it.
func (m *Memory) PeekSync(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	return m.syncs[k]
}

// Lock acquires the sync-location lock.
func (s *SyncLoc) Lock() { s.mu.Lock() }

// Unlock releases the sync-location lock.
func (s *SyncLoc) Unlock() { s.mu.Unlock() }

// ReleaseBlock implements RELBLOCK: S_x[b] := snap.
func (s *SyncLoc) ReleaseBlock(b int, snap *ptvc.Snapshot) {
	s.perBlock[b] = snap
}

// ReleaseGlobal implements RELGLOBAL: every block's entry becomes snap.
func (s *SyncLoc) ReleaseGlobal(snap *ptvc.Snapshot) {
	s.perBlock = make(map[int]*ptvc.Snapshot)
	s.global = snap
}

// AcquireBlock returns the snapshots a block-scoped acquire in block b
// joins: S_x[b], which is the block's own entry when a block release has
// replaced it, and otherwise the last global release.
func (s *SyncLoc) AcquireBlock(b int) []*ptvc.Snapshot {
	if snap := s.perBlock[b]; snap != nil {
		return []*ptvc.Snapshot{snap}
	}
	if s.global != nil {
		return []*ptvc.Snapshot{s.global}
	}
	return nil
}

// AcquireGlobal returns the snapshots a global-scoped acquire joins:
// ⊔_b S_x[b] over all totalBlocks blocks. The global entry participates
// only while some block still holds it (i.e. has no per-block override).
func (s *SyncLoc) AcquireGlobal(totalBlocks int) []*ptvc.Snapshot {
	var out []*ptvc.Snapshot
	for _, snap := range s.perBlock {
		out = append(out, snap)
	}
	if s.global != nil && len(s.perBlock) < totalBlocks {
		out = append(out, s.global)
	}
	return out
}
