// Package shadow implements BARRACUDA's host-side shadow memory (§4.3.3):
// per-location race-detection metadata with a FastTrack-style last-write
// epoch, a last-read epoch or sparse read vector clock, an atomic bit, a
// per-location spinlock, and the synchronization-location map S_x.
//
// Global-memory shadow is allocated on demand through a page table,
// because global allocations can occur while a kernel runs; shared-memory
// shadow is small and keyed by thread block. Metadata granularity is one
// byte by default, for generality — most CUDA code accesses memory at 4-
// byte granularity, and a coarser setting trades precision for speed.
//
// The page table is built for many concurrent detector threads: it is a
// fixed array of stripes, each holding an atomically-published immutable
// page map. Lookups are a single atomic load plus a map read; only the
// rare page allocation takes a (striped) mutex, re-checks under the lock,
// and publishes a copied map. On top of that, each detector worker keeps
// a SpanCache — the last global page and last shared-block slab it
// touched — so the common sequential-access pattern resolves cells with
// no shared-memory traffic at all.
package shadow

import (
	"runtime"
	"sync"
	"sync/atomic"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/vc"
)

// Cell is the metadata for one shadow location. Access it only while
// holding its lock (the per-location spinlock of the paper).
type Cell struct {
	// lock is a CAS spinlock (0 free, 1 held) rather than a sync.Mutex:
	// cells are the per-record fast path of the detector, and the paper
	// prescribes a per-location spinlock. Contention is near zero (two
	// detector threads must touch the same location at the same moment),
	// so the uncontended single-CAS cost is what matters.
	lock atomic.Uint32

	// W is the epoch of the most recent write; Atomic records whether
	// that write came from an atomic operation.
	W      vc.Epoch
	Atomic bool

	// Read metadata: a single epoch in the common totally-ordered case,
	// inflated to a sparse read map after concurrent reads
	// (ReadShared).
	R          vc.Epoch
	Readers    map[vc.TID]vc.Clock
	ReadShared bool

	// Provenance for race reports.
	WritePC uint32
	ReadPC  uint32
}

// Lock acquires the per-location spinlock.
func (c *Cell) Lock() {
	for !c.lock.CompareAndSwap(0, 1) {
		// The critical sections are a handful of epoch compares; a
		// short spin almost always wins. Yield after a few rounds so a
		// descheduled holder cannot starve us at low GOMAXPROCS.
		for i := 0; i < 8; i++ {
			if c.lock.Load() == 0 {
				break
			}
		}
		if c.lock.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the per-location spinlock.
func (c *Cell) Unlock() { c.lock.Store(0) }

// ClearReads resets the read metadata (the R' = ⊥e step of the write and
// atomic rules).
func (c *Cell) ClearReads() {
	c.R = vc.Epoch{}
	c.Readers = nil
	c.ReadShared = false
}

// InflateReads switches to the sparse read vector clock, seeding it with
// the existing read epoch (READINFLATE).
func (c *Cell) InflateReads() {
	if c.ReadShared {
		return
	}
	c.Readers = make(map[vc.TID]vc.Clock, 4)
	if !c.R.IsZero() {
		c.Readers[c.R.T] = c.R.C
	}
	c.ReadShared = true
}

// pageBits is the per-page coverage: 64 KiB of device memory per page.
const pageBits = 16

// PageBytes is the device-memory coverage of one global shadow page —
// exported so region-granular callers (the core's ownership fast path)
// can detect page-crossing accesses without resolving both ends.
const PageBytes = 1 << pageBits

// pageStripes is the fixed stripe count of the global page table. Power
// of two so stripe selection is a mask; 64 stripes keep the per-stripe
// copy-on-write maps tiny and allocation contention negligible.
const pageStripes = 64

// pageMap is an immutable pageID→region snapshot; a stripe publishes a
// fresh copy on every allocation.
type pageMap map[uint64]*Region

// stripe is one shard of the global page table.
type stripe struct {
	pages atomic.Pointer[pageMap] // immutable; nil until first allocation
	mu    sync.Mutex              // serializes allocation (slow path) only
}

// blockMap is the immutable blockID→shared-slab counterpart for shared
// memory, published the same way.
type blockMap map[int32]*Region

// Memory is the shadow of one device: a striped page table for global
// memory plus per-block shared-memory shadows.
type Memory struct {
	granularity int

	stripes [pageStripes]stripe

	sharedPtr atomic.Pointer[blockMap]
	sharedMu  sync.Mutex // allocation slow path only
	shSize    int64

	// Coalesced-span mode (see span.go): when enabled, every
	// record-path cell access takes its region's lock first, so spans
	// and per-cell work serialize per region and uniform-span summaries
	// can be demoted transparently. geo maps (warp, lane) ranks back to
	// thread ids when a summary is materialized into cells.
	spans bool
	geo   ptvc.Geometry

	// Adaptive ownership tier (owner.go). owned gates the per-region
	// tracking hooks; the counters are fleet-visible diagnostics.
	owned         bool
	ownClaims     atomic.Uint64
	ownPromotions atomic.Uint64
	ownInflations atomic.Uint64
	ownFast       atomic.Uint64

	// Bounded shadow (owner.go). capBytes == 0 means unbounded; gen is
	// bumped on every eviction/compaction so worker SpanCaches drop
	// stale region pointers.
	capBytes       int64
	resident       atomic.Int64
	peakResident   atomic.Int64
	useClock       atomic.Uint64
	gen            atomic.Uint64
	evictMu        sync.Mutex
	evictions      atomic.Uint64
	liveEvictions  atomic.Uint64
	compactions    atomic.Uint64
	compactedBytes atomic.Int64
	degraded       atomic.Bool

	syncMu sync.Mutex
	syncs  map[Key]*SyncLoc
}

// Key identifies a shadow location: the memory space, the thread block
// (shared memory only; -1 for global) and the address.
type Key struct {
	Space logging.SpaceID
	Block int32
	Addr  uint64
}

// New creates a shadow memory. granularity is the bytes covered per cell
// (1 for full generality, 4 when all accesses are word-aligned);
// sharedBytes is the per-block shared-memory size to preallocate.
func New(granularity int, sharedBytes int64) *Memory {
	if granularity < 1 {
		granularity = 1
	}
	return &Memory{
		granularity: granularity,
		shSize:      sharedBytes,
		syncs:       make(map[Key]*SyncLoc),
	}
}

// Granularity returns the bytes covered per cell.
func (m *Memory) Granularity() int { return m.granularity }

// EnableSpans switches the shadow into coalesced-span mode: uniform-span
// summaries may be installed per region (see span.go), and every
// record-path cell access goes through its region's lock so summaries
// demote transparently before per-cell state is observed. geo is needed
// to materialize a summary's per-rank epochs back into cells. Call once,
// before any detection traffic.
func (m *Memory) EnableSpans(geo ptvc.Geometry) {
	m.spans = true
	m.geo = geo
}

// SpansEnabled reports whether coalesced-span mode is on.
func (m *Memory) SpansEnabled() bool { return m.spans }

// SpanCache is one detector worker's private lookup cache: the last
// global page and the last shared-block slab it resolved. GPU warps
// overwhelmingly access runs of nearby addresses, so almost every lookup
// after the first hits the cache and touches no shared state. The zero
// value is ready to use. A SpanCache must not be shared across
// goroutines.
type SpanCache struct {
	pageID uint64
	page   *Region // nil until the first global hit

	sharedBlock int32
	shared      *Region // nil until the first shared hit

	// gen is the shadow generation the cached pointers were resolved
	// under; a mismatch (bounded mode only) means a region may have been
	// evicted or compacted since, so both pointers are dropped.
	gen uint64
}

// validateCache drops a worker cache whose generation is stale (bounded
// mode only: generations only move when regions can disappear).
func (m *Memory) validateCache(sc *SpanCache) {
	if sc == nil || m.capBytes <= 0 {
		return
	}
	if g := m.gen.Load(); sc.gen != g {
		sc.gen = g
		sc.page = nil
		sc.shared = nil
	}
}

// globalPage returns (allocating if needed) the page covering pageID.
func (m *Memory) globalPage(pageID uint64) *Region {
	s := &m.stripes[pageID&(pageStripes-1)]
	if pm := s.pages.Load(); pm != nil {
		if p := (*pm)[pageID]; p != nil {
			return p
		}
	}
	// Bounded mode: make room BEFORE taking the stripe lock, so the
	// evictor (which republishes victim stripes under their own locks)
	// never runs inside one — the lock order is evictMu → stripe.mu.
	ncells := (1 << pageBits) / m.granularity
	m.makeRoom(int64(ncells) * cellBytes)
	// Double-checked allocation: re-load under the stripe lock, then
	// publish a copied map so readers never see a map being written.
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.pages.Load()
	if old != nil {
		if p := (*old)[pageID]; p != nil {
			return p
		}
	}
	p := &Region{cells: make([]Cell, ncells)}
	m.addResident(p.RegionBytes())
	next := make(pageMap, 1)
	if old != nil {
		next = make(pageMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[pageID] = p
	s.pages.Store(&next)
	return p
}

// sharedSlab returns (allocating if needed) block b's shared-memory
// shadow slab.
func (m *Memory) sharedSlab(block int32) *Region {
	if bm := m.sharedPtr.Load(); bm != nil {
		if r := (*bm)[block]; r != nil {
			return r
		}
	}
	n := m.shSize/int64(m.granularity) + 1
	m.makeRoom(n * cellBytes)
	m.sharedMu.Lock()
	defer m.sharedMu.Unlock()
	old := m.sharedPtr.Load()
	if old != nil {
		if r := (*old)[block]; r != nil {
			return r
		}
	}
	r := &Region{cells: make([]Cell, n)}
	m.addResident(r.RegionBytes())
	next := make(blockMap, 1)
	if old != nil {
		next = make(blockMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[block] = r
	m.sharedPtr.Store(&next)
	return r
}

// CellFor returns the cell covering (space, block, addr), allocating
// shadow pages on demand. Callers lock the cell before use. In span
// mode any summary covering the cell is demoted first; CellFor is then
// only race-free against concurrent span traffic on other regions, so
// concurrent production code must go through SpanCached instead.
func (m *Memory) CellFor(space logging.SpaceID, block int32, addr uint64) *Cell {
	reg, idx := m.regionCached(nil, space, block, addr)
	if m.spans {
		reg.Lock()
		reg.demoteOverlapping(m, idx, idx+1)
		reg.markLive()
		// The accessing warp is unknown on this path, so the only safe
		// ownership transition is straight to shared.
		reg.inflateOwner(m)
		reg.Unlock()
	}
	return &reg.cells[idx]
}

// regionCached resolves the region and in-region cell index covering
// one address, consulting and refreshing the worker's cache when one is
// supplied. Shared-memory indices clamp to the slab (out-of-bounds
// shared accesses are the simulator's problem).
func (m *Memory) regionCached(sc *SpanCache, space logging.SpaceID, block int32, addr uint64) (*Region, int) {
	if space == logging.SpaceShared {
		reg := m.sharedRegion(sc, block)
		idx := addr / uint64(m.granularity)
		if idx >= uint64(len(reg.cells)) {
			idx = uint64(len(reg.cells)) - 1
		}
		return reg, int(idx)
	}
	m.validateCache(sc)
	pageID := addr >> pageBits
	var reg *Region
	if sc != nil && sc.page != nil && sc.pageID == pageID {
		reg = sc.page
	} else {
		reg = m.globalPage(pageID)
		if sc != nil {
			sc.pageID = pageID
			sc.page = reg
		}
	}
	if m.capBytes > 0 {
		m.stamp(reg)
	}
	return reg, int((addr & (1<<pageBits - 1)) / uint64(m.granularity))
}

// RegionFor resolves the region and in-region cell index covering one
// address through the worker cache — the region-granular lookup the
// core's ownership fast path builds on. Shared-memory indices clamp to
// the slab exactly like the per-cell path; callers that must reject
// out-of-slab addresses compare the returned index against addr /
// granularity.
func (m *Memory) RegionFor(sc *SpanCache, space logging.SpaceID, block int32, addr uint64) (*Region, int) {
	return m.regionCached(sc, space, block, addr)
}

// cellCached resolves one cell through the worker cache (legacy path;
// does not demote summaries).
func (m *Memory) cellCached(sc *SpanCache, space logging.SpaceID, block int32, addr uint64) *Cell {
	reg, idx := m.regionCached(sc, space, block, addr)
	return &reg.cells[idx]
}

// Span visits every cell covering [addr, addr+size) in (space, block),
// invoking fn with each cell locked.
func (m *Memory) Span(space logging.SpaceID, block int32, addr uint64, size int, fn func(*Cell)) {
	m.SpanCached(nil, space, block, addr, size, fn)
}

// SpanCached is Span with a worker-private lookup cache; sc may be nil.
//
// In span mode the visit additionally holds the current region's lock
// and demotes every uniform-span summary the span overlaps before any
// cell is observed, preserving exact per-cell semantics; with spans
// disabled the loop is the original lock-free-table walk, byte for byte.
func (m *Memory) SpanCached(sc *SpanCache, space logging.SpaceID, block int32, addr uint64, size int, fn func(*Cell)) {
	if size < 1 {
		size = 1
	}
	step := uint64(m.granularity)
	first := addr / step * step
	end := addr + uint64(size)
	if !m.spans {
		for a := first; a < end; a += step {
			c := m.cellCached(sc, space, block, a)
			c.Lock()
			fn(c)
			c.Unlock()
		}
		return
	}
	var cur *Region
	for a := first; a < end; a += step {
		reg, idx := m.regionCached(sc, space, block, a)
		if reg != cur {
			if cur != nil {
				cur.Unlock()
			}
			cur = reg
			cur.Lock()
			// Demote everything this span will touch within the region.
			stop := regionEnd(space, a)
			if end < stop {
				stop = end
			}
			last := idx + int((stop-a-1)/step)
			if last >= len(reg.cells) {
				last = len(reg.cells) - 1
			}
			reg.demoteOverlapping(m, idx, last+1)
			reg.markLive()
			reg.inflateOwner(m)
		}
		c := &reg.cells[idx]
		c.Lock()
		fn(c)
		c.Unlock()
	}
	if cur != nil {
		cur.Unlock()
	}
}

// regionEnd returns the first address past the region containing a.
func regionEnd(space logging.SpaceID, a uint64) uint64 {
	if space == logging.SpaceShared {
		return ^uint64(0) // one slab per block
	}
	return (a>>pageBits + 1) << pageBits
}

// SyncLoc is the S_x metadata of one synchronization location: a map from
// thread block to the (compressed) vector clock most recently released at
// that scope, plus a grid-wide entry written by global releases.
type SyncLoc struct {
	mu       sync.Mutex
	perBlock map[int]*ptvc.Snapshot
	global   *ptvc.Snapshot
}

// SyncFor returns (creating if needed) the synchronization metadata for a
// location. GPU code usually has few synchronization locations, so these
// live in their own map rather than in shadow cells.
func (m *Memory) SyncFor(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	s := m.syncs[k]
	if s == nil {
		s = &SyncLoc{perBlock: make(map[int]*ptvc.Snapshot)}
		m.syncs[k] = s
	}
	return s
}

// PeekSync returns the synchronization metadata for a location if it
// exists, without creating it.
func (m *Memory) PeekSync(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	return m.syncs[k]
}

// Lock acquires the sync-location lock.
func (s *SyncLoc) Lock() { s.mu.Lock() }

// Unlock releases the sync-location lock.
func (s *SyncLoc) Unlock() { s.mu.Unlock() }

// ReleaseBlock implements RELBLOCK: S_x[b] := snap.
func (s *SyncLoc) ReleaseBlock(b int, snap *ptvc.Snapshot) {
	s.perBlock[b] = snap
}

// ReleaseGlobal implements RELGLOBAL: every block's entry becomes snap.
func (s *SyncLoc) ReleaseGlobal(snap *ptvc.Snapshot) {
	s.perBlock = make(map[int]*ptvc.Snapshot)
	s.global = snap
}

// AcquireBlock returns the snapshots a block-scoped acquire in block b
// joins: S_x[b], which is the block's own entry when a block release has
// replaced it, and otherwise the last global release.
func (s *SyncLoc) AcquireBlock(b int) []*ptvc.Snapshot {
	if snap := s.perBlock[b]; snap != nil {
		return []*ptvc.Snapshot{snap}
	}
	if s.global != nil {
		return []*ptvc.Snapshot{s.global}
	}
	return nil
}

// AcquireGlobal returns the snapshots a global-scoped acquire joins:
// ⊔_b S_x[b] over all totalBlocks blocks. The global entry participates
// only while some block still holds it (i.e. has no per-block override).
func (s *SyncLoc) AcquireGlobal(totalBlocks int) []*ptvc.Snapshot {
	var out []*ptvc.Snapshot
	for _, snap := range s.perBlock {
		out = append(out, snap)
	}
	if s.global != nil && len(s.perBlock) < totalBlocks {
		out = append(out, s.global)
	}
	return out
}
