// Package shadow implements BARRACUDA's host-side shadow memory (§4.3.3):
// per-location race-detection metadata with a FastTrack-style last-write
// epoch, a last-read epoch or sparse read vector clock, an atomic bit, a
// per-location spinlock, and the synchronization-location map S_x.
//
// Global-memory shadow is allocated on demand through a page table,
// because global allocations can occur while a kernel runs; shared-memory
// shadow is small and keyed by thread block. Metadata granularity is one
// byte by default, for generality — most CUDA code accesses memory at 4-
// byte granularity, and a coarser setting trades precision for speed.
//
// The page table is built for many concurrent detector threads: it is a
// fixed array of stripes, each holding an atomically-published immutable
// page map. Lookups are a single atomic load plus a map read; only the
// rare page allocation takes a (striped) mutex, re-checks under the lock,
// and publishes a copied map. On top of that, each detector worker keeps
// a SpanCache — the last global page and last shared-block slab it
// touched — so the common sequential-access pattern resolves cells with
// no shared-memory traffic at all.
package shadow

import (
	"runtime"
	"sync"
	"sync/atomic"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/vc"
)

// Cell is the metadata for one shadow location. Access it only while
// holding its lock (the per-location spinlock of the paper).
type Cell struct {
	// lock is a CAS spinlock (0 free, 1 held) rather than a sync.Mutex:
	// cells are the per-record fast path of the detector, and the paper
	// prescribes a per-location spinlock. Contention is near zero (two
	// detector threads must touch the same location at the same moment),
	// so the uncontended single-CAS cost is what matters.
	lock atomic.Uint32

	// W is the epoch of the most recent write; Atomic records whether
	// that write came from an atomic operation.
	W      vc.Epoch
	Atomic bool

	// Read metadata: a single epoch in the common totally-ordered case,
	// inflated to a sparse read map after concurrent reads
	// (ReadShared).
	R          vc.Epoch
	Readers    map[vc.TID]vc.Clock
	ReadShared bool

	// Provenance for race reports.
	WritePC uint32
	ReadPC  uint32
}

// Lock acquires the per-location spinlock.
func (c *Cell) Lock() {
	for !c.lock.CompareAndSwap(0, 1) {
		// The critical sections are a handful of epoch compares; a
		// short spin almost always wins. Yield after a few rounds so a
		// descheduled holder cannot starve us at low GOMAXPROCS.
		for i := 0; i < 8; i++ {
			if c.lock.Load() == 0 {
				break
			}
		}
		if c.lock.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the per-location spinlock.
func (c *Cell) Unlock() { c.lock.Store(0) }

// ClearReads resets the read metadata (the R' = ⊥e step of the write and
// atomic rules).
func (c *Cell) ClearReads() {
	c.R = vc.Epoch{}
	c.Readers = nil
	c.ReadShared = false
}

// InflateReads switches to the sparse read vector clock, seeding it with
// the existing read epoch (READINFLATE).
func (c *Cell) InflateReads() {
	if c.ReadShared {
		return
	}
	c.Readers = make(map[vc.TID]vc.Clock, 4)
	if !c.R.IsZero() {
		c.Readers[c.R.T] = c.R.C
	}
	c.ReadShared = true
}

// pageBits is the per-page coverage: 64 KiB of device memory per page.
const pageBits = 16

// pageStripes is the fixed stripe count of the global page table. Power
// of two so stripe selection is a mask; 64 stripes keep the per-stripe
// copy-on-write maps tiny and allocation contention negligible.
const pageStripes = 64

type page struct {
	cells []Cell
}

// pageMap is an immutable pageID→page snapshot; a stripe publishes a
// fresh copy on every allocation.
type pageMap map[uint64]*page

// stripe is one shard of the global page table.
type stripe struct {
	pages atomic.Pointer[pageMap] // immutable; nil until first allocation
	mu    sync.Mutex              // serializes allocation (slow path) only
}

// blockMap is the immutable blockID→shared-slab counterpart for shared
// memory, published the same way.
type blockMap map[int32][]Cell

// Memory is the shadow of one device: a striped page table for global
// memory plus per-block shared-memory shadows.
type Memory struct {
	granularity int

	stripes [pageStripes]stripe

	sharedPtr atomic.Pointer[blockMap]
	sharedMu  sync.Mutex // allocation slow path only
	shSize    int64

	syncMu sync.Mutex
	syncs  map[Key]*SyncLoc
}

// Key identifies a shadow location: the memory space, the thread block
// (shared memory only; -1 for global) and the address.
type Key struct {
	Space logging.SpaceID
	Block int32
	Addr  uint64
}

// New creates a shadow memory. granularity is the bytes covered per cell
// (1 for full generality, 4 when all accesses are word-aligned);
// sharedBytes is the per-block shared-memory size to preallocate.
func New(granularity int, sharedBytes int64) *Memory {
	if granularity < 1 {
		granularity = 1
	}
	return &Memory{
		granularity: granularity,
		shSize:      sharedBytes,
		syncs:       make(map[Key]*SyncLoc),
	}
}

// Granularity returns the bytes covered per cell.
func (m *Memory) Granularity() int { return m.granularity }

// SpanCache is one detector worker's private lookup cache: the last
// global page and the last shared-block slab it resolved. GPU warps
// overwhelmingly access runs of nearby addresses, so almost every lookup
// after the first hits the cache and touches no shared state. The zero
// value is ready to use. A SpanCache must not be shared across
// goroutines.
type SpanCache struct {
	pageID uint64
	page   *page // nil until the first global hit

	sharedBlock int32
	shared      []Cell // nil until the first shared hit
}

// globalPage returns (allocating if needed) the page covering pageID.
func (m *Memory) globalPage(pageID uint64) *page {
	s := &m.stripes[pageID&(pageStripes-1)]
	if pm := s.pages.Load(); pm != nil {
		if p := (*pm)[pageID]; p != nil {
			return p
		}
	}
	// Double-checked allocation: re-load under the stripe lock, then
	// publish a copied map so readers never see a map being written.
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.pages.Load()
	if old != nil {
		if p := (*old)[pageID]; p != nil {
			return p
		}
	}
	p := &page{cells: make([]Cell, (1<<pageBits)/m.granularity)}
	next := make(pageMap, 1)
	if old != nil {
		next = make(pageMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[pageID] = p
	s.pages.Store(&next)
	return p
}

// sharedSlab returns (allocating if needed) block b's shared-memory
// shadow slab.
func (m *Memory) sharedSlab(block int32) []Cell {
	if bm := m.sharedPtr.Load(); bm != nil {
		if cells := (*bm)[block]; cells != nil {
			return cells
		}
	}
	m.sharedMu.Lock()
	defer m.sharedMu.Unlock()
	old := m.sharedPtr.Load()
	if old != nil {
		if cells := (*old)[block]; cells != nil {
			return cells
		}
	}
	n := m.shSize/int64(m.granularity) + 1
	cells := make([]Cell, n)
	next := make(blockMap, 1)
	if old != nil {
		next = make(blockMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	next[block] = cells
	m.sharedPtr.Store(&next)
	return cells
}

// CellFor returns the cell covering (space, block, addr), allocating
// shadow pages on demand. Callers lock the cell before use.
func (m *Memory) CellFor(space logging.SpaceID, block int32, addr uint64) *Cell {
	return m.cellCached(nil, space, block, addr)
}

// cellCached resolves one cell, consulting and refreshing the worker's
// cache when one is supplied.
func (m *Memory) cellCached(sc *SpanCache, space logging.SpaceID, block int32, addr uint64) *Cell {
	if space == logging.SpaceShared {
		var cells []Cell
		if sc != nil && sc.shared != nil && sc.sharedBlock == block {
			cells = sc.shared
		} else {
			cells = m.sharedSlab(block)
			if sc != nil {
				sc.sharedBlock = block
				sc.shared = cells
			}
		}
		idx := addr / uint64(m.granularity)
		if idx >= uint64(len(cells)) {
			// Out-of-bounds shared accesses are the simulator's problem;
			// clamp defensively.
			idx = uint64(len(cells)) - 1
		}
		return &cells[idx]
	}
	pageID := addr >> pageBits
	var p *page
	if sc != nil && sc.page != nil && sc.pageID == pageID {
		p = sc.page
	} else {
		p = m.globalPage(pageID)
		if sc != nil {
			sc.pageID = pageID
			sc.page = p
		}
	}
	idx := (addr & (1<<pageBits - 1)) / uint64(m.granularity)
	return &p.cells[idx]
}

// Span visits every cell covering [addr, addr+size) in (space, block),
// invoking fn with each cell locked.
func (m *Memory) Span(space logging.SpaceID, block int32, addr uint64, size int, fn func(*Cell)) {
	m.SpanCached(nil, space, block, addr, size, fn)
}

// SpanCached is Span with a worker-private lookup cache; sc may be nil.
func (m *Memory) SpanCached(sc *SpanCache, space logging.SpaceID, block int32, addr uint64, size int, fn func(*Cell)) {
	if size < 1 {
		size = 1
	}
	step := uint64(m.granularity)
	first := addr / step * step
	for a := first; a < addr+uint64(size); a += step {
		c := m.cellCached(sc, space, block, a)
		c.Lock()
		fn(c)
		c.Unlock()
	}
}

// Stats reports shadow occupancy.
func (m *Memory) Stats() (globalPages int, sharedBlocks int, syncLocs int) {
	for i := range m.stripes {
		if pm := m.stripes[i].pages.Load(); pm != nil {
			globalPages += len(*pm)
		}
	}
	if bm := m.sharedPtr.Load(); bm != nil {
		sharedBlocks = len(*bm)
	}
	m.syncMu.Lock()
	syncLocs = len(m.syncs)
	m.syncMu.Unlock()
	return
}

// SyncLoc is the S_x metadata of one synchronization location: a map from
// thread block to the (compressed) vector clock most recently released at
// that scope, plus a grid-wide entry written by global releases.
type SyncLoc struct {
	mu       sync.Mutex
	perBlock map[int]*ptvc.Snapshot
	global   *ptvc.Snapshot
}

// SyncFor returns (creating if needed) the synchronization metadata for a
// location. GPU code usually has few synchronization locations, so these
// live in their own map rather than in shadow cells.
func (m *Memory) SyncFor(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	s := m.syncs[k]
	if s == nil {
		s = &SyncLoc{perBlock: make(map[int]*ptvc.Snapshot)}
		m.syncs[k] = s
	}
	return s
}

// PeekSync returns the synchronization metadata for a location if it
// exists, without creating it.
func (m *Memory) PeekSync(k Key) *SyncLoc {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	return m.syncs[k]
}

// Lock acquires the sync-location lock.
func (s *SyncLoc) Lock() { s.mu.Lock() }

// Unlock releases the sync-location lock.
func (s *SyncLoc) Unlock() { s.mu.Unlock() }

// ReleaseBlock implements RELBLOCK: S_x[b] := snap.
func (s *SyncLoc) ReleaseBlock(b int, snap *ptvc.Snapshot) {
	s.perBlock[b] = snap
}

// ReleaseGlobal implements RELGLOBAL: every block's entry becomes snap.
func (s *SyncLoc) ReleaseGlobal(snap *ptvc.Snapshot) {
	s.perBlock = make(map[int]*ptvc.Snapshot)
	s.global = snap
}

// AcquireBlock returns the snapshots a block-scoped acquire in block b
// joins: S_x[b], which is the block's own entry when a block release has
// replaced it, and otherwise the last global release.
func (s *SyncLoc) AcquireBlock(b int) []*ptvc.Snapshot {
	if snap := s.perBlock[b]; snap != nil {
		return []*ptvc.Snapshot{snap}
	}
	if s.global != nil {
		return []*ptvc.Snapshot{s.global}
	}
	return nil
}

// AcquireGlobal returns the snapshots a global-scoped acquire joins:
// ⊔_b S_x[b] over all totalBlocks blocks. The global entry participates
// only while some block still holds it (i.e. has no per-block override).
func (s *SyncLoc) AcquireGlobal(totalBlocks int) []*ptvc.Snapshot {
	var out []*ptvc.Snapshot
	for _, snap := range s.perBlock {
		out = append(out, snap)
	}
	if s.global != nil && len(s.perBlock) < totalBlocks {
		out = append(out, s.global)
	}
	return out
}
