package shadow

import (
	"sync"
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/vc"
)

func TestGlobalCellIdentity(t *testing.T) {
	m := New(1, 0)
	c1 := m.CellFor(logging.SpaceGlobal, -1, 0x10000)
	c2 := m.CellFor(logging.SpaceGlobal, -1, 0x10000)
	if c1 != c2 {
		t.Error("same address produced different cells")
	}
	c3 := m.CellFor(logging.SpaceGlobal, -1, 0x10001)
	if c1 == c3 {
		t.Error("adjacent addresses share a cell at 1-byte granularity")
	}
}

func TestGranularity4(t *testing.T) {
	m := New(4, 0)
	c1 := m.CellFor(logging.SpaceGlobal, -1, 0x10000)
	c2 := m.CellFor(logging.SpaceGlobal, -1, 0x10003)
	if c1 != c2 {
		t.Error("same word produced different cells at 4-byte granularity")
	}
	c3 := m.CellFor(logging.SpaceGlobal, -1, 0x10004)
	if c1 == c3 {
		t.Error("different words share a cell")
	}
}

func TestSharedCellPerBlock(t *testing.T) {
	m := New(1, 128)
	b0 := m.CellFor(logging.SpaceShared, 0, 16)
	b1 := m.CellFor(logging.SpaceShared, 1, 16)
	if b0 == b1 {
		t.Error("shared shadow not block-private")
	}
	again := m.CellFor(logging.SpaceShared, 0, 16)
	if b0 != again {
		t.Error("shared cell identity unstable")
	}
}

func TestPageAllocationOnDemand(t *testing.T) {
	m := New(1, 0)
	if p := m.Stats().GlobalPages; p != 0 {
		t.Fatalf("pages = %d before any access", p)
	}
	m.CellFor(logging.SpaceGlobal, -1, 0x10000)
	m.CellFor(logging.SpaceGlobal, -1, 0x10008)   // same page
	m.CellFor(logging.SpaceGlobal, -1, 0x2000000) // different page
	if p := m.Stats().GlobalPages; p != 2 {
		t.Errorf("pages = %d, want 2", p)
	}
}

func TestSpanVisitsEachByte(t *testing.T) {
	m := New(1, 0)
	var visited []*Cell
	m.Span(logging.SpaceGlobal, -1, 0x10000, 4, func(c *Cell) {
		visited = append(visited, c)
	})
	if len(visited) != 4 {
		t.Fatalf("span visited %d cells, want 4", len(visited))
	}
	seen := map[*Cell]bool{}
	for _, c := range visited {
		if seen[c] {
			t.Error("span visited a cell twice")
		}
		seen[c] = true
	}
}

func TestSpanGranularityAligned(t *testing.T) {
	m := New(4, 0)
	count := 0
	// An unaligned 4-byte access spanning two words visits both cells.
	m.Span(logging.SpaceGlobal, -1, 0x10002, 4, func(c *Cell) { count++ })
	if count != 2 {
		t.Errorf("span visited %d cells, want 2", count)
	}
}

func TestCellReadInflation(t *testing.T) {
	var c Cell
	c.R = vc.Epoch{T: 1, C: 5}
	c.InflateReads()
	if !c.ReadShared || c.Readers[1] != 5 {
		t.Errorf("inflation lost epoch: shared=%v readers=%v", c.ReadShared, c.Readers)
	}
	c.InflateReads() // idempotent
	if len(c.Readers) != 1 {
		t.Errorf("double inflation: %+v", c.Readers)
	}
	c.ClearReads()
	if c.ReadShared || c.Readers != nil || !c.R.IsZero() {
		t.Errorf("clear failed: shared=%v readers=%v r=%v", c.ReadShared, c.Readers, c.R)
	}
}

func TestConcurrentCellAllocation(t *testing.T) {
	m := New(1, 64)
	var wg sync.WaitGroup
	cells := make([]*Cell, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cells[i] = m.CellFor(logging.SpaceGlobal, -1, 0x50000)
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if cells[i] != cells[0] {
			t.Fatal("racing allocations produced distinct cells")
		}
	}
}

func testGeo() ptvc.Geometry { return ptvc.Geometry{WarpSize: 4, BlockSize: 8, Blocks: 2} }

func TestSyncLocBlockScope(t *testing.T) {
	m := New(1, 0)
	k := Key{Space: logging.SpaceGlobal, Block: -1, Addr: 0x10000}
	s := m.SyncFor(k)
	if m.SyncFor(k) != s {
		t.Fatal("SyncFor identity unstable")
	}
	g := ptvc.NewGroup(testGeo(), 0, 0xF)
	snap := g.Snapshot(0)
	s.ReleaseBlock(0, snap)
	if got := s.AcquireBlock(0); len(got) != 1 || got[0] != snap {
		t.Errorf("AcquireBlock(0) = %v", got)
	}
	// A block-scoped release in block 0 is invisible to an acquire in
	// block 1 (the membar.cta litmus result).
	if got := s.AcquireBlock(1); len(got) != 0 {
		t.Errorf("AcquireBlock(1) = %v, want empty", got)
	}
	// But a global acquire joins all blocks' entries.
	if got := s.AcquireGlobal(2); len(got) != 1 {
		t.Errorf("AcquireGlobal = %v", got)
	}
}

func TestSyncLocGlobalScope(t *testing.T) {
	m := New(1, 0)
	s := m.SyncFor(Key{Addr: 0x20000, Block: -1})
	g := ptvc.NewGroup(testGeo(), 0, 0xF)
	s.ReleaseBlock(0, g.Snapshot(0))
	g.EndInstr()
	gl := g.Snapshot(1)
	s.ReleaseGlobal(gl)
	// Global release replaces every block's entry.
	for b := 0; b < 2; b++ {
		got := s.AcquireBlock(b)
		if len(got) != 1 || got[0] != gl {
			t.Errorf("AcquireBlock(%d) after global release = %v", b, got)
		}
	}
	// A block release after a global release REPLACES S_x[b] for that
	// block (the formal rules use strong updates).
	g.EndInstr()
	blk := g.Snapshot(2)
	s.ReleaseBlock(1, blk)
	got := s.AcquireBlock(1)
	if len(got) != 1 || got[0] != blk {
		t.Errorf("AcquireBlock(1) = %v, want just the block override", got)
	}
	// Block 0 still sees the global release.
	if got := s.AcquireBlock(0); len(got) != 1 || got[0] != gl {
		t.Errorf("AcquireBlock(0) = %v, want the global snap", got)
	}
	// A global acquire joins the override and (since block 0 still
	// holds it) the global entry.
	if got := s.AcquireGlobal(2); len(got) != 2 {
		t.Errorf("AcquireGlobal = %d snaps, want 2", len(got))
	}
	// Once every block is overridden, the stale global entry drops out.
	s.ReleaseBlock(0, blk)
	if got := s.AcquireGlobal(2); len(got) != 2 {
		t.Errorf("AcquireGlobal after full override = %d snaps, want 2 per-block", len(got))
	}
}

func TestPeekSyncDoesNotCreate(t *testing.T) {
	m := New(1, 0)
	k := Key{Addr: 0x30000, Block: -1}
	if m.PeekSync(k) != nil {
		t.Error("PeekSync invented a location")
	}
	m.SyncFor(k)
	if m.PeekSync(k) == nil {
		t.Error("PeekSync missed an existing location")
	}
	if n := m.Stats().SyncLocs; n != 1 {
		t.Errorf("sync locs = %d, want 1", n)
	}
}
