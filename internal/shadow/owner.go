// Adaptive ownership tier and memory-bounded shadow.
//
// Ownership (the SmartTrack-style tier below FastTrack): each region
// carries a one-word ownership state recording WHO has touched its cells
// since the region was last virgin — nobody (OwnNone), exactly one warp
// (OwnWarp), exactly one thread block (OwnBlock), or a mix (OwnShared,
// sticky). While a region is exclusively owned, the detector's hot path
// can prove every stored epoch ordered with a single region-level
// comparison and skip the per-cell epoch machinery entirely (see
// core.tryOwned for the soundness argument). The word is published
// atomically so the detector can probe it lock-free, but the probe is
// ONLY a pre-filter: the claim→inflate protocol requires every decision
// to be re-validated after taking the region lock, because another
// detector thread may inflate the region between the probe and the lock
// (the TOCTOU pitfall). All transitions happen under the region lock.
//
// Bounded shadow: with a byte cap configured, the shadow tracks the
// resident footprint of every region, stamps regions on use, and evicts
// the least-recently-used region before an allocation would exceed the
// cap. Evicting a region that still holds live metadata silently
// discards epochs — never a false positive (virgin state passes every
// check), but a later racing access can go unreported — so live
// evictions latch the PrecisionDegraded flag that the detector
// surfaces honestly in its report. Epoch-based compaction (dropping a
// block's shared slab after a fully-converged block barrier) is the
// provably-lossless counterpart, triggered by the detector core.
package shadow

import (
	"sort"
	"unsafe"

	"barracuda/internal/vc"
)

// OwnState is a region's ownership tier.
type OwnState uint32

const (
	// OwnNone: no tracked access since the region was virgin.
	OwnNone OwnState = iota
	// OwnWarp: every access so far came from one warp (the probe id).
	OwnWarp
	// OwnBlock: every access so far came from one block (the probe id).
	OwnBlock
	// OwnShared: accesses from several blocks, or an access the tracking
	// paths could not attribute. Sticky — a shared region never returns
	// to an exclusive state until it is compacted or evicted.
	OwnShared
)

func (s OwnState) String() string {
	switch s {
	case OwnNone:
		return "none"
	case OwnWarp:
		return "warp"
	case OwnBlock:
		return "block"
	case OwnShared:
		return "shared"
	}
	return "?"
}

// packOwner packs state and owner id into the probe word.
func packOwner(st OwnState, id uint32) uint64 {
	return uint64(st) | uint64(id)<<2
}

// OwnerProbe reads the ownership word WITHOUT the region lock: the
// lock-free pre-filter of the claim→inflate protocol. Callers must
// re-validate with Owner after locking before acting on it.
func (r *Region) OwnerProbe() (OwnState, uint32) {
	w := r.owner.Load()
	return OwnState(w & 3), uint32(w >> 2)
}

// Owner reads the ownership state under the region lock.
func (r *Region) Owner() (OwnState, uint32) {
	w := r.owner.Load()
	return OwnState(w & 3), uint32(w >> 2)
}

// OwnerClocks returns the clock bounds backing the exclusive states,
// under the region lock: lastWarp is the warp of the most recent tracked
// access, lastMax the maximum epoch clock it has stored since becoming
// the most recent, and otherMax the maximum clock stored by every other
// warp ever tracked. Together they bound every epoch resident in the
// region: an access that proves both maxima ordered needs no per-cell
// checks at all.
func (r *Region) OwnerClocks() (lastWarp uint32, lastMax, otherMax vc.Clock) {
	return r.ownLastWarp, r.ownLastMax, r.ownOtherMax
}

// setOwner publishes an ownership transition (region lock held).
func (r *Region) setOwner(st OwnState, id uint32) {
	r.owner.Store(packOwner(st, id))
}

// Claim marks a virgin region exclusively owned by a warp (region lock
// held; caller verified state OwnNone).
func (m *Memory) Claim(r *Region, warp uint32, clock vc.Clock) {
	r.setOwner(OwnWarp, warp)
	r.ownLastWarp = warp
	r.ownLastMax = clock
	r.ownOtherMax = 0
	m.ownClaims.Add(1)
}

// Retain extends an exclusive owner's clock bound after another access
// by the current last warp (region lock held).
func (r *Region) Retain(clock vc.Clock) {
	if clock > r.ownLastMax {
		r.ownLastMax = clock
	}
}

// Rotate makes a different warp of the SAME owning scope the region's
// most recent accessor (region lock held): the previous last warp's
// bound folds into otherMax. Promoting an OwnWarp region to OwnBlock is
// a Rotate with the block id published.
func (m *Memory) Rotate(r *Region, st OwnState, id uint32, warp uint32, clock vc.Clock) {
	if prev, _ := r.Owner(); prev == OwnWarp && st == OwnBlock {
		m.ownPromotions.Add(1)
	}
	r.setOwner(st, id)
	if r.ownLastMax > r.ownOtherMax {
		r.ownOtherMax = r.ownLastMax
	}
	r.ownLastWarp = warp
	r.ownLastMax = clock
}

// Inflate demotes a region to the sticky OwnShared state (region lock
// held). Counted only when the region actually was exclusively owned:
// the counter measures lost fast-path coverage, not slow-path traffic.
func (m *Memory) Inflate(r *Region) {
	st, _ := r.Owner()
	if st == OwnShared {
		return
	}
	if st == OwnWarp || st == OwnBlock {
		m.ownInflations.Add(1)
	}
	r.setOwner(OwnShared, 0)
}

// inflateOwner is the untracked-access hook on the per-cell paths
// (SpanCached, CellFor): those paths do not know the accessing warp, so
// the only safe transition is straight to OwnShared.
func (r *Region) inflateOwner(m *Memory) {
	if m.owned {
		m.Inflate(r)
	}
}

// resetOwner returns a region to the virgin ownership state (used by
// tests; compaction and eviction reset by dropping the region object).
func (r *Region) resetOwner() {
	r.owner.Store(0)
	r.ownLastWarp = 0
	r.ownLastMax = 0
	r.ownOtherMax = 0
}

// EnableOwnership switches ownership tracking on. Requires span mode
// (the tracking hooks live on the region-locked paths). Call once,
// before any detection traffic.
func (m *Memory) EnableOwnership() {
	m.owned = true
}

// OwnershipEnabled reports whether ownership tracking is on.
func (m *Memory) OwnershipEnabled() bool { return m.owned }

// NoteOwnedFast counts one record fully handled by the ownership fast
// path.
func (m *Memory) NoteOwnedFast() { m.ownFast.Add(1) }

// cellBytes is the resident footprint of one shadow cell. Structural
// accounting: inflated Readers maps are not counted (cells dominate,
// and map footprint is runtime-internal).
const cellBytes = int64(unsafe.Sizeof(Cell{}))

// RegionBytes returns a region's accounted resident footprint.
func (r *Region) RegionBytes() int64 { return int64(len(r.cells)) * cellBytes }

// SetCapBytes bounds the resident shadow (global pages + shared slabs)
// to capBytes via LRU eviction; 0 leaves the shadow unbounded. Call
// once, before any detection traffic.
func (m *Memory) SetCapBytes(capBytes int64) {
	m.capBytes = capBytes
}

// CapBytes returns the configured resident byte cap (0 = unbounded).
func (m *Memory) CapBytes() int64 { return m.capBytes }

// ResidentBytes returns the current accounted resident shadow bytes.
func (m *Memory) ResidentBytes() int64 { return m.resident.Load() }

// PeakResidentBytes returns the high-water resident shadow bytes.
func (m *Memory) PeakResidentBytes() int64 { return m.peakResident.Load() }

// PrecisionDegraded reports whether an eviction has discarded live
// metadata: from that point on, races involving the discarded epochs
// can go unreported (never falsely reported).
func (m *Memory) PrecisionDegraded() bool { return m.degraded.Load() }

// Generation returns the shadow generation, bumped whenever a region is
// evicted or compacted so worker SpanCaches drop stale region pointers.
func (m *Memory) Generation() uint64 { return m.gen.Load() }

// stamp marks a region recently used (bounded mode only).
func (m *Memory) stamp(r *Region) {
	r.lastUse.Store(m.useClock.Add(1))
}

// addResident accounts a newly published region.
func (m *Memory) addResident(n int64) {
	v := m.resident.Add(n)
	for {
		p := m.peakResident.Load()
		if v <= p || m.peakResident.CompareAndSwap(p, v) {
			return
		}
	}
}

// evictCand is one LRU eviction candidate.
type evictCand struct {
	reg      *Region
	stamp    uint64
	pageID   uint64
	block    int32
	isShared bool
}

// makeRoom evicts least-recently-used regions until a pending
// allocation of need bytes fits under the cap. It runs with NO stripe
// or slab lock held (lock order: evictMu → region lock → stripe/slab
// mutex, the same order the allocation slow paths use), and it only
// TryLocks victims — a region currently locked is in active use,
// possibly by the very goroutine that triggered eviction mid-span, so
// blocking on it could self-deadlock. Single-consumer detection is
// strictly capped; concurrent allocations on different queues can
// transiently overshoot by at most one region per worker.
func (m *Memory) makeRoom(need int64) {
	if m.capBytes <= 0 {
		return
	}
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	for m.resident.Load()+need > m.capBytes {
		progress := false
		for _, c := range m.evictCandidates() {
			if m.resident.Load()+need <= m.capBytes {
				return
			}
			if !c.reg.TryLock() {
				continue // in active use; try the next-coldest
			}
			ok := m.dropRegion(c.reg, c.pageID, c.block, c.isShared)
			wasLive := c.reg.liveMark.Load()
			c.reg.Unlock()
			if !ok {
				continue // vanished since the scan (compaction race)
			}
			progress = true
			m.evictions.Add(1)
			if wasLive {
				m.liveEvictions.Add(1)
				m.degraded.Store(true)
			}
		}
		if !progress {
			return // nothing evictable left; allocation overshoots
		}
	}
}

// evictCandidates scans the page table and slab map lock-free over the
// published immutable snapshots and returns every region, coldest
// first.
func (m *Memory) evictCandidates() []evictCand {
	var out []evictCand
	for i := range m.stripes {
		pm := m.stripes[i].pages.Load()
		if pm == nil {
			continue
		}
		for id, p := range *pm {
			out = append(out, evictCand{reg: p, stamp: p.lastUse.Load(), pageID: id})
		}
	}
	if bm := m.sharedPtr.Load(); bm != nil {
		for b, r := range *bm {
			out = append(out, evictCand{reg: r, stamp: r.lastUse.Load(), block: b, isShared: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].stamp < out[j].stamp })
	return out
}

// dropRegion unpublishes a region from its owning map, bumps the
// generation (stale SpanCache pointers must not resolve to it), and
// releases its resident accounting. Returns false if the region was
// already gone.
func (m *Memory) dropRegion(victim *Region, pageID uint64, block int32, isShared bool) bool {
	if isShared {
		m.sharedMu.Lock()
		old := m.sharedPtr.Load()
		if old == nil || (*old)[block] != victim {
			m.sharedMu.Unlock()
			return false
		}
		next := make(blockMap, len(*old))
		for k, v := range *old {
			if k != block {
				next[k] = v
			}
		}
		m.sharedPtr.Store(&next)
		m.sharedMu.Unlock()
	} else {
		s := &m.stripes[pageID&(pageStripes-1)]
		s.mu.Lock()
		old := s.pages.Load()
		if old == nil || (*old)[pageID] != victim {
			s.mu.Unlock()
			return false
		}
		next := make(pageMap, len(*old))
		for k, v := range *old {
			if k != pageID {
				next[k] = v
			}
		}
		s.pages.Store(&next)
		s.mu.Unlock()
	}
	m.gen.Add(1)
	m.resident.Add(-victim.RegionBytes())
	return true
}

// CompactSharedSlab drops a block's shared slab entirely — the
// epoch-based compaction step. The detector calls it only after a
// fully-converged block-wide barrier, where every epoch in the slab is
// provably ordered before every future access by the block (the slab is
// block-private), so the virgin slab a later access reallocates yields
// byte-identical race reports. Returns the bytes released.
func (m *Memory) CompactSharedSlab(block int32) int64 {
	m.sharedMu.Lock()
	old := m.sharedPtr.Load()
	if old == nil {
		m.sharedMu.Unlock()
		return 0
	}
	r := (*old)[block]
	if r == nil {
		m.sharedMu.Unlock()
		return 0
	}
	next := make(blockMap, len(*old))
	for k, v := range *old {
		if k != block {
			next[k] = v
		}
	}
	m.sharedPtr.Store(&next)
	m.sharedMu.Unlock()
	n := r.RegionBytes()
	m.gen.Add(1)
	m.resident.Add(-n)
	m.compactions.Add(1)
	m.compactedBytes.Add(n)
	return n
}

// MemStats is the shadow occupancy and adaptive-tier counter snapshot.
type MemStats struct {
	GlobalPages       int   `json:"global_pages"`
	SharedBlocks      int   `json:"shared_blocks"`
	SyncLocs          int   `json:"sync_locs"`
	ResidentBytes     int64 `json:"resident_bytes"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
	CapBytes          int64 `json:"cap_bytes,omitempty"`

	// Ownership tier.
	Claims     uint64 `json:"ownership_claims,omitempty"`
	Promotions uint64 `json:"ownership_promotions,omitempty"`
	Inflations uint64 `json:"ownership_inflations,omitempty"`
	OwnedFast  uint64 `json:"owned_fast_records,omitempty"`

	// Bounded shadow.
	Compactions       uint64 `json:"compactions,omitempty"`
	CompactedBytes    int64  `json:"compacted_bytes,omitempty"`
	Evictions         uint64 `json:"evictions,omitempty"`
	LiveEvictions     uint64 `json:"live_evictions,omitempty"`
	PrecisionDegraded bool   `json:"precision_degraded,omitempty"`
}

// Stats reports shadow occupancy, resident footprint and the adaptive
// ownership / bounded-memory counters.
func (m *Memory) Stats() MemStats {
	st := MemStats{
		ResidentBytes:     m.resident.Load(),
		PeakResidentBytes: m.peakResident.Load(),
		CapBytes:          m.capBytes,
		Claims:            m.ownClaims.Load(),
		Promotions:        m.ownPromotions.Load(),
		Inflations:        m.ownInflations.Load(),
		OwnedFast:         m.ownFast.Load(),
		Compactions:       m.compactions.Load(),
		CompactedBytes:    m.compactedBytes.Load(),
		Evictions:         m.evictions.Load(),
		LiveEvictions:     m.liveEvictions.Load(),
		PrecisionDegraded: m.degraded.Load(),
	}
	for i := range m.stripes {
		if pm := m.stripes[i].pages.Load(); pm != nil {
			st.GlobalPages += len(*pm)
		}
	}
	if bm := m.sharedPtr.Load(); bm != nil {
		st.SharedBlocks = len(*bm)
	}
	m.syncMu.Lock()
	st.SyncLocs = len(m.syncs)
	m.syncMu.Unlock()
	return st
}
