// Coalesced-span support: uniform-span summaries over cell runs.
//
// BARRACUDA's logging design (§4.2) leans on coalesced warp accesses —
// 32 lanes touching one contiguous region. In span mode a region (one
// global 64 KiB page, or one block's shared slab) can carry *uniform-
// span summaries*: a sorted list of non-overlapping cell runs whose
// FastTrack metadata is described exactly by a compact per-layer
// (warp, mask, clock, pc, size) tuple instead of per-cell epochs. A
// whole coalesced warp access then updates one summary under one region
// lock instead of taking up to lanes×size cell spinlocks.
//
// The invariant mirrors the read-epoch/read-map duality of Cell
// (InflateReads): a summary is the compressed form, per-cell epochs the
// inflated form, and the moment any access diverges from the
// summarized pattern — a different address layout, a partial overlap,
// state that a per-lane-rank epoch pair cannot express — the summary is
// *demoted*: materialized back into the exact per-cell epochs the
// per-cell path would have produced, then discarded. Demotion is
// transparent; the per-cell rules never observe that a summary existed.
package shadow

import (
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"

	"barracuda/internal/logging"
	"barracuda/internal/vc"
)

// SpanLayer is one access layer (write or read) of a uniform-span
// summary: lane rank k of Mask holds epoch (TIDOf(Warp, lane_k), Clock)
// over the k-th Size-byte slice of the run. A zero Size means the layer
// is absent (zero epochs).
type SpanLayer struct {
	Warp  uint32
	Mask  uint32
	Clock vc.Clock
	PC    uint32
	Size  uint8
}

// Valid reports whether the layer is present.
func (l *SpanLayer) Valid() bool { return l.Size != 0 }

// SpanSum summarizes the cells [Lo, Hi) of a region: every cell's write
// epoch comes from layer W (plus the Atomic bit), every cell's read
// epoch from layer R, and no cell has an inflated read map. Both layers
// cover the exact same cell range; their lane layouts may differ.
type SpanSum struct {
	Lo, Hi int // cell index range within the region
	W, R   SpanLayer
	Atomic bool // the summarized write was atomic
}

// Region is one lockable run of shadow cells: a global 64 KiB page or a
// block's shared-memory slab. In span mode, every record-path access to
// a region's cells holds the region lock, which is what lets summaries
// be installed, answered and demoted without per-cell locking.
type Region struct {
	cells []Cell

	// lock is a CAS spinlock with the same shape as Cell's: region
	// critical sections are a summary lookup plus a handful of epoch
	// compares on the fast path.
	lock atomic.Uint32

	// touched records that some cell outside the summaries may be
	// nonzero (any per-cell mutation or demotion sets it). While false,
	// a span over an unsummarized range needs no checks at all — the
	// cells are still virgin. Guarded by lock.
	touched bool

	// sums is the sorted, non-overlapping summary list. Guarded by lock.
	sums []SpanSum

	// owner is the packed ownership probe word: state (2 bits) | id<<2.
	// Published atomically for the lock-free pre-filter; transitions
	// happen under lock (see owner.go).
	owner atomic.Uint64

	// Clock bounds backing the exclusive ownership states. Guarded by
	// lock: they do not fit the probe word, and the fast path only needs
	// them after it has taken the region lock anyway.
	ownLastWarp uint32
	ownLastMax  vc.Clock
	ownOtherMax vc.Clock

	// lastUse is the LRU stamp and liveMark the has-live-metadata flag,
	// both read lock-free by the bounded-shadow evictor (owner.go).
	lastUse  atomic.Uint64
	liveMark atomic.Bool
}

// Lock acquires the region spinlock.
func (r *Region) Lock() {
	for !r.lock.CompareAndSwap(0, 1) {
		for i := 0; i < 8; i++ {
			if r.lock.Load() == 0 {
				break
			}
		}
		if r.lock.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// TryLock attempts the region spinlock without spinning. The bounded-
// shadow evictor uses it so an in-use region (possibly locked by the
// very goroutine that triggered eviction) is skipped instead of
// deadlocked on.
func (r *Region) TryLock() bool { return r.lock.CompareAndSwap(0, 1) }

// Unlock releases the region spinlock.
func (r *Region) Unlock() { r.lock.Store(0) }

// Cells exposes the region's cell slab (callers hold the region lock in
// span mode).
func (r *Region) Cells() []Cell { return r.cells }

// Touched reports whether any cell outside the summaries may be nonzero.
func (r *Region) Touched() bool { return r.touched }

// SetTouched marks the region's unsummarized cells as possibly nonzero.
func (r *Region) SetTouched() { r.markLive() }

// markLive records that the region now holds metadata (touched cells or,
// via Install, summaries) that an eviction would discard.
func (r *Region) markLive() {
	r.touched = true
	if !r.liveMark.Load() {
		r.liveMark.Store(true)
	}
}

// Sums returns the live summary list (tests and stats).
func (r *Region) Sums() []SpanSum { return r.sums }

// sumRange returns the index range [i, j) of summaries overlapping the
// cell range [lo, hi).
func (r *Region) sumRange(lo, hi int) (int, int) {
	i := sort.Search(len(r.sums), func(k int) bool { return r.sums[k].Hi > lo })
	j := i
	for j < len(r.sums) && r.sums[j].Lo < hi {
		j++
	}
	return i, j
}

// FindSpan looks up [lo, hi) in the summary list: exact is non-nil when
// a single summary covers exactly that range; overlap reports whether
// any summary overlaps it at all.
func (r *Region) FindSpan(lo, hi int) (exact *SpanSum, overlap bool) {
	i, j := r.sumRange(lo, hi)
	if i == j {
		return nil, false
	}
	if j == i+1 && r.sums[i].Lo == lo && r.sums[i].Hi == hi {
		return &r.sums[i], true
	}
	return nil, true
}

// DemoteOverlapping materializes and removes every summary overlapping
// [lo, hi). Call with the region locked.
func (r *Region) DemoteOverlapping(m *Memory, lo, hi int) { r.demoteOverlapping(m, lo, hi) }

func (r *Region) demoteOverlapping(m *Memory, lo, hi int) {
	i, j := r.sumRange(lo, hi)
	if i == j {
		return
	}
	for k := i; k < j; k++ {
		m.materialize(r, &r.sums[k])
	}
	r.sums = append(r.sums[:i], r.sums[j:]...)
	r.markLive()
}

// Install inserts a summary. The caller must have removed (demoted or
// replaced) everything overlapping [s.Lo, s.Hi) first, and must hold
// the region lock.
func (r *Region) Install(s SpanSum) {
	if !r.liveMark.Load() {
		r.liveMark.Store(true)
	}
	i := sort.Search(len(r.sums), func(k int) bool { return r.sums[k].Lo >= s.Lo })
	r.sums = append(r.sums, SpanSum{})
	copy(r.sums[i+1:], r.sums[i:])
	r.sums[i] = s
}

// LaneAt returns the lane index of the rank-th set bit of mask.
func LaneAt(mask uint32, rank int) int {
	for ; rank > 0; rank-- {
		mask &= mask - 1
	}
	return bits.TrailingZeros32(mask)
}

// materialize writes a summary's exact per-cell state back into the
// cells — span demotion, the analogue of InflateReads. Cells under a
// summary are wholly described by it, so every metadata field is
// (re)written: a missing layer means zero epochs, and no summarized
// cell ever has an inflated read map. Runs under the region lock; cell
// locks are not taken because span mode routes every record-path cell
// access through that same region lock.
func (m *Memory) materialize(reg *Region, s *SpanSum) {
	gran := m.granularity
	for idx := s.Lo; idx < s.Hi; idx++ {
		c := &reg.cells[idx]
		off := (idx - s.Lo) * gran
		if s.W.Valid() {
			lane := LaneAt(s.W.Mask, off/int(s.W.Size))
			c.W = vc.Epoch{T: m.geo.TIDOf(int(s.W.Warp), lane), C: s.W.Clock}
			c.WritePC = s.W.PC
			c.Atomic = s.Atomic
		} else {
			c.W = vc.Epoch{}
			c.WritePC = 0
			c.Atomic = false
		}
		if s.R.Valid() {
			lane := LaneAt(s.R.Mask, off/int(s.R.Size))
			c.R = vc.Epoch{T: m.geo.TIDOf(int(s.R.Warp), lane), C: s.R.Clock}
			c.ReadPC = s.R.PC
		} else {
			c.R = vc.Epoch{}
			c.ReadPC = 0
		}
		c.Readers = nil
		c.ReadShared = false
	}
}

// SpanRuns splits the byte range [addr, addr+n) of (space, block) into
// per-region cell runs and invokes fn once per run with the region, the
// cell range [lo, hi) and the byte offset of the run within the whole
// span. Regions are handed over unlocked; fn locks. It returns false —
// without invoking fn at all — when the range cannot go down the span
// fast path: a shared range outside the slab (the per-cell path's
// clamping semantics must win), a granularity that does not tile pages,
// or a region boundary that would split one lane's size-byte access.
func (m *Memory) SpanRuns(sc *SpanCache, space logging.SpaceID, block int32, addr uint64, n, size int, fn func(reg *Region, lo, hi, byteOff int)) bool {
	gran := uint64(m.granularity)
	if space == logging.SpaceShared {
		reg := m.sharedRegion(sc, block)
		lo := addr / gran
		last := (addr + uint64(n) - 1) / gran
		if last >= uint64(len(reg.cells)) {
			return false
		}
		fn(reg, int(lo), int(last)+1, 0)
		return true
	}
	if (1<<pageBits)%gran != 0 {
		return false
	}
	end := addr + uint64(n)
	// Validate region boundaries first: a page split must fall between
	// two lanes, or rank arithmetic breaks.
	for a := addr; a < end; {
		stop := (a>>pageBits + 1) << pageBits
		if stop >= end {
			break
		}
		if (stop-addr)%uint64(size) != 0 {
			return false
		}
		a = stop
	}
	for a := addr; a < end; {
		stop := (a>>pageBits + 1) << pageBits
		if stop > end {
			stop = end
		}
		reg, lo := m.regionCached(sc, space, block, a)
		fn(reg, lo, lo+int((stop-a-1)/gran)+1, int(a-addr))
		a = stop
	}
	return true
}

// sharedRegion resolves a block's shared slab through the worker cache.
func (m *Memory) sharedRegion(sc *SpanCache, block int32) *Region {
	m.validateCache(sc)
	var reg *Region
	if sc != nil && sc.shared != nil && sc.sharedBlock == block {
		reg = sc.shared
	} else {
		reg = m.sharedSlab(block)
		if sc != nil {
			sc.sharedBlock = block
			sc.shared = reg
		}
	}
	if m.capBytes > 0 {
		m.stamp(reg)
	}
	return reg
}
