package shadow

import (
	"sync"
	"testing"

	"barracuda/internal/logging"
)

// TestOwnershipTransitions walks a region through the ownership lattice
// None → Warp → Block → Shared and checks the probe word, the clock
// bounds and the counters at every step.
func TestOwnershipTransitions(t *testing.T) {
	m := New(4, 0)
	m.EnableOwnership()
	r, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, 0)

	if st, _ := r.Owner(); st != OwnNone {
		t.Fatalf("virgin region owner = %v, want none", st)
	}

	m.Claim(r, 7, 10)
	if st, id := r.Owner(); st != OwnWarp || id != 7 {
		t.Fatalf("after Claim: owner = %v/%d, want warp/7", st, id)
	}
	if lw, lm, om := r.OwnerClocks(); lw != 7 || lm != 10 || om != 0 {
		t.Fatalf("after Claim: clocks = (%d, %d, %d), want (7, 10, 0)", lw, lm, om)
	}

	r.Retain(12)
	r.Retain(5) // lower clock must not shrink the bound
	if _, lm, _ := r.OwnerClocks(); lm != 12 {
		t.Fatalf("after Retain: lastMax = %d, want 12", lm)
	}

	// Another warp of the same block: promote to OwnBlock, folding the
	// previous warp's bound into otherMax.
	m.Rotate(r, OwnBlock, 3, 9, 20)
	if st, id := r.Owner(); st != OwnBlock || id != 3 {
		t.Fatalf("after Rotate: owner = %v/%d, want block/3", st, id)
	}
	if lw, lm, om := r.OwnerClocks(); lw != 9 || lm != 20 || om != 12 {
		t.Fatalf("after Rotate: clocks = (%d, %d, %d), want (9, 20, 12)", lw, lm, om)
	}

	m.Inflate(r)
	if st, _ := r.Owner(); st != OwnShared {
		t.Fatalf("after Inflate: owner = %v, want shared", st)
	}
	m.Inflate(r) // sticky: inflating a shared region counts nothing

	st := m.Stats()
	if st.Claims != 1 || st.Promotions != 1 || st.Inflations != 1 {
		t.Fatalf("counters = claims %d / promotions %d / inflations %d, want 1/1/1",
			st.Claims, st.Promotions, st.Inflations)
	}

	// The untracked-access hook on a virgin region goes straight to
	// shared (the accessing warp is unknown) but is not an inflation of
	// exclusive state.
	r2, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, 4*PageBytes)
	r2.inflateOwner(m)
	if st, _ := r2.Owner(); st != OwnShared {
		t.Fatalf("untracked access: owner = %v, want shared", st)
	}
	if got := m.Stats().Inflations; got != 1 {
		t.Fatalf("inflations after untracked hook = %d, want still 1", got)
	}
}

// TestOwnershipProbeConcurrent hammers the lock-free probe against
// locked transitions; under -race this proves the ownership word is
// safely published.
func TestOwnershipProbeConcurrent(t *testing.T) {
	m := New(4, 0)
	m.EnableOwnership()
	r, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.OwnerProbe()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		r.Lock()
		switch st, _ := r.Owner(); st {
		case OwnNone:
			m.Claim(r, uint32(i), 1)
		case OwnWarp:
			m.Inflate(r)
		default:
			r.resetOwner()
		}
		r.Unlock()
	}
	close(stop)
	wg.Wait()
}

// TestBoundedEviction checks the LRU byte cap: residency never exceeds
// the cap in single-threaded use, the coldest region goes first, the
// generation moves so caches revalidate, and PrecisionDegraded latches
// exactly when a live region is discarded.
func TestBoundedEviction(t *testing.T) {
	m := New(4, 0)
	pageBytes := int64(PageBytes/4) * cellBytes
	m.SetCapBytes(2 * pageBytes)

	addr := func(i int) uint64 { return uint64(i) * PageBytes }
	r0, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, addr(0))
	m.RegionFor(nil, logging.SpaceGlobal, -1, addr(1))
	m.RegionFor(nil, logging.SpaceGlobal, -1, addr(0)) // re-touch: page 1 is now coldest

	gen := m.Generation()
	m.RegionFor(nil, logging.SpaceGlobal, -1, addr(2)) // must evict page 1

	if got := m.ResidentBytes(); got > 2*pageBytes {
		t.Fatalf("resident = %d bytes, cap = %d", got, 2*pageBytes)
	}
	st := m.Stats()
	if st.Evictions != 1 || st.GlobalPages != 2 {
		t.Fatalf("evictions = %d pages = %d, want 1 eviction leaving 2 pages", st.Evictions, st.GlobalPages)
	}
	if st.LiveEvictions != 0 || st.PrecisionDegraded {
		t.Fatalf("evicting a virgin page must not degrade precision: %+v", st)
	}
	if m.Generation() == gen {
		t.Fatal("eviction did not bump the shadow generation")
	}
	if again, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, addr(0)); again != r0 {
		t.Fatal("LRU evicted the recently-used page instead of the coldest")
	}

	// Mark the coldest page live, then force another eviction: precision
	// is now honestly degraded.
	r2, _ := m.RegionFor(nil, logging.SpaceGlobal, -1, addr(2))
	r2.SetTouched()
	m.RegionFor(nil, logging.SpaceGlobal, -1, addr(0))
	m.RegionFor(nil, logging.SpaceGlobal, -1, addr(3)) // evicts live page 2
	st = m.Stats()
	if st.LiveEvictions == 0 || !st.PrecisionDegraded {
		t.Fatalf("live eviction must latch PrecisionDegraded: %+v", st)
	}
	if m.PeakResidentBytes() > 2*pageBytes+pageBytes {
		t.Fatalf("peak resident = %d, want at most cap + one transient page", m.PeakResidentBytes())
	}
}

// TestValidateCacheGeneration checks that a worker SpanCache drops its
// region pointers when the shadow generation moves (bounded mode), and
// keeps them when unbounded.
func TestValidateCacheGeneration(t *testing.T) {
	m := New(4, 64)
	m.SetCapBytes(1 << 30)
	var sc SpanCache
	reg, _ := m.RegionFor(&sc, logging.SpaceGlobal, -1, 0)
	if sc.page != reg {
		t.Fatal("cache did not retain the resolved page")
	}
	m.gen.Add(1)
	m.validateCache(&sc)
	if sc.page != nil || sc.shared != nil {
		t.Fatal("stale-generation cache was not dropped")
	}

	un := New(4, 64)
	var usc SpanCache
	ureg, _ := un.RegionFor(&usc, logging.SpaceGlobal, -1, 0)
	un.gen.Add(1)
	un.validateCache(&usc)
	if usc.page != ureg {
		t.Fatal("unbounded shadow must never invalidate worker caches")
	}
}

// TestCompactSharedSlab checks barrier-time compaction: the slab
// unpublishes, residency drops, the generation moves, and a later
// access reallocates a virgin slab.
func TestCompactSharedSlab(t *testing.T) {
	m := New(1, 256)
	r, _ := m.RegionFor(nil, logging.SpaceShared, 3, 0)
	r.SetTouched()
	want := r.RegionBytes()
	before := m.ResidentBytes()
	gen := m.Generation()

	if got := m.CompactSharedSlab(3); got != want {
		t.Fatalf("CompactSharedSlab released %d bytes, want %d", got, want)
	}
	if m.ResidentBytes() != before-want {
		t.Fatalf("resident = %d after compaction, want %d", m.ResidentBytes(), before-want)
	}
	if m.Generation() == gen {
		t.Fatal("compaction did not bump the shadow generation")
	}
	if got := m.CompactSharedSlab(3); got != 0 {
		t.Fatalf("compacting an absent slab released %d bytes, want 0", got)
	}
	st := m.Stats()
	if st.Compactions != 1 || st.CompactedBytes != want || st.SharedBlocks != 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}

	fresh, _ := m.RegionFor(nil, logging.SpaceShared, 3, 0)
	if fresh == r {
		t.Fatal("access after compaction returned the dropped slab")
	}
	if fresh.Touched() {
		t.Fatal("reallocated slab is not virgin")
	}
}
