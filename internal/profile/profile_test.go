package profile

import (
	"strings"
	"testing"

	"barracuda/internal/gpusim"
	"barracuda/internal/instrument"
	"barracuda/internal/logging"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

func mkRec(op trace.OpKind, pc uint32, mask uint32, addrs func(lane int) uint64) *logging.Record {
	r := &logging.Record{Op: op, PC: pc, Mask: mask, Size: 4}
	for i := range r.Addrs {
		r.Addrs[i] = addrs(i)
	}
	return r
}

func TestCoalescedDetection(t *testing.T) {
	p := New()
	// 32 lanes, consecutive 4-byte addresses starting 128-aligned: one
	// coalesced 128-byte segment.
	p.Handle(mkRec(trace.OpRead, 10, ^uint32(0), func(l int) uint64 { return 0x10000 + uint64(l)*4 }))
	// Strided by 64 bytes: not coalesced.
	p.Handle(mkRec(trace.OpRead, 20, ^uint32(0), func(l int) uint64 { return 0x20000 + uint64(l)*64 }))
	rep := p.Report()
	if len(rep.Sites) != 2 {
		t.Fatalf("sites = %d", len(rep.Sites))
	}
	bySite := map[uint32]Site{}
	for _, s := range rep.Sites {
		bySite[s.PC] = s
	}
	if bySite[10].CoalescingRatio() != 1 {
		t.Errorf("contiguous access ratio = %v, want 1", bySite[10].CoalescingRatio())
	}
	if bySite[20].CoalescingRatio() != 0 {
		t.Errorf("strided access ratio = %v, want 0", bySite[20].CoalescingRatio())
	}
}

func TestUnalignedSegmentNotCoalesced(t *testing.T) {
	p := New()
	// Contiguous but straddling a 128-byte boundary.
	p.Handle(mkRec(trace.OpRead, 10, ^uint32(0), func(l int) uint64 { return 0x10040 + uint64(l)*4 }))
	if got := p.Report().Sites[0].CoalescingRatio(); got != 0 {
		t.Errorf("straddling access ratio = %v, want 0", got)
	}
}

func TestFootprintAndCounters(t *testing.T) {
	p := New()
	p.Handle(mkRec(trace.OpWrite, 10, 0x1, func(l int) uint64 { return 0x10000 }))
	p.Handle(mkRec(trace.OpWrite, 10, 0x1, func(l int) uint64 { return 0x10000 }))
	p.Handle(&logging.Record{Op: trace.OpBar, Mask: 0xF})
	p.Handle(&logging.Record{Op: trace.OpIf, Mask: 0x3})
	rep := p.Report()
	if rep.Barriers != 1 || rep.DivergentBra != 1 {
		t.Errorf("bar=%d bra=%d", rep.Barriers, rep.DivergentBra)
	}
	if rep.FootprintBytes != 64 {
		t.Errorf("footprint = %d, want 64", rep.FootprintBytes)
	}
	if rep.Sites[0].Count != 2 || rep.Sites[0].Lanes != 2 {
		t.Errorf("site = %+v", rep.Sites[0])
	}
	if !strings.Contains(rep.String(), "memory profile") {
		t.Error("report string malformed")
	}
}

// TestProfilerOnInstrumentedKernel runs a real instrumented kernel with
// the profiler as the sink — the framework-extensibility claim end to end.
func TestProfilerOnInstrumentedKernel(t *testing.T) {
	src := `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r1;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra SKIP;
	ld.global.u32 %r3, [%rd3];
SKIP:
	bar.sync 0;
	ret;
}`
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := instrument.Instrument(m, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(0)
	mod, err := dev.LoadModule(res.Module)
	if err != nil {
		t.Fatal(err)
	}
	out := dev.MustAlloc(4 * 32)
	p := New()
	launch := gpusim.LaunchConfig{
		Grid: gpusim.D1(1), Block: gpusim.D1(32), Args: []uint64{out},
		Sink: p, EmitBranchEvents: true,
	}
	if _, err := mod.Launch("k", launch); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if len(rep.Sites) < 2 {
		t.Fatalf("sites = %d, want the store and the divergent load", len(rep.Sites))
	}
	if rep.Barriers != 1 {
		t.Errorf("barriers = %d", rep.Barriers)
	}
	if rep.DivergentBra != 1 {
		t.Errorf("divergent branches = %d", rep.DivergentBra)
	}
	// The per-thread store is perfectly coalesced.
	hot := rep.Sites[0]
	if hot.CoalescingRatio() != 1 {
		t.Errorf("hot site coalescing = %v: %+v", hot.CoalescingRatio(), hot)
	}
	if rep.FootprintBytes == 0 {
		t.Error("no footprint recorded")
	}
}
