// Package profile is a second dynamic analysis built on BARRACUDA's
// binary instrumentation framework, demonstrating the paper's claim that
// the framework "can serve as a foundation for other CUDA dynamic
// analyses as well" (§1). It consumes the same warp-level record stream
// as the race detector and computes a memory-access profile: per-site
// access counts, the warp-level coalescing quality of each access site,
// branch-divergence statistics, and the touched memory footprint.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

// Site aggregates the dynamic behaviour of one static access site.
type Site struct {
	PC    uint32
	Op    trace.OpKind
	Space logging.SpaceID
	Count uint64 // warp-level executions
	Lanes uint64 // per-lane accesses
	// Coalesced counts executions whose active lanes touched a single
	// contiguous, aligned 128-byte segment — the classic coalescing
	// criterion.
	Coalesced uint64
	MinAddr   uint64
	MaxAddr   uint64
}

// CoalescingRatio is the fraction of executions that were coalesced.
func (s Site) CoalescingRatio() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(s.Count)
}

// Profiler consumes instrumentation records and accumulates the profile.
// It is safe for concurrent use by multiple queue consumers.
type Profiler struct {
	mu       sync.Mutex
	sites    map[uint32]*Site
	barriers uint64
	branches uint64 // divergent branch episodes (If events)
	touched  map[uint64]bool
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{
		sites:   make(map[uint32]*Site),
		touched: make(map[uint64]bool),
	}
}

// Emit implements gpusim.Sink so a Profiler can be attached directly to
// a launch.
func (p *Profiler) Emit(r *logging.Record) { p.Handle(r) }

// Handle consumes one record.
func (p *Profiler) Handle(r *logging.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch r.Op {
	case trace.OpBar:
		p.barriers++
		return
	case trace.OpIf:
		p.branches++
		return
	case trace.OpElse, trace.OpFi, trace.OpBarRel, trace.OpEnd, trace.OpNone:
		return
	}
	if !r.Op.IsMemory() {
		return
	}
	s := p.sites[r.PC]
	if s == nil {
		s = &Site{PC: r.PC, Op: r.Op, Space: r.Space, MinAddr: ^uint64(0)}
		p.sites[r.PC] = s
	}
	s.Count++
	var lo, hi uint64
	first := true
	for lane := 0; lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := r.LaneAddr(lane)
		s.Lanes++
		if r.Space == logging.SpaceGlobal {
			p.touched[a&^63] = true // 64-byte footprint granularity
		}
		if first {
			lo, hi = a, a
			first = false
		} else {
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if a < s.MinAddr {
			s.MinAddr = a
		}
		if a+uint64(r.Size) > s.MaxAddr {
			s.MaxAddr = a + uint64(r.Size)
		}
	}
	if !first && hi+uint64(r.Size)-lo <= 128 && lo/128 == (hi+uint64(r.Size)-1)/128 {
		s.Coalesced++
	}
}

// Report is the finished profile.
type Report struct {
	Sites          []Site
	Barriers       uint64
	DivergentBra   uint64
	FootprintBytes uint64
}

// Report snapshots the profile, with sites ordered by dynamic lane count
// (hottest first).
func (p *Profiler) Report() *Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &Report{
		Barriers:       p.barriers,
		DivergentBra:   p.branches,
		FootprintBytes: uint64(len(p.touched)) * 64,
	}
	for _, s := range p.sites {
		out.Sites = append(out.Sites, *s)
	}
	sort.Slice(out.Sites, func(i, j int) bool {
		if out.Sites[i].Lanes != out.Sites[j].Lanes {
			return out.Sites[i].Lanes > out.Sites[j].Lanes
		}
		return out.Sites[i].PC < out.Sites[j].PC
	})
	return out
}

// String renders a human-readable profile table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory profile: %d site(s), footprint %d bytes, %d barrier(s), %d divergent branch(es)\n",
		len(r.Sites), r.FootprintBytes, r.Barriers, r.DivergentBra)
	fmt.Fprintf(&b, "%-6s %-8s %-7s %12s %12s %10s\n", "line", "op", "space", "warp execs", "lane accs", "coalesced")
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "%-6d %-8s %-7s %12d %12d %9.0f%%\n",
			s.PC, s.Op, s.Space, s.Count, s.Lanes, 100*s.CoalescingRatio())
	}
	return b.String()
}
