package staticanalysis

import (
	"fmt"
	"sort"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// Severity ranks a diagnostic.
type Severity uint8

// Severities. Errors are defects (divergent barriers); warnings are
// heuristics worth a look.
const (
	SevWarning Severity = iota + 1
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic codes.
const (
	CodeBarrierDivergence = "barrier-divergence"
	CodeUnreachable       = "unreachable-code"
	CodeMissingFence      = "missing-fence"
	CodeUnsyncedShared    = "unsynced-shared"
)

// Diagnostic is one structured lint finding with a PTX source position.
type Diagnostic struct {
	Kernel   string
	Line     int
	Col      int
	Code     string
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s: [%s] %s (kernel %s)",
		d.Line, d.Col, d.Severity, d.Code, d.Message, d.Kernel)
}

// LintModule lints every kernel of a parsed module.
func LintModule(m *ptx.Module) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, k := range m.Kernels {
		c, err := kernel.Build(k)
		if err != nil {
			return nil, err
		}
		out = append(out, LintKernel(Analyze(c))...)
	}
	return out, nil
}

// LintKernel runs all lint checks over one analyzed kernel.
func LintKernel(a *Analysis) []Diagnostic {
	var out []Diagnostic
	out = append(out, lintBarrierDivergence(a)...)
	out = append(out, lintUnreachable(a)...)
	out = append(out, lintMissingFence(a)...)
	out = append(out, lintUnsyncedShared(a)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func diagAt(a *Analysis, i int, code string, sev Severity, format string, args ...any) Diagnostic {
	in := a.CFG.Instrs[i]
	return Diagnostic{
		Kernel:   a.CFG.Kernel.Name,
		Line:     in.Line,
		Col:      in.Col,
		Code:     code,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	}
}

// lintBarrierDivergence flags bar.sync instructions reachable under a
// thread-dependent predicate before control reconverges: threads of one
// block may disagree about reaching the barrier, which deadlocks or — per
// §2 of the paper — synchronizes fewer threads than intended. The
// reconvergence block itself (the branch's immediate post-dominator) is
// excluded: a barrier there is executed by all threads again.
func lintBarrierDivergence(a *Analysis) []Diagnostic {
	c := a.CFG
	n := len(c.Blocks)
	flagged := map[int]int{} // bar instr index -> branch instr index
	for i, in := range c.Instrs {
		if in.Op != ptx.OpBra || in.Guard == nil || !a.Affine.GuardTainted(i) {
			continue
		}
		bb := c.BlockOf[i]
		ip := c.IPDom[bb]
		// BFS over the divergent region: blocks reachable from the branch
		// before its reconvergence point.
		seen := make([]bool, n)
		var work []int
		for _, s := range c.Blocks[bb].Succs {
			if s < n && s != ip {
				work = append(work, s)
				seen[s] = true
			}
		}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for j := c.Blocks[b].Start; j < c.Blocks[b].End; j++ {
				if c.Instrs[j].Op == ptx.OpBar {
					if _, dup := flagged[j]; !dup {
						flagged[j] = i
					}
				}
			}
			for _, s := range c.Blocks[b].Succs {
				if s < n && s != ip && !seen[s] {
					seen[s] = true
					work = append(work, s)
				}
			}
		}
	}
	var out []Diagnostic
	for bar, br := range flagged {
		out = append(out, diagAt(a, bar, CodeBarrierDivergence, SevError,
			"bar.sync under a thread-dependent branch (line %d): not all threads of the block may reach this barrier",
			c.Instrs[br].Line))
	}
	return out
}

// lintUnreachable reports dead code: blocks the dominator solver could
// not reach from the kernel entry.
func lintUnreachable(a *Analysis) []Diagnostic {
	var out []Diagnostic
	for _, b := range a.CFG.UnreachableBlocks() {
		out = append(out, diagAt(a, a.CFG.Blocks[b].Start, CodeUnreachable, SevWarning,
			"unreachable code: no path from the kernel entry reaches this block"))
	}
	return out
}

// lintMissingFence applies two heuristics from the paper's lock-idiom
// acquire/release inference (§3.1): a cas-based spin acquire whose atomic
// is not followed by a fence (so it classifies as a plain atom, not an
// acquire), and a plain store of zero to a lock word (a release that the
// fence inference cannot see).
func lintMissingFence(a *Analysis) []Diagnostic {
	c := a.CFG
	var out []Diagnostic

	// (a) atom.cas feeding a setp that guards a backward branch, with no
	// trailing fence: a spin-lock acquire with no acquire semantics.
	var defs *FlowResult[DefSet]
	for i, in := range c.Instrs {
		if in.Op != ptx.OpBra || in.Guard == nil {
			continue
		}
		t, ok := c.LabelAt[in.Args[0].Sym]
		if !ok || t > i { // only backward (spin) branches
			continue
		}
		if defs == nil {
			defs = ReachingDefs(c)
		}
		for _, sp := range DefsAt(c, defs, i, in.Guard.Reg) {
			spIn := c.Instrs[sp]
			if spIn.Op != ptx.OpSetp {
				continue
			}
			for _, arg := range spIn.Args {
				if arg.Kind != ptx.OpndReg {
					continue
				}
				for _, d := range DefsAt(c, defs, sp, arg.Reg) {
					din := c.Instrs[d]
					if din.Op == ptx.OpAtom && din.Atom == ptx.AtomCas && a.Class[d] == trace.OpAtom {
						out = append(out, diagAt(a, d, CodeMissingFence, SevWarning,
							"atom.cas spin-lock acquire has no trailing memory fence: later reads may see stale data"))
					}
				}
			}
		}
	}

	// (b) a plain store of 0 to a register that elsewhere bases a
	// cas/exch atomic: a lock release with no preceding fence.
	lockBase := map[string]bool{}
	for _, in := range c.Instrs {
		if (in.Op == ptx.OpAtom || in.Op == ptx.OpRed) &&
			(in.Atom == ptx.AtomCas || in.Atom == ptx.AtomExch) {
			if adr, ok := in.AddrOperand(); ok && adr.BaseReg != "" {
				lockBase[adr.BaseReg] = true
			}
		}
	}
	for i, in := range c.Instrs {
		if in.Op != ptx.OpSt || a.Class[i] != trace.OpWrite || in.Guard != nil {
			continue
		}
		adr, ok := in.AddrOperand()
		if !ok || adr.BaseReg == "" || !lockBase[adr.BaseReg] {
			continue
		}
		if len(in.Args) > 1 && in.Args[1].Kind == ptx.OpndImm && in.Args[1].Imm == 0 {
			out = append(out, diagAt(a, i, CodeMissingFence, SevWarning,
				"plain store of 0 releases a lock word without a preceding memory fence"))
		}
	}
	return out
}

// lintUnsyncedShared flags shared-memory reads in kernels that also
// write shared memory, when no bar.sync dominates the read and the
// address is not provably thread-private: a classic missing-barrier
// communication pattern.
func lintUnsyncedShared(a *Analysis) []Diagnostic {
	c := a.CFG
	hasSharedWrite := false
	for i, k := range a.Class {
		if c.Instrs[i].Space == ptx.SpaceShared && k.Writes() {
			hasSharedWrite = true
			break
		}
	}
	if !hasSharedWrite {
		return nil
	}
	var bars []int
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBar {
			bars = append(bars, i)
		}
	}
	var out []Diagnostic
	for i, k := range a.Class {
		if k != trace.OpRead || c.Instrs[i].Space != ptx.SpaceShared {
			continue
		}
		if a.Prune.Reason[i] == PrunePrivate || sharedThreadPrivate(a, i) {
			continue // each thread reads only its own slot
		}
		synced := false
		for _, b := range bars {
			bb, ib := c.BlockOf[b], c.BlockOf[i]
			if (bb == ib && b < i) || (bb != ib && c.Dominates(bb, ib)) {
				synced = true
				break
			}
		}
		if !synced {
			out = append(out, diagAt(a, i, CodeUnsyncedShared, SevWarning,
				"shared-memory read with no dominating bar.sync in a kernel that writes shared memory"))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// sharedThreadPrivate reports whether shared read i provably stays in
// its own thread's slot AND every shared write anchored to the same
// symbol does too. Unlike the pruner's verdict, this is per-site: a
// shared access with an unknown address elsewhere blocks the pruner's
// whole shared space (it must stay conservative about *removing
// logging*), but it does not make a strided-in-slot read any less
// private — only an unknown *write* could reach into this thread's
// slot, and that case returns false below.
func sharedThreadPrivate(a *Analysis, i int) bool {
	s, ok := siteDecomp(a, i)
	if !ok || s.form != formStrided {
		return false
	}
	if s.delta < 0 || s.delta+int64(s.bytes) > s.stride {
		return false
	}
	sym := s.syms[0]
	for j, k := range a.Class {
		if !k.Writes() || a.CFG.Instrs[j].Space != ptx.SpaceShared {
			continue
		}
		w, ok := siteDecomp(a, j)
		if !ok {
			return false // unknown shared write: could hit any slot
		}
		if w.syms[0] != sym {
			continue // distinct shared arrays do not alias
		}
		if w.form != formStrided || w.stride != s.stride ||
			w.delta < 0 || w.delta+int64(w.bytes) > w.stride {
			return false
		}
	}
	return true
}
