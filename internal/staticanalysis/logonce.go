package staticanalysis

import (
	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// ComputeAffine runs only the affine index analysis on a kernel CFG, for
// clients that do not need the full Analysis pipeline.
func ComputeAffine(c *kernel.CFG) *Affine { return computeAffine(c) }

// LogOnceSites returns the instruction indices of memory sites the
// producer-side filter may elide statically (instrument marks them as
// ptx.Instr.LogOnce). A site qualifies when every dynamic repeat within
// one synchronization interval is provably an exact duplicate of the
// first emission:
//
//   - it is a plain global-space read (shared races are digested exactly
//     and writes need per-lane value tracking, so neither is marked);
//   - it is unguarded, so the active mask at the site is determined by
//     the SIMT stack alone (the runtime still compares masks);
//   - its effective address has an affine symbolic form built purely from
//     launch-structural terms (parameters, tid/ctaid/ntid/nctaid,
//     symbols, constants) on every path — such an address is a fixed
//     function of (launch, block, thread), so every lane recomputes the
//     identical address on every visit;
//   - it sits inside a natural loop whose body contains no barrier,
//     fence, or atomic, so back-to-back repeats within one generation
//     are the expected dynamic behavior (profitability; soundness rests
//     on the runtime generation/epoch/mask/address checks).
//
// The result is a hint: eliding a marked site is sound only under the
// runtime checks the simulator applies (same generation, no intervening
// global writes, same mask, matching first-lane address).
func LogOnceSites(c *kernel.CFG, class map[int]trace.OpKind, aff *Affine) map[int]bool {
	if aff == nil || len(c.Blocks) == 0 {
		return nil
	}
	// A block is "quiet" when executing it cannot bump the warp's filter
	// generation: no barrier, no fence, no atomic.
	quiet := make([]bool, len(c.Blocks))
	for bi, b := range c.Blocks {
		q := true
		for i := b.Start; i < b.End; i++ {
			switch c.Instrs[i].Op {
			case ptx.OpBar, ptx.OpMembar, ptx.OpAtom, ptx.OpRed:
				q = false
			}
		}
		quiet[bi] = q
	}
	// Mark blocks inside at least one all-quiet natural loop. Back edge:
	// an edge u->h where h dominates u; the loop body is h plus every
	// block that reaches u without passing through h.
	inQuiet := make([]bool, len(c.Blocks))
	for ui, u := range c.Blocks {
		for _, h := range u.Succs {
			if !c.Dominates(h, ui) {
				continue
			}
			body := make(map[int]bool, 8)
			body[h] = true
			stack := []int{}
			if !body[ui] {
				body[ui] = true
				stack = append(stack, ui)
			}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range c.Blocks[v].Preds {
					if !body[p] {
						body[p] = true
						stack = append(stack, p)
					}
				}
			}
			allQuiet := true
			for v := range body {
				if !quiet[v] {
					allQuiet = false
					break
				}
			}
			if allQuiet {
				for v := range body {
					inQuiet[v] = true
				}
			}
		}
	}
	var out map[int]bool
	for i, kind := range class {
		if kind != trace.OpRead {
			continue
		}
		in := c.Instrs[i]
		if in.Space != ptx.SpaceGlobal || in.Guard != nil {
			continue
		}
		if !inQuiet[c.BlockOf[i]] || !aff.AddrKnown(i) {
			continue
		}
		if out == nil {
			out = make(map[int]bool)
		}
		out[i] = true
	}
	return out
}
