package staticanalysis

import (
	"strings"
	"testing"

	"barracuda/internal/ptx"
)

func lintSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := LintModule(m)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return diags
}

func byCode(diags []Diagnostic, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

const header = ".version 4.3\n.target sm_35\n.address_size 64\n"

// TestLintBarrierDivergence: a bar.sync inside a tid-guarded region is an
// error, with the position of the barrier itself.
func TestLintBarrierDivergence(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 smem[128];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@!%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}`
	diags := byCode(lintSrc(t, src), CodeBarrierDivergence)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one barrier-divergence", diags)
	}
	d := diags[0]
	if d.Severity != SevError {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	// The bar.sync sits on line 11 of the assembled source (header is 3
	// lines, `.visible` is line 4), column 2 (after one tab).
	if d.Line != 11 || d.Col != 2 {
		t.Errorf("position = %d:%d, want 11:2", d.Line, d.Col)
	}
}

// TestLintBarrierAtReconvergenceClean: a barrier at the reconvergence
// point is executed by every thread — no diagnostic.
func TestLintBarrierAtReconvergenceClean(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@!%p1 bra SKIP;
	add.u32 %r2, %r1, 1;
SKIP:
	bar.sync 0;
	ret;
}`
	if diags := byCode(lintSrc(t, src), CodeBarrierDivergence); len(diags) != 0 {
		t.Errorf("reconvergence-point barrier flagged: %v", diags)
	}
}

// TestLintBarrierUniformGuardClean: a guard derived only from parameters
// is uniform across the block — no divergence.
func TestLintBarrierUniformGuardClean(t *testing.T) {
	src := header + `.visible .entry k(.param .u32 n) {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	ld.param.u32 %r1, [n];
	setp.lt.u32 %p1, %r1, 16;
	@!%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}`
	if diags := byCode(lintSrc(t, src), CodeBarrierDivergence); len(diags) != 0 {
		t.Errorf("uniform-guard barrier flagged: %v", diags)
	}
}

// TestLintUnreachable: dead code after an unconditional branch.
func TestLintUnreachable(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, 1;
	bra.uni DONE;
	add.u32 %r2, %r1, 1;
DONE:
	ret;
}`
	diags := byCode(lintSrc(t, src), CodeUnreachable)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one unreachable-code", diags)
	}
	if diags[0].Line != 8 {
		t.Errorf("line = %d, want 8 (the dead add)", diags[0].Line)
	}
}

// TestLintMissingFenceSpin: cas spin-acquire without a trailing fence.
func TestLintMissingFenceSpin(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 lock) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ret;
}`
	diags := byCode(lintSrc(t, src), CodeMissingFence)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one missing-fence", diags)
	}
	if !strings.Contains(diags[0].Message, "spin-lock acquire") {
		t.Errorf("message = %q", diags[0].Message)
	}
}

// TestLintFencedSpinClean: the same loop with a trailing membar is the
// correct acquire idiom — silent.
func TestLintFencedSpinClean(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 lock) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lock];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.gl;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ret;
}`
	if diags := byCode(lintSrc(t, src), CodeMissingFence); len(diags) != 0 {
		t.Errorf("fenced spin flagged: %v", diags)
	}
}

// TestLintMissingFenceUnlock: a plain store of 0 to the lock word.
func TestLintMissingFenceUnlock(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 lock) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [lock];
	atom.global.exch.b32 %r1, [%rd1], 1;
	st.global.u32 [%rd1], 0;
	ret;
}`
	diags := byCode(lintSrc(t, src), CodeMissingFence)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one missing-fence (plain unlock)", diags)
	}
	if !strings.Contains(diags[0].Message, "releases a lock") {
		t.Errorf("message = %q", diags[0].Message)
	}
}

// TestLintUnsyncedShared: reading another thread's shared slot with no
// barrier in between.
func TestLintUnsyncedShared(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 smem[512];
	mov.u32 %r1, %tid.x;
	mul.lo.u32 %r2, %r1, 4;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd1, smem;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`
	diags := byCode(lintSrc(t, src), CodeUnsyncedShared)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one unsynced-shared", diags)
	}
}

// TestLintSyncedSharedClean: the same pattern with a barrier between the
// write and the neighbor read is fine.
func TestLintSyncedSharedClean(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 smem[512];
	mov.u32 %r1, %tid.x;
	mul.lo.u32 %r2, %r1, 4;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd1, smem;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	bar.sync 0;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`
	if diags := byCode(lintSrc(t, src), CodeUnsyncedShared); len(diags) != 0 {
		t.Errorf("synced shared read flagged: %v", diags)
	}
}

// TestLintUnsyncedSharedPerSitePrivacy: a strided-in-slot shared read is
// thread-private even when an *unknown-address shared read* elsewhere
// blocks the pruner's whole shared space. The old behavior flagged both
// reads; only the unknown one is a real finding.
func TestLintUnsyncedSharedPerSitePrivacy(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3];
	ld.param.u64 %rd4, [p];
	ld.global.u64 %rd5, [%rd4];
	ld.shared.u32 %r4, [%rd5];
	ret;
}`
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Precondition: the unknown-address read blocks the pruner, so the
	// private read is NOT PrunePrivate — the old suppression path would
	// not fire and the fix must come from the per-site check.
	a := analyzeSrc(t, src)
	for i, in := range a.CFG.Instrs {
		if in.Op == ptx.OpLd && in.Space == ptx.SpaceShared {
			if a.Prune.Reason[i] == PrunePrivate {
				t.Fatalf("instr %d: pruner unexpectedly proved privacy; the regression test is vacuous", i)
			}
		}
	}
	diags, err := LintModule(m)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	unsynced := byCode(diags, CodeUnsyncedShared)
	if len(unsynced) != 1 {
		t.Fatalf("unsynced-shared = %v, want exactly one (the unknown-address read)", unsynced)
	}
	// Line 17 is the ld.shared at the unknown register address.
	if unsynced[0].Line != 17 {
		t.Errorf("flagged line %d, want 17 (the unknown-address read)", unsynced[0].Line)
	}
}

// TestLintUnsyncedSharedUnknownWriteDefeatsPrivacy: with an
// unknown-address shared *write* in the kernel, no read is provably
// private — every unsynced read must still be flagged.
func TestLintUnsyncedSharedUnknownWriteDefeatsPrivacy(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3];
	ld.param.u64 %rd4, [p];
	ld.global.u64 %rd5, [%rd4];
	st.shared.u32 [%rd5], %r1;
	ret;
}`
	diags := lintSrc(t, src)
	unsynced := byCode(diags, CodeUnsyncedShared)
	if len(unsynced) != 1 {
		t.Fatalf("unsynced-shared = %v, want the in-slot read flagged (unknown write aliases it)", unsynced)
	}
	if unsynced[0].Line != 14 {
		t.Errorf("flagged line %d, want 14", unsynced[0].Line)
	}
}
