package staticanalysis

import (
	"fmt"
	"sort"
	"strings"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// The affine analysis assigns each register a symbolic value of the form
//
//	c + Σ coeff_i · term_i
//
// over a small basis of launch-structured terms: kernel parameters and
// module symbols (grid-uniform), ntid/nctaid (grid-uniform), ctaid
// (block-uniform), tid (thread-varying), and the product ctaid.a·ntid.a
// ("blockbase") that the ubiquitous global-thread-id idiom
// `mad.lo %r, %ctaid.x, %ntid.x, %tid.x` produces. A value that cannot be
// expressed in this form is "unknown".
//
// Two deliberate approximations, both documented in DESIGN.md:
//
//   - cvt widening is treated as the identity, i.e. index arithmetic is
//     assumed not to overflow 32 bits before widening to 64;
//   - the taint bit is an over-approximation of "derived from tid/laneid"
//     and is used only by the lint pass (advisory diagnostics), never by
//     the pruner's soundness-critical privacy reasoning.

// termKind classifies a symbolic basis term.
type termKind uint8

const (
	termParam     termKind = iota // kernel parameter value (grid-uniform)
	termSym                       // module/shared symbol address (grid-uniform)
	termTid                       // %tid.{x,y,z} (thread-varying)
	termCtaid                     // %ctaid.{x,y,z} (block-uniform)
	termNtid                      // %ntid.{x,y,z} (grid-uniform)
	termNctaid                    // %nctaid.{x,y,z} (grid-uniform)
	termBlockBase                 // %ctaid.a * %ntid.a (block-uniform)
)

// term is one symbolic basis term.
type term struct {
	kind termKind
	axis uint8  // 0/1/2 = x/y/z for the axis-indexed kinds
	name string // param or symbol name (params include the load offset)
}

func (t term) String() string {
	axis := string("xyz"[t.axis])
	switch t.kind {
	case termParam:
		return "param:" + t.name
	case termSym:
		return "sym:" + t.name
	case termTid:
		return "tid." + axis
	case termCtaid:
		return "ctaid." + axis
	case termNtid:
		return "ntid." + axis
	case termNctaid:
		return "nctaid." + axis
	case termBlockBase:
		return "blockbase." + axis
	}
	return "?"
}

// gridUniform reports whether the term has the same value for every
// thread of the launch.
func (t term) gridUniform() bool {
	switch t.kind {
	case termParam, termSym, termNtid, termNctaid:
		return true
	}
	return false
}

// value is the abstract value of one register.
type value struct {
	affine bool
	c      int64
	terms  map[term]int64 // nil or non-empty; coefficients are non-zero
	taint  bool           // may be derived from tid/laneid (over-approx)
}

func unknownV(taint bool) value { return value{taint: taint} }
func constV(c int64) value      { return value{affine: true, c: c} }

func termV(t term, taint bool) value {
	return value{affine: true, terms: map[term]int64{t: 1}, taint: taint}
}

// isConst reports a pure constant and its value.
func (v value) isConst() (int64, bool) {
	if v.affine && len(v.terms) == 0 {
		return v.c, true
	}
	return 0, false
}

// singleTerm reports a value that is exactly one basis term (coeff 1,
// no constant).
func (v value) singleTerm() (term, bool) {
	if v.affine && v.c == 0 && len(v.terms) == 1 {
		for t, co := range v.terms {
			if co == 1 {
				return t, true
			}
		}
	}
	return term{}, false
}

func (v value) String() string {
	if !v.affine {
		if v.taint {
			return "⊤(tid)"
		}
		return "⊤"
	}
	parts := make([]string, 0, len(v.terms)+1)
	for t, co := range v.terms {
		parts = append(parts, fmt.Sprintf("%d*%s", co, t))
	}
	sort.Strings(parts)
	if v.c != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", v.c))
	}
	return strings.Join(parts, " + ")
}

func addV(a, b value) value {
	taint := a.taint || b.taint
	if !a.affine || !b.affine {
		return unknownV(taint)
	}
	out := value{affine: true, c: a.c + b.c, taint: taint}
	if len(a.terms)+len(b.terms) > 0 {
		out.terms = make(map[term]int64, len(a.terms)+len(b.terms))
		for t, co := range a.terms {
			out.terms[t] = co
		}
		for t, co := range b.terms {
			if n := out.terms[t] + co; n != 0 {
				out.terms[t] = n
			} else {
				delete(out.terms, t)
			}
		}
	}
	return out
}

func scaleV(a value, k int64) value {
	if !a.affine {
		return unknownV(a.taint)
	}
	if k == 0 {
		return value{affine: true, taint: a.taint}
	}
	out := value{affine: true, c: a.c * k, taint: a.taint}
	if len(a.terms) > 0 {
		out.terms = make(map[term]int64, len(a.terms))
		for t, co := range a.terms {
			out.terms[t] = co * k
		}
	}
	return out
}

func subV(a, b value) value { return addV(a, scaleV(b, -1)) }

func mulV(a, b value) value {
	taint := a.taint || b.taint
	if k, ok := a.isConst(); ok {
		v := scaleV(b, k)
		v.taint = taint
		return v
	}
	if k, ok := b.isConst(); ok {
		v := scaleV(a, k)
		v.taint = taint
		return v
	}
	// The one non-linear product with a basis term: ctaid.a * ntid.a.
	if ta, ok := a.singleTerm(); ok {
		if tb, ok2 := b.singleTerm(); ok2 {
			if ta.kind == termCtaid && tb.kind == termNtid && ta.axis == tb.axis {
				return termV(term{kind: termBlockBase, axis: ta.axis}, taint)
			}
			if ta.kind == termNtid && tb.kind == termCtaid && ta.axis == tb.axis {
				return termV(term{kind: termBlockBase, axis: ta.axis}, taint)
			}
		}
	}
	return unknownV(taint)
}

func equalValue(a, b value) bool {
	if a.affine != b.affine || a.taint != b.taint {
		return false
	}
	if !a.affine {
		return true
	}
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for t, co := range a.terms {
		if b.terms[t] != co {
			return false
		}
	}
	return true
}

// joinValue merges two path values: equal affine values survive, anything
// else degrades to unknown. Taint is or-ed (it is an over-approximation).
func joinValue(a, b value) value {
	taint := a.taint || b.taint
	if a.affine && b.affine && a.c == b.c && len(a.terms) == len(b.terms) {
		same := true
		for t, co := range a.terms {
			if b.terms[t] != co {
				same = false
				break
			}
		}
		if same {
			out := a
			out.taint = taint
			return out
		}
	}
	return unknownV(taint)
}

// regState maps register name to abstract value. Missing = unknown.
type regState map[string]value

func cloneRegState(a regState) regState {
	out := make(regState, len(a))
	for r, v := range a {
		out[r] = v // values are treated as immutable
	}
	return out
}

func joinRegState(a, b regState) regState {
	out := make(regState, len(a))
	for r, va := range a {
		if vb, ok := b[r]; ok {
			if v := joinValue(va, vb); v.affine || v.taint {
				out[r] = v
			}
		}
	}
	return out
}

func equalRegState(a, b regState) bool {
	if len(a) != len(b) {
		return false
	}
	for r, va := range a {
		vb, ok := b[r]
		if !ok || !equalValue(va, vb) {
			return false
		}
	}
	return true
}

func sregValue(s ptx.Sreg) value {
	switch s {
	case ptx.SregTidX, ptx.SregTidY, ptx.SregTidZ:
		return termV(term{kind: termTid, axis: uint8(s - ptx.SregTidX)}, true)
	case ptx.SregNtidX, ptx.SregNtidY, ptx.SregNtidZ:
		return termV(term{kind: termNtid, axis: uint8(s - ptx.SregNtidX)}, false)
	case ptx.SregCtaidX, ptx.SregCtaidY, ptx.SregCtaidZ:
		return termV(term{kind: termCtaid, axis: uint8(s - ptx.SregCtaidX)}, false)
	case ptx.SregNctaidX, ptx.SregNctaidY, ptx.SregNctaidZ:
		return termV(term{kind: termNctaid, axis: uint8(s - ptx.SregNctaidX)}, false)
	case ptx.SregLaneid, ptx.SregWarpid:
		return unknownV(true)
	}
	return unknownV(false)
}

func operandValue(st regState, o ptx.Operand) value {
	switch o.Kind {
	case ptx.OpndImm:
		return constV(o.Imm)
	case ptx.OpndReg:
		if v, ok := st[o.Reg]; ok {
			return v
		}
		return unknownV(false)
	case ptx.OpndSreg:
		return sregValue(o.Sreg)
	case ptx.OpndSym:
		return termV(term{kind: termSym, name: o.Sym}, false)
	}
	return unknownV(false)
}

// evalInstr computes the abstract value the instruction assigns to its
// destination register, or ok=false when it defines none.
func evalInstr(st regState, in *ptx.Instr) (value, bool) {
	if !in.HasDst || in.Dst.Kind != ptx.OpndReg {
		return value{}, false
	}
	arg := func(i int) value {
		if i < len(in.Args) {
			return operandValue(st, in.Args[i])
		}
		return unknownV(false)
	}
	var v value
	switch in.Op {
	case ptx.OpMov:
		v = arg(0)
	case ptx.OpLd:
		if in.Space == ptx.SpaceParam {
			if a, ok := in.AddrOperand(); ok && a.BaseSym != "" {
				v = termV(term{kind: termParam, name: fmt.Sprintf("%s+%d", a.BaseSym, a.Off)}, false)
				break
			}
		}
		v = unknownV(false)
	case ptx.OpAdd:
		v = addV(arg(0), arg(1))
	case ptx.OpSub:
		v = subV(arg(0), arg(1))
	case ptx.OpMul:
		if in.Hi {
			v = unknownV(arg(0).taint || arg(1).taint)
		} else {
			v = mulV(arg(0), arg(1))
		}
	case ptx.OpMad:
		if in.Hi {
			v = unknownV(arg(0).taint || arg(1).taint || arg(2).taint)
		} else {
			v = addV(mulV(arg(0), arg(1)), arg(2))
		}
	case ptx.OpShl:
		if k, ok := arg(1).isConst(); ok && k >= 0 && k < 63 {
			v = scaleV(arg(0), 1<<uint(k))
		} else {
			v = unknownV(arg(0).taint || arg(1).taint)
		}
	case ptx.OpNeg:
		v = scaleV(arg(0), -1)
	case ptx.OpCvt, ptx.OpCvta:
		// Identity under the documented no-32-bit-overflow assumption.
		v = arg(0)
	case ptx.OpSelp:
		a, b := arg(0), arg(1)
		v = joinValue(a, b)
		v.taint = v.taint || arg(2).taint
	case ptx.OpAtom:
		// The destination is the old memory value: unknown provenance.
		v = unknownV(false)
	default:
		// Unmodeled op: unknown, but propagate taint from register and
		// special-register inputs so lint sees tid-derived predicates.
		taint := false
		for _, a := range in.Args {
			if a.Kind == ptx.OpndReg || a.Kind == ptx.OpndSreg {
				taint = taint || operandValue(st, a).taint
			}
		}
		v = unknownV(taint)
	}
	if in.Guard != nil {
		// Guarded definition: the old value may survive, and the selected
		// value depends on the predicate.
		old := unknownV(false)
		if o, ok := st[in.Dst.Reg]; ok {
			old = o
		}
		v = joinValue(old, v)
		if g, ok := st[in.Guard.Reg]; ok {
			v.taint = v.taint || g.taint
		}
	}
	return v, true
}

// Affine holds the per-instruction results of the affine index analysis.
type Affine struct {
	// addr maps a memory instruction index to the abstract value of its
	// effective address (base register value + static offset). Missing
	// entries mean unknown (e.g. unreachable code).
	addr map[int]value
	// guardTaint maps a guarded instruction index to whether its guard
	// predicate may be tid-derived.
	guardTaint map[int]bool
}

// GuardTainted reports whether instruction i is guarded by a predicate
// that may be derived from tid/laneid.
func (a *Affine) GuardTainted(i int) bool { return a.guardTaint[i] }

// AddrKnown reports whether the address of memory instruction i has an
// affine symbolic form.
func (a *Affine) AddrKnown(i int) bool {
	v, ok := a.addr[i]
	return ok && v.affine
}

// computeAffine solves the affine problem and records per-instruction
// address values and guard taint.
func computeAffine(c *kernel.CFG) *Affine {
	res := SolveForward(c, Problem[regState]{
		Entry: func() regState { return regState{} },
		Clone: cloneRegState,
		Join:  joinRegState,
		Transfer: func(b *kernel.Block, in regState) regState {
			st := cloneRegState(in)
			for i := b.Start; i < b.End; i++ {
				if v, ok := evalInstr(st, c.Instrs[i]); ok {
					st[c.Instrs[i].Dst.Reg] = v
				}
			}
			return st
		},
		Equal: equalRegState,
	})
	out := &Affine{addr: make(map[int]value), guardTaint: make(map[int]bool)}
	for bi, b := range c.Blocks {
		if !res.Reached[bi] {
			continue
		}
		st := cloneRegState(res.In[bi])
		for i := b.Start; i < b.End; i++ {
			in := c.Instrs[i]
			if in.Guard != nil {
				if g, ok := st[in.Guard.Reg]; ok {
					out.guardTaint[i] = g.taint
				}
			}
			if a, ok := in.AddrOperand(); ok {
				switch {
				case a.BaseReg != "":
					base := unknownV(false)
					if v, ok := st[a.BaseReg]; ok {
						base = v
					}
					out.addr[i] = addV(base, constV(a.Off))
				case a.BaseSym != "":
					out.addr[i] = addV(termV(term{kind: termSym, name: a.BaseSym}, false), constV(a.Off))
				}
			}
			if v, ok := evalInstr(st, in); ok {
				st[in.Dst.Reg] = v
			}
		}
	}
	return out
}
