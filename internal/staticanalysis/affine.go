package staticanalysis

import (
	"fmt"
	"sort"
	"strings"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// The affine analysis assigns each register a symbolic value of the form
//
//	c + Σ coeff_i · term_i
//
// over a small basis of launch-structured terms: kernel parameters and
// module symbols (grid-uniform), ntid/nctaid (grid-uniform), ctaid
// (block-uniform), tid (thread-varying), and the product ctaid.a·ntid.a
// ("blockbase") that the ubiquitous global-thread-id idiom
// `mad.lo %r, %ctaid.x, %ntid.x, %tid.x` produces. A value that cannot be
// expressed in this form is "unknown".
//
// Two deliberate approximations, both documented in DESIGN.md:
//
//   - cvt widening is treated as the identity, i.e. index arithmetic is
//     assumed not to overflow 32 bits before widening to 64;
//   - the taint bit is an over-approximation of "derived from tid/laneid"
//     and is used only by the lint pass (advisory diagnostics), never by
//     the pruner's soundness-critical privacy reasoning.

// termKind classifies a symbolic basis term.
type termKind uint8

const (
	termParam     termKind = iota // kernel parameter value (grid-uniform)
	termSym                       // module/shared symbol address (grid-uniform)
	termTid                       // %tid.{x,y,z} (thread-varying)
	termCtaid                     // %ctaid.{x,y,z} (block-uniform)
	termNtid                      // %ntid.{x,y,z} (grid-uniform)
	termNctaid                    // %nctaid.{x,y,z} (grid-uniform)
	termBlockBase                 // %ctaid.a * %ntid.a (block-uniform)
)

// term is one symbolic basis term.
type term struct {
	kind termKind
	axis uint8  // 0/1/2 = x/y/z for the axis-indexed kinds
	name string // param or symbol name (params include the load offset)
}

func (t term) String() string {
	axis := string("xyz"[t.axis])
	switch t.kind {
	case termParam:
		return "param:" + t.name
	case termSym:
		return "sym:" + t.name
	case termTid:
		return "tid." + axis
	case termCtaid:
		return "ctaid." + axis
	case termNtid:
		return "ntid." + axis
	case termNctaid:
		return "nctaid." + axis
	case termBlockBase:
		return "blockbase." + axis
	}
	return "?"
}

// gridUniform reports whether the term has the same value for every
// thread of the launch.
func (t term) gridUniform() bool {
	switch t.kind {
	case termParam, termSym, termNtid, termNctaid:
		return true
	}
	return false
}

// value is the abstract value of one register.
type value struct {
	affine bool
	c      int64
	terms  map[term]int64 // nil or non-empty; coefficients are non-zero
	taint  bool           // may be derived from tid/laneid (over-approx)
}

func unknownV(taint bool) value { return value{taint: taint} }
func constV(c int64) value      { return value{affine: true, c: c} }

func termV(t term, taint bool) value {
	return value{affine: true, terms: map[term]int64{t: 1}, taint: taint}
}

// isConst reports a pure constant and its value.
func (v value) isConst() (int64, bool) {
	if v.affine && len(v.terms) == 0 {
		return v.c, true
	}
	return 0, false
}

// singleTerm reports a value that is exactly one basis term (coeff 1,
// no constant).
func (v value) singleTerm() (term, bool) {
	if v.affine && v.c == 0 && len(v.terms) == 1 {
		for t, co := range v.terms {
			if co == 1 {
				return t, true
			}
		}
	}
	return term{}, false
}

func (v value) String() string {
	if !v.affine {
		if v.taint {
			return "⊤(tid)"
		}
		return "⊤"
	}
	parts := make([]string, 0, len(v.terms)+1)
	for t, co := range v.terms {
		parts = append(parts, fmt.Sprintf("%d*%s", co, t))
	}
	sort.Strings(parts)
	if v.c != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", v.c))
	}
	return strings.Join(parts, " + ")
}

func addV(a, b value) value {
	taint := a.taint || b.taint
	if !a.affine || !b.affine {
		return unknownV(taint)
	}
	out := value{affine: true, c: a.c + b.c, taint: taint}
	if len(a.terms)+len(b.terms) > 0 {
		out.terms = make(map[term]int64, len(a.terms)+len(b.terms))
		for t, co := range a.terms {
			out.terms[t] = co
		}
		for t, co := range b.terms {
			if n := out.terms[t] + co; n != 0 {
				out.terms[t] = n
			} else {
				delete(out.terms, t)
			}
		}
	}
	return out
}

func scaleV(a value, k int64) value {
	if !a.affine {
		return unknownV(a.taint)
	}
	if k == 0 {
		return value{affine: true, taint: a.taint}
	}
	out := value{affine: true, c: a.c * k, taint: a.taint}
	if len(a.terms) > 0 {
		out.terms = make(map[term]int64, len(a.terms))
		for t, co := range a.terms {
			out.terms[t] = co * k
		}
	}
	return out
}

func subV(a, b value) value { return addV(a, scaleV(b, -1)) }

func mulV(a, b value) value {
	taint := a.taint || b.taint
	if k, ok := a.isConst(); ok {
		v := scaleV(b, k)
		v.taint = taint
		return v
	}
	if k, ok := b.isConst(); ok {
		v := scaleV(a, k)
		v.taint = taint
		return v
	}
	// The one non-linear product with a basis term: ctaid.a * ntid.a.
	if ta, ok := a.singleTerm(); ok {
		if tb, ok2 := b.singleTerm(); ok2 {
			if ta.kind == termCtaid && tb.kind == termNtid && ta.axis == tb.axis {
				return termV(term{kind: termBlockBase, axis: ta.axis}, taint)
			}
			if ta.kind == termNtid && tb.kind == termCtaid && ta.axis == tb.axis {
				return termV(term{kind: termBlockBase, axis: ta.axis}, taint)
			}
		}
	}
	return unknownV(taint)
}

func equalValue(a, b value) bool {
	if a.affine != b.affine || a.taint != b.taint {
		return false
	}
	if !a.affine {
		return true
	}
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for t, co := range a.terms {
		if b.terms[t] != co {
			return false
		}
	}
	return true
}

// joinValue merges two path values: equal affine values survive, anything
// else degrades to unknown. Taint is or-ed (it is an over-approximation).
func joinValue(a, b value) value {
	taint := a.taint || b.taint
	if a.affine && b.affine && a.c == b.c && len(a.terms) == len(b.terms) {
		same := true
		for t, co := range a.terms {
			if b.terms[t] != co {
				same = false
				break
			}
		}
		if same {
			out := a
			out.taint = taint
			return out
		}
	}
	return unknownV(taint)
}

// regState maps register name to abstract value. Missing = unknown.
type regState map[string]value

func cloneRegState(a regState) regState {
	out := make(regState, len(a))
	for r, v := range a {
		out[r] = v // values are treated as immutable
	}
	return out
}

func joinRegState(a, b regState) regState {
	out := make(regState, len(a))
	for r, va := range a {
		if vb, ok := b[r]; ok {
			if v := joinValue(va, vb); v.affine || v.taint {
				out[r] = v
			}
		}
	}
	return out
}

func equalRegState(a, b regState) bool {
	if len(a) != len(b) {
		return false
	}
	for r, va := range a {
		vb, ok := b[r]
		if !ok || !equalValue(va, vb) {
			return false
		}
	}
	return true
}

func sregValue(s ptx.Sreg) value {
	switch s {
	case ptx.SregTidX, ptx.SregTidY, ptx.SregTidZ:
		return termV(term{kind: termTid, axis: uint8(s - ptx.SregTidX)}, true)
	case ptx.SregNtidX, ptx.SregNtidY, ptx.SregNtidZ:
		return termV(term{kind: termNtid, axis: uint8(s - ptx.SregNtidX)}, false)
	case ptx.SregCtaidX, ptx.SregCtaidY, ptx.SregCtaidZ:
		return termV(term{kind: termCtaid, axis: uint8(s - ptx.SregCtaidX)}, false)
	case ptx.SregNctaidX, ptx.SregNctaidY, ptx.SregNctaidZ:
		return termV(term{kind: termNctaid, axis: uint8(s - ptx.SregNctaidX)}, false)
	case ptx.SregLaneid, ptx.SregWarpid:
		return unknownV(true)
	}
	return unknownV(false)
}

func operandValue(st regState, o ptx.Operand) value {
	switch o.Kind {
	case ptx.OpndImm:
		return constV(o.Imm)
	case ptx.OpndReg:
		if v, ok := st[o.Reg]; ok {
			return v
		}
		return unknownV(false)
	case ptx.OpndSreg:
		return sregValue(o.Sreg)
	case ptx.OpndSym:
		return termV(term{kind: termSym, name: o.Sym}, false)
	}
	return unknownV(false)
}

// evalInstr computes the abstract value the instruction assigns to its
// destination register, or ok=false when it defines none.
func evalInstr(st regState, in *ptx.Instr) (value, bool) {
	if !in.HasDst || in.Dst.Kind != ptx.OpndReg {
		return value{}, false
	}
	arg := func(i int) value {
		if i < len(in.Args) {
			return operandValue(st, in.Args[i])
		}
		return unknownV(false)
	}
	var v value
	switch in.Op {
	case ptx.OpMov:
		v = arg(0)
	case ptx.OpLd:
		if in.Space == ptx.SpaceParam {
			if a, ok := in.AddrOperand(); ok && a.BaseSym != "" {
				v = termV(term{kind: termParam, name: fmt.Sprintf("%s+%d", a.BaseSym, a.Off)}, false)
				break
			}
		}
		v = unknownV(false)
	case ptx.OpAdd:
		v = addV(arg(0), arg(1))
	case ptx.OpSub:
		v = subV(arg(0), arg(1))
	case ptx.OpMul:
		if in.Hi {
			v = unknownV(arg(0).taint || arg(1).taint)
		} else {
			v = mulV(arg(0), arg(1))
		}
	case ptx.OpMad:
		if in.Hi {
			v = unknownV(arg(0).taint || arg(1).taint || arg(2).taint)
		} else {
			v = addV(mulV(arg(0), arg(1)), arg(2))
		}
	case ptx.OpShl:
		if k, ok := arg(1).isConst(); ok && k >= 0 && k < 63 {
			v = scaleV(arg(0), 1<<uint(k))
		} else {
			v = unknownV(arg(0).taint || arg(1).taint)
		}
	case ptx.OpNeg:
		v = scaleV(arg(0), -1)
	case ptx.OpCvt, ptx.OpCvta:
		// Identity under the documented no-32-bit-overflow assumption.
		v = arg(0)
	case ptx.OpSelp:
		a, b := arg(0), arg(1)
		v = joinValue(a, b)
		v.taint = v.taint || arg(2).taint
	case ptx.OpAtom:
		// The destination is the old memory value: unknown provenance.
		v = unknownV(false)
	default:
		// Unmodeled op: unknown, but propagate taint from register and
		// special-register inputs so lint sees tid-derived predicates.
		taint := false
		for _, a := range in.Args {
			if a.Kind == ptx.OpndReg || a.Kind == ptx.OpndSreg {
				taint = taint || operandValue(st, a).taint
			}
		}
		v = unknownV(taint)
	}
	if in.Guard != nil {
		// Guarded definition: the old value may survive, and the selected
		// value depends on the predicate.
		old := unknownV(false)
		if o, ok := st[in.Dst.Reg]; ok {
			old = o
		}
		v = joinValue(old, v)
		if g, ok := st[in.Guard.Reg]; ok {
			v.taint = v.taint || g.taint
		}
	}
	return v, true
}

// Affine holds the per-instruction results of the affine index analysis.
type Affine struct {
	// addr maps a memory instruction index to the abstract value of its
	// effective address (base register value + static offset). Missing
	// entries mean unknown (e.g. unreachable code).
	addr map[int]value
	// guardTaint maps a guarded instruction index to whether its guard
	// predicate may be tid-derived.
	guardTaint map[int]bool
}

// GuardTainted reports whether instruction i is guarded by a predicate
// that may be derived from tid/laneid.
func (a *Affine) GuardTainted(i int) bool { return a.guardTaint[i] }

// AddrKnown reports whether the address of memory instruction i has an
// affine symbolic form.
func (a *Affine) AddrKnown(i int) bool {
	v, ok := a.addr[i]
	return ok && v.affine
}

// ---------------------------------------------------------------------------
// Warp-uniformity analysis.
//
// A register is *warp-uniform* at a program point when every populated lane
// of a warp provably holds the same value there. The simulator uses these
// facts to execute an instruction once per warp and broadcast the result
// (scalarization), so the analysis must be sound under divergence:
//
//   - A definition is uniform only if all of its inputs are uniform AND the
//     defining block is not under divergent control. Inside the influence
//     region of a varying branch only a subset of the warp executes, so even
//     a "uniform" right-hand side leaves inactive lanes holding stale
//     values that mix back in at reconvergence.
//   - A guarded definition additionally requires a uniform guard and a
//     uniform old value (lanes whose predicate is false keep the old value).
//   - Joins intersect: a register is uniform at a block entry only if it is
//     uniform on every reached predecessor. For a *uniform* branch this is
//     exact — the whole warp took the same path — and for a varying branch
//     the defs on either path were already demoted by the region rule.
//
// The influence region of a varying branch is every block reachable from
// the branch's successors without passing through its reconvergence block
// (the immediate post-dominator, matching the simulator's SIMT stack).
// Region marking and the dataflow solve are iterated to a joint fixed
// point: demoting registers can make more branch predicates varying, which
// can only grow the marked set, so the iteration terminates.
//
// Loads at a warp-uniform global/shared address are treated as uniform:
// the simulator executes a warp instruction atomically (no store from
// another warp can interleave between the lanes' loads), so all lanes
// observe one value. Local-space loads are lane-private and never uniform;
// atomics serialize lane RMWs and their destination (the pre-op value) is
// never uniform. This load rule is specific to the simulator's
// warp-synchronous execution; clients that need architecture-portable
// facts must not rely on it.

// uniState maps a register/predicate name to "warp-uniform here". Missing
// means varying.
type uniState map[string]bool

func cloneUni(a uniState) uniState {
	out := make(uniState, len(a))
	for r := range a {
		out[r] = true
	}
	return out
}

func equalUni(a, b uniState) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}

// uniformSreg classifies special registers: anything that varies across the
// lanes of one warp is non-uniform. %warpid and %ctaid are constant within
// a warp even though they vary across warps.
func uniformSreg(s ptx.Sreg) bool {
	switch s {
	case ptx.SregTidX, ptx.SregTidY, ptx.SregTidZ, ptx.SregLaneid:
		return false
	}
	return true
}

func uniformOperand(st uniState, o ptx.Operand) bool {
	switch o.Kind {
	case ptx.OpndImm, ptx.OpndFImm, ptx.OpndSym, ptx.OpndLabel:
		return true
	case ptx.OpndSreg:
		return uniformSreg(o.Sreg)
	case ptx.OpndReg:
		return st[o.Reg]
	case ptx.OpndMem:
		if o.BaseReg != "" {
			return st[o.BaseReg]
		}
		return true // symbol-based address: one location for the warp
	}
	return false
}

// defUniform reports whether the value an instruction assigns to its
// destination is warp-uniform, assuming converged control.
func defUniform(st uniState, in *ptx.Instr) bool {
	switch in.Op {
	case ptx.OpAtom, ptx.OpRed:
		// The destination is the pre-RMW memory value; lanes serialize, so
		// each observes a different intermediate.
		return false
	case ptx.OpLd:
		if in.Space == ptx.SpaceParam {
			return true
		}
		if in.Space == ptx.SpaceLocal {
			return false // lane-private backing store
		}
		a, ok := in.AddrOperand()
		return ok && uniformOperand(st, a)
	}
	for _, a := range in.Args {
		if !uniformOperand(st, a) {
			return false
		}
	}
	return true
}

// uniStep applies one instruction to a uniformity state. div marks the
// containing block as being under divergent control.
func uniStep(st uniState, in *ptx.Instr, div bool) {
	if in.Op == ptx.OpLd && in.Vec > 1 {
		// ld.vN defines dst plus the Vec-1 leading args: demote them all.
		if in.HasDst && in.Dst.Kind == ptx.OpndReg {
			delete(st, in.Dst.Reg)
		}
		for i := 0; i < in.Vec-1 && i < len(in.Args); i++ {
			if in.Args[i].Kind == ptx.OpndReg {
				delete(st, in.Args[i].Reg)
			}
		}
		return
	}
	if !in.HasDst || in.Dst.Kind != ptx.OpndReg {
		return
	}
	u := !div && defUniform(st, in)
	if in.Guard != nil {
		u = u && st[in.Guard.Reg] && st[in.Dst.Reg]
	}
	if u {
		st[in.Dst.Reg] = true
	} else {
		delete(st, in.Dst.Reg)
	}
}

func uniProblem(c *kernel.CFG, div []bool) Problem[uniState] {
	return Problem[uniState]{
		Entry: func() uniState { return uniState{} },
		Clone: cloneUni,
		Join: func(a, b uniState) uniState {
			out := make(uniState)
			for r := range a {
				if b[r] {
					out[r] = true
				}
			}
			return out
		},
		Transfer: func(b *kernel.Block, in uniState) uniState {
			st := cloneUni(in)
			for i := b.Start; i < b.End; i++ {
				uniStep(st, c.Instrs[i], div[b.Index])
			}
			return st
		},
		Equal: equalUni,
	}
}

// markInfluence marks every block reachable from the branch's successors
// without passing through its reconvergence block. Reports whether any
// block was newly marked.
func markInfluence(c *kernel.CFG, bi int, mark []bool) bool {
	stop := -1
	if r := c.ReconvergencePC(c.Blocks[bi].End - 1); r < len(c.Instrs) {
		stop = c.BlockOf[r]
	}
	changed := false
	seen := make([]bool, len(c.Blocks))
	var stack []int
	for _, s := range c.Blocks[bi].Succs {
		if s < len(c.Blocks) && s != stop {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if !mark[b] {
			mark[b] = true
			changed = true
		}
		for _, s := range c.Blocks[b].Succs {
			if s < len(c.Blocks) && s != stop && !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return changed
}

// Uniformity holds per-instruction warp-uniformity facts for one kernel.
type Uniformity struct {
	inputs    []bool // instruction index -> all source operands uniform
	divergent []bool // block index -> under divergent control
	c         *kernel.CFG
	res       *FlowResult[uniState]
}

// InputsUniform reports whether every source operand of instruction i is
// warp-uniform, i.e. the instruction computes the same result on every
// active lane and may be executed once per warp with a broadcast store.
func (u *Uniformity) InputsUniform(i int) bool {
	return i >= 0 && i < len(u.inputs) && u.inputs[i]
}

// Divergent reports whether instruction i sits under divergent control
// (inside the influence region of a varying branch).
func (u *Uniformity) Divergent(i int) bool {
	if i < 0 || i >= len(u.c.BlockOf) {
		return false
	}
	return u.divergent[u.c.BlockOf[i]]
}

// RegUniform reports whether register reg is warp-uniform immediately
// before instruction i executes.
func (u *Uniformity) RegUniform(i int, reg string) bool {
	if i < 0 || i >= len(u.c.BlockOf) {
		return false
	}
	bi := u.c.BlockOf[i]
	if !u.res.Reached[bi] {
		return false
	}
	st := cloneUni(u.res.In[bi])
	for j := u.c.Blocks[bi].Start; j < i; j++ {
		uniStep(st, u.c.Instrs[j], u.divergent[bi])
	}
	return st[reg]
}

// ComputeUniformity runs the warp-uniformity analysis on one kernel.
func ComputeUniformity(c *kernel.CFG) *Uniformity {
	div := make([]bool, len(c.Blocks))
	var res *FlowResult[uniState]
	for {
		res = SolveForward(c, uniProblem(c, div))
		changed := false
		for bi, b := range c.Blocks {
			if !res.Reached[bi] || b.End <= b.Start {
				continue
			}
			last := c.Instrs[b.End-1]
			if last.Op != ptx.OpBra || last.Guard == nil {
				continue
			}
			st := cloneUni(res.In[bi])
			for i := b.Start; i < b.End-1; i++ {
				uniStep(st, c.Instrs[i], div[bi])
			}
			if st[last.Guard.Reg] {
				continue // whole warp takes the same direction
			}
			if markInfluence(c, bi, div) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	u := &Uniformity{
		inputs:    make([]bool, len(c.Instrs)),
		divergent: div,
		c:         c,
		res:       res,
	}
	for bi, b := range c.Blocks {
		if !res.Reached[bi] {
			continue
		}
		st := cloneUni(res.In[bi])
		for i := b.Start; i < b.End; i++ {
			in := c.Instrs[i]
			all := true
			for _, a := range in.Args {
				if !uniformOperand(st, a) {
					all = false
					break
				}
			}
			u.inputs[i] = all
			uniStep(st, in, div[bi])
		}
	}
	return u
}

// computeAffine solves the affine problem and records per-instruction
// address values and guard taint.
func computeAffine(c *kernel.CFG) *Affine {
	res := SolveForward(c, Problem[regState]{
		Entry: func() regState { return regState{} },
		Clone: cloneRegState,
		Join:  joinRegState,
		Transfer: func(b *kernel.Block, in regState) regState {
			st := cloneRegState(in)
			for i := b.Start; i < b.End; i++ {
				if v, ok := evalInstr(st, c.Instrs[i]); ok {
					st[c.Instrs[i].Dst.Reg] = v
				}
			}
			return st
		},
		Equal: equalRegState,
	})
	out := &Affine{addr: make(map[int]value), guardTaint: make(map[int]bool)}
	for bi, b := range c.Blocks {
		if !res.Reached[bi] {
			continue
		}
		st := cloneRegState(res.In[bi])
		for i := b.Start; i < b.End; i++ {
			in := c.Instrs[i]
			if in.Guard != nil {
				if g, ok := st[in.Guard.Reg]; ok {
					out.guardTaint[i] = g.taint
				}
			}
			if a, ok := in.AddrOperand(); ok {
				switch {
				case a.BaseReg != "":
					base := unknownV(false)
					if v, ok := st[a.BaseReg]; ok {
						base = v
					}
					out.addr[i] = addV(base, constV(a.Off))
				case a.BaseSym != "":
					out.addr[i] = addV(termV(term{kind: termSym, name: a.BaseSym}, false), constV(a.Off))
				}
			}
			if v, ok := evalInstr(st, in); ok {
				st[in.Dst.Reg] = v
			}
		}
	}
	return out
}
