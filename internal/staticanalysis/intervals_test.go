package staticanalysis

import (
	"testing"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := kernel.Build(m.Kernels[0])
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return Analyze(c)
}

// findInstr returns the flat index of the first instruction with the
// given op in the analyzed kernel, or -1.
func findInstr(a *Analysis, op ptx.Op, nth int) int {
	for i, in := range a.CFG.Instrs {
		if in.Op == op {
			if nth == 0 {
				return i
			}
			nth--
		}
	}
	return -1
}

func TestIntervalsStraightLine(t *testing.T) {
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 p) {
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	st.shared.u32 [%r1], %r1;
	bar.sync 0;
	ld.shared.u32 %r2, [%r1];
	ret;
}`)
	iv := ComputeIntervals(a.CFG)
	if iv.Phases() != 2 {
		t.Fatalf("phases = %d, want 2", iv.Phases())
	}
	st := findInstr(a, ptx.OpSt, 0)
	ld := findInstr(a, ptx.OpLd, 0)
	if iv.SameInterval(st, ld) {
		t.Error("bar.sync between store and load should separate their intervals")
	}
	if !iv.SameInterval(st, st) || !iv.SameInterval(ld, ld) {
		t.Error("an instruction must share an interval with itself")
	}
}

// TestIntervalsBranches: a store in the then-branch and a load in the
// else-branch have no CFG path between them, but both are reachable
// barrier-free from the entry — they must land in the same interval.
func TestIntervalsBranches(t *testing.T) {
	a := analyzeSrc(t, header+`.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra ELSE;
	st.shared.u32 [s], %r1;
	bra DONE;
ELSE:
	ld.shared.u32 %r2, [s];
DONE:
	ret;
}`)
	iv := ComputeIntervals(a.CFG)
	st := findInstr(a, ptx.OpSt, 0)
	ld := findInstr(a, ptx.OpLd, 0)
	if !iv.SameInterval(st, ld) {
		t.Error("branch arms share the entry phase: same interval expected")
	}
}

// TestIntervalsLoop: a barrier inside a loop starts a new phase whose
// barrier-free region wraps around the back edge, so accesses before
// and after the bar within the loop body still share an interval.
func TestIntervalsLoop(t *testing.T) {
	a := analyzeSrc(t, header+`.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, 0;
LOOP:
	ld.shared.u32 %r2, [s];
	bar.sync 0;
	st.shared.u32 [s], %r2;
	add.u32 %r1, %r1, 1;
	setp.lt.u32 %p1, %r1, 8;
	@%p1 bra LOOP;
	ret;
}`)
	iv := ComputeIntervals(a.CFG)
	st := findInstr(a, ptx.OpSt, 0)
	ld := findInstr(a, ptx.OpLd, 0)
	if !iv.SameInterval(st, ld) {
		t.Error("the post-bar phase wraps the back edge to reach the load")
	}
}

func TestRaceCandidatesMissingBarrier(t *testing.T) {
	// Classic neighbor exchange without a barrier: write s[4*tid],
	// read s[4*tid+4]. The pair escapes slots, so it must survive as a
	// candidate; the same-slot self accesses must be pruned.
	a := analyzeSrc(t, header+`.visible .entry k() {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`)
	cands := RaceCandidates(a)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v, want exactly one (the cross-slot pair)", cands)
	}
	cd := cands[0]
	st := findInstr(a, ptx.OpSt, 0)
	ld := findInstr(a, ptx.OpLd, 0)
	if cd.A != st || cd.B != ld {
		t.Errorf("pair = (%d,%d), want (%d,%d)", cd.A, cd.B, st, ld)
	}
	if !cd.WriteA || cd.WriteB {
		t.Errorf("roles wrong: %+v", cd)
	}
}

func TestRaceCandidatesBarrierSeparates(t *testing.T) {
	// Same kernel with bar.sync between write and read: shared-space
	// candidates must vanish entirely.
	a := analyzeSrc(t, header+`.visible .entry k() {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	bar.sync 0;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`)
	if cands := RaceCandidates(a); len(cands) != 0 {
		t.Fatalf("candidates = %+v, want none after the barrier", cands)
	}
}

func TestRaceCandidatesGlobalIgnoresBarrier(t *testing.T) {
	// bar.sync is per-block: a global uniform write before the barrier
	// and a read after it still race across blocks. The candidate must
	// survive, down-ranked, with SameAddr proven.
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	bar.sync 0;
	ld.global.u32 %r2, [%rd1];
	ret;
}`)
	cands := RaceCandidates(a)
	var cross *Candidate
	for i := range cands {
		if cands[i].A != cands[i].B {
			cross = &cands[i]
		}
	}
	if cross == nil {
		t.Fatalf("candidates = %+v, want a cross-site global pair", cands)
	}
	if cross.SameIntv {
		t.Error("pair is barrier-separated; SameIntv should be false")
	}
	if !cross.SameAddr {
		t.Error("uniform addresses should be proven overlapping")
	}
}

func TestRaceCandidatesSelfWrite(t *testing.T) {
	// All threads store to one uniform global address: a self write-write
	// race, highest-ranked, with SameAddr proven.
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 out) {
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`)
	cands := RaceCandidates(a)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v, want the single self-race", cands)
	}
	cd := cands[0]
	if cd.A != cd.B || !cd.SameAddr || !cd.WriteA {
		t.Errorf("unexpected self candidate: %+v", cd)
	}
}

func TestRaceCandidatesPrunesDisjointParams(t *testing.T) {
	// Strided in-slot accesses through two distinct pointer params:
	// nothing may alias, no candidates.
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 xs, .param .u64 ys) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [xs];
	ld.param.u64 %rd2, [ys];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ntid.x;
	mad.lo.u32 %r3, %ctaid.x, %r2, %r1;
	mul.wide.u32 %rd3, %r3, 4;
	add.u64 %rd4, %rd1, %rd3;
	add.u64 %rd5, %rd2, %rd3;
	ld.global.u32 %r4, [%rd4];
	st.global.u32 [%rd5], %r4;
	ret;
}`)
	if cands := RaceCandidates(a); len(cands) != 0 {
		t.Fatalf("candidates = %+v, want none for disjoint strided params", cands)
	}
}

func TestRaceCandidatesAtomicPairsExcluded(t *testing.T) {
	// Two atomics on the same address are HB-ordered: no candidate. An
	// atomic against a plain write is one.
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	atom.global.add.u32 %r1, [%rd1], 1;
	red.global.add.u32 [%rd1], 1;
	ret;
}`)
	if cands := RaceCandidates(a); len(cands) != 0 {
		t.Fatalf("candidates = %+v, want none for atomic-atomic", cands)
	}
	a = analyzeSrc(t, header+`.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	atom.global.add.u32 %r1, [%rd1], 1;
	st.global.u32 [%rd1], 0;
	ret;
}`)
	cands := RaceCandidates(a)
	if len(cands) == 0 {
		t.Fatal("atomic vs plain write must be a candidate")
	}
	found := false
	for _, cd := range cands {
		if cd.A != cd.B && (cd.AtomicA || cd.AtomicB) {
			found = true
		}
	}
	if !found {
		t.Fatalf("candidates = %+v, want an atomic-plain pair", cands)
	}
}

func TestCandidateRankingPrefersDefiniteWrites(t *testing.T) {
	// A definite same-address write-write must outrank a may-alias
	// read-write on unknown addresses.
	a := analyzeSrc(t, header+`.visible .entry k(.param .u64 out, .param .u64 idx) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	st.global.u32 [%rd1], 1;
	ld.global.u64 %rd2, [%rd1+8];
	ld.global.u32 %r2, [%rd2];
	ret;
}`)
	cands := RaceCandidates(a)
	if len(cands) < 2 {
		t.Fatalf("candidates = %+v, want at least 2", cands)
	}
	top := cands[0]
	if !top.SameAddr || !top.WriteA || !top.WriteB {
		t.Errorf("top candidate should be the definite write-write self race, got %+v", top)
	}
	for _, cd := range cands[1:] {
		if cd.Score > top.Score {
			t.Errorf("ranking violated: %+v above %+v", cd, top)
		}
	}
}
