package staticanalysis

import (
	"fmt"
	"sort"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// Barrier-interval analysis: partition the instruction stream into
// synchronization intervals and derive ranked static race candidates.
//
// A *phase start* is the kernel entry or the point just after a
// bar.sync. Two instructions are in the same interval when both are
// reachable from some common phase start without crossing a barrier —
// i.e. some thread interleaving lets both execute with no bar.sync
// between them. This is the right notion for race candidates (unlike
// plain path reachability: a store in the then-branch and a load in the
// else-branch have no path between them but conflict across threads).
//
// bar.sync only orders threads *within one block*, so interval
// separation removes shared-space candidates but merely down-ranks
// global-space ones: two global accesses in different intervals still
// race across blocks. membar is not an interval boundary at all — a
// fence orders memory, it does not make threads wait — so fence-induced
// ordering shows up only through the acquire/release classification of
// the sites themselves (trace.Classify), which the ranking consumes.

// Intervals holds barrier-free reachability from every phase start.
type Intervals struct {
	c      *kernel.CFG
	starts []int
	reach  [][]uint64 // per phase start, bitset over instruction indices
}

// ComputeIntervals runs the phase-start reachability analysis.
func ComputeIntervals(c *kernel.CFG) *Intervals {
	iv := &Intervals{c: c}
	if len(c.Instrs) == 0 {
		return iv
	}
	iv.starts = append(iv.starts, 0)
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBar && i+1 < len(c.Instrs) {
			iv.starts = append(iv.starts, i+1)
		}
	}
	words := (len(c.Instrs) + 63) / 64
	for _, s := range iv.starts {
		bits := make([]uint64, words)
		iv.barrierFree(s, bits)
		iv.reach = append(iv.reach, bits)
	}
	return iv
}

// barrierFree marks every instruction reachable from position p without
// executing a bar.sync.
func (iv *Intervals) barrierFree(p int, bits []uint64) {
	c := iv.c
	stack := []int{p}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q >= len(c.Instrs) {
			continue
		}
		bi := c.BlockOf[q]
		end := c.Blocks[bi].End
		stopped := false
		for k := q; k < end; k++ {
			if bits[k/64]&(1<<uint(k%64)) != 0 {
				// Already walked from here; the suffix is covered.
				stopped = true
				break
			}
			bits[k/64] |= 1 << uint(k%64)
			if c.Instrs[k].Op == ptx.OpBar {
				stopped = true
				break
			}
		}
		if stopped {
			continue
		}
		for _, s := range c.Blocks[bi].Succs {
			if s < len(c.Blocks) {
				t := c.Blocks[s].Start
				if bits[t/64]&(1<<uint(t%64)) == 0 {
					stack = append(stack, t)
				}
			}
		}
	}
}

// Phases returns the number of phase starts (1 + reachable bar count).
func (iv *Intervals) Phases() int { return len(iv.starts) }

// SameInterval reports whether instructions i and j are both reachable
// barrier-free from a common phase start.
func (iv *Intervals) SameInterval(i, j int) bool {
	for _, bits := range iv.reach {
		if bits[i/64]&(1<<uint(i%64)) != 0 && bits[j/64]&(1<<uint(j%64)) != 0 {
			return true
		}
	}
	return false
}

// Candidate is one statically derived may-race: a pair of access sites
// that may touch overlapping memory from distinct threads with no
// ordering between them. A == B is the self-race of one instruction
// executed by many threads.
type Candidate struct {
	Kernel string `json:"kernel"`
	A      int    `json:"a"` // flat instruction index, A <= B
	B      int    `json:"b"`
	LineA  int    `json:"line_a"`
	LineB  int    `json:"line_b"`

	Space    ptx.Space `json:"-"`
	SpaceStr string    `json:"space"`
	WriteA   bool      `json:"write_a"`
	WriteB   bool      `json:"write_b"`
	AtomicA  bool      `json:"atomic_a"`
	AtomicB  bool      `json:"atomic_b"`
	SameAddr bool      `json:"same_addr"` // provably overlapping for distinct threads
	SameIntv bool      `json:"same_interval"`

	Score  int    `json:"score"`
	Reason string `json:"reason"`

	// Dynamic is set by the repair driver when a detector run reported a
	// race on exactly this line pair; it is never set statically.
	Dynamic bool `json:"dynamic"`
}

// Describe renders a one-line human description of the candidate.
func (cd Candidate) Describe() string {
	role := func(w, at bool) string {
		switch {
		case at:
			return "atomic"
		case w:
			return "write"
		default:
			return "read"
		}
	}
	if cd.A == cd.B {
		return fmt.Sprintf("%s %s at line %d vs itself across threads (%s)",
			cd.SpaceStr, role(cd.WriteA, cd.AtomicA), cd.LineA, cd.Reason)
	}
	return fmt.Sprintf("%s %s at line %d vs %s at line %d (%s)",
		cd.SpaceStr, role(cd.WriteA, cd.AtomicA), cd.LineA,
		role(cd.WriteB, cd.AtomicB), cd.LineB, cd.Reason)
}

// aliasVerdict is the pairwise may-overlap result from the affine layer.
type aliasVerdict uint8

const (
	aliasMay  aliasVerdict = iota // cannot decide: keep the candidate
	aliasNo                       // provably disjoint across all thread pairs
	aliasSame                     // provably overlapping for distinct threads
)

// RaceCandidates derives ranked static race candidates for one analyzed
// kernel. The list is sorted by descending score; everything the affine
// layer proves thread-disjoint is pruned.
func RaceCandidates(a *Analysis) []Candidate {
	c := a.CFG
	iv := ComputeIntervals(c)

	type site struct {
		idx    int
		kind   trace.OpKind
		write  bool
		atomic bool
	}
	var sites []site
	idxs := make([]int, 0, len(a.Class))
	for i := range a.Class {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		k := a.Class[i]
		if !k.IsMemory() {
			continue
		}
		in := c.Instrs[i]
		if in.Space != ptx.SpaceGlobal && in.Space != ptx.SpaceShared {
			continue
		}
		sites = append(sites, site{
			idx:    i,
			kind:   k,
			write:  k.Writes(),
			atomic: k == trace.OpAtom || k.IsSync(),
		})
	}

	var out []Candidate
	for x := 0; x < len(sites); x++ {
		for y := x; y < len(sites); y++ {
			sa, sb := sites[x], sites[y]
			ia, ib := c.Instrs[sa.idx], c.Instrs[sb.idx]
			if ia.Space != ib.Space {
				continue
			}
			if !sa.write && !sb.write {
				continue // read-read never races
			}
			if sa.atomic && sb.atomic {
				continue // RMW/sync pairs are ordered by the HB model
			}
			self := sa.idx == sb.idx
			if self && !sa.write {
				continue
			}
			sameIntv := iv.SameInterval(sa.idx, sb.idx)
			if ia.Space == ptx.SpaceShared && !sameIntv {
				continue // bar.sync fully orders shared accesses of a block
			}
			verdict, why := pairAlias(a, sa.idx, sb.idx)
			if verdict == aliasNo {
				continue
			}
			cd := Candidate{
				Kernel: c.Kernel.Name,
				A:      sa.idx, B: sb.idx,
				LineA: ia.Line, LineB: ib.Line,
				Space: ia.Space, SpaceStr: ia.Space.String(),
				WriteA: sa.write, WriteB: sb.write,
				AtomicA: sa.atomic, AtomicB: sb.atomic,
				SameAddr: verdict == aliasSame,
				SameIntv: sameIntv,
			}
			score := 50
			switch {
			case sa.write && sb.write && !sa.atomic && !sb.atomic:
				score += 40
			case sa.atomic || sb.atomic:
				score += 20
			default:
				score += 30
			}
			if cd.SameAddr {
				score += 50
			}
			if cd.Space == ptx.SpaceShared {
				score += 10
			}
			if cd.Space == ptx.SpaceGlobal && !sameIntv {
				score -= 30 // barrier separates within a block; only inter-block
			}
			if sa.kind.IsSync() || sb.kind.IsSync() {
				score -= 40 // fence-adjacent: already creates HB edges
			}
			cd.Score = score
			cd.Reason = candidateReason(cd, why)
			out = append(out, cd)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func candidateReason(cd Candidate, alias string) string {
	var kind string
	switch {
	case cd.WriteA && cd.WriteB && !cd.AtomicA && !cd.AtomicB:
		kind = "write-write"
	case cd.AtomicA || cd.AtomicB:
		kind = "atomic-plain"
	default:
		kind = "read-write"
	}
	intv := "same interval"
	if !cd.SameIntv {
		intv = "barrier-separated (races only across blocks)"
	}
	return kind + ", " + intv + ", " + alias
}

// pairAlias decides whether sites i and j may touch overlapping bytes
// from *distinct* threads. It is pairwise — a third site with an
// unknown address does not blind it, unlike the pruner's space-level
// blockade — but it reuses the pruner's non-aliasing assumptions:
// distinct pointer params/symbols don't alias, no 32-bit index overflow.
func pairAlias(a *Analysis, i, j int) (aliasVerdict, string) {
	sa, oka := siteDecomp(a, i)
	sb, okb := siteDecomp(a, j)
	if !oka || !okb {
		return aliasMay, "unknown address"
	}
	if sa.sig != sb.sig {
		if len(sa.syms) > 0 && len(sb.syms) > 0 && !symsIntersect(sa.syms, sb.syms) {
			return aliasNo, ""
		}
		return aliasMay, "distinct bases may alias"
	}
	// Same uniform base. Slot math below is in bytes relative to it.
	ba, bb := int64(sa.bytes), int64(sb.bytes)
	switch {
	case sa.form == formUniform && sb.form == formUniform:
		if sa.delta < sb.delta+bb && sb.delta < sa.delta+ba {
			return aliasSame, "all threads touch the same address"
		}
		return aliasNo, ""
	case sa.form == formStrided && sb.form == formStrided && sa.stride == sb.stride:
		s := sa.stride
		inSlot := func(si siteInfo, b int64) bool {
			return si.delta >= 0 && si.delta+b <= s
		}
		if inSlot(sa, ba) && inSlot(sb, bb) {
			return aliasNo, "" // each thread stays in its own slot
		}
		return aliasMay, "strided accesses escape their slots"
	case sa.form == formUniform && sb.form == formStrided:
		return uniformVsStrided(sa, sb, ba, bb)
	case sa.form == formStrided && sb.form == formUniform:
		return uniformVsStrided(sb, sa, bb, ba)
	}
	return aliasMay, "address shape not provable"
}

// uniformVsStrided decides overlap between a uniform site u (bytes bu)
// and a strided site s (bytes bs): some thread t >= 0 of the strided
// site may cover the uniform address.
func uniformVsStrided(u, s siteInfo, bu, bs int64) (aliasVerdict, string) {
	if s.stride <= 0 {
		return aliasMay, "address shape not provable"
	}
	// Overlap iff exists t >= 0 with t*stride+delta < u.delta+bu and
	// u.delta < t*stride+delta+bs. Probe the two integer t around the
	// crossing point; threads beyond the launch bound over-approximate.
	base := (u.delta - s.delta) / s.stride
	for _, t := range []int64{base - 1, base, base + 1} {
		if t < 0 {
			continue
		}
		lo := t*s.stride + s.delta
		if lo < u.delta+bu && u.delta < lo+bs {
			return aliasMay, "a thread's slot covers the uniform address"
		}
	}
	return aliasNo, ""
}

// siteDecomp decomposes site i's address with the pruner's affine
// decomposition for its space.
func siteDecomp(a *Analysis, i int) (siteInfo, bool) {
	v, ok := a.Affine.addr[i]
	if !ok || !v.affine {
		return siteInfo{}, false
	}
	in := a.CFG.Instrs[i]
	var s siteInfo
	if in.Space == ptx.SpaceGlobal {
		s, ok = globalSite(v)
	} else {
		s, ok = sharedSite(v)
	}
	if !ok || len(s.syms) == 0 {
		return siteInfo{}, false
	}
	if s.form == formOther {
		return siteInfo{}, false
	}
	s.idx = i
	s.bytes = in.AccessBytes()
	return s, true
}

func symsIntersect(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
