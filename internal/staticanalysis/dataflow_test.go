package staticanalysis

import (
	"testing"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

func buildCFG(t *testing.T, src string) *kernel.CFG {
	t.Helper()
	k, err := ptx.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := kernel.Build(k)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

// intersection-of-reaching-constants toy problem: tracks which constant
// each register must hold on every path.
type constState map[string]int64

func constProblem(c *kernel.CFG) Problem[constState] {
	return Problem[constState]{
		Entry: func() constState { return constState{} },
		Clone: func(a constState) constState {
			out := make(constState, len(a))
			for k, v := range a {
				out[k] = v
			}
			return out
		},
		Join: func(a, b constState) constState {
			out := make(constState)
			for k, v := range a {
				if bv, ok := b[k]; ok && bv == v {
					out[k] = v
				}
			}
			return out
		},
		Transfer: func(b *kernel.Block, in constState) constState {
			out := make(constState, len(in))
			for k, v := range in {
				out[k] = v
			}
			for i := b.Start; i < b.End; i++ {
				ins := c.Instrs[i]
				if !ins.HasDst || ins.Dst.Kind != ptx.OpndReg {
					continue
				}
				if ins.Op == ptx.OpMov && len(ins.Args) == 1 && ins.Args[0].Kind == ptx.OpndImm {
					out[ins.Dst.Reg] = ins.Args[0].Imm
				} else {
					delete(out, ins.Dst.Reg)
				}
			}
			return out
		},
		Equal: func(a, b constState) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if bv, ok := b[k]; !ok || bv != v {
					return false
				}
			}
			return true
		},
	}
}

// TestSolverDiamond: a constant set identically on both arms survives the
// join; one set differently does not.
func TestSolverDiamond(t *testing.T) {
	c := buildCFG(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra THEN;
	mov.u32 %r2, 7;
	mov.u32 %r3, 1;
	bra.uni JOIN;
THEN:
	mov.u32 %r2, 7;
	mov.u32 %r3, 2;
JOIN:
	add.u32 %r4, %r2, %r3;
	ret;
}`)
	res := SolveForward(c, constProblem(c))
	// JOIN is the block containing the final add.
	join := c.BlockOf[len(c.Instrs)-2]
	if !res.Reached[join] {
		t.Fatal("join block not reached")
	}
	if v, ok := res.In[join]["%r2"]; !ok || v != 7 {
		t.Errorf("r2 at join = %v,%v; want 7 (set identically on both arms)", v, ok)
	}
	if _, ok := res.In[join]["%r3"]; ok {
		t.Error("r3 must not survive the join: arms disagree")
	}
}

// TestSolverLoop: a fact generated before a loop whose body kills it must
// not hold at loop entry (the back edge brings the killed state).
func TestSolverLoop(t *testing.T) {
	c := buildCFG(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, 5;
	mov.u32 %r2, 0;
LOOP:
	add.u32 %r1, %r1, 1;
	add.u32 %r2, %r2, 1;
	setp.lt.u32 %p1, %r2, 10;
	@%p1 bra LOOP;
	ret;
}`)
	res := SolveForward(c, constProblem(c))
	header := -1
	for i, b := range c.Blocks {
		if len(b.Preds) == 2 { // preheader + back edge
			header = i
		}
	}
	if header < 0 {
		t.Fatal("no loop header found")
	}
	if _, ok := res.In[header]["%r1"]; ok {
		t.Error("r1=5 must not reach the loop header: the body redefines it")
	}
}

// TestSolverIrreducible: the solver must terminate and produce sound
// facts on an irreducible region (two blocks branching into each other).
func TestSolverIrreducible(t *testing.T) {
	c := buildCFG(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	mov.u32 %r1, 9;
	mov.u32 %r5, %tid.x;
	setp.eq.u32 %p1, %r5, 0;
	@%p1 bra B;
A:
	mov.u32 %r2, 1;
	setp.lt.u32 %p2, %r2, 4;
	@%p2 bra B;
	ret;
B:
	mov.u32 %r3, 2;
	setp.lt.u32 %p3, %r3, 8;
	@%p3 bra A;
	ret;
}`)
	res := SolveForward(c, constProblem(c))
	for i := range c.Blocks {
		if !res.Reached[i] {
			t.Errorf("block %d not reached", i)
			continue
		}
		// r1 is set once in the entry and never killed: it must hold
		// everywhere, including throughout the irreducible region.
		if v, ok := res.In[i]["%r1"]; i != 0 && (!ok || v != 9) {
			t.Errorf("block %d: r1 = %v,%v; want 9", i, v, ok)
		}
	}
}

// TestSolverUnreachable: dead blocks stay Reached == false.
func TestSolverUnreachable(t *testing.T) {
	c := buildCFG(t, `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, 1;
	bra.uni DONE;
	mov.u32 %r2, 2;
DONE:
	ret;
}`)
	res := SolveForward(c, constProblem(c))
	dead := c.UnreachableBlocks()
	if len(dead) != 1 {
		t.Fatalf("unreachable = %v, want one block", dead)
	}
	if res.Reached[dead[0]] {
		t.Error("dead block must not be reached by the solver")
	}
}

// TestReachingDefs: guarded defs accumulate, unguarded defs replace.
func TestReachingDefs(t *testing.T) {
	c := buildCFG(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	mov.u32 %r1, 1;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 mov.u32 %r1, 2;
	add.u32 %r2, %r1, 1;
	ret;
}`)
	defs := ReachingDefs(c)
	// Find the add: its %r1 uses must see both the mov (idx 0) and the
	// guarded mov (idx 2).
	addIdx := -1
	for i, in := range c.Instrs {
		if in.Op == ptx.OpAdd {
			addIdx = i
		}
	}
	got := DefsAt(c, defs, addIdx, "%r1")
	if len(got) != 2 {
		t.Fatalf("defs of r1 at add = %v, want 2 entries", got)
	}
}
