package staticanalysis

import (
	"strings"
	"testing"

	"barracuda/internal/ptx"
)

func proposeFor(t *testing.T, src string) (*Analysis, []Candidate, []ProposedPatch) {
	t.Helper()
	a := analyzeSrc(t, src)
	cands := RaceCandidates(a)
	if len(cands) == 0 {
		t.Fatal("no candidates to repair")
	}
	return a, cands, ProposePatches(a, cands[0], 4)
}

func patchKinds(ps []ProposedPatch) []PatchKind {
	var out []PatchKind
	for _, p := range ps {
		out = append(out, p.Kind)
	}
	return out
}

func TestProposeBarrierStraightLine(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`
	a, cands, patches := proposeFor(t, src)
	var barrier *ProposedPatch
	for i := range patches {
		if patches[i].Kind == PatchBarrier {
			barrier = &patches[i]
		}
	}
	if barrier == nil {
		t.Fatalf("kinds = %v, want an insert-barrier proposal", patchKinds(patches))
	}
	if len(barrier.Edits) != 1 || barrier.Edits[0].At != cands[0].B {
		t.Fatalf("barrier edit = %+v, want insertion before instruction %d", barrier.Edits, cands[0].B)
	}
	// Applying the edit must kill the candidate on re-analysis.
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := ptx.ApplyEdits(m, barrier.Edits)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	a2 := analyzeSrc(t, ptx.Print(patched))
	if after := RaceCandidates(a2); len(after) != 0 {
		t.Fatalf("candidates after barrier = %+v, want none", after)
	}
	_ = a
}

// TestProposeBarrierHoistsOutOfDivergence: the later access sits under a
// tid-guard, so the naive insertion point would itself diverge; the
// proposal must climb to the dominating block.
func TestProposeBarrierHoistsOutOfDivergence(t *testing.T) {
	src := header + `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	.shared .align 4 .b8 s[256];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	mov.u64 %rd1, s;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra DONE;
	ld.shared.u32 %r3, [%rd1+4];
DONE:
	ret;
}`
	a, cands, patches := proposeFor(t, src)
	var barrier *ProposedPatch
	for i := range patches {
		if patches[i].Kind == PatchBarrier {
			barrier = &patches[i]
		}
	}
	if barrier == nil {
		t.Fatalf("kinds = %v, want an insert-barrier proposal", patchKinds(patches))
	}
	at := barrier.Edits[0].At
	// The insertion point must not be inside the divergent region: it
	// must precede the guarded branch.
	div := divergentBlocks(a)
	if at < len(a.CFG.Instrs) && div[a.CFG.BlockOf[at]] {
		t.Fatalf("barrier inserted at %d inside a divergent region", at)
	}
	if a.CFG.Instrs[at].Op != ptx.OpBra {
		t.Fatalf("expected insertion before the conditional bra, got %s at %d",
			a.CFG.Instrs[at].Op, at)
	}
	// The patched module must lint clean of barrier divergence.
	m, _ := ptx.Parse(src)
	patched, err := ptx.ApplyEdits(m, barrier.Edits)
	if err != nil {
		t.Fatal(err)
	}
	diags := lintSrc(t, ptx.Print(patched))
	if n := len(byCode(diags, CodeBarrierDivergence)); n != 0 {
		t.Fatalf("patched kernel has %d barrier-divergence diagnostics", n)
	}
	_ = cands
}

func TestProposeBarrierDeclinesSelfRace(t *testing.T) {
	// All threads write one uniform address: a barrier cannot order an
	// instruction against itself, and there is no RMW triple or
	// handshake — the synthesizer must produce nothing.
	src := header + `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`
	_, _, patches := proposeFor(t, src)
	if len(patches) != 0 {
		t.Fatalf("kinds = %v, want no proposals for the algorithmic race", patchKinds(patches))
	}
}

func TestProposeAtomicize(t *testing.T) {
	src := header + `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`
	_, _, patches := proposeFor(t, src)
	if len(patches) == 0 || patches[0].Kind != PatchAtomicize {
		t.Fatalf("kinds = %v, want atomicize first", patchKinds(patches))
	}
	e := patches[0].Edits[0]
	if e.Remove != 3 || len(e.Ins) != 1 {
		t.Fatalf("edit = %+v, want replace-3-with-1", e)
	}
	if got := ptx.FormatInstr(e.Ins[0]); got != "red.global.add.u32 [%rd1], 1;" {
		t.Fatalf("replacement = %q", got)
	}
	// After the rewrite no plain accesses remain: zero candidates.
	m, _ := ptx.Parse(src)
	patched, err := ptx.ApplyEdits(m, patches[0].Edits)
	if err != nil {
		t.Fatal(err)
	}
	a2 := analyzeSrc(t, ptx.Print(patched))
	if after := RaceCandidates(a2); len(after) != 0 {
		t.Fatalf("candidates after atomicize = %+v, want none", after)
	}
}

func TestProposeAtomicizeDeclinesLiveIntermediate(t *testing.T) {
	// The loaded value is also stored elsewhere: the rewrite would
	// change semantics, so the template must not fire.
	src := header + `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	st.global.u32 [%rd1+8], %r2;
	ret;
}`
	_, _, patches := proposeFor(t, src)
	for _, p := range patches {
		if p.Kind == PatchAtomicize {
			t.Fatalf("atomicize proposed despite live intermediate: %+v", p)
		}
	}
}

func TestProposeHandshakeFences(t *testing.T) {
	// Message passing with no fences: writer stores data then flag,
	// reader spins on the flag then loads data. The fence proposal must
	// patch both sides in one patch.
	src := header + `.visible .entry mp(.param .u64 data, .param .u64 flag) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [data];
	ld.param.u64 %rd2, [flag];
	mov.u32 %r1, %ctaid.x;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra READER;
	st.global.u32 [%rd1], 42;
	st.global.u32 [%rd2], 1;
	bra DONE;
READER:
WAIT:
	ld.global.u32 %r2, [%rd2];
	setp.eq.u32 %p1, %r2, 0;
	@%p1 bra WAIT;
	ld.global.u32 %r3, [%rd1];
DONE:
	ret;
}`
	a, _, _ := proposeFor(t, src)
	cands := RaceCandidates(a)
	// Find the data-race candidate (on the data param, not the flag).
	var target Candidate
	found := false
	for _, cd := range cands {
		ia := a.CFG.Instrs[cd.A]
		if ia.Op == ptx.OpSt && cd.A != cd.B {
			target = cd
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no cross-site store candidate in %+v", cands)
	}
	patches := ProposePatches(a, target, 4)
	var fence *ProposedPatch
	for i := range patches {
		if patches[i].Kind == PatchFence {
			fence = &patches[i]
		}
	}
	if fence == nil {
		t.Fatalf("kinds = %v, want an insert-fence proposal", patchKinds(patches))
	}
	// One membar after the spin load, one before the flag store. The
	// data store shares no symbol with the flag and must not be patched.
	if len(fence.Edits) != 2 {
		t.Fatalf("fence edits = %+v, want exactly 2", fence.Edits)
	}
	m, _ := ptx.Parse(src)
	patched, err := ptx.ApplyEdits(m, fence.Edits)
	if err != nil {
		t.Fatal(err)
	}
	text := ptx.Print(patched)
	if !strings.Contains(text, "st.global.u32 [%rd1], 42;\n\tmembar.gl;\n\tst.global.u32 [%rd2], 1;") {
		t.Fatalf("release fence misplaced:\n%s", text)
	}
	if !strings.Contains(text, "ld.global.u32 %r2, [%rd2];\n\tmembar.gl;\n\tsetp.eq.u32") {
		t.Fatalf("acquire fence misplaced:\n%s", text)
	}
}

func TestProposeLockFences(t *testing.T) {
	src := header + `.visible .entry lock(.param .u64 lk, .param .u64 data) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [lk];
	ld.param.u64 %rd2, [data];
SPIN:
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ld.global.u32 %r2, [%rd2];
	add.u32 %r2, %r2, 1;
	st.global.u32 [%rd2], %r2;
	st.global.u32 [%rd1], 0;
	ret;
}`
	a := analyzeSrc(t, src)
	cands := RaceCandidates(a)
	if len(cands) == 0 {
		t.Fatal("expected candidates on the unfenced lock kernel")
	}
	patches := ProposePatches(a, cands[0], 6)
	var lockFence *ProposedPatch
	for i := range patches {
		if patches[i].Kind == PatchFence && strings.Contains(patches[i].Note, "lock protocol") {
			lockFence = &patches[i]
		}
	}
	if lockFence == nil {
		t.Fatalf("kinds = %v, want a lock-protocol fence proposal", patchKinds(patches))
	}
	m, _ := ptx.Parse(src)
	patched, err := ptx.ApplyEdits(m, lockFence.Edits)
	if err != nil {
		t.Fatal(err)
	}
	text := ptx.Print(patched)
	if !strings.Contains(text, "atom.global.cas.b32 %r1, [%rd1], 0, 1;\n\tmembar.gl;") {
		t.Fatalf("acquire fence missing after cas:\n%s", text)
	}
	if !strings.Contains(text, "membar.gl;\n\tst.global.u32 [%rd1], 0;") {
		t.Fatalf("release fence missing before unlock:\n%s", text)
	}
	// The patched lock kernel must lint clean of missing-fence.
	if n := len(byCode(lintSrc(t, text), CodeMissingFence)); n != 0 {
		t.Fatalf("patched lock kernel still has %d missing-fence diagnostics", n)
	}
}
