package staticanalysis

import (
	"fmt"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// Patch synthesis: for one race candidate, propose concrete PTX edits
// that could eliminate it. Three templates, in decreasing precision:
//
//   - atomicize: a ld/arith/st read-modify-write on one address becomes
//     a single red.{space}.{op} instruction;
//   - barrier: insert bar.sync at a divergence-safe point that
//     dominates the later access (only meaningful for shared memory,
//     or global memory within one block);
//   - fence: complete a flag handshake or lock protocol by inserting
//     the membar that acquire/release inference needs next to the
//     synchronizing access.
//
// Every proposal is *speculative*: the synthesizer aims for plausible,
// not provably sufficient. The verification loop (package detector)
// re-runs full dynamic detection on each patched module and is the only
// judge of whether a patch is accepted. A proposal that would deadlock,
// diverge at the new barrier, or leave the race in place is rejected
// there, which keeps this layer free to be aggressive.

// PatchKind labels a repair template.
type PatchKind string

// Repair templates.
const (
	PatchBarrier   PatchKind = "insert-barrier"
	PatchFence     PatchKind = "insert-fence"
	PatchAtomicize PatchKind = "atomicize"
)

// ProposedPatch is one synthesized repair for a candidate race.
type ProposedPatch struct {
	Kind   PatchKind
	Kernel string
	Note   string
	Edits  []ptx.Edit
}

// ProposePatches synthesizes up to max patches for the candidate,
// ordered most-precise first.
func ProposePatches(a *Analysis, cand Candidate, max int) []ProposedPatch {
	var out []ProposedPatch
	if p, ok := proposeAtomicize(a, cand); ok {
		out = append(out, p)
	}
	if p, ok := proposeBarrier(a, cand); ok {
		out = append(out, p)
	}
	out = append(out, proposeFences(a, cand)...)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// --- barrier insertion ----------------------------------------------------

// proposeBarrier inserts a bar.sync immediately before the later access
// of the pair, hoisted out of any divergent influence region so the new
// barrier cannot itself cause barrier divergence. The hoist climbs the
// dominator tree; when the landing block ends in a conditional branch
// the barrier goes in front of it.
func proposeBarrier(a *Analysis, cand Candidate) (ProposedPatch, bool) {
	if cand.A == cand.B {
		return ProposedPatch{}, false // a barrier cannot order a site against itself
	}
	if cand.Space != ptx.SpaceShared {
		// bar.sync is per-block: with more than one block in flight a
		// global-space pair still races across blocks, so a barrier can
		// never be certified for it. Shared memory is per-block by
		// construction, where the barrier argument is sound.
		return ProposedPatch{}, false
	}
	c := a.CFG
	div := divergentBlocks(a)
	pos := cand.B
	bi := c.BlockOf[pos]
	for div[bi] {
		d := c.Dom[bi]
		if d < 0 || d == bi {
			return ProposedPatch{}, false // entry (or unreachable): nowhere safe
		}
		bi = d
		blk := c.Blocks[bi]
		pos = blk.End
		if blk.End > blk.Start && c.Instrs[blk.End-1].Op == ptx.OpBra {
			pos = blk.End - 1
		}
	}
	line := 0
	if pos < len(c.Instrs) {
		line = c.Instrs[pos].Line
	}
	return ProposedPatch{
		Kind:   PatchBarrier,
		Kernel: cand.Kernel,
		Note: fmt.Sprintf("insert bar.sync before line %d, separating the accesses at lines %d and %d",
			line, cand.LineA, cand.LineB),
		Edits: []ptx.Edit{{Kernel: cand.Kernel, At: pos, Ins: []*ptx.Instr{ptx.NewBarSync(line)}}},
	}, true
}

// divergentBlocks marks every block inside the influence region of a
// tid-dependent conditional branch (same region the barrier-divergence
// lint walks): a barrier inserted there would not be reached by all
// threads of the block.
func divergentBlocks(a *Analysis) []bool {
	c := a.CFG
	div := make([]bool, len(c.Blocks))
	for i, in := range c.Instrs {
		if in.Op != ptx.OpBra || in.Guard == nil || !a.Affine.GuardTainted(i) {
			continue
		}
		markInfluence(c, c.BlockOf[i], div)
	}
	return div
}

// --- fence insertion ------------------------------------------------------

// proposeFences synthesizes membar insertions that complete the two
// synchronization idioms the acquire/release inference recognizes:
//
//   - a flag handshake: a spin-wait load needs a trailing fence
//     (acquire), and the matching flag store needs a leading fence
//     (release);
//   - a cas/exch lock: the acquiring atomic needs a trailing fence and
//     the releasing store-of-zero a leading fence.
//
// Both sides of an idiom are patched together — half a handshake does
// not create the happens-before edge and would fail verification.
func proposeFences(a *Analysis, cand Candidate) []ProposedPatch {
	var out []ProposedPatch
	level := "cta"
	if cand.Space == ptx.SpaceGlobal {
		level = "gl"
	}
	if p, ok := proposeHandshakeFences(a, cand, level); ok {
		out = append(out, p)
	}
	if p, ok := proposeLockFences(a, cand, level); ok {
		out = append(out, p)
	}
	return out
}

// proposeHandshakeFences finds spin-wait loads (a load feeding a setp
// that guards a backward branch) and plain stores to the same flag
// location, then inserts the missing fences on both sides.
func proposeHandshakeFences(a *Analysis, cand Candidate, level string) (ProposedPatch, bool) {
	c := a.CFG
	spins := spinLoads(a)
	if len(spins) == 0 {
		return ProposedPatch{}, false
	}
	var edits []ptx.Edit
	var notes []string
	patched := map[int]bool{}
	for _, sp := range spins {
		flagSyms := addrSyms(a, sp)
		if len(flagSyms) == 0 {
			continue
		}
		// Acquire side: fence directly after the spin load, unless one is
		// already adjacent (the load would classify as an acquire).
		if !a.Class[sp].IsAcquire() && !patched[sp] {
			patched[sp] = true
			edits = append(edits, ptx.Edit{
				Kernel: cand.Kernel, At: sp, After: true,
				Ins: []*ptx.Instr{ptx.NewMembar(level, c.Instrs[sp].Line)},
			})
			notes = append(notes, fmt.Sprintf("membar.%s after the spin-wait load at line %d", level, c.Instrs[sp].Line))
		}
		// Release side: fence before every plain store to the flag.
		for i, k := range a.Class {
			if k != trace.OpWrite || c.Instrs[i].Op != ptx.OpSt || patched[i] {
				continue
			}
			if !symsIntersect(addrSyms(a, i), flagSyms) {
				continue
			}
			patched[i] = true
			edits = append(edits, ptx.Edit{
				Kernel: cand.Kernel, At: i,
				Ins: []*ptx.Instr{ptx.NewMembar(level, c.Instrs[i].Line)},
			})
			notes = append(notes, fmt.Sprintf("membar.%s before the flag store at line %d", level, c.Instrs[i].Line))
		}
	}
	if len(edits) == 0 {
		return ProposedPatch{}, false
	}
	return ProposedPatch{
		Kind:   PatchFence,
		Kernel: cand.Kernel,
		Note:   "complete the flag handshake: " + joinNotes(notes),
		Edits:  edits,
	}, true
}

// proposeLockFences completes a cas/exch lock protocol: membar after
// the acquiring atomic, membar before the store-of-zero release. The
// site discovery mirrors the missing-fence lint exactly.
func proposeLockFences(a *Analysis, cand Candidate, level string) (ProposedPatch, bool) {
	c := a.CFG
	var edits []ptx.Edit
	var notes []string
	lockBase := map[string]bool{}
	for i, in := range c.Instrs {
		if in.Op == ptx.OpAtom && (in.Atom == ptx.AtomCas || in.Atom == ptx.AtomExch) {
			if adr, ok := in.AddrOperand(); ok && adr.BaseReg != "" {
				lockBase[adr.BaseReg] = true
			}
			// Acquire side: the atomic must classify as an acquire.
			if a.Class[i] == trace.OpAtom && in.Atom == ptx.AtomCas {
				edits = append(edits, ptx.Edit{
					Kernel: cand.Kernel, At: i, After: true,
					Ins: []*ptx.Instr{ptx.NewMembar(level, in.Line)},
				})
				notes = append(notes, fmt.Sprintf("membar.%s after the lock acquire at line %d", level, in.Line))
			}
		}
	}
	for i, in := range c.Instrs {
		if in.Op != ptx.OpSt || a.Class[i] != trace.OpWrite || in.Guard != nil {
			continue
		}
		adr, ok := in.AddrOperand()
		if !ok || adr.BaseReg == "" || !lockBase[adr.BaseReg] {
			continue
		}
		if len(in.Args) > 1 && in.Args[1].Kind == ptx.OpndImm && in.Args[1].Imm == 0 {
			edits = append(edits, ptx.Edit{
				Kernel: cand.Kernel, At: i,
				Ins: []*ptx.Instr{ptx.NewMembar(level, in.Line)},
			})
			notes = append(notes, fmt.Sprintf("membar.%s before the lock release at line %d", level, in.Line))
		}
	}
	if len(edits) == 0 {
		return ProposedPatch{}, false
	}
	return ProposedPatch{
		Kind:   PatchFence,
		Kernel: cand.Kernel,
		Note:   "complete the lock protocol: " + joinNotes(notes),
		Edits:  edits,
	}, true
}

// spinLoads returns the instruction indices of plain loads that feed a
// setp guarding a backward branch — the wait side of a flag handshake.
func spinLoads(a *Analysis) []int {
	c := a.CFG
	var out []int
	seen := map[int]bool{}
	var defs *FlowResult[DefSet]
	for i, in := range c.Instrs {
		if in.Op != ptx.OpBra || in.Guard == nil {
			continue
		}
		t, ok := c.LabelAt[in.Args[0].Sym]
		if !ok || t > i {
			continue
		}
		if defs == nil {
			defs = ReachingDefs(c)
		}
		for _, sp := range DefsAt(c, defs, i, in.Guard.Reg) {
			if c.Instrs[sp].Op != ptx.OpSetp {
				continue
			}
			for _, arg := range c.Instrs[sp].Args {
				if arg.Kind != ptx.OpndReg {
					continue
				}
				for _, d := range DefsAt(c, defs, sp, arg.Reg) {
					din := c.Instrs[d]
					if din.Op == ptx.OpLd && din.MemoryAccess() && d >= t && d < i && !seen[d] {
						seen[d] = true
						out = append(out, d)
					}
				}
			}
		}
	}
	return out
}

// addrSyms returns the param/symbol names anchoring site i's address,
// nil when the address is not affine-decomposable.
func addrSyms(a *Analysis, i int) []string {
	s, ok := siteDecomp(a, i)
	if !ok {
		return nil
	}
	return s.syms
}

func joinNotes(notes []string) string {
	out := ""
	for i, n := range notes {
		if i > 0 {
			out += "; "
		}
		out += n
	}
	return out
}

// --- atomicize ------------------------------------------------------------

var redOps = map[ptx.Op]ptx.AtomOp{
	ptx.OpAdd: ptx.AtomAdd,
	ptx.OpMin: ptx.AtomMin,
	ptx.OpMax: ptx.AtomMax,
	ptx.OpAnd: ptx.AtomAnd,
	ptx.OpOr:  ptx.AtomOr,
	ptx.OpXor: ptx.AtomXor,
}

// proposeAtomicize matches the exact lost-update shape
//
//	ld.space.T  %v, [addr]
//	op.T        %w, %v, X      (or op.T %w, X, %v for commutative ops)
//	st.space.T  [addr], %w
//
// as three consecutive unguarded instructions in one block whose
// intermediate registers are used nowhere else, and replaces the triple
// with `red.space.op.T [addr], X`. sub with an immediate becomes
// red.add of the negated immediate.
func proposeAtomicize(a *Analysis, cand Candidate) (ProposedPatch, bool) {
	c := a.CFG
	for _, idx := range []int{cand.B, cand.A} {
		in := c.Instrs[idx]
		if in.Op != ptx.OpSt {
			continue
		}
		if p, ok := atomicizeAt(a, cand, idx); ok {
			return p, ok
		}
	}
	return ProposedPatch{}, false
}

func atomicizeAt(a *Analysis, cand Candidate, st int) (ProposedPatch, bool) {
	c := a.CFG
	if st < 2 {
		return ProposedPatch{}, false
	}
	ld, op := st-2, st-1
	if c.BlockOf[ld] != c.BlockOf[st] {
		return ProposedPatch{}, false
	}
	ldIn, opIn, stIn := c.Instrs[ld], c.Instrs[op], c.Instrs[st]
	if ldIn.Op != ptx.OpLd || ldIn.Guard != nil || opIn.Guard != nil || stIn.Guard != nil {
		return ProposedPatch{}, false
	}
	if ldIn.Vec > 1 || stIn.Vec > 1 || ldIn.Space != stIn.Space {
		return ProposedPatch{}, false
	}
	if ldIn.Type.Float() || ldIn.Type.Size() != 4 && ldIn.Type.Size() != 8 {
		return ProposedPatch{}, false
	}
	la, oka := ldIn.AddrOperand()
	sa, oks := stIn.AddrOperand()
	if !oka || !oks || la != sa {
		return ProposedPatch{}, false
	}
	atom, known := redOps[opIn.Op]
	isSub := opIn.Op == ptx.OpSub
	if !known && !isSub {
		return ProposedPatch{}, false
	}
	if !ldIn.HasDst || !opIn.HasDst || len(opIn.Args) != 2 || len(stIn.Args) != 2 {
		return ProposedPatch{}, false
	}
	loaded, result := ldIn.Dst.Reg, opIn.Dst.Reg
	if stIn.Args[1].Kind != ptx.OpndReg || stIn.Args[1].Reg != result {
		return ProposedPatch{}, false
	}
	// Identify the non-loaded operand X of the arithmetic op.
	var x ptx.Operand
	switch {
	case opIn.Args[0].Kind == ptx.OpndReg && opIn.Args[0].Reg == loaded:
		x = opIn.Args[1]
	case !isSub && opIn.Args[1].Kind == ptx.OpndReg && opIn.Args[1].Reg == loaded:
		x = opIn.Args[0] // commutative ops only
	default:
		return ProposedPatch{}, false
	}
	if isSub {
		if x.Kind != ptx.OpndImm {
			return ProposedPatch{}, false
		}
		x = ptx.ImmOp(-x.Imm)
		atom = ptx.AtomAdd
	}
	// min/max need a signedness-carrying type; b32/b64 only support
	// bitwise and exchange-style ops in red.
	switch atom {
	case ptx.AtomMin, ptx.AtomMax:
		if ldIn.Type != ptx.U32 && ldIn.Type != ptx.S32 && ldIn.Type != ptx.U64 && ldIn.Type != ptx.S64 {
			return ProposedPatch{}, false
		}
	}
	// The intermediate registers must be dead outside the triple.
	if regUsedOutside(c, loaded, ld, st) || regUsedOutside(c, result, ld, st) {
		return ProposedPatch{}, false
	}
	red := &ptx.Instr{
		Op:    ptx.OpRed,
		Space: stIn.Space,
		Atom:  atom,
		Type:  stIn.Type,
		Args:  []ptx.Operand{sa, x},
		Line:  stIn.Line,
		Col:   stIn.Col,
	}
	return ProposedPatch{
		Kind:   PatchAtomicize,
		Kernel: cand.Kernel,
		Note: fmt.Sprintf("replace the ld/%s/st at lines %d-%d with %s",
			opIn.Op, ldIn.Line, stIn.Line, ptx.FormatInstr(red)),
		Edits: []ptx.Edit{{Kernel: cand.Kernel, At: ld, Remove: 3, Ins: []*ptx.Instr{red}}},
	}, true
}

// regUsedOutside reports whether reg is read, written, or used as a
// guard by any instruction outside the inclusive range [lo, hi].
func regUsedOutside(c *kernel.CFG, reg string, lo, hi int) bool {
	for i, in := range c.Instrs {
		if i >= lo && i <= hi {
			continue
		}
		if in.Guard != nil && in.Guard.Reg == reg {
			return true
		}
		if in.HasDst && in.Dst.Kind == ptx.OpndReg && in.Dst.Reg == reg {
			return true
		}
		for _, arg := range in.Args {
			if arg.Kind == ptx.OpndReg && arg.Reg == reg {
				return true
			}
			if arg.Kind == ptx.OpndMem && arg.BaseReg == reg {
				return true
			}
		}
	}
	return false
}
