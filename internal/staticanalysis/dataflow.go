package staticanalysis

import (
	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// Problem describes a forward dataflow problem over a kernel CFG. States
// are treated as immutable values: Join and Transfer must return fresh
// states rather than mutating their inputs, and Clone must produce an
// independent copy.
type Problem[S any] struct {
	Entry    func() S                      // state at the entry block's start
	Join     func(a, b S) S                // meet of two predecessor out-states
	Clone    func(s S) S                   // independent copy
	Transfer func(b *kernel.Block, in S) S // flow function for one block
	Equal    func(a, b S) bool             // fixed-point test
}

// FlowResult holds the fixed point of a forward dataflow solve.
type FlowResult[S any] struct {
	In, Out []S
	Reached []bool // false for blocks unreachable from the entry
}

// SolveForward runs a worklist iteration to a fixed point. Blocks
// unreachable from the entry are never visited: they keep zero-value
// states and Reached == false, so clients must treat them conservatively
// (the lint pass reports them as dead code instead).
func SolveForward[S any](c *kernel.CFG, p Problem[S]) *FlowResult[S] {
	n := len(c.Blocks)
	r := &FlowResult[S]{In: make([]S, n), Out: make([]S, n), Reached: make([]bool, n)}
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	push := func(b int) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	push(0)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var in S
		seeded := false
		if b == 0 {
			in = p.Entry()
			seeded = true
		}
		for _, pr := range c.Blocks[b].Preds {
			if !r.Reached[pr] {
				continue // unreachable or not yet processed: contributes nothing
			}
			if !seeded {
				in = p.Clone(r.Out[pr])
				seeded = true
			} else {
				in = p.Join(in, r.Out[pr])
			}
		}
		if !seeded {
			// Only possible for the entry (handled above) or a block whose
			// every predecessor is unprocessed; it will be re-pushed when
			// one of them completes.
			continue
		}
		r.In[b] = in
		out := p.Transfer(c.Blocks[b], in)
		if !r.Reached[b] || !p.Equal(out, r.Out[b]) {
			r.Reached[b] = true
			r.Out[b] = out
			for _, s := range c.Blocks[b].Succs {
				if s < n {
					push(s)
				}
			}
		}
	}
	return r
}

// DefSet maps a register name to the set of instruction indices whose
// definitions of it may reach a program point.
type DefSet map[string]map[int]bool

// ReachingDefs computes, per block, which register definitions reach the
// block entry. Unconditional definitions replace earlier ones; guarded
// definitions accumulate (the old value may survive).
func ReachingDefs(c *kernel.CFG) *FlowResult[DefSet] {
	return SolveForward(c, Problem[DefSet]{
		Entry: func() DefSet { return DefSet{} },
		Clone: cloneDefs,
		Join: func(a, b DefSet) DefSet {
			out := cloneDefs(a)
			for reg, set := range b {
				dst := out[reg]
				if dst == nil {
					dst = make(map[int]bool, len(set))
					out[reg] = dst
				}
				for i := range set {
					dst[i] = true
				}
			}
			return out
		},
		Transfer: func(b *kernel.Block, in DefSet) DefSet {
			out := cloneDefs(in)
			for i := b.Start; i < b.End; i++ {
				defsStep(out, c.Instrs[i], i)
			}
			return out
		},
		Equal: equalDefs,
	})
}

// DefsAt returns the definitions of reg that reach instruction idx,
// replaying the block prefix from the solved block-entry state.
func DefsAt(c *kernel.CFG, r *FlowResult[DefSet], idx int, reg string) []int {
	b := c.BlockOf[idx]
	if !r.Reached[b] {
		return nil
	}
	st := cloneDefs(r.In[b])
	for i := c.Blocks[b].Start; i < idx; i++ {
		defsStep(st, c.Instrs[i], i)
	}
	var out []int
	for i := range st[reg] {
		out = append(out, i)
	}
	return out
}

func defsStep(st DefSet, in *ptx.Instr, i int) {
	if !in.HasDst || in.Dst.Kind != ptx.OpndReg {
		return
	}
	if in.Guard == nil {
		st[in.Dst.Reg] = map[int]bool{i: true}
		return
	}
	set := st[in.Dst.Reg]
	next := make(map[int]bool, len(set)+1)
	for j := range set {
		next[j] = true
	}
	next[i] = true
	st[in.Dst.Reg] = next
}

func cloneDefs(a DefSet) DefSet {
	out := make(DefSet, len(a))
	for reg, set := range a {
		cp := make(map[int]bool, len(set))
		for i := range set {
			cp[i] = true
		}
		out[reg] = cp
	}
	return out
}

func equalDefs(a, b DefSet) bool {
	if len(a) != len(b) {
		return false
	}
	for reg, sa := range a {
		sb, ok := b[reg]
		if !ok || len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if !sb[i] {
				return false
			}
		}
	}
	return true
}
