package staticanalysis

import (
	"testing"

	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	return Analyze(buildCFG(t, src))
}

// findOps returns the indices of instructions with the given op, in order.
func findOps(a *Analysis, op ptx.Op) []int {
	var out []int
	for i, in := range a.CFG.Instrs {
		if in.Op == op {
			out = append(out, i)
		}
	}
	return out
}

// TestPrivateGtidStrided: disjoint per-thread slots are dropped entirely.
func TestPrivateGtidStrided(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 16;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	st.global.u32 [%rd3+8], %r4;
	ld.global.u32 %r6, [%rd3+12];
	ret;
}`)
	if a.Prune.Private != 3 {
		t.Errorf("private = %d, want 3 (slots of 16 bytes, offsets 0/8/12)", a.Prune.Private)
	}
	for _, i := range findOps(a, ptx.OpSt) {
		if a.Prune.Reason[i] != PrunePrivate {
			t.Errorf("store %d not dropped: %v", i, a.Prune.Reason[i])
		}
	}
}

// TestPrivateOffsetOverflow: an access crossing its thread's slot must
// stay instrumented.
func TestPrivateOffsetOverflow(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 8;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3+8], %r4;
	ret;
}`)
	if a.Prune.Private != 0 {
		t.Errorf("private = %d, want 0: offset 8 + 4 bytes exceeds the 8-byte stride", a.Prune.Private)
	}
}

// TestPrivateBlockedByUniformSite: a uniform-address access to the same
// parameter blocks dropping the strided ones.
func TestPrivateBlockedByUniformSite(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 4;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	st.global.u32 [%rd1], %r4;
	ret;
}`)
	if a.Prune.Private != 0 {
		t.Errorf("private = %d, want 0: uniform store into the same array may collide", a.Prune.Private)
	}
}

// TestPrivateBlockedByUnknownSite: a non-affine address anywhere in the
// space blocks the whole space.
func TestPrivateBlockedByUnknownSite(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 out, .param .u64 idx) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	ld.param.u64 %rd4, [idx];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 4;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	ld.global.u64 %rd5, [%rd4];
	st.global.u32 [%rd5], %r4;
	st.global.u32 [%rd3], %r4;
	ret;
}`)
	if a.Prune.Private != 0 {
		t.Errorf("private = %d, want 0: pointer-chased store aliases anything", a.Prune.Private)
	}
}

// TestPrivateSharedStrided: tid-strided shared accesses drop; the
// separate uniform-base array does not interfere (different symbol).
func TestPrivateSharedStrided(t *testing.T) {
	a := analyze(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 smem[512];
	mov.u32 %r1, %tid.x;
	mul.lo.u32 %r2, %r1, 8;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd1, smem;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	st.shared.u32 [%rd3+4], %r1;
	ret;
}`)
	if a.Prune.Private != 2 {
		t.Errorf("private = %d, want 2 (8-byte slots per tid)", a.Prune.Private)
	}
}

// TestPrivateSharedNeighborBlocked: a cross-thread (tid+1) shared read in
// the same array blocks the whole symbol.
func TestPrivateSharedNeighborBlocked(t *testing.T) {
	a := analyze(t, `.visible .entry k() {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.shared .align 4 .b8 smem[512];
	mov.u32 %r1, %tid.x;
	mul.lo.u32 %r2, %r1, 4;
	cvt.u64.u32 %rd2, %r2;
	mov.u64 %rd1, smem;
	add.u64 %rd3, %rd1, %rd2;
	st.shared.u32 [%rd3], %r1;
	ld.shared.u32 %r3, [%rd3+4];
	ret;
}`)
	if a.Prune.Private != 0 {
		t.Errorf("private = %d, want 0: the +4 read touches the neighbor slot", a.Prune.Private)
	}
}

// TestRedundantAcrossDiamond: an access covered on both arms is
// redundant at the join; coverage by only one arm is not enough.
func TestRedundantAcrossDiamond(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 p, .param .u64 q) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
	ld.param.u64 %rd2, [q];
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	ld.global.u32 %r2, [%rd1];
	@%p1 bra THEN;
	ld.global.u32 %r3, [%rd2];
	bra.uni JOIN;
THEN:
	mov.u32 %r4, 1;
JOIN:
	ld.global.u32 %r5, [%rd1];
	ld.global.u32 %r6, [%rd2];
	ret;
}`)
	lds := findOps(a, ptx.OpLd)
	// lds: [p-param, q-param, rd1 pre-branch, rd2 one-arm, rd1 join, rd2 join]
	preRd1, joinRd1, joinRd2 := lds[2], lds[4], lds[5]
	if a.Prune.Reason[preRd1] != PruneNone {
		t.Error("first rd1 load must stay instrumented")
	}
	if a.Prune.Reason[joinRd1] != PruneRedundant {
		t.Errorf("rd1 load at join = %v, want redundant (covered on every path)", a.Prune.Reason[joinRd1])
	}
	if a.Prune.Reason[joinRd2] != PruneNone {
		t.Errorf("rd2 load at join = %v, want kept (covered on one arm only)", a.Prune.Reason[joinRd2])
	}
}

// TestRedundantKilledByBarrier: synchronization between the covering and
// covered access defeats pruning.
func TestRedundantKilledByBarrier(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r2, [%rd1];
	bar.sync 0;
	ld.global.u32 %r3, [%rd1];
	ret;
}`)
	for _, i := range findOps(a, ptx.OpLd) {
		if a.Prune.Reason[i] == PruneRedundant {
			t.Errorf("load %d marked redundant across a barrier", i)
		}
	}
}

// TestRedundantKilledByLoopRedef: a base register redefined in a loop
// body must not carry coverage around the back edge.
func TestRedundantKilledByLoopRedef(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [p];
LOOP:
	ld.global.u32 %r2, [%rd1];
	add.u64 %rd1, %rd1, 4;
	add.u32 %r3, %r3, 1;
	setp.lt.u32 %p1, %r3, 10;
	@%p1 bra LOOP;
	ret;
}`)
	for _, i := range findOps(a, ptx.OpLd) {
		if a.CFG.Instrs[i].Space != ptx.SpaceGlobal {
			continue
		}
		if a.Prune.Reason[i] == PruneRedundant {
			t.Error("loop load through a redefined base must stay instrumented")
		}
	}
}

// TestRedundantWriteCoversRead: a logged write covers a later read of
// the same address, but not the other way round.
func TestRedundantWriteCoversRead(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r2, [%rd1+4];
	st.global.u32 [%rd1+4], %r2;
	ld.global.u32 %r3, [%rd1+4];
	ret;
}`)
	class := a.Class
	var st, lastLd int
	for i, in := range a.CFG.Instrs {
		if in.Op == ptx.OpSt && class[i] == trace.OpWrite {
			st = i
		}
		if in.Op == ptx.OpLd && in.Space == ptx.SpaceGlobal {
			lastLd = i
		}
	}
	if a.Prune.Reason[st] != PruneNone {
		t.Error("write after read must stay: a read does not cover a write")
	}
	if a.Prune.Reason[lastLd] != PruneRedundant {
		t.Error("read after write to the same address must be redundant")
	}
}

// TestPrivateSitesGenerateNoCoverage: a thread-private (dropped) store
// must not make a later same-address access "redundant" — the covering
// log never happens.
func TestPrivateSitesGenerateNoCoverage(t *testing.T) {
	a := analyze(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 8;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	st.global.u32 [%rd3], %r4;
	ret;
}`)
	for _, i := range findOps(a, ptx.OpSt) {
		if a.Prune.Reason[i] == PruneRedundant {
			t.Error("dropped private site must not provide coverage")
		}
		if a.Prune.Reason[i] != PrunePrivate {
			t.Errorf("site %d: want private, got %v", i, a.Prune.Reason[i])
		}
	}
}
